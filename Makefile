GO ?= go

.PHONY: build test race ci bench-comm

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages: the comm fabrics
# (async senders, routers, collectives) and the engine core (workers,
# copiers, read combining).
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/comm/... ./internal/core/...

ci: test race

# Regenerate the communication fast-path sweep artifact.
bench-comm:
	$(GO) run ./cmd/pgxd-bench -exp comm -comm-out BENCH_comm.json
