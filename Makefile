GO ?= go

.PHONY: build test vet race faults wire fuzz-smoke ci bench-comm bench-faults bench-wire obs direction bench-direction serve bench-serve balance bench-balance ooc bench-ooc

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-heavy packages: the comm fabrics
# (async senders, routers, collectives), the engine core (workers, copiers,
# frontiers with copier-side write-activation, read combining, wire
# compression, work stealing, job cancellation, spillable write buffers),
# the traversal algorithms (adaptive direction switching), the varint codec,
# the partitioner (replanning), the observability registry, the serving
# layer (admission scheduler, engine pools, deadlines, memory budgeting),
# and the out-of-core store (streamed writer, residency window).
race:
	$(GO) test -race ./internal/codec/... ./internal/comm/... ./internal/core/... ./internal/algorithms/... ./internal/partition/... ./internal/obs/... ./internal/server/... ./internal/store/...

# Fault-injection suite under the race detector: every TestFault* case
# (injector semantics, job aborts over both fabrics, recovery, leak checks).
faults:
	$(GO) test -race -run Fault -count=1 ./internal/comm/... ./internal/core/... ./pgxd/...

# Wire compression check: codec + engine compression tests, then a small
# -exp wire smoke over both fabrics (compressed rows must match uncompressed).
wire:
	$(GO) test -count=1 ./internal/codec/... -run .
	$(GO) test -count=1 -run 'WireCompression|TruncatedCompressed' ./internal/core/...
	$(GO) run ./cmd/pgxd-bench -exp wire -machines 1,2 -scale 10 -wire-out BENCH_wire_smoke.json

# Short fuzz pass over the codec's decode surfaces — each target gets a few
# seconds, enough to shake out torn-input and canonicality regressions.
fuzz-smoke:
	$(GO) test ./internal/codec -run '^$$' -fuzz FuzzUvarintRoundTrip -fuzztime 5s
	$(GO) test ./internal/codec -run '^$$' -fuzz FuzzUvarintDecode -fuzztime 5s
	$(GO) test ./internal/codec -run '^$$' -fuzz FuzzDeltaColumnTorn -fuzztime 5s
	$(GO) test ./internal/codec -run '^$$' -fuzz FuzzZigZagDeltaRow -fuzztime 5s

ci: test vet race faults

# Regenerate the communication fast-path sweep artifact.
bench-comm:
	$(GO) run ./cmd/pgxd-bench -exp comm -comm-out BENCH_comm.json

# Fail-soft smoke: injected drops, failures, delays, and a machine kill
# against PageRank, asserting errors surface and buffers come home.
bench-faults:
	$(GO) run ./cmd/pgxd-bench -exp faults -machines 1,2 -scale 10

# Regenerate the wire-compression ablation artifact (both fabrics,
# PageRank-pull + WCC, compression on/off).
bench-wire:
	$(GO) run ./cmd/pgxd-bench -exp wire -wire-out BENCH_wire.json

# Frontier/direction check: frontier representation and write-activation
# tests, the adaptive-vs-fixed bit-identity suite over both fabrics, then a
# small -exp direction smoke.
direction:
	$(GO) test -count=1 -run 'Frontier|ActivateInto|TraversalsAdaptive' ./internal/core/... ./internal/algorithms/...
	$(GO) run ./cmd/pgxd-bench -exp direction -machines 4 -scale 10 -quiet -direction-out BENCH_direction_smoke.json

# Regenerate the push/pull direction-switching ablation artifact
# (BFS/SSSP/WCC/PageRank x {fixed-push, fixed-pull, adaptive, dense} on RMAT
# and road-shaped graphs).
bench-direction:
	$(GO) run ./cmd/pgxd-bench -exp direction -machines 4 -scale 14 -direction-out BENCH_direction.json

# Observability experiment: instrumentation overhead (registry off vs. on),
# a fully traced PageRank over TCP (spans + traffic matrix), and the abort
# flight recorder under fault injection. Writes BENCH_obs.json.
obs:
	$(GO) run ./cmd/pgxd-bench -exp obs -obs-out BENCH_obs.json

# Serving-layer check: scheduler/cancellation unit+regression tests under
# the race detector, then a small -exp serve smoke (multi-tenant load,
# deadline abort, no-starvation, engine-pool concurrency).
serve:
	$(GO) test -race -count=1 ./internal/server/...
	$(GO) test -race -count=1 -run 'Cancel' ./internal/core/...
	$(GO) run ./cmd/pgxd-bench -exp serve -machines 2 -scale 10 -serve-out BENCH_serve_smoke.json

# Regenerate the serving-layer load-test artifact (latency percentiles,
# jobs/sec, queue-wait percentiles, pool concurrency, deadline accounting).
bench-serve:
	$(GO) run ./cmd/pgxd-bench -exp serve -machines 4 -serve-out BENCH_serve.json

# Load-balancing check: steal protocol correctness + fault/cancel coverage
# and the repartitioner suite under the race detector, then a small
# -exp balance smoke on a deliberately skewed partition.
balance:
	$(GO) test -race -count=1 -run 'Steal|LoadPlan|ClusterReplan' ./internal/core/...
	$(GO) test -race -count=1 ./internal/partition/...
	$(GO) run ./cmd/pgxd-bench -exp balance -machines 2 -scale 10 -quiet -balance-out BENCH_balance_smoke.json

# Regenerate the load-balancing artifact (skewed/replanned/balanced layouts
# x steal on/off, per-machine barrier-wait p99, steal volume, replan
# diagnostics).
bench-balance:
	$(GO) run ./cmd/pgxd-bench -exp balance -machines 4 -scale 13 -balance-out BENCH_balance.json

# Out-of-core check: store format (raw + compressed) + residency + decode
# cache + spill tests under the race detector, the mmap-vs-in-memory
# bit-identity suite (csr2 and csr3), then an RSS-capped -exp ooc smoke at a
# reduced scale (fails if peak RSS blows the cap).
ooc:
	$(GO) test -race -count=1 ./internal/store/...
	$(GO) test -race -count=1 -run 'Store|Spill|OOC|Compressed|DecodeCache' ./internal/core/... ./internal/algorithms/... ./internal/bench/...
	$(GO) run ./cmd/pgxd-bench -exp ooc -machines 3 -scale 10 -ooc-scale 17 -ooc-budget-mb 16 -ooc-cap-mb 256 -quiet -ooc-out BENCH_ooc_smoke.json

# Regenerate the out-of-core artifact: bit-identity matrix (in-memory vs
# mmap'd CSR over inproc and TCP, raw csr2 and compressed csr3), then BFS +
# PageRank on each format's file — the raw one about twice the resident
# budget — with peak RSS asserted under the cap and the csr3 file asserted
# >= 1.8x smaller than csr2.
bench-ooc:
	$(GO) run ./cmd/pgxd-bench -exp ooc -machines 3 -ooc-out BENCH_ooc.json
