GO ?= go

.PHONY: build test vet race faults ci bench-comm bench-faults obs

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-heavy packages: the comm fabrics
# (async senders, routers, collectives), the engine core (workers, copiers,
# read combining), and the observability registry (atomic counters, span
# rings, snapshot-and-reset).
race:
	$(GO) test -race ./internal/comm/... ./internal/core/... ./internal/obs/...

# Fault-injection suite under the race detector: every TestFault* case
# (injector semantics, job aborts over both fabrics, recovery, leak checks).
faults:
	$(GO) test -race -run Fault -count=1 ./internal/comm/... ./internal/core/... ./pgxd/...

ci: test vet race faults

# Regenerate the communication fast-path sweep artifact.
bench-comm:
	$(GO) run ./cmd/pgxd-bench -exp comm -comm-out BENCH_comm.json

# Fail-soft smoke: injected drops, failures, delays, and a machine kill
# against PageRank, asserting errors surface and buffers come home.
bench-faults:
	$(GO) run ./cmd/pgxd-bench -exp faults -machines 1,2 -scale 10

# Observability experiment: instrumentation overhead (registry off vs. on),
# a fully traced PageRank over TCP (spans + traffic matrix), and the abort
# flight recorder under fault injection. Writes BENCH_obs.json.
obs:
	$(GO) run ./cmd/pgxd-bench -exp obs -obs-out BENCH_obs.json
