GO ?= go

.PHONY: build test vet race faults ci bench-comm bench-faults

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-heavy packages: the comm fabrics
# (async senders, routers, collectives) and the engine core (workers,
# copiers, read combining).
race:
	$(GO) test -race ./internal/comm/... ./internal/core/...

# Fault-injection suite under the race detector: every TestFault* case
# (injector semantics, job aborts over both fabrics, recovery, leak checks).
faults:
	$(GO) test -race -run Fault -count=1 ./internal/comm/... ./internal/core/... ./pgxd/...

ci: test vet race faults

# Regenerate the communication fast-path sweep artifact.
bench-comm:
	$(GO) run ./cmd/pgxd-bench -exp comm -comm-out BENCH_comm.json

# Fail-soft smoke: injected drops, failures, delays, and a machine kill
# against PageRank, asserting errors surface and buffers come home.
bench-faults:
	$(GO) run ./cmd/pgxd-bench -exp faults -machines 1,2 -scale 10
