// Package repro's root benchmark suite: one testing.B benchmark per table
// and figure of the paper's evaluation, at a scale small enough for
// `go test -bench=.` to finish in minutes. cmd/pgxd-bench runs the same
// experiments as full parameter sweeps with paper-shaped table output.
package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/baseline/gas"
	"repro/internal/baseline/sa"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/partition"
)

const benchScale = 11

var benchData = bench.NewDatasets()

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	g, err := benchData.Get(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func bootPGX(b *testing.B, g *graph.Graph, cfg core.Config) *core.Cluster {
	b.Helper()
	c, err := core.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Shutdown)
	if err := c.Load(g); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTable3 measures representative Table 3 cells: every algorithm on
// PGX.D, and the shared push algorithms on each comparison system.
func BenchmarkTable3(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	wg, err := benchData.Weighted(bench.DSTwitter, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	src := bench.PickSource(g)

	b.Run("PGX", func(b *testing.B) {
		for _, algo := range bench.AllAlgos {
			b.Run(string(algo), func(b *testing.B) {
				cfg := bench.DefaultCellConfig(2)
				cfg.PRIters = 3
				cfg.MaxK = 8
				cfg.Source = src
				gr := g
				if algo == bench.AlgoSSSP {
					gr = wg
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunCell(bench.SysPGX, algo, gr, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
	for _, sys := range []bench.System{bench.SysSA, bench.SysGL, bench.SysGX} {
		b.Run(string(sys), func(b *testing.B) {
			for _, algo := range []bench.Algo{bench.AlgoPRPush, bench.AlgoWCC, bench.AlgoHopDist} {
				b.Run(string(algo), func(b *testing.B) {
					cfg := bench.DefaultCellConfig(2)
					cfg.PRIters = 3
					cfg.Source = src
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := bench.RunCell(sys, algo, g, cfg); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkTable4_Loading measures graph loading from the text format
// (GraphX/GraphLab-style) and the binary format (PGX.D-style), including the
// distributed build.
func BenchmarkTable4_Loading(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	var text, bin bytes.Buffer
	if err := graph.WriteEdgeList(&text, g); err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteBinary(&bin, g); err != nil {
		b.Fatal(err)
	}
	load := func(b *testing.B, data []byte, binary bool) {
		for i := 0; i < b.N; i++ {
			var lg *graph.Graph
			var err error
			if binary {
				lg, err = graph.ReadBinary(bytes.NewReader(data))
			} else {
				lg, err = graph.ReadEdgeList(bytes.NewReader(data))
			}
			if err != nil {
				b.Fatal(err)
			}
			c, err := core.NewCluster(core.DefaultConfig(4))
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Load(lg); err != nil {
				b.Fatal(err)
			}
			c.Shutdown()
		}
	}
	b.Run("text_GXGL_style", func(b *testing.B) { load(b, text.Bytes(), false) })
	b.Run("binary_PGX_style", func(b *testing.B) { load(b, bin.Bytes(), true) })
}

// BenchmarkFig4_UniformVsSkewed isolates communication efficiency: exact
// PageRank on the uniform random instance versus the skewed one.
func BenchmarkFig4_UniformVsSkewed(b *testing.B) {
	for _, ds := range []string{bench.DSUniform, bench.DSTwitter} {
		g := benchGraph(b, ds)
		for _, variant := range []string{"pull", "push"} {
			b.Run(fmt.Sprintf("%s/%s", ds, variant), func(b *testing.B) {
				c := bootPGX(b, g, core.DefaultConfig(4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if variant == "pull" {
						_, _, err = algorithms.PageRankPull(c, 3, 0.85)
					} else {
						_, _, err = algorithms.PageRankPush(c, 3, 0.85)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("%s/GL_push", ds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := gas.PageRank(g, 4, 4, 3, 0.85, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// edgeIterBenchKernel is Figure 5a's empty per-edge kernel.
type edgeIterBenchKernel struct{ core.NoReads }

func (k *edgeIterBenchKernel) Run(c *core.Ctx) { _ = c.NbrRef() }

// BenchmarkFig5a_EdgeIter measures single-machine edge iteration throughput
// per framework; b.N loops iterate all edges once.
func BenchmarkFig5a_EdgeIter(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	b.Run("SA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sa.EdgeIterationRate(g, 4)
		}
		b.SetBytes(g.NumEdges())
	})
	b.Run("PGX", func(b *testing.B) {
		c := bootPGX(b, g, core.DefaultConfig(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunJob(core.JobSpec{Name: "edge-iter", Iter: core.IterOutEdges, Task: &edgeIterBenchKernel{}}); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(g.NumEdges())
	})
	b.Run("GAS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := gas.EdgeIteration(g, 4); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(g.NumEdges())
	})
}

// BenchmarkFig5b_Barrier measures the distributed barrier versus machine
// count.
func BenchmarkFig5b_Barrier(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			g, err := graph.Uniform(64, 256, 1)
			if err != nil {
				b.Fatal(err)
			}
			c := bootPGX(b, g, core.DefaultConfig(p))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Barrier(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6a_GhostSweep measures PageRank-pull at increasing ghost
// counts; more ghosts mean less traffic until the network stops mattering.
func BenchmarkFig6a_GhostSweep(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	for _, ghosts := range []int{0, 16, 128, 1024} {
		b.Run(fmt.Sprintf("ghosts=%d", ghosts), func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.GhostCount = ghosts
			if ghosts == 0 {
				cfg.GhostThreshold = -1
			}
			c := bootPGX(b, g, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.PageRankPull(c, 3, 0.85); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6b_Partitioning compares vertex- and edge-balanced machine
// assignment.
func BenchmarkFig6b_Partitioning(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	for _, strat := range []partition.Strategy{partition.VertexBalanced, partition.EdgeBalanced} {
		b.Run(strat.String(), func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.Partitioning = strat
			c := bootPGX(b, g, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.PageRankPull(c, 3, 0.85); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6c_Breakdown times the three load-balancing configurations of
// Figure 6c (the harness additionally reports the imbalance decomposition).
func BenchmarkFig6c_Breakdown(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	configs := []struct {
		name  string
		strat partition.Strategy
		nodes bool
	}{
		{"ghost_only", partition.VertexBalanced, true},
		{"edge_partitioning", partition.EdgeBalanced, true},
		{"edge_chunking", partition.EdgeBalanced, false},
	}
	for _, cc := range configs {
		b.Run(cc.name, func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.Partitioning = cc.strat
			cfg.NodeChunking = cc.nodes
			c := bootPGX(b, g, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.PageRankPull(c, 3, 0.85); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_WorkerCopier samples the worker/copier grid.
func BenchmarkFig7_WorkerCopier(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	for _, wc := range [][2]int{{1, 1}, {2, 1}, {4, 2}, {8, 4}} {
		b.Run(fmt.Sprintf("w=%d_c=%d", wc[0], wc[1]), func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.Workers, cfg.Copiers = wc[0], wc[1]
			c := bootPGX(b, g, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.PageRankPull(c, 3, 0.85); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// randReadBenchKernel issues pseudo-random remote reads (Figure 8a).
type randReadBenchKernel struct {
	prop       core.PropID
	remoteSize uint32
}

func (k *randReadBenchKernel) Run(c *core.Ctx) {
	state := uint64(c.Node)*2862933555777941757 + 3037000493
	for i := 0; i < 8; i++ {
		state = state*2862933555777941757 + 3037000493
		dst := 1 - c.Machine()
		c.ReadRef(core.RemoteRef(dst, uint32(state>>32)%k.remoteSize), k.prop)
	}
}

func (k *randReadBenchKernel) ReadDone(c *core.Ctx, val uint64) {}

// BenchmarkFig8a_RandomRead measures remote random-read throughput between
// two machines at different copier counts.
func BenchmarkFig8a_RandomRead(b *testing.B) {
	n := 1 << benchScale
	g, err := graph.Uniform(n, n, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, copiers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("copiers=%d", copiers), func(b *testing.B) {
			cfg := core.DefaultConfig(2)
			cfg.Copiers = copiers
			cfg.GhostThreshold = -1
			c := bootPGX(b, g, cfg)
			prop, err := c.AddPropF64("payload")
			if err != nil {
				b.Fatal(err)
			}
			remoteSize := uint32(c.Layout().NumLocal(0))
			if s := uint32(c.Layout().NumLocal(1)); s < remoteSize {
				remoteSize = s
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.RunJob(core.JobSpec{
					Name: "rand-read", Iter: core.IterNodes,
					Task: &randReadBenchKernel{prop: prop, remoteSize: remoteSize},
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(n) * 8 * 8) // 8 reads x 8 bytes per node
		})
	}
}

// BenchmarkFig8b_BufferSize measures engine throughput at different message
// buffer sizes (PageRank-push generates streaming write traffic).
func BenchmarkFig8b_BufferSize(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	for _, bs := range []int{1 << 10, 8 << 10, 64 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("buf=%d", bs), func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.BufferSize = bs
			cfg.GhostThreshold = -1 // keep all remote traffic on the wire
			c := bootPGX(b, g, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.PageRankPush(c, 3, 0.85); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineAblation_GhostPrivatization quantifies the atomic-saving of
// thread-private ghost copies (DESIGN.md's ablation for §3.3).
func BenchmarkEngineAblation_GhostPrivatization(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	for _, disabled := range []bool{false, true} {
		name := "privatized"
		if disabled {
			name = "shared_atomics"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(4)
			cfg.GhostCount = 256
			cfg.DisableGhostPrivatization = disabled
			c := bootPGX(b, g, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.PageRankPush(c, 3, 0.85); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineAblation_PullVsPush isolates the synchronization saving the
// paper attributes to data pulling (plain adds instead of atomics).
func BenchmarkEngineAblation_PullVsPush(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	c := bootPGX(b, g, core.DefaultConfig(4))
	b.Run("pull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := algorithms.PageRankPull(c, 3, 0.85); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("push", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := algorithms.PageRankPush(c, 3, 0.85); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBarrierVsJobOverhead contrasts a bare barrier with an empty job —
// the per-step framework overhead that dominates k-core (paper §5.3.1).
func BenchmarkBarrierVsJobOverhead(b *testing.B) {
	g, err := graph.Uniform(1024, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	c := bootPGX(b, g, core.DefaultConfig(4))
	b.Run("barrier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := c.Barrier(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("empty_job", func(b *testing.B) {
		task := &edgeIterBenchKernel{}
		for i := 0; i < b.N; i++ {
			if _, err := c.RunJob(core.JobSpec{Name: "empty", Iter: core.IterNodes, Task: task}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensions covers the §6-outlook systems built beyond the
// paper's evaluation: triangle counting (task framework + RMI), MIS,
// personalized PageRank, and pattern matching.
func BenchmarkExtensions(b *testing.B) {
	g := benchGraph(b, bench.DSTwitter)
	b.Run("TriangleCount", func(b *testing.B) {
		c := bootPGX(b, g, core.DefaultConfig(2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := algorithms.TriangleCount(c, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MIS", func(b *testing.B) {
		c := bootPGX(b, g, core.DefaultConfig(2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := algorithms.MIS(c, int64(i), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PersonalizedPageRank", func(b *testing.B) {
		c := bootPGX(b, g, core.DefaultConfig(2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := algorithms.PersonalizedPageRank(c, []graph.NodeID{0, 1}, 3, 0.85); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PatternMatch", func(b *testing.B) {
		p := match.Pattern{Steps: []match.Predicate{match.MinOutDegree(200), match.MinOutDegree(100), match.MinInDegree(200)}, Distinct: true}
		for i := 0; i < b.N; i++ {
			if _, _, err := match.Find(g, p, match.Options{Machines: 2, MaxPartials: 1 << 22}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
