// Command pgxd-run executes one graph algorithm on the PGX.D engine and
// prints the result summary plus execution metrics.
//
// Usage:
//
//	pgxd-run -graph twt.bin -algo pagerank -machines 4 [-iters 10] [-top 5]
//	pgxd-run -graph road.txt -algo sssp -source 0 -machines 2
//	pgxd-run -graph twt.csr2 -algo pagerank -resident-mb 64
//	pgxd-run -graph twt.csr3 -algo pagerank -resident-mb 64 -decode-cache-mb 16
//
// Algorithms: pagerank, pagerank-push, pagerank-approx, wcc, sssp, hopdist,
// eigenvector, kcore.
//
// A .csr2 or .csr3 graph (pgxd-gen -format csr2/csr3) runs out-of-core: the
// file is mmap'd and adopted zero-copy, the machine count comes from the
// file, and -resident-mb bounds how much of it the engine keeps resident
// (also turning on spillable write buffers). A compressed .csr3 file
// additionally inflates edge blocks through a bounded decode cache sized by
// -decode-cache-mb; with a resident budget set, property columns move
// off-heap too.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/pgxd"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (.bin or text edge list)")
		algo      = flag.String("algo", "pagerank", "algorithm to run")
		machines  = flag.Int("machines", 4, "simulated machine count")
		workers   = flag.Int("workers", 4, "workers per machine")
		copiers   = flag.Int("copiers", 2, "copiers per machine")
		iters     = flag.Int("iters", 10, "iterations for pagerank/eigenvector")
		source    = flag.Uint("source", 0, "source vertex for sssp/hopdist")
		threshold = flag.Float64("threshold", 1e-7, "delta threshold for pagerank-approx")
		top       = flag.Int("top", 5, "print the top-N vertices by result value")
		tcp       = flag.Bool("tcp", false, "run over loopback TCP instead of in-process channels")
		obsOn     = flag.Bool("obs", false, "attach the observability registry and print a per-job report")
		resident  = flag.Int64("resident-mb", 0, ".csr2/.csr3 only: resident budget in MiB for the mmap'd topology (0 = unbounded); also enables spillable write buffers")
		decodeMB  = flag.Int64("decode-cache-mb", 0, ".csr3 only: decode-cache budget in MiB (0 = default, <0 = unbounded)")
	)
	flag.Parse()
	if *graphPath == "" {
		fatalf("-graph is required")
	}
	var (
		g        *graph.Graph
		sf       *pgxd.StoreFile
		weighted bool
		err      error
	)
	if strings.HasSuffix(*graphPath, ".csr2") || strings.HasSuffix(*graphPath, ".csr3") {
		sf, err = pgxd.OpenStore(*graphPath)
		if err != nil {
			fatalf("mapping %s: %v", *graphPath, err)
		}
		defer sf.Close()
		weighted = sf.Weighted()
		*machines = sf.NumMachines() // partition count is baked into the file
		format := "csr2"
		if sf.Compressed() {
			format = "csr3"
		}
		fmt.Printf("mapped %s: %s p=%d N=%d M=%d weighted=%v\n",
			*graphPath, format, sf.NumMachines(), sf.NumNodes(), sf.NumEdges(), weighted)
	} else {
		g, err = loadAny(*graphPath)
		if err != nil {
			fatalf("loading %s: %v", *graphPath, err)
		}
		weighted = g.Weighted()
		fmt.Printf("loaded %s: %s\n", *graphPath, graph.ComputeDegreeStats(g))
	}

	cfg := pgxd.DefaultConfig(*machines)
	cfg.Workers = *workers
	cfg.Copiers = *copiers
	if *resident > 0 {
		if sf == nil {
			fatalf("-resident-mb only applies to .csr2/.csr3 graphs")
		}
		cfg.ResidentBudgetBytes = *resident << 20
		cfg.SpillWrites = true
	}
	if *decodeMB != 0 {
		if sf == nil || !sf.Compressed() {
			fatalf("-decode-cache-mb only applies to .csr3 graphs")
		}
		if *decodeMB > 0 {
			cfg.DecodeCacheBytes = *decodeMB << 20
		} else {
			cfg.DecodeCacheBytes = -1 // unbounded
		}
	}
	if *obsOn {
		cfg.Obs = pgxd.NewObsRegistry()
	}
	if *tcp {
		fabric, err := pgxd.NewTCPFabric(cfg)
		if err != nil {
			fatalf("tcp fabric: %v", err)
		}
		cfg.Fabric = fabric
		defer fabric.Close()
	}
	cluster, err := pgxd.NewCluster(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	defer cluster.Shutdown()
	if sf != nil {
		err = cluster.LoadStore(sf)
	} else {
		err = cluster.LoadGraph(g)
	}
	if err != nil {
		fatalf("distributing graph: %v", err)
	}
	fmt.Printf("cluster: %d machines x %d workers/%d copiers, %d ghosts\n",
		*machines, *workers, *copiers, cluster.NumGhosts())

	var met pgxd.Metrics
	var f64s []float64
	var i64s []int64
	switch *algo {
	case "pagerank":
		f64s, met, err = cluster.PageRankPull(*iters, 0.85)
	case "pagerank-push":
		f64s, met, err = cluster.PageRankPush(*iters, 0.85)
	case "pagerank-approx":
		f64s, met, err = cluster.PageRankApprox(0.85, *threshold, 100000)
	case "wcc":
		i64s, met, err = cluster.WCC(100000)
	case "sssp":
		if !weighted {
			fatalf("sssp needs a weighted graph (pgxd-gen -weights)")
		}
		f64s, met, err = cluster.SSSP(pgxd.NodeID(*source), 100000)
	case "hopdist":
		i64s, met, err = cluster.HopDist(pgxd.NodeID(*source), 100000)
	case "eigenvector":
		f64s, met, err = cluster.Eigenvector(*iters)
	case "kcore":
		var best int64
		best, i64s, met, err = cluster.KCore(0)
		if err == nil {
			fmt.Printf("max core number: %d\n", best)
		}
	default:
		fatalf("unknown -algo %q", *algo)
	}
	if err != nil {
		if dump := cluster.LastAbortDump(); dump != nil {
			fmt.Fprintln(os.Stderr, dump.Summary())
		}
		fatalf("%s: %v", *algo, err)
	}

	fmt.Printf("done: %d iterations, %d jobs, %v total (%v per iteration)\n",
		met.Iterations, met.Jobs, met.Total.Round(10e3), met.PerIteration().Round(10e3))
	fmt.Printf("traffic: %s\n", met.Traffic)
	if rep := cluster.LastJobReport(); rep != nil {
		fmt.Printf("obs: %s\n", rep.Line())
		fmt.Println(rep.TrafficMatrixString())
	}
	printTop(*algo, f64s, i64s, *top)
}

func printTop(algo string, f64s []float64, i64s []int64, top int) {
	type kv struct {
		node int
		val  float64
	}
	var all []kv
	switch {
	case f64s != nil:
		for i, v := range f64s {
			if !math.IsInf(v, 0) {
				all = append(all, kv{i, v})
			}
		}
	case i64s != nil:
		for i, v := range i64s {
			if v != math.MaxInt64 {
				all = append(all, kv{i, float64(v)})
			}
		}
	default:
		return
	}
	desc := algo == "pagerank" || algo == "pagerank-push" || algo == "pagerank-approx" ||
		algo == "eigenvector" || algo == "kcore"
	sort.Slice(all, func(i, j int) bool {
		if desc {
			return all[i].val > all[j].val
		}
		return all[i].val < all[j].val
	})
	if top > len(all) {
		top = len(all)
	}
	fmt.Printf("top %d vertices:\n", top)
	for i := 0; i < top; i++ {
		fmt.Printf("  node %8d  %g\n", all[i].node, all[i].val)
	}
}

func loadAny(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return graph.ReadBinary(f)
	}
	return graph.ReadEdgeList(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pgxd-run: "+format+"\n", args...)
	os.Exit(1)
}
