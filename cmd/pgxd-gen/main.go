// Command pgxd-gen generates synthetic graphs and converts between the text
// edge-list and binary formats.
//
// Usage:
//
//	pgxd-gen -kind rmat -scale 16 -edgefactor 16 -shape twitter -o twt.bin
//	pgxd-gen -kind uniform -nodes 100000 -edges 1600000 -o uni.txt
//	pgxd-gen -kind grid -rows 300 -cols 300 -shortcuts 100 -o road.bin
//	pgxd-gen -convert in.txt -o out.bin
//	pgxd-gen -kind rmat -scale 22 -format csr2 -machines 4 -o twt.csr2
//	pgxd-gen -kind rmat -scale 22 -format csr3 -machines 4 -o twt.csr3
//
// The output format is chosen by extension: .bin for binary, anything else
// for text edge list — unless -format csr2/csr3 selects the engine's
// mmap-able CSR store format (partitioned for -machines); csr3 compresses
// the edge sections (delta-varint blocks, typically 2-4x smaller on disk).
// For rmat and uniform graphs without -weights, csr2/csr3 output streams
// through store.WriteStream and never materializes the graph, so files
// larger than RAM can be produced; other kinds (and -convert/-weights)
// materialize first. -weights LO,HI attaches uniform random edge weights.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/store"
)

func main() {
	var (
		kind       = flag.String("kind", "rmat", "generator: rmat, uniform, grid, prefattach")
		scale      = flag.Int("scale", 14, "rmat: 2^scale nodes")
		edgeFactor = flag.Int("edgefactor", 16, "rmat: edges per node")
		shape      = flag.String("shape", "twitter", "rmat shape: twitter or web")
		nodes      = flag.Int("nodes", 1<<14, "uniform/prefattach: node count")
		edges      = flag.Int("edges", 1<<18, "uniform: edge count")
		k          = flag.Int("k", 4, "prefattach: edges per new node")
		rows       = flag.Int("rows", 100, "grid: rows")
		cols       = flag.Int("cols", 100, "grid: cols")
		shortcuts  = flag.Int("shortcuts", 50, "grid: random long-range edges")
		seed       = flag.Int64("seed", 42, "generator seed")
		weights    = flag.String("weights", "", "attach uniform edge weights: LO,HI")
		convert    = flag.String("convert", "", "convert an existing graph file instead of generating")
		out        = flag.String("o", "", "output path (.bin = binary, else text)")
		format     = flag.String("format", "auto", "output format: auto (by extension), csr2 (engine store file), or csr3 (compressed store file)")
		machines   = flag.Int("machines", 1, "csr2/csr3: partition count baked into the file")
		bucketMB   = flag.Int64("bucket-mb", 64, "csr2/csr3 streaming: scatter bucket size in MiB (peak RSS knob)")
	)
	flag.Parse()
	if *out == "" {
		fatalf("-o is required")
	}

	if *format != "auto" && *format != "csr2" && *format != "csr3" {
		fatalf("unknown -format %q", *format)
	}
	compress := *format == "csr3"
	csr := *format == "csr2" || compress
	if csr && *machines < 1 {
		fatalf("-machines must be >= 1")
	}

	// Streaming csr path: deterministic generators re-sweep their fixed
	// shards, so the file is produced in O(N + bucket) memory, never O(M).
	if csr && *convert == "" && *weights == "" && (*kind == "rmat" || *kind == "uniform") {
		var es *graph.GenStream
		var err error
		switch *kind {
		case "rmat":
			params := graph.TwitterLike()
			if *shape == "web" {
				params = graph.WebLike()
			} else if *shape != "twitter" {
				fatalf("unknown -shape %q", *shape)
			}
			es, err = graph.RMATStream(*scale, *edgeFactor, params, *seed)
		case "uniform":
			es, err = graph.UniformStream(*nodes, *edges, *seed)
		}
		if err != nil {
			fatalf("%v", err)
		}
		opt := store.StreamOptions{Machines: *machines, BucketBytes: *bucketMB << 20, Compress: compress}
		if err := store.WriteStream(*out, es, opt); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		fi, _ := os.Stat(*out)
		fmt.Fprintf(os.Stderr, "wrote %s: %s p=%d, %d bytes (streamed)\n", *out, *format, *machines, fi.Size())
		return
	}

	var g *graph.Graph
	var err error
	if *convert != "" {
		g, err = loadAny(*convert)
	} else {
		switch *kind {
		case "rmat":
			params := graph.TwitterLike()
			if *shape == "web" {
				params = graph.WebLike()
			} else if *shape != "twitter" {
				fatalf("unknown -shape %q", *shape)
			}
			g, err = graph.RMAT(*scale, *edgeFactor, params, *seed)
		case "uniform":
			g, err = graph.Uniform(*nodes, *edges, *seed)
		case "grid":
			g, err = graph.Grid(*rows, *cols, *shortcuts, *seed)
		case "prefattach":
			g, err = graph.PreferentialAttachment(*nodes, *k, *seed)
		default:
			fatalf("unknown -kind %q", *kind)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *weights != "" {
		parts := strings.Split(*weights, ",")
		if len(parts) != 2 {
			fatalf("-weights wants LO,HI")
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || hi <= lo {
			fatalf("bad -weights %q", *weights)
		}
		g = g.WithUniformWeights(lo, hi, *seed)
	}

	if csr {
		write := store.WriteGraph
		if compress {
			write = store.WriteGraphCompressed
		}
		if err := write(*out, g, *machines); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		stats := graph.ComputeDegreeStats(g)
		fmt.Fprintf(os.Stderr, "wrote %s: %s p=%d, %s\n", *out, *format, *machines, stats)
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".bin") {
		err = graph.WriteBinary(f, g)
	} else {
		err = graph.WriteEdgeList(f, g)
	}
	if err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	stats := graph.ComputeDegreeStats(g)
	fmt.Fprintf(os.Stderr, "wrote %s: %s\n", *out, stats)
}

func loadAny(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return graph.ReadBinary(f)
	}
	return graph.ReadEdgeList(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pgxd-gen: "+format+"\n", args...)
	os.Exit(1)
}
