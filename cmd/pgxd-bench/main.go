// Command pgxd-bench reproduces the paper's evaluation (§5): every table and
// figure has an experiment id, and -exp selects which to run (default: all).
//
// Usage:
//
//	pgxd-bench [-exp all|table3|table4|fig3|fig4|fig5a|fig5b|fig6a|fig6b|fig6c|fig7|fig8a|fig8b|ablations|comm|faults|wire|direction|balance|serve|ooc]
//	           [-scale N] [-machines 1,2,4] [-workers N] [-copiers N] [-quiet]
//
// The comm, wire, direction, balance, serve, and ooc experiments
// additionally write their sweeps as JSON (-comm-out / -wire-out /
// -direction-out / -balance-out / -serve-out / -ooc-out, defaults
// BENCH_comm.json / BENCH_wire.json / BENCH_direction.json /
// BENCH_balance.json / BENCH_serve.json / BENCH_ooc.json). The serve
// experiment load-tests the multi-tenant serving layer: admission latency
// percentiles, jobs/sec, engine-pool scaling on one graph, and
// deadline/cancellation behaviour. The balance experiment ablates the load
// balancer (cross-machine chunk stealing + online repartitioning) on a
// deliberately skewed partition. The ooc experiment exercises the
// out-of-core storage subsystem: bit-identity of mmap'd CSR v2 runs against
// in-memory runs, then BFS and PageRank on a CSR exceeding the resident
// budget with the process peak RSS asserted under -ooc-cap-mb (the run exits
// non-zero when the cap is blown).
//
// Results print as aligned text tables shaped like the paper's originals;
// EXPERIMENTS.md records a reference run with commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (all, table3, table4, fig3, fig4, fig5a, fig5b, fig6a, fig6b, fig6c, fig7, fig8a, fig8b, ablations, comm, faults, obs, wire, direction, balance, serve, ooc)")
		balOut    = flag.String("balance-out", "BENCH_balance.json", "output path for the load-balancing experiment's JSON report")
		serveOut  = flag.String("serve-out", "BENCH_serve.json", "output path for the serving-layer experiment's JSON report")
		commOut   = flag.String("comm-out", "BENCH_comm.json", "output path for the comm experiment's JSON report")
		wireOut   = flag.String("wire-out", "BENCH_wire.json", "output path for the wire compression experiment's JSON report")
		dirOut    = flag.String("direction-out", "BENCH_direction.json", "output path for the direction switching experiment's JSON report")
		obsOut    = flag.String("obs-out", "BENCH_obs.json", "output path for the observability experiment's JSON report")
		oocOut    = flag.String("ooc-out", "BENCH_ooc.json", "output path for the out-of-core experiment's JSON report")
		oocScale  = flag.Int("ooc-scale", bench.OOCDefaultScale, "graph scale of the ooc experiment's RSS-capped phase")
		oocBudget = flag.Int64("ooc-budget-mb", bench.OOCDefaultBudgetMB, "resident budget (MiB) of the ooc experiment's capped phase")
		oocCap    = flag.Int64("ooc-cap-mb", bench.OOCDefaultRSSCapMB, "peak-RSS cap (MiB) the ooc experiment asserts")
		obsRun    = flag.Bool("obs", false, "also run the observability experiment and write its report")
		scale     = flag.Int("scale", bench.DefaultScale, "graph scale: datasets have 2^scale nodes")
		machines  = flag.String("machines", "1,2,4", "comma-separated machine counts for sweeps")
		workers   = flag.Int("workers", 4, "worker goroutines per machine")
		copiers   = flag.Int("copiers", 2, "copier goroutines per machine")
		prIters   = flag.Int("pr-iters", 5, "power iterations for PageRank/EV cells")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	machineCounts, err := parseInts(*machines)
	if err != nil {
		fatalf("bad -machines: %v", err)
	}
	var progress bench.Progress
	if !*quiet {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] "+format+"\n", append([]any{time.Now().Format("15:04:05")}, args...)...)
		}
	}

	ds := bench.NewDatasets()
	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false

	var table3Data *bench.Table3Data
	if want("table3") || want("fig3") {
		ran = true
		opts := bench.DefaultTable3Opts()
		opts.Scale = *scale
		opts.MachineCounts = machineCounts
		opts.Workers = *workers
		opts.Copiers = *copiers
		opts.PRIters = *prIters
		opts.Progress = progress
		tbl, data, err := bench.ExpTable3(ds, opts)
		if err != nil {
			fatalf("table3: %v", err)
		}
		table3Data = data
		if want("table3") {
			fmt.Println(tbl)
		}
	}
	if want("fig3") {
		ran = true
		fmt.Println(bench.ExpFig3(table3Data))
	}
	if want("table4") {
		ran = true
		opts := bench.DefaultTable4Opts()
		opts.Scale = *scale
		opts.Machines = machineCounts[len(machineCounts)-1]
		opts.Progress = progress
		tbl, err := bench.ExpTable4(ds, opts)
		if err != nil {
			fatalf("table4: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("fig4") {
		ran = true
		opts := bench.DefaultFig4Opts()
		opts.Scale = *scale
		opts.MachineCounts = machineCounts
		opts.Workers = *workers
		opts.Copiers = *copiers
		opts.PRIters = *prIters
		opts.Progress = progress
		tbl, err := bench.ExpFig4(ds, opts)
		if err != nil {
			fatalf("fig4: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("fig5a") {
		ran = true
		tbl, err := bench.ExpFig5a(ds, *scale, []int{1, 2, 4, 8}, progress)
		if err != nil {
			fatalf("fig5a: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("fig5b") {
		ran = true
		tbl, err := bench.ExpFig5b(machineCounts, 200, progress)
		if err != nil {
			fatalf("fig5b: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("fig6a") {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, err := bench.ExpFig6a(ds, *scale, p, []int{0, 1, 4, 16, 64, 256, 1024}, progress)
		if err != nil {
			fatalf("fig6a: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("fig6b") {
		ran = true
		tbl, err := bench.ExpFig6b(ds, *scale, machineCounts, progress)
		if err != nil {
			fatalf("fig6b: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("fig6c") {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, err := bench.ExpFig6c(ds, *scale, p, progress)
		if err != nil {
			fatalf("fig6c: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("fig7") {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, err := bench.ExpFig7(ds, *scale, p, []int{1, 2, 4, 8}, []int{1, 2, 4, 8}, progress)
		if err != nil {
			fatalf("fig7: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("fig8a") {
		ran = true
		tbl, err := bench.ExpFig8a([]int{1, 2, 4, 8}, progress)
		if err != nil {
			fatalf("fig8a: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("ablations") {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, err := bench.ExpAblations(ds, *scale, p, progress)
		if err != nil {
			fatalf("ablations: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("fig8b") {
		ran = true
		tbl, err := bench.ExpFig8b([]int{2, 4, 8},
			[]int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}, 300*time.Millisecond, progress)
		if err != nil {
			fatalf("fig8b: %v", err)
		}
		fmt.Println(tbl)
	}
	// The fault smoke is diagnostics for the failure model, not part of the
	// paper reproduction, so it runs only when named explicitly.
	if *exp == "faults" {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, err := bench.ExpFaults(ds, *scale, p, progress)
		if err != nil {
			fatalf("faults: %v", err)
		}
		fmt.Println(tbl)
	}
	if want("comm") {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, rep, err := bench.ExpCommFastPath(ds, *scale, p, *prIters, progress)
		if err != nil {
			fatalf("comm: %v", err)
		}
		fmt.Println(tbl)
		if err := rep.WriteJSON(*commOut); err != nil {
			fatalf("comm: writing %s: %v", *commOut, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "comm: report written to %s\n", *commOut)
		}
	}
	// The wire experiment ablates the compression layer on both fabrics; like
	// faults it is engine diagnostics, so it runs only when named explicitly.
	if *exp == "wire" {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, rep, err := bench.ExpWire(ds, *scale, p, *prIters, progress)
		if err != nil {
			fatalf("wire: %v", err)
		}
		fmt.Println(tbl)
		if err := rep.WriteJSON(*wireOut); err != nil {
			fatalf("wire: writing %s: %v", *wireOut, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wire: report written to %s\n", *wireOut)
		}
	}
	// The direction experiment ablates the adaptive push/pull traversal; it
	// boots many clusters per cell, so it runs only when named explicitly.
	if *exp == "direction" {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, rep, err := bench.ExpDirection(ds, *scale, p, *prIters, progress)
		if err != nil {
			fatalf("direction: %v", err)
		}
		fmt.Println(tbl)
		if err := rep.WriteJSON(*dirOut); err != nil {
			fatalf("direction: writing %s: %v", *dirOut, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "direction: report written to %s\n", *dirOut)
		}
	}
	// The balance experiment ablates the load balancer (chunk stealing and
	// online repartitioning) on a deliberately skewed cut; it boots many
	// clusters per cell, so it runs only when named explicitly.
	if *exp == "balance" {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, rep, err := bench.ExpBalance(ds, *scale, p, *prIters, progress)
		if err != nil {
			fatalf("balance: %v", err)
		}
		fmt.Println(tbl)
		if err := rep.WriteJSON(*balOut); err != nil {
			fatalf("balance: writing %s: %v", *balOut, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "balance: report written to %s\n", *balOut)
		}
	}
	// The observability experiment measures the engine's own instrumentation
	// (overhead, trace spans, traffic matrix, abort flight recorder); it runs
	// when named explicitly or requested alongside other experiments via -obs.
	if *exp == "obs" || *obsRun {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, rep, err := bench.ExpObs(ds, *scale, p, *prIters, progress)
		if err != nil {
			fatalf("obs: %v", err)
		}
		fmt.Println(tbl)
		if rep.LastJob != nil {
			fmt.Println("last superstep traffic matrix:")
			fmt.Println(rep.LastJob.TrafficMatrixString())
		}
		if err := rep.WriteJSON(*obsOut); err != nil {
			fatalf("obs: writing %s: %v", *obsOut, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "obs: report written to %s\n", *obsOut)
		}
	}
	// The serve experiment load-tests the multi-tenant serving layer over
	// its TCP protocol; it is system diagnostics rather than a paper figure,
	// so it runs only when named explicitly.
	if *exp == "serve" {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, rep, err := bench.ExpServe(*scale, p, 4, 6, progress)
		if err != nil {
			fatalf("serve: %v", err)
		}
		fmt.Println(tbl)
		if err := rep.WriteJSON(*serveOut); err != nil {
			fatalf("serve: writing %s: %v", *serveOut, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "serve: report written to %s\n", *serveOut)
		}
	}
	// The out-of-core experiment stream-writes a multi-hundred-MiB CSR file
	// and pins the process peak RSS, so it runs only when named explicitly.
	if *exp == "ooc" {
		ran = true
		p := machineCounts[len(machineCounts)-1]
		tbl, rep, err := bench.ExpOOC(ds, *oocScale, p, *prIters, *oocBudget, *oocCap, progress)
		if err != nil {
			fatalf("ooc: %v", err)
		}
		fmt.Println(tbl)
		if err := rep.WriteJSON(*oocOut); err != nil {
			fatalf("ooc: writing %s: %v", *oocOut, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "ooc: report written to %s\n", *oocOut)
		}
		if !rep.UnderCap {
			fatalf("ooc: peak RSS %d MiB exceeded the %d MiB cap", rep.PeakVmHWMBytes>>20, rep.RSSCapBytes>>20)
		}
		if *oocScale >= 18 && rep.CompressionRatio < 1.8 {
			fatalf("ooc: csr3 only %.2fx smaller than csr2 (want >= 1.8x at scale %d)",
				rep.CompressionRatio, *oocScale)
		}
	}
	if !ran {
		fatalf("unknown experiment %q (see -h)", *exp)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("machine count %d must be >= 1", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pgxd-bench: "+format+"\n", args...)
	os.Exit(1)
}
