// Command pgxd-server hosts the engine as a long-running, multi-tenant
// analysis service (the paper's §6.2 outlook): clients load named graph
// instances and run analyses interactively over a JSON-lines TCP protocol.
// Admission goes through a job scheduler: a global concurrency cap,
// per-tenant quotas, priorities with aging, and per-request deadlines that
// abort the engine job (not the server) through the core cancellation
// latch. Each graph is served by a small pool of engine clusters, so
// read-only analyses on the same graph run concurrently.
//
// Usage:
//
//	pgxd-server -addr 127.0.0.1:7427 -max-edges 67108864 -max-analyses 4 \
//	            -pool 2 -tenant-quota 2 -aging 250ms
//
// Protocol (one JSON object per line, one response per request):
//
//	{"op":"generate","graph":"twt","kind":"rmat","scale":14,"machines":4}
//	{"op":"load","graph":"web","path":"web.bin"}
//	{"op":"run","graph":"twt","algo":"pagerank","iterations":10,"top_k":5,
//	 "tenant":"acme","priority":2,"timeout_millis":5000,"tag":"nightly"}
//	{"op":"cancel","tag":"nightly"}
//	{"op":"list"}  {"op":"stats"}  {"op":"drop","graph":"twt"}
//
// Algorithms: pagerank, pagerank-push, pagerank-approx, eigenvector, wcc,
// sssp, hopdist, kcore, triangles, ppr.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7427", "listen address")
		maxEdges    = flag.Int64("max-edges", 64<<20, "resident edge budget across loaded graphs")
		maxAnalyses = flag.Int("max-analyses", 4, "concurrently running analyses across all graphs and tenants")
		pool        = flag.Int("pool", 2, "engine clusters per graph instance (concurrent analyses on one graph)")
		tenantQuota = flag.Int("tenant-quota", 0, "concurrently running analyses per tenant (0 = unlimited)")
		memBudget   = flag.Int64("mem-budget-mb", 0, "summed declared/estimated resident MiB of concurrently running analyses (0 = no gate)")
		aging       = flag.Duration("aging", 250*time.Millisecond, "queued requests gain one priority level per this interval")
		machines    = flag.Int("machines", 4, "default simulated machines per graph")
		debugAddr   = flag.String("debug-addr", "", "HTTP listen address for /debug/metrics, /debug/trace, /debug/abort, /debug/pprof (empty disables)")
		noObs       = flag.Bool("no-obs", false, "disable per-graph observability registries")
	)
	flag.Parse()
	s, err := server.New(server.Config{
		Addr:                  *addr,
		MaxResidentEdges:      *maxEdges,
		MaxConcurrentAnalyses: *maxAnalyses,
		AnalysisPoolSize:      *pool,
		TenantQuota:           *tenantQuota,
		RunMemoryBudgetMB:     *memBudget,
		PriorityAging:         *aging,
		DefaultMachines:       *machines,
		DebugAddr:             *debugAddr,
		DisableObservability:  *noObs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgxd-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pgxd-server listening on %s\n", s.Addr())
	if d := s.DebugAddr(); d != "" {
		fmt.Fprintf(os.Stderr, "pgxd-server debug HTTP on http://%s/debug/metrics\n", d)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "pgxd-server: shutting down")
	s.Close()
}
