// Command pgxd-server hosts the engine as a long-running, multi-tenant
// analysis service (the paper's §6.2 outlook): clients load named graph
// instances and run analyses interactively over a JSON-lines TCP protocol.
//
// Usage:
//
//	pgxd-server -addr 127.0.0.1:7427 -max-edges 67108864 -max-analyses 2
//
// Protocol (one JSON object per line, one response per request):
//
//	{"op":"generate","graph":"twt","kind":"rmat","scale":14,"machines":4}
//	{"op":"load","graph":"web","path":"web.bin"}
//	{"op":"run","graph":"twt","algo":"pagerank","iterations":10,"top_k":5}
//	{"op":"list"}  {"op":"stats"}  {"op":"drop","graph":"twt"}
//
// Algorithms: pagerank, pagerank-push, pagerank-approx, eigenvector, wcc,
// sssp, hopdist, kcore.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7427", "listen address")
		maxEdges    = flag.Int64("max-edges", 64<<20, "resident edge budget across loaded graphs")
		maxAnalyses = flag.Int("max-analyses", 2, "concurrently running analyses")
		machines    = flag.Int("machines", 4, "default simulated machines per graph")
		debugAddr   = flag.String("debug-addr", "", "HTTP listen address for /debug/metrics, /debug/trace, /debug/abort, /debug/pprof (empty disables)")
		noObs       = flag.Bool("no-obs", false, "disable per-graph observability registries")
	)
	flag.Parse()
	s, err := server.New(server.Config{
		Addr:                  *addr,
		MaxResidentEdges:      *maxEdges,
		MaxConcurrentAnalyses: *maxAnalyses,
		DefaultMachines:       *machines,
		DebugAddr:             *debugAddr,
		DisableObservability:  *noObs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgxd-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pgxd-server listening on %s\n", s.Addr())
	if d := s.DebugAddr(); d != "" {
		fmt.Fprintf(os.Stderr, "pgxd-server debug HTTP on http://%s/debug/metrics\n", d)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "pgxd-server: shutting down")
	s.Close()
}
