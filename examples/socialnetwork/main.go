// Social-network analysis: the workload class the paper's introduction
// motivates. On a Twitter-shaped follower graph, find the communities
// (weakly connected components), measure engagement cores (k-core), and
// rank influencers (approximate PageRank with delta propagation) — all on
// one loaded graph, reusing the cluster across algorithms.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/pgxd"
)

func main() {
	g, err := pgxd.RMAT(13, 16, pgxd.TwitterLike(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower graph: %d users, %d follow edges\n", g.NumNodes(), g.NumEdges())

	cfg := pgxd.DefaultConfig(4)
	cfg.GhostThreshold = 256 // celebrities get replicated everywhere
	cluster, err := pgxd.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()
	if err := cluster.LoadGraph(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d machines, %d celebrity accounts ghosted\n\n",
		cluster.Core().Machines(), cluster.NumGhosts())

	// 1. Communities: weakly connected components.
	labels, met, err := cluster.WCC(10000)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int64]int{}
	for _, l := range labels {
		sizes[l]++
	}
	biggest, biggestSize := int64(0), 0
	for l, s := range sizes {
		if s > biggestSize {
			biggest, biggestSize = l, s
		}
	}
	fmt.Printf("communities: %d components in %d rounds; largest has %d users (%.1f%%)\n",
		len(sizes), met.Iterations, biggestSize, 100*float64(biggestSize)/float64(g.NumNodes()))

	// 2. Engagement: the densest mutual-follow core.
	maxCore, coreNums, met, err := cluster.KCore(0)
	if err != nil {
		log.Fatal(err)
	}
	inMax := 0
	for _, c := range coreNums {
		if c == maxCore {
			inMax++
		}
	}
	fmt.Printf("engagement: max core number %d (%d users) after %d peeling steps\n",
		maxCore, inMax, met.Iterations)

	// 3. Influence: approximate PageRank — vertices deactivate as their
	// rank deltas converge, so late iterations are nearly free.
	ranks, met, err := cluster.PageRankApprox(0.85, 1e-8, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("influence: approximate PageRank converged in %d iterations (%v)\n\n",
		met.Iterations, met.Total.Round(1000))

	type user struct {
		id   pgxd.NodeID
		rank float64
	}
	var users []user
	for id, r := range ranks {
		if labels[id] == biggest { // rank inside the main community
			users = append(users, user{pgxd.NodeID(id), r})
		}
	}
	sort.Slice(users, func(i, j int) bool { return users[i].rank > users[j].rank })
	fmt.Println("top influencers in the largest community:")
	for i := 0; i < 5 && i < len(users); i++ {
		u := users[i]
		fmt.Printf("  #%d user %6d: rank %.5f, %d followers, core %d\n",
			i+1, u.id, u.rank, g.InDegree(u.id), coreNums[u.id])
	}
}
