// Analytics service: the paper's §6 outlook end to end. A long-running
// multi-tenant server hosts several graph instances; an interactive client
// loads graphs and runs analyses over the wire; and the SQL-ish query layer
// post-processes results — the paper's own example, "find the top-100
// Pagerank nodes that have less than 1000 neighbors", at laptop scale.
package main

import (
	"fmt"
	"log"

	"repro/internal/query"
	"repro/internal/server"
	"repro/pgxd"
)

func main() {
	// Host the engine as a service (normally `pgxd-server` in its own
	// process; in-process here so the example is self-contained).
	srv, err := server.New(server.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("analytics service up on %s\n\n", srv.Addr())

	client, err := server.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Tenant one: a social graph. Tenant two: a road network. Both resident
	// at once, each with its own engine cluster.
	if _, err := client.Generate(server.Request{
		Graph: "social", Kind: "rmat", Scale: 12, EdgeFactor: 16, Seed: 42, Machines: 4,
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Generate(server.Request{
		Graph: "roads", Kind: "grid", Nodes: 60, Seed: 7, WeightLo: 1, WeightHi: 5, Machines: 2,
	}); err != nil {
		log.Fatal(err)
	}
	graphs, err := client.List()
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range graphs {
		fmt.Printf("loaded %-7s %6d nodes %8d edges on %d machines (%d ghosts)\n",
			g.Name, g.Nodes, g.Edges, g.Machines, g.Ghosts)
	}

	// Interactive analyses over the wire.
	pr, err := client.Run(server.Request{Graph: "social", Algo: "pagerank", Iterations: 10, TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsocial/pagerank: %d iterations in %.1fms; top node %d\n",
		pr.Iterations, pr.Millis, pr.TopVertices[0].Node)
	tri, err := client.Run(server.Request{Graph: "social", Algo: "triangles"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social/triangles: %s in %.1fms\n", tri.Extra, tri.Millis)
	sp, err := client.Run(server.Request{Graph: "roads", Algo: "sssp", Source: 0, TopK: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("roads/sssp: converged in %d rounds, %.1fms\n", sp.Iterations, sp.Millis)

	// Post-processing with the query layer (paper §6.1). Recompute ranks
	// locally for full columns, then run the paper's example query.
	g, err := pgxd.RMAT(12, 16, pgxd.TwitterLike(), 42)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := pgxd.NewCluster(pgxd.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()
	if err := cluster.LoadGraph(g); err != nil {
		log.Fatal(err)
	}
	ranks, _, err := cluster.PageRankPull(10, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	cols := append(query.DegreeColumns(g), query.F64Col("rank", ranks))
	frame, err := query.NewFrame(g.NumNodes(), cols...)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := frame.
		Where("degree", query.Lt(1000)).
		OrderBy("rank", true).
		Limit(5).
		Select("rank", "degree")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop PageRank among nodes with fewer than 1000 neighbors:")
	for i, r := range rows {
		fmt.Printf("  #%d node %6d  rank %.5f  degree %.0f\n", i+1, r.Node, r.Values[0], r.Values[1])
	}
	agg, err := frame.Where("degree", query.Ge(1000)).Agg("rank")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for contrast, the %d hubs with >=1000 neighbors hold mean rank %.5f\n", agg.Count, agg.Mean)
}
