// Road-network routing: a high-diameter, near-uniform-degree graph — the
// opposite regime from social networks. Traversals run hundreds of frontier
// steps with little work per step, the case where per-step framework
// overhead dominates (paper §5.3.1). The example computes travel times
// (SSSP over weighted edges) and hop counts (BFS) from a depot and compares.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/pgxd"
)

func main() {
	// A 120x120 mesh of intersections with a few highways (shortcuts).
	base, err := pgxd.Grid(120, 120, 80, 3)
	if err != nil {
		log.Fatal(err)
	}
	// Edge weights are travel minutes: streets take 1-5 minutes.
	g := base.WithUniformWeights(1, 5, 3)
	fmt.Printf("road network: %d intersections, %d road segments\n", g.NumNodes(), g.NumEdges())

	cluster, err := pgxd.NewCluster(pgxd.DefaultConfig(2))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()
	if err := cluster.LoadGraph(g); err != nil {
		log.Fatal(err)
	}

	depot := pgxd.NodeID(0) // northwest corner

	minutes, met, err := cluster.SSSP(depot, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSSP: converged in %d relaxation rounds (%v)\n", met.Iterations, met.Total.Round(1000))

	hops, met, err := cluster.HopDist(depot, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFS: %d frontier rounds (%v)\n\n", met.Iterations, met.Total.Round(1000))

	// Coverage report: how much of the city is reachable within N minutes.
	buckets := []float64{30, 60, 120, 240, math.Inf(1)}
	counts := make([]int, len(buckets))
	reachable := 0
	var maxMin, maxHop float64
	for i, m := range minutes {
		if math.IsInf(m, 1) {
			continue
		}
		reachable++
		if m > maxMin {
			maxMin = m
		}
		if h := float64(hops[i]); h > maxHop {
			maxHop = h
		}
		for b, lim := range buckets {
			if m <= lim {
				counts[b]++
				break
			}
		}
	}
	fmt.Printf("reachable: %d/%d intersections; farthest is %.0f minutes / %.0f hops away\n",
		reachable, g.NumNodes(), maxMin, maxHop)
	labels := []string{"<=30min", "<=60min", "<=120min", "<=240min", ">240min"}
	for i, c := range counts {
		fmt.Printf("  %-9s %6d intersections\n", labels[i], c)
	}

	// Shortest-path sanity: travel time can never beat 1 minute per hop.
	for i := range minutes {
		if !math.IsInf(minutes[i], 1) && minutes[i] < float64(hops[i]) {
			log.Fatalf("intersection %d: %f minutes over %d hops is impossible", i, minutes[i], hops[i])
		}
	}
	fmt.Println("\ninvariant verified: travel time >= 1 minute/hop everywhere")
}
