// Quickstart: boot a simulated PGX.D cluster, load a generated graph, and
// compute PageRank with remote data pulling — the engine's headline pattern.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/pgxd"
)

func main() {
	// A Twitter-shaped power-law graph: 2^14 nodes, ~16 edges per node.
	g, err := pgxd.RMAT(14, 16, pgxd.TwitterLike(), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// Four simulated machines connected by the in-process fabric. Each has
	// its own workers, copiers, poller, graph partition, and ghost replicas.
	cluster, err := pgxd.NewCluster(pgxd.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()
	if err := cluster.LoadGraph(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: 4 machines, %d high-degree vertices ghosted\n", cluster.NumGhosts())

	ranks, metrics, err := cluster.PageRankPull(20, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pagerank: %d iterations in %v (%v/iter), %d frames over the fabric\n",
		metrics.Iterations, metrics.Total.Round(1000), metrics.PerIteration().Round(1000),
		metrics.Traffic.FramesSent)

	type ranked struct {
		node pgxd.NodeID
		pr   float64
	}
	top := make([]ranked, 0, len(ranks))
	for n, pr := range ranks {
		top = append(top, ranked{pgxd.NodeID(n), pr})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].pr > top[j].pr })
	fmt.Println("top 5 nodes by PageRank:")
	for _, r := range top[:5] {
		fmt.Printf("  node %6d  pr=%.5f  (in-degree %d)\n", r.node, r.pr, g.InDegree(r.node))
	}
}
