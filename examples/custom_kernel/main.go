// Custom kernel: using the run-to-complete task API directly (paper §4.1)
// instead of a built-in algorithm. The kernel computes, for every node, the
// average out-degree of its in-neighbors ("how prolific are my followers?")
// with the pull pattern: Run issues remote reads, ReadDone continues on the
// same worker when values arrive.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/pgxd"
)

// avgNbrDegree pulls each in-neighbor's out-degree (stored in degProp) and
// accumulates sum and count into two node properties. No atomics are needed:
// the engine guarantees all callbacks of one node run on one worker.
type avgNbrDegree struct {
	degProp  pgxd.PropID // read: out-degree of the neighbor
	sumProp  pgxd.PropID // written: running sum for the current node
	seenProp pgxd.PropID // written: number of neighbors seen
}

func (k *avgNbrDegree) Run(c *pgxd.Ctx) {
	// Request the neighbor's degree; for local or ghosted neighbors
	// ReadDone runs synchronously, otherwise the request is buffered into
	// the per-destination message and continues later.
	c.NbrRead(k.degProp)
}

func (k *avgNbrDegree) ReadDone(c *pgxd.Ctx, val uint64) {
	c.SetF64(k.sumProp, c.GetF64(k.sumProp)+pgxd.F64Word(val))
	c.SetI64(k.seenProp, c.GetI64(k.seenProp)+1)
}

// initDegree records each node's own out-degree so neighbors can read it.
type initDegree struct {
	pgxd.NoReads
	degProp pgxd.PropID
}

func (k *initDegree) Run(c *pgxd.Ctx) {
	c.SetF64(k.degProp, float64(c.OutDegree()))
}

func main() {
	g, err := pgxd.RMAT(13, 16, pgxd.TwitterLike(), 11)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := pgxd.NewCluster(pgxd.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()
	if err := cluster.LoadGraph(g); err != nil {
		log.Fatal(err)
	}

	deg, err := cluster.AddPropF64("out_degree")
	if err != nil {
		log.Fatal(err)
	}
	sum, err := cluster.AddPropF64("nbr_deg_sum")
	if err != nil {
		log.Fatal(err)
	}
	seen, err := cluster.AddPropI64("nbr_seen")
	if err != nil {
		log.Fatal(err)
	}

	// Job 1: node iterator — publish each node's out-degree.
	if _, err := cluster.RunJob(pgxd.JobSpec{
		Name: "init-degree",
		Iter: pgxd.IterNodes,
		Task: &initDegree{degProp: deg},
	}); err != nil {
		log.Fatal(err)
	}

	// Job 2: in-edge iterator with data pulling. Declaring deg as a read
	// property makes the engine refresh ghost copies before the region, so
	// reads of celebrity nodes resolve locally.
	stats, err := cluster.RunJob(pgxd.JobSpec{
		Name:      "avg-nbr-degree",
		Iter:      pgxd.IterInEdges,
		Task:      &avgNbrDegree{degProp: deg, sumProp: sum, seenProp: seen},
		ReadProps: []pgxd.PropID{deg},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom pull kernel over %d edges: %v, %d frames (%d data bytes)\n",
		g.NumEdges(), stats.Duration.Round(1000), stats.Traffic.FramesSent, stats.Traffic.DataBytesSent)

	sums := cluster.Core().GatherF64(sum)
	counts := cluster.Core().GatherI64(seen)
	type row struct {
		node pgxd.NodeID
		avg  float64
		n    int64
	}
	var rows []row
	for i := range sums {
		if counts[i] >= 10 { // only nodes with enough followers
			rows = append(rows, row{pgxd.NodeID(i), sums[i] / float64(counts[i]), counts[i]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].avg > rows[j].avg })
	fmt.Println("nodes whose followers are most prolific (>=10 followers):")
	for i := 0; i < 5 && i < len(rows); i++ {
		r := rows[i]
		fmt.Printf("  node %6d: followers average %.1f out-edges (over %d followers)\n", r.node, r.avg, r.n)
	}

	// Verify against a direct computation on the raw graph.
	for i := 0; i < len(sums); i++ {
		var want float64
		for _, t := range g.In.Neighbors(pgxd.NodeID(i)) {
			want += float64(g.OutDegree(t))
		}
		if diff := want - sums[i]; diff > 1e-9 || diff < -1e-9 {
			log.Fatalf("node %d: engine %g vs direct %g", i, sums[i], want)
		}
	}
	fmt.Println("verified: engine results match a direct single-machine computation")
}
