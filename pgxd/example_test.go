package pgxd_test

import (
	"fmt"
	"sort"

	"repro/pgxd"
)

// Example shows the minimal flow: generate, boot, load, analyze.
func Example() {
	g, _ := pgxd.RMAT(10, 8, pgxd.TwitterLike(), 42)
	cluster, _ := pgxd.NewCluster(pgxd.DefaultConfig(2))
	defer cluster.Shutdown()
	_ = cluster.LoadGraph(g)

	ranks, metrics, _ := cluster.PageRankPull(10, 0.85)
	best := 0
	for i, r := range ranks {
		if r > ranks[best] {
			best = i
		}
	}
	fmt.Printf("iterations=%d top-node=%d\n", metrics.Iterations, best)
	// Output: iterations=10 top-node=0
}

// ExampleCluster_WCC finds communities and reports the largest.
func ExampleCluster_WCC() {
	// Two directed triangles, disconnected from each other.
	edges := []pgxd.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
	}
	g, _ := pgxd.FromEdges(6, edges, false)
	cluster, _ := pgxd.NewCluster(pgxd.DefaultConfig(2))
	defer cluster.Shutdown()
	_ = cluster.LoadGraph(g)

	labels, _, _ := cluster.WCC(100)
	fmt.Println(labels)
	// Output: [0 0 0 3 3 3]
}

// ExampleCluster_RunJob writes a custom push kernel: in-degree counting.
func ExampleCluster_RunJob() {
	g, _ := pgxd.FromEdges(3, []pgxd.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}}, false)
	cluster, _ := pgxd.NewCluster(pgxd.DefaultConfig(2))
	defer cluster.Shutdown()
	_ = cluster.LoadGraph(g)

	counter, _ := cluster.AddPropI64("in_degree")
	_, _ = cluster.RunJob(pgxd.JobSpec{
		Name:       "count",
		Iter:       pgxd.IterOutEdges,
		Task:       &exampleCountTask{counter: counter},
		WriteProps: []pgxd.WriteSpec{{Prop: counter, Op: pgxd.Sum}},
	})
	fmt.Println(cluster.Core().GatherI64(counter))
	// Output: [0 0 2]
}

type exampleCountTask struct {
	pgxd.NoReads
	counter pgxd.PropID
}

func (k *exampleCountTask) Run(c *pgxd.Ctx) {
	c.NbrWriteI64(k.counter, pgxd.Sum, 1)
}

// ExampleFindPattern runs a two-hop path query with degree predicates.
func ExampleFindPattern() {
	// Star: 0 -> {1,2,3}; 1 -> 2.
	g, _ := pgxd.FromEdges(4, []pgxd.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 2},
	}, false)
	matches, _, _ := pgxd.FindPattern(g, pgxd.PathPattern{
		Steps:    []pgxd.MatchPredicate{pgxd.MatchMinOutDegree(3), pgxd.MatchAny(), pgxd.MatchAny()},
		Distinct: true,
	}, pgxd.MatchOptions{Machines: 2})
	paths := make([]string, 0, len(matches))
	for _, m := range matches {
		paths = append(paths, fmt.Sprint(m.Vertices))
	}
	sort.Strings(paths)
	fmt.Println(paths)
	// Output: [[0 1 2]]
}
