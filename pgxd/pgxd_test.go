package pgxd_test

import (
	"math"
	"testing"

	"repro/internal/baseline/sa"
	"repro/pgxd"
)

func bootTwitterLike(t *testing.T, p int) (*pgxd.Graph, *pgxd.Cluster) {
	t.Helper()
	g, err := pgxd.RMAT(9, 8, pgxd.TwitterLike(), 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pgxd.NewCluster(pgxd.DefaultConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	return g, c
}

func TestQuickstartFlow(t *testing.T) {
	g, c := bootTwitterLike(t, 4)
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("cluster size mismatch")
	}
	ranks, met, err := c.PageRankPull(5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if met.Iterations != 5 {
		t.Errorf("iterations = %d", met.Iterations)
	}
	want := sa.PageRank(g, 5, 0.85, 1)
	for u := range want {
		if math.Abs(ranks[u]-want[u]) > 1e-10 {
			t.Fatalf("node %d: %g vs %g", u, ranks[u], want[u])
		}
	}
}

func TestAllAlgorithmsThroughFacade(t *testing.T) {
	g, c := bootTwitterLike(t, 3)
	if _, _, err := c.PageRankPush(3, 0.85); err != nil {
		t.Errorf("push: %v", err)
	}
	if _, _, err := c.PageRankApprox(0.85, 1e-6, 50); err != nil {
		t.Errorf("approx: %v", err)
	}
	if _, _, err := c.WCC(1000); err != nil {
		t.Errorf("wcc: %v", err)
	}
	if _, _, err := c.HopDist(0, 1000); err != nil {
		t.Errorf("hopdist: %v", err)
	}
	if _, _, err := c.Eigenvector(3); err != nil {
		t.Errorf("ev: %v", err)
	}
	if best, _, _, err := c.KCore(4); err != nil || best < 1 {
		t.Errorf("kcore: best=%d err=%v", best, err)
	}
	_ = g
}

func TestSSSPThroughFacade(t *testing.T) {
	g, err := pgxd.RMAT(8, 8, pgxd.TwitterLike(), 3)
	if err != nil {
		t.Fatal(err)
	}
	g = g.WithUniformWeights(1, 10, 3)
	c, err := pgxd.NewCluster(pgxd.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	dist, _, err := c.SSSP(0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sa.SSSP(g, 0, 1)
	for u := range want {
		if math.IsInf(want[u], 1) != math.IsInf(dist[u], 1) {
			t.Fatalf("node %d reachability mismatch", u)
		}
	}
}

// customDegreeTask counts each node's in-degree via the custom-kernel API.
type customDegreeTask struct {
	pgxd.NoReads
	counter pgxd.PropID
}

func (k *customDegreeTask) Run(c *pgxd.Ctx) {
	c.NbrWriteI64(k.counter, pgxd.Sum, 1)
}

func TestCustomKernelThroughFacade(t *testing.T) {
	g, c := bootTwitterLike(t, 3)
	counter, err := c.AddPropI64("indeg")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.RunJob(pgxd.JobSpec{
		Name:       "count-in-degree",
		Iter:       pgxd.IterOutEdges,
		Task:       &customDegreeTask{counter: counter},
		WriteProps: []pgxd.WriteSpec{{Prop: counter, Op: pgxd.Sum}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duration <= 0 {
		t.Error("no duration recorded")
	}
	got := c.Core().GatherI64(counter)
	for u := 0; u < g.NumNodes(); u++ {
		if got[u] != g.InDegree(pgxd.NodeID(u)) {
			t.Fatalf("node %d: %d vs %d", u, got[u], g.InDegree(pgxd.NodeID(u)))
		}
	}
}

func TestTCPFabricFacade(t *testing.T) {
	cfg := pgxd.DefaultConfig(2)
	fabric, err := pgxd.NewTCPFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fabric = fabric
	c, err := pgxd.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Shutdown()
		fabric.Close()
	}()
	g, err := pgxd.Uniform(500, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	ranks, _, err := c.PageRankPull(3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	want := sa.PageRank(g, 3, 0.85, 1)
	for u := range want {
		if math.Abs(ranks[u]-want[u]) > 1e-10 {
			t.Fatalf("node %d: %g vs %g", u, ranks[u], want[u])
		}
	}
}

func TestGeneratorsExposed(t *testing.T) {
	if _, err := pgxd.Grid(5, 5, 2, 1); err != nil {
		t.Error(err)
	}
	if _, err := pgxd.PreferentialAttachment(100, 3, 1); err != nil {
		t.Error(err)
	}
	if _, err := pgxd.Uniform(10, 50, 1); err != nil {
		t.Error(err)
	}
	if _, err := pgxd.FromEdges(3, []pgxd.Edge{{Src: 0, Dst: 1}}, false); err != nil {
		t.Error(err)
	}
	if _, err := pgxd.RMAT(5, 4, pgxd.WebLike(), 1); err != nil {
		t.Error(err)
	}
}

func TestExtensionsThroughFacade(t *testing.T) {
	g, c := bootTwitterLike(t, 3)
	triads, _, err := c.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	if triads <= 0 {
		t.Errorf("triads = %d", triads)
	}
	ppr, _, err := c.PersonalizedPageRank([]pgxd.NodeID{0}, 5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if ppr[0] <= 0 {
		t.Error("source has no personalized rank")
	}
	_ = g
}

func TestAutoTuneThroughFacade(t *testing.T) {
	g, err := pgxd.Uniform(300, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pgxd.AutoTune(g, pgxd.DefaultConfig(2), []pgxd.TuneCandidate{{Workers: 1, Copiers: 1}, {Workers: 2, Copiers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 2 || res.Best.Workers == 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestMISAndClosenessThroughFacade(t *testing.T) {
	g, c := bootTwitterLike(t, 2)
	inSet, _, err := c.MIS(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	members := 0
	for _, in := range inSet {
		if in {
			members++
		}
	}
	if members == 0 {
		t.Error("empty MIS")
	}
	cl, _, err := c.Closeness(3, 5, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != g.NumNodes() {
		t.Errorf("closeness length %d", len(cl))
	}
}

func TestFindPatternThroughFacade(t *testing.T) {
	g, _ := pgxd.RMAT(7, 4, pgxd.TwitterLike(), 2)
	matches, st, err := pgxd.FindPattern(g, pgxd.PathPattern{
		Steps:    []pgxd.MatchPredicate{pgxd.MatchMinOutDegree(30), pgxd.MatchAny()},
		Distinct: true,
	}, pgxd.MatchOptions{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || st.Rounds != 1 {
		t.Errorf("matches=%d rounds=%d", len(matches), st.Rounds)
	}
}
