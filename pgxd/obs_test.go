package pgxd_test

import (
	"errors"
	"testing"
	"time"

	"repro/pgxd"
)

// TestObservabilityThroughFacade runs PageRank with the registry attached
// and checks the public JobReport surface: per-superstep spans, nonzero
// traffic matrix, and sane phase accounting.
func TestObservabilityThroughFacade(t *testing.T) {
	g, err := pgxd.RMAT(8, 8, pgxd.TwitterLike(), 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pgxd.DefaultConfig(3)
	cfg.GhostThreshold = pgxd.GhostDisabled // force remote reads so traffic is nonzero
	cfg.Obs = pgxd.NewObsRegistry()
	c, err := pgxd.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}

	const iters = 3
	if _, _, err := c.PageRankPull(iters, 0.85); err != nil {
		t.Fatal(err)
	}

	reg := c.Observability()
	if reg == nil {
		t.Fatal("Observability() returned nil despite attached registry")
	}
	if got := reg.JobsObserved(); got < iters {
		t.Fatalf("JobsObserved = %d, want >= %d (one job per superstep)", got, iters)
	}
	reports := reg.RecentReports()
	if len(reports) < iters {
		t.Fatalf("RecentReports kept %d reports, want >= %d", len(reports), iters)
	}

	rep := c.LastJobReport()
	if rep == nil {
		t.Fatal("LastJobReport is nil")
	}
	if rep.Machines != 3 {
		t.Errorf("report covers %d machines, want 3", rep.Machines)
	}
	if len(rep.Spans) == 0 {
		t.Error("final superstep recorded no spans")
	}
	// Each superstep must show the full lifecycle: a job span per machine,
	// barrier waits, and a task phase.
	if got := rep.SpanCount(pgxd.SpanJob); got != 3 {
		t.Errorf("job spans = %d, want one per machine", got)
	}
	if rep.SpanCount(pgxd.SpanBarrier) == 0 {
		t.Error("no barrier spans recorded")
	}
	if rep.SpanCount(pgxd.SpanTaskPhase) == 0 {
		t.Error("no task-phase spans recorded")
	}
	if rep.TotalBytes() == 0 {
		t.Error("traffic matrix is all zero despite ghosting disabled")
	}
	// With ghosting off every machine pulls from every other at some point
	// in the run: summed over all supersteps, the off-diagonal of the
	// traffic matrix must be fully populated.
	var sum [3][3]int64
	for _, r := range reports {
		for src := range r.TrafficBytes {
			for dst := range r.TrafficBytes[src] {
				sum[src][dst] += r.TrafficBytes[src][dst]
			}
		}
	}
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src != dst && sum[src][dst] == 0 {
				t.Errorf("run-total traffic[%d][%d] = 0, want > 0", src, dst)
			}
		}
	}
	if rep.Line() == "" || rep.TrafficMatrixString() == "" {
		t.Error("formatted report surfaces are empty")
	}
	if c.LastAbortDump() != nil {
		t.Error("clean run left an abort dump behind")
	}
}

// TestFlightRecorderOnAbort injects a wire fault through the public fault
// fabric and checks the flight recorder dumps counters and span tails for
// the aborted job, while the recovery run starts from clean per-job state.
func TestFlightRecorderOnAbort(t *testing.T) {
	g, err := pgxd.RMAT(8, 8, pgxd.TwitterLike(), 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pgxd.DefaultConfig(3)
	cfg.GhostThreshold = pgxd.GhostDisabled
	cfg.RequestTimeout = time.Second
	cfg.CollectiveTimeout = time.Second
	cfg.Obs = pgxd.NewObsRegistry()
	inj := pgxd.NewFaultFabric(cfg, nil, pgxd.FaultPlan{Seed: 11, Rules: []pgxd.FaultRule{
		{Src: pgxd.AnyMachine, Dst: pgxd.AnyMachine, Type: int(pgxd.MsgReadReq), Kind: pgxd.FaultFail, Limit: 1},
	}})
	cfg.Fabric = inj
	c, err := pgxd.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Shutdown()
		inj.Close()
	})
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}

	_, _, runErr := c.PageRankPull(3, 0.85)
	if !errors.Is(runErr, pgxd.ErrJobAborted) {
		t.Fatalf("expected ErrJobAborted, got %v", runErr)
	}

	dump := c.LastAbortDump()
	if dump == nil {
		t.Fatal("abort produced no flight-recorder dump")
	}
	if dump.Err == "" {
		t.Error("dump has no error string")
	}
	if len(dump.Spans) == 0 {
		t.Error("flight recorder retained no spans")
	}
	if dump.Summary() == "" {
		t.Error("dump summary is empty")
	}
	if got := c.Observability().AbortsObserved(); got != 1 {
		t.Errorf("AbortsObserved = %d, want 1", got)
	}

	// Recovery: clear the fault, rerun, and the new last report must belong
	// to the clean run (not the aborted one).
	inj.ClearRules()
	if _, _, err := c.PageRankPull(3, 0.85); err != nil {
		t.Fatalf("clean rerun failed: %v", err)
	}
	rep := c.LastJobReport()
	if rep == nil {
		t.Fatal("no job report after recovery run")
	}
	if rep.Job <= dump.Job {
		t.Errorf("last report job %d does not postdate aborted job %d", rep.Job, dump.Job)
	}
}
