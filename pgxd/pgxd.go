// Package pgxd is the public API of the PGX.D reproduction: a fast
// distributed graph processing engine (Hong et al., SC '15) simulated over
// in-process or TCP transports.
//
// The typical flow mirrors the paper's Figure 2 application skeleton:
//
//	g, _ := pgxd.RMAT(16, 16, pgxd.TwitterLike(), 42)
//	cluster, _ := pgxd.NewCluster(pgxd.DefaultConfig(4))
//	defer cluster.Shutdown()
//	cluster.LoadGraph(g)
//	ranks, metrics, _ := cluster.PageRankPull(10, 0.85)
//
// Built-in algorithms cover the paper's evaluation suite (Table 2); custom
// run-to-complete kernels plug in through RunJob with the Task interface —
// see examples/custom_kernel.
package pgxd

import (
	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/reduce"
	"repro/internal/store"
	"repro/internal/tune"
)

// --- graph substrate ---------------------------------------------------------

// Graph is an immutable directed graph in CSR form (both orientations).
type Graph = graph.Graph

// NodeID identifies a vertex (dense, 0-based).
type NodeID = graph.NodeID

// Edge is one directed, optionally weighted edge.
type Edge = graph.Edge

// RMATParams configures the RMAT generator.
type RMATParams = graph.RMATParams

// TwitterLike returns RMAT parameters shaped like the paper's Twitter graph.
func TwitterLike() RMATParams { return graph.TwitterLike() }

// WebLike returns RMAT parameters shaped like the paper's Web-UK graph.
func WebLike() RMATParams { return graph.WebLike() }

// RMAT generates a skewed power-law graph with 2^scale nodes and
// edgeFactor*2^scale edges.
func RMAT(scale, edgeFactor int, p RMATParams, seed int64) (*Graph, error) {
	return graph.RMAT(scale, edgeFactor, p, seed)
}

// Uniform generates an Erdős–Rényi graph with n nodes and m edges.
func Uniform(n, m int, seed int64) (*Graph, error) { return graph.Uniform(n, m, seed) }

// Grid generates a road-network-like mesh with long-range shortcuts.
func Grid(rows, cols, shortcuts int, seed int64) (*Graph, error) {
	return graph.Grid(rows, cols, shortcuts, seed)
}

// PreferentialAttachment generates a Barabási–Albert style skewed graph.
func PreferentialAttachment(n, k int, seed int64) (*Graph, error) {
	return graph.PreferentialAttachment(n, k, seed)
}

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges []Edge, weighted bool) (*Graph, error) {
	return graph.FromEdges(n, edges, weighted)
}

// --- engine configuration ----------------------------------------------------

// Config describes a PGX.D cluster; see DefaultConfig.
type Config = core.Config

// PartitionStrategy selects vertex- or edge-balanced machine assignment.
type PartitionStrategy = partition.Strategy

// Partitioning strategies (paper §3.3).
const (
	VertexBalanced = partition.VertexBalanced
	EdgeBalanced   = partition.EdgeBalanced
)

// DefaultConfig returns a laptop-scale configuration for p simulated
// machines: 4 workers and 2 copiers per machine, 32 KiB message buffers,
// edge partitioning, and automatic ghost selection (vertices above 4x the
// average degree — the heavy tail of skewed graphs).
func DefaultConfig(p int) Config { return core.DefaultConfig(p) }

// TCPOptions tunes the TCP transport: async sender queue depth (negative
// for synchronous sends), kernel socket buffer sizes, and TCP_NODELAY.
type TCPOptions = comm.TCPOptions

// NewTCPFabric creates a loopback-TCP transport for cfg; assign it to
// cfg.Fabric before NewCluster to run the engine over real sockets.
func NewTCPFabric(cfg Config) (comm.Fabric, error) {
	return NewTCPFabricOpts(cfg, TCPOptions{})
}

// NewTCPFabricOpts is NewTCPFabric with explicit socket and sender tuning.
func NewTCPFabricOpts(cfg Config, opts TCPOptions) (comm.Fabric, error) {
	pool := cfg.ReqBuffers
	if pool == 0 {
		pool = 2*cfg.Workers*cfg.NumMachines + 4
	}
	return comm.NewTCPFabricOpts(cfg.NumMachines, cfg.NumMachines*pool+64, cfg.BufferSize, opts)
}

// --- failure model and fault injection ----------------------------------------

// ErrJobAborted wraps every error returned for a job that started and then
// failed (transport fault, timeout, dead machine, protocol violation). Test
// with errors.Is; the root cause stays in the chain. After an aborted job
// the cluster has recovered and the next job starts clean, but property
// values the failed job touched are undefined.
var ErrJobAborted = core.ErrJobAborted

// ErrAborted is the sentinel inside collective operations interrupted by a
// job abort; ErrTimeout marks a collective or request wait that expired.
var (
	ErrAborted = comm.ErrAborted
	ErrTimeout = comm.ErrTimeout
)

// ErrJobCanceled marks jobs stopped by external cancellation (Cluster.Cancel:
// a deadline, a client cancel, shutdown) rather than a fault. It appears
// wrapped inside ErrJobAborted; test with errors.Is.
var ErrJobCanceled = core.ErrJobCanceled

// FaultKind selects what a fault rule does to a matching frame.
type FaultKind = comm.FaultKind

// Fault kinds.
const (
	FaultDrop     = comm.FaultDrop
	FaultDelay    = comm.FaultDelay
	FaultTruncate = comm.FaultTruncate
	FaultFail     = comm.FaultFail
	FaultKill     = comm.FaultKill
)

// FaultRule matches frames by (src, dst, type) and applies a fault; see
// comm.FaultRule for the trigger fields (After, Every, Limit, Prob).
type FaultRule = comm.FaultRule

// FaultPlan is a seeded, deterministic set of fault rules.
type FaultPlan = comm.FaultPlan

// FaultStats counts the faults an injector actually applied.
type FaultStats = comm.FaultStats

// AnyMachine (as FaultRule.Src/Dst) and AnyType (as FaultRule.Type) match
// every machine or message type.
const (
	AnyMachine = comm.AnyMachine
	AnyType    = comm.AnyType
)

// MsgType identifies a wire frame's type, for targeting FaultRule.Type at
// one kind of traffic (cast to int in the rule).
type MsgType = comm.MsgType

// Message types carried by the engine's transport.
const (
	MsgReadReq  = comm.MsgReadReq
	MsgReadResp = comm.MsgReadResp
	MsgWriteReq = comm.MsgWriteReq
	MsgRMIReq   = comm.MsgRMIReq
	MsgRMIResp  = comm.MsgRMIResp
	MsgCtrl     = comm.MsgCtrl
	MsgAbort    = comm.MsgAbort
)

// Ghost-threshold sentinels for Config.GhostThreshold.
const (
	GhostDisabled = core.GhostDisabled
	GhostAuto     = core.GhostAuto
)

// FaultInjector wraps a fabric and applies a FaultPlan to its traffic.
type FaultInjector = comm.FaultInjector

// NewFaultFabric wraps inner (e.g. a fabric from NewTCPFabric, or nil for a
// fresh in-process fabric sized for cfg) with deterministic fault
// injection. Assign the returned injector to cfg.Fabric; use its Kill,
// ClearRules, and Stats methods to drive test scenarios.
func NewFaultFabric(cfg Config, inner comm.Fabric, plan FaultPlan) *FaultInjector {
	if inner == nil {
		pool := cfg.ReqBuffers
		if pool == 0 {
			pool = 2*cfg.Workers*cfg.NumMachines + 4
		}
		respPool := cfg.RespBuffers
		if respPool == 0 {
			respPool = 2*cfg.Copiers*cfg.NumMachines + 4
		}
		perMachine := pool + respPool + 4*cfg.NumMachines + 8 + cfg.NumMachines + 2
		inner = comm.NewInProcFabric(cfg.NumMachines, cfg.NumMachines*perMachine+16)
	}
	return comm.NewFaultInjector(inner, plan)
}

// --- observability -------------------------------------------------------------

// ObsRegistry is the unified observability registry: per-job counters,
// latency histograms, a per-(src,dst) traffic matrix, per-machine trace
// spans, and the abort flight recorder. Create with NewObsRegistry, assign
// to Config.Obs before NewCluster, and read results via JobReport /
// AbortDump. A nil registry (the default) disables observability with zero
// overhead.
type ObsRegistry = obs.Registry

// NewObsRegistry creates an observability registry ready to assign to
// Config.Obs.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// JobReport is one job's observability snapshot: counter deltas, latency
// histograms, the traffic matrix, and the job's trace spans.
type JobReport = obs.JobReport

// AbortDump is the flight recorder's capture of an aborted job: partial
// counters, traffic, and the most recent spans per machine.
type AbortDump = obs.AbortDump

// Span is one recorded trace event; see SpanKind for what each measures.
type Span = obs.Span

// SpanKind names what a trace span measures.
type SpanKind = obs.SpanKind

// Span kinds recorded by the engine.
const (
	SpanJob           = obs.SpanJob
	SpanGhostReadSync = obs.SpanGhostReadSync
	SpanBarrier       = obs.SpanBarrier
	SpanTaskPhase     = obs.SpanTaskPhase
	SpanWriteDrain    = obs.SpanWriteDrain
	SpanGhostMerge    = obs.SpanGhostMerge
	SpanFlush         = obs.SpanFlush
	SpanReadRTT       = obs.SpanReadRTT
	SpanCopierServe   = obs.SpanCopierServe
)

// --- custom kernel API ---------------------------------------------------------

// Ctx is the execution context passed to Task callbacks.
type Ctx = core.Ctx

// Task is a run-to-complete kernel; see the paper's §4.1 programming model.
type Task = core.Task

// NoReads is a mixin for push-only tasks.
type NoReads = core.NoReads

// JobSpec describes one parallel region.
type JobSpec = core.JobSpec

// JobStats reports one job execution.
type JobStats = core.JobStats

// WriteSpec declares a reduced property.
type WriteSpec = core.WriteSpec

// PropID names a registered node property.
type PropID = core.PropID

// IterKind selects a job's iterator.
type IterKind = core.IterKind

// Job iterators (paper §4.1.2, plus the undirected-view extension).
const (
	IterNodes     = core.IterNodes
	IterOutEdges  = core.IterOutEdges
	IterInEdges   = core.IterInEdges
	IterBothEdges = core.IterBothEdges
)

// ReduceOp is a reduction operator for property writes.
type ReduceOp = reduce.Op

// Reduction operators.
const (
	Sum = reduce.Sum
	Min = reduce.Min
	Max = reduce.Max
	Or  = reduce.Or
	And = reduce.And
)

// F64Word converts a raw read value to float64 (in Task.ReadDone).
func F64Word(v uint64) float64 { return core.F64Word(v) }

// I64Word converts a raw read value to int64.
func I64Word(v uint64) int64 { return core.I64Word(v) }

// Metrics aggregates an algorithm run (iterations, time, traffic).
type Metrics = algorithms.Metrics

// --- cluster -------------------------------------------------------------------

// Cluster is a booted PGX.D cluster. Create with NewCluster, feed with
// LoadGraph, then run built-in algorithms or custom jobs. Shutdown when done.
type Cluster struct {
	core *core.Cluster
	g    *graph.Graph
}

// NewCluster boots the simulated machines (workers, copiers, pollers,
// transports) per cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{core: c}, nil
}

// LoadGraph partitions g across the machines (edge or vertex balanced),
// selects ghost vertices, and builds per-machine CSR stores.
func (c *Cluster) LoadGraph(g *Graph) error {
	if err := c.core.Load(g); err != nil {
		return err
	}
	c.g = g
	return nil
}

// StoreFile is an opened out-of-core CSR v2 container (written by
// pgxd-gen -format csr2, store.WriteGraph, or store.WriteStream).
type StoreFile = store.File

// OpenStore maps a CSR v2 store file read-only, validating the whole
// container before returning.
func OpenStore(path string) (*StoreFile, error) { return store.Open(path) }

// LoadStore adopts the mmap'd store file instead of copying it onto the
// heap: topology stays page-cache-backed, with residency bounded by
// Config.ResidentBudgetBytes. The file's baked-in partition count must
// equal the cluster's machine count, and the file must stay open until
// after Shutdown (sections alias the mapping). TriangleCount requires the
// in-memory graph and is unavailable on store-loaded clusters.
func (c *Cluster) LoadStore(sf *StoreFile) error { return c.core.LoadStore(sf) }

// Shutdown stops all machines. Idempotent.
func (c *Cluster) Shutdown() { c.core.Shutdown() }

// Cancel aborts the in-flight job (if any) through the job-scoped abort
// latch and makes every subsequent job fail fast with ErrJobCanceled until
// Uncancel — the hook for per-request deadlines and client cancellation.
// Safe from any goroutine (e.g. a time.AfterFunc).
func (c *Cluster) Cancel(cause error) { c.core.Cancel(cause) }

// Uncancel clears a previous Cancel so the cluster accepts jobs again.
func (c *Cluster) Uncancel() { c.core.Uncancel() }

// CancelCause returns the sticky cancellation error, or nil when active.
func (c *Cluster) CancelCause() error { return c.core.CancelCause() }

// Core exposes the underlying engine for advanced use (custom properties,
// RMI, driver-side reductions).
func (c *Cluster) Core() *core.Cluster { return c.core }

// Observability returns the registry assigned via Config.Obs, or nil when
// observability is off.
func (c *Cluster) Observability() *ObsRegistry { return c.core.Obs() }

// LastJobReport returns the most recently completed job's report, or nil
// when observability is off or no job has run.
func (c *Cluster) LastJobReport() *JobReport { return c.core.Obs().LastReport() }

// LastAbortDump returns the flight recorder's capture of the most recent
// job abort, or nil when observability is off or no job has aborted.
func (c *Cluster) LastAbortDump() *AbortDump { return c.core.Obs().LastAbort() }

// NumNodes returns the loaded graph's node count.
func (c *Cluster) NumNodes() int { return c.core.NumNodes() }

// NumEdges returns the loaded graph's edge count.
func (c *Cluster) NumEdges() int64 { return c.core.NumEdges() }

// NumGhosts returns how many vertices are replicated on every machine.
func (c *Cluster) NumGhosts() int { return c.core.NumGhosts() }

// RunJob executes a custom parallel region cluster-wide.
func (c *Cluster) RunJob(spec JobSpec) (JobStats, error) { return c.core.RunJob(spec) }

// AddPropF64 registers a float64 node property.
func (c *Cluster) AddPropF64(name string) (PropID, error) { return c.core.AddPropF64(name) }

// AddPropI64 registers an int64 node property.
func (c *Cluster) AddPropI64(name string) (PropID, error) { return c.core.AddPropI64(name) }

// --- built-in algorithms (the paper's Table 2 suite) -------------------------

// PageRankPull runs iters power iterations with remote data pulling — the
// variant only PGX.D supports, and the fastest (paper §5.2).
func (c *Cluster) PageRankPull(iters int, damping float64) ([]float64, Metrics, error) {
	return algorithms.PageRankPull(c.core, iters, damping)
}

// PageRankPush runs iters power iterations with data pushing (atomic SUM
// reductions), the pattern conventional frameworks require.
func (c *Cluster) PageRankPush(iters int, damping float64) ([]float64, Metrics, error) {
	return algorithms.PageRankPush(c.core, iters, damping)
}

// PageRankApprox runs delta-propagation PageRank with vertex deactivation
// below threshold.
func (c *Cluster) PageRankApprox(damping, threshold float64, maxIter int) ([]float64, Metrics, error) {
	return algorithms.PageRankApprox(c.core, damping, threshold, maxIter)
}

// WCC computes weakly connected components (labels are minimum member ids).
func (c *Cluster) WCC(maxIter int) ([]int64, Metrics, error) {
	return algorithms.WCC(c.core, maxIter)
}

// SSSP computes single-source shortest paths (Bellman-Ford) from source;
// the loaded graph must carry edge weights.
func (c *Cluster) SSSP(source NodeID, maxIter int) ([]float64, Metrics, error) {
	return algorithms.SSSP(c.core, source, maxIter)
}

// HopDist computes BFS hop distances from root.
func (c *Cluster) HopDist(root NodeID, maxIter int) ([]int64, Metrics, error) {
	return algorithms.HopDist(c.core, root, maxIter)
}

// Eigenvector computes eigenvector centrality by iters normalized power
// iterations (data pulling).
func (c *Cluster) Eigenvector(iters int) ([]float64, Metrics, error) {
	return algorithms.Eigenvector(c.core, iters)
}

// KCore finds the maximum k-core number and each node's core number.
func (c *Cluster) KCore(maxK int64) (int64, []int64, Metrics, error) {
	return algorithms.KCore(c.core, maxK)
}

// --- extensions beyond the paper's Table 2 (its §6 outlook) ------------------

// TriangleCount counts transitive triads (u→v, u→w, v→w) through the
// general task framework: remote neighbors are handled by shipping the
// adjacency list to the data via RMI ("moving computation instead of data").
func (c *Cluster) TriangleCount() (int64, Metrics, error) {
	return algorithms.TriangleCount(c.core, c.g)
}

// PersonalizedPageRank ranks vertices by proximity to the source set
// (random walk with restart).
func (c *Cluster) PersonalizedPageRank(sources []NodeID, iters int, damping float64) ([]float64, Metrics, error) {
	return algorithms.PersonalizedPageRank(c.core, sources, iters, damping)
}

// MIS computes a maximal independent set over the undirected view (Luby's
// algorithm); the result is deterministic in seed.
func (c *Cluster) MIS(seed int64, maxRounds int) ([]bool, Metrics, error) {
	return algorithms.MIS(c.core, seed, maxRounds)
}

// Closeness estimates harmonic closeness centrality from `samples` BFS
// sources (deterministic in seed).
func (c *Cluster) Closeness(samples int, seed int64, maxIter int) ([]float64, Metrics, error) {
	return algorithms.Closeness(c.core, samples, seed, maxIter)
}

// --- pattern matching (paper §6 outlook) -------------------------------------

// PathPattern is a directed path query over vertex predicates.
type PathPattern = match.Pattern

// PathMatch is one bound path.
type PathMatch = match.Match

// MatchPredicate tests whether a vertex can bind a pattern position.
type MatchPredicate = match.Predicate

// MatchOptions bounds a pattern query's resources: the paper warns that
// pattern matching "could result in either too much communication or too
// much memory consumption", so partial matches are hard-capped.
type MatchOptions = match.Options

// MatchStats reports a pattern query execution.
type MatchStats = match.Stats

// Pattern predicates.
func MatchAny() MatchPredicate                 { return match.Any() }
func MatchMinOutDegree(k int64) MatchPredicate { return match.MinOutDegree(k) }
func MatchMinInDegree(k int64) MatchPredicate  { return match.MinInDegree(k) }

// FindPattern runs a distributed path-pattern query against g.
func FindPattern(g *Graph, p PathPattern, opts MatchOptions) ([]PathMatch, MatchStats, error) {
	return match.Find(g, p, opts)
}

// --- auto-tuning ---------------------------------------------------------------

// TuneCandidate is one worker/copier configuration for AutoTune.
type TuneCandidate = tune.Candidate

// TuneResult reports AutoTune's winner and all trials.
type TuneResult = tune.Result

// AutoTune probes worker/copier configurations on g (nil candidates uses a
// default grid) and returns base with the fastest combination filled in —
// the paper's thread auto-tuning outlook, driven by the Figure 7 sweep.
func AutoTune(g *Graph, base Config, candidates []TuneCandidate) (TuneResult, error) {
	return tune.Threads(g, base, candidates, nil)
}
