package pgxd_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/baseline/sa"
	"repro/pgxd"
)

// TestFaultInjectionThroughFacade drives the public failure-model surface:
// NewFaultFabric wraps the engine's transport, an injected wire fault surfaces
// from PageRankPull as an ErrJobAborted-wrapped error (no panic), and after
// ClearRules the same cluster produces reference-exact results.
func TestFaultInjectionThroughFacade(t *testing.T) {
	g, err := pgxd.RMAT(8, 8, pgxd.TwitterLike(), 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pgxd.DefaultConfig(3)
	cfg.GhostThreshold = pgxd.GhostDisabled
	cfg.RequestTimeout = time.Second
	cfg.CollectiveTimeout = time.Second
	inj := pgxd.NewFaultFabric(cfg, nil, pgxd.FaultPlan{Seed: 11, Rules: []pgxd.FaultRule{
		{Src: pgxd.AnyMachine, Dst: pgxd.AnyMachine, Type: int(pgxd.MsgReadReq), Kind: pgxd.FaultFail, Limit: 1},
	}})
	cfg.Fabric = inj
	c, err := pgxd.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Shutdown()
		inj.Close()
	})
	if err := c.LoadGraph(g); err != nil {
		t.Fatal(err)
	}

	_, _, runErr := c.PageRankPull(3, 0.85)
	if runErr == nil {
		t.Fatal("PageRankPull succeeded despite injected fault")
	}
	if !errors.Is(runErr, pgxd.ErrJobAborted) {
		t.Fatalf("error %v does not wrap pgxd.ErrJobAborted", runErr)
	}
	// Limit is per (src,dst) stream, so several streams may each fail one
	// frame before the abort wins the race; at least one must have fired.
	if st := inj.Stats(); st.Failed == 0 {
		t.Error("no send failure was actually injected")
	}

	inj.ClearRules()
	ranks, _, err := c.PageRankPull(3, 0.85)
	if err != nil {
		t.Fatalf("clean rerun failed: %v", err)
	}
	want := sa.PageRank(g, 3, 0.85, 1)
	for u := range want {
		if math.Abs(ranks[u]-want[u]) > 1e-10 {
			t.Fatalf("node %d after recovery: %g vs %g", u, ranks[u], want[u])
		}
	}
}
