package core

import (
	"repro/internal/graph"
	"repro/internal/partition"
)

// Node references inside a machine's local CSR are pre-resolved at load time
// into an int64 encoding so the per-edge dispatch (local / ghost / remote)
// is a sign test plus a compare, with no hash lookups on the hot path:
//
//	ref >= 0                 local slot: < numLocal → owned node,
//	                         otherwise ghost slot (ref - numLocal)
//	ref <  0                 remote: packed := ^ref,
//	                         machine = packed >> 32, offset = uint32(packed)
//
// This realizes the paper's 64-bit global id ("concatenates the machine
// number and the local offset") with the additional local/ghost fast path.

func packRemote(machine int, offset uint32) int64 {
	return ^(int64(machine)<<32 | int64(offset))
}

// RemoteRef builds a node ref addressing (machine, local offset) directly.
// Kernels normally receive refs from the engine (NbrRef); this constructor
// exists for microbenchmarks and tests that target arbitrary remote slots,
// like the paper's remote random-read bandwidth study (Figure 8a).
func RemoteRef(machine int, offset uint32) int64 { return packRemote(machine, offset) }

// SplitRemoteRef decodes a remote ref (NbrRef with NbrIsRemote true) into
// its owner machine and local offset — the hook kernels use to address RMI
// calls at a neighbor's owner ("moving computation instead of data").
func SplitRemoteRef(ref int64) (machine int, offset uint32) { return unpackRemote(ref) }

func unpackRemote(ref int64) (machine int, offset uint32) {
	packed := ^ref
	return int(packed >> 32), uint32(packed)
}

// localStore is one machine's slice of the distributed graph: the local CSR
// in both orientations with pre-resolved refs, full degrees of owned nodes,
// and the shared partitioning/ghost metadata (paper §3.3: "the partitioning
// information [is] shared across all machines").
type localStore struct {
	me       int
	layout   partition.Layout
	ghosts   *partition.GhostSet
	numLocal int

	// Out-orientation: outRows has numLocal+1 entries; the out-edges of
	// local node u are outRefs[outRows[u]:outRows[u+1]].
	outRows    []int64
	outRefs    []int64
	outWeights []float64 // nil when unweighted

	// In-orientation (the transpose restricted to locally-owned heads).
	inRows    []int64
	inRefs    []int64
	inWeights []float64

	// bothRows is the prefix-sum of out+in degree per local node — the
	// chunking weight array for IterBothEdges jobs.
	bothRows []int64

	// Full (cluster-wide) degrees of each local node. Because vertex
	// ownership is total — every edge of u lives on u's owner — these equal
	// the local CSR row lengths, but they are kept separately so kernels can
	// ask for degrees in O(1) without touching row arrays.
	outDeg []int32
	inDeg  []int32
}

// buildLocalStore extracts machine me's partition from the global graph.
func buildLocalStore(g *graph.Graph, layout partition.Layout, ghosts *partition.GhostSet, me int) *localStore {
	lo, hi := layout.Range(me)
	numLocal := int(hi - lo)
	s := &localStore{
		me:       me,
		layout:   layout,
		ghosts:   ghosts,
		numLocal: numLocal,
		outDeg:   make([]int32, numLocal),
		inDeg:    make([]int32, numLocal),
	}
	s.outRows, s.outRefs, s.outWeights = buildLocalCSR(&g.Out, layout, ghosts, me, lo, hi)
	s.inRows, s.inRefs, s.inWeights = buildLocalCSR(&g.In, layout, ghosts, me, lo, hi)
	s.bothRows = make([]int64, numLocal+1)
	for u := 0; u < numLocal; u++ {
		s.outDeg[u] = int32(s.outRows[u+1] - s.outRows[u])
		s.inDeg[u] = int32(s.inRows[u+1] - s.inRows[u])
		s.bothRows[u+1] = s.bothRows[u] + int64(s.outDeg[u]) + int64(s.inDeg[u])
	}
	return s
}

// buildLocalCSR rebases csr rows [lo, hi) to local indexing and rewrites
// every neighbor into the ref encoding: owned → local index, ghosted →
// ghost slot, otherwise remote (machine, offset). "Each ghost node only
// keeps local edges that do not cross machine boundaries" falls out of the
// rewrite: an edge whose endpoint is ghosted never leaves the machine.
func buildLocalCSR(csr *graph.CSR, layout partition.Layout, ghosts *partition.GhostSet, me int, lo, hi graph.NodeID) ([]int64, []int64, []float64) {
	numLocal := int(hi - lo)
	rows := make([]int64, numLocal+1)
	base := csr.Rows[lo]
	for u := 0; u <= numLocal; u++ {
		rows[u] = csr.Rows[int(lo)+u] - base
	}
	m := rows[numLocal]
	refs := make([]int64, m)
	var weights []float64
	if csr.Weights != nil {
		weights = make([]float64, m)
		copy(weights, csr.Weights[base:base+m])
	}
	numGhostBase := int64(numLocal)
	for i := int64(0); i < m; i++ {
		v := csr.Cols[base+i]
		if v >= lo && v < hi {
			refs[i] = int64(v - lo)
			continue
		}
		if slot, ok := ghosts.Slot(v); ok {
			refs[i] = numGhostBase + int64(slot)
			continue
		}
		owner := layout.Owner(v)
		refs[i] = packRemote(owner, v-layout.Starts[owner])
	}
	return rows, refs, weights
}

// globalOf converts a local node index to its global id.
func (s *localStore) globalOf(local uint32) graph.NodeID {
	return s.layout.GlobalOf(s.me, local)
}

// ghostSlots holds per-ghost ownership, precomputed once: ownedGhost[slot]
// is the owner machine's local index of the ghost's original node, or -1
// when this machine does not own it. Ghost synchronization uses it to
// scatter/gather owner values.
func (s *localStore) ghostOwnership() []int64 {
	owned := make([]int64, s.ghosts.Len())
	lo, hi := s.layout.Range(s.me)
	for slot, v := range s.ghosts.Nodes {
		if v >= lo && v < hi {
			owned[slot] = int64(v - lo)
		} else {
			owned[slot] = -1
		}
	}
	return owned
}
