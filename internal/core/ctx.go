package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/reduce"
)

// Ctx is the execution context handed to Task callbacks. One Ctx exists per
// worker and is reused across invocations; a task must never retain it.
//
// During Run on an edge iterator, Node is the local node index, the neighbor
// accessors target the current edge's other endpoint, and EdgeWeight is the
// current edge's weight. During ReadDone/RMIDone, only Node, Aux, and the
// local property accessors are valid — continuations that need the neighbor
// must stash NbrRef() in Aux before reading, mirroring the paper's rule that
// continuation state lives in the task object's explicit fields.
type Ctx struct {
	w *worker

	// Node is the current local node index.
	Node uint32
	// Aux is task-defined continuation state, preserved across the
	// Run → ReadDone boundary for the request that carried it. The engine
	// resets it to zero once per node; kernels that use it must set it in
	// Run before issuing the read it describes.
	Aux uint64

	nbr     int64
	edge    int64
	weights []float64 // weights of the orientation currently iterated

	// skip is set by SkipNode to end the current node's edge loop early;
	// the worker resets it per node. It lives in Ctx so the wholesale
	// save/restore at re-entrancy points (drainResponsesSafe, acquireReq)
	// protects it from interleaved continuations.
	skip bool

	// stolen, when non-nil, marks the worker as executing a node stolen from
	// another machine: Node is then an index in the victim's range and the
	// own-node accessors answer from the grant's snapshot instead of this
	// machine's columns (see steal.go). Covered by the wholesale Ctx
	// save/restore at re-entrancy points like every other field.
	stolen *stolenNode
}

// F64Word converts a raw 8-byte value (as delivered to ReadDone) to float64.
func F64Word(v uint64) float64 { return math.Float64frombits(v) }

// I64Word converts a raw 8-byte value to int64.
func I64Word(v uint64) int64 { return int64(v) }

// WordF64 converts a float64 to the raw 8-byte wire form.
func WordF64(v float64) uint64 { return math.Float64bits(v) }

// WordI64 converts an int64 to the raw 8-byte wire form.
func WordI64(v int64) uint64 { return uint64(v) }

// Machine returns the executing machine's id.
func (c *Ctx) Machine() int { return c.w.m.id }

// NumMachines returns the cluster size.
func (c *Ctx) NumMachines() int { return c.w.m.cfg.NumMachines }

// NodeGlobal returns the current node's global id.
func (c *Ctx) NodeGlobal() graph.NodeID {
	if c.stolen != nil {
		return c.stolenGlobal()
	}
	return c.w.m.store.globalOf(c.Node)
}

// OutDegree returns the current node's full out-degree.
func (c *Ctx) OutDegree() int64 {
	if c.stolen != nil {
		return c.stolen.outDeg
	}
	return int64(c.w.m.store.outDeg[c.Node])
}

// InDegree returns the current node's full in-degree.
func (c *Ctx) InDegree() int64 {
	if c.stolen != nil {
		return c.stolen.inDeg
	}
	return int64(c.w.m.store.inDeg[c.Node])
}

// NbrRef returns the current edge's neighbor reference. Valid only in Run of
// an edge-iterator job. The ref is stable for the lifetime of the loaded
// graph and may be stored (e.g. in Aux) and used later with ReadRef/WriteRef.
func (c *Ctx) NbrRef() int64 { return c.nbr }

// NbrIsRemote reports whether the current neighbor lives on another machine
// and is not ghosted here.
func (c *Ctx) NbrIsRemote() bool { return c.nbr < 0 }

// RefGlobal resolves any node ref — local index, ghost slot, or remote —
// back to its global node id.
func (c *Ctx) RefGlobal(ref int64) graph.NodeID {
	st := c.w.m.store
	if ref >= 0 {
		if int(ref) < st.numLocal {
			return st.globalOf(uint32(ref))
		}
		return st.ghosts.Node(int32(ref) - int32(st.numLocal))
	}
	mach, off := unpackRemote(ref)
	return st.layout.GlobalOf(mach, off)
}

// EdgeWeight returns the current edge's weight (0 for unweighted graphs).
// Valid only in Run of an edge-iterator job.
func (c *Ctx) EdgeWeight() float64 {
	if c.weights == nil {
		return 0
	}
	return c.weights[c.edge]
}

// --- local property access (own node) --------------------------------------

// GetF64 reads property p of the current node. On a stolen node only the
// properties listed in StealSpec.Own are readable — their values ride the
// grant as a snapshot.
func (c *Ctx) GetF64(p PropID) float64 {
	if c.stolen != nil {
		return math.Float64frombits(c.stolenWord(p))
	}
	return c.w.cols[p].getF64(int(c.Node))
}

// SetF64 writes property p of the current node. Plain store: the engine
// guarantees all callbacks for one node run on one worker, so no reduction
// is needed for own-node updates (the pull pattern's advantage). Forbidden
// on stolen nodes — own-node state cannot be shipped back to the victim.
func (c *Ctx) SetF64(p PropID, v float64) {
	if c.stolen != nil {
		c.w.fail(errStolenCtx(c.w, "SetF64"))
	}
	c.w.cols[p].setF64(int(c.Node), v)
}

// GetI64 reads integer property p of the current node; see GetF64 for the
// stolen-node rule.
func (c *Ctx) GetI64(p PropID) int64 {
	if c.stolen != nil {
		return int64(c.stolenWord(p))
	}
	return c.w.cols[p].getI64(int(c.Node))
}

// SetI64 writes integer property p of the current node; see SetF64 for the
// stolen-node rule.
func (c *Ctx) SetI64(p PropID, v int64) {
	if c.stolen != nil {
		c.w.fail(errStolenCtx(c.w, "SetI64"))
	}
	c.w.cols[p].setI64(int(c.Node), v)
}

// --- neighbor access --------------------------------------------------------

// NbrWriteF64 reduces v into property p of the current neighbor with op —
// the paper's write_remote<OP>. Local and ghost targets apply immediately
// (relaxed consistency); remote targets are buffered into the per-worker
// request message toward the owner.
func (c *Ctx) NbrWriteF64(p PropID, op reduce.Op, v float64) {
	c.WriteRef(c.nbr, p, op, math.Float64bits(v))
}

// NbrWriteI64 reduces v into integer property p of the current neighbor.
func (c *Ctx) NbrWriteI64(p PropID, op reduce.Op, v int64) {
	c.WriteRef(c.nbr, p, op, uint64(v))
}

// NbrRead requests property p of the current neighbor — the paper's
// read_remote. If the neighbor is local or ghosted, ReadDone is invoked
// synchronously before NbrRead returns; otherwise the request is buffered
// and ReadDone runs later on this same worker with Node and Aux restored.
func (c *Ctx) NbrRead(p PropID) {
	c.ReadRef(c.nbr, p)
}

// WriteRef reduces the raw word into property p of the node identified by
// ref (a value previously obtained from NbrRef).
func (c *Ctx) WriteRef(ref int64, p PropID, op reduce.Op, word uint64) {
	w := c.w
	if act := w.job.activate; act != nil && act[p] >= 0 {
		w.writeActivating(ref, p, op, word, int(act[p]))
		return
	}
	if ref >= 0 {
		if int(ref) >= w.m.store.numLocal {
			if seg := w.privSeg[p]; seg != nil {
				// Ghost privatization: reduce into this worker's private
				// copy without atomics (paper §3.3).
				w.cols[p].applyPlain(&seg[int(ref)-w.m.store.numLocal], op, word)
				return
			}
		}
		w.cols[p].applyWord(int(ref), op, word)
		return
	}
	mach, off := unpackRemote(ref)
	w.bufferWrite(mach, p, op, off, word)
}

// ReadRef requests property p of the node identified by ref; see NbrRead.
func (c *Ctx) ReadRef(ref int64, p PropID) {
	w := c.w
	if ref >= 0 {
		w.job.spec.Task.ReadDone(c, w.cols[p].load(int(ref)))
		return
	}
	if c.stolen != nil {
		// A buffered remote read's continuation would run with the stolen
		// scratch long since reused; StealSpec requires NoReads kernels.
		w.fail(errStolenCtx(w, "remote ReadRef"))
	}
	mach, off := unpackRemote(ref)
	w.bufferRead(mach, p, off, c.Node, c.Aux)
}

// --- frontier interaction ---------------------------------------------------

// Activate marks the current node as a member of the job's Build[slot]
// frontier. Idempotent per node (duplicates are merged when the frontier is
// finalized); valid in Run and in continuations, where Node is restored.
func (c *Ctx) Activate(slot int) {
	if c.stolen != nil {
		// The stolen Node indexes the victim's range; activating it here
		// would corrupt this machine's frontier. StealSpec forbids Activate
		// (WriteSpec.ActivateInto covers receiver-side activation instead).
		c.w.fail(errStolenCtx(c.w, "Activate"))
	}
	b := c.w.job.builds[slot]
	b.shards[c.w.id] = append(b.shards[c.w.id], c.Node)
}

// SkipNode ends the current node's remaining edge invocations: the worker
// breaks out of the edge loop after the current Run returns. Pull kernels
// use it to stop scanning in-neighbors once the value they were looking for
// arrived — effective when neighbors are local or ghosted (their ReadDone
// runs synchronously); buffered remote reads resolve after the loop has
// moved on, so they cannot trigger an early exit. No-op on node iterators.
func (c *Ctx) SkipNode() { c.skip = true }

// CallRMI invokes registered method id on machine dst with the given
// payload. The response is delivered to the task's RMIDone on this worker,
// with Node and Aux restored. The payload is copied into the request
// message; it must fit one message buffer.
func (c *Ctx) CallRMI(dst int, method uint32, payload []byte) {
	if c.stolen != nil {
		c.w.fail(errStolenCtx(c.w, "CallRMI"))
	}
	c.w.bufferRMI(dst, method, payload, c.Node, c.Aux)
}
