package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/reduce"
)

// frontierMembers gathers the global ids of every member, via the bitmap (the
// representation-independent truth).
func frontierMembers(f *Frontier) []graph.NodeID {
	var out []graph.NodeID
	for mid, mf := range f.machines {
		for i := 0; i < mf.st.numLocal; i++ {
			if mf.has(uint32(i)) {
				out = append(out, f.c.layout.GlobalOf(mid, uint32(i)))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkInvariants verifies each machine partition's representation
// invariants: count matches set bits, degree sums cover exactly the members,
// and when sparse the list is sorted, duplicate-free, and mirrors the bitmap.
func checkInvariants(t *testing.T, f *Frontier) {
	t.Helper()
	for mid, mf := range f.machines {
		count := 0
		var outDeg, inDeg int64
		for i := 0; i < mf.st.numLocal; i++ {
			if mf.has(uint32(i)) {
				count++
				outDeg += int64(mf.st.outDeg[i])
				inDeg += int64(mf.st.inDeg[i])
			}
		}
		if count != mf.count || outDeg != mf.outDegSum || inDeg != mf.inDegSum {
			t.Fatalf("machine %d: count/outDeg/inDeg %d/%d/%d, bitmap says %d/%d/%d",
				mid, mf.count, mf.outDegSum, mf.inDegSum, count, outDeg, inDeg)
		}
		if mf.dense {
			if len(mf.sparse) != 0 {
				t.Fatalf("machine %d: dense with %d-entry sparse list", mid, len(mf.sparse))
			}
			continue
		}
		if len(mf.sparse) != count {
			t.Fatalf("machine %d: sparse list %d entries, bitmap %d", mid, len(mf.sparse), count)
		}
		for i, v := range mf.sparse {
			if i > 0 && mf.sparse[i-1] >= v {
				t.Fatalf("machine %d: sparse list unsorted at %d: %d >= %d", mid, i, mf.sparse[i-1], v)
			}
			if !mf.has(v) {
				t.Fatalf("machine %d: sparse entry %d not in bitmap", mid, v)
			}
		}
	}
}

// TestFrontierSparseDenseFlip drives one machine partition across the density
// threshold and back: the flip must happen exactly at the threshold, drop the
// sparse list, and clear must return to sparse.
func TestFrontierSparseDenseFlip(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(1)
	cfg.FrontierDenseFraction = 1.0 / 32
	c := bootCluster(t, g, cfg)
	f := c.NewFrontier("flip")
	mf := f.machines[0]
	threshold := cfg.frontierDenseThreshold(mf.st.numLocal)
	if threshold < 2 {
		t.Fatalf("graph too small: threshold %d", threshold)
	}
	for i := 0; i < threshold-1; i++ {
		f.Add(graph.NodeID(i))
		f.Add(graph.NodeID(i)) // duplicate adds must be idempotent
	}
	if mf.dense {
		t.Fatalf("dense below threshold (%d of %d)", mf.count, threshold)
	}
	checkInvariants(t, f)
	f.Add(graph.NodeID(threshold - 1))
	if !mf.dense {
		t.Fatalf("still sparse at threshold %d", threshold)
	}
	checkInvariants(t, f)
	if got := f.Count(); got != int64(threshold) {
		t.Fatalf("count %d after flip, want %d", got, threshold)
	}
	f.Reset()
	if mf.dense || mf.count != 0 || f.Count() != 0 {
		t.Fatalf("reset left dense=%v count=%d", mf.dense, mf.count)
	}
	checkInvariants(t, f)
}

// TestFrontierFillSubtractRoundTrip exercises the driver-side mutators across
// machines: Fill with a predicate, Subtract an overlapping set (including the
// dense→sparse flip-back when a dense frontier shrinks), and membership
// round-trips through the hybrid representation.
func TestFrontierFillSubtractRoundTrip(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(3)
	c := bootCluster(t, g, cfg)

	all := c.NewFrontier("all")
	all.Fill(nil) // dense everywhere
	for _, mf := range all.machines {
		if !mf.dense && mf.st.numLocal >= mf.denseThreshold {
			t.Fatal("full frontier not dense")
		}
	}
	odd := c.NewFrontier("odd")
	odd.Fill(func(v graph.NodeID) bool { return v%2 == 1 })
	checkInvariants(t, all)
	checkInvariants(t, odd)

	all.Subtract(odd)
	checkInvariants(t, all)
	want := int64(0)
	for v := 0; v < g.NumNodes(); v += 2 {
		want++
	}
	if got := all.Count(); got != want {
		t.Fatalf("after subtract: count %d, want %d", got, want)
	}
	for _, v := range frontierMembers(all) {
		if v%2 == 1 {
			t.Fatalf("odd node %d survived subtract", v)
		}
	}

	// Subtract down to a handful of members: every partition must flip back
	// to sparse (and stay consistent).
	evens := c.NewFrontier("evens")
	evens.Fill(func(v graph.NodeID) bool { return v%2 == 0 && v >= 16 })
	all.Subtract(evens)
	checkInvariants(t, all)
	members := frontierMembers(all)
	if len(members) != 8 {
		t.Fatalf("expected the 8 low even nodes, got %d members", len(members))
	}
	for mid, mf := range all.machines {
		if mf.dense && mf.count < mf.denseThreshold {
			t.Fatalf("machine %d still dense at %d members (threshold %d)", mid, mf.count, mf.denseThreshold)
		}
	}
	// Subtracting a disjoint (and an empty) frontier is a no-op.
	before := all.Count()
	all.Subtract(odd)
	empty := c.NewFrontier("empty")
	all.Subtract(empty)
	if all.Count() != before {
		t.Fatalf("disjoint/empty subtract changed count %d -> %d", before, all.Count())
	}
}

// activatePush pushes a fixed value into every out-neighbor with MIN; paired
// with WriteSpec.ActivateInto it must activate exactly the nodes whose stored
// word the reduction changed.
type activatePush struct {
	NoReads
	dst PropID
	val int64
}

func (k *activatePush) Run(c *Ctx) { c.NbrWriteI64(k.dst, reduce.Min, k.val) }

// TestActivateIntoChangedOnly: a MIN push with ActivateInto activates exactly
// the improved nodes — across local, ghost, and remote write paths — and a
// second identical push activates nobody (nothing changes). Runs over both
// transports so the copier-side activation path is exercised for real frames.
func TestActivateIntoChangedOnly(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := faultGraph(t)
		cfg := faultCfg(3)
		cfg.Fabric = faultFabric(t, cfg, useTCP, comm.FaultPlan{})
		c := bootCluster(t, g, cfg)
		dst, err := c.AddPropI64("act_dst")
		if err != nil {
			t.Fatal(err)
		}
		c.FillI64(dst, math.MaxInt64)

		src := c.NewFrontier("act_src")
		next := c.NewFrontier("act_next")
		roots := []graph.NodeID{0, 1, 5, 9}
		rootSet := map[graph.NodeID]bool{}
		for _, v := range roots {
			src.Add(v)
			rootSet[v] = true
		}
		spec := JobSpec{
			Name:       "act-push",
			Iter:       IterOutEdges,
			Source:     src,
			Task:       &activatePush{dst: dst, val: 7},
			WriteProps: []WriteSpec{{Prop: dst, Op: reduce.Min, ActivateInto: 1}},
			Build:      []*Frontier{next},
		}
		st, err := c.RunJob(spec)
		if err != nil {
			t.Fatal(err)
		}
		wantSet := map[graph.NodeID]bool{}
		for _, r := range roots {
			for _, v := range g.Out.Neighbors(r) {
				wantSet[v] = true
			}
		}
		got := frontierMembers(next)
		if int64(len(wantSet)) != st.Frontiers[0].Count || len(got) != len(wantSet) {
			t.Fatalf("activated %d (stats %d), want %d", len(got), st.Frontiers[0].Count, len(wantSet))
		}
		for _, v := range got {
			if !wantSet[v] {
				t.Fatalf("node %d activated but no root points at it", v)
			}
		}
		checkInvariants(t, next)
		// Every activated node's value changed; everyone else's did not.
		vals := c.GatherI64(dst)
		for v, val := range vals {
			if wantSet[graph.NodeID(v)] != (val == 7) {
				t.Fatalf("node %d: value %d, in-frontier %v", v, val, wantSet[graph.NodeID(v)])
			}
		}
		// Second identical push: MIN(7, 7) changes nothing, so nothing may
		// activate — receiver-side change detection, not write detection.
		st, err = c.RunJob(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st.Frontiers[0].Count != 0 || next.Count() != 0 {
			t.Fatalf("re-push activated %d nodes, want 0", st.Frontiers[0].Count)
		}
	})
}

// TestFrontierEmptyMachineSkip: a frontier whose members all live on one
// machine must still run collectives everywhere and produce correct results —
// machines with empty partitions skip chunk dispatch but not the protocol.
func TestFrontierEmptyMachineSkip(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(3)
	c := bootCluster(t, g, cfg)
	dst, err := c.AddPropI64("skip_dst")
	if err != nil {
		t.Fatal(err)
	}
	c.FillI64(dst, math.MaxInt64)

	src := c.NewFrontier("skip_src")
	// All members on machine 0.
	mf0 := src.machines[0]
	var roots []graph.NodeID
	for i := 0; i < 4 && i < mf0.st.numLocal; i++ {
		v := c.layout.GlobalOf(0, uint32(i))
		src.Add(v)
		roots = append(roots, v)
	}
	for mid, mf := range src.machines {
		if mid != 0 && mf.count != 0 {
			t.Fatalf("machine %d unexpectedly has %d members", mid, mf.count)
		}
	}
	next := c.NewFrontier("skip_next")
	st, err := c.RunJob(JobSpec{
		Name:       "skip-push",
		Iter:       IterOutEdges,
		Source:     src,
		Task:       &activatePush{dst: dst, val: 3},
		WriteProps: []WriteSpec{{Prop: dst, Op: reduce.Min, ActivateInto: 1}},
		Build:      []*Frontier{next},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSet := map[graph.NodeID]bool{}
	for _, r := range roots {
		for _, v := range g.Out.Neighbors(r) {
			wantSet[v] = true
		}
	}
	if st.Frontiers[0].Count != int64(len(wantSet)) {
		t.Fatalf("activated %d, want %d", st.Frontiers[0].Count, len(wantSet))
	}
	vals := c.GatherI64(dst)
	for v := range vals {
		want := int64(math.MaxInt64)
		if wantSet[graph.NodeID(v)] {
			want = 3
		}
		if vals[v] != want {
			t.Fatalf("node %d: value %d, want %d", v, vals[v], want)
		}
	}
}
