package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/reduce"
)

// Machine is one simulated PGX.D process (Figure 1: "the same program is
// instantiated on each machine in the cluster"): a Task Manager (the worker
// goroutines and chunk scheduler), a Data Manager (localStore + property
// columns + ghost synchronization), and a Communication Manager (router,
// copiers, buffer pools, collectives).
type Machine struct {
	id  int
	cfg *Config

	ep       comm.Endpoint
	router   *comm.Router
	col      *comm.Collectives
	reqPool  *comm.Pool
	respPool *comm.Pool
	ctrlPool *comm.Pool
	rmi      comm.RMIRegistry

	store      *localStore
	ghostOwned []int64
	cols       []*column

	chunksOut  []partition.Chunk
	chunksIn   []partition.Chunk
	chunksBoth []partition.Chunk
	chunksNode []partition.Chunk

	workers  []*worker
	copierWG sync.WaitGroup

	// Cumulative counts of remote write records sent and applied; their
	// cluster-wide equality is the termination condition for jobs with
	// remote pushes ("a particular job completes when the task list is
	// empty and there are no unfinished remote requests").
	writesSent    atomic.Int64
	writesApplied atomic.Int64

	// scratch vectors for ghost-sync collectives, reused across jobs.
	scratchF64 []float64
	scratchI64 []int64
}

// ID returns this machine's id in [0, NumMachines).
func (m *Machine) ID() int { return m.id }

// newMachine boots machine id over its endpoint: router (poller), pools,
// collectives, copier pool, and the persistent worker goroutines.
func newMachine(cfg *Config, id int, ep comm.Endpoint) *Machine {
	m := &Machine{id: id, cfg: cfg, ep: ep}
	m.reqPool = comm.NewPool(cfg.ReqBuffers, cfg.BufferSize)
	m.respPool = comm.NewPool(cfg.RespBuffers, cfg.BufferSize)
	m.ctrlPool = comm.NewPool(4*cfg.NumMachines+8, cfg.BufferSize)
	m.router = comm.NewRouter(ep, comm.RouterConfig{
		NumWorkers: cfg.Workers,
		// A worker's in-flight responses are bounded by the request pool, so
		// this depth guarantees the poller never blocks on a worker queue.
		RespDepth: cfg.ReqBuffers + 2,
		// Inbound requests are bounded by the senders' request pools.
		ReqDepth:  cfg.NumMachines*cfg.ReqBuffers + 4,
		CtrlDepth: 4*cfg.NumMachines + 8,
	})
	m.col = comm.NewCollectives(ep, m.router.Ctrl(), m.ctrlPool)
	m.workers = make([]*worker, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		m.workers[w] = newWorker(m, w)
		go m.workers[w].loop()
	}
	m.copierWG.Add(cfg.Copiers)
	for cp := 0; cp < cfg.Copiers; cp++ {
		go m.copierLoop()
	}
	return m
}

// load installs machine id's partition of g and precomputes scheduling
// chunks for each iterator orientation.
func (m *Machine) load(g *graph.Graph, layout partition.Layout, ghosts *partition.GhostSet) {
	m.store = buildLocalStore(g, layout, ghosts, m.id)
	m.ghostOwned = m.store.ghostOwnership()
	m.cols = nil
	m.rebuildChunks()
}

// rebuildChunks recomputes chunk lists under the current chunking config.
func (m *Machine) rebuildChunks() {
	n := m.store.numLocal
	if m.cfg.NodeChunking {
		size := m.cfg.NodeChunkSize
		if size <= 0 {
			size = n/(8*m.cfg.Workers) + 1
		}
		m.chunksOut = partition.NodeChunks(n, size)
		m.chunksIn = m.chunksOut
		m.chunksBoth = m.chunksOut
		m.chunksNode = m.chunksOut
		return
	}
	target := m.cfg.ChunkTargetEdges
	outTarget, inTarget, bothTarget := target, target, target
	if target <= 0 {
		outTarget = m.store.outRows[n]/int64(8*m.cfg.Workers) + 1
		inTarget = m.store.inRows[n]/int64(8*m.cfg.Workers) + 1
		bothTarget = m.store.bothRows[n]/int64(8*m.cfg.Workers) + 1
	}
	m.chunksOut = partition.EdgeChunks(m.store.outRows, outTarget)
	m.chunksIn = partition.EdgeChunks(m.store.inRows, inTarget)
	m.chunksBoth = partition.EdgeChunks(m.store.bothRows, bothTarget)
	m.chunksNode = partition.NodeChunks(n, n/(8*m.cfg.Workers)+1)
}

// addProp allocates this machine's column for a newly registered property.
func (m *Machine) addProp(meta propMeta) {
	m.cols = append(m.cols, newColumn(meta.kind, m.store.numLocal, m.store.ghosts.Len(), m.cfg.Workers))
}

// machineJobStats is runJob's per-machine result; the cluster reports
// machine 0's (the collectives make the global fields identical everywhere).
type machineJobStats struct {
	duration  time.Duration
	breakdown Breakdown
}

// runJob executes one parallel region on this machine. Every machine's main
// goroutine runs this concurrently (SPMD); the collectives inside keep them
// in lockstep. The sequence implements §3 end to end:
//
//  1. ghost read-sync: owners' values propagate to every ghost copy
//  2. ghost write-props reset to the reduction's bottom value
//  3. start barrier, then the workers drain the chunked task list,
//     buffering remote requests and running continuations (RTC)
//  4. barrier: all machines' task lists empty, all reads answered
//  5. write-drain: allreduce (sent, applied) until every buffered remote
//     write has been applied by a copier somewhere
//  6. ghost write merge: worker-private → machine (stage one), then
//     machine partials → owner via an op-allreduce (stage two)
func (m *Machine) runJob(spec *JobSpec) (machineJobStats, error) {
	jr := &jobRuntime{spec: spec}
	switch spec.Iter {
	case IterNodes:
		jr.chunks = m.chunksNode
	case IterOutEdges:
		jr.chunks = m.chunksOut
		jr.rows, jr.refs, jr.weights = m.store.outRows, m.store.outRefs, m.store.outWeights
	case IterInEdges:
		jr.chunks = m.chunksIn
		jr.rows, jr.refs, jr.weights = m.store.inRows, m.store.inRefs, m.store.inWeights
	case IterBothEdges:
		jr.chunks = m.chunksBoth
		jr.rows, jr.refs, jr.weights = m.store.outRows, m.store.outRefs, m.store.outWeights
		jr.rows2, jr.refs2, jr.weights2 = m.store.inRows, m.store.inRefs, m.store.inWeights
	}

	numGhost := m.store.ghosts.Len()
	if numGhost > 0 {
		for _, p := range spec.ReadProps {
			if err := m.syncGhostRead(p); err != nil {
				return machineJobStats{}, err
			}
		}
		for _, ws := range spec.WriteProps {
			col := m.cols[ws.Prop]
			bottom := col.bottomWord(ws.Op)
			for s := 0; s < numGhost; s++ {
				col.store(col.numLocal+s, bottom)
			}
		}
		if !m.cfg.DisableGhostPrivatization {
			jr.privProps = spec.WriteProps
		}
	}

	if err := m.col.Barrier(); err != nil {
		return machineJobStats{}, err
	}
	t0 := time.Now()

	jr.wg.Add(len(m.workers))
	for _, w := range m.workers {
		w.jobCh <- jr
	}
	jr.wg.Wait()

	if err := m.col.Barrier(); err != nil {
		return machineJobStats{}, err
	}

	// Termination detection for buffered remote writes: cumulative sent
	// counts are final once every machine passed the barrier above, so loop
	// until the cluster-wide applied count catches up.
	for {
		vals := []int64{m.writesSent.Load(), m.writesApplied.Load()}
		if err := m.col.AllReduceI64(vals, reduce.Sum); err != nil {
			return machineJobStats{}, err
		}
		if vals[0] == vals[1] {
			break
		}
		runtime.Gosched()
	}

	if numGhost > 0 && len(spec.WriteProps) > 0 {
		if err := m.mergeGhostWrites(jr); err != nil {
			return machineJobStats{}, err
		}
	}
	total := time.Since(t0)

	// Breakdown (Figure 6c) from per-worker end times, folded into a single
	// Min-allreduce: min worker end (fully-parallel boundary), min machine
	// end (inter-machine boundary), and -max machine end (job end).
	eMin, eMax := int64(1<<62), int64(0)
	for _, w := range m.workers {
		d := w.endTime.Sub(t0).Nanoseconds()
		if d < eMin {
			eMin = d
		}
		if d > eMax {
			eMax = d
		}
	}
	tv := []int64{eMin, eMax, -eMax}
	if err := m.col.AllReduceI64(tv, reduce.Min); err != nil {
		return machineJobStats{}, err
	}
	fully, minMachineEnd, jobEnd := tv[0], tv[1], -tv[2]
	st := machineJobStats{duration: total}
	st.breakdown = Breakdown{
		FullyParallel: time.Duration(fully),
		IntraMachine:  time.Duration(minMachineEnd - fully),
		InterMachine:  time.Duration(jobEnd - minMachineEnd),
		Sync:          total - time.Duration(jobEnd),
	}
	return st, nil
}

// syncGhostRead refreshes every ghost copy of property p from its owner
// (paper §3.3: "for properties that are to be read in the parallel region,
// PGX.D copies the original values into the ghost nodes prior to the
// execution step"). Implemented as a chunked sum-allreduce in which only the
// owner contributes a non-identity value.
func (m *Machine) syncGhostRead(p PropID) error {
	col := m.cols[p]
	ng := m.store.ghosts.Len()
	maxVals := (m.cfg.BufferSize - comm.HeaderSize) / 8
	for base := 0; base < ng; base += maxVals {
		n := ng - base
		if n > maxVals {
			n = maxVals
		}
		switch col.kind {
		case KindF64:
			vals := m.scratchF64[:0]
			for i := 0; i < n; i++ {
				v := 0.0
				if own := m.ghostOwned[base+i]; own >= 0 {
					v = col.getF64(int(own))
				}
				vals = append(vals, v)
			}
			m.scratchF64 = vals
			if err := m.col.AllReduceF64(vals, reduce.Sum); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				col.setF64(col.numLocal+base+i, vals[i])
			}
		case KindI64:
			vals := m.scratchI64[:0]
			for i := 0; i < n; i++ {
				v := int64(0)
				if own := m.ghostOwned[base+i]; own >= 0 {
					v = col.getI64(int(own))
				}
				vals = append(vals, v)
			}
			m.scratchI64 = vals
			if err := m.col.AllReduceI64(vals, reduce.Sum); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				col.setI64(col.numLocal+base+i, vals[i])
			}
		}
	}
	return nil
}

// mergeGhostWrites performs the two-stage ghost reduction of §3.3: "first
// between cores and then between machines". Stage one folds each worker's
// private ghost segment into the machine-level ghost copy; stage two
// combines machine partials with an op-allreduce and lets each owner reduce
// the combined partial into the original node's value.
func (m *Machine) mergeGhostWrites(jr *jobRuntime) error {
	ng := m.store.ghosts.Len()
	maxVals := (m.cfg.BufferSize - comm.HeaderSize) / 8
	for _, ws := range jr.spec.WriteProps {
		col := m.cols[ws.Prop]
		if len(jr.privProps) > 0 {
			for _, w := range m.workers {
				seg := w.privSeg[ws.Prop]
				if seg == nil {
					continue
				}
				for s := 0; s < ng; s++ {
					col.store(col.numLocal+s, col.mergeWords(ws.Op, col.load(col.numLocal+s), seg[s]))
				}
			}
		}
		for base := 0; base < ng; base += maxVals {
			n := ng - base
			if n > maxVals {
				n = maxVals
			}
			switch col.kind {
			case KindF64:
				vals := m.scratchF64[:0]
				for i := 0; i < n; i++ {
					vals = append(vals, col.getF64(col.numLocal+base+i))
				}
				m.scratchF64 = vals
				if err := m.col.AllReduceF64(vals, ws.Op); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if own := m.ghostOwned[base+i]; own >= 0 {
						col.applyWord(int(own), ws.Op, WordF64(vals[i]))
					}
				}
			case KindI64:
				vals := m.scratchI64[:0]
				for i := 0; i < n; i++ {
					vals = append(vals, col.getI64(col.numLocal+base+i))
				}
				m.scratchI64 = vals
				if err := m.col.AllReduceI64(vals, ws.Op); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if own := m.ghostOwned[base+i]; own >= 0 {
						col.applyWord(int(own), ws.Op, WordI64(vals[i]))
					}
				}
			}
		}
	}
	return nil
}

// Call invokes registered RMI method on machine dst from this machine's
// main goroutine (sequential region) and returns the response payload.
func (m *Machine) Call(dst int, method uint32, payload []byte) ([]byte, error) {
	buf := m.ctrlPool.Acquire()
	if len(payload) > buf.Room() {
		buf.Release()
		return nil, fmt.Errorf("core: RMI payload of %d bytes exceeds buffer size", len(payload))
	}
	buf.Reset(comm.Header{
		Type:   comm.MsgRMIReq,
		Worker: comm.CtrlWorker,
		Src:    uint16(m.id),
		Count:  1,
		Aux:    uint64(method) << 32,
	})
	buf.AppendBytes(payload)
	if err := m.ep.Send(dst, buf); err != nil {
		return nil, err
	}
	resp, ok := <-m.router.RMIResp()
	if !ok {
		return nil, fmt.Errorf("core: machine %d shut down during RMI", m.id)
	}
	out := make([]byte, len(resp.Payload()))
	copy(out, resp.Payload())
	resp.Release()
	return out, nil
}

// shutdown stops the workers, copiers, and poller. Outstanding frames are
// drained and returned to their pools.
func (m *Machine) shutdown() {
	for _, w := range m.workers {
		close(w.jobCh)
	}
	m.router.Shutdown()
	m.copierWG.Wait()
}
