package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/reduce"
	"repro/internal/store"
)

// Machine is one simulated PGX.D process (Figure 1: "the same program is
// instantiated on each machine in the cluster"): a Task Manager (the worker
// goroutines and chunk scheduler), a Data Manager (localStore + property
// columns + ghost synchronization), and a Communication Manager (router,
// copiers, buffer pools, collectives).
type Machine struct {
	id  int
	cfg *Config

	ep        comm.Endpoint
	router    *comm.Router
	col       *comm.Collectives
	reqPool   *comm.Pool
	respPool  *comm.Pool
	ctrlPool  *comm.Pool
	abortPool *comm.Pool
	rmi       comm.RMIRegistry

	// curJob points at the running job's runtime while a parallel region is
	// in flight, so goroutines outside the job's call tree (copiers, the
	// abort watcher) can fail it. Nil between jobs.
	curJob atomic.Pointer[jobRuntime]
	// pendingAbort parks a remote abort announcement that raced ahead of
	// the local job start; runJob claims it when the ids match.
	pendingAbort atomic.Pointer[pendingAbort]

	store      *localStore
	ghostOwned []int64
	cols       []*column

	// residency is the shared out-of-core residency window (nil for
	// in-memory loads): workers advise claimed chunks in through it and it
	// advises the oldest ranges out past the configured budget.
	residency *store.Residency

	// dec is the compressed store file's decode cache (nil unless the
	// current load came from a CSR v3 file): this machine's refs live in its
	// arenas and workers pin the blocks under each claimed chunk.
	dec *store.DecodeCache

	// offHeapCols moves property columns to anonymous mmap — set for
	// out-of-core loads with a resident budget, so the O(N) columns stay off
	// the GC heap and release eagerly.
	offHeapCols bool

	// spill is the spillable write buffer (nil unless Config.SpillWrites):
	// copiers defer inbound write frames into it while a job is armed and the
	// drain loop replays them; see spill.go.
	spill *spillState

	chunksOut  []partition.Chunk
	chunksIn   []partition.Chunk
	chunksBoth []partition.Chunk
	chunksNode []partition.Chunk

	workers  []*worker
	copierWG sync.WaitGroup

	// Cumulative counts of remote write records sent and applied; their
	// cluster-wide equality is the termination condition for jobs with
	// remote pushes ("a particular job completes when the task list is
	// empty and there are no unfinished remote requests").
	writesSent    atomic.Int64
	writesApplied atomic.Int64

	// scratch vectors for ghost-sync collectives, reused across jobs.
	scratchF64 []float64
	scratchI64 []int64

	// loadHints[i] is machine i's task-phase wall time in the last completed
	// job, gathered via extra lanes on the write-drain allreduce at no
	// additional collective cost. Workers consult it at the start of the
	// next job's steal phase to pick the most loaded victim first;
	// loadTotals accumulates the same lanes across jobs for the
	// repartitioner. Written only by the machine's main goroutine between
	// jobs (the worker dispatch channel orders the write before any read).
	loadHints  []int64
	loadTotals []int64

	// degMass[i] is machine i's in+out degree sum under the current layout —
	// the static load estimate the steal phase uses to tell a structurally
	// skewed cut (steal from the straggler every job) from a balanced one
	// (steal only on strong dynamic-skew evidence). Written at load time,
	// read by workers; Load's cluster barrier orders the write.
	degMass []int64
}

// ID returns this machine's id in [0, NumMachines).
func (m *Machine) ID() int { return m.id }

// newMachine boots machine id over its endpoint: router (poller), pools,
// collectives, copier pool, and the persistent worker goroutines.
func newMachine(cfg *Config, id int, ep comm.Endpoint) *Machine {
	m := &Machine{id: id, cfg: cfg, ep: ep}
	m.spill = newSpillState(cfg)
	m.reqPool = comm.NewPool(cfg.ReqBuffers, cfg.BufferSize)
	m.respPool = comm.NewPool(cfg.RespBuffers, cfg.BufferSize)
	m.ctrlPool = comm.NewPool(4*cfg.NumMachines+8, cfg.BufferSize)
	m.router = comm.NewRouter(ep, comm.RouterConfig{
		NumWorkers: cfg.Workers,
		// A worker's in-flight responses are bounded by the request pool, so
		// this depth guarantees the poller never blocks on a worker queue.
		RespDepth: cfg.ReqBuffers + 2,
		// Inbound requests are bounded by the senders' request pools.
		ReqDepth:  cfg.NumMachines*cfg.ReqBuffers + 4,
		CtrlDepth: 4*cfg.NumMachines + 8,
	})
	m.col = comm.NewCollectives(ep, m.router.Ctrl(), m.ctrlPool)
	// Ghost-merge reductions ride int64 allreduces; compress them with the
	// same ablation switch as the flush paths. SPMD: every machine of the
	// cluster shares one Config, so the setting always agrees.
	m.col.SetCompression(!cfg.DisableWireCompression)
	m.workers = make([]*worker, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		m.workers[w] = newWorker(m, w)
		go m.workers[w].loop()
	}
	m.copierWG.Add(cfg.Copiers)
	for cp := 0; cp < cfg.Copiers; cp++ {
		go m.copierLoop()
	}
	// Small dedicated pool for outbound abort announcements: aborts must
	// never compete with (possibly exhausted) request/response pools, and
	// the payload is just an error string.
	abortBuf := 512
	if abortBuf > cfg.BufferSize {
		abortBuf = cfg.BufferSize
	}
	m.abortPool = comm.NewPool(cfg.NumMachines+2, abortBuf)
	m.copierWG.Add(1)
	go m.abortWatcher()
	return m
}

// pendingAbort records a MsgAbort that arrived for a job this machine has
// not started yet (announcements can outrun the SPMD fan-out).
type pendingAbort struct {
	id  uint64
	err error
}

// abortWatcher consumes inbound MsgAbort frames for the life of the
// machine, failing the matching local job so no machine hangs waiting on a
// peer that already gave up.
func (m *Machine) abortWatcher() {
	defer m.copierWG.Done()
	for buf := range m.router.AbortQueue() {
		h := buf.Header()
		err := fmt.Errorf("core: machine %d aborted job %d: %s", h.Src, h.Aux, buf.Payload())
		buf.Release()
		if jr := m.curJob.Load(); jr != nil && jr.id == h.Aux {
			jr.fail(err)
		} else {
			m.pendingAbort.Store(&pendingAbort{id: h.Aux, err: err})
		}
	}
}

// abortJob fails jr with err; the first failure on this machine announces
// the abort to every peer so they stop waiting on us.
func (m *Machine) abortJob(jr *jobRuntime, err error) {
	if jr.fail(err) {
		m.broadcastAbort(jr.id, err)
	}
}

// abortCurrent fails whatever job is running, if any — the entry point for
// goroutines (copiers) that serve traffic independent of job scope. With no
// job in flight the error has no job to fail; it has already been counted
// in the transport metrics.
func (m *Machine) abortCurrent(err error) {
	if jr := m.curJob.Load(); jr != nil {
		m.abortJob(jr, err)
	}
}

// broadcastAbort sends MsgAbort(jobID, err) to every peer, best-effort:
// frames come from the small dedicated pool without blocking, and send
// failures are ignored — a peer that misses the announcement still fails
// via its request or collective timeout.
func (m *Machine) broadcastAbort(jobID uint64, err error) {
	msg := err.Error()
	for d := 0; d < m.cfg.NumMachines; d++ {
		if d == m.id {
			continue
		}
		buf, ok := m.abortPool.TryAcquire()
		if !ok {
			return
		}
		buf.Reset(comm.Header{
			Type:   comm.MsgAbort,
			Worker: comm.CtrlWorker,
			Src:    uint16(m.id),
			Aux:    jobID,
		})
		text := msg
		if room := buf.Room(); len(text) > room {
			text = text[:room]
		}
		buf.AppendBytes([]byte(text))
		m.ep.Send(d, buf) // ownership transferred; failure already released it
	}
}

// load installs machine id's partition of g and precomputes scheduling
// chunks for each iterator orientation.
func (m *Machine) load(g *graph.Graph, layout partition.Layout, ghosts *partition.GhostSet) {
	m.store = buildLocalStore(g, layout, ghosts, m.id)
	m.ghostOwned = m.store.ghostOwnership()
	m.releaseCols()
	m.loadHints, m.loadTotals = nil, nil
	m.degMass = layout.DegreeMass(g)
	m.residency = nil
	m.dec = nil
	m.offHeapCols = false
	m.rebuildChunks()
}

// rebuildChunks recomputes chunk lists under the current chunking config.
func (m *Machine) rebuildChunks() {
	n := m.store.numLocal
	if m.cfg.NodeChunking {
		size := m.cfg.NodeChunkSize
		if size <= 0 {
			size = n/(8*m.cfg.Workers) + 1
		}
		m.chunksOut = partition.NodeChunks(n, size)
		m.chunksIn = m.chunksOut
		m.chunksBoth = m.chunksOut
		m.chunksNode = m.chunksOut
		return
	}
	target := m.cfg.ChunkTargetEdges
	outTarget, inTarget, bothTarget := target, target, target
	if target <= 0 {
		outTarget = m.store.outRows[n]/int64(8*m.cfg.Workers) + 1
		inTarget = m.store.inRows[n]/int64(8*m.cfg.Workers) + 1
		bothTarget = m.store.bothRows[n]/int64(8*m.cfg.Workers) + 1
	}
	m.chunksOut = partition.EdgeChunks(m.store.outRows, outTarget)
	m.chunksIn = partition.EdgeChunks(m.store.inRows, inTarget)
	m.chunksBoth = partition.EdgeChunks(m.store.bothRows, bothTarget)
	m.chunksNode = partition.NodeChunks(n, n/(8*m.cfg.Workers)+1)
}

// addProp allocates this machine's column for a newly registered property.
func (m *Machine) addProp(meta propMeta) {
	m.cols = append(m.cols, m.newCol(meta))
}

// newCol builds one column for this machine's current load, off-heap when
// the load asked for it.
func (m *Machine) newCol(meta propMeta) *column {
	return newColumn(meta.kind, m.store.numLocal, m.store.ghosts.Len(), m.cfg.Workers, m.offHeapCols)
}

// releaseCols drops every column, returning off-heap backings to the kernel.
func (m *Machine) releaseCols() {
	for _, col := range m.cols {
		col.release()
	}
	m.cols = nil
}

// machineJobStats is runJob's per-machine result; the cluster reports
// machine 0's (the collectives make the global fields identical everywhere).
type machineJobStats struct {
	duration  time.Duration
	breakdown Breakdown
	frontiers []FrontierStats
}

// runJob executes one parallel region on this machine. Every machine's main
// goroutine runs this concurrently (SPMD); the collectives inside keep them
// in lockstep. The sequence implements §3 end to end:
//
//  1. ghost read-sync: owners' values propagate to every ghost copy
//  2. ghost write-props reset to the reduction's bottom value
//  3. start barrier, then the workers drain the chunked task list,
//     buffering remote requests and running continuations (RTC)
//  4. barrier: all machines' task lists empty, all reads answered
//  5. write-drain: allreduce (sent, applied) until every buffered remote
//     write has been applied by a copier somewhere
//  6. ghost write merge: worker-private → machine (stage one), then
//     machine partials → owner via an op-allreduce (stage two)
//
// jobFail turns err into the job's failure: it is recorded (first error
// wins), announced to peers, and the job's root cause — which may be an
// earlier error from elsewhere — is returned as this machine's result.
func (m *Machine) jobFail(jr *jobRuntime, err error) error {
	m.abortJob(jr, err)
	if root := jr.Err(); root != nil {
		return root
	}
	return err
}

// obsBarrier wraps one collective barrier with a span + histogram sample
// when observability is attached. arg distinguishes the pre-task (0) and
// post-task (1) barriers in the trace.
func (m *Machine) obsBarrier(jobID, arg uint64) error {
	reg := m.cfg.Obs
	if reg == nil {
		return m.col.Barrier()
	}
	t := reg.Clock()
	err := m.col.Barrier()
	reg.Span(m.id, obs.WorkerMain, obs.SpanBarrier, jobID, t, arg)
	reg.Observe(m.id, obs.HistBarrier, time.Duration(reg.Clock()-t))
	return err
}

func (m *Machine) runJob(spec *JobSpec, jobID uint64) (machineJobStats, error) {
	jr := &jobRuntime{spec: spec, id: jobID, abortCh: make(chan struct{}), res: m.residency}
	if spec.Steal != nil && m.cfg.stealingOn() {
		jr.steal = &stealRuntime{stolenNS: make([]int64, m.cfg.NumMachines)}
	}
	reg := m.cfg.Obs
	jobClock := reg.Clock()
	if reg != nil {
		defer func() { reg.Span(m.id, obs.WorkerMain, obs.SpanJob, jobID, jobClock, 0) }()
	}
	switch spec.Iter {
	case IterNodes:
		jr.chunks = m.chunksNode
	case IterOutEdges:
		jr.chunks = m.chunksOut
		jr.rows, jr.refs, jr.weights = m.store.outRows, m.store.outRefs, m.store.outWeights
		jr.dec, jr.decMach, jr.orient = m.dec, m.id, store.OrientOut
	case IterInEdges:
		jr.chunks = m.chunksIn
		jr.rows, jr.refs, jr.weights = m.store.inRows, m.store.inRefs, m.store.inWeights
		jr.dec, jr.decMach, jr.orient = m.dec, m.id, store.OrientIn
	case IterBothEdges:
		jr.chunks = m.chunksBoth
		jr.rows, jr.refs, jr.weights = m.store.outRows, m.store.outRefs, m.store.outWeights
		jr.rows2, jr.refs2, jr.weights2 = m.store.inRows, m.store.inRefs, m.store.inWeights
		jr.dec, jr.decMach, jr.orient = m.dec, m.id, store.OrientOut
	}

	// Frontier-sourced iteration: restrict the chunk list to this machine's
	// local frontier. Sparse frontiers get an edge-balanced cut of the
	// member list; dense ones keep node-id chunks, dropping those whose
	// bitmap range is all-inactive. An empty local frontier skips worker
	// dispatch entirely — but every collective below still runs, because the
	// machine's peers may have members and the SPMD schedule must agree.
	emptySkip := false
	if spec.Source != nil {
		srcMF := spec.Source.machines[m.id]
		switch {
		case m.cfg.DisableSparseFrontier:
			// Ablation: dense-filter fallback — scan every chunk, test the
			// membership bit per node, never skip an empty machine.
			jr.frontBits = srcMF.bits
		case srcMF.count == 0:
			// With stealing on, the workers still dispatch: an empty local
			// frontier is exactly when this machine has idle cycles to steal
			// with (and residual grant chunks can only be run by workers).
			if jr.steal == nil {
				emptySkip = true
			}
			jr.chunks = nil
		case srcMF.dense:
			jr.frontBits = srcMF.bits
			jr.chunks = srcMF.denseChunks(jr.chunks)
		default:
			jr.frontList = srcMF.sparse
			jr.chunks = srcMF.listChunks(spec.Iter, m.cfg.Workers)
		}
	}
	if len(spec.Build) > 0 {
		jr.builds = make([]*machineFrontier, len(spec.Build))
		for i, f := range spec.Build {
			bf := f.machines[m.id]
			bf.beginBuild()
			jr.builds[i] = bf
		}
	}
	// Write-activation (WriteSpec.ActivateInto): a per-property slot index
	// copiers and workers consult on every reduce-write apply. Nil when the
	// job has no activating specs, keeping the common write path branchless.
	for _, ws := range spec.WriteProps {
		if ws.ActivateInto > 0 {
			if jr.activate == nil {
				jr.activate = make([]int8, len(m.cols))
				for i := range jr.activate {
					jr.activate[i] = -1
				}
			}
			jr.activate[ws.Prop] = int8(ws.ActivateInto - 1)
		}
	}

	// Publish the job before any traffic so copiers and the abort watcher
	// can fail it, and point the collectives at its abort channel. A remote
	// abort announcement may already be parked if a fast peer failed before
	// we even got here.
	// Arm the spill before publishing the job: the pre-task barrier orders
	// curJob install before any peer's first write frame, so an armed spill
	// sees every frame of this job. The deferred reset (success, failure, or
	// abort alike) discards any unreplayed backlog and removes the temp file.
	m.spill.begin()
	defer m.spill.reset()
	m.curJob.Store(jr)
	defer m.curJob.Store(nil)
	if pa := m.pendingAbort.Swap(nil); pa != nil && pa.id == jobID {
		jr.fail(pa.err)
	}
	m.col.SetAbort(jr.abortCh)
	m.col.SetTimeout(m.cfg.CollectiveTimeout)
	defer func() {
		m.col.SetAbort(nil)
		m.col.SetTimeout(0)
	}()

	numGhost := m.store.ghosts.Len()
	if numGhost > 0 {
		for _, p := range spec.ReadProps {
			syncClock := reg.Clock()
			if err := m.syncGhostRead(p); err != nil {
				return machineJobStats{}, m.jobFail(jr, err)
			}
			reg.Span(m.id, obs.WorkerMain, obs.SpanGhostReadSync, jobID, syncClock, uint64(p))
		}
		for _, ws := range spec.WriteProps {
			if ws.ActivateInto > 0 {
				continue // activating writes bypass ghost accumulation
			}
			col := m.cols[ws.Prop]
			bottom := col.bottomWord(ws.Op)
			for s := 0; s < numGhost; s++ {
				col.store(col.numLocal+s, bottom)
			}
		}
		// With an empty local frontier the workers never run, so their
		// private ghost segments stay stale from an earlier job — they must
		// not be merged. The shared ghost copies were just re-bottomed, so
		// stage two still contributes clean identity partials. Activating
		// specs never privatize: their writes must reach the owner (and
		// activate there) before the termination allreduce, not sit in ghost
		// partials until after it.
		if !m.cfg.DisableGhostPrivatization && !emptySkip {
			for _, ws := range spec.WriteProps {
				if ws.ActivateInto == 0 {
					jr.privProps = append(jr.privProps, ws)
				}
			}
		}
	}

	if err := m.obsBarrier(jobID, 0); err != nil {
		return machineJobStats{}, m.jobFail(jr, err)
	}
	t0 := time.Now()
	taskClock := reg.Clock()

	if !emptySkip {
		jr.wg.Add(len(m.workers))
		for _, w := range m.workers {
			w.jobCh <- jr
		}
		jr.wg.Wait()
	}
	taskNS := time.Since(t0).Nanoseconds()
	reg.Span(m.id, obs.WorkerMain, obs.SpanTaskPhase, jobID, taskClock, 0)

	// Workers unwound on failure without an error return path; the job
	// runtime carries the root cause.
	if err := jr.Err(); err != nil {
		return machineJobStats{}, err
	}

	// Built frontiers finalize now: kernel activations (Ctx.Activate) come
	// only from this machine's own workers, so the shard merge is final once
	// the local task phase joined. Write-activations from remote machines may
	// still be in flight — they buffer copier-side and drain into the
	// membership once per allreduce round below, so the converging round's
	// stats are complete.
	for _, bf := range jr.builds {
		bf.finalize()
	}

	if err := m.obsBarrier(jobID, 1); err != nil {
		return machineJobStats{}, m.jobFail(jr, err)
	}

	// Termination detection for buffered remote writes: cumulative sent
	// counts are final once every machine passed the barrier above, so loop
	// until the cluster-wide applied count catches up. The deadline is the
	// fault detector: a write frame lost on the wire would otherwise keep
	// this loop (and hence the whole cluster) spinning forever.
	//
	// Built-frontier stats piggyback on the same allreduce — three extra
	// lanes per Build slot instead of the separate O(V)-scan ReduceI64 the
	// traversal algorithms used for convergence checks. The locals are
	// re-staged each round (the allreduce overwrites the vector with sums),
	// and each round first drains copier-buffered write-activations: loading
	// writesApplied (acquire) before taking the buffer's lock means a round
	// that observes the final applied count also observes every activation
	// those applies buffered, so the converging round's stats are complete.
	var drainDeadline time.Time
	if m.cfg.RequestTimeout > 0 {
		drainDeadline = time.Now().Add(m.cfg.RequestTimeout)
	}
	// Per-machine task-phase times ride the same allreduce as NumMachines
	// additional lanes (each machine contributes only its own lane, so the
	// sums reconstruct the full vector): the load hints steering the next
	// job's steal phase and, accumulated, the repartitioner's telemetry.
	drainClock := reg.Clock()
	nm := m.cfg.NumMachines
	base := 2 + 3*len(jr.builds)
	lanes := base + nm
	// Steal attribution: when this job could be stolen from, 2*nm more lanes
	// ride the allreduce so stolen work is billed to the victim, not the
	// thief. Lane base+nm+i sums, over all thieves, the wall-equivalent time
	// spent on machine i's nodes (per-worker CPU time divided by the worker
	// count — the same conversion taskNS implies for a saturated phase); lane
	// base+2nm+j is machine j's total such time as a thief. Every machine
	// computes the same adjusted totals from the same sums, so the
	// repartitioner's telemetry stays cluster-wide consistent.
	var stolenFor []int64
	var stolenTotal int64
	if jr.steal != nil {
		lanes += 2 * nm
		stolenFor = make([]int64, nm)
		for i := range stolenFor {
			stolenFor[i] = jr.steal.stolenNS[i] / int64(m.cfg.Workers)
			stolenTotal += stolenFor[i]
		}
	}
	vals := make([]int64, lanes)
	var spillDec *wireDec
	if m.spill != nil {
		spillDec = new(wireDec)
	}
	for {
		// Replay the spilled backlog before staging this round's applied
		// count: a round that observes sent == applied has replayed every
		// frame that arrived before it. Frames landing during replay buffer
		// for the next round, which the unchanged sent total forces.
		if m.spill != nil {
			if _, err := m.replaySpill(spillDec); err != nil {
				return machineJobStats{}, m.jobFail(jr, err)
			}
		}
		vals[0], vals[1] = m.writesSent.Load(), m.writesApplied.Load()
		for i, bf := range jr.builds {
			if jr.activate != nil {
				bf.drainRemote()
			}
			vals[2+3*i] = int64(bf.count)
			vals[3+3*i] = bf.outDegSum
			vals[4+3*i] = bf.inDegSum
		}
		for i := base; i < lanes; i++ {
			vals[i] = 0
		}
		vals[base+m.id] = taskNS
		if jr.steal != nil {
			copy(vals[base+nm:base+2*nm], stolenFor)
			vals[base+2*nm+m.id] = stolenTotal
		}
		if err := m.col.AllReduceI64(vals, reduce.Sum); err != nil {
			return machineJobStats{}, m.jobFail(jr, err)
		}
		if vals[0] == vals[1] {
			break
		}
		if err := jr.Err(); err != nil {
			return machineJobStats{}, err
		}
		if !drainDeadline.IsZero() && time.Now().After(drainDeadline) {
			return machineJobStats{}, m.jobFail(jr, fmt.Errorf("core: machine %d: write drain timed out after %v (sent=%d applied=%d)", m.id, m.cfg.RequestTimeout, vals[0], vals[1]))
		}
		runtime.Gosched()
	}
	if len(m.loadHints) != nm {
		m.loadHints = make([]int64, nm)
		m.loadTotals = make([]int64, nm)
	}
	// loadHints stay raw: the steal phase wants observed wall times (who is
	// the straggler right now). loadTotals get the attribution correction —
	// time thieves spent on machine i's nodes moves from the thieves' columns
	// to i's — clamped at zero since the conversion is an estimate.
	copy(m.loadHints, vals[base:base+nm])
	for i := 0; i < nm; i++ {
		adj := vals[base+i]
		if jr.steal != nil {
			adj += vals[base+nm+i] - vals[base+2*nm+i]
			if adj < 0 {
				adj = 0
			}
		}
		m.loadTotals[i] += adj
	}
	reg.Span(m.id, obs.WorkerMain, obs.SpanWriteDrain, jobID, drainClock, 0)

	if numGhost > 0 && len(spec.WriteProps) > 0 {
		mergeClock := reg.Clock()
		if err := m.mergeGhostWrites(jr); err != nil {
			return machineJobStats{}, m.jobFail(jr, err)
		}
		reg.Span(m.id, obs.WorkerMain, obs.SpanGhostMerge, jobID, mergeClock, 0)
	}
	total := time.Since(t0)

	// Breakdown (Figure 6c) from per-worker end times, folded into a single
	// Min-allreduce: min worker end (fully-parallel boundary), min machine
	// end (inter-machine boundary), and -max machine end (job end). A
	// machine that skipped dispatch contributes zero (its workers' end times
	// are stale from an earlier job).
	eMin, eMax := int64(1<<62), int64(0)
	if emptySkip {
		eMin = 0
	} else {
		for _, w := range m.workers {
			d := w.endTime.Sub(t0).Nanoseconds()
			if d < eMin {
				eMin = d
			}
			if d > eMax {
				eMax = d
			}
		}
	}
	tv := []int64{eMin, eMax, -eMax}
	if err := m.col.AllReduceI64(tv, reduce.Min); err != nil {
		return machineJobStats{}, m.jobFail(jr, err)
	}
	fully, minMachineEnd, jobEnd := tv[0], tv[1], -tv[2]
	st := machineJobStats{duration: total}
	if n := len(jr.builds); n > 0 {
		st.frontiers = make([]FrontierStats, n)
		for i := range st.frontiers {
			st.frontiers[i] = FrontierStats{Count: vals[2+3*i], OutDeg: vals[3+3*i], InDeg: vals[4+3*i]}
		}
	}
	st.breakdown = Breakdown{
		FullyParallel: time.Duration(fully),
		IntraMachine:  time.Duration(minMachineEnd - fully),
		InterMachine:  time.Duration(jobEnd - minMachineEnd),
		Sync:          total - time.Duration(jobEnd),
	}
	return st, nil
}

// syncGhostRead refreshes every ghost copy of property p from its owner
// (paper §3.3: "for properties that are to be read in the parallel region,
// PGX.D copies the original values into the ghost nodes prior to the
// execution step"). Implemented as a chunked sum-allreduce in which only the
// owner contributes a non-identity value.
func (m *Machine) syncGhostRead(p PropID) error {
	col := m.cols[p]
	ng := m.store.ghosts.Len()
	maxVals := (m.cfg.BufferSize - comm.HeaderSize) / 8
	for base := 0; base < ng; base += maxVals {
		n := ng - base
		if n > maxVals {
			n = maxVals
		}
		switch col.kind {
		case KindF64:
			vals := m.scratchF64[:0]
			for i := 0; i < n; i++ {
				v := 0.0
				if own := m.ghostOwned[base+i]; own >= 0 {
					v = col.getF64(int(own))
				}
				vals = append(vals, v)
			}
			m.scratchF64 = vals
			if err := m.col.AllReduceF64(vals, reduce.Sum); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				col.setF64(col.numLocal+base+i, vals[i])
			}
		case KindI64:
			vals := m.scratchI64[:0]
			for i := 0; i < n; i++ {
				v := int64(0)
				if own := m.ghostOwned[base+i]; own >= 0 {
					v = col.getI64(int(own))
				}
				vals = append(vals, v)
			}
			m.scratchI64 = vals
			if err := m.col.AllReduceI64(vals, reduce.Sum); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				col.setI64(col.numLocal+base+i, vals[i])
			}
		}
	}
	return nil
}

// mergeGhostWrites performs the two-stage ghost reduction of §3.3: "first
// between cores and then between machines". Stage one folds each worker's
// private ghost segment into the machine-level ghost copy; stage two
// combines machine partials with an op-allreduce and lets each owner reduce
// the combined partial into the original node's value.
func (m *Machine) mergeGhostWrites(jr *jobRuntime) error {
	ng := m.store.ghosts.Len()
	maxVals := (m.cfg.BufferSize - comm.HeaderSize) / 8
	for _, ws := range jr.spec.WriteProps {
		if ws.ActivateInto > 0 {
			continue // bypassed ghost accumulation; nothing to merge
		}
		col := m.cols[ws.Prop]
		if len(jr.privProps) > 0 {
			for _, w := range m.workers {
				seg := w.privSeg[ws.Prop]
				if seg == nil {
					continue
				}
				for s := 0; s < ng; s++ {
					col.store(col.numLocal+s, col.mergeWords(ws.Op, col.load(col.numLocal+s), seg[s]))
				}
			}
		}
		for base := 0; base < ng; base += maxVals {
			n := ng - base
			if n > maxVals {
				n = maxVals
			}
			switch col.kind {
			case KindF64:
				vals := m.scratchF64[:0]
				for i := 0; i < n; i++ {
					vals = append(vals, col.getF64(col.numLocal+base+i))
				}
				m.scratchF64 = vals
				if err := m.col.AllReduceF64(vals, ws.Op); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if own := m.ghostOwned[base+i]; own >= 0 {
						col.applyWord(int(own), ws.Op, WordF64(vals[i]))
					}
				}
			case KindI64:
				vals := m.scratchI64[:0]
				for i := 0; i < n; i++ {
					vals = append(vals, col.getI64(col.numLocal+base+i))
				}
				m.scratchI64 = vals
				if err := m.col.AllReduceI64(vals, ws.Op); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if own := m.ghostOwned[base+i]; own >= 0 {
						col.applyWord(int(own), ws.Op, WordI64(vals[i]))
					}
				}
			}
		}
	}
	return nil
}

// Call invokes registered RMI method on machine dst from this machine's
// main goroutine (sequential region) and returns the response payload.
func (m *Machine) Call(dst int, method uint32, payload []byte) ([]byte, error) {
	buf := m.ctrlPool.Acquire()
	if len(payload) > buf.Room() {
		buf.Release()
		return nil, fmt.Errorf("core: RMI payload of %d bytes exceeds buffer size", len(payload))
	}
	buf.Reset(comm.Header{
		Type:   comm.MsgRMIReq,
		Worker: comm.CtrlWorker,
		Src:    uint16(m.id),
		Count:  1,
		Aux:    uint64(method) << 32,
	})
	buf.AppendBytes(payload)
	if err := m.ep.Send(dst, buf); err != nil {
		return nil, err
	}
	var timeoutCh <-chan time.Time
	if d := m.cfg.RequestTimeout; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case resp, ok := <-m.router.RMIResp():
		if !ok {
			return nil, fmt.Errorf("core: machine %d shut down during RMI", m.id)
		}
		out := make([]byte, len(resp.Payload()))
		copy(out, resp.Payload())
		resp.Release()
		return out, nil
	case <-timeoutCh:
		return nil, fmt.Errorf("core: machine %d: RMI to machine %d timed out after %v", m.id, dst, m.cfg.RequestTimeout)
	}
}

// drainStale releases any straggler frames parked in the machine's inbound
// queues — late responses to aborted requests, leftover control frames from
// collectives the peers never completed. Called only by the cluster's
// post-abort recovery, when no job is in flight and the machine's main
// goroutine and workers are idle (so this goroutine is the only receiver).
func (m *Machine) drainStale() {
	for _, w := range m.workers {
		for {
			select {
			case buf, ok := <-w.respCh:
				if !ok {
					return
				}
				delete(w.stale, uint32(buf.Header().Aux))
				buf.Release()
				continue
			default:
			}
			break
		}
	}
	drain := func(ch <-chan *comm.Buffer) {
		for {
			select {
			case buf, ok := <-ch:
				if !ok {
					return
				}
				buf.Release()
				continue
			default:
			}
			break
		}
	}
	drain(m.router.Ctrl())
	drain(m.router.RMIResp())
}

// shutdown stops the workers, copiers, and poller. Outstanding frames are
// drained and returned to their pools.
func (m *Machine) shutdown() {
	for _, w := range m.workers {
		close(w.jobCh)
	}
	m.router.Shutdown()
	m.copierWG.Wait()
	m.spill.reset()
	m.releaseCols()
}
