package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrJobCanceled marks jobs that failed because the cluster was canceled
// from outside the engine — a serving-layer deadline, an explicit client
// cancel, or server shutdown — rather than by a transport fault. It always
// appears wrapped inside ErrJobAborted (cancellation rides the same
// job-scoped abort latch and recovery path as wire faults), so callers test
// errors.Is(err, ErrJobCanceled) to distinguish "told to stop" from "broke".
var ErrJobCanceled = errors.New("core: job canceled")

// Cancel marks the cluster canceled: the in-flight job (if any) aborts via
// the job-scoped abort latch exactly as on a transport fault — workers
// unwind, buffers recover, the flight recorder dumps — and every subsequent
// RunJob fails fast with ErrJobCanceled until Uncancel. cause, when non-nil,
// is attached to the error chain (e.g. a deadline description). Idempotent:
// the first cause wins. Safe to call from any goroutine, including timers.
//
// This is the serving layer's hook for per-request deadlines and client
// cancellation: a multi-superstep algorithm is a sequence of RunJob calls,
// so firing the latch kills the current superstep and the fail-fast check
// stops the driver loop from launching the next one.
func (c *Cluster) Cancel(cause error) {
	err := error(ErrJobCanceled)
	if cause != nil {
		err = fmt.Errorf("%w: %w", ErrJobCanceled, cause)
	}
	c.cancelMu.Lock()
	if c.cancelErr != nil {
		c.cancelMu.Unlock()
		return
	}
	c.cancelErr = err
	if c.cancelCh == nil {
		c.cancelCh = make(chan struct{})
	}
	close(c.cancelCh)
	c.cancelMu.Unlock()
	// Best-effort immediate abort; the per-run watcher retries until the
	// machines have actually published the job, closing the race where
	// Cancel lands during RunJob's fan-out.
	for _, m := range c.machines {
		m.abortCurrent(err)
	}
}

// Uncancel clears a previous Cancel so the cluster accepts jobs again — the
// serving layer calls it when recycling an engine into its pool after a
// canceled or deadline-exceeded run.
func (c *Cluster) Uncancel() {
	c.cancelMu.Lock()
	c.cancelErr = nil
	c.cancelCh = nil
	c.cancelMu.Unlock()
}

// CancelCause returns the sticky cancellation error installed by Cancel, or
// nil while the cluster is accepting jobs.
func (c *Cluster) CancelCause() error {
	c.cancelMu.Lock()
	defer c.cancelMu.Unlock()
	return c.cancelErr
}

// cancelWait returns a channel closed when (or if already) canceled.
func (c *Cluster) cancelWait() <-chan struct{} {
	c.cancelMu.Lock()
	defer c.cancelMu.Unlock()
	if c.cancelCh == nil {
		c.cancelCh = make(chan struct{})
	}
	return c.cancelCh
}

// watchCancel runs for the duration of one RunJob: it waits for either the
// job to finish (stop) or a Cancel, and on cancel keeps firing the abort
// latch on every machine until the job actually unwinds. The retry loop
// matters: a machine publishes its jobRuntime a little after RunJob starts,
// so a single abortCurrent could land in the window where curJob is still
// nil and be lost.
func (c *Cluster) watchCancel(stop <-chan struct{}, done *sync.WaitGroup) {
	defer done.Done()
	select {
	case <-stop:
		return
	case <-c.cancelWait():
	}
	err := c.CancelCause()
	if err == nil {
		err = ErrJobCanceled
	}
	for {
		for _, m := range c.machines {
			m.abortCurrent(err)
		}
		select {
		case <-stop:
			return
		case <-time.After(time.Millisecond):
		}
	}
}
