package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/reduce"
)

// TestTrafficMatrixAccuracy: the obs traffic matrix is recorded by an
// endpoint wrapper, so it must agree with the transport's own accounting on
// every fabric — in particular over real TCP sockets, where frames cross a
// kernel boundary instead of a channel. The matrix has to cover exactly the
// bytes the counters saw, keep a zero diagonal, and show every machine pair
// exchanging data on a job whose writes span the whole cluster.
func TestTrafficMatrixAccuracy(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := testGraph(t)
		cfg := faultCfg(3)
		reg := obs.NewRegistry()
		cfg.Obs = reg
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{})
		cfg.Fabric = inj
		c := bootCluster(t, g, cfg)
		defer inj.Close()
		counter, _ := c.AddPropI64("deg")
		c.FillI64(counter, 0)
		if _, err := c.RunJob(JobSpec{
			Name:       "push-degree",
			Iter:       IterOutEdges,
			Task:       &pushOneTask{counter: counter},
			WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
		}); err != nil {
			t.Fatal(err)
		}
		settleQuiescent(t, c)

		mat := reg.LifetimeTraffic()
		if len(mat) != 3 {
			t.Fatalf("traffic matrix has %d rows, want 3", len(mat))
		}
		var total int64
		for s, row := range mat {
			for d, b := range row {
				total += b
				if s == d && b != 0 {
					t.Errorf("traffic matrix diagonal [%d][%d] = %d, want 0", s, d, b)
				}
				if s != d && b == 0 {
					t.Errorf("no traffic recorded from %d to %d on a cluster-spanning push job", s, d)
				}
			}
		}
		ctrs := reg.LifetimeCounters()
		if total != ctrs["bytes_sent"] {
			t.Errorf("matrix total %d != bytes_sent counter %d — the matrix missed frames", total, ctrs["bytes_sent"])
		}
		if ctrs["bytes_recv"] != ctrs["bytes_sent"] {
			t.Errorf("bytes_recv %d != bytes_sent %d after quiescence", ctrs["bytes_recv"], ctrs["bytes_sent"])
		}
	})
}
