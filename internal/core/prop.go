package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"unsafe"

	"repro/internal/reduce"
	"repro/internal/store"
)

// PropID names a registered node property cluster-wide. Properties are
// column-oriented O(N) arrays partitioned like the vertices (paper §3.3),
// with ghost slots appended after the local slots.
type PropID uint16

// PropKind is a property's element type. The engine moves all values as
// 8-byte words on the wire; the kind selects interpretation and reduction
// arithmetic.
type PropKind uint8

const (
	// KindF64 is a float64-valued property.
	KindF64 PropKind = iota
	// KindI64 is an int64-valued property (bools are 0/1 int64s).
	KindI64
)

// String implements fmt.Stringer.
func (k PropKind) String() string {
	switch k {
	case KindF64:
		return "f64"
	case KindI64:
		return "i64"
	default:
		return fmt.Sprintf("PropKind(%d)", uint8(k))
	}
}

// propMeta is the cluster-wide registration record for a property.
type propMeta struct {
	name string
	kind PropKind
}

// column is one machine's storage for one property: numLocal owned slots
// followed by numGhost ghost slots. All shared slots are atomic 8-byte
// words because copiers apply remote reductions concurrently with worker
// reads (the paper's relaxed consistency: "local and remote write requests
// [apply] immediately"). priv holds the per-worker private ghost segments of
// ghost privatization; they are plain slices since each is single-owner.
type column struct {
	kind     PropKind
	numLocal int
	vals     []atomic.Uint64 // numLocal + numGhost
	priv     [][]uint64      // [workers][numGhost], lazily allocated

	// freeFn is non-nil when vals is backed by anonymous mmap instead of the
	// Go heap (out-of-core runs with a resident budget): the O(N) column then
	// counts against the kernel's page accounting, not the GC heap, and its
	// pages return to the kernel the moment the column is released rather
	// than at the next GC cycle. The backing is deliberately NOT part of the
	// store's residency window — DONTNEED on anonymous memory zeroes, and
	// property values, unlike topology, cannot be refetched from the file.
	freeFn func() error
}

// newColumn allocates one machine's column. With offHeap set the value array
// goes to anonymous mmap (falling back to the heap if the map fails);
// release must be called before dropping the last reference.
func newColumn(kind PropKind, numLocal, numGhost, workers int, offHeap bool) *column {
	c := &column{
		kind:     kind,
		numLocal: numLocal,
		priv:     make([][]uint64, workers),
	}
	total := numLocal + numGhost
	if offHeap && total > 0 {
		if buf, freeFn, err := store.AnonAlloc(8 * int64(total)); err == nil {
			c.vals = unsafe.Slice((*atomic.Uint64)(unsafe.Pointer(&buf[0])), total)
			c.freeFn = freeFn
		}
	}
	if c.vals == nil {
		c.vals = make([]atomic.Uint64, total)
	}
	return c
}

// release returns an off-heap column's pages to the kernel. Nil-safe and
// idempotent; heap-backed columns are left to the GC. The column must not be
// accessed afterwards.
func (c *column) release() {
	if c == nil || c.freeFn == nil {
		return
	}
	f := c.freeFn
	c.freeFn = nil
	c.vals = nil
	f() //nolint:errcheck
}

func (c *column) numGhost() int { return len(c.vals) - c.numLocal }

// --- raw word access -------------------------------------------------------

func (c *column) load(i int) uint64     { return c.vals[i].Load() }
func (c *column) store(i int, v uint64) { c.vals[i].Store(v) }

// getF64/getI64 interpret slot i.
func (c *column) getF64(i int) float64 { return math.Float64frombits(c.vals[i].Load()) }
func (c *column) getI64(i int) int64   { return int64(c.vals[i].Load()) }

func (c *column) setF64(i int, v float64) { c.vals[i].Store(math.Float64bits(v)) }
func (c *column) setI64(i int, v int64)   { c.vals[i].Store(uint64(v)) }

// applyWord reduces the raw word w into slot i with op, using the kind's
// arithmetic. This is the copier-side write application ("the copier applies
// them directly with atomic instructions") and also serves local immediate
// writes.
func (c *column) applyWord(i int, op reduce.Op, w uint64) {
	switch c.kind {
	case KindF64:
		reduce.AtomicApplyF64(&c.vals[i], op, math.Float64frombits(w))
	case KindI64:
		// Reuse the uint64 cell as an int64 via CAS on the same word.
		for {
			old := c.vals[i].Load()
			next := uint64(reduce.ApplyI64(op, int64(old), int64(w)))
			if next == old && op != reduce.Overwrite {
				return
			}
			if c.vals[i].CompareAndSwap(old, next) {
				return
			}
		}
	}
}

// applyWordChanged is applyWord, additionally reporting whether the stored
// word changed — the signal write-activation (WriteSpec.ActivateInto) keys
// on. A lost CAS retries, so "unchanged" means the reduction was truly a
// no-op against the winning value.
func (c *column) applyWordChanged(i int, op reduce.Op, w uint64) bool {
	for {
		old := c.vals[i].Load()
		next := c.mergeWords(op, old, w)
		if next == old {
			return false
		}
		if c.vals[i].CompareAndSwap(old, next) {
			return true
		}
	}
}

// bottomWord returns op's identity element encoded for this column's kind.
func (c *column) bottomWord(op reduce.Op) uint64 {
	switch c.kind {
	case KindF64:
		return math.Float64bits(reduce.BottomF64(op))
	default:
		return uint64(reduce.BottomI64(op))
	}
}

// applyPlain reduces w into the plain word at *slot (private ghost segments).
func (c *column) applyPlain(slot *uint64, op reduce.Op, w uint64) {
	switch c.kind {
	case KindF64:
		*slot = math.Float64bits(reduce.ApplyF64(op, math.Float64frombits(*slot), math.Float64frombits(w)))
	default:
		*slot = uint64(reduce.ApplyI64(op, int64(*slot), int64(w)))
	}
}

// mergeWords reduces b into a and returns the result, using kind arithmetic.
func (c *column) mergeWords(op reduce.Op, a, b uint64) uint64 {
	switch c.kind {
	case KindF64:
		return math.Float64bits(reduce.ApplyF64(op, math.Float64frombits(a), math.Float64frombits(b)))
	default:
		return uint64(reduce.ApplyI64(op, int64(a), int64(b)))
	}
}

// ensurePriv returns worker w's private ghost segment, allocating or
// re-bottoming it for op.
func (c *column) ensurePriv(w int, op reduce.Op) []uint64 {
	ng := c.numGhost()
	if c.priv[w] == nil {
		c.priv[w] = make([]uint64, ng)
	}
	bottom := c.bottomWord(op)
	seg := c.priv[w]
	for i := range seg {
		seg[i] = bottom
	}
	return seg
}
