package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/reduce"
)

// weightSumTask accumulates incoming edge weights into a property — checks
// that the in-orientation carries per-edge weights correctly.
type weightSumTask struct {
	NoReads
	acc PropID
}

func (k *weightSumTask) Run(c *Ctx) {
	c.SetF64(k.acc, c.GetF64(k.acc)+c.EdgeWeight())
}

func TestInEdgeWeights(t *testing.T) {
	g := testGraph(t).WithUniformWeights(1, 3, 5)
	c := bootCluster(t, g, DefaultConfig(3))
	acc, _ := c.AddPropF64("wsum")
	c.FillF64(acc, 0)
	if _, err := c.RunJob(JobSpec{
		Name: "weight-sum", Iter: IterInEdges, Task: &weightSumTask{acc: acc},
	}); err != nil {
		t.Fatal(err)
	}
	got := c.GatherF64(acc)
	for u := 0; u < g.NumNodes(); u++ {
		var want float64
		for _, w := range g.In.EdgeWeights(graph.NodeID(u)) {
			want += w
		}
		if d := got[u] - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("node %d: %g vs %g", u, got[u], want)
		}
	}
}

func TestEmptyPartitions(t *testing.T) {
	// 10 nodes over 8 machines: some machines own 1 node, and with edge
	// partitioning possibly 0. Jobs must still run and terminate.
	g, err := graph.Uniform(10, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{8, 10} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := bootCluster(t, g, DefaultConfig(p))
			counter, _ := c.AddPropI64("counter")
			c.FillI64(counter, 0)
			if _, err := c.RunJob(JobSpec{
				Name: "push", Iter: IterOutEdges, Task: &pushOneTask{counter: counter},
				WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
			}); err != nil {
				t.Fatal(err)
			}
			want := refInDegree(g)
			got := c.GatherI64(counter)
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("node %d: %d vs %d", u, got[u], want[u])
				}
			}
		})
	}
}

func TestSingleNodeGraphWithSelfLoop(t *testing.T) {
	g, err := graph.FromEdges(1, []graph.Edge{{Src: 0, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	c := bootCluster(t, g, DefaultConfig(2))
	counter, _ := c.AddPropI64("counter")
	if _, err := c.RunJob(JobSpec{
		Name: "push", Iter: IterOutEdges, Task: &pushOneTask{counter: counter},
		WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.GetNodeI64(0, counter); got != 1 {
		t.Errorf("self-loop count = %d", got)
	}
}

func TestGhostAutoSelectsHeavyTail(t *testing.T) {
	g := testGraph(t) // skewed; avg total degree 16
	cfg := DefaultConfig(3)
	cfg.GhostThreshold = GhostAuto
	c := bootCluster(t, g, cfg)
	avg := 2 * g.NumEdges() / int64(g.NumNodes())
	want := graph.NodesAboveDegree(g, 4*avg)
	if c.NumGhosts() != want {
		t.Errorf("auto ghosts = %d, want %d (threshold %d)", c.NumGhosts(), want, 4*avg)
	}
	if c.NumGhosts() == 0 || c.NumGhosts() == g.NumNodes() {
		t.Errorf("auto ghost count %d not selective", c.NumGhosts())
	}
	// Disabled sentinel still works.
	cfg2 := DefaultConfig(3)
	cfg2.GhostThreshold = GhostDisabled
	c2 := bootCluster(t, g, cfg2)
	if c2.NumGhosts() != 0 {
		t.Errorf("disabled ghosting produced %d ghosts", c2.NumGhosts())
	}
}

func TestDropPropsReusesSlots(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(2))
	a, _ := c.AddPropF64("a")
	b, _ := c.AddPropF64("b")
	c.FillF64(b, 7)
	c.DropProps(a)
	// The freed id must be reused.
	a2, _ := c.AddPropI64("a2")
	if a2 != a {
		t.Errorf("freed id %d not reused, got %d", a, a2)
	}
	c.FillI64(a2, 3)
	if got := c.GetNodeI64(5, a2); got != 3 {
		t.Errorf("reused prop value = %d", got)
	}
	// b is untouched by the reuse.
	if got := c.GetNodeF64(5, b); got != 7 {
		t.Errorf("sibling prop corrupted: %g", got)
	}
	// Using a dropped id panics via the kind check.
	c.DropProps(b)
	defer func() {
		if recover() == nil {
			t.Error("use of dropped prop did not panic")
		}
	}()
	c.FillF64(b, 1)
}

func TestFilteredInEdgeJob(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(3))
	src, _ := c.AddPropF64("src")
	dst, _ := c.AddPropF64("dst")
	active, _ := c.AddPropI64("active")
	c.FillByNodeF64(src, func(v graph.NodeID) float64 { return 1 })
	c.FillF64(dst, 0)
	c.FillByNodeI64(active, func(v graph.NodeID) int64 {
		if v%3 == 0 {
			return 1
		}
		return 0
	})
	if _, err := c.RunJob(JobSpec{
		Name: "filtered-pull", Iter: IterInEdges,
		Task:      &pullSumTask{src: src, dst: dst},
		Filter:    func(ctx *Ctx) bool { return ctx.GetI64(active) != 0 },
		ReadProps: []PropID{src},
	}); err != nil {
		t.Fatal(err)
	}
	got := c.GatherF64(dst)
	for u := 0; u < g.NumNodes(); u++ {
		want := 0.0
		if u%3 == 0 {
			want = float64(g.InDegree(graph.NodeID(u)))
		}
		if d := got[u] - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("node %d: %g vs %g", u, got[u], want)
		}
	}
}

// TestDeterministicIntegerResults: integer-valued jobs must produce
// identical results across repeated runs despite scheduling nondeterminism
// (MIN/SUM reductions commute exactly on integers).
func TestDeterministicIntegerResults(t *testing.T) {
	g := testGraph(t)
	run := func() []int64 {
		cfg := DefaultConfig(4)
		cfg.Workers = 3
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		if err := c.Load(g); err != nil {
			t.Fatal(err)
		}
		label, _ := c.AddPropI64("label")
		tmp, _ := c.AddPropI64("tmp")
		c.FillByNodeI64(label, func(v graph.NodeID) int64 { return int64(v * 7 % 1009) })
		c.FillI64(tmp, 1<<60)
		if _, err := c.RunJob(JobSpec{
			Name: "min", Iter: IterOutEdges, Task: &minPush{label: label},
			WriteProps: []WriteSpec{{Prop: tmp, Op: reduce.Min}},
		}); err != nil {
			t.Fatal(err)
		}
		return c.GatherI64(tmp)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs across runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestManyPropsRegistered(t *testing.T) {
	g, err := graph.Uniform(50, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := bootCluster(t, g, DefaultConfig(2))
	var ids []PropID
	for i := 0; i < 100; i++ {
		p, err := c.AddPropF64(fmt.Sprintf("p%d", i))
		if err != nil {
			t.Fatal(err)
		}
		c.FillF64(p, float64(i))
		ids = append(ids, p)
	}
	for i, p := range ids {
		if got := c.GetNodeF64(3, p); got != float64(i) {
			t.Fatalf("prop %d = %g", i, got)
		}
	}
}

// chainReadTask stresses deep continuation chains: each ReadDone issues
// another remote read until Aux hits the chain length.
type chainReadTask struct {
	ref  PropID // i64: next ref to visit
	hops uint64
	acc  PropID
}

func (k *chainReadTask) Run(c *Ctx) {
	c.Aux = 0
	c.NbrRead(k.ref)
}

func (k *chainReadTask) ReadDone(c *Ctx, val uint64) {
	c.Aux++
	if c.Aux >= k.hops {
		c.SetI64(k.acc, c.GetI64(k.acc)+1)
		return
	}
	c.ReadRef(int64(val), k.ref)
}

func TestDeepContinuationChains(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(4)
	cfg.GhostThreshold = GhostDisabled
	cfg.BufferSize = 256 // tiny buffers: many flushes mid-chain
	cfg.ReqBuffers = 8
	cfg.RespBuffers = 8
	c := bootCluster(t, g, cfg)
	ref, _ := c.AddPropI64("ref")
	acc, _ := c.AddPropI64("acc")
	layout := c.Layout()
	n := g.NumNodes()
	c.FillByNodeI64(ref, func(v graph.NodeID) int64 {
		next := graph.NodeID((int(v) + n/2 + 1) % n)
		owner := layout.Owner(next)
		return packRemote(owner, next-layout.Starts[owner])
	})
	c.FillI64(acc, 0)
	const hops = 5
	if _, err := c.RunJob(JobSpec{
		Name: "chain", Iter: IterInEdges,
		Task:      &chainReadTask{ref: ref, hops: hops, acc: acc},
		ReadProps: []PropID{ref},
	}); err != nil {
		t.Fatal(err)
	}
	// Every in-edge completes one chain: acc[u] == inDegree(u).
	got := c.GatherI64(acc)
	for u := 0; u < n; u++ {
		if got[u] != g.InDegree(graph.NodeID(u)) {
			t.Fatalf("node %d: %d chains, want %d", u, got[u], g.InDegree(graph.NodeID(u)))
		}
	}
	if !c.PoolsQuiescent() {
		t.Error("pools not quiescent after deep chains")
	}
}

func TestReloadClusterWithNewGraph(t *testing.T) {
	g1 := testGraph(t)
	c := bootCluster(t, g1, DefaultConfig(3))
	p1, _ := c.AddPropI64("a")
	tmp, _ := c.AddPropI64("tmp")
	c.DropProps(tmp) // leaves a free slot behind
	c.FillI64(p1, 1)

	// Reload with a different graph: all property state resets, free-slot
	// bookkeeping included.
	g2, err := graph.Uniform(100, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(g2); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 100 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	counter, err := c.AddPropI64("counter")
	if err != nil {
		t.Fatal(err)
	}
	c.FillI64(counter, 0)
	if _, err := c.RunJob(JobSpec{
		Name: "push", Iter: IterOutEdges, Task: &pushOneTask{counter: counter},
		WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
	}); err != nil {
		t.Fatal(err)
	}
	want := refInDegree(g2)
	got := c.GatherI64(counter)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d after reload: %d vs %d", u, got[u], want[u])
		}
	}
}

func TestBothEdgesIterator(t *testing.T) {
	g := testGraph(t).WithUniformWeights(1, 2, 8)
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := bootCluster(t, g, DefaultConfig(p))
			counter, _ := c.AddPropI64("counter")
			wsum, _ := c.AddPropF64("wsum")
			c.FillI64(counter, 0)
			c.FillF64(wsum, 0)
			if _, err := c.RunJob(JobSpec{
				Name: "both-push", Iter: IterBothEdges,
				Task:       &pushOneTask{counter: counter},
				WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
			}); err != nil {
				t.Fatal(err)
			}
			// Pushing 1 along both orientations: each node receives one per
			// in-edge (from out-iteration at the source) plus one per
			// out-edge (from in-iteration at the target).
			got := c.GatherI64(counter)
			for u := 0; u < g.NumNodes(); u++ {
				want := g.InDegree(graph.NodeID(u)) + g.OutDegree(graph.NodeID(u))
				if got[u] != want {
					t.Fatalf("node %d: %d vs %d", u, got[u], want)
				}
			}
			// Edge weights must come from the orientation being iterated.
			if _, err := c.RunJob(JobSpec{
				Name: "both-weights", Iter: IterBothEdges, Task: &weightSumTask{acc: wsum},
			}); err != nil {
				t.Fatal(err)
			}
			gotW := c.GatherF64(wsum)
			for u := 0; u < g.NumNodes(); u++ {
				var want float64
				for _, w := range g.Out.EdgeWeights(graph.NodeID(u)) {
					want += w
				}
				for _, w := range g.In.EdgeWeights(graph.NodeID(u)) {
					want += w
				}
				if d := gotW[u] - want; d > 1e-9 || d < -1e-9 {
					t.Fatalf("node %d weights: %g vs %g", u, gotW[u], want)
				}
			}
		})
	}
}
