// Package core implements the PGX.D engine itself (paper §3): a cluster of
// simulated machines, each composed of a Task Manager (run-to-complete
// worker goroutines consuming edge-balanced chunks), a Data Manager
// (partitioned CSR with ghost replicas and column-oriented properties), and
// a Communication Manager (buffered request/response messaging with copier
// goroutines and a poller), plus the relaxed-consistency job execution model
// with semi-automatic ghost synchronization.
package core

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Config describes a PGX.D cluster. The zero value is not usable; call
// DefaultConfig and adjust.
type Config struct {
	// NumMachines is the simulated cluster size P.
	NumMachines int
	// Workers is the number of worker goroutines per machine (the paper's
	// worker threads; Figure 7 sweeps this against Copiers).
	Workers int
	// Copiers is the number of copier goroutines per machine serving
	// inbound requests.
	Copiers int
	// BufferSize is the message buffer size in bytes, header included. The
	// paper settles on 256 KiB from Figure 8b; the laptop-scale default here
	// is smaller so per-step latency stays reasonable at bench graph sizes.
	BufferSize int
	// ReqBuffers is the per-machine request buffer pool size (buffers used
	// by workers for outbound read/write request messages). Back-pressure:
	// workers stall when the pool drains.
	ReqBuffers int
	// RespBuffers is the per-machine response buffer pool size (buffers
	// used by copiers for read responses and RMI replies).
	RespBuffers int
	// Partitioning selects vertex- or edge-balanced machine assignment.
	Partitioning partition.Strategy
	// GhostThreshold ghosts every vertex with in- or out-degree above it.
	// GhostDisabled turns ghosting off; GhostAuto derives a threshold of
	// four times the average total degree at load time, ghosting the heavy
	// tail of skewed graphs without manual tuning. Ignored when
	// GhostCount > 0.
	GhostThreshold int64
	// GhostCount, when positive, ghosts exactly the top-GhostCount vertices
	// by max(in,out) degree (Figure 6a sweeps ghost counts directly).
	GhostCount int
	// ChunkTargetEdges is the edge count per scheduling chunk. Zero derives
	// a target yielding about 8 chunks per worker.
	ChunkTargetEdges int64
	// NodeChunking disables edge chunking and cuts chunks by node count —
	// the Figure 6c baseline.
	NodeChunking bool
	// NodeChunkSize is the nodes-per-chunk when NodeChunking is set (zero
	// derives one from the local node count).
	NodeChunkSize int
	// DisableGhostPrivatization makes workers reduce into the shared
	// machine-level ghost copies with atomics instead of thread-private
	// copies — the ablation for §3.3's ghost privatization.
	DisableGhostPrivatization bool
	// DisableReadCombining turns off duplicate remote-read elimination:
	// every read of the same remote (prop, offset) within one message
	// window then emits its own 8-byte request record and response word,
	// as the unmodified paper protocol does. The ablation flag for the
	// communication fast path; combining is on by default.
	DisableReadCombining bool
	// DisableWireCompression turns off the wire compression layer: flush
	// buffers and ghost-merge reductions then ship fixed-width 8-byte
	// records, as the unmodified paper protocol does. The ablation flag for
	// the sorted delta-varint batch encoding; compression is on by default
	// on wire transports. On an in-memory fabric (comm.InMemoryFabric) the
	// engine forces this on regardless — frames pass by reference there, so
	// the codec would spend CPU shrinking buffers nobody serializes.
	DisableWireCompression bool
	// DisableSparseFrontier makes frontier-sourced jobs fall back to the
	// dense path: full chunk lists with a per-node bitmap filter, never the
	// sparse vertex list and never the empty-machine dispatch skip. The
	// ablation flag for the frontier abstraction itself.
	DisableSparseFrontier bool
	// DisableDirectionSwitching pins every DirectionPolicy to FixedDirection
	// instead of the per-superstep push/pull heuristic — the ablation flag
	// for direction-optimizing traversal.
	DisableDirectionSwitching bool
	// FixedDirection is the direction used when DisableDirectionSwitching is
	// set (DirPush by default).
	FixedDirection Direction
	// EnableWorkStealing turns on cross-machine chunk stealing for jobs that
	// declare a StealSpec: a machine that drains its shared chunk cursor
	// sends MsgSteal to the most loaded peer (picked from task-phase load
	// hints piggybacked on the termination allreduce) and executes the
	// granted chunks locally, writing through the ordinary remote-write
	// paths. Off by default — stealing only pays when the partition is
	// skewed, and the victim-side serve path is extra copier work on
	// balanced clusters.
	EnableWorkStealing bool
	// DisableWorkStealing forces stealing off even when EnableWorkStealing
	// is set — the ablation flag benchmarks flip per variant without
	// rebuilding the rest of the configuration.
	DisableWorkStealing bool
	// DisableWriteCombining turns off both halves of the write combiner: the
	// sender-side in-buffer merge of repeated (prop, op, offset) reduction
	// records within one message window, and the receiver-side merge of
	// adjacent duplicate records in sorted (compressed) write batches. The
	// ablation flag for the push-path combiner; combining is on by default.
	DisableWriteCombining bool
	// FrontierDenseFraction is the local frontier density at which a
	// machine's frontier representation flips from sorted sparse list to
	// bitmap (fraction of the machine's local node count). Zero or negative
	// uses the default (1/32).
	FrontierDenseFraction float64
	// DirectionAlpha is the push→pull threshold of the direction heuristic:
	// switch to pull when the frontier's outgoing edge work exceeds
	// unvisited-in-degree/alpha. Zero uses the default (2). Beamer's
	// shared-memory constant is 14, but in this engine a push superstep's
	// per-edge cost (buffered remote reductions) is far below a pull
	// superstep's (remote reads + responses), so pull must promise a larger
	// work reduction before it pays: alpha=2 keeps high-diameter road-shaped
	// graphs all-push while still flipping the two dense levels of
	// small-world graphs.
	DirectionAlpha float64
	// DirectionBeta is the pull→push threshold: switch back to push when the
	// frontier shrinks below numNodes/beta. Zero uses the default (24).
	DirectionBeta float64
	// ResidentBudgetBytes caps how many bytes of an out-of-core store file
	// (Cluster.LoadStore) the engine keeps resident: workers advise claimed
	// chunks in and the residency window advises the oldest out once the
	// budget is exceeded. Zero or negative disables the window — the page
	// cache alone governs residency. Ignored for in-memory loads.
	ResidentBudgetBytes int64
	// DecodeCacheBytes bounds the decode cache a compressed store file
	// (CSR v3) inflates edge blocks into: decoded blocks are pinned while a
	// worker runs a chunk over them and evicted LRU past the budget. Zero
	// uses store.DefaultDecodeCacheBytes; negative disables the bound (every
	// decoded block stays resident). Ignored for raw (v2) files and
	// in-memory loads. The cache is per store.File, so pool jobs sharing one
	// open file share its decoded blocks.
	DecodeCacheBytes int64
	// SpillWrites makes copiers spill inbound remote-write frames to a
	// bounded memory buffer (overflowing to a temp file) instead of applying
	// them during the task phase; the write-drain loop replays them. This
	// bounds the memory that buffered remote writes pin during out-of-core
	// runs at the cost of write latency. Off by default.
	SpillWrites bool
	// SpillBudgetBytes is the in-memory spill buffer size per machine before
	// frames overflow to the temp file. Zero derives 4 MiB.
	SpillBudgetBytes int64
	// SpillDir is the directory for spill temp files (empty uses the OS
	// default temp dir). Files are created lazily on first overflow and
	// removed when the job's drain completes or the job aborts.
	SpillDir string
	// RequestTimeout bounds every wait on a remote response or drained
	// buffer pool inside a job (worker response waits, the write-drain
	// loop, driver RMI calls). Zero waits forever. It is the detector for
	// silently dropped frames: a lost response produces no error, only
	// silence, so without a timeout a faulted job hangs instead of
	// failing.
	RequestTimeout time.Duration
	// CollectiveTimeout bounds each collective control-frame wait (see
	// comm.Collectives.SetTimeout). Zero waits forever. This is the only
	// detector for a machine that died without announcing an abort: its
	// peers notice when the next barrier times out.
	CollectiveTimeout time.Duration
	// Fabric supplies the transport. Nil creates an in-process fabric.
	Fabric comm.Fabric
	// Obs attaches the observability registry: per-job counters, trace
	// spans, the traffic matrix, and the abort flight recorder. Nil (the
	// default) disables observability entirely — instrumentation sites
	// reduce to a nil check and endpoints stay unwrapped, so the engine's
	// hot path is unchanged.
	Obs *obs.Registry
}

// DefaultConfig returns a laptop-scale configuration for p machines,
// mirroring the paper's production setting of 16 workers and 8 copiers in
// miniature.
func DefaultConfig(p int) Config {
	return Config{
		NumMachines:    p,
		Workers:        4,
		Copiers:        2,
		BufferSize:     32 << 10,
		ReqBuffers:     0, // derived in validate
		RespBuffers:    0,
		Partitioning:   partition.EdgeBalanced,
		GhostThreshold: GhostAuto,
	}
}

// Defaults for the frontier/direction tunables (zero in Config selects
// them). The dense fraction matches the usual bitmap break-even point; beta
// is Beamer's direction-optimizing BFS constant, alpha is re-tuned for this
// engine's push/pull cost ratio (see Config.DirectionAlpha).
const (
	defaultFrontierDenseFraction = 1.0 / 32
	defaultDirectionAlpha        = 2.0
	defaultDirectionBeta         = 24.0
)

// Sentinel GhostThreshold values.
const (
	// GhostDisabled turns selective ghosting off entirely.
	GhostDisabled int64 = -1
	// GhostAuto derives the threshold from the loaded graph: 4x the
	// average total degree, which ghosts only the heavy tail.
	GhostAuto int64 = -2
)

// validate normalizes cfg and reports configuration errors.
func (c *Config) validate() error {
	if c.NumMachines < 1 {
		return fmt.Errorf("core: NumMachines %d must be >= 1", c.NumMachines)
	}
	if c.NumMachines > 1<<15 {
		return fmt.Errorf("core: NumMachines %d exceeds the 2^15 machine-id space", c.NumMachines)
	}
	if c.Workers < 1 {
		return fmt.Errorf("core: Workers %d must be >= 1", c.Workers)
	}
	if c.Workers > comm.CtrlWorker-1 {
		return fmt.Errorf("core: Workers %d exceeds the %d worker-id space", c.Workers, comm.CtrlWorker-1)
	}
	if c.Copiers < 1 {
		return fmt.Errorf("core: Copiers %d must be >= 1", c.Copiers)
	}
	if c.BufferSize < comm.HeaderSize+16 {
		return fmt.Errorf("core: BufferSize %d too small", c.BufferSize)
	}
	// Record counts must fit the 24-bit header field; the smallest record is
	// 8 bytes, so cap the buffer well below 8 * 2^24.
	if c.BufferSize > 64<<20 {
		return fmt.Errorf("core: BufferSize %d exceeds the 64 MiB frame limit", c.BufferSize)
	}
	if c.ReqBuffers == 0 {
		// Enough for every worker to have a frame in flight toward every
		// machine plus slack, so back-pressure engages only under real load.
		c.ReqBuffers = 2*c.Workers*c.NumMachines + 4
	}
	if c.RespBuffers == 0 {
		c.RespBuffers = 2*c.Copiers*c.NumMachines + 4
	}
	if c.ReqBuffers < c.Workers {
		return fmt.Errorf("core: ReqBuffers %d must be at least Workers (%d)", c.ReqBuffers, c.Workers)
	}
	if c.RespBuffers < c.Copiers {
		return fmt.Errorf("core: RespBuffers %d must be at least Copiers (%d)", c.RespBuffers, c.Copiers)
	}
	if c.GhostCount < 0 {
		return fmt.Errorf("core: GhostCount %d must be >= 0", c.GhostCount)
	}
	if c.FrontierDenseFraction < 0 || c.FrontierDenseFraction > 1 {
		return fmt.Errorf("core: FrontierDenseFraction %v must be in [0, 1]", c.FrontierDenseFraction)
	}
	if c.DirectionAlpha < 0 || c.DirectionBeta < 0 {
		return fmt.Errorf("core: direction thresholds must be >= 0 (alpha=%v beta=%v)", c.DirectionAlpha, c.DirectionBeta)
	}
	if c.FixedDirection > DirPull {
		return fmt.Errorf("core: FixedDirection %d unknown", c.FixedDirection)
	}
	if c.SpillWrites && c.SpillBudgetBytes <= 0 {
		c.SpillBudgetBytes = 4 << 20
	}
	if c.RequestTimeout < 0 || c.CollectiveTimeout < 0 {
		return fmt.Errorf("core: timeouts must be >= 0 (RequestTimeout=%v CollectiveTimeout=%v)",
			c.RequestTimeout, c.CollectiveTimeout)
	}
	return nil
}
