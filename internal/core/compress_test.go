package core

import (
	"errors"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/reduce"
)

// compressConfig builds the cluster config the wire-compression tests share:
// ghosting off so reads and writes cross the wire, small buffers so batches
// flush often, and the ablation flag set per cell.
func compressConfig(p int, disable bool) Config {
	cfg := DefaultConfig(p)
	cfg.BufferSize = 8 << 10
	cfg.GhostThreshold = GhostDisabled
	cfg.DisableWireCompression = disable
	cfg.ReqBuffers = 2*cfg.Workers*cfg.NumMachines + 4
	cfg.RespBuffers = 2*cfg.Copiers*cfg.NumMachines + 4
	return cfg
}

// pushValTask pushes a node-dependent value into each out-neighbor: int64
// sums exercise the zigzag-varint value column, float64 sums the raw one.
type pushValTask struct {
	NoReads
	i64, f64 PropID
}

func (k *pushValTask) Run(c *Ctx) {
	u := int64(c.NodeGlobal())
	c.NbrWriteI64(k.i64, reduce.Sum, u%97-48)
	c.NbrWriteF64(k.f64, reduce.Sum, float64(u)*0.5)
}

// TestWireCompressionMatchesReference: with compression on (the default),
// read requests and write batches ship sorted delta-varint encoded, and the
// results must be bit-identical to the DisableWireCompression ablation on
// both fabrics. The compressed run must record raw>wire in the comm metrics
// and actually shrink total wire bytes.
func TestWireCompressionMatchesReference(t *testing.T) {
	g := testGraph(t)
	const p = 3
	fabrics := []struct {
		name string
		make func(t *testing.T, cfg *Config)
	}{
		{"inproc", func(t *testing.T, cfg *Config) {}},
		{"tcp", func(t *testing.T, cfg *Config) {
			f, err := comm.NewTCPFabric(cfg.NumMachines,
				cfg.NumMachines*(cfg.ReqBuffers+cfg.Workers*cfg.NumMachines)+64, cfg.BufferSize)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { f.Close() })
			cfg.Fabric = f
		}},
	}
	for _, fc := range fabrics {
		t.Run(fc.name, func(t *testing.T) {
			type cell struct {
				pull    []float64
				sumI    []int64
				sumF    []float64
				traffic comm.Snapshot
			}
			var cells [2]cell
			for i, disable := range []bool{false, true} {
				cfg := compressConfig(p, disable)
				fc.make(t, &cfg)
				c := bootCluster(t, g, cfg)

				src, _ := c.AddPropF64("src")
				dst, _ := c.AddPropF64("dst")
				sumI, _ := c.AddPropI64("sumI")
				sumF, _ := c.AddPropF64("sumF")
				c.FillByNodeF64(src, func(v graph.NodeID) float64 { return float64(v) })
				c.FillF64(dst, 0)
				c.FillI64(sumI, 0)
				c.FillF64(sumF, 0)

				stats, err := c.RunJob(JobSpec{
					Name:      "compress-pull",
					Iter:      IterInEdges,
					Task:      &pullSumTask{src: src, dst: dst},
					ReadProps: []PropID{src},
				})
				if err != nil {
					t.Fatal(err)
				}
				tr := stats.Traffic
				stats, err = c.RunJob(JobSpec{
					Name: "compress-push",
					Iter: IterOutEdges,
					Task: &pushValTask{i64: sumI, f64: sumF},
					WriteProps: []WriteSpec{
						{Prop: sumI, Op: reduce.Sum},
						{Prop: sumF, Op: reduce.Sum},
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if !c.PoolsQuiescent() {
					t.Fatal("pools not quiescent")
				}
				cells[i] = cell{
					pull:    c.GatherF64(dst),
					sumI:    c.GatherI64(sumI),
					sumF:    c.GatherF64(sumF),
					traffic: tr.Add(stats.Traffic),
				}
			}
			on, off := cells[0], cells[1]
			for u := range on.pull {
				if on.pull[u] != off.pull[u] {
					t.Fatalf("pull node %d: compressed %v != raw %v", u, on.pull[u], off.pull[u])
				}
				if on.sumI[u] != off.sumI[u] {
					t.Fatalf("i64 push node %d: compressed %v != raw %v", u, on.sumI[u], off.sumI[u])
				}
				if on.sumF[u] != off.sumF[u] {
					t.Fatalf("f64 push node %d: compressed %v != raw %v", u, on.sumF[u], off.sumF[u])
				}
			}
			if off.traffic.CompressRawBytes != 0 {
				t.Errorf("ablation still recorded %d raw bytes", off.traffic.CompressRawBytes)
			}
			if fc.name == "inproc" {
				// Frames pass by reference in-process: the engine must gate
				// compression off even though the config left it enabled.
				if on.traffic.CompressRawBytes != 0 {
					t.Errorf("in-memory fabric still compressed %d raw bytes",
						on.traffic.CompressRawBytes)
				}
				return
			}
			if on.traffic.CompressRawBytes == 0 {
				t.Error("compression on: no eligible batches recorded")
			}
			if on.traffic.CompressWireBytes >= on.traffic.CompressRawBytes {
				t.Errorf("compression never paid: wire=%d raw=%d",
					on.traffic.CompressWireBytes, on.traffic.CompressRawBytes)
			}
			if on.traffic.BytesSent >= off.traffic.BytesSent {
				t.Errorf("total wire bytes not reduced: on=%d off=%d",
					on.traffic.BytesSent, off.traffic.BytesSent)
			}
			t.Logf("%s: ratio %.3f, total bytes %d -> %d", fc.name,
				on.traffic.CompressionRatio(), off.traffic.BytesSent, on.traffic.BytesSent)
		})
	}
}

// TestWireCompressionGhostMerge: with everything ghosted, iteration traffic
// is the ghost-merge allreduce — the compressed collective must produce the
// same labels as the ablation and record compression in the comm metrics.
// Runs over TCP: the in-memory fabric gates compression off entirely.
func TestWireCompressionGhostMerge(t *testing.T) {
	g := testGraph(t)
	var labels [2][]int64
	for i, disable := range []bool{false, true} {
		cfg := DefaultConfig(3)
		cfg.GhostThreshold = 0 // ghost every node: merges dominate
		cfg.DisableWireCompression = disable
		f, err := comm.NewTCPFabric(cfg.NumMachines,
			cfg.NumMachines*(cfg.ReqBuffers+cfg.Workers*cfg.NumMachines)+64, cfg.BufferSize)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Fabric = f
		t.Cleanup(func() { f.Close() }) // registered before Shutdown: runs after it
		c := bootCluster(t, g, cfg)
		label, _ := c.AddPropI64("label")
		tmp, _ := c.AddPropI64("tmp")
		c.FillByNodeI64(label, func(v graph.NodeID) int64 { return int64(v) })
		c.FillByNodeI64(tmp, func(v graph.NodeID) int64 { return int64(v) })
		before := c.TrafficSnapshot()
		for it := 0; it < 3; it++ {
			if _, err := c.RunJob(JobSpec{
				Name:       "min-push",
				Iter:       IterOutEdges,
				Task:       &minPushTask{label: label, tmp: tmp},
				ReadProps:  []PropID{label},
				WriteProps: []WriteSpec{{Prop: tmp, Op: reduce.Min}},
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.RunJob(JobSpec{
				Name: "adopt",
				Iter: IterNodes,
				Task: &adoptMinTask{label: label, tmp: tmp},
			}); err != nil {
				t.Fatal(err)
			}
		}
		tr := c.TrafficSnapshot().Sub(before)
		if disable && tr.CompressRawBytes != 0 {
			t.Errorf("ablation recorded %d compression-eligible bytes", tr.CompressRawBytes)
		}
		if !disable && tr.CompressRawBytes == 0 {
			t.Error("ghosted run with compression on recorded no eligible payloads")
		}
		labels[i] = c.GatherI64(label)
	}
	for u := range labels[0] {
		if labels[0][u] != labels[1][u] {
			t.Fatalf("node %d: compressed label %d != raw %d", u, labels[0][u], labels[1][u])
		}
	}
}

// TestFaultTruncatedCompressedFrameAborts: a compressed request frame cut
// mid-varint must be rejected by consume-side validation as a job abort —
// never a misdecode or a panic — and the cluster must recover once the fault
// clears. This is the flags field surviving FaultTruncate: the receiver still
// knows the mangled payload claims to be compressed. TCP only — the
// in-memory fabric never ships compressed frames.
func TestFaultTruncatedCompressedFrameAborts(t *testing.T) {
	for _, msg := range []comm.MsgType{comm.MsgReadReq, comm.MsgWriteReq} {
		t.Run(msg.String(), func(t *testing.T) {
			func(useTCP bool) {
				g := faultGraph(t)
				cfg := faultCfg(3)
				// Cut a few bytes into the payload: the count promises many
				// records, the torn varint column cannot deliver them.
				inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 11, Rules: []comm.FaultRule{
					{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(msg),
						Kind: comm.FaultTruncate, After: 0, Limit: 1, TruncateTo: comm.HeaderSize + 3},
				}})
				cfg.Fabric = inj
				c := bootCluster(t, g, cfg)
				defer inj.Close()
				src, _ := c.AddPropF64("src")
				dst, _ := c.AddPropF64("dst")

				var err error
				if msg == comm.MsgReadReq {
					err = runPull(t, c, g, src, dst, false)
				} else {
					counter, _ := c.AddPropI64("counter")
					c.FillI64(counter, 0)
					_, err = c.RunJob(JobSpec{
						Name:       "fault-push",
						Iter:       IterOutEdges,
						Task:       &pushOneTask{counter: counter},
						WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
					})
				}
				if err == nil {
					t.Fatal("job succeeded despite truncated compressed frame")
				}
				if !errors.Is(err, ErrJobAborted) {
					t.Fatalf("error %v does not wrap ErrJobAborted", err)
				}
				if st := inj.Stats(); st.Truncated == 0 {
					t.Error("no frame was actually truncated")
				}
				settleQuiescent(t, c)

				inj.ClearRules()
				if err := runPull(t, c, g, src, dst, true); err != nil {
					t.Fatalf("clean rerun after fault cleared: %v", err)
				}
			}(true)
		})
	}
}

// minPushTask pushes the node's label to out-neighbors with a Min reduction.
type minPushTask struct {
	NoReads
	label, tmp PropID
}

func (k *minPushTask) Run(c *Ctx) {
	c.NbrWriteI64(k.tmp, reduce.Min, c.GetI64(k.label))
}

// adoptMinTask folds tmp into label.
type adoptMinTask struct {
	NoReads
	label, tmp PropID
}

func (k *adoptMinTask) Run(c *Ctx) {
	if v := c.GetI64(k.tmp); v < c.GetI64(k.label) {
		c.SetI64(k.label, v)
	}
}
