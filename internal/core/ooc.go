package core

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/store"
)

// Out-of-core loading: Cluster.LoadStore adopts an open CSR v2 file
// (store.Open) instead of materializing the graph on the heap. Each machine's
// local store aliases its mmap'd file section directly — the same
// rows/refs/weights slice contract buildLocalStore produces, so workers,
// copiers, the chunk scheduler, and the steal protocol run unchanged — and
// page-cache eviction, optionally bounded by Config.ResidentBudgetBytes,
// governs how much topology is resident. Store files encode refs ghost-free
// (local or remote, never a ghost slot), so an out-of-core cluster runs with
// an empty ghost set; the per-edge ref dispatch is identical either way.

// LoadStore loads the cluster from an open CSR v2 file. The file must have
// been written for exactly this cluster's machine count (the partition cut is
// baked into the section layout). sf must stay open for the lifetime of the
// load — until the next Load/LoadStore or Shutdown; closing it earlier leaves
// the machines aliasing an unmapped region. Like Load, it discards registered
// properties; register them after.
func (c *Cluster) LoadStore(sf *store.File) error {
	if sf.NumMachines() != c.cfg.NumMachines {
		return fmt.Errorf("core: store file %s is cut for %d machines, cluster has %d",
			sf.Path(), sf.NumMachines(), c.cfg.NumMachines)
	}
	if sf.NumNodes() == 0 {
		return fmt.Errorf("core: store file %s is empty", sf.Path())
	}
	layout := sf.Layout()
	ghosts := partition.EmptyGhostSet()
	c.layout = layout
	c.ghosts = ghosts
	c.numNodes = sf.NumNodes()
	c.numEdges = sf.NumEdges()
	c.meta = nil
	c.freeProps = nil
	// One residency window is shared by all simulated machines: they alias
	// one mapping, and the budget is a per-process RSS bound.
	res := sf.NewResidency(c.cfg.ResidentBudgetBytes)
	err := c.parallel(func(m *Machine) error {
		m.loadFromStore(sf, layout, ghosts, res)
		return nil
	})
	if err != nil {
		return err
	}
	c.loaded = true
	return nil
}

// loadFromStore installs machine id's file section as its local store. The
// row/ref/weight slices alias the mapping zero-copy; only O(numLocal)
// metadata (degrees, both-orientation prefix) is materialized on the heap.
func (m *Machine) loadFromStore(sf *store.File, layout partition.Layout, ghosts *partition.GhostSet, res *store.Residency) {
	sec := sf.Section(m.id)
	lo, hi := layout.Range(m.id)
	numLocal := int(hi - lo)
	s := &localStore{
		me:         m.id,
		layout:     layout,
		ghosts:     ghosts,
		numLocal:   numLocal,
		outRows:    sec.OutRows,
		outRefs:    sec.OutRefs,
		outWeights: sec.OutWeights,
		inRows:     sec.InRows,
		inRefs:     sec.InRefs,
		inWeights:  sec.InWeights,
		outDeg:     make([]int32, numLocal),
		inDeg:      make([]int32, numLocal),
	}
	s.bothRows = make([]int64, numLocal+1)
	for u := 0; u < numLocal; u++ {
		s.outDeg[u] = int32(s.outRows[u+1] - s.outRows[u])
		s.inDeg[u] = int32(s.inRows[u+1] - s.inRows[u])
		s.bothRows[u+1] = s.bothRows[u] + int64(s.outDeg[u]) + int64(s.inDeg[u])
	}
	m.store = s
	m.ghostOwned = s.ghostOwnership()
	m.cols = nil
	m.loadHints, m.loadTotals = nil, nil
	m.degMass = sf.DegreeMass()
	m.residency = res
	m.rebuildChunks()
}

// touchChunk advises the residency window about the byte ranges one claimed
// chunk will read: the row slices for the chunk's node range and the ref (and
// weight) slices for the edges under it. Called at the worker's chunk-claim
// site, so claim order — sequential per machine via the shared cursor — is
// the prefetch order. Heap-backed slices (in-memory loads) are filtered out
// by the residency's pointer check, and jr.res is nil entirely outside
// out-of-core runs, so the hook costs one predictable branch elsewhere.
func (jr *jobRuntime) touchChunk(ch partition.Chunk) {
	if jr.rows == nil {
		return // node iterator: no topology reads
	}
	lo, hi := int64(ch.Begin), int64(ch.End)
	if jr.frontList != nil {
		// Sparse frontier: chunk indices address the sorted member list; the
		// node span is the members' range (sorted ascending).
		if ch.Begin >= ch.End {
			return
		}
		lo = int64(jr.frontList[ch.Begin])
		hi = int64(jr.frontList[ch.End-1]) + 1
	}
	res := jr.res
	res.TouchI64(jr.rows, lo, hi+1)
	res.TouchI64(jr.refs, jr.rows[lo], jr.rows[hi])
	if jr.weights != nil {
		res.TouchF64(jr.weights, jr.rows[lo], jr.rows[hi])
	}
	if jr.rows2 != nil {
		res.TouchI64(jr.rows2, lo, hi+1)
		res.TouchI64(jr.refs2, jr.rows2[lo], jr.rows2[hi])
		if jr.weights2 != nil {
			res.TouchF64(jr.weights2, jr.rows2[lo], jr.rows2[hi])
		}
	}
}
