package core

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/store"
)

// Out-of-core loading: Cluster.LoadStore adopts an open CSR v2 file
// (store.Open) instead of materializing the graph on the heap. Each machine's
// local store aliases its mmap'd file section directly — the same
// rows/refs/weights slice contract buildLocalStore produces, so workers,
// copiers, the chunk scheduler, and the steal protocol run unchanged — and
// page-cache eviction, optionally bounded by Config.ResidentBudgetBytes,
// governs how much topology is resident. Store files encode refs ghost-free
// (local or remote, never a ghost slot), so an out-of-core cluster runs with
// an empty ghost set; the per-edge ref dispatch is identical either way.

// LoadStore loads the cluster from an open CSR file — raw (v2) or compressed
// (v3). The file must have been written for exactly this cluster's machine
// count (the partition cut is baked into the section layout). sf must stay
// open for the lifetime of the load — until the next Load/LoadStore or
// Shutdown; closing it earlier leaves the machines aliasing an unmapped
// region. Like Load, it discards registered properties; register them after.
//
// For a compressed file the machines' ref views come from the file's decode
// cache (created here with Config.DecodeCacheBytes, shared with any other
// cluster loaded over the same open file), and — when a resident budget is
// also set — property columns move to anonymous mmap so the whole O(N)+O(M)
// working set stays off the Go heap.
func (c *Cluster) LoadStore(sf *store.File) error {
	if sf.NumMachines() != c.cfg.NumMachines {
		return fmt.Errorf("core: store file %s is cut for %d machines, cluster has %d",
			sf.Path(), sf.NumMachines(), c.cfg.NumMachines)
	}
	if sf.NumNodes() == 0 {
		return fmt.Errorf("core: store file %s is empty", sf.Path())
	}
	var dc *store.DecodeCache
	if sf.Compressed() {
		budget := c.cfg.DecodeCacheBytes
		if budget == 0 {
			budget = store.DefaultDecodeCacheBytes
		}
		var err error
		if dc, err = sf.EnsureDecodeCache(budget); err != nil {
			return err
		}
	}
	layout := sf.Layout()
	ghosts := partition.EmptyGhostSet()
	c.layout = layout
	c.ghosts = ghosts
	c.numNodes = sf.NumNodes()
	c.numEdges = sf.NumEdges()
	c.meta = nil
	c.freeProps = nil
	// One residency window is shared by all simulated machines: they alias
	// one mapping, and the budget is a per-process RSS bound.
	res := sf.NewResidency(c.cfg.ResidentBudgetBytes)
	err := c.parallel(func(m *Machine) error {
		m.loadFromStore(sf, dc, layout, ghosts, res)
		return nil
	})
	if err != nil {
		return err
	}
	c.oocDec, c.oocRes = dc, res
	c.oocDecBase, c.oocResBase = store.DecodeCacheStats{}, store.ResidencyStats{}
	if dc != nil {
		c.oocDecBase = dc.Stats()
	}
	c.loaded = true
	return nil
}

// loadFromStore installs machine id's file section as its local store. The
// row/ref/weight slices alias the mapping zero-copy (for a compressed file
// the refs alias the decode cache's arena instead — same absolute indexing,
// valid only under a chunk claim's pins); only O(numLocal) metadata
// (degrees, both-orientation prefix) is materialized on the heap.
func (m *Machine) loadFromStore(sf *store.File, dc *store.DecodeCache, layout partition.Layout, ghosts *partition.GhostSet, res *store.Residency) {
	sec := sf.Section(m.id)
	outRefs, inRefs := sec.OutRefs, sec.InRefs
	if dc != nil {
		outRefs = dc.Refs(m.id, store.OrientOut)
		inRefs = dc.Refs(m.id, store.OrientIn)
	}
	lo, hi := layout.Range(m.id)
	numLocal := int(hi - lo)
	s := &localStore{
		me:         m.id,
		layout:     layout,
		ghosts:     ghosts,
		numLocal:   numLocal,
		outRows:    sec.OutRows,
		outRefs:    outRefs,
		outWeights: sec.OutWeights,
		inRows:     sec.InRows,
		inRefs:     inRefs,
		inWeights:  sec.InWeights,
		outDeg:     make([]int32, numLocal),
		inDeg:      make([]int32, numLocal),
	}
	s.bothRows = make([]int64, numLocal+1)
	for u := 0; u < numLocal; u++ {
		s.outDeg[u] = int32(s.outRows[u+1] - s.outRows[u])
		s.inDeg[u] = int32(s.inRows[u+1] - s.inRows[u])
		s.bothRows[u+1] = s.bothRows[u] + int64(s.outDeg[u]) + int64(s.inDeg[u])
	}
	m.store = s
	m.ghostOwned = s.ghostOwnership()
	m.releaseCols()
	m.loadHints, m.loadTotals = nil, nil
	m.degMass = sf.DegreeMass()
	m.residency = res
	m.dec = dc
	m.offHeapCols = res != nil
	m.rebuildChunks()
}

// chunkSpan maps one scheduling chunk to the node span [lo, hi) it will
// iterate. ok is false when the chunk drives no topology reads (node
// iterator, or an empty sparse-frontier chunk).
func (jr *jobRuntime) chunkSpan(ch partition.Chunk) (lo, hi int64, ok bool) {
	if jr.rows == nil {
		return 0, 0, false // node iterator: no topology reads
	}
	lo, hi = int64(ch.Begin), int64(ch.End)
	if jr.frontList != nil {
		// Sparse frontier: chunk indices address the sorted member list; the
		// node span is the members' range (sorted ascending).
		if ch.Begin >= ch.End {
			return 0, 0, false
		}
		lo = int64(jr.frontList[ch.Begin])
		hi = int64(jr.frontList[ch.End-1]) + 1
	}
	return lo, hi, true
}

// touchSpan advises the residency window about the byte ranges a node span's
// iteration will read: the row slices, the ref (and weight) slices for the
// edges under it — and for compressed stores the compressed blob bytes
// instead of the refs (the arena refs live outside the mapping and are
// filtered by the residency's pointer check anyway; what faults from the
// file is the ~3-bytes-per-edge blob, so that is what enters the window).
// Claim order — sequential per machine via the shared cursor — is the
// prefetch order.
func (jr *jobRuntime) touchSpan(lo, hi int64) {
	res := jr.res
	res.TouchI64(jr.rows, lo, hi+1)
	if jr.dec != nil {
		jr.dec.TouchCompressed(res, jr.decMach, jr.orient, lo, hi)
	} else {
		res.TouchI64(jr.refs, jr.rows[lo], jr.rows[hi])
	}
	if jr.weights != nil {
		res.TouchF64(jr.weights, jr.rows[lo], jr.rows[hi])
	}
	if jr.rows2 != nil {
		res.TouchI64(jr.rows2, lo, hi+1)
		if jr.dec != nil {
			jr.dec.TouchCompressed(res, jr.decMach, store.OrientIn, lo, hi)
		} else {
			res.TouchI64(jr.refs2, jr.rows2[lo], jr.rows2[hi])
		}
		if jr.weights2 != nil {
			res.TouchF64(jr.weights2, jr.rows2[lo], jr.rows2[hi])
		}
	}
}

// claimChunk prepares one claimed chunk's topology reads: residency advice
// for the bytes it touches and — on a compressed store — decode-cache pins
// covering its rows in every orientation the job iterates. The returned
// tokens (zero-valued when nothing was pinned) must be released once the
// chunk's task invocations finish; holders keep them reachable across an
// abort unwind so cleanup can release them. Claim sites gate on
// jr.needsClaim() to keep in-memory runs branch-cheap.
func (jr *jobRuntime) claimChunk(ch partition.Chunk) (t1, t2 store.PinToken, err error) {
	lo, hi, ok := jr.chunkSpan(ch)
	if !ok {
		return
	}
	if jr.res != nil {
		jr.touchSpan(lo, hi)
	}
	if jr.dec == nil {
		return
	}
	if t1, err = jr.dec.Pin(jr.decMach, jr.orient, lo, hi); err != nil {
		return
	}
	if jr.rows2 != nil {
		if t2, err = jr.dec.Pin(jr.decMach, store.OrientIn, lo, hi); err != nil {
			t1.Release()
			return store.PinToken{}, store.PinToken{}, err
		}
	}
	return
}

// needsClaim reports whether chunk claims must go through claimChunk.
func (jr *jobRuntime) needsClaim() bool { return jr.res != nil || jr.dec != nil }
