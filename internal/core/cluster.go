package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/reduce"
	"repro/internal/store"
)

// Cluster assembles and drives the simulated machines. Execution is SPMD
// underneath — every collective operation runs with all machine main
// goroutines participating over the fabric — but the Cluster presents a
// driver-style API so algorithms read top-down like the paper's Figure 2
// application skeleton.
type Cluster struct {
	cfg       Config
	fabric    comm.Fabric
	ownFabric bool
	machines  []*Machine
	meta      []propMeta
	layout    partition.Layout
	ghosts    *partition.GhostSet
	numNodes  int
	numEdges  int64
	freeProps []PropID
	loaded    bool
	shut      bool
	jobSeq    uint64

	// Out-of-core accounting state, set by LoadStore and cleared by install:
	// the decode cache and residency window the loaded store file drives, plus
	// the stats snapshots already flushed into the obs registry — pollOOCStats
	// publishes deltas against these bases after every job so /debug/metrics
	// and server stats see cumulative decode/residency counters.
	oocDec     *store.DecodeCache
	oocRes     *store.Residency
	oocDecBase store.DecodeCacheStats
	oocResBase store.ResidencyStats

	// External cancellation latch (Cancel/Uncancel): cancelErr is the sticky
	// cause, cancelCh is closed on Cancel so the per-run watcher wakes.
	cancelMu  sync.Mutex
	cancelErr error
	cancelCh  chan struct{}

	// dirPushCost/dirPullCost persist the direction policy's learned
	// bytes-per-edge EWMAs across traversal runs on this cluster: a new
	// DirectionPolicy seeds from them instead of re-learning the fabric's
	// push/pull cost ratio from scratch, so the second traversal's first
	// supersteps already decide with calibrated costs. Driver-side state
	// (Observe runs between jobs, never concurrently).
	dirPushCost float64
	dirPullCost float64
}

// ErrJobAborted wraps every error RunJob returns for a job that started and
// then failed (transport fault, timeout, dead machine, protocol violation).
// errors.Is(err, ErrJobAborted) distinguishes an aborted job from a
// configuration error; the root cause stays in the chain. After an aborted
// job the cluster has recovered: buffers are back in their pools and the
// next RunJob starts clean (property values touched by the failed job are
// undefined).
var ErrJobAborted = errors.New("core: job aborted")

// NewCluster boots a cluster per cfg. Call Load before registering
// properties or running jobs, and Shutdown when done.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, fabric: cfg.Fabric}
	if c.fabric == nil {
		// Inbox must hold every pooled buffer in the cluster so channel
		// sends never block (see the deadlock-freedom argument in comm).
		// The last term is the per-machine abort-announcement pool.
		perMachine := cfg.ReqBuffers + cfg.RespBuffers + 4*cfg.NumMachines + 8 + cfg.NumMachines + 2
		c.fabric = comm.NewInProcFabric(cfg.NumMachines, cfg.NumMachines*perMachine+16)
		c.ownFabric = true
	}
	if comm.InMemoryFabric(c.fabric) {
		// Frames on an in-memory fabric are handed over by reference —
		// there is no wire to save bytes on, so the compression codec would
		// be pure CPU loss. Force the ablation flag; machines read c.cfg.
		c.cfg.DisableWireCompression = true
	}
	// Size the registry before any endpoint wrapping so record paths find
	// their machine slots from the first frame.
	c.cfg.Obs.Attach(cfg.NumMachines)
	c.machines = make([]*Machine, cfg.NumMachines)
	for m := 0; m < cfg.NumMachines; m++ {
		ep, err := c.fabric.Endpoint(m)
		if err != nil {
			return nil, fmt.Errorf("core: machine %d endpoint: %w", m, err)
		}
		if c.cfg.Obs != nil {
			ep = obs.WrapEndpoint(ep, c.cfg.Obs)
		}
		c.machines[m] = newMachine(&c.cfg, m, ep)
	}
	return c, nil
}

// Obs returns the cluster's observability registry, or nil when disabled.
func (c *Cluster) Obs() *obs.Registry { return c.cfg.Obs }

// Config returns the cluster's (normalized) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Load partitions g across the machines per the configured strategy,
// selects ghosts, and builds each machine's local store. Properties
// registered before Load are discarded; register them after.
func (c *Cluster) Load(g *graph.Graph) error {
	layout, err := partition.Compute(g, c.cfg.NumMachines, c.cfg.Partitioning)
	if err != nil {
		return err
	}
	var ghosts *partition.GhostSet
	switch {
	case c.cfg.GhostCount > 0:
		ghosts = partition.SelectTopGhosts(g, c.cfg.GhostCount)
	case c.cfg.GhostThreshold == GhostAuto:
		avg := int64(0)
		if g.NumNodes() > 0 {
			avg = 2 * g.NumEdges() / int64(g.NumNodes())
		}
		threshold := 4 * avg
		if threshold < 8 {
			threshold = 8
		}
		ghosts = partition.SelectGhosts(g, threshold)
	case c.cfg.GhostThreshold >= 0:
		ghosts = partition.SelectGhosts(g, c.cfg.GhostThreshold)
	default:
		ghosts = partition.SelectTopGhosts(g, 0) // ghosting disabled
	}
	return c.install(g, layout, ghosts)
}

// LoadPlan loads g with an explicit ownership layout and ghost budget,
// bypassing the configured partitioning strategy — the entry point for
// deliberately skewed layouts (partition.SkewedLayout) and for applying a
// repartitioning plan from Replan. ghostCount > 0 ghosts that many
// top-degree vertices; 0 disables ghosting. Like Load, it discards all
// registered properties; re-register and re-fill after the reload.
func (c *Cluster) LoadPlan(g *graph.Graph, layout partition.Layout, ghostCount int) error {
	if layout.NumMachines != c.cfg.NumMachines {
		return fmt.Errorf("core: plan layout has %d machines, cluster has %d",
			layout.NumMachines, c.cfg.NumMachines)
	}
	if len(layout.Starts) != layout.NumMachines+1 || int(layout.Starts[layout.NumMachines]) != g.NumNodes() {
		return fmt.Errorf("core: plan layout does not cover the %d-node graph", g.NumNodes())
	}
	return c.install(g, layout, partition.SelectTopGhosts(g, ghostCount))
}

// install is the shared tail of Load/LoadPlan: adopt the layout and rebuild
// every machine's local store.
func (c *Cluster) install(g *graph.Graph, layout partition.Layout, ghosts *partition.GhostSet) error {
	c.layout = layout
	c.ghosts = ghosts
	c.numNodes = g.NumNodes()
	c.numEdges = g.NumEdges()
	c.meta = nil
	c.freeProps = nil
	c.oocDec, c.oocRes = nil, nil
	err := c.parallel(func(m *Machine) error {
		m.load(g, layout, ghosts)
		return nil
	})
	if err != nil {
		return err
	}
	c.loaded = true
	return nil
}

// Replan turns what the cluster measured since Load — the per-machine
// task-time totals piggybacked on every job's write-drain collective, the
// barrier-wait histograms, and the cumulative traffic matrix — into a
// repartitioning plan for g, which must be the currently loaded graph.
// Apply the plan with LoadPlan before the next run on the same graph.
func (c *Cluster) Replan(g *graph.Graph) (partition.Plan, error) {
	if !c.loaded {
		return partition.Plan{}, fmt.Errorf("core: Replan before Load")
	}
	if g.NumNodes() != c.numNodes {
		return partition.Plan{}, fmt.Errorf("core: Replan graph has %d nodes, loaded graph has %d",
			g.NumNodes(), c.numNodes)
	}
	t := partition.Telemetry{TaskNanos: c.TaskTimeTotals()}
	if reg := c.cfg.Obs; reg.Attached() {
		t.BarrierWaitNanos = make([]int64, c.cfg.NumMachines)
		for m := range t.BarrierWaitNanos {
			t.BarrierWaitNanos[m] = reg.MachineHistogram(m, obs.HistBarrier).SumNS
		}
		t.TrafficBytes = reg.LifetimeTraffic()
	}
	return partition.Replan(g, c.layout, t)
}

// TaskTimeTotals returns each machine's cumulative task-phase nanoseconds
// accumulated since Load, summed from the load hints every job's write-drain
// collective carries. Nil before the first job runs. The totals are
// cluster-global (every machine holds the same vector via the allreduce).
func (c *Cluster) TaskTimeTotals() []int64 {
	for _, m := range c.machines {
		if len(m.loadTotals) == c.cfg.NumMachines {
			out := make([]int64, len(m.loadTotals))
			copy(out, m.loadTotals)
			return out
		}
	}
	return nil
}

// NumNodes returns the loaded graph's node count.
func (c *Cluster) NumNodes() int { return c.numNodes }

// NumEdges returns the loaded graph's directed edge count.
func (c *Cluster) NumEdges() int64 { return c.numEdges }

// NumGhosts returns how many vertices are ghosted cluster-wide.
func (c *Cluster) NumGhosts() int { return c.ghosts.Len() }

// Layout returns the vertex partitioning.
func (c *Cluster) Layout() partition.Layout { return c.layout }

// Machines returns the number of machines.
func (c *Cluster) Machines() int { return c.cfg.NumMachines }

// parallel runs fn concurrently on every machine's main goroutine and
// returns the first error. All collective operations must happen inside
// such a section, on all machines.
func (c *Cluster) parallel(fn func(m *Machine) error) error {
	errs := make([]error, len(c.machines))
	var wg sync.WaitGroup
	for i, m := range c.machines {
		wg.Add(1)
		go func(i int, m *Machine) {
			defer wg.Done()
			errs[i] = fn(m)
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AddPropF64 registers a float64 node property on every machine and returns
// its id. Registration must happen after Load and outside jobs.
func (c *Cluster) AddPropF64(name string) (PropID, error) {
	return c.addProp(propMeta{name: name, kind: KindF64})
}

// AddPropI64 registers an int64 node property (bools are 0/1).
func (c *Cluster) AddPropI64(name string) (PropID, error) {
	return c.addProp(propMeta{name: name, kind: KindI64})
}

func (c *Cluster) addProp(meta propMeta) (PropID, error) {
	if !c.loaded {
		return 0, fmt.Errorf("core: AddProp %q before Load", meta.name)
	}
	if n := len(c.freeProps); n > 0 {
		id := c.freeProps[n-1]
		c.freeProps = c.freeProps[:n-1]
		c.meta[id] = meta
		for _, m := range c.machines {
			m.cols[id] = m.newCol(meta)
		}
		return id, nil
	}
	if len(c.meta) >= 1<<16 {
		return 0, fmt.Errorf("core: property id space exhausted")
	}
	id := PropID(len(c.meta))
	c.meta = append(c.meta, meta)
	for _, m := range c.machines {
		m.addProp(meta)
	}
	return id, nil
}

// DropProps releases temporary properties so their storage can be reclaimed
// and their ids reused — the paper: "it is trivial to create or delete
// temporary properties". Dropped ids must not be used afterwards.
func (c *Cluster) DropProps(ids ...PropID) {
	for _, id := range ids {
		if int(id) >= len(c.meta) {
			continue
		}
		c.meta[id] = propMeta{name: "(dropped)", kind: PropKind(0xff)}
		for _, m := range c.machines {
			m.cols[id].release()
			m.cols[id] = nil
		}
		c.freeProps = append(c.freeProps, id)
	}
}

// RegisterRMI registers one remote method on every machine; build receives
// the machine so handlers can close over local state. Returns the method id
// (identical cluster-wide).
func (c *Cluster) RegisterRMI(build func(m *Machine) comm.RMIHandler) uint32 {
	var id uint32
	for _, m := range c.machines {
		id = m.rmi.Register(build(m))
	}
	return id
}

// RunJob executes one parallel region cluster-wide and returns its stats.
func (c *Cluster) RunJob(spec JobSpec) (JobStats, error) {
	if !c.loaded {
		return JobStats{}, fmt.Errorf("core: RunJob %q before Load", spec.Name)
	}
	if err := spec.validate(c.meta); err != nil {
		return JobStats{}, err
	}
	if spec.Source != nil && spec.Source.c != c {
		return JobStats{}, fmt.Errorf("core: job %q sources frontier %q from another cluster", spec.Name, spec.Source.name)
	}
	for i, f := range spec.Build {
		if f == nil || f.c != c {
			return JobStats{}, fmt.Errorf("core: job %q build slot %d is nil or from another cluster", spec.Name, i)
		}
	}
	// Fail fast when canceled: a multi-superstep algorithm is a RunJob loop,
	// so this check is what stops the driver after Cancel fires mid-run.
	if cause := c.CancelCause(); cause != nil {
		return JobStats{}, fmt.Errorf("job %q: %w: %w", spec.Name, ErrJobAborted, cause)
	}
	before := c.TrafficSnapshot()
	results := make([]machineJobStats, len(c.machines))
	c.jobSeq++
	jobID := c.jobSeq
	c.cfg.Obs.BeginJob(jobID, spec.Name)
	start := time.Now()
	stopWatch := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go c.watchCancel(stopWatch, &watchWG)
	err := c.parallel(func(m *Machine) error {
		st, err := m.runJob(&spec, jobID)
		results[m.id] = st
		return err
	})
	close(stopWatch)
	watchWG.Wait()
	if err != nil {
		c.recoverAfterAbort()
		c.pollOOCStats()
		// The flight recorder snapshots after recovery so it sees the final
		// counter state of everything that did arrive before the abort.
		c.cfg.Obs.RecordAbort(jobID, spec.Name, err)
		// A broadcast abort flattens the originating error to a string, so
		// the winning machine error may have lost the cancellation cause;
		// if the latch is set, splice it back into the returned chain.
		if cause := c.CancelCause(); cause != nil && !errors.Is(err, ErrJobCanceled) {
			return JobStats{}, fmt.Errorf("job %q: %w: %w: %v", spec.Name, ErrJobAborted, cause, err)
		}
		return JobStats{}, fmt.Errorf("job %q: %w: %w", spec.Name, ErrJobAborted, err)
	}
	c.cfg.Obs.EndJob(jobID, time.Since(start))
	c.pollOOCStats()
	stats := JobStats{
		Duration:  time.Since(start),
		Traffic:   c.TrafficSnapshot().Sub(before),
		Breakdown: results[0].breakdown,
		Frontiers: results[0].frontiers,
	}
	// The driver-side duration includes goroutine fan-out; prefer the
	// engine-measured duration plus its share of the difference as Sync.
	stats.Breakdown.Sync += stats.Duration - results[0].duration
	return stats, nil
}

// pollOOCStats publishes the decode-cache and residency-window counters an
// out-of-core run accumulated since the last poll into the obs registry (as
// machine-0 counters — both structures are process-wide, shared across the
// simulated machines). Driver-side, called between jobs; deltas against the
// flushed bases keep the registry cumulative even though the underlying
// stats survive across jobs and across pool jobs on the same open file.
func (c *Cluster) pollOOCStats() {
	reg := c.cfg.Obs
	if !reg.Attached() {
		return
	}
	if dc := c.oocDec; dc != nil {
		s := dc.Stats()
		reg.Add(0, obs.CtrDecodeHits, s.Hits-c.oocDecBase.Hits)
		reg.Add(0, obs.CtrDecodeMisses, s.Misses-c.oocDecBase.Misses)
		reg.Add(0, obs.CtrDecodedBytes, s.DecodedBytes-c.oocDecBase.DecodedBytes)
		reg.Add(0, obs.CtrDecodeEvictedBytes, s.EvictedBytes-c.oocDecBase.EvictedBytes)
		c.oocDecBase = s
	}
	if res := c.oocRes; res != nil {
		s := res.Stats()
		reg.Add(0, obs.CtrResidencyTouchedBytes, s.TouchedBytes-c.oocResBase.TouchedBytes)
		reg.Add(0, obs.CtrResidencyEvictedBytes, s.EvictedBytes-c.oocResBase.EvictedBytes)
		c.oocResBase = s
	}
}

// TrafficSnapshot sums the transport counters over all endpoints.
func (c *Cluster) TrafficSnapshot() comm.Snapshot {
	var s comm.Snapshot
	for _, m := range c.machines {
		s = s.Add(m.ep.Metrics().Snapshot())
	}
	return s
}

// Barrier synchronizes all machines; exposed for benchmarks (Figure 5b
// measures barrier latency directly).
func (c *Cluster) Barrier() error {
	return c.parallel(func(m *Machine) error { return m.col.Barrier() })
}

// Shutdown stops all machines and tears down an internally created fabric.
// Idempotent.
func (c *Cluster) Shutdown() {
	if c.shut {
		return
	}
	c.shut = true
	for _, m := range c.machines {
		m.shutdown()
	}
	if c.ownFabric {
		c.fabric.Close()
	}
}

// --- driver-side property access -------------------------------------------
//
// These helpers run at sequential-region time (no job in flight). Gather and
// Set access machine memory directly — they are result extraction and
// initialization, not part of the timed execution model.

func (c *Cluster) checkProp(p PropID, kind PropKind) {
	if int(p) >= len(c.meta) || c.meta[p].kind != kind {
		panic(fmt.Sprintf("core: property %d is not a registered %v property", p, kind))
	}
}

// GatherF64 assembles property p's full O(N) array in global node order.
func (c *Cluster) GatherF64(p PropID) []float64 {
	c.checkProp(p, KindF64)
	out := make([]float64, c.numNodes)
	c.mustParallel(func(m *Machine) {
		col := m.cols[p]
		base := int(c.layout.Starts[m.id])
		for i := 0; i < m.store.numLocal; i++ {
			out[base+i] = col.getF64(i)
		}
	})
	return out
}

// GatherI64 assembles integer property p's full array in global node order.
func (c *Cluster) GatherI64(p PropID) []int64 {
	c.checkProp(p, KindI64)
	out := make([]int64, c.numNodes)
	c.mustParallel(func(m *Machine) {
		col := m.cols[p]
		base := int(c.layout.Starts[m.id])
		for i := 0; i < m.store.numLocal; i++ {
			out[base+i] = col.getI64(i)
		}
	})
	return out
}

// FillF64 sets property p to v on every node.
func (c *Cluster) FillF64(p PropID, v float64) {
	c.checkProp(p, KindF64)
	c.mustParallel(func(m *Machine) {
		col := m.cols[p]
		for i := 0; i < m.store.numLocal; i++ {
			col.setF64(i, v)
		}
	})
}

// FillI64 sets integer property p to v on every node.
func (c *Cluster) FillI64(p PropID, v int64) {
	c.checkProp(p, KindI64)
	c.mustParallel(func(m *Machine) {
		col := m.cols[p]
		for i := 0; i < m.store.numLocal; i++ {
			col.setI64(i, v)
		}
	})
}

// FillByNodeF64 sets property p per node from fn(global id). fn must be safe
// for concurrent calls.
func (c *Cluster) FillByNodeF64(p PropID, fn func(graph.NodeID) float64) {
	c.checkProp(p, KindF64)
	c.mustParallel(func(m *Machine) {
		col := m.cols[p]
		for i := 0; i < m.store.numLocal; i++ {
			col.setF64(i, fn(m.store.globalOf(uint32(i))))
		}
	})
}

// FillByNodeI64 sets integer property p per node from fn(global id).
func (c *Cluster) FillByNodeI64(p PropID, fn func(graph.NodeID) int64) {
	c.checkProp(p, KindI64)
	c.mustParallel(func(m *Machine) {
		col := m.cols[p]
		for i := 0; i < m.store.numLocal; i++ {
			col.setI64(i, fn(m.store.globalOf(uint32(i))))
		}
	})
}

// SetNodeF64 writes one node's value of property p.
func (c *Cluster) SetNodeF64(v graph.NodeID, p PropID, val float64) {
	c.checkProp(p, KindF64)
	owner := c.layout.Owner(v)
	c.machines[owner].cols[p].setF64(int(c.layout.LocalOffset(v)), val)
}

// SetNodeI64 writes one node's value of integer property p.
func (c *Cluster) SetNodeI64(v graph.NodeID, p PropID, val int64) {
	c.checkProp(p, KindI64)
	owner := c.layout.Owner(v)
	c.machines[owner].cols[p].setI64(int(c.layout.LocalOffset(v)), val)
}

// GetNodeF64 reads one node's value of property p.
func (c *Cluster) GetNodeF64(v graph.NodeID, p PropID) float64 {
	c.checkProp(p, KindF64)
	owner := c.layout.Owner(v)
	return c.machines[owner].cols[p].getF64(int(c.layout.LocalOffset(v)))
}

// GetNodeI64 reads one node's value of integer property p.
func (c *Cluster) GetNodeI64(v graph.NodeID, p PropID) int64 {
	c.checkProp(p, KindI64)
	owner := c.layout.Owner(v)
	return c.machines[owner].cols[p].getI64(int(c.layout.LocalOffset(v)))
}

// ReduceF64 folds property p over all nodes with op, using local folds plus
// one collective — the engine-level sequential-region reduction behind
// convergence tests and normalizations.
func (c *Cluster) ReduceF64(p PropID, op reduce.Op) (float64, error) {
	c.checkProp(p, KindF64)
	results := make([]float64, len(c.machines))
	err := c.parallel(func(m *Machine) error {
		col := m.cols[p]
		acc := reduce.BottomF64(op)
		for i := 0; i < m.store.numLocal; i++ {
			acc = reduce.ApplyF64(op, acc, col.getF64(i))
		}
		vals := []float64{acc}
		if err := m.col.AllReduceF64(vals, op); err != nil {
			return err
		}
		results[m.id] = vals[0]
		return nil
	})
	return results[0], err
}

// ReduceMappedF64 folds fn(value) of property p over all nodes with op —
// e.g. a sum of squares for L2 normalization without materializing a
// temporary property.
func (c *Cluster) ReduceMappedF64(p PropID, op reduce.Op, fn func(float64) float64) (float64, error) {
	c.checkProp(p, KindF64)
	results := make([]float64, len(c.machines))
	err := c.parallel(func(m *Machine) error {
		col := m.cols[p]
		acc := reduce.BottomF64(op)
		for i := 0; i < m.store.numLocal; i++ {
			acc = reduce.ApplyF64(op, acc, fn(col.getF64(i)))
		}
		vals := []float64{acc}
		if err := m.col.AllReduceF64(vals, op); err != nil {
			return err
		}
		results[m.id] = vals[0]
		return nil
	})
	return results[0], err
}

// ReduceI64 folds integer property p over all nodes with op.
func (c *Cluster) ReduceI64(p PropID, op reduce.Op) (int64, error) {
	c.checkProp(p, KindI64)
	results := make([]int64, len(c.machines))
	err := c.parallel(func(m *Machine) error {
		col := m.cols[p]
		acc := reduce.BottomI64(op)
		for i := 0; i < m.store.numLocal; i++ {
			acc = reduce.ApplyI64(op, acc, col.getI64(i))
		}
		vals := []int64{acc}
		if err := m.col.AllReduceI64(vals, op); err != nil {
			return err
		}
		results[m.id] = vals[0]
		return nil
	})
	return results[0], err
}

// PoolsQuiescent reports whether every buffer pool has all buffers returned;
// tests assert it between jobs (leak detection). Transports with
// asynchronous senders are quiesced first: the job protocol guarantees every
// frame was delivered, but the sender goroutine's final Release can trail
// the response's arrival by a few instructions.
func (c *Cluster) PoolsQuiescent() bool {
	for _, m := range c.machines {
		if q, ok := m.ep.(interface{ Quiesce() }); ok {
			q.Quiesce()
		}
	}
	for _, m := range c.machines {
		if m.reqPool.Outstanding() != 0 || m.respPool.Outstanding() != 0 ||
			m.ctrlPool.Outstanding() != 0 || m.abortPool.Outstanding() != 0 {
			return false
		}
	}
	return true
}

// recoverAfterAbort returns the cluster to a runnable state after a failed
// job: every machine may have stopped at a different point in the job's
// schedule, with frames still in flight, buffers checked out, and collective
// sequence counters diverged. Recovery (1) quiesces async senders and lets
// copiers serve whatever already arrived, (2) drains stale responses and
// control frames back to their pools, repeating until the cluster goes
// quiet, then (3) zeroes the cumulative write-drain counters (their
// cluster-wide equality is a per-run invariant the aborted job broke) and
// levels every machine's collective sequence counter so the next job's
// control frames match up again.
func (c *Cluster) recoverAfterAbort() {
	quiet := func() bool {
		for _, m := range c.machines {
			if m.router.PendingRequests() != 0 {
				return false
			}
			if m.reqPool.Outstanding() != 0 || m.respPool.Outstanding() != 0 ||
				m.ctrlPool.Outstanding() != 0 || m.abortPool.Outstanding() != 0 {
				return false
			}
		}
		return true
	}
	for round := 0; round < 500; round++ {
		for _, m := range c.machines {
			if q, ok := m.ep.(interface{ Quiesce() }); ok {
				q.Quiesce()
			}
		}
		for _, m := range c.machines {
			m.drainStale()
		}
		if quiet() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	maxSeq := uint32(0)
	for _, m := range c.machines {
		if s := m.col.Seq(); s > maxSeq {
			maxSeq = s
		}
	}
	for _, m := range c.machines {
		m.col.Recover(maxSeq)
		m.writesSent.Store(0)
		m.writesApplied.Store(0)
		// A job that died mid-spill left a backlog (and possibly a temp
		// file) that must never apply against the reset counters.
		m.spill.reset()
	}
}

func (c *Cluster) mustParallel(fn func(m *Machine)) {
	if err := c.parallel(func(m *Machine) error { fn(m); return nil }); err != nil {
		panic(err)
	}
}
