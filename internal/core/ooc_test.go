package core

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/reduce"
	"repro/internal/store"
)

// storePath writes g as a CSR v2 store file partitioned for p machines.
func storePath(t testing.TB, g *graph.Graph, p int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.csr2")
	if err := store.WriteGraph(path, g, p); err != nil {
		t.Fatal(err)
	}
	return path
}

// storePath3 writes g as a compressed CSR v3 store file.
func storePath3(t testing.TB, g *graph.Graph, p int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.csr3")
	if err := store.WriteGraphCompressed(path, g, p); err != nil {
		t.Fatal(err)
	}
	return path
}

// bootStore boots a cluster over the mmap'd store file. The file must outlive
// the machines (sections alias the mapping), so Close is sequenced after
// Shutdown in the same cleanup.
func bootStore(t testing.TB, path string, cfg Config) *Cluster {
	t.Helper()
	sf, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		sf.Close() //nolint:errcheck
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Shutdown()
		sf.Close() //nolint:errcheck
	})
	if err := c.LoadStore(sf); err != nil {
		t.Fatal(err)
	}
	return c
}

// spillFiles lists leftover spill temp files in dir.
func spillFiles(t testing.TB, dir string) []string {
	t.Helper()
	left, err := filepath.Glob(filepath.Join(dir, "pgxd-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	return left
}

// runPushOne executes the in-degree push job and returns the gathered result.
func runPushOne(t *testing.T, c *Cluster, counter PropID) []int64 {
	t.Helper()
	c.FillI64(counter, 0)
	if _, err := c.RunJob(JobSpec{
		Name:       "ooc-push",
		Iter:       IterOutEdges,
		Task:       &pushOneTask{counter: counter},
		WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
	}); err != nil {
		t.Fatal(err)
	}
	return c.GatherI64(counter)
}

// TestLoadStoreMatchesLoad: the same graph computed from an mmap'd CSR store
// file — raw v2 and compressed v3 — must be bit-identical to the in-memory
// load, over both fabrics. The store-backed clusters run with a deliberately
// tiny residency window and write spilling forced through the file path, and
// the compressed variant adds a tiny (64 KiB) decode cache, so the comparison
// covers the chunk advice loop, the pin/decode/evict cycle, and the
// spill/replay drain, not just the format decode.
func TestLoadStoreMatchesLoad(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := testGraph(t)
		paths := map[string]string{
			"csr2": storePath(t, g, 3),
			"csr3": storePath3(t, g, 3),
		}
		spillDir := t.TempDir()

		run := func(format string) ([]int64, []float64) {
			cfg := faultCfg(3)
			cfg.RequestTimeout = 0
			cfg.CollectiveTimeout = 0
			if useTCP {
				f, err := comm.NewTCPFabric(cfg.NumMachines,
					cfg.NumMachines*(cfg.ReqBuffers+cfg.Workers*cfg.NumMachines)+64, cfg.BufferSize)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { f.Close() }) //nolint:errcheck
				cfg.Fabric = f
			}
			var c *Cluster
			if format != "" {
				cfg.ResidentBudgetBytes = 64 << 10
				cfg.SpillWrites = true
				cfg.SpillBudgetBytes = 1 << 10
				cfg.SpillDir = spillDir
				if format == "csr3" {
					cfg.DecodeCacheBytes = 64 << 10
				}
				c = bootStore(t, paths[format], cfg)
			} else {
				c = bootCluster(t, g, cfg)
			}
			counter, err := c.AddPropI64("counter")
			if err != nil {
				t.Fatal(err)
			}
			src, _ := c.AddPropF64("src")
			dst, _ := c.AddPropF64("dst")
			push := runPushOne(t, c, counter)
			if err := runPull(t, c, g, src, dst, true); err != nil {
				t.Fatal(err)
			}
			return push, c.GatherF64(dst)
		}

		memPush, memPull := run("")
		for _, format := range []string{"csr2", "csr3"} {
			stPush, stPull := run(format)
			for u := range memPush {
				if memPush[u] != stPush[u] {
					t.Fatalf("%s push node %d: in-memory %d, store %d", format, u, memPush[u], stPush[u])
				}
				if memPull[u] != stPull[u] {
					t.Fatalf("%s pull node %d: in-memory %v, store %v", format, u, memPull[u], stPull[u])
				}
			}
		}
		if left := spillFiles(t, spillDir); len(left) != 0 {
			t.Fatalf("spill files survived a clean drain: %v", left)
		}
	})
}

// TestCompressedStoreAbortReleasesPins: abort a job running from a compressed
// store mid-flight — every decode-cache pin a worker or copier held must be
// released through the abort unwind (PinnedBlocks drops to zero), no spill
// residue may survive, and the same cluster must then compute the exact
// reference, still through the tiny decode cache.
func TestCompressedStoreAbortReleasesPins(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := testGraph(t)
		path := storePath3(t, g, 3)
		spillDir := t.TempDir()
		cfg := faultCfg(3)
		cfg.BufferSize = 1 << 10
		cfg.SpillWrites = true
		cfg.SpillBudgetBytes = 256
		cfg.SpillDir = spillDir
		cfg.DecodeCacheBytes = 64 << 10
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 7, Rules: []comm.FaultRule{
			{Src: 1, Dst: 0, Type: int(comm.MsgWriteReq), Kind: comm.FaultFail, After: 0, Limit: 1},
		}})
		cfg.Fabric = inj
		sf, err := store.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCluster(cfg)
		if err != nil {
			sf.Close() //nolint:errcheck
			t.Fatal(err)
		}
		t.Cleanup(func() {
			c.Shutdown()
			inj.Close()
			sf.Close() //nolint:errcheck
		})
		if err := c.LoadStore(sf); err != nil {
			t.Fatal(err)
		}
		dc, err := sf.EnsureDecodeCache(cfg.DecodeCacheBytes)
		if err != nil {
			t.Fatal(err)
		}
		counter, _ := c.AddPropI64("counter")
		c.FillI64(counter, 0)
		_, err = c.RunJob(JobSpec{
			Name:       "compressed-abort",
			Iter:       IterOutEdges,
			Task:       &pushOneTask{counter: counter},
			WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
		})
		if err == nil {
			t.Fatal("job succeeded despite injected write-frame failure")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		settleQuiescent(t, c)
		if st := dc.Stats(); st.PinnedBlocks != 0 {
			t.Fatalf("abort left %d decode-cache blocks pinned", st.PinnedBlocks)
		}
		if left := spillFiles(t, spillDir); len(left) != 0 {
			t.Fatalf("abort left spill files behind: %v", left)
		}

		// The fault rule is exhausted: the same cluster, same decode cache,
		// must now compute the exact reference.
		want := refInDegree(g)
		got := runPushOne(t, c, counter)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("post-abort node %d: got %d, want %d", u, got[u], want[u])
			}
		}
		if st := dc.Stats(); st.PinnedBlocks != 0 {
			t.Fatalf("clean run left %d decode-cache blocks pinned", st.PinnedBlocks)
		}
		if st := dc.Stats(); st.Misses == 0 {
			t.Errorf("decode cache never decoded a block — test is vacuous (stats: %+v)", st)
		}
	})
}

// TestSpillCountersAndCleanup: a budget far below one frame forces every
// drain round through the temp-file overflow path — the job must still
// compute the exact in-degree, the registry must report both the deferred
// frames and the file overflow, and no temp file may survive the drain.
func TestSpillCountersAndCleanup(t *testing.T) {
	g := testGraph(t)
	spillDir := t.TempDir()
	cfg := DefaultConfig(3)
	cfg.GhostThreshold = GhostDisabled
	cfg.SpillWrites = true
	cfg.SpillBudgetBytes = 512
	cfg.SpillDir = spillDir
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c := bootCluster(t, g, cfg)
	counter, _ := c.AddPropI64("counter")
	want := refInDegree(g)
	got := runPushOne(t, c, counter)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: got %d, want %d", u, got[u], want[u])
		}
	}
	ctrs := reg.LifetimeCounters()
	if ctrs["spilled_write_frames"] == 0 {
		t.Errorf("no write frames were spilled (counters: %v)", ctrs)
	}
	if ctrs["spill_file_frames"] == 0 {
		t.Errorf("a 512-byte budget never overflowed to file (counters: %v)", ctrs)
	}
	if left := spillFiles(t, spillDir); len(left) != 0 {
		t.Fatalf("spill files survived the drain: %v", left)
	}
}

// TestSpillAbortLeavesNoResidue: abort a job while write frames sit spilled
// (including on disk) — the backlog must be discarded without applying, every
// temp file removed, the pools must come home, and the same cluster must then
// run a clean job with exact results.
func TestSpillAbortLeavesNoResidue(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := testGraph(t)
		spillDir := t.TempDir()
		cfg := faultCfg(3)
		cfg.BufferSize = 1 << 10 // small frames: every stream sends several
		cfg.SpillWrites = true
		cfg.SpillBudgetBytes = 256
		cfg.SpillDir = spillDir
		reg := obs.NewRegistry()
		cfg.Obs = reg
		// Hard-fail stream 1->0's write frame. The other five streams deliver
		// theirs concurrently, and receivers spill every arrival (the
		// 256-byte budget pushes them straight to file), so by the time the
		// abort lands the backlog is populated on disk.
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 7, Rules: []comm.FaultRule{
			{Src: 1, Dst: 0, Type: int(comm.MsgWriteReq), Kind: comm.FaultFail, After: 0, Limit: 1},
		}})
		cfg.Fabric = inj
		c := bootCluster(t, g, cfg)
		defer inj.Close()
		counter, _ := c.AddPropI64("counter")
		c.FillI64(counter, 0)
		_, err := c.RunJob(JobSpec{
			Name:       "spill-abort",
			Iter:       IterOutEdges,
			Task:       &pushOneTask{counter: counter},
			WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
		})
		if err == nil {
			t.Fatal("job succeeded despite injected write-frame failure")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		settleQuiescent(t, c)
		if ctrs := reg.LifetimeCounters(); ctrs["spilled_write_frames"] == 0 {
			t.Errorf("abort fired before any frame spilled — test is vacuous (counters: %v)", ctrs)
		}
		if left := spillFiles(t, spillDir); len(left) != 0 {
			t.Fatalf("abort left spill files behind: %v", left)
		}

		// The fault rule is exhausted (Limit 1): the same cluster must now
		// drain clean and compute the exact reference.
		want := refInDegree(g)
		got := runPushOne(t, c, counter)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("post-abort node %d: got %d, want %d", u, got[u], want[u])
			}
		}
		if left := spillFiles(t, spillDir); len(left) != 0 {
			t.Fatalf("recovery run left spill files behind: %v", left)
		}
	})
}

// TestStealAttributionBillsVictim: with stealing on over a layout where
// machine 0 owns 85% of the edge mass, thief CPU time on stolen chunks is
// billed back to machine 0's partition — so the load totals the
// repartitioner consumes still identify the hot partition even though other
// machines executed much of its work.
func TestStealAttributionBillsVictim(t *testing.T) {
	g := stealGraph(t)
	cfg := DefaultConfig(3)
	cfg.EnableWorkStealing = true
	cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c := bootSkewed(t, g, cfg, 0.85, 0)
	src, _ := c.AddPropI64("src")
	dst, _ := c.AddPropI64("dst")
	for i := 0; i < 3; i++ {
		if err := runPushVal(t, c, g, src, dst, true); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if ctrs := reg.LifetimeCounters(); ctrs["stolen_nodes"] == 0 {
		t.Skipf("no steals landed on this run (counters: %v) — attribution unobservable", ctrs)
	}
	totals := c.TaskTimeTotals()
	if len(totals) != 3 {
		t.Fatalf("TaskTimeTotals = %v, want 3 entries", totals)
	}
	for m := 1; m < 3; m++ {
		if totals[m] >= totals[0] {
			t.Errorf("machine %d total %d >= victim total %d: stolen work was not billed to the victim partition",
				m, totals[m], totals[0])
		}
	}
}
