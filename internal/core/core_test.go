package core

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/reduce"
)

// testGraph builds a modest skewed graph used across engine tests.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(9, 8, graph.TwitterLike(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func bootCluster(t testing.TB, g *graph.Graph, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	if err := c.Load(g); err != nil {
		t.Fatal(err)
	}
	return c
}

// --- reference computations over the raw graph ------------------------------

func refInDegree(g *graph.Graph) []int64 {
	out := make([]int64, g.NumNodes())
	for u := range out {
		out[u] = g.InDegree(graph.NodeID(u))
	}
	return out
}

// refPullSum computes, for each node, the sum over in-neighbors t of vals[t].
func refPullSum(g *graph.Graph, vals []float64) []float64 {
	out := make([]float64, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		for _, tn := range g.In.Neighbors(graph.NodeID(u)) {
			out[u] += vals[tn]
		}
	}
	return out
}

// --- kernels used in tests ---------------------------------------------------

// pushOneTask adds 1 into the neighbor's counter — result is the in-degree.
type pushOneTask struct {
	NoReads
	counter PropID
}

func (k *pushOneTask) Run(c *Ctx) {
	c.NbrWriteI64(k.counter, reduce.Sum, 1)
}

// pullSumTask reads src from the in-neighbor and accumulates into dst.
type pullSumTask struct {
	src, dst PropID
}

func (k *pullSumTask) Run(c *Ctx) {
	c.NbrRead(k.src)
}

func (k *pullSumTask) ReadDone(c *Ctx, val uint64) {
	c.SetF64(k.dst, c.GetF64(k.dst)+F64Word(val))
}

// configMatrix yields a representative set of engine configurations.
func configMatrix(base func() Config) []Config {
	var cfgs []Config
	for _, p := range []int{1, 2, 3, 4} {
		cfg := base()
		cfg.NumMachines = p
		cfgs = append(cfgs, cfg)
	}
	// Ghosting disabled.
	cfg := base()
	cfg.NumMachines = 4
	cfg.GhostThreshold = -1
	cfgs = append(cfgs, cfg)
	// Everything ghosted.
	cfg = base()
	cfg.NumMachines = 3
	cfg.GhostThreshold = 0
	cfgs = append(cfgs, cfg)
	// Vertex partitioning + node chunking (the naive baseline).
	cfg = base()
	cfg.NumMachines = 4
	cfg.Partitioning = partition.VertexBalanced
	cfg.NodeChunking = true
	cfgs = append(cfgs, cfg)
	// No ghost privatization.
	cfg = base()
	cfg.NumMachines = 4
	cfg.DisableGhostPrivatization = true
	cfgs = append(cfgs, cfg)
	// Tiny buffers: force many flushes and back-pressure.
	cfg = base()
	cfg.NumMachines = 4
	cfg.BufferSize = comm.HeaderSize + 64
	cfg.ReqBuffers = 6
	cfg.RespBuffers = 6
	cfgs = append(cfgs, cfg)
	return cfgs
}

func cfgName(cfg Config) string {
	return fmt.Sprintf("p%d_w%d_gt%d_gc%d_%v_nodeChunk%v_nopriv%v_buf%d",
		cfg.NumMachines, cfg.Workers, cfg.GhostThreshold, cfg.GhostCount,
		cfg.Partitioning, cfg.NodeChunking, cfg.DisableGhostPrivatization, cfg.BufferSize)
}

func TestPushJobComputesInDegree(t *testing.T) {
	g := testGraph(t)
	want := refInDegree(g)
	for _, cfg := range configMatrix(func() Config { return DefaultConfig(4) }) {
		t.Run(cfgName(cfg), func(t *testing.T) {
			c := bootCluster(t, g, cfg)
			counter, err := c.AddPropI64("counter")
			if err != nil {
				t.Fatal(err)
			}
			c.FillI64(counter, 0)
			if _, err := c.RunJob(JobSpec{
				Name:       "push-one",
				Iter:       IterOutEdges,
				Task:       &pushOneTask{counter: counter},
				WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
			}); err != nil {
				t.Fatal(err)
			}
			got := c.GatherI64(counter)
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("node %d: got %d, want %d", u, got[u], want[u])
				}
			}
			if !c.PoolsQuiescent() {
				t.Error("buffer pools not quiescent after job")
			}
		})
	}
}

func TestPullJobSumsInNeighbors(t *testing.T) {
	g := testGraph(t)
	vals := make([]float64, g.NumNodes())
	for u := range vals {
		vals[u] = float64(u%97) + 0.5
	}
	want := refPullSum(g, vals)
	for _, cfg := range configMatrix(func() Config { return DefaultConfig(4) }) {
		t.Run(cfgName(cfg), func(t *testing.T) {
			c := bootCluster(t, g, cfg)
			src, err := c.AddPropF64("src")
			if err != nil {
				t.Fatal(err)
			}
			dst, err := c.AddPropF64("dst")
			if err != nil {
				t.Fatal(err)
			}
			c.FillByNodeF64(src, func(v graph.NodeID) float64 { return vals[v] })
			c.FillF64(dst, 0)
			if _, err := c.RunJob(JobSpec{
				Name:      "pull-sum",
				Iter:      IterInEdges,
				Task:      &pullSumTask{src: src, dst: dst},
				ReadProps: []PropID{src},
			}); err != nil {
				t.Fatal(err)
			}
			got := c.GatherF64(dst)
			for u := range want {
				if diff := got[u] - want[u]; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("node %d: got %g, want %g", u, got[u], want[u])
				}
			}
			if !c.PoolsQuiescent() {
				t.Error("buffer pools not quiescent after job")
			}
		})
	}
}

// filtered push: only even-global-id nodes push.
type filteredPush struct {
	NoReads
	counter PropID
}

func (k *filteredPush) Run(c *Ctx) { c.NbrWriteI64(k.counter, reduce.Sum, 1) }

func TestFilterDeactivatesNodes(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(3))
	counter, _ := c.AddPropI64("counter")
	active, _ := c.AddPropI64("active")
	c.FillI64(counter, 0)
	c.FillByNodeI64(active, func(v graph.NodeID) int64 {
		if v%2 == 0 {
			return 1
		}
		return 0
	})
	if _, err := c.RunJob(JobSpec{
		Name:       "filtered-push",
		Iter:       IterOutEdges,
		Task:       &filteredPush{counter: counter},
		Filter:     func(c *Ctx) bool { return c.GetI64(active) != 0 },
		WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
	}); err != nil {
		t.Fatal(err)
	}
	// Reference: in-degree counting only even sources.
	want := make([]int64, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		if u%2 != 0 {
			continue
		}
		for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
			want[v]++
		}
	}
	got := c.GatherI64(counter)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: got %d, want %d", u, got[u], want[u])
		}
	}
}

// nodeInit sets a property to a function of the node's global id and degree.
type nodeInit struct {
	NoReads
	p PropID
}

func (k *nodeInit) Run(c *Ctx) {
	c.SetF64(k.p, float64(c.NodeGlobal())+float64(c.OutDegree())*0.001)
}

func TestNodeIteratorJob(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(4))
	p, _ := c.AddPropF64("init")
	if _, err := c.RunJob(JobSpec{Name: "node-init", Iter: IterNodes, Task: &nodeInit{p: p}}); err != nil {
		t.Fatal(err)
	}
	got := c.GatherF64(p)
	for u := 0; u < g.NumNodes(); u++ {
		want := float64(u) + float64(g.OutDegree(graph.NodeID(u)))*0.001
		if got[u] != want {
			t.Fatalf("node %d: got %g, want %g", u, got[u], want)
		}
	}
}

// minPush propagates min(label) over out-edges, exercising I64 Min writes.
type minPush struct {
	NoReads
	label PropID
}

func (k *minPush) Run(c *Ctx) {
	c.NbrWriteI64(k.label, reduce.Min, c.GetI64(k.label))
}

func TestMinReductionOneStep(t *testing.T) {
	g := testGraph(t)
	for _, ghost := range []int64{-1, 0, 64} {
		cfg := DefaultConfig(4)
		cfg.GhostThreshold = ghost
		t.Run(fmt.Sprintf("ghost=%d", ghost), func(t *testing.T) {
			c := bootCluster(t, g, cfg)
			label, _ := c.AddPropI64("label")
			tmp, _ := c.AddPropI64("tmp")
			c.FillByNodeI64(label, func(v graph.NodeID) int64 { return int64(v) })
			c.FillByNodeI64(tmp, func(v graph.NodeID) int64 { return int64(v) })
			if _, err := c.RunJob(JobSpec{
				Name:       "min-push",
				Iter:       IterOutEdges,
				Task:       &minPush{label: label},
				ReadProps:  []PropID{label},
				WriteProps: []WriteSpec{{Prop: tmp, Op: reduce.Min}},
			}); err != nil {
				// label is read (own node) and tmp written; recheck spec.
				t.Fatal(err)
			}
			_ = tmp
		})
	}
}

func TestJobSpecValidation(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(2))
	p, _ := c.AddPropF64("p")
	task := &pushOneTask{}
	cases := []JobSpec{
		{Name: "no-task", Iter: IterNodes},
		{Name: "bad-iter", Iter: IterKind(9), Task: task},
		{Name: "bad-read", Iter: IterNodes, Task: task, ReadProps: []PropID{42}},
		{Name: "bad-write", Iter: IterNodes, Task: task, WriteProps: []WriteSpec{{Prop: 42, Op: reduce.Sum}}},
		{Name: "overwrite", Iter: IterNodes, Task: task, WriteProps: []WriteSpec{{Prop: p, Op: reduce.Overwrite}}},
		{Name: "read-write", Iter: IterNodes, Task: task, ReadProps: []PropID{p}, WriteProps: []WriteSpec{{Prop: p, Op: reduce.Sum}}},
	}
	for _, spec := range cases {
		if _, err := c.RunJob(spec); err == nil {
			t.Errorf("spec %q accepted", spec.Name)
		}
	}
}

func TestRunJobBeforeLoadFails(t *testing.T) {
	c, err := NewCluster(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.RunJob(JobSpec{Name: "x", Iter: IterNodes, Task: &nodeInit{}}); err == nil {
		t.Error("RunJob before Load accepted")
	}
	if _, err := c.AddPropF64("p"); err == nil {
		t.Error("AddProp before Load accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{NumMachines: 0, Workers: 1, Copiers: 1, BufferSize: 4096},
		{NumMachines: 2, Workers: 0, Copiers: 1, BufferSize: 4096},
		{NumMachines: 2, Workers: 1, Copiers: 0, BufferSize: 4096},
		{NumMachines: 2, Workers: 1, Copiers: 1, BufferSize: 4},
		{NumMachines: 2, Workers: 300, Copiers: 1, BufferSize: 4096},
		{NumMachines: 2, Workers: 1, Copiers: 1, BufferSize: 4096, GhostCount: -1},
	}
	for i, cfg := range bad {
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestReduceDriverHelpers(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(3))
	p, _ := c.AddPropF64("v")
	q, _ := c.AddPropI64("w")
	c.FillByNodeF64(p, func(v graph.NodeID) float64 { return float64(v) })
	c.FillByNodeI64(q, func(v graph.NodeID) int64 { return int64(v) })
	n := int64(g.NumNodes())
	sum, err := c.ReduceF64(p, reduce.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n*(n-1)) / 2; sum != want {
		t.Errorf("sum = %g, want %g", sum, want)
	}
	mx, err := c.ReduceI64(q, reduce.Max)
	if err != nil {
		t.Fatal(err)
	}
	if mx != n-1 {
		t.Errorf("max = %d, want %d", mx, n-1)
	}
	mn, err := c.ReduceI64(q, reduce.Min)
	if err != nil || mn != 0 {
		t.Errorf("min = %d (%v), want 0", mn, err)
	}
}

func TestNodeGetSet(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(4))
	p, _ := c.AddPropF64("v")
	q, _ := c.AddPropI64("w")
	c.SetNodeF64(5, p, 2.5)
	c.SetNodeI64(400, q, -3)
	if got := c.GetNodeF64(5, p); got != 2.5 {
		t.Errorf("GetNodeF64 = %g", got)
	}
	if got := c.GetNodeI64(400, q); got != -3 {
		t.Errorf("GetNodeI64 = %d", got)
	}
	if got := c.GetNodeF64(6, p); got != 0 {
		t.Errorf("untouched node = %g", got)
	}
}

func TestClusterAccessors(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(3)
	cfg.GhostThreshold = 50
	c := bootCluster(t, g, cfg)
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Error("size accessors wrong")
	}
	if c.Machines() != 3 {
		t.Error("Machines() wrong")
	}
	if c.NumGhosts() != graph.NodesAboveDegree(g, 50) {
		t.Errorf("NumGhosts = %d, want %d", c.NumGhosts(), graph.NodesAboveDegree(g, 50))
	}
	if c.Layout().NumMachines != 3 {
		t.Error("Layout wrong")
	}
	if err := c.Barrier(); err != nil {
		t.Errorf("Barrier: %v", err)
	}
}
