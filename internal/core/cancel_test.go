package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestCancelAbortsRunningJob: Cancel fires the job-scoped abort latch, so a
// driver loop issuing jobs stops promptly with ErrJobCanceled; the latch is
// sticky until Uncancel, after which the same cluster computes again.
func TestCancelAbortsRunningJob(t *testing.T) {
	g, err := graph.RMAT(8, 6, graph.TwitterLike(), 5)
	if err != nil {
		t.Fatal(err)
	}
	c := bootCluster(t, g, DefaultConfig(2))
	src, _ := c.AddPropF64("src")
	dst, _ := c.AddPropF64("dst")
	c.FillF64(src, 1)

	spec := JobSpec{
		Name:      "cancel-pull",
		Iter:      IterInEdges,
		Task:      &pullSumTask{src: src, dst: dst},
		ReadProps: []PropID{src},
	}
	errCh := make(chan error, 1)
	go func() {
		// An algorithm-style driver loop: without cancellation this would
		// run for a long time.
		for i := 0; i < 100000; i++ {
			if _, err := c.RunJob(spec); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	cause := errors.New("operator said stop")
	c.Cancel(cause)

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("driver loop ran to completion despite Cancel")
		}
		if !errors.Is(err, ErrJobCanceled) {
			t.Fatalf("error %v does not wrap ErrJobCanceled", err)
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("driver loop did not stop within 10s of Cancel")
	}

	// The latch is sticky: new jobs fail fast without running.
	if _, err := c.RunJob(spec); !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("RunJob while canceled = %v, want ErrJobCanceled", err)
	}
	if cc := c.CancelCause(); !errors.Is(cc, ErrJobCanceled) {
		t.Fatalf("CancelCause = %v, want ErrJobCanceled wrap", cc)
	}

	// Uncancel restores the cluster for the next lease.
	c.Uncancel()
	if cc := c.CancelCause(); cc != nil {
		t.Fatalf("CancelCause after Uncancel = %v, want nil", cc)
	}
	settleQuiescent(t, c)
	if err := runPull(t, c, g, src, dst, true); err != nil {
		t.Fatalf("clean run after Uncancel: %v", err)
	}
}

// TestCancelBeforeRun: cancellation between jobs is caught by the RunJob
// entry check — no machine ever starts the job.
func TestCancelBeforeRun(t *testing.T) {
	g, err := graph.RMAT(7, 4, graph.TwitterLike(), 11)
	if err != nil {
		t.Fatal(err)
	}
	c := bootCluster(t, g, DefaultConfig(2))
	src, _ := c.AddPropF64("src")
	dst, _ := c.AddPropF64("dst")

	c.Cancel(errors.New("pre-canceled"))
	_, err = c.RunJob(JobSpec{
		Name:      "never-runs",
		Iter:      IterInEdges,
		Task:      &pullSumTask{src: src, dst: dst},
		ReadProps: []PropID{src},
	})
	if !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("RunJob = %v, want ErrJobCanceled", err)
	}
	c.Uncancel()
	if err := runPull(t, c, g, src, dst, true); err != nil {
		t.Fatalf("run after Uncancel: %v", err)
	}
}
