package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/comm"
	"repro/internal/obs"
)

// Spillable write buffers (Config.SpillWrites). During an out-of-core run the
// task phase wants every spare byte of RAM for topology pages; inbound remote
// write frames applied eagerly would fault property and frontier pages into
// the middle of the streaming scan. With spilling on, copiers copy each write
// frame's records into a bounded in-memory buffer — overflowing to a temp
// file past SpillBudgetBytes — without applying them, and the write-drain
// loop replays the backlog on the machine's main goroutine: first the file,
// then the memory tail, through the same applyWrites path copiers use, so
// compression, receiver-side combining, and write-activation behave
// identically. Termination is unchanged — a spilled frame's records simply
// count as applied in the drain round that replays them — and the abort path
// discards the backlog and removes the temp file, so a faulted job leaves no
// residue and the next job starts clean.

// spillFrame is one deferred write frame: the header fields applyWrites
// consumes plus the copied payload.
type spillFrame struct {
	count   uint32
	flags   uint8
	payload []byte
}

// spillFileHeaderBytes is the per-frame prelude in the temp file:
// count u32 | flags u32 | payloadLen u32.
const spillFileHeaderBytes = 12

// spillState is one machine's spill buffer. Copiers add under the mutex;
// the machine main goroutine replays and resets. Created once at machine
// startup when Config.SpillWrites is set; active only between a job's start
// and the completion of its write drain.
type spillState struct {
	mu     sync.Mutex
	active bool
	mem    []spillFrame
	// memBytes counts buffered payload bytes; past budget the memory tail
	// flushes to file.
	memBytes int64
	budget   int64
	dir      string
	file     *os.File
	fileOff  int64
	scratch  []byte // flush assembly buffer, reused
}

func newSpillState(cfg *Config) *spillState {
	if !cfg.SpillWrites {
		return nil
	}
	return &spillState{budget: cfg.SpillBudgetBytes, dir: cfg.SpillDir}
}

// begin arms the spill for a job. Runs on the machine main goroutine before
// the job is published (curJob.Store), so the pre-task barrier orders it
// before any peer's first write frame.
func (sp *spillState) begin() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.active = true
	sp.mu.Unlock()
}

// add defers one write frame, reporting whether it was taken (false when the
// spill is not armed — the caller applies directly) and how many frames
// overflowed to the temp file in consequence. The payload is copied; the
// frame buffer stays with the caller.
func (sp *spillState) add(count uint32, flags uint8, payload []byte) (took bool, flushed int, err error) {
	if sp == nil {
		return false, 0, nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if !sp.active {
		return false, 0, nil
	}
	p := make([]byte, len(payload))
	copy(p, payload)
	sp.mem = append(sp.mem, spillFrame{count: count, flags: flags, payload: p})
	sp.memBytes += int64(len(p))
	if sp.memBytes > sp.budget {
		flushed = len(sp.mem)
		if err := sp.flushLocked(); err != nil {
			return true, 0, err
		}
	}
	return true, flushed, nil
}

// flushLocked appends every buffered frame to the temp file (created lazily)
// and empties the memory tail. Callers hold the mutex.
func (sp *spillState) flushLocked() error {
	if sp.file == nil {
		dir := sp.dir
		if dir == "" {
			dir = os.TempDir()
		}
		f, err := os.CreateTemp(dir, "pgxd-spill-*")
		if err != nil {
			return fmt.Errorf("spill: %w", err)
		}
		sp.file = f
	}
	buf := sp.scratch[:0]
	for _, fr := range sp.mem {
		var hdr [spillFileHeaderBytes]byte
		putLeU32(hdr[0:], fr.count)
		putLeU32(hdr[4:], uint32(fr.flags))
		putLeU32(hdr[8:], uint32(len(fr.payload)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, fr.payload...)
	}
	sp.scratch = buf[:0]
	if _, err := sp.file.WriteAt(buf, sp.fileOff); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	sp.fileOff += int64(len(buf))
	sp.mem = sp.mem[:0]
	sp.memBytes = 0
	return nil
}

// take detaches the current backlog for replay: the temp file (ownership
// included — a concurrent overflow after this starts a fresh file, so replay
// reads a quiescent segment) and the memory tail. The spill stays active;
// frames arriving during replay buffer for the next round.
func (sp *spillState) take() (file *os.File, fileLen int64, mem []spillFrame) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	file, fileLen = sp.file, sp.fileOff
	sp.file = nil
	sp.fileOff = 0
	mem = sp.mem
	sp.mem = nil
	sp.memBytes = 0
	return
}

// reset discards the backlog and removes the temp file. Called after a
// successful drain (nothing left), after an abort (backlog must not apply),
// and at shutdown. Idempotent.
func (sp *spillState) reset() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.active = false
	sp.mem = nil
	sp.memBytes = 0
	sp.fileOff = 0
	if sp.file != nil {
		name := sp.file.Name()
		sp.file.Close() //nolint:errcheck
		os.Remove(name) //nolint:errcheck
		sp.file = nil
	}
}

// replaySpill applies the spilled backlog: the temp-file segment first (in
// arrival order), then the memory tail. Runs on the machine main goroutine
// once per drain round, before the round stages its applied count, so a round
// that observes sent == applied has replayed everything. Returns the number
// of write records applied.
func (m *Machine) replaySpill(dec *wireDec) (int64, error) {
	sp := m.spill
	file, fileLen, mem := sp.take()
	if file != nil {
		// The detached file is replay's to clean up, success or error — an
		// abort mid-replay must not leave a temp file behind.
		defer func() {
			name := file.Name()
			file.Close()    //nolint:errcheck
			os.Remove(name) //nolint:errcheck
		}()
	}
	var applied int64
	if fileLen > 0 {
		r := io.NewSectionReader(file, 0, fileLen)
		var hdr [spillFileHeaderBytes]byte
		var payload []byte
		for off := int64(0); off < fileLen; {
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return applied, fmt.Errorf("core: machine %d spill replay: %w", m.id, err)
			}
			count := leU32(hdr[0:])
			flags := uint8(leU32(hdr[4:]))
			plen := int64(leU32(hdr[8:]))
			if off+spillFileHeaderBytes+plen > fileLen {
				return applied, fmt.Errorf("core: machine %d spill replay: truncated frame at %d", m.id, off)
			}
			if int64(cap(payload)) < plen {
				payload = make([]byte, plen)
			}
			payload = payload[:plen]
			if _, err := io.ReadFull(r, payload); err != nil {
				return applied, fmt.Errorf("core: machine %d spill replay: %w", m.id, err)
			}
			h := comm.Header{Type: comm.MsgWriteReq, Count: count, Flags: flags}
			if err := m.applyWrites(h, payload, dec); err != nil {
				return applied, err
			}
			applied += int64(count)
			off += spillFileHeaderBytes + plen
		}
	}
	for _, fr := range mem {
		h := comm.Header{Type: comm.MsgWriteReq, Count: fr.count, Flags: fr.flags}
		if err := m.applyWrites(h, fr.payload, dec); err != nil {
			return applied, err
		}
		applied += int64(fr.count)
	}
	if applied > 0 {
		m.writesApplied.Add(applied)
		m.cfg.Obs.Add(m.id, obs.CtrWritesApplied, applied)
	}
	return applied, nil
}

// leU32 decodes a little-endian uint32 at the start of p.
func leU32(p []byte) uint32 { return binary.LittleEndian.Uint32(p) }

// putLeU32 encodes v little-endian at the start of p.
func putLeU32(p []byte, v uint32) { binary.LittleEndian.PutUint32(p, v) }
