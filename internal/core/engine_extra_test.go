package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/reduce"
)

// --- multi-read state machine kernel ----------------------------------------

// twoHopTask exercises continuation chaining: Run reads the neighbor's hop1
// ref (stored as a prop), then ReadDone issues a second read through that
// ref, using Aux as the state machine the paper describes ("the user can
// implement a state machine to distinguish multiple callbacks").
type twoHopTask struct {
	refProp PropID // i64: an encoded node ref stored per node
	valProp PropID // f64: value to fetch at the second hop
	acc     PropID // f64: accumulated result on the current node
}

const twoHopStage2 = uint64(1) << 63

func (k *twoHopTask) Run(c *Ctx) {
	c.Aux = 0
	c.NbrRead(k.refProp)
}

func (k *twoHopTask) ReadDone(c *Ctx, val uint64) {
	if c.Aux&twoHopStage2 == 0 {
		// Stage 1 complete: val is the ref of the second hop.
		c.Aux = twoHopStage2
		c.ReadRef(int64(val), k.valProp)
		return
	}
	c.SetF64(k.acc, c.GetF64(k.acc)+F64Word(val))
}

func TestTwoHopStateMachine(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(4)
	cfg.GhostThreshold = -1 // force remote traffic
	c := bootCluster(t, g, cfg)
	refProp, _ := c.AddPropI64("ref")
	valProp, _ := c.AddPropF64("val")
	acc, _ := c.AddPropF64("acc")

	// Every node's "second hop" is a pseudo-random node; precompute refs in
	// the engine's encoding via the layout.
	n := g.NumNodes()
	layout := c.Layout()
	hop2 := make([]graph.NodeID, n)
	for u := range hop2 {
		hop2[u] = graph.NodeID((u*2654435761 + 17) % n)
	}
	c.FillByNodeI64(refProp, func(v graph.NodeID) int64 {
		target := hop2[v]
		owner := layout.Owner(target)
		// Encode as a globally valid remote ref; the engine resolves owner-
		// local targets through the same path.
		return packRemote(owner, target-layout.Starts[owner])
	})
	c.FillByNodeF64(valProp, func(v graph.NodeID) float64 { return float64(v) * 0.25 })
	c.FillF64(acc, 0)

	if _, err := c.RunJob(JobSpec{
		Name:      "two-hop",
		Iter:      IterInEdges,
		Task:      &twoHopTask{refProp: refProp, valProp: valProp, acc: acc},
		ReadProps: []PropID{refProp, valProp},
	}); err != nil {
		t.Fatal(err)
	}

	// Reference: for each node u, for each in-neighbor t: acc[u] += val[hop2[t]].
	want := make([]float64, n)
	for u := 0; u < n; u++ {
		for _, tn := range g.In.Neighbors(graph.NodeID(u)) {
			want[u] += float64(hop2[tn]) * 0.25
		}
	}
	got := c.GatherF64(acc)
	for u := range want {
		if diff := got[u] - want[u]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("node %d: got %g, want %g", u, got[u], want[u])
		}
	}
}

// --- RMI ----------------------------------------------------------------------

// rmiEchoTask calls an RMI on the neighbor's owner from within a kernel and
// accumulates the response.
type rmiEchoTask struct {
	NoReads
	method uint32
	acc    PropID
}

func (k *rmiEchoTask) Run(c *Ctx) {
	if !c.NbrIsRemote() {
		return
	}
	mach, off := unpackRemote(c.NbrRef())
	var payload [4]byte
	binary.LittleEndian.PutUint32(payload[:], off)
	c.CallRMI(mach, k.method, payload[:])
}

func (k *rmiEchoTask) RMIDone(c *Ctx, payload []byte) {
	c.SetI64(k.acc, c.GetI64(k.acc)+int64(binary.LittleEndian.Uint32(payload)))
}

func TestWorkerRMI(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(3)
	cfg.GhostThreshold = -1
	c := bootCluster(t, g, cfg)
	acc, _ := c.AddPropI64("acc")
	c.FillI64(acc, 0)
	// Method: return offset+1 as 4 bytes.
	method := c.RegisterRMI(func(m *Machine) comm.RMIHandler {
		return func(src int, payload []byte) []byte {
			off := binary.LittleEndian.Uint32(payload)
			out := make([]byte, 4)
			binary.LittleEndian.PutUint32(out, off+1)
			return out
		}
	})
	if _, err := c.RunJob(JobSpec{
		Name: "rmi-echo",
		Iter: IterOutEdges,
		Task: &rmiEchoTask{method: method, acc: acc},
	}); err != nil {
		t.Fatal(err)
	}
	// Reference: sum over remote out-edges of (remote local offset + 1).
	layout := c.Layout()
	want := make([]int64, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		ou := layout.Owner(graph.NodeID(u))
		for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
			if layout.Owner(v) != ou {
				want[u] += int64(v-layout.Starts[layout.Owner(v)]) + 1
			}
		}
	}
	got := c.GatherI64(acc)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: got %d, want %d", u, got[u], want[u])
		}
	}
}

func TestMachineLevelRMI(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(3))
	method := c.RegisterRMI(func(m *Machine) comm.RMIHandler {
		return func(src int, payload []byte) []byte {
			return []byte(fmt.Sprintf("machine %d says %s", m.id, payload))
		}
	})
	out, err := c.machines[0].Call(2, method, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "machine 2 says hello" {
		t.Errorf("RMI response %q", out)
	}
	// Payload too large must fail cleanly.
	big := make([]byte, c.cfg.BufferSize)
	if _, err := c.machines[0].Call(1, method, big); err == nil {
		t.Error("oversized RMI accepted")
	}
}

// --- TCP transport end-to-end ----------------------------------------------

func TestEngineOverTCP(t *testing.T) {
	g, err := graph.RMAT(8, 6, graph.TwitterLike(), 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3)
	cfg.BufferSize = 8 << 10
	cfg.ReqBuffers = 2*cfg.Workers*cfg.NumMachines + 4
	fabric, err := comm.NewTCPFabric(cfg.NumMachines,
		cfg.NumMachines*(cfg.ReqBuffers+cfg.Workers*cfg.NumMachines)+64, cfg.BufferSize)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fabric = fabric
	defer fabric.Close()
	c := bootCluster(t, g, cfg)

	counter, _ := c.AddPropI64("counter")
	c.FillI64(counter, 0)
	if _, err := c.RunJob(JobSpec{
		Name:       "push-one-tcp",
		Iter:       IterOutEdges,
		Task:       &pushOneTask{counter: counter},
		WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
	}); err != nil {
		t.Fatal(err)
	}
	want := refInDegree(g)
	got := c.GatherI64(counter)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: got %d, want %d", u, got[u], want[u])
		}
	}

	// Pull over TCP too.
	src, _ := c.AddPropF64("src")
	dst, _ := c.AddPropF64("dst")
	c.FillByNodeF64(src, func(v graph.NodeID) float64 { return float64(v) })
	c.FillF64(dst, 0)
	if _, err := c.RunJob(JobSpec{
		Name:      "pull-sum-tcp",
		Iter:      IterInEdges,
		Task:      &pullSumTask{src: src, dst: dst},
		ReadProps: []PropID{src},
	}); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, g.NumNodes())
	for u := range vals {
		vals[u] = float64(u)
	}
	wantF := refPullSum(g, vals)
	gotF := c.GatherF64(dst)
	for u := range wantF {
		if diff := gotF[u] - wantF[u]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("node %d: got %g, want %g", u, gotF[u], wantF[u])
		}
	}
}

// --- master equivalence property --------------------------------------------

// TestDistributedEqualsReferenceProperty is the master correctness property
// from DESIGN.md §6: for random graphs and random engine configurations, a
// push job and a pull job both produce exactly the reference results.
func TestDistributedEqualsReferenceProperty(t *testing.T) {
	f := func(seed int64, pRaw, ghostRaw uint8, vertexPart, nodeChunk, nopriv, nocombine bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(512)
		m := n * (1 + rng.Intn(8))
		g, err := graph.Uniform(n, m, seed)
		if err != nil {
			return false
		}
		cfg := DefaultConfig(int(pRaw%4) + 1)
		cfg.Workers = 1 + rng.Intn(4)
		cfg.Copiers = 1 + rng.Intn(3)
		cfg.GhostThreshold = int64(ghostRaw%32) - 1 // -1..30
		if vertexPart {
			cfg.Partitioning = partition.VertexBalanced
		}
		cfg.NodeChunking = nodeChunk
		cfg.DisableGhostPrivatization = nopriv
		cfg.DisableReadCombining = nocombine
		c, err := NewCluster(cfg)
		if err != nil {
			return false
		}
		defer c.Shutdown()
		if err := c.Load(g); err != nil {
			return false
		}
		counter, _ := c.AddPropI64("counter")
		c.FillI64(counter, 0)
		if _, err := c.RunJob(JobSpec{
			Name:       "push-one",
			Iter:       IterOutEdges,
			Task:       &pushOneTask{counter: counter},
			WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
		}); err != nil {
			return false
		}
		want := refInDegree(g)
		got := c.GatherI64(counter)
		for u := range want {
			if got[u] != want[u] {
				return false
			}
		}

		src, _ := c.AddPropF64("src")
		dst, _ := c.AddPropF64("dst")
		c.FillByNodeF64(src, func(v graph.NodeID) float64 { return float64(v) })
		c.FillF64(dst, 0)
		if _, err := c.RunJob(JobSpec{
			Name:      "pull-sum",
			Iter:      IterInEdges,
			Task:      &pullSumTask{src: src, dst: dst},
			ReadProps: []PropID{src},
		}); err != nil {
			return false
		}
		vals := make([]float64, n)
		for u := range vals {
			vals[u] = float64(u)
		}
		wantF := refPullSum(g, vals)
		gotF := c.GatherF64(dst)
		for u := range wantF {
			if diff := gotF[u] - wantF[u]; diff > 1e-6 || diff < -1e-6 {
				return false
			}
		}
		return c.PoolsQuiescent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// --- traffic and ghosting ----------------------------------------------------

func TestGhostingReducesTraffic(t *testing.T) {
	g := testGraph(t) // heavily skewed
	run := func(ghostCount int) int64 {
		cfg := DefaultConfig(4)
		cfg.GhostCount = ghostCount
		if ghostCount == 0 {
			cfg.GhostThreshold = -1
		}
		c := bootCluster(t, g, cfg)
		counter, _ := c.AddPropI64("counter")
		c.FillI64(counter, 0)
		stats, err := c.RunJob(JobSpec{
			Name:       "push-one",
			Iter:       IterOutEdges,
			Task:       &pushOneTask{counter: counter},
			WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Correctness under ghosting as well.
		want := refInDegree(g)
		got := c.GatherI64(counter)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("ghosts=%d node %d: got %d, want %d", ghostCount, u, got[u], want[u])
			}
		}
		return stats.Traffic.DataBytesSent
	}
	none := run(0)
	some := run(64)
	if some >= none {
		t.Errorf("ghosting did not reduce data traffic: %d >= %d bytes", some, none)
	}
	if none == 0 {
		t.Error("no-ghost run reported zero traffic")
	}
}

func TestBreakdownSumsToDuration(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(4))
	counter, _ := c.AddPropI64("counter")
	c.FillI64(counter, 0)
	stats, err := c.RunJob(JobSpec{
		Name:       "push-one",
		Iter:       IterOutEdges,
		Task:       &pushOneTask{counter: counter},
		WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := stats.Breakdown
	if b.FullyParallel < 0 || b.IntraMachine < 0 || b.InterMachine < 0 || b.Sync < 0 {
		t.Errorf("negative breakdown component: %+v", b)
	}
	sum := b.FullyParallel + b.IntraMachine + b.InterMachine + b.Sync
	if sum != stats.Duration {
		t.Errorf("breakdown sums to %v, duration is %v", sum, stats.Duration)
	}
}

func TestRepeatedJobsStayQuiescent(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(4)
	cfg.BufferSize = comm.HeaderSize + 128
	cfg.ReqBuffers = 8
	cfg.RespBuffers = 8
	c := bootCluster(t, g, cfg)
	counter, _ := c.AddPropI64("counter")
	src, _ := c.AddPropF64("src")
	dst, _ := c.AddPropF64("dst")
	c.FillByNodeF64(src, func(v graph.NodeID) float64 { return 1 })
	for i := 0; i < 10; i++ {
		c.FillI64(counter, 0)
		c.FillF64(dst, 0)
		if _, err := c.RunJob(JobSpec{
			Name: "push", Iter: IterOutEdges, Task: &pushOneTask{counter: counter},
			WriteProps: []WriteSpec{{Prop: counter, Op: reduce.Sum}},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunJob(JobSpec{
			Name: "pull", Iter: IterInEdges, Task: &pullSumTask{src: src, dst: dst},
			ReadProps: []PropID{src},
		}); err != nil {
			t.Fatal(err)
		}
		if !c.PoolsQuiescent() {
			t.Fatalf("pools not quiescent after iteration %d", i)
		}
	}
}

func TestRemoteRefPacking(t *testing.T) {
	f := func(machRaw uint16, offset uint32) bool {
		mach := int(machRaw % (1 << 15))
		ref := packRemote(mach, offset)
		if ref >= 0 {
			return false
		}
		gm, go_ := unpackRemote(ref)
		return gm == mach && go_ == offset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropKindChecks(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(2))
	p, _ := c.AddPropF64("f")
	q, _ := c.AddPropI64("i")
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("GatherF64 on i64", func() { c.GatherF64(q) })
	mustPanic("GatherI64 on f64", func() { c.GatherI64(p) })
	mustPanic("unknown prop", func() { c.FillF64(PropID(99), 0) })
}

func TestPropKindString(t *testing.T) {
	if KindF64.String() != "f64" || KindI64.String() != "i64" {
		t.Error("kind strings wrong")
	}
	if PropKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
	if IterNodes.String() != "nodes" || IterOutEdges.String() != "out-edges" || IterInEdges.String() != "in-edges" {
		t.Error("iter strings wrong")
	}
	if IterKind(9).String() == "" {
		t.Error("unknown iter renders empty")
	}
}
