package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/reduce"
)

// stealSpinSink defeats dead-code elimination of the spin loop below.
var stealSpinSink atomic.Uint64

// stealPushTask scatters the node's own src value into every out-neighbor's dst
// with a SUM reduction — the minimal stealable kernel with an own-property
// read, so stolen execution exercises the Own snapshot path.
//
// The per-edge Gosched is what makes the steal assertions deterministic: on a
// single-CPU box (GOMAXPROCS=1) the task loop has no blocking ops, so without
// an explicit yield each machine's workers run their entire task phase inside
// one scheduling quantum and the machines execute sequentially — whether any
// steal request ever finds an undrained cursor is pure scheduling luck. The
// yield forces fair interleaving: all machines progress at comparable edge
// rates, the lightly-loaded ones drain first, and the straggler's cursor is
// still mostly unclaimed when their requests land. spin adds deterministic
// per-edge compute so the phase is long enough to observe.
type stealPushTask struct {
	NoReads
	src, dst PropID
	spin     int
}

func (k *stealPushTask) Run(c *Ctx) {
	x := uint64(c.Node)<<32 | 0x9e3779b9
	for i := 0; i < k.spin; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	stealSpinSink.Add(x)
	runtime.Gosched()
	c.NbrWriteI64(k.dst, reduce.Sum, c.GetI64(k.src))
}

// refPushSum computes, for each node v, the sum over in-neighbors u of
// vals[u] — the reference for stealPushTask over out-edges.
func refPushSum(g *graph.Graph, vals []int64) []int64 {
	out := make([]int64, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
			out[v] += vals[u]
		}
	}
	return out
}

// stealGraph is larger than testGraph: the victim's task phase must outlast
// the thieves' drain plus a steal round trip, or the cursor runs dry before
// any request lands and the steal assertions go timing-flaky.
func stealGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(12, 8, graph.TwitterLike(), 4242)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// bootSkewed boots a cluster on a deliberately skewed layout (machine 0 owns
// the skew fraction of the edge mass) so every other machine drains its
// chunks early and the steal path actually fires.
func bootSkewed(t testing.TB, g *graph.Graph, cfg Config, skew float64, ghosts int) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	layout, err := partition.SkewedLayout(g, cfg.NumMachines, skew)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadPlan(g, layout, ghosts); err != nil {
		t.Fatal(err)
	}
	return c
}

// runPushVal executes the stealable push job and, when verify is set, checks
// the result against the single-machine reference.
func runPushVal(t *testing.T, c *Cluster, g *graph.Graph, src, dst PropID, verify bool) error {
	t.Helper()
	vals := make([]int64, g.NumNodes())
	for u := range vals {
		vals[u] = int64(u%97) + 1
	}
	c.FillByNodeI64(src, func(v graph.NodeID) int64 { return vals[v] })
	c.FillI64(dst, 0)
	_, err := c.RunJob(JobSpec{
		Name:       "steal-push",
		Iter:       IterOutEdges,
		Task:       &stealPushTask{src: src, dst: dst, spin: 512},
		WriteProps: []WriteSpec{{Prop: dst, Op: reduce.Sum}},
		Steal:      &StealSpec{Own: []PropID{src}},
	})
	if err != nil || !verify {
		return err
	}
	want := refPushSum(g, vals)
	got := c.GatherI64(dst)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: got %d, want %d", u, got[u], want[u])
		}
	}
	return nil
}

// TestStealMatchesReferenceOnSkewedLayout: with stealing enabled on a layout
// that gives machine 0 most of the edge mass, thief machines must
// (a) actually steal and (b) produce exactly the reference result — over both
// transports, with and without ghosting (ghost refs translate differently in
// the grant payload).
func TestStealMatchesReferenceOnSkewedLayout(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		for _, ghosts := range []int{0, 64} {
			g := stealGraph(t)
			cfg := faultCfg(3)
			cfg.EnableWorkStealing = true
			cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
			cfg.RequestTimeout = 5 * time.Second
			cfg.CollectiveTimeout = 5 * time.Second
			reg := obs.NewRegistry()
			cfg.Obs = reg
			inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{})
			cfg.Fabric = inj
			c := bootSkewed(t, g, cfg, 0.85, ghosts)
			src, _ := c.AddPropI64("src")
			dst, _ := c.AddPropI64("dst")
			if err := runPushVal(t, c, g, src, dst, true); err != nil {
				t.Fatalf("ghosts=%d: %v", ghosts, err)
			}
			settleQuiescent(t, c)
			ctrs := reg.LifetimeCounters()
			if ctrs["stolen_nodes"] == 0 {
				t.Errorf("ghosts=%d: no nodes were stolen on a 85%%-skewed layout (counters: %v)", ghosts, ctrs)
			}
			if ctrs["steal_requests"] == 0 {
				t.Errorf("ghosts=%d: no steal requests issued", ghosts)
			}
			c.Shutdown()
			inj.Close()
		}
	})
}

// TestStealRepeatedJobsUseLoadHints: after the first job every machine holds
// the piggybacked per-machine load hints, so later jobs steal from the
// measured straggler first — and results stay exact across repeats.
func TestStealRepeatedJobsUseLoadHints(t *testing.T) {
	g := stealGraph(t)
	cfg := DefaultConfig(3)
	cfg.EnableWorkStealing = true
	cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
	c := bootSkewed(t, g, cfg, 0.85, 0)
	src, _ := c.AddPropI64("src")
	dst, _ := c.AddPropI64("dst")
	for i := 0; i < 3; i++ {
		if err := runPushVal(t, c, g, src, dst, true); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	hints := c.TaskTimeTotals()
	if len(hints) != 3 {
		t.Fatalf("TaskTimeTotals = %v, want 3 entries", hints)
	}
	for m, v := range hints {
		if v <= 0 {
			t.Errorf("machine %d task-time total %d, want > 0", m, v)
		}
	}
}

// TestStealAblationOff: DisableWorkStealing wins over EnableWorkStealing —
// results stay correct and no steal traffic ever flows.
func TestStealAblationOff(t *testing.T) {
	g := stealGraph(t)
	cfg := DefaultConfig(3)
	cfg.EnableWorkStealing = true
	cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
	cfg.DisableWorkStealing = true
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c := bootSkewed(t, g, cfg, 0.85, 0)
	src, _ := c.AddPropI64("src")
	dst, _ := c.AddPropI64("dst")
	if err := runPushVal(t, c, g, src, dst, true); err != nil {
		t.Fatal(err)
	}
	ctrs := reg.LifetimeCounters()
	if ctrs["steal_requests"] != 0 || ctrs["stolen_nodes"] != 0 {
		t.Errorf("ablated run still stole: %d requests, %d nodes",
			ctrs["steal_requests"], ctrs["stolen_nodes"])
	}
}

// TestStealSpecValidation: the StealSpec contract (push-only kernels, declared
// own-reads) is enforced at job validation time.
func TestStealSpecValidation(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(2)
	cfg.EnableWorkStealing = true
	cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
	c := bootCluster(t, g, cfg)
	src, _ := c.AddPropI64("src")
	dst, _ := c.AddPropI64("dst")

	cases := []struct {
		name string
		spec JobSpec
	}{
		{"node-iterator", JobSpec{
			Name: "bad", Iter: IterNodes,
			Task:  &stealPushTask{src: src, dst: dst, spin: 512},
			Steal: &StealSpec{},
		}},
		{"read-props", JobSpec{
			Name: "bad", Iter: IterInEdges,
			Task:      &pullSumTask{src: PropID(0), dst: PropID(1)},
			ReadProps: []PropID{src},
			Steal:     &StealSpec{},
		}},
		{"own-overlaps-writes", JobSpec{
			Name: "bad", Iter: IterOutEdges,
			Task:       &stealPushTask{src: src, dst: dst, spin: 512},
			WriteProps: []WriteSpec{{Prop: dst, Op: reduce.Sum}},
			Steal:      &StealSpec{Own: []PropID{dst}},
		}},
		{"own-unregistered", JobSpec{
			Name: "bad", Iter: IterOutEdges,
			Task:       &stealPushTask{src: src, dst: dst, spin: 512},
			WriteProps: []WriteSpec{{Prop: dst, Op: reduce.Sum}},
			Steal:      &StealSpec{Own: []PropID{PropID(200)}},
		}},
	}
	for _, tc := range cases {
		if _, err := c.RunJob(tc.spec); err == nil {
			t.Errorf("%s: spec accepted, want validation error", tc.name)
		}
	}
}

// TestFaultStealDropAborts: a silently dropped steal request leaves the thief
// waiting for a grant that never comes; the request timeout must convert that
// into a job abort — never a hang or a process death — and the cluster must
// compute correctly once the fault clears.
func TestFaultStealDropAborts(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := stealGraph(t)
		cfg := faultCfg(3)
		cfg.EnableWorkStealing = true
		cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 21, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgSteal), Kind: comm.FaultDrop, After: 0, Limit: 1},
		}})
		cfg.Fabric = inj
		c := bootSkewed(t, g, cfg, 0.85, 0)
		defer inj.Close()
		src, _ := c.AddPropI64("src")
		dst, _ := c.AddPropI64("dst")

		err := runPushVal(t, c, g, src, dst, false)
		if err == nil {
			t.Fatal("job succeeded despite dropped steal request")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		if st := inj.Stats(); st.Dropped == 0 {
			t.Error("no steal frame was actually dropped")
		}
		settleQuiescent(t, c)

		inj.ClearRules()
		if err := runPushVal(t, c, g, src, dst, true); err != nil {
			t.Fatalf("clean rerun after fault cleared: %v", err)
		}
		settleQuiescent(t, c)
	})
}

// TestFaultStealGrantDropAborts: the grant direction fails soft the same way.
func TestFaultStealGrantDropAborts(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := stealGraph(t)
		cfg := faultCfg(3)
		cfg.EnableWorkStealing = true
		cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 22, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgStealGrant), Kind: comm.FaultDrop, After: 0, Limit: 1},
		}})
		cfg.Fabric = inj
		c := bootSkewed(t, g, cfg, 0.85, 0)
		defer inj.Close()
		src, _ := c.AddPropI64("src")
		dst, _ := c.AddPropI64("dst")

		err := runPushVal(t, c, g, src, dst, false)
		if err == nil {
			t.Fatal("job succeeded despite dropped steal grant")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		settleQuiescent(t, c)

		inj.ClearRules()
		if err := runPushVal(t, c, g, src, dst, true); err != nil {
			t.Fatalf("clean rerun after fault cleared: %v", err)
		}
	})
}

// TestFaultStealDelayTolerated: delayed steal traffic below the timeouts is
// absorbed — the job completes with exact results.
func TestFaultStealDelayTolerated(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := stealGraph(t)
		cfg := faultCfg(3)
		cfg.EnableWorkStealing = true
		cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 23, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgStealGrant), Kind: comm.FaultDelay, Every: 2, Delay: time.Millisecond},
		}})
		cfg.Fabric = inj
		c := bootSkewed(t, g, cfg, 0.85, 0)
		defer inj.Close()
		src, _ := c.AddPropI64("src")
		dst, _ := c.AddPropI64("dst")
		if err := runPushVal(t, c, g, src, dst, true); err != nil {
			t.Fatalf("job failed under tolerable steal delay: %v", err)
		}
		settleQuiescent(t, c)
	})
}

// TestFaultStealTruncatedGrantAborts: a truncated grant payload must fail the
// thief's validation and abort the job — never index out of range.
func TestFaultStealTruncatedGrantAborts(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := stealGraph(t)
		cfg := faultCfg(3)
		cfg.EnableWorkStealing = true
		cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
		// Truncate every grant the straggler sends: a single-shot rule can land
		// on an empty grant (harmless by design), which would let the job pass.
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 24, Rules: []comm.FaultRule{
			{Src: 0, Dst: comm.AnyMachine, Type: int(comm.MsgStealGrant), Kind: comm.FaultTruncate, TruncateTo: comm.HeaderSize + 12, Every: 1},
		}})
		cfg.Fabric = inj
		c := bootSkewed(t, g, cfg, 0.85, 0)
		defer inj.Close()
		src, _ := c.AddPropI64("src")
		dst, _ := c.AddPropI64("dst")

		err := runPushVal(t, c, g, src, dst, false)
		if err == nil {
			t.Fatal("job succeeded despite truncated steal grant")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		settleQuiescent(t, c)

		inj.ClearRules()
		if err := runPushVal(t, c, g, src, dst, true); err != nil {
			t.Fatalf("clean rerun after fault cleared: %v", err)
		}
	})
}

// TestStealCancelMidRun: Cluster.Cancel fired while steal-heavy jobs are in
// flight aborts only the job; Uncancel restores the same cluster to exact
// computation.
func TestStealCancelMidRun(t *testing.T) {
	g := stealGraph(t)
	cfg := DefaultConfig(3)
	cfg.EnableWorkStealing = true
	cfg.ChunkTargetEdges = 16 // many small chunks: the straggler drains its cursor gradually, so steals land regardless of scheduling
	c := bootSkewed(t, g, cfg, 0.85, 0)
	src, _ := c.AddPropI64("src")
	dst, _ := c.AddPropI64("dst")
	c.FillI64(src, 1)
	c.FillI64(dst, 0)

	spec := JobSpec{
		Name:       "steal-cancel",
		Iter:       IterOutEdges,
		Task:       &stealPushTask{src: src, dst: dst, spin: 512},
		WriteProps: []WriteSpec{{Prop: dst, Op: reduce.Sum}},
		Steal:      &StealSpec{Own: []PropID{src}},
	}
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < 100000; i++ {
			if _, err := c.RunJob(spec); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	c.Cancel(errors.New("lease revoked"))

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("driver loop ran to completion despite Cancel")
		}
		if !errors.Is(err, ErrJobCanceled) {
			t.Fatalf("error %v does not wrap ErrJobCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("driver loop did not stop within 10s of Cancel")
	}
	c.Uncancel()
	settleQuiescent(t, c)
	if err := runPushVal(t, c, g, src, dst, true); err != nil {
		t.Fatalf("clean run after Uncancel: %v", err)
	}
}

// TestLoadPlanValidation: LoadPlan rejects layouts that do not match the
// cluster or graph.
func TestLoadPlanValidation(t *testing.T) {
	g := testGraph(t)
	c, err := NewCluster(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	if err := c.LoadPlan(g, partition.Layout{NumMachines: 2, Starts: []uint32{0, 1, uint32(g.NumNodes())}}, 0); err == nil {
		t.Error("accepted layout with wrong machine count")
	}
	if err := c.LoadPlan(g, partition.Layout{NumMachines: 3, Starts: []uint32{0, 1, 2, 3}}, 0); err == nil {
		t.Error("accepted layout not covering the graph")
	}
}

// TestClusterReplanImprovesSkew: end to end — run jobs on a skewed layout,
// ask the cluster for a plan, reload with it, and the measured imbalance
// drops while results stay exact. The measurement jobs run with stealing
// off: stolen work is billed to the thief's task time, so a steal-flattened
// run under-reports the straggler's per-edge cost and the replanner would
// read the skewed layout as fine (see the Replan doc).
func TestClusterReplanImprovesSkew(t *testing.T) {
	g := stealGraph(t)
	cfg := DefaultConfig(3)
	cfg.ChunkTargetEdges = 16
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c := bootSkewed(t, g, cfg, 0.85, 0)
	src, _ := c.AddPropI64("src")
	dst, _ := c.AddPropI64("dst")
	for i := 0; i < 2; i++ {
		if err := runPushVal(t, c, g, src, dst, true); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Layout().EdgeImbalance(g)
	plan, err := c.Replan(g)
	if err != nil {
		t.Fatal(err)
	}
	after := plan.Layout.EdgeImbalance(g)
	if after >= before {
		t.Errorf("replanned imbalance %.3f did not improve on %.3f", after, before)
	}
	if err := c.LoadPlan(g, plan.Layout, plan.GhostCount); err != nil {
		t.Fatal(err)
	}
	// Properties were discarded by the reload; re-register and verify the
	// rebalanced cluster still computes the exact reference.
	src, _ = c.AddPropI64("src")
	dst, _ = c.AddPropI64("dst")
	if err := runPushVal(t, c, g, src, dst, true); err != nil {
		t.Fatalf("run after replan reload: %v", err)
	}
}
