package core

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
)

// faultCfg is the engine configuration the fault tests share: ghosting off so
// every cross-partition read crosses the (faultable) wire, and short timeouts
// so silent faults — drops, kills — resolve quickly.
func faultCfg(p int) Config {
	cfg := DefaultConfig(p)
	cfg.GhostThreshold = GhostDisabled
	cfg.RequestTimeout = 750 * time.Millisecond
	cfg.CollectiveTimeout = 750 * time.Millisecond
	cfg.BufferSize = 8 << 10
	cfg.ReqBuffers = 2*cfg.Workers*cfg.NumMachines + 4
	cfg.RespBuffers = 2*cfg.Copiers*cfg.NumMachines + 4
	return cfg
}

// faultFabric wraps an inner fabric of the requested flavour in an injector.
// The in-process inbox sizing mirrors NewCluster's own derivation (including
// the abort pool's NumMachines+2 headroom) so channel sends can never block.
func faultFabric(t testing.TB, cfg Config, useTCP bool, plan comm.FaultPlan) *comm.FaultInjector {
	t.Helper()
	var inner comm.Fabric
	if useTCP {
		f, err := comm.NewTCPFabric(cfg.NumMachines,
			cfg.NumMachines*(cfg.ReqBuffers+cfg.Workers*cfg.NumMachines)+64, cfg.BufferSize)
		if err != nil {
			t.Fatal(err)
		}
		inner = f
	} else {
		perMachine := cfg.ReqBuffers + cfg.RespBuffers + 4*cfg.NumMachines + 8 + cfg.NumMachines + 2
		inner = comm.NewInProcFabric(cfg.NumMachines, cfg.NumMachines*perMachine+16)
	}
	return comm.NewFaultInjector(inner, plan)
}

// eachFabric runs body over both transports.
func eachFabric(t *testing.T, body func(t *testing.T, useTCP bool)) {
	t.Run("inproc", func(t *testing.T) { body(t, false) })
	t.Run("tcp", func(t *testing.T) { body(t, true) })
}

func faultGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(8, 6, graph.TwitterLike(), 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runPull executes the pull-sum job against c, returning the job error. On
// success it also checks the result against the single-machine reference.
func runPull(t *testing.T, c *Cluster, g *graph.Graph, src, dst PropID, verify bool) error {
	t.Helper()
	vals := make([]float64, g.NumNodes())
	for u := range vals {
		vals[u] = float64(u%89) + 0.25
	}
	c.FillByNodeF64(src, func(v graph.NodeID) float64 { return vals[v] })
	c.FillF64(dst, 0)
	_, err := c.RunJob(JobSpec{
		Name:      "fault-pull",
		Iter:      IterInEdges,
		Task:      &pullSumTask{src: src, dst: dst},
		ReadProps: []PropID{src},
	})
	if err != nil || !verify {
		return err
	}
	want := refPullSum(g, vals)
	got := c.GatherF64(dst)
	for u := range want {
		if diff := got[u] - want[u]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("node %d: got %g, want %g", u, got[u], want[u])
		}
	}
	return nil
}

// settleQuiescent polls until every pool has all buffers home.
func settleQuiescent(t *testing.T, c *Cluster) {
	t.Helper()
	for i := 0; i < 400; i++ {
		if c.PoolsQuiescent() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("buffer pools never returned to quiescence after fault")
}

// TestFaultHardFailAbortsJob: an injected hard send failure surfaces as an
// ErrJobAborted-wrapped error from RunJob (no panic), every buffer comes
// home, and once the fault clears the same cluster computes correct results.
func TestFaultHardFailAbortsJob(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := faultGraph(t)
		cfg := faultCfg(3)
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 2, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgReadReq), Kind: comm.FaultFail, After: 0, Limit: 1},
		}})
		cfg.Fabric = inj
		c := bootCluster(t, g, cfg)
		defer inj.Close()
		src, _ := c.AddPropF64("src")
		dst, _ := c.AddPropF64("dst")

		err := runPull(t, c, g, src, dst, false)
		if err == nil {
			t.Fatal("job succeeded despite injected send failure")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		settleQuiescent(t, c)

		inj.ClearRules()
		if err := runPull(t, c, g, src, dst, true); err != nil {
			t.Fatalf("clean rerun after fault cleared: %v", err)
		}
		settleQuiescent(t, c)
	})
}

// TestFaultDroppedResponseTimesOut: a silently dropped read response cannot
// produce an error at the sender; the worker's request timeout must convert
// the silence into a job abort.
func TestFaultDroppedResponseTimesOut(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := faultGraph(t)
		cfg := faultCfg(3)
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 3, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgReadResp), Kind: comm.FaultDrop, After: 0, Limit: 1},
		}})
		cfg.Fabric = inj
		c := bootCluster(t, g, cfg)
		defer inj.Close()
		src, _ := c.AddPropF64("src")
		dst, _ := c.AddPropF64("dst")

		err := runPull(t, c, g, src, dst, false)
		if err == nil {
			t.Fatal("job succeeded despite dropped response")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		if st := inj.Stats(); st.Dropped == 0 {
			t.Error("no frame was actually dropped")
		}
		settleQuiescent(t, c)

		inj.ClearRules()
		if err := runPull(t, c, g, src, dst, true); err != nil {
			t.Fatalf("clean rerun after fault cleared: %v", err)
		}
	})
}

// TestFaultDelayTolerated: latency below the timeouts is not a failure — the
// job completes with correct results.
func TestFaultDelayTolerated(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := faultGraph(t)
		cfg := faultCfg(2)
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 4, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgReadResp), Kind: comm.FaultDelay, Every: 8, Delay: time.Millisecond},
		}})
		cfg.Fabric = inj
		c := bootCluster(t, g, cfg)
		defer inj.Close()
		src, _ := c.AddPropF64("src")
		dst, _ := c.AddPropF64("dst")
		if err := runPull(t, c, g, src, dst, true); err != nil {
			t.Fatalf("job failed under tolerable delay: %v", err)
		}
		if st := inj.Stats(); st.Delayed == 0 {
			t.Error("no frame was actually delayed")
		}
		settleQuiescent(t, c)
	})
}

// TestFaultTruncatedResponseAborts: a truncated read response must fail
// payload validation and abort the job — never index out of range.
func TestFaultTruncatedResponseAborts(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := faultGraph(t)
		cfg := faultCfg(3)
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 6, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgReadResp), Kind: comm.FaultTruncate, After: 0, Limit: 1, TruncateTo: comm.HeaderSize},
		}})
		cfg.Fabric = inj
		c := bootCluster(t, g, cfg)
		defer inj.Close()
		src, _ := c.AddPropF64("src")
		dst, _ := c.AddPropF64("dst")

		err := runPull(t, c, g, src, dst, false)
		if err == nil {
			t.Fatal("job succeeded despite truncated response")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		settleQuiescent(t, c)

		inj.ClearRules()
		if err := runPull(t, c, g, src, dst, true); err != nil {
			t.Fatalf("clean rerun after fault cleared: %v", err)
		}
	})
}

// TestFaultCollectiveFailAborts: a hard failure on the control plane (the
// collectives that sequence parallel regions and termination) aborts the job
// cleanly too.
func TestFaultCollectiveFailAborts(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := faultGraph(t)
		cfg := faultCfg(3)
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 5, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgCtrl), Kind: comm.FaultFail, After: 2, Limit: 1},
		}})
		cfg.Fabric = inj
		c := bootCluster(t, g, cfg)
		defer inj.Close()
		src, _ := c.AddPropF64("src")
		dst, _ := c.AddPropF64("dst")

		err := runPull(t, c, g, src, dst, false)
		if err == nil {
			t.Fatal("job succeeded despite failed control frame")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		settleQuiescent(t, c)

		inj.ClearRules()
		if err := runPull(t, c, g, src, dst, true); err != nil {
			t.Fatalf("clean rerun after fault cleared: %v", err)
		}
	})
}

// TestFaultKillMachineAborts: killing a machine mid-job (its sends fail,
// frames toward it vanish) aborts the job via the surviving machines'
// timeouts. The cluster still quiesces — no wedged pools, no leak.
func TestFaultKillMachineAborts(t *testing.T) {
	eachFabric(t, func(t *testing.T, useTCP bool) {
		g := faultGraph(t)
		cfg := faultCfg(3)
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 7, Rules: []comm.FaultRule{
			{Src: 1, Dst: comm.AnyMachine, Type: comm.AnyType, Kind: comm.FaultKill, After: 2},
		}})
		cfg.Fabric = inj
		c := bootCluster(t, g, cfg)
		defer inj.Close()
		src, _ := c.AddPropF64("src")
		dst, _ := c.AddPropF64("dst")

		err := runPull(t, c, g, src, dst, false)
		if err == nil {
			t.Fatal("job succeeded despite killed machine")
		}
		if !errors.Is(err, ErrJobAborted) {
			t.Fatalf("error %v does not wrap ErrJobAborted", err)
		}
		if inj.Alive(1) {
			t.Error("kill rule never fired")
		}
		settleQuiescent(t, c)
	})
}

// TestFaultNoGoroutineLeak: a full fault-abort-shutdown cycle returns the
// process to its original goroutine count — aborts must not strand workers,
// copiers, senders, or watchers.
func TestFaultNoGoroutineLeak(t *testing.T) {
	g := faultGraph(t)
	base := runtime.NumGoroutine()
	for _, useTCP := range []bool{false, true} {
		cfg := faultCfg(3)
		inj := faultFabric(t, cfg, useTCP, comm.FaultPlan{Seed: 8, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgReadReq), Kind: comm.FaultFail, After: 0, Limit: 1},
		}})
		cfg.Fabric = inj
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Load(g); err != nil {
			t.Fatal(err)
		}
		src, _ := c.AddPropF64("src")
		dst, _ := c.AddPropF64("dst")
		if err := runPull(t, c, g, src, dst, false); err == nil {
			t.Fatal("job succeeded despite injected failure")
		}
		c.Shutdown()
		inj.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
