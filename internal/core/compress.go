package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/comm"
)

// Wire compression (paper §2, §4.1): remote traffic is the throughput
// ceiling, so flush buffers are sorted by their packed (prop, offset) key and
// the key column is delta-varint encoded — keys on one destination machine
// share the property tag and have small offset gaps once sorted, so 8-byte
// records shrink to 1-2 bytes. Values are type-aware: int64 properties
// zigzag-varint (ghost deltas and counters cluster near zero), float64
// properties pass through raw (their bit patterns do not compress with
// integer codecs). Each message carries comm.FlagCompressed only when the
// compact encoding actually came out smaller, so receivers never guess.
//
// Sorting also serves the read-combining fast path from the comm fast-path
// PR: the receiver walks the sorted column with monotonically increasing
// offsets (cache-friendly column loads), and the requester's side-structure
// slots are remapped through the sort permutation so response fan-out is
// unchanged.

// wireCompressMinRecords is the break-even batch size below which a flush
// ships raw. Measured, not guessed: BenchmarkDeltaColumnEncode/Decode in
// internal/codec put the codec at ~10 ns per record round trip against ~6
// bytes of wire saved per record, so compression pays for itself at any
// batch the engine actually sends; the floor only exempts tiny tail flushes
// where the 16-byte header dominates the message and sorting/encoding buys
// nothing measurable.
const wireCompressMinRecords = 16

// u64PairSorter sorts a key column and carries a parallel tag word through
// the permutation. It lives on the worker so sort.Sort sees a preallocated
// interface value — no per-flush allocation.
type u64PairSorter struct {
	keys []uint64
	tags []uint64
}

func (s *u64PairSorter) Len() int           { return len(s.keys) }
func (s *u64PairSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *u64PairSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.tags[i], s.tags[j] = s.tags[j], s.tags[i]
}

func u64sSorted(v []uint64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			return false
		}
	}
	return true
}

func growU64(s *[]uint64, n int) []uint64 {
	if cap(*s) < n {
		*s = make([]uint64, n)
	}
	*s = (*s)[:n]
	return *s
}

func putU64(p []byte, v uint64) {
	binary.LittleEndian.PutUint64(p, v)
}

// compressReadBatch rewrites an about-to-flush read-request payload as a
// sorted delta-varint key column and remaps the message's side-structure
// slots through the sort permutation. Falls back to (sorted) raw fixed-width
// records when the encoding would not shrink the message; either way the
// payload leaves sorted, so receiver-visible slot order always matches what
// the side structure expects.
func (w *worker) compressReadBatch(buf *comm.Buffer, nrec, dst int) {
	p := buf.Payload()
	keys := growU64(&w.keyScratch, nrec)
	tags := growU64(&w.tagScratch, nrec)
	for i := 0; i < nrec; i++ {
		keys[i] = leU64(p[readRecSize*i:])
		tags[i] = uint64(i)
	}
	if !u64sSorted(keys) {
		w.sorter.keys, w.sorter.tags = keys, tags
		sort.Sort(&w.sorter)
		// slot i of the original message now lives at slot slotMap[i].
		slotMap := growU64(&w.slotScratch, nrec)
		for newSlot, tag := range tags {
			slotMap[tag] = uint64(newSlot)
		}
		side := w.curSide[dst]
		for i := range side {
			side[i].slot = uint32(slotMap[side[i].slot])
		}
	}
	rawBytes := nrec * readRecSize
	w.encScratch = codec.AppendDeltaU64s(w.encScratch[:0], keys)
	if len(w.encScratch) < rawBytes {
		buf.Data = buf.Data[:comm.HeaderSize]
		buf.AppendBytes(w.encScratch)
		buf.SetFlags(comm.FlagCompressed)
	} else {
		for i, k := range keys {
			putU64(p[readRecSize*i:], k)
		}
	}
	w.noteCompression(dst, rawBytes, len(buf.Payload()))
}

// compressWriteBatch rewrites an about-to-flush write payload: records sort
// by their meta word (prop | op | offset), the meta column delta-varint
// encodes, and each value word follows in sorted order with type-aware
// encoding. Reordering is safe because remote writes are commutative atomic
// reductions — concurrent workers already interleave them arbitrarily.
func (w *worker) compressWriteBatch(buf *comm.Buffer, nrec, dst int) {
	p := buf.Payload()
	keys := growU64(&w.keyScratch, nrec)
	vals := growU64(&w.tagScratch, nrec)
	for i := 0; i < nrec; i++ {
		keys[i] = leU64(p[writeRecSize*i:])
		vals[i] = leU64(p[writeRecSize*i+8:])
	}
	if !u64sSorted(keys) {
		w.sorter.keys, w.sorter.tags = keys, vals
		sort.Sort(&w.sorter)
	}
	enc := codec.AppendDeltaU64s(w.encScratch[:0], keys)
	for i := 0; i < nrec; i++ {
		if w.cols[PropID(keys[i]>>48)].kind == KindI64 {
			enc = codec.AppendZigZag(enc, int64(vals[i]))
		} else {
			enc = binary.LittleEndian.AppendUint64(enc, vals[i])
		}
	}
	w.encScratch = enc
	rawBytes := nrec * writeRecSize
	if len(enc) < rawBytes {
		buf.Data = buf.Data[:comm.HeaderSize]
		buf.AppendBytes(enc)
		buf.SetFlags(comm.FlagCompressed)
	} else {
		for i := 0; i < nrec; i++ {
			putU64(p[writeRecSize*i:], keys[i])
			putU64(p[writeRecSize*i+8:], vals[i])
		}
	}
	w.noteCompression(dst, rawBytes, len(buf.Payload()))
}

// noteCompression feeds one batch's raw-vs-wire sizes to the endpoint
// metrics and the per-(src,dst) observability traffic matrix.
func (w *worker) noteCompression(dst, raw, wire int) {
	w.m.ep.Metrics().RecordCompression(int64(raw), int64(wire))
	w.reg.Compressed(w.m.id, dst, int64(raw), int64(wire))
}

// wireDec is per-copier decode scratch for compressed inbound frames.
// Copiers share the Machine, so each copier goroutine owns its own.
type wireDec struct {
	keys []uint64
	vals []uint64
}

// decodeReadKeys expands a compressed read-request payload back into packed
// (prop, offset) keys. Every torn, overlong, or oversized condition is an
// error — a frame truncated on the wire must be rejected here, never
// misdecoded into plausible-looking addresses.
func decodeReadKeys(payload []byte, count int, dec *wireDec) ([]uint64, error) {
	keys, consumed, ok := codec.DecodeDeltaU64s(payload, count, dec.keys)
	dec.keys = keys
	if !ok {
		return nil, fmt.Errorf("torn compressed read frame: %d bytes for %d records", len(payload), count)
	}
	if consumed != len(payload) {
		return nil, fmt.Errorf("compressed read frame has %d trailing bytes after %d records", len(payload)-consumed, count)
	}
	return keys, nil
}

// decodeWriteRecs expands a compressed write payload into parallel meta/value
// columns. The meta column must decode to properties this machine knows —
// value widths depend on the property kind, so an unknown property makes the
// rest of the frame unparseable by construction and fails loudly instead.
func (m *Machine) decodeWriteRecs(payload []byte, count int, dec *wireDec) (keys, vals []uint64, err error) {
	var off int
	var ok bool
	keys, off, ok = codec.DecodeDeltaU64s(payload, count, dec.keys)
	dec.keys = keys
	if !ok {
		return nil, nil, fmt.Errorf("torn compressed write frame: meta column ends at byte %d of %d", off, len(payload))
	}
	vals = dec.vals[:0]
	for i := 0; i < count; i++ {
		prop := PropID(keys[i] >> 48)
		if int(prop) >= len(m.cols) || m.cols[prop] == nil {
			return nil, nil, fmt.Errorf("compressed write record %d names unknown property %d", i, prop)
		}
		if m.cols[prop].kind == KindI64 {
			u, k := codec.Uvarint(payload[off:])
			if k <= 0 {
				return nil, nil, fmt.Errorf("torn compressed write frame: value %d of %d at byte %d", i, count, off)
			}
			off += k
			vals = append(vals, uint64(codec.UnZigZag(u)))
		} else {
			if off+8 > len(payload) {
				return nil, nil, fmt.Errorf("torn compressed write frame: value %d of %d at byte %d", i, count, off)
			}
			vals = append(vals, leU64(payload[off:]))
			off += 8
		}
	}
	dec.vals = vals
	if off != len(payload) {
		return nil, nil, fmt.Errorf("compressed write frame has %d trailing bytes after %d records", len(payload)-off, count)
	}
	return keys, vals, nil
}
