package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/reduce"
)

// pushWeightTask pushes a float64 contribution to each out-neighbor,
// exercising the float ghost-merge paths (bottom/merge/apply for KindF64).
type pushWeightTask struct {
	NoReads
	val, acc PropID
}

func (k *pushWeightTask) Run(c *Ctx) {
	c.NbrWriteF64(k.acc, reduce.Sum, c.GetF64(k.val))
}

func TestFloatGhostMergePaths(t *testing.T) {
	g := testGraph(t)
	for _, op := range []reduce.Op{reduce.Sum, reduce.Min, reduce.Max} {
		t.Run(op.String(), func(t *testing.T) {
			cfg := DefaultConfig(3)
			cfg.GhostThreshold = 0 // ghost every connected vertex
			c := bootCluster(t, g, cfg)
			val, _ := c.AddPropF64("val")
			acc, _ := c.AddPropF64("acc")
			c.FillByNodeF64(val, func(v graph.NodeID) float64 { return float64(v%13) + 0.5 })
			c.FillF64(acc, reduce.BottomF64(op))

			task := &floatOpPush{val: val, acc: acc, op: op}
			if _, err := c.RunJob(JobSpec{
				Name: "float-ghost", Iter: IterOutEdges, Task: task,
				WriteProps: []WriteSpec{{Prop: acc, Op: op}},
			}); err != nil {
				t.Fatal(err)
			}
			// Reference fold over in-neighbors.
			got := c.GatherF64(acc)
			for u := 0; u < g.NumNodes(); u++ {
				want := reduce.BottomF64(op)
				for _, tn := range g.In.Neighbors(graph.NodeID(u)) {
					want = reduce.ApplyF64(op, want, float64(tn%13)+0.5)
				}
				if math.IsInf(want, 0) {
					if !math.IsInf(got[u], 0) {
						t.Fatalf("node %d: got %g, want inf", u, got[u])
					}
					continue
				}
				if d := math.Abs(got[u] - want); d > 1e-9 {
					t.Fatalf("op %v node %d: %g vs %g", op, u, got[u], want)
				}
			}
		})
	}
}

type floatOpPush struct {
	NoReads
	val, acc PropID
	op       reduce.Op
}

func (k *floatOpPush) Run(c *Ctx) {
	c.NbrWriteF64(k.acc, k.op, c.GetF64(k.val))
}

// ctxProbe exercises the informational Ctx accessors inside a kernel.
type ctxProbe struct {
	NoReads
	machines, indeg PropID
}

func (k *ctxProbe) Run(c *Ctx) {
	if c.Machine() < 0 || c.Machine() >= c.NumMachines() {
		panic("machine id out of range")
	}
	c.SetI64(k.machines, int64(c.NumMachines()))
	c.SetI64(k.indeg, c.InDegree())
}

func TestCtxAccessors(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(3))
	machines, _ := c.AddPropI64("machines")
	indeg, _ := c.AddPropI64("indeg")
	if _, err := c.RunJob(JobSpec{Name: "probe", Iter: IterNodes, Task: &ctxProbe{machines: machines, indeg: indeg}}); err != nil {
		t.Fatal(err)
	}
	gotM := c.GatherI64(machines)
	gotD := c.GatherI64(indeg)
	for u := 0; u < g.NumNodes(); u++ {
		if gotM[u] != 3 {
			t.Fatalf("node %d machines = %d", u, gotM[u])
		}
		if gotD[u] != g.InDegree(graph.NodeID(u)) {
			t.Fatalf("node %d indeg = %d, want %d", u, gotD[u], g.InDegree(graph.NodeID(u)))
		}
	}
}

// refGlobalProbe checks RefGlobal for local, ghost, and remote neighbors.
type refGlobalProbe struct {
	NoReads
	sum PropID
}

func (k *refGlobalProbe) Run(c *Ctx) {
	c.SetI64(k.sum, c.GetI64(k.sum)+int64(c.RefGlobal(c.NbrRef())))
}

func TestRefGlobalAllRefKinds(t *testing.T) {
	g := testGraph(t)
	for _, ghost := range []int64{GhostDisabled, 0} {
		cfg := DefaultConfig(3)
		cfg.GhostThreshold = ghost
		c := bootCluster(t, g, cfg)
		sum, _ := c.AddPropI64("sum")
		c.FillI64(sum, 0)
		if _, err := c.RunJob(JobSpec{Name: "refglobal", Iter: IterOutEdges, Task: &refGlobalProbe{sum: sum}}); err != nil {
			t.Fatal(err)
		}
		got := c.GatherI64(sum)
		for u := 0; u < g.NumNodes(); u++ {
			var want int64
			for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
				want += int64(v)
			}
			if got[u] != want {
				t.Fatalf("ghost=%d node %d: %d vs %d", ghost, u, got[u], want)
			}
		}
	}
}

func TestWordHelpersAndBreakdown(t *testing.T) {
	if F64Word(WordF64(3.25)) != 3.25 {
		t.Error("f64 word round trip")
	}
	if I64Word(WordI64(-7)) != -7 {
		t.Error("i64 word round trip")
	}
	var b Breakdown
	b.Add(Breakdown{FullyParallel: time.Second, Sync: 2 * time.Second})
	b.Add(Breakdown{IntraMachine: time.Second, InterMachine: 3 * time.Second})
	if b.FullyParallel != time.Second || b.Sync != 2*time.Second ||
		b.IntraMachine != time.Second || b.InterMachine != 3*time.Second {
		t.Errorf("breakdown = %+v", b)
	}
}

func TestClusterConfigAndRemoteRefHelpers(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(2)
	cfg.Workers = 3
	c := bootCluster(t, g, cfg)
	if got := c.Config(); got.Workers != 3 || got.NumMachines != 2 {
		t.Errorf("Config() = %+v", got)
	}
	ref := RemoteRef(1, 42)
	m, off := SplitRemoteRef(ref)
	if m != 1 || off != 42 {
		t.Errorf("split = %d/%d", m, off)
	}
	if c.machines[0].ID() != 0 || c.machines[1].ID() != 1 {
		t.Error("machine IDs wrong")
	}
}

func TestReduceMappedF64(t *testing.T) {
	g := testGraph(t)
	c := bootCluster(t, g, DefaultConfig(3))
	p, _ := c.AddPropF64("v")
	c.FillByNodeF64(p, func(v graph.NodeID) float64 { return float64(v % 5) })
	got, err := c.ReduceMappedF64(p, reduce.Sum, func(v float64) float64 { return v * v })
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for u := 0; u < g.NumNodes(); u++ {
		v := float64(u % 5)
		want += v * v
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("sum of squares = %g, want %g", got, want)
	}
}

func TestNoReadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NoReads.ReadDone did not panic")
		}
	}()
	var nr NoReads
	nr.ReadDone(nil, 0)
}
