package core

import (
	"fmt"

	"repro/internal/obs"
)

// Direction is the data-movement orientation of one traversal superstep:
// push scatters updates along out-edges with remote writes, pull gathers
// along in-edges with remote reads.
type Direction uint8

const (
	// DirPush scatters frontier values to neighbors (remote reductions).
	DirPush Direction = iota
	// DirPull has candidate nodes read from their in-neighbors.
	DirPull
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirPush:
		return "push"
	case DirPull:
		return "pull"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// DirectionPolicy makes the per-superstep push/pull decision for a
// direction-optimizing traversal (Beamer's classic rule, informed by the
// engine's observed traffic): push while the frontier is sparse, pull once
// the frontier's outgoing edge work rivals the unvisited side's incoming
// edge work, and push again when the frontier collapses near the end.
//
// The static rule is refined by a cost ratio learned from the obs traffic
// matrix: Observe feeds back each superstep's bytes-per-edge, and the ratio
// of push to pull cost (EWMA, clamped to [1/4, 4]) scales the push side of
// the comparison. On fabrics where pushes are cheap (e.g. heavy write
// combining) the policy tolerates denser push frontiers, and vice versa.
//
// A policy is driver-side state for one traversal run; it is not safe for
// concurrent use.
type DirectionPolicy struct {
	// Alpha is the push→pull threshold (switch when scaled frontier edge
	// work exceeds pullEdges/Alpha).
	Alpha float64
	// Beta is the pull→push threshold (switch when the frontier has fewer
	// than totalNodes/Beta members).
	Beta float64
	// Adaptive false pins every Choose to Fixed.
	Adaptive bool
	// Fixed is the direction used when Adaptive is false.
	Fixed Direction

	totalNodes int64
	lastSize   int64 // previous superstep's frontier size (growth detection)
	pullDone   bool  // a pull→push transition happened; stay push (one pull phase)

	// EWMA bytes-per-edge observed in each direction; zero until the first
	// superstep of that direction completes.
	pushCost float64
	pullCost float64

	c    *Cluster
	step int
}

// NewDirectionPolicy builds a policy from the cluster's configuration and
// loaded graph: Config.DirectionAlpha/Beta (with defaults), and
// Config.DisableDirectionSwitching/FixedDirection for the ablations. The
// cost EWMAs seed from the cluster's persisted snapshot (the previous
// traversal's learned costs on this fabric — see Cluster.DirectionCosts), so
// repeat runs start calibrated instead of assuming ratio 1.
func (c *Cluster) NewDirectionPolicy() *DirectionPolicy {
	p := &DirectionPolicy{
		Alpha:      c.cfg.DirectionAlpha,
		Beta:       c.cfg.DirectionBeta,
		Adaptive:   !c.cfg.DisableDirectionSwitching,
		Fixed:      c.cfg.FixedDirection,
		totalNodes: int64(c.numNodes),
		pushCost:   c.dirPushCost,
		pullCost:   c.dirPullCost,
		c:          c,
	}
	if p.Alpha <= 0 {
		p.Alpha = defaultDirectionAlpha
	}
	if p.Beta <= 0 {
		p.Beta = defaultDirectionBeta
	}
	return p
}

// costRatio returns pushCost/pullCost clamped to [1/4, 4], defaulting to 1
// until both directions have been observed.
func (p *DirectionPolicy) costRatio() float64 {
	if p.pushCost <= 0 || p.pullCost <= 0 {
		return 1
	}
	r := p.pushCost / p.pullCost
	if r < 0.25 {
		return 0.25
	}
	if r > 4 {
		return 4
	}
	return r
}

// Choose picks the next superstep's direction. cur is the direction of the
// previous superstep, frontierSize/frontierEdges the frontier's member count
// and summed out-degree, and pullEdges the edge work a pull superstep would
// scan (the unvisited set's in-degree sum, or the full edge count when the
// pull side iterates all nodes). The decision is also recorded as a
// direction_decision trace span and frontier-size counters on the obs
// registry, so a traversal's switching pattern is readable from the trace.
func (p *DirectionPolicy) Choose(cur Direction, frontierSize, frontierEdges, pullEdges int64) Direction {
	next := p.Fixed
	if p.Adaptive {
		// Beamer's growth conditions: only go bottom-up while the frontier is
		// still growing (a shrinking frontier is already past the dense
		// phase), and only come back top-down once it is both small and
		// shrinking (small-but-exploding frontiers stay bottom-up). One pull
		// phase per traversal: after the pull→push transition the frontier is
		// in terminal decay, and on high-diameter graphs the α-rule would
		// otherwise keep re-firing as the unvisited side shrinks, paying
		// pull's fixed per-superstep cost (ghost sync) for no scan savings.
		growing := frontierSize > p.lastSize
		next = cur
		switch cur {
		case DirPush:
			if !p.pullDone && growing &&
				float64(frontierEdges)*p.costRatio() > float64(pullEdges)/p.Alpha {
				next = DirPull
			}
		case DirPull:
			if !growing && float64(frontierSize) < float64(p.totalNodes)/p.Beta {
				next = DirPush
				p.pullDone = true
			}
		}
	}
	p.lastSize = frontierSize
	p.record(next, frontierSize, frontierEdges)
	p.step++
	return next
}

// Observe feeds one completed superstep back into the cost model: d is the
// direction it ran, edges the edge work it covered, bytes the wire traffic
// it generated (JobStats.Traffic.BytesSent). Zero-edge steps are ignored.
// Every update is also written back to the cluster's persistent snapshot,
// so the next NewDirectionPolicy on this cluster inherits the learned costs.
func (p *DirectionPolicy) Observe(d Direction, edges, bytes int64) {
	if edges <= 0 || bytes < 0 {
		return
	}
	perEdge := float64(bytes) / float64(edges)
	const decay = 0.5
	switch d {
	case DirPush:
		if p.pushCost == 0 {
			p.pushCost = perEdge
		} else {
			p.pushCost = decay*p.pushCost + (1-decay)*perEdge
		}
	case DirPull:
		if p.pullCost == 0 {
			p.pullCost = perEdge
		} else {
			p.pullCost = decay*p.pullCost + (1-decay)*perEdge
		}
	}
	if p.c != nil {
		p.c.dirPushCost, p.c.dirPullCost = p.pushCost, p.pullCost
	}
}

// DirectionCosts returns the persisted push/pull bytes-per-edge EWMAs the
// cluster carries between traversal runs (0 until a direction has been
// observed).
func (c *Cluster) DirectionCosts() (push, pull float64) {
	return c.dirPushCost, c.dirPullCost
}

// record writes the decision into the obs registry: a direction_decision
// span on machine 0 (Arg packs direction<<62 | step<<48 | frontier size) and
// the frontier-size counters.
func (p *DirectionPolicy) record(d Direction, frontierSize, frontierEdges int64) {
	reg := p.c.cfg.Obs
	if reg == nil {
		return
	}
	arg := uint64(d)<<62 | uint64(p.step&0x3fff)<<48 | uint64(frontierSize)&(1<<48-1)
	t := reg.Clock()
	reg.Span(0, obs.WorkerMain, obs.SpanDirection, p.c.jobSeq, t, arg)
	reg.Add(0, obs.CtrFrontierNodes, frontierSize)
	reg.Add(0, obs.CtrFrontierEdges, frontierEdges)
}
