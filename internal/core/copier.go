package core

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/reduce"
)

// copierLoop is one copier goroutine (paper §3.1/§3.4): it consumes inbound
// request frames from the router's shared queue and serves them — write
// records apply directly with atomic instructions, read requests produce a
// response message in request order, RMI requests dispatch through the
// registry. Copiers run for the life of the machine, independent of job
// phases, so remote machines always make progress against this one.
//
// A malformed or truncated frame, or a failed response send, is a job
// error, not a crash: the copier records it, aborts the current job (if
// any), and keeps serving — later jobs must still find it alive.
func (m *Machine) copierLoop() {
	defer m.copierWG.Done()
	reg := m.cfg.Obs
	dec := new(wireDec) // per-copier scratch for compressed frames
	for buf := range m.router.ReqQueue() {
		if reg == nil {
			if err := m.serveRequest(buf, dec); err != nil {
				m.ep.Metrics().RecordRecvError()
				m.abortCurrent(fmt.Errorf("core: machine %d copier: %w", m.id, err))
			}
			continue
		}
		h := buf.Header()
		src, typ := uint64(h.Src), uint64(h.Type)
		var jobID uint64
		if jr := m.curJob.Load(); jr != nil {
			jobID = jr.id
		}
		t := reg.Clock()
		err := m.serveRequest(buf, dec)
		reg.Span(m.id, obs.WorkerCopier, obs.SpanCopierServe, jobID, t, src<<48|typ)
		reg.Observe(m.id, obs.HistServe, time.Duration(reg.Clock()-t))
		if err != nil {
			m.ep.Metrics().RecordRecvError()
			reg.Add(m.id, obs.CtrRecvErrors, 1)
			m.abortCurrent(fmt.Errorf("core: machine %d copier: %w", m.id, err))
		}
	}
}

// serveRequest dispatches one inbound request frame. The request buffer is
// released on every exit path; response buffers are either handed to the
// transport (which owns them from Send on, success or failure) or released
// here before an error return.
func (m *Machine) serveRequest(buf *comm.Buffer, dec *wireDec) error {
	defer buf.Release()
	h := buf.Header()
	payload := buf.Payload()
	switch h.Type {
	case comm.MsgWriteReq:
		// Epoch check: Aux is the sender's job id (stamped at buffer reset).
		// The pre-task barrier orders every machine's curJob install before
		// any peer's first write frame, so a mismatch can only be a straggler
		// from an aborted job that outlived post-abort recovery — applying it
		// would advance writesApplied against the reset baseline and wedge
		// every later drain at applied > sent.
		if jr := m.curJob.Load(); jr == nil || jr.id != h.Aux {
			m.cfg.Obs.Add(m.id, obs.CtrStaleWriteFrames, 1)
			return nil
		}
		// Spillable buffers (Config.SpillWrites): while armed, the frame is
		// deferred — copied into the spill backlog for the drain loop to replay
		// — instead of applied here. writesApplied advances at replay time.
		if took, flushed, err := m.spill.add(h.Count, h.Flags, payload); took {
			if err != nil {
				return err
			}
			m.cfg.Obs.Add(m.id, obs.CtrSpilledWriteFrames, 1)
			m.cfg.Obs.Add(m.id, obs.CtrSpilledWriteBytes, int64(len(payload)))
			if flushed > 0 {
				m.cfg.Obs.Add(m.id, obs.CtrSpillFileFrames, int64(flushed))
			}
			return nil
		}
		if err := m.applyWrites(h, payload, dec); err != nil {
			return err
		}
		m.writesApplied.Add(int64(h.Count))
		m.cfg.Obs.Add(m.id, obs.CtrWritesApplied, int64(h.Count))
		return nil
	case comm.MsgReadReq:
		if err := m.serveReads(h, payload, dec); err != nil {
			return err
		}
		m.cfg.Obs.Add(m.id, obs.CtrReadsServed, int64(h.Count))
		return nil
	case comm.MsgRMIReq:
		if err := m.serveRMI(h, payload); err != nil {
			return err
		}
		m.cfg.Obs.Add(m.id, obs.CtrRMIServed, 1)
		return nil
	case comm.MsgSteal:
		return m.serveSteal(h, payload)
	default:
		return fmt.Errorf("unexpected frame type %v on request queue", h.Type)
	}
}

// applyWrites decodes and applies count write records:
// meta word (prop<<48 | op<<40 | offset) followed by the value word, either
// fixed width or — under FlagCompressed — as sorted delta-varint meta and
// type-aware value columns. Records are validated before any is applied so
// a truncated or corrupt frame surfaces as an error without a partial,
// out-of-bounds apply.
func (m *Machine) applyWrites(h comm.Header, payload []byte, dec *wireDec) error {
	count := int(h.Count)
	// Write-activation (WriteSpec.ActivateInto): when the running job
	// activates on some of its write props, applies that change the stored
	// word collect into per-slot lists and buffer onto the build frontiers.
	// serveRequest advances writesApplied only after this returns, so the
	// termination allreduce's acquire of that counter also acquires these
	// activations.
	var jr *jobRuntime
	var act []int8
	if j := m.curJob.Load(); j != nil && j.activate != nil {
		jr, act = j, j.activate
	}
	var acts [][]uint32
	flush := func() {
		for s, ns := range acts {
			if len(ns) > 0 {
				jr.builds[s].remoteActivate(ns)
			}
		}
	}
	apply := func(meta, word uint64) {
		prop := PropID(meta >> 48)
		op := reduce.Op(meta >> 40)
		if act != nil {
			if s := act[prop]; s >= 0 {
				if m.cols[prop].applyWordChanged(int(uint32(meta)), op, word) {
					if acts == nil {
						acts = make([][]uint32, len(jr.builds))
					}
					acts[s] = append(acts[s], uint32(meta))
				}
				return
			}
		}
		m.cols[prop].applyWord(int(uint32(meta)), op, word)
	}
	if h.Flags&comm.FlagCompressed != 0 {
		keys, vals, err := m.decodeWriteRecs(payload, count, dec)
		if err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			prop := PropID(keys[i] >> 48)
			if int(uint32(keys[i])) >= len(m.cols[prop].vals) {
				return fmt.Errorf("write record %d offset %d out of range for property %d", i, uint32(keys[i]), prop)
			}
		}
		// Receiver-side write combining: compressed batches arrive sorted by
		// meta word, so duplicate (prop, op, offset) records are adjacent —
		// merge them with the reduction's own arithmetic before touching the
		// column, turning k atomic applies into one. The sender's h.Count is
		// still what writesApplied advances by (serveRequest), since the
		// termination protocol counts records shipped, not applies performed.
		if !m.cfg.DisableWriteCombining && count > 1 {
			at := 0
			for i := 1; i < count; i++ {
				if keys[i] == keys[at] {
					vals[at] = m.cols[PropID(keys[at]>>48)].mergeWords(reduce.Op(keys[at]>>40), vals[at], vals[i])
					continue
				}
				at++
				keys[at], vals[at] = keys[i], vals[i]
			}
			if merged := count - at - 1; merged > 0 {
				count = at + 1
				m.ep.Metrics().RecordRecvCombine(int64(merged))
				m.cfg.Obs.Add(m.id, obs.CtrRecvWritesCombined, int64(merged))
			}
		}
		for i := 0; i < count; i++ {
			apply(keys[i], vals[i])
		}
		flush()
		return nil
	}
	if len(payload) < writeRecSize*count {
		return fmt.Errorf("truncated write frame: %d records need %d bytes, have %d", count, writeRecSize*count, len(payload))
	}
	for i := 0; i < count; i++ {
		meta := leU64(payload[writeRecSize*i:])
		prop := PropID(meta >> 48)
		offset := uint32(meta)
		if int(prop) >= len(m.cols) || m.cols[prop] == nil {
			return fmt.Errorf("write record %d names unknown property %d", i, prop)
		}
		if int(offset) >= len(m.cols[prop].vals) {
			return fmt.Errorf("write record %d offset %d out of range for property %d", i, offset, prop)
		}
	}
	for i := 0; i < count; i++ {
		apply(leU64(payload[writeRecSize*i:]), leU64(payload[writeRecSize*i+8:]))
	}
	flush()
	return nil
}

// serveReads builds the response for a read-request frame: one value word
// per 8-byte address record, in request order, echoing the worker id and
// sequence number so the requester can match its side structure. Under read
// combining the records are already deduplicated — each word here may fan
// out to many continuations on the requester, which is exactly where the
// READ_RESP byte saving comes from.
func (m *Machine) serveReads(h comm.Header, payload []byte, dec *wireDec) error {
	var keys []uint64
	if h.Flags&comm.FlagCompressed != 0 {
		var err error
		if keys, err = decodeReadKeys(payload, int(h.Count), dec); err != nil {
			return err
		}
	} else {
		if len(payload) < readRecSize*int(h.Count) {
			return fmt.Errorf("truncated read frame: %d records need %d bytes, have %d", h.Count, readRecSize*int(h.Count), len(payload))
		}
		keys = dec.keys[:0]
		for i := 0; i < int(h.Count); i++ {
			keys = append(keys, leU64(payload[readRecSize*i:]))
		}
		dec.keys = keys
	}
	for i, rec := range keys {
		prop := PropID(rec >> 48)
		offset := uint32(rec)
		if int(prop) >= len(m.cols) || m.cols[prop] == nil {
			return fmt.Errorf("read record %d names unknown property %d", i, prop)
		}
		if int(offset) >= len(m.cols[prop].vals) {
			return fmt.Errorf("read record %d offset %d out of range for property %d", i, offset, prop)
		}
	}
	resp := m.respPool.Acquire()
	resp.Reset(comm.Header{
		Type:   comm.MsgReadResp,
		Worker: h.Worker,
		Src:    uint16(m.id),
		Count:  h.Count,
		Aux:    h.Aux,
	})
	for _, rec := range keys {
		resp.AppendU64(m.cols[PropID(rec>>48)].load(int(uint32(rec))))
	}
	if err := m.ep.Send(int(h.Src), resp); err != nil {
		return fmt.Errorf("responding to %d: %w", h.Src, err)
	}
	return nil
}

// serveRMI dispatches a remote method invocation and sends its response.
// Every RMI gets a response (possibly empty) so callers can await
// completion; the method id travels in the aux high bits, the sequence
// number in the low bits. A dispatch failure aborts the job — the caller's
// abort-channel select (or request timeout) unblocks it, since no response
// frame will come.
func (m *Machine) serveRMI(h comm.Header, payload []byte) error {
	method := uint32(h.Aux >> 32)
	out, err := m.rmi.Dispatch(method, int(h.Src), payload)
	if err != nil {
		return err
	}
	resp := m.respPool.Acquire()
	if len(out) > resp.Room() {
		resp.Release()
		return fmt.Errorf("RMI response of %d bytes exceeds buffer size", len(out))
	}
	resp.Reset(comm.Header{
		Type:   comm.MsgRMIResp,
		Worker: h.Worker,
		Src:    uint16(m.id),
		Count:  1,
		Aux:    h.Aux,
	})
	resp.AppendBytes(out)
	if err := m.ep.Send(int(h.Src), resp); err != nil {
		return fmt.Errorf("RMI response to %d: %w", h.Src, err)
	}
	return nil
}
