package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/reduce"
)

// copierLoop is one copier goroutine (paper §3.1/§3.4): it consumes inbound
// request frames from the router's shared queue and serves them — write
// records apply directly with atomic instructions, read requests produce a
// response message in request order, RMI requests dispatch through the
// registry. Copiers run for the life of the machine, independent of job
// phases, so remote machines always make progress against this one.
func (m *Machine) copierLoop() {
	defer m.copierWG.Done()
	for buf := range m.router.ReqQueue() {
		h := buf.Header()
		switch h.Type {
		case comm.MsgWriteReq:
			m.applyWrites(buf.Payload(), int(h.Count))
			m.writesApplied.Add(int64(h.Count))
			buf.Release()
		case comm.MsgReadReq:
			m.serveReads(h, buf.Payload())
			buf.Release()
		case comm.MsgRMIReq:
			m.serveRMI(h, buf.Payload())
			buf.Release()
		default:
			buf.Release()
			panic(fmt.Sprintf("core: copier got unexpected frame type %v", h.Type))
		}
	}
}

// applyWrites decodes and applies count write records:
// meta word (prop<<48 | op<<40 | offset) followed by the value word.
func (m *Machine) applyWrites(payload []byte, count int) {
	for i := 0; i < count; i++ {
		meta := leU64(payload[writeRecSize*i:])
		word := leU64(payload[writeRecSize*i+8:])
		prop := PropID(meta >> 48)
		op := reduce.Op(meta >> 40)
		offset := uint32(meta)
		m.cols[prop].applyWord(int(offset), op, word)
	}
}

// serveReads builds the response for a read-request frame: one value word
// per 8-byte address record, in request order, echoing the worker id and
// sequence number so the requester can match its side structure. Under read
// combining the records are already deduplicated — each word here may fan
// out to many continuations on the requester, which is exactly where the
// READ_RESP byte saving comes from.
func (m *Machine) serveReads(h comm.Header, payload []byte) {
	resp := m.respPool.Acquire()
	resp.Reset(comm.Header{
		Type:   comm.MsgReadResp,
		Worker: h.Worker,
		Src:    uint16(m.id),
		Count:  h.Count,
		Aux:    h.Aux,
	})
	for i := 0; i < int(h.Count); i++ {
		rec := leU64(payload[readRecSize*i:])
		prop := PropID(rec >> 48)
		offset := uint32(rec)
		resp.AppendU64(m.cols[prop].load(int(offset)))
	}
	if err := m.ep.Send(int(h.Src), resp); err != nil {
		panic(fmt.Sprintf("core: machine %d copier responding to %d: %v", m.id, h.Src, err))
	}
}

// serveRMI dispatches a remote method invocation and sends its response.
// Every RMI gets a response (possibly empty) so callers can await
// completion; the method id travels in the aux high bits, the sequence
// number in the low bits.
func (m *Machine) serveRMI(h comm.Header, payload []byte) {
	method := uint32(h.Aux >> 32)
	out, err := m.rmi.Dispatch(method, int(h.Src), payload)
	if err != nil {
		panic(fmt.Sprintf("core: machine %d: %v", m.id, err))
	}
	resp := m.respPool.Acquire()
	if len(out) > resp.Room() {
		resp.Release()
		panic(fmt.Sprintf("core: RMI response of %d bytes exceeds buffer size", len(out)))
	}
	resp.Reset(comm.Header{
		Type:   comm.MsgRMIResp,
		Worker: h.Worker,
		Src:    uint16(m.id),
		Count:  1,
		Aux:    h.Aux,
	})
	resp.AppendBytes(out)
	if err := m.ep.Send(int(h.Src), resp); err != nil {
		panic(fmt.Sprintf("core: machine %d copier RMI response to %d: %v", m.id, h.Src, err))
	}
}
