package core

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/reduce"
)

// IterKind selects a job's built-in iterator (paper §4.1.2: "PGX.D provides
// two iterators for implementing neighborhood iterating algorithms: the node
// iterator and the edge iterator (with incoming and outgoing variants)").
type IterKind uint8

const (
	// IterNodes runs the task once per owned node.
	IterNodes IterKind = iota
	// IterOutEdges runs the task once per out-edge of each owned node; all
	// edges of one node are handled by the same worker.
	IterOutEdges
	// IterInEdges runs the task once per in-edge of each owned node — the
	// pull-friendly orientation.
	IterInEdges
	// IterBothEdges runs the task over each owned node's out-edges and then
	// its in-edges in one region — the undirected view. Algorithms that
	// touch both orientations per step (WCC, k-core, MIS) use it to halve
	// their barrier and ghost-sync count.
	IterBothEdges
)

// String implements fmt.Stringer.
func (k IterKind) String() string {
	switch k {
	case IterNodes:
		return "nodes"
	case IterOutEdges:
		return "out-edges"
	case IterInEdges:
		return "in-edges"
	case IterBothEdges:
		return "both-edges"
	default:
		return fmt.Sprintf("IterKind(%d)", uint8(k))
	}
}

// Task is the paper's RTC user context (§4.1.2). Run is invoked per node or
// per edge depending on the job's iterator; it must complete without
// blocking ("the invocation of the run() method completes no matter what").
// If Run (or ReadDone) issued a remote read, ReadDone is the continuation,
// invoked by the same worker when the value arrives — so task-local state
// needs no locks. All cross-invocation state must live in properties or in
// Ctx.Aux, exactly as the paper requires ("all the information which is
// needed after continuation should be explicitly stored").
type Task interface {
	Run(c *Ctx)
	ReadDone(c *Ctx, val uint64)
}

// RMITask is implemented additionally by tasks that invoke Ctx.CallRMI;
// RMIDone is the continuation receiving the response payload.
type RMITask interface {
	Task
	RMIDone(c *Ctx, payload []byte)
}

// NoReads is a mixin for push-only tasks: its ReadDone panics, catching
// kernels that issue reads they never declared handling for.
type NoReads struct{}

// ReadDone implements Task for kernels that never issue remote reads.
func (NoReads) ReadDone(c *Ctx, val uint64) {
	panic("core: ReadDone invoked on a task that declared NoReads")
}

// WriteSpec declares one property a job reduces into, with its operator —
// the information ghost synchronization needs ("for each parallel region,
// the program needs to define what properties are used in the region as
// well as how they are used").
type WriteSpec struct {
	Prop PropID
	Op   reduce.Op
	// ActivateInto, when positive, activates the destination node into the
	// job's Build[ActivateInto-1] frontier whenever a reduce-write through
	// this spec changes the stored word (1-based so the zero value means no
	// activation). This is receiver-side frontier generation: a push
	// superstep's improved nodes become the next frontier with no separate
	// adopt pass. Writes to such a property bypass ghost accumulation —
	// ghosted targets ship as explicit records to their owner — so every
	// activation lands (and is counted) before the job's termination
	// allreduce carries the frontier stats.
	ActivateInto int
}

// JobSpec describes one parallel region.
type JobSpec struct {
	// Name appears in stats and error messages.
	Name string
	// Iter selects the built-in iterator driving Task.Run.
	Iter IterKind
	// Task is the kernel. One instance is shared by all workers on a
	// machine; per-invocation state must live in Ctx or properties.
	Task Task
	// Filter, when non-nil, is the vertex-deactivation predicate evaluated
	// once per node before its edges ("a custom filter method which is
	// evaluated for each vertex prior to its execution").
	Filter func(c *Ctx) bool
	// ReadProps lists properties read through neighbors; their ghost copies
	// are refreshed from owners before the region starts.
	ReadProps []PropID
	// WriteProps lists properties reduced into through neighbors; ghost
	// copies start at the operator's bottom and partials merge back to
	// owners after the region.
	WriteProps []WriteSpec
	// Source, when non-nil, restricts the iteration to the frontier's
	// members: each machine iterates only its local frontier (sparse vertex
	// list or bitmap-filtered chunks), and machines whose local frontier is
	// empty skip worker dispatch entirely. Nil iterates all owned nodes.
	Source *Frontier
	// Build lists frontiers the job populates: Ctx.Activate(slot) marks the
	// current node as a member of Build[slot]'s next membership. Each listed
	// frontier is rebuilt from scratch (a frontier may appear in both Source
	// and Build — the old membership drives iteration, the new one replaces
	// it after the task phase), and its cluster-wide FrontierStats come back
	// in JobStats.Frontiers, carried by the termination-detection allreduce
	// at no extra collective cost.
	Build []*Frontier
	// Steal, when non-nil, declares the job safe for cross-machine chunk
	// stealing (Config.EnableWorkStealing). See StealSpec for the contract a
	// kernel must satisfy.
	Steal *StealSpec
}

// StealSpec marks a job's kernel as relocatable: a peer machine may claim
// unowned chunks of this machine's task list and run them remotely. Only
// push-style kernels qualify, because a stolen node's execution must be
// reproducible from a snapshot shipped in the grant frame:
//
//   - the kernel must embed NoReads (no remote reads, hence no ReadDone
//     continuations to restore on the thief) and must not use CallRMI;
//   - it must not write its own node (Ctx.SetF64/SetI64) or call
//     Ctx.Activate — own-node state changes cannot be shipped back;
//   - every own-node property it reads (Ctx.GetF64/GetI64) must be listed
//     in Own, and Own must be disjoint from WriteProps: an unclaimed
//     chunk's nodes have not run and remote reductions only touch write
//     props, so the grant-time snapshot equals what victim execution would
//     have read;
//   - ReadProps and Filter must be empty/nil (validate enforces this, plus
//     the Own rules; the no-write rule is enforced at run time in stolen
//     mode).
//
// Everything else — neighbor reductions through WriteRef, ActivateInto
// write-activations, edge weights — works unchanged on the thief because
// grants carry the node's adjacency pre-resolved into the thief's ref frame.
type StealSpec struct {
	// Own lists the properties the kernel reads on its own node; their
	// values ride the grant as a per-node snapshot.
	Own []PropID
}

// JobStats reports one job execution.
type JobStats struct {
	// Duration is the wall time of the parallel region including ghost
	// synchronization and termination detection.
	Duration time.Duration
	// Traffic is the cluster-wide transport delta during the job.
	Traffic comm.Snapshot
	// Breakdown decomposes Duration as in Figure 6c.
	Breakdown Breakdown
	// Frontiers holds the cluster-wide stats of each spec.Build frontier
	// (same order), as of the end of the job.
	Frontiers []FrontierStats
}

// Breakdown splits a job's wall time into the paper's Figure 6c components:
// FullyParallel "accounts for the time when all workers are busy", InterMachine
// "for the time when at least one machine is idle", and IntraMachine for
// "when some workers are waiting for others in the same machine". The three
// parts plus Sync (ghost merge + termination) sum to the job duration.
type Breakdown struct {
	FullyParallel time.Duration
	IntraMachine  time.Duration
	InterMachine  time.Duration
	Sync          time.Duration
}

// Add accumulates o into b, for aggregating per-iteration breakdowns.
func (b *Breakdown) Add(o Breakdown) {
	b.FullyParallel += o.FullyParallel
	b.IntraMachine += o.IntraMachine
	b.InterMachine += o.InterMachine
	b.Sync += o.Sync
}

// validate checks a spec against the registered properties.
func (spec *JobSpec) validate(props []propMeta) error {
	if spec.Task == nil {
		return fmt.Errorf("core: job %q has no task", spec.Name)
	}
	if spec.Iter > IterBothEdges {
		return fmt.Errorf("core: job %q has unknown iterator %d", spec.Name, spec.Iter)
	}
	seen := make(map[PropID]bool)
	for _, p := range spec.ReadProps {
		if int(p) >= len(props) {
			return fmt.Errorf("core: job %q reads unregistered property %d", spec.Name, p)
		}
		seen[p] = true
	}
	for _, w := range spec.WriteProps {
		if int(w.Prop) >= len(props) {
			return fmt.Errorf("core: job %q writes unregistered property %d", spec.Name, w.Prop)
		}
		if !w.Op.Valid() || w.Op == reduce.Overwrite {
			return fmt.Errorf("core: job %q writes property %d with unsupported op %v (ghost merging needs a commutative reduction)", spec.Name, w.Prop, w.Op)
		}
		if seen[w.Prop] {
			// The paper leaves read+write of one property non-deterministic
			// and tells users to make temporary copies; this engine rejects
			// it outright so the hazard cannot be hit silently.
			return fmt.Errorf("core: job %q both reads and writes property %d; use a temporary copy", spec.Name, w.Prop)
		}
		if w.ActivateInto < 0 || w.ActivateInto > len(spec.Build) {
			return fmt.Errorf("core: job %q activates property %d into build slot %d of %d", spec.Name, w.Prop, w.ActivateInto, len(spec.Build))
		}
	}
	if spec.Steal != nil {
		if spec.Iter == IterNodes {
			return fmt.Errorf("core: job %q declares Steal on a node iterator; only edge iterators are stealable", spec.Name)
		}
		if len(spec.ReadProps) > 0 {
			return fmt.Errorf("core: job %q declares Steal with ReadProps; stealable kernels must be push-only", spec.Name)
		}
		if spec.Filter != nil {
			return fmt.Errorf("core: job %q declares Steal with a Filter; filters evaluate victim-side state a grant cannot ship", spec.Name)
		}
		written := make(map[PropID]bool, len(spec.WriteProps))
		for _, w := range spec.WriteProps {
			written[w.Prop] = true
		}
		for _, p := range spec.Steal.Own {
			if int(p) >= len(props) {
				return fmt.Errorf("core: job %q steal-snapshots unregistered property %d", spec.Name, p)
			}
			if written[p] {
				return fmt.Errorf("core: job %q steal-snapshots property %d it also writes; the snapshot would race the reductions", spec.Name, p)
			}
		}
	}
	return nil
}
