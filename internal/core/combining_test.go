package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
)

// combiningConfig builds a cluster config with ghosting disabled so every
// cross-partition neighbor read goes over the wire — the duplicate-heavy
// workload read combining exists for.
func combiningConfig(p int, disable bool) Config {
	cfg := DefaultConfig(p)
	cfg.BufferSize = 8 << 10 // small windows: exercises flush + dedup reset
	cfg.GhostThreshold = GhostDisabled
	cfg.DisableReadCombining = disable
	return cfg
}

// runDuplicateHeavyPull runs the pull-sum kernel (every node reads all its
// in-neighbors, so hubs of a skewed graph are read over and over) and
// returns the gathered result plus the job's traffic delta.
func runDuplicateHeavyPull(t *testing.T, g *graph.Graph, cfg Config) ([]float64, comm.Snapshot) {
	t.Helper()
	c := bootCluster(t, g, cfg)
	src, _ := c.AddPropF64("src")
	dst, _ := c.AddPropF64("dst")
	c.FillByNodeF64(src, func(v graph.NodeID) float64 { return float64(v) })
	c.FillF64(dst, 0)
	stats, err := c.RunJob(JobSpec{
		Name:      "pull-sum",
		Iter:      IterInEdges,
		Task:      &pullSumTask{src: src, dst: dst},
		ReadProps: []PropID{src},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.PoolsQuiescent() {
		t.Fatal("pools not quiescent after job: sides or buffers leaked")
	}
	return c.GatherF64(dst), stats.Traffic
}

// TestReadCombiningMatchesReference: on a skewed graph with ghosting off,
// combining must (a) produce bit-identical results to the uncombined
// protocol, (b) record dedup hits, and (c) shrink READ_REQ and READ_RESP
// wire bytes. Runs over both fabrics; TCP is where the byte savings are a
// real wire effect.
func TestReadCombiningMatchesReference(t *testing.T) {
	g := testGraph(t) // RMAT TwitterLike: heavy hubs, many duplicate reads
	vals := make([]float64, g.NumNodes())
	for u := range vals {
		vals[u] = float64(u)
	}
	want := refPullSum(g, vals)

	const p = 3
	fabrics := []struct {
		name string
		make func(t *testing.T, cfg *Config)
	}{
		{"inproc", func(t *testing.T, cfg *Config) {}},
		{"tcp", func(t *testing.T, cfg *Config) {
			f, err := comm.NewTCPFabric(cfg.NumMachines,
				cfg.NumMachines*(cfg.ReqBuffers+cfg.Workers*cfg.NumMachines)+64, cfg.BufferSize)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { f.Close() })
			cfg.Fabric = f
		}},
	}
	for _, fc := range fabrics {
		t.Run(fc.name, func(t *testing.T) {
			var traffic [2]comm.Snapshot
			for i, disable := range []bool{false, true} {
				cfg := combiningConfig(p, disable)
				cfg.ReqBuffers = 2*cfg.Workers*cfg.NumMachines + 4
				fc.make(t, &cfg)
				got, tr := runDuplicateHeavyPull(t, g, cfg)
				for u := range want {
					if got[u] != want[u] {
						t.Fatalf("disable=%v node %d: got %v, want %v", disable, u, got[u], want[u])
					}
				}
				traffic[i] = tr
			}
			on, off := traffic[0], traffic[1]
			if on.DedupHits == 0 {
				t.Error("combining on: no dedup hits on a skewed pull workload")
			}
			if off.DedupHits != 0 {
				t.Errorf("combining off still recorded %d dedup hits", off.DedupHits)
			}
			if on.ReadReqBytes >= off.ReadReqBytes {
				t.Errorf("READ_REQ bytes not reduced: on=%d off=%d", on.ReadReqBytes, off.ReadReqBytes)
			}
			if on.ReadRespBytes >= off.ReadRespBytes {
				t.Errorf("READ_RESP bytes not reduced: on=%d off=%d", on.ReadRespBytes, off.ReadRespBytes)
			}
			saved := off.ReadReqBytes + off.ReadRespBytes - on.ReadReqBytes - on.ReadRespBytes
			t.Logf("%s: hit rate %.1f%%, saved %d bytes (req %d->%d, resp %d->%d)",
				fc.name, 100*on.DedupHitRate(), saved,
				off.ReadReqBytes, on.ReadReqBytes, off.ReadRespBytes, on.ReadRespBytes)
		})
	}
}

// TestReadCombiningSideFanOut: a tiny deterministic graph where one hub is
// read by every other node — the strongest possible duplication. Each
// reader must still observe the hub's value exactly once per in-edge.
func TestReadCombiningSideFanOut(t *testing.T) {
	// Star graph: node 0 -> every other node, so pulling over in-edges makes
	// every node read node 0's value.
	const n = 64
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.NodeID(v)})
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := combiningConfig(2, false)
	c := bootCluster(t, g, cfg)
	s, _ := c.AddPropF64("s")
	d, _ := c.AddPropF64("d")
	c.FillByNodeF64(s, func(v graph.NodeID) float64 { return float64(v) + 1 })
	c.FillF64(d, 0)
	if _, err := c.RunJob(JobSpec{
		Name:      "star-pull",
		Iter:      IterInEdges,
		Task:      &pullSumTask{src: s, dst: d},
		ReadProps: []PropID{s},
	}); err != nil {
		t.Fatal(err)
	}
	got := c.GatherF64(d)
	for v := 1; v < n; v++ {
		if got[v] != 1 { // hub value = 0 + 1
			t.Fatalf("node %d pulled %v, want 1", v, got[v])
		}
	}
	if got[0] != 0 {
		t.Fatalf("hub has no in-edges but pulled %v", got[0])
	}
	if !c.PoolsQuiescent() {
		t.Fatal("pools not quiescent")
	}
}
