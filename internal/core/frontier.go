package core

import (
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Frontier is a first-class active-vertex set for filtered supersteps. The
// paper's traversal algorithms emulate frontiers with dense i64 "active"
// properties and a full O(V) filter scan per superstep; a Frontier instead
// tracks membership explicitly, partitioned like the vertices, so a job with
// Source set iterates only frontier chunks and a job with Build slots
// collects the next frontier as a side effect of its kernel (Ctx.Activate).
//
// Each machine's partition is hybrid: a sorted sparse vertex list while the
// local frontier is small, an O(numLocal/8)-byte dense bitmap once it
// crosses the density threshold (Config.FrontierDenseFraction). The switch
// is automatic and per machine — a skewed superstep can be sparse on one
// machine and dense on another.
//
// Frontiers are bound to the loaded graph: create them after Load, and drop
// all references after a re-Load. Membership mutation happens either driver-
// side (Reset/Add/Fill, sequential regions only) or engine-side through
// JobSpec.Build; the two must not interleave with a running job.
type Frontier struct {
	name     string
	c        *Cluster
	machines []*machineFrontier
}

// FrontierStats summarizes one frontier cluster-wide: member count and the
// summed full degrees of its members. The degree sums are the inputs of the
// direction-optimizing heuristic (frontier out-degree vs. unvisited
// in-degree); jobs that build frontiers return them in JobStats.Frontiers,
// computed by piggybacking on the write-drain allreduce so they cost no
// extra collective.
type FrontierStats struct {
	// Count is the number of member vertices.
	Count int64
	// OutDeg is the sum of members' out-degrees.
	OutDeg int64
	// InDeg is the sum of members' in-degrees.
	InDeg int64
}

// NewFrontier creates an empty frontier over the loaded graph. The name
// appears in error messages only.
func (c *Cluster) NewFrontier(name string) *Frontier {
	if !c.loaded {
		panic("core: NewFrontier before Load")
	}
	f := &Frontier{name: name, c: c, machines: make([]*machineFrontier, len(c.machines))}
	for i, m := range c.machines {
		f.machines[i] = newMachineFrontier(m.store, c.cfg.frontierDenseThreshold(m.store.numLocal), c.cfg.Workers)
	}
	return f
}

// Reset empties the frontier. Driver-side (sequential regions only).
func (f *Frontier) Reset() {
	for _, mf := range f.machines {
		mf.clear()
	}
}

// Add inserts one vertex by global id. Driver-side.
func (f *Frontier) Add(v graph.NodeID) {
	owner := f.c.layout.Owner(v)
	f.machines[owner].add(uint32(f.c.layout.LocalOffset(v)))
}

// Fill resets the frontier and inserts every vertex for which pred returns
// true (every vertex when pred is nil). Driver-side; pred must be safe for
// concurrent calls.
func (f *Frontier) Fill(pred func(graph.NodeID) bool) {
	f.c.mustParallel(func(m *Machine) {
		mf := f.machines[m.id]
		mf.clear()
		for i := 0; i < m.store.numLocal; i++ {
			if pred == nil || pred(m.store.globalOf(uint32(i))) {
				mf.add(uint32(i))
			}
		}
	})
}

// Stats sums the frontier's count and degree totals across machines.
// Driver-side initialization/diagnostics — supersteps get the same numbers
// from JobStats.Frontiers, via the collective path.
func (f *Frontier) Stats() FrontierStats {
	var st FrontierStats
	for _, mf := range f.machines {
		st.Count += int64(mf.count)
		st.OutDeg += mf.outDegSum
		st.InDeg += mf.inDegSum
	}
	return st
}

// Count returns the cluster-wide member count (driver-side).
func (f *Frontier) Count() int64 { return f.Stats().Count }

// Subtract removes o's members from f, machine-parallel. Driver-side
// (sequential regions only) — the incremental complement-set maintenance
// traversals need: after each superstep builds the newly-reached frontier,
// subtracting it from the unvisited set costs O(min(|o|, V/64)) per machine
// instead of a rebuild scan.
func (f *Frontier) Subtract(o *Frontier) {
	f.c.mustParallel(func(m *Machine) {
		f.machines[m.id].subtract(o.machines[m.id])
	})
}

// machineFrontier is one machine's partition of a Frontier.
//
// Invariants outside a build: bits holds the membership bitmap, count the
// member count, and the degree sums cover exactly the members. When !dense,
// sparse additionally holds the sorted member list; when dense it is empty
// (iteration walks the bitmap).
type machineFrontier struct {
	st             *localStore
	denseThreshold int

	dense     bool
	count     int
	sparse    []uint32
	bits      []uint64
	outDegSum int64
	inDegSum  int64

	// shards are the per-worker build lists: Ctx.Activate appends the node to
	// its worker's shard with no synchronization, and finalize merges them.
	// Duplicate activations (per-edge kernels) are deduplicated there.
	shards [][]uint32

	// remote buffers activations from copier-applied reduce writes
	// (WriteSpec.ActivateInto): copiers append under remoteMu concurrently
	// with the task phase, and the machine's main goroutine drains the buffer
	// into the membership — at finalize and then once per termination-
	// allreduce round, so the converging round's stats include every applied
	// write's activation.
	remoteMu sync.Mutex
	remote   []uint32

	// scratch for frontier chunk construction, reused across supersteps.
	prefixScratch []int64
	chunkScratch  []partition.Chunk
}

func newMachineFrontier(st *localStore, denseThreshold, workers int) *machineFrontier {
	return &machineFrontier{
		st:             st,
		denseThreshold: denseThreshold,
		bits:           make([]uint64, (st.numLocal+63)/64),
		shards:         make([][]uint32, workers),
	}
}

// frontierDenseThreshold derives the sparse→dense flip point for a machine
// with n local vertices.
func (c *Config) frontierDenseThreshold(n int) int {
	frac := c.FrontierDenseFraction
	if frac <= 0 {
		frac = defaultFrontierDenseFraction
	}
	t := int(frac * float64(n))
	if t < 1 {
		t = 1
	}
	return t
}

func (mf *machineFrontier) has(node uint32) bool {
	return mf.bits[node>>6]&(1<<(node&63)) != 0
}

// clear empties the membership, using the sparse list to avoid an O(V/64)
// wipe when the frontier is small.
func (mf *machineFrontier) clear() {
	if mf.dense || len(mf.sparse) < len(mf.bits) {
		if mf.dense {
			clear(mf.bits)
		} else {
			for _, v := range mf.sparse {
				mf.bits[v>>6] &^= 1 << (v & 63)
			}
		}
	} else {
		clear(mf.bits)
	}
	mf.dense = false
	mf.count = 0
	mf.sparse = mf.sparse[:0]
	mf.outDegSum = 0
	mf.inDegSum = 0
}

// add inserts local node idempotently, flipping to dense at the threshold.
func (mf *machineFrontier) add(node uint32) {
	if mf.has(node) {
		return
	}
	mf.bits[node>>6] |= 1 << (node & 63)
	mf.count++
	mf.outDegSum += int64(mf.st.outDeg[node])
	mf.inDegSum += int64(mf.st.inDeg[node])
	if !mf.dense {
		mf.sparse = append(mf.sparse, node)
		if mf.count >= mf.denseThreshold {
			mf.dense = true
			mf.sparse = mf.sparse[:0]
		}
	}
}

// beginBuild resets the per-worker shards (and the remote-activation buffer)
// for a job that builds this frontier. The old membership survives until
// finalize so a job may read one frontier while (re)building it.
func (mf *machineFrontier) beginBuild() {
	for i := range mf.shards {
		if mf.shards[i] == nil {
			mf.shards[i] = make([]uint32, 0, 256)
		} else {
			mf.shards[i] = mf.shards[i][:0]
		}
	}
	mf.remoteMu.Lock()
	mf.remote = mf.remote[:0]
	mf.remoteMu.Unlock()
}

// remoteActivate buffers copier-side activations (nodes whose value a remote
// reduce write just improved). Safe for concurrent copiers; the machine's
// main goroutine merges the buffer via drainRemote.
func (mf *machineFrontier) remoteActivate(nodes []uint32) {
	mf.remoteMu.Lock()
	mf.remote = append(mf.remote, nodes...)
	mf.remoteMu.Unlock()
}

// drainRemote merges buffered remote activations into the membership,
// restoring the sorted-sparse invariant. Main goroutine only, after finalize
// has rebuilt the base membership. The buffer is consumed under the lock —
// copiers appending concurrently share its backing array.
func (mf *machineFrontier) drainRemote() {
	mf.remoteMu.Lock()
	n := len(mf.remote)
	for _, v := range mf.remote {
		mf.add(v)
	}
	mf.remote = mf.remote[:0]
	mf.remoteMu.Unlock()
	if n > 0 && !mf.dense && len(mf.sparse) > 1 {
		sort.Slice(mf.sparse, func(i, j int) bool { return mf.sparse[i] < mf.sparse[j] })
	}
}

// finalize replaces the membership with the union of the build shards,
// deduplicating through the bitmap and restoring the sorted-sparse/dense
// invariant. Runs on the machine's main goroutine after its workers joined.
func (mf *machineFrontier) finalize() {
	mf.clear()
	for _, shard := range mf.shards {
		for _, v := range shard {
			mf.add(v)
		}
	}
	if !mf.dense && len(mf.sparse) > 1 {
		sort.Slice(mf.sparse, func(i, j int) bool { return mf.sparse[i] < mf.sparse[j] })
	}
}

// subtract removes o's members from this machine's partition, keeping the
// count/degree-sum/sparse invariants. o's bitmap is always valid regardless
// of its representation, so membership tests are O(1); a dense frontier that
// shrinks below the threshold flips back to sparse by rescanning its bitmap.
func (mf *machineFrontier) subtract(o *machineFrontier) {
	if mf.count == 0 || o.count == 0 {
		return
	}
	if !mf.dense {
		keep := mf.sparse[:0]
		for _, v := range mf.sparse {
			if o.has(v) {
				mf.bits[v>>6] &^= 1 << (v & 63)
				mf.count--
				mf.outDegSum -= int64(mf.st.outDeg[v])
				mf.inDegSum -= int64(mf.st.inDeg[v])
			} else {
				keep = append(keep, v)
			}
		}
		mf.sparse = keep
		return
	}
	for w := range mf.bits {
		rm := mf.bits[w] & o.bits[w]
		if rm == 0 {
			continue
		}
		mf.bits[w] &^= rm
		for rm != 0 {
			v := uint32(w<<6) + uint32(trailingZeros64(rm))
			rm &= rm - 1
			mf.count--
			mf.outDegSum -= int64(mf.st.outDeg[v])
			mf.inDegSum -= int64(mf.st.inDeg[v])
		}
	}
	if mf.count < mf.denseThreshold {
		mf.dense = false
		mf.sparse = mf.sparse[:0]
		for w, word := range mf.bits {
			for word != 0 {
				mf.sparse = append(mf.sparse, uint32(w<<6)+uint32(trailingZeros64(word)))
				word &= word - 1
			}
		}
	}
}

// rowsFor returns the CSR row-offset array of the orientation a job
// iterates, for edge-balancing frontier chunks (nil for node iteration).
func (mf *machineFrontier) rowsFor(iter IterKind) []int64 {
	switch iter {
	case IterOutEdges:
		return mf.st.outRows
	case IterInEdges:
		return mf.st.inRows
	case IterBothEdges:
		return mf.st.bothRows
	default:
		return nil
	}
}

// listChunks edge-balances the sparse member list for iteration: a prefix
// sum of member degrees under the job's orientation feeds the same
// EdgeChunks cut used for full scans, so a frontier holding one hub still
// splits away from its low-degree peers. Chunk indices address positions in
// the sparse list, not node ids.
func (mf *machineFrontier) listChunks(iter IterKind, workers int) []partition.Chunk {
	n := len(mf.sparse)
	rows := mf.rowsFor(iter)
	if rows == nil {
		return partition.NodeChunks(n, n/(8*workers)+1)
	}
	prefix := mf.prefixScratch
	if cap(prefix) < n+1 {
		prefix = make([]int64, n+1)
	}
	prefix = prefix[:n+1]
	prefix[0] = 0
	for i, v := range mf.sparse {
		prefix[i+1] = prefix[i] + (rows[v+1] - rows[v])
	}
	mf.prefixScratch = prefix
	target := prefix[n]/int64(8*workers) + 1
	return partition.EdgeChunks(prefix, target)
}

// denseChunks filters a full-scan chunk list down to chunks whose node range
// intersects the bitmap, so workers never claim (or scan) an all-inactive
// chunk. Chunk indices remain node ids; the worker skips clear bits inside
// each surviving chunk.
func (mf *machineFrontier) denseChunks(base []partition.Chunk) []partition.Chunk {
	out := mf.chunkScratch[:0]
	for _, ch := range base {
		if mf.anyInRange(ch.Begin, ch.End) {
			out = append(out, ch)
		}
	}
	mf.chunkScratch = out
	return out
}

// anyInRange reports whether any bit in [lo, hi) is set, testing whole words
// between the boundary masks.
func (mf *machineFrontier) anyInRange(lo, hi uint32) bool {
	if lo >= hi {
		return false
	}
	loW, hiW := lo>>6, (hi-1)>>6
	if loW == hiW {
		mask := (^uint64(0) << (lo & 63)) & (^uint64(0) >> (63 - (hi-1)&63))
		return mf.bits[loW]&mask != 0
	}
	if mf.bits[loW]&(^uint64(0)<<(lo&63)) != 0 {
		return true
	}
	for w := loW + 1; w < hiW; w++ {
		if mf.bits[w] != 0 {
			return true
		}
	}
	return mf.bits[hiW]&(^uint64(0)>>(63-(hi-1)&63)) != 0
}
