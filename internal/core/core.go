package core
