package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Cross-machine chunk stealing (MsgSteal / MsgStealGrant).
//
// A skewed partition makes every superstep as slow as its most loaded
// machine: the other machines drain their chunk cursors and then idle in the
// post-task barrier. With Config.EnableWorkStealing, a worker that finds the
// local cursor exhausted instead asks the most loaded peer (by last job's
// task-phase time, piggybacked on the termination allreduce) for work. A
// copier on the victim claims whole chunks from the job's shared cursor —
// the same cursor its own workers race on, so ownership transfer is just a
// fetch-add — and answers with a grant frame carrying everything the thief
// needs to run those nodes locally: per-node adjacency with every neighbor
// ref re-encoded into the thief's frame, edge weights when the job is
// weighted, and a snapshot of the StealSpec.Own property values. The thief
// executes the nodes through the ordinary kernel path; neighbor reductions
// flow through WriteRef exactly as if a victim worker had issued them, so
// the existing write-drain termination protocol accounts for stolen work
// with no new collective.
//
// Two protocol details carry the correctness weight:
//
//   - Residual chunks. A claimed chunk may not fit the grant frame; the
//     unpacked remainder goes on the job's residual queue and is executed by
//     the victim's own workers. The stealsInFlight counter is incremented
//     before the copier's first cursor claim and decremented only after any
//     residual push, so a victim worker may leave the task phase only once
//     it has seen (in order) its own cursor claim fail, stealsInFlight == 0,
//     and an empty residual queue — at that point no grant-in-progress can
//     still return work.
//
//   - Abort safety. A steal request registers its seq in the worker's side
//     map like a read does, so an abort parks it in the stale set and a late
//     grant is recognized and dropped instead of poisoning the next job. A
//     dropped steal or grant frame surfaces through the ordinary
//     RequestTimeout detector and aborts the job, never the process.

// stealingOn reports whether this configuration steals at all; per-job
// eligibility additionally requires the spec to declare a StealSpec.
func (c *Config) stealingOn() bool {
	return c.EnableWorkStealing && !c.DisableWorkStealing && c.NumMachines > 1
}

// stealRuntime is the per-job work-stealing state on one machine.
type stealRuntime struct {
	// inFlight counts copiers currently packing a grant. See the ordering
	// contract in the package comment above: incremented before the first
	// cursor claim, decremented after any residual push.
	inFlight atomic.Int64

	mu       sync.Mutex
	residual []partition.Chunk

	// stolenNS[victim] accumulates the nanoseconds this machine's workers
	// spent executing nodes stolen from victim (thief-side CPU time, summed
	// across workers via atomic adds). The write-drain allreduce ships it so
	// every machine can bill stolen work back to the victim's partition in
	// loadTotals — the repartitioner must see ownership cost, not who
	// happened to execute it. Read by the machine main goroutine after
	// wg.Wait, which orders the workers' final adds.
	stolenNS []int64
}

func (sr *stealRuntime) pushResidual(ch partition.Chunk) {
	sr.mu.Lock()
	sr.residual = append(sr.residual, ch)
	sr.mu.Unlock()
}

func (sr *stealRuntime) popResidual() (partition.Chunk, bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	n := len(sr.residual)
	if n == 0 {
		return partition.Chunk{}, false
	}
	ch := sr.residual[n-1]
	sr.residual = sr.residual[:n-1]
	return ch, true
}

func (sr *stealRuntime) hasResidual() bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return len(sr.residual) > 0
}

// --- victim side (copier) ---------------------------------------------------

// serveSteal answers one MsgSteal request: claim chunks from the current
// job's cursor, pack them into a grant, and send it. Any mismatch — no job,
// a different job id, a job without a StealSpec, or an aborted job — yields
// an empty grant so the thief moves on instead of timing out.
func (m *Machine) serveSteal(h comm.Header, payload []byte) error {
	thief := int(h.Src)
	if thief < 0 || thief >= m.cfg.NumMachines || thief == m.id {
		return fmt.Errorf("steal request from invalid machine %d", h.Src)
	}
	if len(payload) < 8 {
		return fmt.Errorf("truncated steal request from %d", h.Src)
	}
	jobID := leU64(payload)
	resp := m.respPool.Acquire()
	resp.Reset(comm.Header{
		Type:   comm.MsgStealGrant,
		Worker: h.Worker,
		Src:    uint16(m.id),
		Aux:    h.Aux,
	})
	var nodes int
	if jr := m.curJob.Load(); jr != nil && jr.id == jobID && jr.steal != nil && !jr.aborted() {
		sr := jr.steal
		sr.inFlight.Add(1)
		resp.AppendU64(0) // remaining-backlog placeholder, patched below
		nodes = m.packGrant(jr, thief, resp)
		sr.inFlight.Add(-1)
		remaining := int64(len(jr.chunks)) - jr.cursor.Load()
		if remaining < 0 {
			remaining = 0
		}
		putLeU64(resp.Payload()[:8], uint64(remaining))
		if nodes > 0 {
			m.cfg.Obs.Add(m.id, obs.CtrStealGrants, 1)
		}
	} else {
		resp.AppendU64(0) // remaining-backlog hint of an empty grant
	}
	resp.SetCount(uint32(nodes))
	if err := m.ep.Send(thief, resp); err != nil {
		return fmt.Errorf("steal grant to %d: %w", thief, err)
	}
	return nil
}

// packGrant claims chunks from jr's shared cursor and packs their nodes into
// resp until the frame is full or the cursor runs dry, returning how many
// nodes were packed. The caller has already appended the 8-byte
// remaining-backlog placeholder. Per-node wire layout (all u64 LE):
//
//	word 0   victim-local node id (low 32) | primary edge count m1 (high 32)
//	word 1   full out-degree (low 32) | full in-degree (high 32)
//	word 2   secondary edge count m2           — IterBothEdges only
//	words    StealSpec.Own snapshot values     — len(Own) words
//	words    m1 neighbor refs in the thief's frame
//	words    m1 edge weights                   — weighted graphs only
//	words    m2 refs [+ m2 weights]            — IterBothEdges only
func (m *Machine) packGrant(jr *jobRuntime, thief int, resp *comm.Buffer) int {
	spec := jr.spec
	both := spec.Iter == IterBothEdges
	weighted := jr.weights != nil
	own := spec.Steal.Own
	st := m.store
	nodes := 0
	packNode := func(node uint32) bool { // false ⇒ frame full
		m1 := int(jr.rows[node+1] - jr.rows[node])
		m2 := 0
		if both {
			m2 = int(jr.rows2[node+1] - jr.rows2[node])
		}
		words := 2 + len(own) + m1 + m2
		if both {
			words++
		}
		if weighted {
			words += m1 + m2
		}
		if resp.Room() < 8*words {
			return false
		}
		resp.AppendU64(uint64(node) | uint64(uint32(m1))<<32)
		resp.AppendU64(uint64(uint32(st.outDeg[node])) | uint64(uint32(st.inDeg[node]))<<32)
		if both {
			resp.AppendU64(uint64(m2))
		}
		for _, p := range own {
			resp.AppendU64(m.cols[p].load(int(node)))
		}
		for e := jr.rows[node]; e < jr.rows[node+1]; e++ {
			resp.AppendU64(uint64(st.refFor(thief, jr.refs[e])))
		}
		if weighted {
			for e := jr.rows[node]; e < jr.rows[node+1]; e++ {
				resp.AppendU64(math.Float64bits(jr.weights[e]))
			}
		}
		if both {
			for e := jr.rows2[node]; e < jr.rows2[node+1]; e++ {
				resp.AppendU64(uint64(st.refFor(thief, jr.refs2[e])))
			}
			if weighted {
				for e := jr.rows2[node]; e < jr.rows2[node+1]; e++ {
					resp.AppendU64(math.Float64bits(jr.weights2[e]))
				}
			}
		}
		nodes++
		return true
	}
	// packChunk expands one claimed chunk exactly as a worker would
	// (worker.runChunk); when the frame fills mid-chunk the unpacked remainder
	// goes back on the residual queue in the same index space the chunk used,
	// and packChunk reports the frame full so the grant stops.
	packChunk := func(ch partition.Chunk) (full bool) {
		residual := func(at uint32) {
			jr.steal.pushResidual(partition.Chunk{Begin: at, End: ch.End})
			m.cfg.Obs.Add(m.id, obs.CtrStealResidual, 1)
		}
		switch {
		case jr.frontList != nil:
			for i := ch.Begin; i < ch.End; i++ {
				if !packNode(jr.frontList[i]) {
					residual(i)
					return true
				}
			}
		case jr.frontBits != nil:
			bits := jr.frontBits
			for n := ch.Begin; n < ch.End; {
				word := bits[n>>6] >> (n & 63)
				if word == 0 {
					n = (n | 63) + 1
					continue
				}
				n += uint32(trailingZeros64(word))
				if n >= ch.End {
					break
				}
				if !packNode(n) {
					residual(n)
					return true
				}
				n++
			}
		default:
			for node := ch.Begin; node < ch.End; node++ {
				if !packNode(node) {
					residual(node)
					return true
				}
			}
		}
		return false
	}
	for {
		chunkIdx := int(jr.cursor.Add(1)) - 1
		if chunkIdx >= len(jr.chunks) {
			return nodes
		}
		ch := jr.chunks[chunkIdx]
		// Claim the chunk's topology like a worker would: residency advice
		// plus decode-cache pins keeping jr.refs/jr.refs2 valid while the
		// copier reads them. Copier context, so a decode failure aborts the
		// job directly instead of a worker unwind; the chunk stays consumed,
		// which is fine — the job is dead.
		t1, t2, err := jr.claimChunk(ch)
		if err != nil {
			m.abortJob(jr, err)
			return nodes
		}
		full := packChunk(ch)
		t1.Release()
		t2.Release()
		if full {
			return nodes
		}
	}
}

// refFor re-encodes one of this machine's neighbor refs into peer's ref
// frame. The layout and the ghost set are cluster-wide, so the translation
// needs no communication; it mirrors buildLocalCSR's owned → ghosted →
// remote precedence from the peer's point of view.
func (s *localStore) refFor(peer int, ref int64) int64 {
	if ref < 0 {
		if mach, off := unpackRemote(ref); mach == peer {
			return int64(off) // the peer owns it (remote implies not ghosted)
		}
		return ref // remote for this machine and for the peer alike
	}
	if int(ref) < s.numLocal {
		// Owned here: a ghosted node keeps its cluster-wide slot in the
		// peer's frame, anything else becomes a remote ref back at us.
		if slot, ok := s.ghosts.Slot(s.globalOf(uint32(ref))); ok {
			return int64(s.layout.NumLocal(peer)) + int64(slot)
		}
		return packRemote(s.me, uint32(ref))
	}
	// A ghost slot: same slot on the peer unless the peer owns the node.
	slot := int32(ref) - int32(s.numLocal)
	v := s.ghosts.Node(slot)
	if s.layout.Owner(v) == peer {
		return int64(v - s.layout.Starts[peer])
	}
	return int64(s.layout.NumLocal(peer)) + int64(slot)
}

// --- thief side (worker) ----------------------------------------------------

// stolenNode is the decoded state of one granted node, reused across nodes.
// While it is installed as Ctx.stolen, the own-node accessors answer from
// the snapshot and degree fields instead of this machine's columns.
type stolenNode struct {
	victim   int
	node     uint32 // victim-local id
	outDeg   int64
	inDeg    int64
	snap     []uint64 // StealSpec.Own values, in Own order
	refs     []int64  // primary orientation, already in this machine's frame
	weights  []float64
	refs2    []int64 // secondary orientation (IterBothEdges)
	weights2 []float64
}

// stealOrder returns the peer machines worth stealing from, most loaded
// first. A peer qualifies as a victim only on structural skew: the layout
// gives it over 1.25x this machine's degree mass, so it is the straggler of
// every job on this cut. On a balanced cut the sweep is empty — whoever
// drains its cursor first would otherwise raid peers for work they were
// about to do anyway, paying steal protocol and remote-write overhead for
// nothing. Task-phase wall times (the piggybacked load hints) order the
// qualifying victims but deliberately never gate them: wall time measures
// scheduling and wire luck as much as load, and once stealing itself
// flattens the phase the hints converge while the ownership skew persists.
// loadHints is written only by the machine's main goroutine between jobs and
// the worker dispatch channel orders that write before this read; degMass is
// fixed at load time.
func (m *Machine) stealOrder() []int {
	order := make([]int, 0, m.cfg.NumMachines-1)
	hints := m.loadHints
	mass := m.degMass
	for i := 0; i < m.cfg.NumMachines; i++ {
		if i == m.id {
			continue
		}
		if mass == nil || mass[i] > mass[m.id]+mass[m.id]/4 {
			order = append(order, i)
		}
	}
	if hints != nil {
		sort.Slice(order, func(a, b int) bool { return hints[order[a]] > hints[order[b]] })
	} else if mass != nil {
		sort.Slice(order, func(a, b int) bool { return mass[order[a]] > mass[order[b]] })
	}
	return order
}

// stealPhase runs between a worker's cursor exhaustion and its final flush.
// The first half is victim-side: absorb residual chunks until no grant is in
// flight and the queue is empty (see the ordering contract on stealRuntime).
// The second half is thief-side: sweep the peers, most loaded first, and
// execute whatever they grant until everyone reports dry.
func (w *worker) stealPhase(jr *jobRuntime, spec *JobSpec, ctx *Ctx) {
	sr := jr.steal
	for {
		if ch, ok := sr.popResidual(); ok {
			if jr.needsClaim() {
				w.claimChunk(jr, ch)
			}
			w.runChunk(jr, spec, ctx, ch)
			w.releasePins()
			w.drainResponsesSafe()
			continue
		}
		if sr.inFlight.Load() == 0 {
			if !sr.hasResidual() {
				break
			}
			continue // a grant finished packing between the pop and the load
		}
		if jr.aborted() {
			w.unwind()
		}
		w.drainResponsesSafe()
		runtime.Gosched()
	}
	for _, victim := range w.m.stealOrder() {
		for {
			if jr.aborted() {
				w.unwind()
			}
			stolen, left := w.stealFrom(jr, spec, ctx, victim)
			// An empty grant alone does not mean the victim is dry: when the
			// claimed chunk's head node is too big for one frame the victim
			// diverts it to its residual queue and grants nothing, yet may
			// still hold hundreds of stealable chunks behind it. Keep asking
			// while the victim reports unclaimed backlog — every request
			// advances its cursor by at least one chunk, so this terminates.
			if stolen == 0 && left == 0 {
				break // victim is dry; try the next peer
			}
		}
	}
}

// stealFrom asks victim for work and executes a non-empty grant. It returns
// the number of nodes stolen plus the victim's remaining-backlog hint (its
// count of still-unclaimed chunks at grant time): 0 nodes with a non-zero
// hint means the claimed chunk could not be packed into one frame, not that
// the victim is out of work.
func (w *worker) stealFrom(jr *jobRuntime, spec *JobSpec, ctx *Ctx, victim int) (int, int64) {
	buf := w.acquireReq()
	w.seq++
	seq := w.seq
	buf.Reset(comm.Header{
		Type:   comm.MsgSteal,
		Worker: uint8(w.id),
		Src:    uint16(w.m.id),
		Count:  1,
		Aux:    uint64(seq),
	})
	buf.AppendU64(jr.id)
	// Register the seq like a read's: if the job aborts mid-flight the seq
	// moves to the stale set and a late grant is dropped, not fatal.
	w.sides[seq] = w.sideNew()
	w.outstanding++
	w.reg.Add(w.m.id, obs.CtrStealRequests, 1)
	w.mustSend(victim, buf)
	var t int64
	if w.reg != nil {
		t = w.reg.Clock()
	}

	var payload []byte
	count := 0
	for payload == nil {
		rb := w.awaitResponse()
		if h := rb.Header(); h.Type == comm.MsgStealGrant {
			gseq := uint32(h.Aux)
			if gseq != seq {
				rb.Release()
				if _, wasStale := w.stale[gseq]; wasStale {
					delete(w.stale, gseq) // straggler grant of an aborted job
					continue
				}
				w.fail(fmt.Errorf("core: machine %d worker %d: steal grant with unexpected seq %d (want %d)", w.m.id, w.id, gseq, seq))
			}
			side := w.sides[seq]
			delete(w.sides, seq)
			w.sideRecycle(side)
			w.outstanding--
			count = int(h.Count)
			payload = w.payloadNew(len(rb.Payload()))
			copy(payload, rb.Payload())
			rb.Release()
			continue
		}
		w.processResponse(rb) // an unrelated (possibly stale) response
	}
	var left int64
	if len(payload) >= 8 {
		left = int64(leU64(payload))
	}
	if count == 0 {
		w.payloadRecycle(payload)
		return 0, left
	}
	execStart := time.Now()
	edges, err := w.runStolen(jr, spec, ctx, payload, count, victim)
	atomic.AddInt64(&jr.steal.stolenNS[victim], time.Since(execStart).Nanoseconds())
	w.payloadRecycle(payload)
	if err != nil {
		w.fail(err)
	}
	w.reg.Add(w.m.id, obs.CtrStolenNodes, int64(count))
	w.reg.Add(w.m.id, obs.CtrStolenEdges, edges)
	if w.reg != nil {
		w.reg.Span(w.m.id, w.id, obs.SpanSteal, jr.id, t, uint64(victim)<<48|uint64(count))
	}
	return count, left
}

// runStolen decodes and executes one grant payload (already copied out of
// the frame). Every length and ref is validated before use so a truncated or
// corrupted grant aborts the job instead of crashing the process.
func (w *worker) runStolen(jr *jobRuntime, spec *JobSpec, ctx *Ctx, payload []byte, count, victim int) (int64, error) {
	trunc := func() error {
		return fmt.Errorf("core: machine %d worker %d: truncated steal grant from %d", w.m.id, w.id, victim)
	}
	if len(payload) < 8 {
		return 0, trunc()
	}
	both := spec.Iter == IterBothEdges
	weighted := jr.weights != nil
	own := spec.Steal.Own
	sn := &w.stolen
	sn.victim = victim
	numVictim := w.m.store.layout.NumLocal(victim)
	pos := 8 // past the remaining-backlog hint
	var edges int64
	for i := 0; i < count; i++ {
		if len(payload)-pos < 16 {
			return edges, trunc()
		}
		h0 := leU64(payload[pos:])
		h1 := leU64(payload[pos+8:])
		pos += 16
		sn.node = uint32(h0)
		if int(sn.node) >= numVictim {
			return edges, fmt.Errorf("core: machine %d worker %d: steal grant from %d names node %d of %d", w.m.id, w.id, victim, sn.node, numVictim)
		}
		m1 := int(uint32(h0 >> 32))
		sn.outDeg = int64(uint32(h1))
		sn.inDeg = int64(uint32(h1 >> 32))
		m2 := 0
		if both {
			if len(payload)-pos < 8 {
				return edges, trunc()
			}
			m2 = int(uint32(leU64(payload[pos:])))
			pos += 8
		}
		words := len(own) + m1 + m2
		if weighted {
			words += m1 + m2
		}
		if len(payload)-pos < 8*words {
			return edges, trunc()
		}
		sn.snap = sn.snap[:0]
		for range own {
			sn.snap = append(sn.snap, leU64(payload[pos:]))
			pos += 8
		}
		var ok bool
		if sn.refs, ok = w.decodeStolenRefs(sn.refs[:0], payload, &pos, m1); !ok {
			return edges, fmt.Errorf("core: machine %d worker %d: steal grant from %d carries an out-of-range ref", w.m.id, w.id, victim)
		}
		sn.weights = decodeStolenWeights(sn.weights[:0], payload, &pos, m1, weighted)
		if both {
			if sn.refs2, ok = w.decodeStolenRefs(sn.refs2[:0], payload, &pos, m2); !ok {
				return edges, fmt.Errorf("core: machine %d worker %d: steal grant from %d carries an out-of-range ref", w.m.id, w.id, victim)
			}
			sn.weights2 = decodeStolenWeights(sn.weights2[:0], payload, &pos, m2, weighted)
		}
		w.runStolenNode(jr, spec, ctx, sn)
		edges += int64(m1 + m2)
		w.drainResponsesSafe()
	}
	return edges, nil
}

// decodeStolenRefs appends n validated refs from payload at *pos.
func (w *worker) decodeStolenRefs(dst []int64, payload []byte, pos *int, n int) ([]int64, bool) {
	st := w.m.store
	limit := int64(st.numLocal + st.ghosts.Len())
	for i := 0; i < n; i++ {
		ref := int64(leU64(payload[*pos:]))
		*pos += 8
		if ref >= 0 {
			if ref >= limit {
				return dst, false
			}
		} else {
			mach, off := unpackRemote(ref)
			if mach < 0 || mach >= w.m.cfg.NumMachines || int(off) >= st.layout.NumLocal(mach) {
				return dst, false
			}
		}
		dst = append(dst, ref)
	}
	return dst, true
}

func decodeStolenWeights(dst []float64, payload []byte, pos *int, n int, weighted bool) []float64 {
	if !weighted {
		return nil
	}
	for i := 0; i < n; i++ {
		dst = append(dst, math.Float64frombits(leU64(payload[*pos:])))
		*pos += 8
	}
	return dst
}

// runStolenNode is runNode for a stolen node: same iteration shape, but the
// adjacency comes from the grant and Ctx.stolen redirects the own-node
// accessors to the shipped snapshot.
func (w *worker) runStolenNode(jr *jobRuntime, spec *JobSpec, ctx *Ctx, sn *stolenNode) {
	ctx.Node = sn.node
	ctx.Aux = 0
	ctx.skip = false
	ctx.stolen = sn
	ctx.weights = sn.weights
	defer func() {
		ctx.stolen = nil
		ctx.weights = jr.weights
	}()
	for e := range sn.refs {
		ctx.nbr = sn.refs[e]
		ctx.edge = int64(e)
		spec.Task.Run(ctx)
		if ctx.skip {
			return
		}
	}
	if spec.Iter == IterBothEdges {
		ctx.weights = sn.weights2
		for e := range sn.refs2 {
			ctx.nbr = sn.refs2[e]
			ctx.edge = int64(e)
			spec.Task.Run(ctx)
			if ctx.skip {
				return
			}
		}
	}
}

// errStolenCtx reports a Ctx operation forbidden in stolen mode — the kernel
// violates the contract its StealSpec declared.
func errStolenCtx(w *worker, what string) error {
	return fmt.Errorf("core: machine %d worker %d: %s on a stolen node violates the job's StealSpec contract", w.m.id, w.id, what)
}

// stolenWord answers an own-node property read from the grant snapshot.
func (c *Ctx) stolenWord(p PropID) uint64 {
	for i, q := range c.w.job.spec.Steal.Own {
		if q == p {
			return c.stolen.snap[i]
		}
	}
	c.w.fail(fmt.Errorf("core: stolen task read property %d not listed in StealSpec.Own", p))
	return 0
}

// stolenGlobal is NodeGlobal for a stolen node: the id lives in the victim's
// range, not this machine's.
func (c *Ctx) stolenGlobal() graph.NodeID {
	return c.w.m.store.layout.GlobalOf(c.stolen.victim, c.Node)
}
