package core

import (
	"encoding/binary"
	"fmt"
	mathbits "math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/reduce"
	"repro/internal/store"
)

// worker is one RTC worker goroutine (paper §3.2). It claims edge-balanced
// chunks of nodes from the job's shared cursor, drives Task.Run over them,
// buffers remote reads/writes per destination machine, and — when responses
// arrive on its response queue — continues the originating tasks via
// ReadDone, always on this same goroutine ("a task is always executed by
// the same single thread, [so] there is no need to protect private fields
// of a task object with locks").
type worker struct {
	m  *Machine
	id int

	jobCh  chan *jobRuntime
	respCh <-chan *comm.Buffer

	// Per-destination partially filled request messages, lazily acquired.
	readBufs  []*comm.Buffer
	writeBufs []*comm.Buffer

	// The paper's side data structures (§3.2): for each in-flight read
	// message, the ordered log of (node, slot, aux) records; keyed by the
	// message's sequence number because copiers on the remote machine may
	// answer out of order. With read combining, several side records can
	// share one payload slot, so len(side) >= the message's record count.
	sides   map[uint32][]sideRec
	curSide [][]sideRec
	seq     uint32

	// stale holds the seqs of requests that were in flight when a job
	// aborted. Their responses may still arrive (late, reordered, or served
	// by a copier after the abort); matching them here lets the worker
	// release and ignore them instead of treating them as protocol
	// violations during the next job. Seqs are never reused (the counter is
	// monotone for the worker's lifetime), so a stale seq cannot collide
	// with a live one.
	stale map[uint32]struct{}

	// Read combining (duplicate remote-read elimination): dedup[dst] maps a
	// packed (prop, offset) address to its record slot in the currently open
	// read message toward dst. Repeated reads of the same address within one
	// message window append only a side record — no wire bytes — and the one
	// response word fans out to every waiting continuation in request order.
	combine     bool
	dedup       []map[uint64]uint32
	dedupHits   int64
	dedupMisses int64

	// Write combining (sender side): wdedup[dst] maps a write record's meta
	// word (prop, op, offset) to the byte offset of its value word in the
	// currently open write message toward dst. A repeated reduction to the
	// same address within one message window folds into the buffered value
	// in place — zero additional wire records — which is what keeps dense
	// push supersteps from flooding the write channels.
	wcombine  bool
	wdedup    []map[uint64]int
	wcombHits int64

	// maxSide caps side-structure growth per message: all-duplicate windows
	// never fill the wire buffer, so without a cap the side log (and the
	// response fan-out burst) would grow with chunk size instead of message
	// size.
	maxSide int

	// Wire compression (sorted delta-varint batch encoding, see compress.go):
	// worker-owned scratch so the flush hot path allocates nothing.
	compress    bool
	keyScratch  []uint64
	tagScratch  []uint64
	slotScratch []uint64
	encScratch  []byte
	sorter      u64PairSorter

	// outstanding counts in-flight request frames awaiting a response.
	outstanding int

	// sideFree recycles side-structure slices. Sides always return to the
	// worker that created them (responses route back to the same worker), so
	// no synchronization is needed.
	sideFree [][]sideRec

	// payloadFree recycles payload scratch buffers (see processResponse).
	payloadFree [][]byte

	// privSeg[p] is this worker's private ghost segment for property p in
	// the current job, or nil when p is not privatized.
	privSeg [][]uint64

	// cols caches the machine's property columns for the duration of a job,
	// shortening the per-edge access path.
	cols []*column

	ctx Ctx
	job *jobRuntime

	// stolen is the thief-side scratch for decoding steal-grant frames,
	// reused across stolen nodes (see steal.go).
	stolen stolenNode

	// pin1/pin2 hold the decode-cache pins of the chunk this worker is
	// currently running (compressed stores only). Worker fields rather than
	// locals so abortCleanup can release them after an unwind mid-chunk.
	pin1, pin2 store.PinToken

	// reg is the observability registry (nil when off). rttStart maps an
	// in-flight request seq to its flush Clock so processResponse can record
	// the remote-read round trip; allocated only when reg is attached.
	reg      *obs.Registry
	rttStart map[uint32]int64

	// endTime is when this worker finished its last task of the current job
	// (including continuations) — the raw data behind Figure 6c.
	endTime time.Time
}

// sideRec is one entry of the side structure: enough to restore the task
// context when its value arrives, plus the payload slot its value occupies
// in the response (several records share a slot under read combining).
type sideRec struct {
	node uint32
	slot uint32
	aux  uint64
}

const (
	readRecSize  = 8  // prop(16) | offset(32) packed into a u64
	writeRecSize = 16 // prop(16)|op(8)|offset(32) word + value word

	// dedupSavedPerHit is the wire traffic one combining hit elides: the
	// 8-byte request record plus the 8-byte response word.
	dedupSavedPerHit = readRecSize + 8
)

func newWorker(m *Machine, id int) *worker {
	w := &worker{
		m:         m,
		id:        id,
		jobCh:     make(chan *jobRuntime, 1),
		respCh:    m.router.WorkerResp(id),
		readBufs:  make([]*comm.Buffer, m.cfg.NumMachines),
		writeBufs: make([]*comm.Buffer, m.cfg.NumMachines),
		sides:     make(map[uint32][]sideRec),
		stale:     make(map[uint32]struct{}),
		curSide:   make([][]sideRec, m.cfg.NumMachines),
		combine:   !m.cfg.DisableReadCombining,
		compress:  !m.cfg.DisableWireCompression,
		dedup:     make([]map[uint64]uint32, m.cfg.NumMachines),
		wcombine:  !m.cfg.DisableWriteCombining,
		wdedup:    make([]map[uint64]int, m.cfg.NumMachines),
		reg:       m.cfg.Obs,
	}
	if w.reg != nil {
		w.rttStart = make(map[uint32]int64)
	}
	w.maxSide = 8 * ((m.cfg.BufferSize - comm.HeaderSize) / readRecSize)
	if w.maxSide < 64 {
		w.maxSide = 64
	}
	w.ctx.w = w
	return w
}

// loop is the persistent worker goroutine body: workers are created once at
// startup (paper: "a set of worker threads is initialized by the Task
// Manager at system start up") and receive one jobRuntime per parallel
// region.
func (w *worker) loop() {
	for jr := range w.jobCh {
		w.runJob(jr)
		jr.wg.Done()
	}
}

// abortUnwind is the sentinel the worker panics with to unwind out of
// arbitrarily nested task callbacks when its job aborts. Task callbacks
// cannot return errors, so this is the only way to get from deep inside
// Task.Run/ReadDone back to runJob's frame; the deferred recover there is
// the sole handler, and any other panic value is re-raised untouched.
type abortUnwind struct{}

// fail records err as the job's root cause (first error wins, peers are
// notified) and unwinds this worker out of the job. Never returns.
func (w *worker) fail(err error) {
	w.m.abortJob(w.job, err)
	panic(abortUnwind{})
}

// unwind exits the job without contributing an error — used when the worker
// merely observes an abort someone else initiated. Never returns.
func (w *worker) unwind() {
	panic(abortUnwind{})
}

// abortCleanup restores the worker's invariants after an abort unwound it
// mid-job: partial request messages are released back to their pool,
// in-flight seqs move to the stale set so their late responses are
// recognized and dropped, and per-job state is reset so the next job starts
// clean. Runs on the worker goroutine (from runJob's recover).
func (w *worker) abortCleanup() {
	for d := range w.readBufs {
		if buf := w.readBufs[d]; buf != nil {
			buf.Release()
			w.readBufs[d] = nil
		}
		if buf := w.writeBufs[d]; buf != nil {
			buf.Release()
			w.writeBufs[d] = nil
		}
		if w.dedup[d] != nil {
			clear(w.dedup[d])
		}
		if w.wdedup[d] != nil {
			clear(w.wdedup[d])
		}
		if side := w.curSide[d]; side != nil {
			w.sideRecycle(side)
			w.curSide[d] = nil
		}
	}
	for seq, side := range w.sides {
		w.stale[seq] = struct{}{}
		w.sideRecycle(side)
		delete(w.sides, seq)
	}
	w.outstanding = 0
	w.releasePins()
	w.dedupHits, w.dedupMisses = 0, 0
	w.wcombHits = 0
	if w.rttStart != nil {
		clear(w.rttStart) // the seqs moved to the stale set; no RTT to record
	}
	w.endTime = time.Now()
	w.job = nil
}

func (w *worker) runJob(jr *jobRuntime) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortUnwind); !ok {
				panic(r) // a real bug, not a job abort — keep crashing
			}
			w.abortCleanup()
		}
	}()
	w.job = jr
	w.cols = w.m.cols
	w.ctx.weights = jr.weights
	if cap(w.privSeg) < len(w.m.cols) {
		w.privSeg = make([][]uint64, len(w.m.cols))
	} else {
		w.privSeg = w.privSeg[:len(w.m.cols)]
		for i := range w.privSeg {
			w.privSeg[i] = nil
		}
	}
	for _, ws := range jr.privProps {
		w.privSeg[ws.Prop] = w.m.cols[ws.Prop].ensurePriv(w.id, ws.Op)
	}

	spec := jr.spec
	ctx := &w.ctx
	for {
		chunkIdx := int(jr.cursor.Add(1)) - 1
		if chunkIdx >= len(jr.chunks) {
			break
		}
		if jr.aborted() {
			w.unwind()
		}
		if jr.needsClaim() {
			w.claimChunk(jr, jr.chunks[chunkIdx])
		}
		w.runChunk(jr, spec, ctx, jr.chunks[chunkIdx])
		w.releasePins()
		// Opportunistically run continuations between chunks so response
		// queues and buffer pools keep draining while we still have tasks.
		w.drainResponsesSafe()
	}

	if jr.steal != nil {
		// Work stealing: absorb residual chunks that copiers handed back,
		// then go steal from the loaded peers (see steal.go).
		w.stealPhase(jr, spec, ctx)
	}

	// Task list exhausted: flush partial messages, then wait for and run all
	// continuations. Continuations may buffer further requests, so flushing
	// repeats before every blocking wait.
	w.flushAll()
	for w.outstanding > 0 {
		if jr.aborted() {
			w.unwind()
		}
		buf := w.awaitResponse()
		w.processResponse(buf)
		w.drainResponses()
		w.flushAll()
	}
	if len(w.sides) != 0 {
		// Bookkeeping broke (outstanding hit zero with side structures still
		// registered): fail the job rather than crash — abortCleanup parks
		// the dangling seqs in the stale set so any response that does show
		// up later is dropped instead of corrupting the next job.
		w.fail(fmt.Errorf("core: machine %d worker %d finished job with %d dangling side structures", w.m.id, w.id, len(w.sides)))
	}
	if w.dedupHits != 0 || w.dedupMisses != 0 {
		w.m.ep.Metrics().RecordReadDedup(w.dedupHits, w.dedupMisses, dedupSavedPerHit*w.dedupHits)
		w.reg.Add(w.m.id, obs.CtrDedupHits, w.dedupHits)
		w.reg.Add(w.m.id, obs.CtrDedupMisses, w.dedupMisses)
		w.reg.Add(w.m.id, obs.CtrDedupBytesSaved, dedupSavedPerHit*w.dedupHits)
		w.dedupHits, w.dedupMisses = 0, 0
	}
	if w.wcombHits != 0 {
		w.m.ep.Metrics().RecordWriteCombine(w.wcombHits, writeRecSize*w.wcombHits)
		w.reg.Add(w.m.id, obs.CtrWriteCombineHits, w.wcombHits)
		w.reg.Add(w.m.id, obs.CtrWriteCombineBytesSaved, writeRecSize*w.wcombHits)
		w.wcombHits = 0
	}
	w.endTime = time.Now()
	w.job = nil
}

// claimChunk runs jr.claimChunk for this worker, parking the pin tokens on
// the worker so an abort unwind mid-chunk still finds and releases them. A
// decode failure fails the job (it indicates arena corruption — every block
// was strictly validated at Open).
func (w *worker) claimChunk(jr *jobRuntime, ch partition.Chunk) {
	t1, t2, err := jr.claimChunk(ch)
	if err != nil {
		w.fail(err)
	}
	w.pin1, w.pin2 = t1, t2
}

// releasePins drops the current chunk's decode-cache pins. Idempotent (the
// tokens are zero or self-clearing), so runJob's loop and abortCleanup can
// both call it.
func (w *worker) releasePins() {
	w.pin1.Release()
	w.pin2.Release()
}

// runChunk drives the task over one chunk in the job's iteration mode. It is
// shared by the main claim loop and the steal phase's residual drain.
func (w *worker) runChunk(jr *jobRuntime, spec *JobSpec, ctx *Ctx, ch partition.Chunk) {
	switch {
	case jr.frontList != nil:
		// Sparse frontier: chunk indices address the sorted member list.
		for i := ch.Begin; i < ch.End; i++ {
			w.runNode(jr, spec, ctx, jr.frontList[i])
		}
	case jr.frontBits != nil:
		// Dense frontier: node-id chunks, word-skipping bitmap scan.
		bits := jr.frontBits
		for n := ch.Begin; n < ch.End; {
			word := bits[n>>6] >> (n & 63)
			if word == 0 {
				n = (n | 63) + 1
				continue
			}
			n += uint32(trailingZeros64(word))
			if n >= ch.End {
				break
			}
			w.runNode(jr, spec, ctx, n)
			n++
		}
	default:
		for node := ch.Begin; node < ch.End; node++ {
			w.runNode(jr, spec, ctx, node)
		}
	}
}

// runNode drives the job's task over one node: filter, then the iterator's
// Run invocations. A task calling Ctx.SkipNode ends the node's remaining
// edge invocations early (the pull path's exit once its answer arrived).
func (w *worker) runNode(jr *jobRuntime, spec *JobSpec, ctx *Ctx, node uint32) {
	ctx.Node = node
	ctx.Aux = 0
	ctx.skip = false
	if spec.Filter != nil && !spec.Filter(ctx) {
		return
	}
	switch spec.Iter {
	case IterNodes:
		ctx.nbr = 0
		ctx.edge = -1
		spec.Task.Run(ctx)
	case IterBothEdges:
		for e := jr.rows[node]; e < jr.rows[node+1]; e++ {
			ctx.nbr = jr.refs[e]
			ctx.edge = e
			spec.Task.Run(ctx)
			if ctx.skip {
				return
			}
		}
		ctx.weights = jr.weights2
		for e := jr.rows2[node]; e < jr.rows2[node+1]; e++ {
			ctx.nbr = jr.refs2[e]
			ctx.edge = e
			spec.Task.Run(ctx)
			if ctx.skip {
				break
			}
		}
		ctx.weights = jr.weights
	default: // IterOutEdges / IterInEdges: jr carries the orientation
		for e := jr.rows[node]; e < jr.rows[node+1]; e++ {
			ctx.nbr = jr.refs[e]
			ctx.edge = e
			spec.Task.Run(ctx)
			if ctx.skip {
				return
			}
		}
	}
}

// trailingZeros64 is math/bits.TrailingZeros64 (local name so the bitmap
// scan can shadow "bits" for the slice).
func trailingZeros64(x uint64) int { return mathbits.TrailingZeros64(x) }

// drainResponses runs all currently queued continuations without blocking.
func (w *worker) drainResponses() {
	for {
		select {
		case buf, ok := <-w.respCh:
			if !ok {
				return
			}
			w.processResponse(buf)
		default:
			return
		}
	}
}

// awaitResponse blocks for the next response frame while staying receptive
// to the two ways a faulted job ends: the job's abort channel closing (a
// peer or another local goroutine hit an error) and the request timeout
// expiring (a dropped frame or dead peer produces no error, only silence).
// Returns a frame or unwinds; never returns nil.
func (w *worker) awaitResponse() *comm.Buffer {
	var timeoutCh <-chan time.Time
	if d := w.m.cfg.RequestTimeout; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case buf, ok := <-w.respCh:
		if !ok {
			w.fail(fmt.Errorf("core: machine %d worker %d: shutdown while awaiting %d response frame(s)", w.m.id, w.id, w.outstanding))
		}
		return buf
	case <-w.job.abortCh:
		w.unwind()
	case <-timeoutCh:
		w.fail(fmt.Errorf("core: machine %d worker %d: timed out after %v awaiting %d response frame(s)", w.m.id, w.id, w.m.cfg.RequestTimeout, w.outstanding))
	}
	return nil // unreachable: every branch above returns or unwinds
}

// drainResponsesSafe is drainResponses with the context saved and restored:
// continuations run through the worker's single shared Ctx, and callers that
// are mid-task (between chunks, or stalled acquiring a buffer inside a task
// callback) must not observe their Node/Aux/nbr clobbered.
func (w *worker) drainResponsesSafe() {
	saved := w.ctx
	w.drainResponses()
	w.ctx = saved
}

// processResponse matches a response frame to its side structure and invokes
// the continuation for each record, in request order (paper §3.2 step 4).
//
// The payload is copied out and the frame released BEFORE any continuation
// runs. This ordering is load-bearing for deadlock freedom: continuations
// can block on request-buffer back-pressure (nested acquireReq), and a
// worker must never hold a response buffer while blocked — copiers waiting
// on the response pool are the very thing that recycles the request buffers
// the worker is waiting for.
func (w *worker) processResponse(buf *comm.Buffer) {
	h := buf.Header()
	seq := uint32(h.Aux)
	side, ok := w.sides[seq]
	if !ok {
		buf.Release()
		if _, wasStale := w.stale[seq]; wasStale {
			// A straggler from an aborted job: its side structure was
			// recycled during cleanup, so just drop the frame.
			delete(w.stale, seq)
			return
		}
		w.fail(fmt.Errorf("core: machine %d worker %d: response with unknown seq %d", w.m.id, w.id, seq))
	}
	delete(w.sides, seq)
	w.outstanding--
	if w.rttStart != nil {
		if t, ok := w.rttStart[seq]; ok {
			delete(w.rttStart, seq)
			w.reg.Span(w.m.id, w.id, obs.SpanReadRTT, w.job.id, t, uint64(h.Src))
			w.reg.Observe(w.m.id, obs.HistReadRTT, time.Duration(w.reg.Clock()-t))
		}
	}
	payload := w.payloadNew(len(buf.Payload()))
	copy(payload, buf.Payload())
	typ := h.Type
	buf.Release()

	ctx := &w.ctx
	switch typ {
	case comm.MsgReadResp:
		// The response carries h.Count unique value words; the side log can
		// be longer under read combining. Each record's slot picks its word,
		// so one response word fans out to every continuation that waited on
		// the same (prop, offset) — still in request order.
		//
		// Validate every slot before running any continuation: a truncated
		// frame (wire fault) must surface as a job error, not an
		// index-out-of-range crash halfway through the fan-out.
		words := len(payload) / 8
		for i := range side {
			if int(side[i].slot) >= words {
				w.sideRecycle(side)
				w.payloadRecycle(payload)
				w.fail(fmt.Errorf("core: machine %d worker %d: truncated read response (seq %d: slot %d, %d words)", w.m.id, w.id, seq, side[i].slot, words))
			}
		}
		for i := range side {
			r := &side[i]
			ctx.Node = r.node
			ctx.Aux = r.aux
			ctx.nbr = 0
			ctx.edge = -1
			w.job.spec.Task.ReadDone(ctx, leU64(payload[8*int(r.slot):]))
		}
	case comm.MsgRMIResp:
		rt, isRMI := w.job.spec.Task.(RMITask)
		if !isRMI || len(side) == 0 {
			w.sideRecycle(side)
			w.payloadRecycle(payload)
			w.fail(fmt.Errorf("core: machine %d worker %d: unexpected RMI response (seq %d)", w.m.id, w.id, seq))
		}
		ctx.Node = side[0].node
		ctx.Aux = side[0].aux
		ctx.nbr = 0
		ctx.edge = -1
		rt.RMIDone(ctx, payload)
	default:
		w.sideRecycle(side)
		w.payloadRecycle(payload)
		w.fail(fmt.Errorf("core: machine %d worker %d: unexpected frame type %v on response queue", w.m.id, w.id, typ))
	}
	w.sideRecycle(side)
	w.payloadRecycle(payload)
}

// payloadNew returns an n-byte scratch slice. A freelist (not a single
// reusable buffer) because processResponse nests: a continuation stalled on
// back-pressure drains further responses re-entrantly.
func (w *worker) payloadNew(n int) []byte {
	if l := len(w.payloadFree); l > 0 {
		s := w.payloadFree[l-1]
		w.payloadFree = w.payloadFree[:l-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	if n < 256 {
		n = 256
	}
	return make([]byte, n)
}

func (w *worker) payloadRecycle(p []byte) {
	w.payloadFree = append(w.payloadFree, p)
}

// sideRecycle keeps side slices for reuse to avoid per-message allocation.
func (w *worker) sideRecycle(side []sideRec) {
	w.sideFree = append(w.sideFree, side[:0])
}

// sideNew returns an empty side slice, reusing a recycled one if available.
func (w *worker) sideNew() []sideRec {
	if n := len(w.sideFree); n > 0 {
		s := w.sideFree[n-1]
		w.sideFree = w.sideFree[:n-1]
		return s
	}
	return make([]sideRec, 0, 128)
}

// acquireReq obtains a request buffer, draining responses while stalled.
// Draining here is what makes back-pressure deadlock-free: if this worker
// blocked hard, its response queue would fill, the poller would stall, the
// inbox would fill, remote copiers would block sending to us and stop
// processing (and releasing) the very request frames we are waiting for.
//
// Because continuations run here, the caller must treat acquireReq as a
// re-entrancy point: the worker Ctx is saved/restored, and any per-
// destination buffer slot read before calling must be re-checked after.
func (w *worker) acquireReq() *comm.Buffer {
	pool := w.m.reqPool
	if buf, ok := pool.TryAcquire(); ok {
		return buf
	}
	saved := w.ctx
	defer func() { w.ctx = saved }()
	var timeoutCh <-chan time.Time
	if d := w.m.cfg.RequestTimeout; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeoutCh = t.C
	}
	for {
		// Under back-pressure a stalled worker must not sit on buffers, or
		// all workers could hold every pooled buffer as partials while each
		// waits for one more. Flushing inside the loop matters: the
		// continuations run below can install fresh partials after any
		// earlier flush. Flushed frames return to the pool once remote
		// copiers process them, so the cycle always drains.
		w.flushAll()
		select {
		case buf := <-pool.C():
			pool.NoteAcquired()
			return buf
		case resp, ok := <-w.respCh:
			if !ok {
				w.fail(fmt.Errorf("core: machine %d worker %d: shutdown while acquiring request buffer", w.m.id, w.id))
			}
			w.processResponse(resp)
			if buf, ok := pool.TryAcquire(); ok {
				return buf
			}
		case <-w.job.abortCh:
			w.unwind()
		case <-timeoutCh:
			w.fail(fmt.Errorf("core: machine %d worker %d: timed out after %v acquiring request buffer (%d responses outstanding)", w.m.id, w.id, w.m.cfg.RequestTimeout, w.outstanding))
		}
	}
}

// bufferRead appends a read request toward machine dst (paper §3.2 steps
// 1-3): the 8-byte address record goes into the message, the (node, slot,
// aux) record into the side structure, and a full message is sent
// immediately. With combining on, a repeated (prop, offset) within the open
// message window appends only the side record, pointing at the slot the
// first occurrence claimed — high-degree pulls collapse to one wire record
// per distinct remote address per window.
func (w *worker) bufferRead(dst int, p PropID, offset uint32, node uint32, aux uint64) {
	key := uint64(p)<<48 | uint64(offset)
	if w.combine {
		if slot, ok := w.dedup[dst][key]; ok {
			w.appendCombined(dst, slot, node, aux)
			return
		}
	}
	buf := w.readBufs[dst]
	if buf == nil {
		nb := w.acquireReq()
		// Re-check: a continuation running inside acquireReq may itself have
		// buffered a read toward dst and installed a message already.
		if w.readBufs[dst] != nil {
			nb.Release()
			buf = w.readBufs[dst]
			// That continuation may even have buffered this very address —
			// the dedup index must be consulted again.
			if w.combine {
				if slot, ok := w.dedup[dst][key]; ok {
					w.appendCombined(dst, slot, node, aux)
					return
				}
			}
		} else {
			nb.Reset(comm.Header{Type: comm.MsgReadReq, Worker: uint8(w.id), Src: uint16(w.m.id)})
			w.readBufs[dst] = nb
			buf = nb
		}
	}
	slot := uint32(len(buf.Payload()) / readRecSize)
	buf.AppendU64(key)
	if w.combine {
		idx := w.dedup[dst]
		if idx == nil {
			idx = make(map[uint64]uint32, 256)
			w.dedup[dst] = idx
		}
		idx[key] = slot
		w.dedupMisses++
	}
	side := w.curSide[dst]
	if side == nil {
		side = w.sideNew()
	}
	w.curSide[dst] = append(side, sideRec{node: node, slot: slot, aux: aux})
	if buf.Room() < readRecSize || len(w.curSide[dst]) >= w.maxSide {
		w.flushRead(dst)
	}
}

// appendCombined records a dedup hit: side record only, no wire bytes.
func (w *worker) appendCombined(dst int, slot uint32, node uint32, aux uint64) {
	w.dedupHits++
	w.curSide[dst] = append(w.curSide[dst], sideRec{node: node, slot: slot, aux: aux})
	if len(w.curSide[dst]) >= w.maxSide {
		w.flushRead(dst)
	}
}

// bufferWrite appends a write (reduction) record toward machine dst. With
// write combining on, a repeated (prop, op, offset) within the open message
// window folds into the already-buffered value word in place — the record
// count, the wire bytes, and the receiver's atomic applies all shrink, which
// is what makes dense push supersteps affordable.
func (w *worker) bufferWrite(dst int, p PropID, op reduce.Op, offset uint32, word uint64) {
	meta := uint64(p)<<48 | uint64(op)<<40 | uint64(offset)
	if w.wcombine && w.tryCombineWrite(dst, p, op, meta, word) {
		return
	}
	buf := w.writeBufs[dst]
	if buf == nil {
		nb := w.acquireReq()
		// Re-check as in bufferRead: acquireReq is a re-entrancy point. A
		// continuation may have installed a message toward dst — and may
		// even have buffered this very address, so the combine index must
		// be consulted again.
		if w.writeBufs[dst] != nil {
			nb.Release()
			buf = w.writeBufs[dst]
			if w.wcombine && w.tryCombineWrite(dst, p, op, meta, word) {
				return
			}
		} else {
			// Aux carries the job id as an epoch stamp: the receiving copier
			// drops write frames from a job that is no longer current, so a
			// straggler from an aborted run can never advance writesApplied
			// against a reset drain baseline.
			nb.Reset(comm.Header{Type: comm.MsgWriteReq, Worker: uint8(w.id), Src: uint16(w.m.id), Aux: w.job.id})
			w.writeBufs[dst] = nb
			buf = nb
		}
	}
	if w.wcombine {
		idx := w.wdedup[dst]
		if idx == nil {
			idx = make(map[uint64]int, 256)
			w.wdedup[dst] = idx
		}
		idx[meta] = len(buf.Payload()) + 8 // the value word follows the meta word
	}
	buf.AppendU64(meta)
	buf.AppendU64(word)
	if buf.Room() < writeRecSize {
		w.flushWrite(dst)
	}
}

// writeActivating is the WriteRef path for properties with
// WriteSpec.ActivateInto: owned-local targets apply immediately and, when the
// stored word changed, activate into this worker's build shard; ghosted
// targets bypass ghost accumulation and ship as explicit records to the
// owner, whose copier applies and activates them before the termination
// allreduce. slot is the 0-based build slot.
func (w *worker) writeActivating(ref int64, p PropID, op reduce.Op, word uint64, slot int) {
	st := w.m.store
	if ref >= 0 {
		if int(ref) < st.numLocal {
			if w.cols[p].applyWordChanged(int(ref), op, word) {
				b := w.job.builds[slot]
				b.shards[w.id] = append(b.shards[w.id], uint32(ref))
			}
			return
		}
		// A ghost ref: route around the ghost copy. If this machine owns the
		// original (its own hub, ghosted cluster-wide), apply in place.
		g := int32(ref) - int32(st.numLocal)
		if own := w.m.ghostOwned[g]; own >= 0 {
			if w.cols[p].applyWordChanged(int(own), op, word) {
				b := w.job.builds[slot]
				b.shards[w.id] = append(b.shards[w.id], uint32(own))
			}
			return
		}
		global := st.ghosts.Node(g)
		w.bufferWrite(st.layout.Owner(global), p, op, uint32(st.layout.LocalOffset(global)), word)
		return
	}
	mach, off := unpackRemote(ref)
	w.bufferWrite(mach, p, op, off, word)
}

// tryCombineWrite folds word into the open write message's buffered value
// for meta, if one exists. Payload() exposes the live frame, so the merge is
// an in-place 8-byte rewrite using the column's reduction arithmetic.
func (w *worker) tryCombineWrite(dst int, p PropID, op reduce.Op, meta, word uint64) bool {
	if w.writeBufs[dst] == nil {
		return false
	}
	off, ok := w.wdedup[dst][meta]
	if !ok {
		return false
	}
	pl := w.writeBufs[dst].Payload()
	putLeU64(pl[off:], w.cols[p].mergeWords(op, leU64(pl[off:]), word))
	w.wcombHits++
	return true
}

// bufferRMI sends one RMI request frame toward machine dst.
func (w *worker) bufferRMI(dst int, method uint32, payload []byte, node uint32, aux uint64) {
	buf := w.acquireReq()
	if len(payload) > buf.Room() {
		buf.Release()
		w.fail(fmt.Errorf("core: RMI payload of %d bytes exceeds buffer size", len(payload)))
	}
	w.seq++
	buf.Reset(comm.Header{
		Type:   comm.MsgRMIReq,
		Worker: uint8(w.id),
		Src:    uint16(w.m.id),
		Count:  1,
		Aux:    uint64(method)<<32 | uint64(w.seq),
	})
	buf.AppendBytes(payload)
	w.sides[w.seq] = append(w.sideNew(), sideRec{node: node, aux: aux})
	w.outstanding++
	if w.rttStart != nil {
		w.rttStart[w.seq] = w.reg.Clock()
	}
	w.mustSend(dst, buf)
}

func (w *worker) flushRead(dst int) {
	buf := w.readBufs[dst]
	if buf == nil {
		return
	}
	w.readBufs[dst] = nil
	// Count is the number of wire records (unique addresses), which under
	// combining can be fewer than the side records awaiting the response.
	nrec := len(buf.Payload()) / readRecSize
	if w.compress && nrec >= wireCompressMinRecords {
		// Must run before the side log is registered under the seq: it
		// remaps the log's slots through the sort permutation.
		w.compressReadBatch(buf, nrec, dst)
	}
	buf.SetCount(uint32(nrec))
	clear(w.dedup[dst])
	w.seq++
	buf.SetAux(uint64(w.seq))
	w.sides[w.seq] = w.curSide[dst]
	w.curSide[dst] = nil
	w.outstanding++
	if w.rttStart == nil {
		w.mustSend(dst, buf)
		return
	}
	t := w.reg.Clock()
	w.rttStart[w.seq] = t
	n := uint64(len(buf.Data))
	w.mustSend(dst, buf)
	w.reg.Span(w.m.id, w.id, obs.SpanFlush, w.job.id, t, uint64(dst)<<48|n)
	w.reg.Observe(w.m.id, obs.HistFlush, time.Duration(w.reg.Clock()-t))
	w.reg.Add(w.m.id, obs.CtrFlushes, 1)
}

func (w *worker) flushWrite(dst int) {
	buf := w.writeBufs[dst]
	if buf == nil {
		return
	}
	w.writeBufs[dst] = nil
	if w.wdedup[dst] != nil {
		clear(w.wdedup[dst])
	}
	n := len(buf.Payload()) / writeRecSize
	if w.compress && n >= wireCompressMinRecords {
		w.compressWriteBatch(buf, n, dst)
	}
	buf.SetCount(uint32(n))
	w.m.writesSent.Add(int64(n))
	if w.reg == nil {
		w.mustSend(dst, buf)
		return
	}
	t := w.reg.Clock()
	wire := uint64(len(buf.Data))
	w.mustSend(dst, buf)
	w.reg.Span(w.m.id, w.id, obs.SpanFlush, w.job.id, t, uint64(dst)<<48|wire)
	w.reg.Observe(w.m.id, obs.HistFlush, time.Duration(w.reg.Clock()-t))
	w.reg.Add(w.m.id, obs.CtrFlushes, 1)
}

// flushAll sends every partially filled message (paper §3.2 step 3: "when
// ... the worker thread has completed all tasks, the message is sent").
func (w *worker) flushAll() {
	for d := range w.readBufs {
		w.flushWrite(d)
		w.flushRead(d)
	}
}

// mustSend ships a frame or fails the job. The transport owns (and on
// failure has already released) the buffer either way, so there is nothing
// to clean up here beyond aborting.
func (w *worker) mustSend(dst int, buf *comm.Buffer) {
	if err := w.m.ep.Send(dst, buf); err != nil {
		w.fail(fmt.Errorf("core: machine %d worker %d send to %d: %w", w.m.id, w.id, dst, err))
	}
}

// jobRuntime is the per-machine execution state of one job.
type jobRuntime struct {
	spec    *JobSpec
	chunks  []partition.Chunk
	rows    []int64
	refs    []int64
	weights []float64
	// privProps lists the write-specs whose ghost reductions are privatized
	// per worker this job.
	privProps []WriteSpec
	// rows2/refs2/weights2 hold the second orientation for IterBothEdges.
	rows2    []int64
	refs2    []int64
	weights2 []float64

	// Frontier-sourced iteration state (spec.Source): exactly one of
	// frontList (sparse: chunks index the sorted member list) and frontBits
	// (dense: node-id chunks filtered through the bitmap) is set, or neither
	// for a full scan. builds are this machine's partitions of the
	// frontiers the job populates via Ctx.Activate, in spec.Build order.
	// activate maps PropID → build-slot for WriteSpec.ActivateInto specs
	// (-1 elsewhere); nil when the job has none.
	frontList []uint32
	frontBits []uint64
	builds    []*machineFrontier
	activate  []int8

	// steal is the job's work-stealing state (residual queue + in-flight
	// grant count), or nil when this job cannot be stolen from (stealing
	// off, single machine, or no StealSpec).
	steal *stealRuntime

	// res is the machine's out-of-core residency window (nil for in-memory
	// loads); workers advise each claimed chunk's topology ranges through it.
	res *store.Residency

	// dec is the compressed store's decode cache (nil for raw or in-memory
	// loads): jr.refs/jr.refs2 alias its arenas, valid only for rows covered
	// by a live chunk-claim pin. decMach is this machine's arena index and
	// orient names the orientation jr.refs decodes from (jr.refs2, when set,
	// is always the in-orientation).
	dec     *store.DecodeCache
	decMach int
	orient  int

	cursor atomic.Int64
	wg     sync.WaitGroup

	// id is the cluster-wide job sequence number, carried in MsgAbort
	// frames so a machine never aborts the wrong job on a stale
	// announcement.
	id uint64
	// abortCh closes when the job fails anywhere (locally or on a peer);
	// workers, collectives, and the machine main goroutine all select on
	// it. abortErr holds the root cause — the first error wins, later ones
	// are dropped.
	abortCh  chan struct{}
	failOnce sync.Once
	abortErr atomic.Pointer[error]
}

// fail records err as the job's root cause and releases everyone selecting
// on abortCh. Reports whether this call was the first (the winner is the
// one that must announce the abort to peers).
func (jr *jobRuntime) fail(err error) bool {
	won := false
	jr.failOnce.Do(func() {
		jr.abortErr.Store(&err)
		close(jr.abortCh)
		won = true
	})
	return won
}

// Err returns the job's root-cause error, or nil while the job is healthy.
func (jr *jobRuntime) Err() error {
	if p := jr.abortErr.Load(); p != nil {
		return *p
	}
	return nil
}

// aborted reports whether the job has failed, without blocking.
func (jr *jobRuntime) aborted() bool {
	select {
	case <-jr.abortCh:
		return true
	default:
		return false
	}
}

// leU64 decodes a little-endian uint64 at the start of p.
func leU64(p []byte) uint64 {
	return binary.LittleEndian.Uint64(p)
}

// putLeU64 encodes v little-endian at the start of p.
func putLeU64(p []byte, v uint64) {
	binary.LittleEndian.PutUint64(p, v)
}
