package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/reduce"
)

// worker is one RTC worker goroutine (paper §3.2). It claims edge-balanced
// chunks of nodes from the job's shared cursor, drives Task.Run over them,
// buffers remote reads/writes per destination machine, and — when responses
// arrive on its response queue — continues the originating tasks via
// ReadDone, always on this same goroutine ("a task is always executed by
// the same single thread, [so] there is no need to protect private fields
// of a task object with locks").
type worker struct {
	m  *Machine
	id int

	jobCh  chan *jobRuntime
	respCh <-chan *comm.Buffer

	// Per-destination partially filled request messages, lazily acquired.
	readBufs  []*comm.Buffer
	writeBufs []*comm.Buffer

	// The paper's side data structures (§3.2): for each in-flight read
	// message, the ordered log of (node, slot, aux) records; keyed by the
	// message's sequence number because copiers on the remote machine may
	// answer out of order. With read combining, several side records can
	// share one payload slot, so len(side) >= the message's record count.
	sides   map[uint32][]sideRec
	curSide [][]sideRec
	seq     uint32

	// Read combining (duplicate remote-read elimination): dedup[dst] maps a
	// packed (prop, offset) address to its record slot in the currently open
	// read message toward dst. Repeated reads of the same address within one
	// message window append only a side record — no wire bytes — and the one
	// response word fans out to every waiting continuation in request order.
	combine     bool
	dedup       []map[uint64]uint32
	dedupHits   int64
	dedupMisses int64

	// maxSide caps side-structure growth per message: all-duplicate windows
	// never fill the wire buffer, so without a cap the side log (and the
	// response fan-out burst) would grow with chunk size instead of message
	// size.
	maxSide int

	// outstanding counts in-flight request frames awaiting a response.
	outstanding int

	// sideFree recycles side-structure slices. Sides always return to the
	// worker that created them (responses route back to the same worker), so
	// no synchronization is needed.
	sideFree [][]sideRec

	// payloadFree recycles payload scratch buffers (see processResponse).
	payloadFree [][]byte

	// privSeg[p] is this worker's private ghost segment for property p in
	// the current job, or nil when p is not privatized.
	privSeg [][]uint64

	// cols caches the machine's property columns for the duration of a job,
	// shortening the per-edge access path.
	cols []*column

	ctx Ctx
	job *jobRuntime

	// endTime is when this worker finished its last task of the current job
	// (including continuations) — the raw data behind Figure 6c.
	endTime time.Time
}

// sideRec is one entry of the side structure: enough to restore the task
// context when its value arrives, plus the payload slot its value occupies
// in the response (several records share a slot under read combining).
type sideRec struct {
	node uint32
	slot uint32
	aux  uint64
}

const (
	readRecSize  = 8  // prop(16) | offset(32) packed into a u64
	writeRecSize = 16 // prop(16)|op(8)|offset(32) word + value word

	// dedupSavedPerHit is the wire traffic one combining hit elides: the
	// 8-byte request record plus the 8-byte response word.
	dedupSavedPerHit = readRecSize + 8
)

func newWorker(m *Machine, id int) *worker {
	w := &worker{
		m:         m,
		id:        id,
		jobCh:     make(chan *jobRuntime, 1),
		respCh:    m.router.WorkerResp(id),
		readBufs:  make([]*comm.Buffer, m.cfg.NumMachines),
		writeBufs: make([]*comm.Buffer, m.cfg.NumMachines),
		sides:     make(map[uint32][]sideRec),
		curSide:   make([][]sideRec, m.cfg.NumMachines),
		combine:   !m.cfg.DisableReadCombining,
		dedup:     make([]map[uint64]uint32, m.cfg.NumMachines),
	}
	w.maxSide = 8 * ((m.cfg.BufferSize - comm.HeaderSize) / readRecSize)
	if w.maxSide < 64 {
		w.maxSide = 64
	}
	w.ctx.w = w
	return w
}

// loop is the persistent worker goroutine body: workers are created once at
// startup (paper: "a set of worker threads is initialized by the Task
// Manager at system start up") and receive one jobRuntime per parallel
// region.
func (w *worker) loop() {
	for jr := range w.jobCh {
		w.runJob(jr)
		jr.wg.Done()
	}
}

func (w *worker) runJob(jr *jobRuntime) {
	w.job = jr
	w.cols = w.m.cols
	w.ctx.weights = jr.weights
	if cap(w.privSeg) < len(w.m.cols) {
		w.privSeg = make([][]uint64, len(w.m.cols))
	} else {
		w.privSeg = w.privSeg[:len(w.m.cols)]
		for i := range w.privSeg {
			w.privSeg[i] = nil
		}
	}
	for _, ws := range jr.privProps {
		w.privSeg[ws.Prop] = w.m.cols[ws.Prop].ensurePriv(w.id, ws.Op)
	}

	spec := jr.spec
	ctx := &w.ctx
	for {
		chunkIdx := int(jr.cursor.Add(1)) - 1
		if chunkIdx >= len(jr.chunks) {
			break
		}
		ch := jr.chunks[chunkIdx]
		for node := ch.Begin; node < ch.End; node++ {
			ctx.Node = node
			ctx.Aux = 0
			if spec.Filter != nil && !spec.Filter(ctx) {
				continue
			}
			switch spec.Iter {
			case IterNodes:
				ctx.nbr = 0
				ctx.edge = -1
				spec.Task.Run(ctx)
			case IterBothEdges:
				ctx.weights = jr.weights
				for e := jr.rows[node]; e < jr.rows[node+1]; e++ {
					ctx.nbr = jr.refs[e]
					ctx.edge = e
					spec.Task.Run(ctx)
				}
				ctx.weights = jr.weights2
				for e := jr.rows2[node]; e < jr.rows2[node+1]; e++ {
					ctx.nbr = jr.refs2[e]
					ctx.edge = e
					spec.Task.Run(ctx)
				}
				ctx.weights = jr.weights
			default: // IterOutEdges / IterInEdges: jr carries the orientation
				for e := jr.rows[node]; e < jr.rows[node+1]; e++ {
					ctx.nbr = jr.refs[e]
					ctx.edge = e
					spec.Task.Run(ctx)
				}
			}
		}
		// Opportunistically run continuations between chunks so response
		// queues and buffer pools keep draining while we still have tasks.
		w.drainResponsesSafe()
	}

	// Task list exhausted: flush partial messages, then wait for and run all
	// continuations. Continuations may buffer further requests, so flushing
	// repeats before every blocking wait.
	w.flushAll()
	for w.outstanding > 0 {
		buf, ok := <-w.respCh
		if !ok {
			break // shutdown
		}
		w.processResponse(buf)
		w.drainResponses()
		w.flushAll()
	}
	if len(w.sides) != 0 {
		panic(fmt.Sprintf("core: machine %d worker %d finished job with %d dangling side structures", w.m.id, w.id, len(w.sides)))
	}
	if w.dedupHits != 0 || w.dedupMisses != 0 {
		w.m.ep.Metrics().RecordReadDedup(w.dedupHits, w.dedupMisses, dedupSavedPerHit*w.dedupHits)
		w.dedupHits, w.dedupMisses = 0, 0
	}
	w.endTime = time.Now()
	w.job = nil
}

// drainResponses runs all currently queued continuations without blocking.
func (w *worker) drainResponses() {
	for {
		select {
		case buf, ok := <-w.respCh:
			if !ok {
				return
			}
			w.processResponse(buf)
		default:
			return
		}
	}
}

// drainResponsesSafe is drainResponses with the context saved and restored:
// continuations run through the worker's single shared Ctx, and callers that
// are mid-task (between chunks, or stalled acquiring a buffer inside a task
// callback) must not observe their Node/Aux/nbr clobbered.
func (w *worker) drainResponsesSafe() {
	saved := w.ctx
	w.drainResponses()
	w.ctx = saved
}

// processResponse matches a response frame to its side structure and invokes
// the continuation for each record, in request order (paper §3.2 step 4).
//
// The payload is copied out and the frame released BEFORE any continuation
// runs. This ordering is load-bearing for deadlock freedom: continuations
// can block on request-buffer back-pressure (nested acquireReq), and a
// worker must never hold a response buffer while blocked — copiers waiting
// on the response pool are the very thing that recycles the request buffers
// the worker is waiting for.
func (w *worker) processResponse(buf *comm.Buffer) {
	h := buf.Header()
	seq := uint32(h.Aux)
	side, ok := w.sides[seq]
	if !ok {
		buf.Release()
		panic(fmt.Sprintf("core: machine %d worker %d: response with unknown seq %d", w.m.id, w.id, seq))
	}
	delete(w.sides, seq)
	w.outstanding--
	payload := w.payloadNew(len(buf.Payload()))
	copy(payload, buf.Payload())
	typ := h.Type
	buf.Release()

	ctx := &w.ctx
	switch typ {
	case comm.MsgReadResp:
		// The response carries h.Count unique value words; the side log can
		// be longer under read combining. Each record's slot picks its word,
		// so one response word fans out to every continuation that waited on
		// the same (prop, offset) — still in request order.
		for i := range side {
			r := &side[i]
			ctx.Node = r.node
			ctx.Aux = r.aux
			ctx.nbr = 0
			ctx.edge = -1
			w.job.spec.Task.ReadDone(ctx, leU64(payload[8*int(r.slot):]))
		}
	case comm.MsgRMIResp:
		ctx.Node = side[0].node
		ctx.Aux = side[0].aux
		ctx.nbr = 0
		ctx.edge = -1
		rt, ok := w.job.spec.Task.(RMITask)
		if !ok {
			panic("core: RMI response for a task without RMIDone")
		}
		rt.RMIDone(ctx, payload)
	default:
		panic(fmt.Sprintf("core: worker got unexpected frame type %v", typ))
	}
	w.sideRecycle(side)
	w.payloadRecycle(payload)
}

// payloadNew returns an n-byte scratch slice. A freelist (not a single
// reusable buffer) because processResponse nests: a continuation stalled on
// back-pressure drains further responses re-entrantly.
func (w *worker) payloadNew(n int) []byte {
	if l := len(w.payloadFree); l > 0 {
		s := w.payloadFree[l-1]
		w.payloadFree = w.payloadFree[:l-1]
		if cap(s) >= n {
			return s[:n]
		}
	}
	if n < 256 {
		n = 256
	}
	return make([]byte, n)
}

func (w *worker) payloadRecycle(p []byte) {
	w.payloadFree = append(w.payloadFree, p)
}

// sideRecycle keeps side slices for reuse to avoid per-message allocation.
func (w *worker) sideRecycle(side []sideRec) {
	w.sideFree = append(w.sideFree, side[:0])
}

// sideNew returns an empty side slice, reusing a recycled one if available.
func (w *worker) sideNew() []sideRec {
	if n := len(w.sideFree); n > 0 {
		s := w.sideFree[n-1]
		w.sideFree = w.sideFree[:n-1]
		return s
	}
	return make([]sideRec, 0, 128)
}

// acquireReq obtains a request buffer, draining responses while stalled.
// Draining here is what makes back-pressure deadlock-free: if this worker
// blocked hard, its response queue would fill, the poller would stall, the
// inbox would fill, remote copiers would block sending to us and stop
// processing (and releasing) the very request frames we are waiting for.
//
// Because continuations run here, the caller must treat acquireReq as a
// re-entrancy point: the worker Ctx is saved/restored, and any per-
// destination buffer slot read before calling must be re-checked after.
func (w *worker) acquireReq() *comm.Buffer {
	pool := w.m.reqPool
	if buf, ok := pool.TryAcquire(); ok {
		return buf
	}
	saved := w.ctx
	defer func() { w.ctx = saved }()
	for {
		// Under back-pressure a stalled worker must not sit on buffers, or
		// all workers could hold every pooled buffer as partials while each
		// waits for one more. Flushing inside the loop matters: the
		// continuations run below can install fresh partials after any
		// earlier flush. Flushed frames return to the pool once remote
		// copiers process them, so the cycle always drains.
		w.flushAll()
		select {
		case buf := <-pool.C():
			pool.NoteAcquired()
			return buf
		case resp, ok := <-w.respCh:
			if !ok {
				panic("core: shutdown while acquiring request buffer")
			}
			w.processResponse(resp)
			if buf, ok := pool.TryAcquire(); ok {
				return buf
			}
		}
	}
}

// bufferRead appends a read request toward machine dst (paper §3.2 steps
// 1-3): the 8-byte address record goes into the message, the (node, slot,
// aux) record into the side structure, and a full message is sent
// immediately. With combining on, a repeated (prop, offset) within the open
// message window appends only the side record, pointing at the slot the
// first occurrence claimed — high-degree pulls collapse to one wire record
// per distinct remote address per window.
func (w *worker) bufferRead(dst int, p PropID, offset uint32, node uint32, aux uint64) {
	key := uint64(p)<<48 | uint64(offset)
	if w.combine {
		if slot, ok := w.dedup[dst][key]; ok {
			w.appendCombined(dst, slot, node, aux)
			return
		}
	}
	buf := w.readBufs[dst]
	if buf == nil {
		nb := w.acquireReq()
		// Re-check: a continuation running inside acquireReq may itself have
		// buffered a read toward dst and installed a message already.
		if w.readBufs[dst] != nil {
			nb.Release()
			buf = w.readBufs[dst]
			// That continuation may even have buffered this very address —
			// the dedup index must be consulted again.
			if w.combine {
				if slot, ok := w.dedup[dst][key]; ok {
					w.appendCombined(dst, slot, node, aux)
					return
				}
			}
		} else {
			nb.Reset(comm.Header{Type: comm.MsgReadReq, Worker: uint8(w.id), Src: uint16(w.m.id)})
			w.readBufs[dst] = nb
			buf = nb
		}
	}
	slot := uint32(len(buf.Payload()) / readRecSize)
	buf.AppendU64(key)
	if w.combine {
		idx := w.dedup[dst]
		if idx == nil {
			idx = make(map[uint64]uint32, 256)
			w.dedup[dst] = idx
		}
		idx[key] = slot
		w.dedupMisses++
	}
	side := w.curSide[dst]
	if side == nil {
		side = w.sideNew()
	}
	w.curSide[dst] = append(side, sideRec{node: node, slot: slot, aux: aux})
	if buf.Room() < readRecSize || len(w.curSide[dst]) >= w.maxSide {
		w.flushRead(dst)
	}
}

// appendCombined records a dedup hit: side record only, no wire bytes.
func (w *worker) appendCombined(dst int, slot uint32, node uint32, aux uint64) {
	w.dedupHits++
	w.curSide[dst] = append(w.curSide[dst], sideRec{node: node, slot: slot, aux: aux})
	if len(w.curSide[dst]) >= w.maxSide {
		w.flushRead(dst)
	}
}

// bufferWrite appends a write (reduction) record toward machine dst.
func (w *worker) bufferWrite(dst int, p PropID, op reduce.Op, offset uint32, word uint64) {
	buf := w.writeBufs[dst]
	if buf == nil {
		nb := w.acquireReq()
		// Re-check as in bufferRead: acquireReq is a re-entrancy point.
		if w.writeBufs[dst] != nil {
			nb.Release()
			buf = w.writeBufs[dst]
		} else {
			nb.Reset(comm.Header{Type: comm.MsgWriteReq, Worker: uint8(w.id), Src: uint16(w.m.id)})
			w.writeBufs[dst] = nb
			buf = nb
		}
	}
	buf.AppendU64(uint64(p)<<48 | uint64(op)<<40 | uint64(offset))
	buf.AppendU64(word)
	if buf.Room() < writeRecSize {
		w.flushWrite(dst)
	}
}

// bufferRMI sends one RMI request frame toward machine dst.
func (w *worker) bufferRMI(dst int, method uint32, payload []byte, node uint32, aux uint64) {
	buf := w.acquireReq()
	if len(payload) > buf.Room() {
		buf.Release()
		panic(fmt.Sprintf("core: RMI payload of %d bytes exceeds buffer size", len(payload)))
	}
	w.seq++
	buf.Reset(comm.Header{
		Type:   comm.MsgRMIReq,
		Worker: uint8(w.id),
		Src:    uint16(w.m.id),
		Count:  1,
		Aux:    uint64(method)<<32 | uint64(w.seq),
	})
	buf.AppendBytes(payload)
	w.sides[w.seq] = append(w.sideNew(), sideRec{node: node, aux: aux})
	w.outstanding++
	w.mustSend(dst, buf)
}

func (w *worker) flushRead(dst int) {
	buf := w.readBufs[dst]
	if buf == nil {
		return
	}
	w.readBufs[dst] = nil
	// Count is the number of wire records (unique addresses), which under
	// combining can be fewer than the side records awaiting the response.
	buf.SetCount(uint32(len(buf.Payload()) / readRecSize))
	clear(w.dedup[dst])
	w.seq++
	buf.SetAux(uint64(w.seq))
	w.sides[w.seq] = w.curSide[dst]
	w.curSide[dst] = nil
	w.outstanding++
	w.mustSend(dst, buf)
}

func (w *worker) flushWrite(dst int) {
	buf := w.writeBufs[dst]
	if buf == nil {
		return
	}
	w.writeBufs[dst] = nil
	n := len(buf.Payload()) / writeRecSize
	buf.SetCount(uint32(n))
	w.m.writesSent.Add(int64(n))
	w.mustSend(dst, buf)
}

// flushAll sends every partially filled message (paper §3.2 step 3: "when
// ... the worker thread has completed all tasks, the message is sent").
func (w *worker) flushAll() {
	for d := range w.readBufs {
		w.flushWrite(d)
		w.flushRead(d)
	}
}

func (w *worker) mustSend(dst int, buf *comm.Buffer) {
	if err := w.m.ep.Send(dst, buf); err != nil {
		panic(fmt.Sprintf("core: machine %d worker %d send to %d: %v", w.m.id, w.id, dst, err))
	}
}

// jobRuntime is the per-machine execution state of one job.
type jobRuntime struct {
	spec    *JobSpec
	chunks  []partition.Chunk
	rows    []int64
	refs    []int64
	weights []float64
	// privProps lists the write-specs whose ghost reductions are privatized
	// per worker this job.
	privProps []WriteSpec
	// rows2/refs2/weights2 hold the second orientation for IterBothEdges.
	rows2    []int64
	refs2    []int64
	weights2 []float64
	cursor   atomic.Int64
	wg       sync.WaitGroup
}

// leU64 decodes a little-endian uint64 at the start of p.
func leU64(p []byte) uint64 {
	return binary.LittleEndian.Uint64(p)
}
