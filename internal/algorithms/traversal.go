package algorithms

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/reduce"
)

// The traversal algorithms (WCC, SSSP, hop distance) run on the frontier API:
// an explicit active-vertex set drives each superstep (JobSpec.Source), the
// kernel of the adopt phase collects the next frontier (Ctx.Activate), and a
// DirectionPolicy picks push or pull per superstep. The frontier size and
// degree sums come back piggybacked on the job's termination allreduce, so no
// per-superstep ReduceI64 collective remains on this path.
//
// The pre-frontier formulation — dense i64 "active" properties, a full O(V)
// filter scan per superstep, and a ReduceI64(active, Sum) convergence check —
// is kept verbatim below (wccDense, ssspDense, hopDistDense) and selected by
// Config.DisableSparseFrontier. It is the ablation baseline BENCH_direction
// measures the frontier machinery against.

// minLabelPush propagates the node's current label to the neighbor's next
// label with a MIN reduction — the shared push kernel of WCC (labels), SSSP
// (distances via dist+weight), and hop distance (dist+1).
type minLabelPush struct {
	core.NoReads
	label, labelNxt core.PropID
}

func (k *minLabelPush) Run(c *core.Ctx) {
	c.NbrWriteI64(k.labelNxt, reduce.Min, c.GetI64(k.label))
}

// minAdoptKernel adopts labelNxt when it improves label and records whether
// the node changed in a dense activity property (the ablation path's activity
// tracking).
type minAdoptKernel struct {
	core.NoReads
	label, labelNxt, active core.PropID
}

func (k *minAdoptKernel) Run(c *core.Ctx) {
	nxt := c.GetI64(k.labelNxt)
	if nxt < c.GetI64(k.label) {
		c.SetI64(k.label, nxt)
		c.SetI64(k.active, 1)
	} else {
		c.SetI64(k.active, 0)
	}
}

// --- WCC ---------------------------------------------------------------------

// wccPullKernel is the pull form of min-label propagation: every node scans
// its neighbors (both orientations) and folds their labels into its own
// labelNxt locally — remote reads instead of remote reductions.
type wccPullKernel struct {
	label, labelNxt core.PropID
}

func (k *wccPullKernel) Run(c *core.Ctx) {
	c.NbrRead(k.label)
}

func (k *wccPullKernel) ReadDone(c *core.Ctx, val uint64) {
	if v := core.I64Word(val); v < c.GetI64(k.labelNxt) {
		c.SetI64(k.labelNxt, v)
	}
}

// wccAdoptKernel adopts an improved label and activates the node into the
// next frontier.
type wccAdoptKernel struct {
	core.NoReads
	label, labelNxt core.PropID
}

func (k *wccAdoptKernel) Run(c *core.Ctx) {
	nxt := c.GetI64(k.labelNxt)
	if nxt < c.GetI64(k.label) {
		c.SetI64(k.label, nxt)
		c.Activate(0)
	}
}

// WCC computes weakly connected components by iterative min-label propagation
// over both edge orientations (weak connectivity ignores edge direction),
// with an explicit frontier of just-improved nodes and per-superstep
// push/pull selection: push scatters frontier labels with MIN reductions,
// pull has every node gather neighbor labels with reads. "In WCC, a
// deactivated node can later be active again" — adopting a smaller label
// re-enters the frontier. Returns the component label per node (the minimum
// global id in the component).
func WCC(c *core.Cluster, maxIter int) ([]int64, Metrics, error) {
	if c.Config().DisableSparseFrontier {
		return wccDense(c, maxIter)
	}
	r := &runner{c: c}
	label := r.propI64("wcc")
	labelNxt := r.propI64("wcc_nxt")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(labelNxt)
	c.FillByNodeI64(label, func(v graph.NodeID) int64 { return int64(v) })
	c.FillByNodeI64(labelNxt, func(v graph.NodeID) int64 { return int64(v) })

	cur := c.NewFrontier("wcc_cur")
	cur.Fill(nil) // every node starts with its own label to propagate
	stats := cur.Stats()
	policy := c.NewDirectionPolicy()
	if c.Config().DirectionAlpha <= 0 {
		// Min-label pull has no early exit (every neighbor label must be
		// folded in), so a pull superstep pays its full 2E scan: only prefer
		// it when frontier edge work genuinely rivals that, not at the
		// BFS-tuned 1/alpha fraction.
		policy.Alpha = 1
	}
	dir := core.DirPush
	pullEdges := 2 * c.NumEdges() // a pull superstep scans both orientations

	start := nowFn()
	for it := 0; it < maxIter && r.err == nil; it++ {
		if stats.Count == 0 {
			break
		}
		dir = policy.Choose(dir, stats.Count, stats.OutDeg+stats.InDeg, pullEdges)
		r.dirStep(dir)
		if dir == core.DirPush {
			st := r.runStats(core.JobSpec{Name: "wcc-push", Iter: core.IterBothEdges,
				Source:     cur,
				Task:       &minLabelPush{label: label, labelNxt: labelNxt},
				WriteProps: []core.WriteSpec{{Prop: labelNxt, Op: reduce.Min}},
				Steal:      &core.StealSpec{Own: []core.PropID{label}}})
			policy.Observe(core.DirPush, stats.OutDeg+stats.InDeg, st.Traffic.BytesSent)
		} else {
			st := r.runStats(core.JobSpec{Name: "wcc-pull", Iter: core.IterBothEdges,
				Task:      &wccPullKernel{label: label, labelNxt: labelNxt},
				ReadProps: []core.PropID{label}})
			policy.Observe(core.DirPull, pullEdges, st.Traffic.BytesSent)
		}
		adopt := r.runStats(core.JobSpec{Name: "wcc-adopt", Iter: core.IterNodes,
			Task:  &wccAdoptKernel{label: label, labelNxt: labelNxt},
			Build: []*core.Frontier{cur}})
		r.met.Iterations++
		if r.err != nil {
			break
		}
		stats = adopt.Frontiers[0]
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherI64(label), r.met, nil
}

// wccDense is the pre-frontier WCC: dense activity property, full filter
// scan, ReduceI64 convergence check (the DisableSparseFrontier ablation).
func wccDense(c *core.Cluster, maxIter int) ([]int64, Metrics, error) {
	r := &runner{c: c}
	label := r.propI64("wcc")
	labelNxt := r.propI64("wcc_nxt")
	active := r.propI64("wcc_active")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(labelNxt, active)
	c.FillByNodeI64(label, func(v graph.NodeID) int64 { return int64(v) })
	c.FillByNodeI64(labelNxt, func(v graph.NodeID) int64 { return int64(v) })
	c.FillI64(active, 1)
	activeFilter := func(ctx *core.Ctx) bool { return ctx.GetI64(active) != 0 }

	start := nowFn()
	for it := 0; it < maxIter && r.err == nil; it++ {
		push := &minLabelPush{label: label, labelNxt: labelNxt}
		writes := []core.WriteSpec{{Prop: labelNxt, Op: reduce.Min}}
		// Weak connectivity ignores direction: one both-orientations job per
		// round instead of separate out and in jobs.
		r.run(core.JobSpec{Name: "wcc-push", Iter: core.IterBothEdges, Task: push, Filter: activeFilter, WriteProps: writes})
		r.run(core.JobSpec{Name: "wcc-adopt", Iter: core.IterNodes,
			Task: &minAdoptKernel{label: label, labelNxt: labelNxt, active: active}})
		r.met.Iterations++
		r.met.PushSteps++
		remaining, err := c.ReduceI64(active, reduce.Sum)
		if err != nil {
			r.err = err
			break
		}
		if remaining == 0 {
			break
		}
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherI64(label), r.met, nil
}

// --- SSSP (Bellman-Ford) -----------------------------------------------------

// distRelaxKernel relaxes each out-edge: nbr.distNxt = min(nbr.distNxt,
// dist + weight). Only frontier (just-improved) nodes relax.
type distRelaxKernel struct {
	core.NoReads
	dist, distNxt core.PropID
}

func (k *distRelaxKernel) Run(c *core.Ctx) {
	c.NbrWriteF64(k.distNxt, reduce.Min, c.GetF64(k.dist)+c.EdgeWeight())
}

// ssspPullKernel is the pull form of edge relaxation: every node scans its
// in-edges and folds dist(u)+w(u,v) into its own distNxt. The sum uses the
// same operands in the same order as the push kernel, so the two directions
// produce bit-identical floats.
type ssspPullKernel struct {
	dist, distNxt core.PropID
}

func (k *ssspPullKernel) Run(c *core.Ctx) {
	c.Aux = core.WordF64(c.EdgeWeight())
	c.NbrRead(k.dist)
}

func (k *ssspPullKernel) ReadDone(c *core.Ctx, val uint64) {
	if d := core.F64Word(val) + core.F64Word(c.Aux); d < c.GetF64(k.distNxt) {
		c.SetF64(k.distNxt, d)
	}
}

// ssspAdoptKernel adopts an improved distance and activates the node.
type ssspAdoptKernel struct {
	core.NoReads
	dist, distNxt core.PropID
}

func (k *ssspAdoptKernel) Run(c *core.Ctx) {
	nxt := c.GetF64(k.distNxt)
	if nxt < c.GetF64(k.dist) {
		c.SetF64(k.dist, nxt)
		c.Activate(0)
	}
}

type distAdoptKernel struct {
	core.NoReads
	dist, distNxt, active core.PropID
}

func (k *distAdoptKernel) Run(c *core.Ctx) {
	nxt := c.GetF64(k.distNxt)
	if nxt < c.GetF64(k.dist) {
		c.SetF64(k.dist, nxt)
		c.SetI64(k.active, 1)
	} else {
		c.SetI64(k.active, 0)
	}
}

// SSSP computes single-source shortest path distances with the iterative
// Bellman-Ford scheme the paper uses, driven by a frontier of just-improved
// nodes with per-round push/pull selection; unreachable nodes report +Inf.
// Edge weights come from the loaded graph ("we generated these values using
// a uniform random distribution").
func SSSP(c *core.Cluster, source graph.NodeID, maxIter int) ([]float64, Metrics, error) {
	if c.Config().DisableSparseFrontier {
		return ssspDense(c, source, maxIter)
	}
	r := &runner{c: c}
	dist := r.propF64("sssp")
	distNxt := r.propF64("sssp_nxt")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(distNxt)
	inf := math.Inf(1)
	c.FillF64(dist, inf)
	c.FillF64(distNxt, inf)
	c.SetNodeF64(source, dist, 0)
	c.SetNodeF64(source, distNxt, 0)

	cur := c.NewFrontier("sssp_cur")
	cur.Add(source)
	stats := cur.Stats()
	policy := c.NewDirectionPolicy()
	if c.Config().DirectionAlpha <= 0 {
		// Edge relaxation has no early exit in pull form (min over every
		// in-edge), so a pull superstep pays its full E scan: only prefer it
		// when frontier edge work rivals that, not at the BFS-tuned 1/alpha
		// fraction.
		policy.Alpha = 1
	}
	dir := core.DirPush
	pullEdges := c.NumEdges() // a pull superstep scans every in-edge once

	start := nowFn()
	for it := 0; it < maxIter && r.err == nil; it++ {
		if stats.Count == 0 {
			break
		}
		dir = policy.Choose(dir, stats.Count, stats.OutDeg, pullEdges)
		r.dirStep(dir)
		if dir == core.DirPush {
			st := r.runStats(core.JobSpec{Name: "sssp-relax", Iter: core.IterOutEdges,
				Source:     cur,
				Task:       &distRelaxKernel{dist: dist, distNxt: distNxt},
				WriteProps: []core.WriteSpec{{Prop: distNxt, Op: reduce.Min}},
				Steal:      &core.StealSpec{Own: []core.PropID{dist}}})
			policy.Observe(core.DirPush, stats.OutDeg, st.Traffic.BytesSent)
		} else {
			st := r.runStats(core.JobSpec{Name: "sssp-pull", Iter: core.IterInEdges,
				Task:      &ssspPullKernel{dist: dist, distNxt: distNxt},
				ReadProps: []core.PropID{dist}})
			policy.Observe(core.DirPull, pullEdges, st.Traffic.BytesSent)
		}
		adopt := r.runStats(core.JobSpec{Name: "sssp-adopt", Iter: core.IterNodes,
			Task:  &ssspAdoptKernel{dist: dist, distNxt: distNxt},
			Build: []*core.Frontier{cur}})
		r.met.Iterations++
		if r.err != nil {
			break
		}
		stats = adopt.Frontiers[0]
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherF64(dist), r.met, nil
}

// ssspDense is the pre-frontier SSSP (the DisableSparseFrontier ablation).
func ssspDense(c *core.Cluster, source graph.NodeID, maxIter int) ([]float64, Metrics, error) {
	r := &runner{c: c}
	dist := r.propF64("sssp")
	distNxt := r.propF64("sssp_nxt")
	active := r.propI64("sssp_active")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(distNxt, active)
	inf := math.Inf(1)
	c.FillF64(dist, inf)
	c.FillF64(distNxt, inf)
	c.FillI64(active, 0)
	c.SetNodeF64(source, dist, 0)
	c.SetNodeF64(source, distNxt, 0)
	c.SetNodeI64(source, active, 1)
	activeFilter := func(ctx *core.Ctx) bool { return ctx.GetI64(active) != 0 }

	start := nowFn()
	for it := 0; it < maxIter && r.err == nil; it++ {
		r.run(core.JobSpec{Name: "sssp-relax", Iter: core.IterOutEdges,
			Task:       &distRelaxKernel{dist: dist, distNxt: distNxt},
			Filter:     activeFilter,
			WriteProps: []core.WriteSpec{{Prop: distNxt, Op: reduce.Min}}})
		r.run(core.JobSpec{Name: "sssp-adopt", Iter: core.IterNodes,
			Task: &distAdoptKernel{dist: dist, distNxt: distNxt, active: active}})
		r.met.Iterations++
		r.met.PushSteps++
		remaining, err := c.ReduceI64(active, reduce.Sum)
		if err != nil {
			r.err = err
			break
		}
		if remaining == 0 {
			break
		}
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherF64(dist), r.met, nil
}

// --- hop distance (BFS) -------------------------------------------------------

// hopRelaxKernel pushes dist+1 to out-neighbors.
type hopRelaxKernel struct {
	core.NoReads
	dist, distNxt core.PropID
}

func (k *hopRelaxKernel) Run(c *core.Ctx) {
	c.NbrWriteI64(k.distNxt, reduce.Min, c.GetI64(k.dist)+1)
}

// hopPushKernel is the top-down BFS step: frontier nodes (all at the current
// level) push level+1 into each out-neighbor's dist with a MIN reduction.
// The write spec's ActivateInto makes the engine activate every node whose
// dist the reduction actually changed — exactly the unvisited nodes claimed
// this level — so the next frontier is a receiver-side by-product of the
// relaxation and no separate adopt pass runs.
type hopPushKernel struct {
	core.NoReads
	dist  core.PropID
	level int64
}

func (k *hopPushKernel) Run(c *core.Ctx) {
	c.NbrWriteI64(k.dist, reduce.Min, k.level+1)
}

// hopPullKernel is the bottom-up BFS step (the direction-optimizing pull):
// each still-unvisited node scans its in-neighbors for one on the current
// level and claims level+1 for itself, activating into the next frontier.
// The scan stops at the first hit (SkipNode) — the early exit that makes
// pull win on dense levels. Remote in-neighbors resolve asynchronously and
// cannot stop the scan, but their continuations still claim the level, so
// the result is unaffected. Claims are deterministic: only values that were
// exactly level at job start can match, and a mid-superstep self-claim
// writes level+1, which no reader can mistake for level.
type hopPullKernel struct {
	dist  core.PropID
	level int64
}

func (k *hopPullKernel) Run(c *core.Ctx) {
	if c.GetI64(k.dist) == k.level+1 {
		c.SkipNode() // already claimed by an earlier in-neighbor
		return
	}
	c.NbrRead(k.dist)
}

func (k *hopPullKernel) ReadDone(c *core.Ctx, val uint64) {
	if core.I64Word(val) == k.level && c.GetI64(k.dist) != k.level+1 {
		c.SetI64(k.dist, k.level+1)
		c.Activate(0)
		c.SkipNode()
	}
}

// HopDist computes breadth-first hop distances from root ("Breadth-first
// traversal from the root") with direction-optimizing search: top-down (push)
// supersteps while the frontier is small, bottom-up (pull) supersteps over
// the unvisited set once the frontier's out-edge work rivals the unvisited
// side's in-edge work. Each level is a single job — push builds the next
// frontier receiver-side (WriteSpec.ActivateInto), pull builds it via
// self-activation — and the unvisited set is maintained incrementally by
// subtracting each new frontier. Both directions assign identical levels, so
// the result is bit-identical to either fixed direction. Unreachable nodes
// report math.MaxInt64.
func HopDist(c *core.Cluster, root graph.NodeID, maxIter int) ([]int64, Metrics, error) {
	if c.Config().DisableSparseFrontier {
		return hopDistDense(c, root, maxIter)
	}
	r := &runner{c: c}
	dist := r.propI64("hop")
	if r.err != nil {
		return nil, r.met, r.err
	}
	unreached := int64(math.MaxInt64) - 1 // headroom so level+1 cannot wrap
	c.FillI64(dist, unreached)
	c.SetNodeI64(root, dist, 0)

	cur := c.NewFrontier("hop_cur")
	unvis := c.NewFrontier("hop_unvis")
	cur.Add(root)
	unvis.Fill(func(v graph.NodeID) bool { return v != root })
	curStats, unvisStats := cur.Stats(), unvis.Stats()

	policy := c.NewDirectionPolicy()
	dir := core.DirPush

	start := nowFn()
	for level := int64(0); int(level) < maxIter && r.err == nil; level++ {
		if curStats.Count == 0 {
			break
		}
		dir = policy.Choose(dir, curStats.Count, curStats.OutDeg, unvisStats.InDeg)
		r.dirStep(dir)
		var st core.JobStats
		if dir == core.DirPush {
			st = r.runStats(core.JobSpec{Name: "hop-push", Iter: core.IterOutEdges,
				Source:     cur,
				Task:       &hopPushKernel{dist: dist, level: level},
				WriteProps: []core.WriteSpec{{Prop: dist, Op: reduce.Min, ActivateInto: 1}},
				Build:      []*core.Frontier{cur},
				// The level rides in the kernel struct, so the grant needs no
				// own-node snapshot at all.
				Steal: &core.StealSpec{}})
			policy.Observe(core.DirPush, curStats.OutDeg, st.Traffic.BytesSent)
		} else {
			st = r.runStats(core.JobSpec{Name: "hop-pull", Iter: core.IterInEdges,
				Source:    unvis,
				Task:      &hopPullKernel{dist: dist, level: level},
				ReadProps: []core.PropID{dist},
				Build:     []*core.Frontier{cur}})
			policy.Observe(core.DirPull, unvisStats.InDeg, st.Traffic.BytesSent)
		}
		r.met.Iterations++
		if r.err != nil {
			break
		}
		curStats = st.Frontiers[0]
		unvis.Subtract(cur)
		unvisStats = unvis.Stats()
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	out := c.GatherI64(dist)
	for i, v := range out {
		if v >= unreached {
			out[i] = math.MaxInt64
		}
	}
	return out, r.met, nil
}

// hopDistDense is the pre-frontier BFS (the DisableSparseFrontier ablation).
func hopDistDense(c *core.Cluster, root graph.NodeID, maxIter int) ([]int64, Metrics, error) {
	r := &runner{c: c}
	dist := r.propI64("hop")
	distNxt := r.propI64("hop_nxt")
	active := r.propI64("hop_active")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(distNxt, active)
	unreached := int64(math.MaxInt64) - 1 // headroom so dist+1 cannot wrap
	c.FillI64(dist, unreached)
	c.FillI64(distNxt, unreached)
	c.FillI64(active, 0)
	c.SetNodeI64(root, dist, 0)
	c.SetNodeI64(root, distNxt, 0)
	c.SetNodeI64(root, active, 1)
	activeFilter := func(ctx *core.Ctx) bool { return ctx.GetI64(active) != 0 }

	start := nowFn()
	for it := 0; it < maxIter && r.err == nil; it++ {
		r.run(core.JobSpec{Name: "hop-relax", Iter: core.IterOutEdges,
			Task:       &hopRelaxKernel{dist: dist, distNxt: distNxt},
			Filter:     activeFilter,
			WriteProps: []core.WriteSpec{{Prop: distNxt, Op: reduce.Min}}})
		r.run(core.JobSpec{Name: "hop-adopt", Iter: core.IterNodes,
			Task: &minAdoptKernel{label: dist, labelNxt: distNxt, active: active}})
		r.met.Iterations++
		r.met.PushSteps++
		remaining, err := c.ReduceI64(active, reduce.Sum)
		if err != nil {
			r.err = err
			break
		}
		if remaining == 0 {
			break
		}
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	out := c.GatherI64(dist)
	for i, v := range out {
		if v >= unreached {
			out[i] = math.MaxInt64
		}
	}
	return out, r.met, nil
}
