package algorithms

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/reduce"
)

// minLabelPush propagates the node's current label to the neighbor's next
// label with a MIN reduction — the shared kernel of WCC (labels), SSSP
// (distances via dist+weight), and hop distance (dist+1).
type minLabelPush struct {
	core.NoReads
	label, labelNxt core.PropID
}

func (k *minLabelPush) Run(c *core.Ctx) {
	c.NbrWriteI64(k.labelNxt, reduce.Min, c.GetI64(k.label))
}

// minAdoptKernel adopts labelNxt when it improves label and records whether
// the node changed (the activity bit for the next round).
type minAdoptKernel struct {
	core.NoReads
	label, labelNxt, active core.PropID
}

func (k *minAdoptKernel) Run(c *core.Ctx) {
	nxt := c.GetI64(k.labelNxt)
	if nxt < c.GetI64(k.label) {
		c.SetI64(k.label, nxt)
		c.SetI64(k.active, 1)
	} else {
		c.SetI64(k.active, 0)
	}
}

// WCC computes weakly connected components by iterative min-label
// propagation over both edge orientations (weak connectivity ignores edge
// direction), with vertex deactivation between rounds: "In WCC, a
// deactivated node can later be active again" — adopting a smaller label
// reactivates the node. Returns the component label per node (the minimum
// global id in the component).
func WCC(c *core.Cluster, maxIter int) ([]int64, Metrics, error) {
	r := &runner{c: c}
	label := r.propI64("wcc")
	labelNxt := r.propI64("wcc_nxt")
	active := r.propI64("wcc_active")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(labelNxt, active)
	c.FillByNodeI64(label, func(v graph.NodeID) int64 { return int64(v) })
	c.FillByNodeI64(labelNxt, func(v graph.NodeID) int64 { return int64(v) })
	c.FillI64(active, 1)
	activeFilter := func(ctx *core.Ctx) bool { return ctx.GetI64(active) != 0 }

	start := nowFn()
	for it := 0; it < maxIter && r.err == nil; it++ {
		push := &minLabelPush{label: label, labelNxt: labelNxt}
		writes := []core.WriteSpec{{Prop: labelNxt, Op: reduce.Min}}
		// Weak connectivity ignores direction: one both-orientations job per
		// round instead of separate out and in jobs.
		r.run(core.JobSpec{Name: "wcc-push", Iter: core.IterBothEdges, Task: push, Filter: activeFilter, WriteProps: writes})
		r.run(core.JobSpec{Name: "wcc-adopt", Iter: core.IterNodes,
			Task: &minAdoptKernel{label: label, labelNxt: labelNxt, active: active}})
		r.met.Iterations++
		remaining, err := c.ReduceI64(active, reduce.Sum)
		if err != nil {
			r.err = err
			break
		}
		if remaining == 0 {
			break
		}
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherI64(label), r.met, nil
}

// --- SSSP (Bellman-Ford) -----------------------------------------------------

// distRelaxKernel relaxes each out-edge: nbr.distNxt = min(nbr.distNxt,
// dist + weight). Only active (just-improved) nodes relax.
type distRelaxKernel struct {
	core.NoReads
	dist, distNxt core.PropID
}

func (k *distRelaxKernel) Run(c *core.Ctx) {
	c.NbrWriteF64(k.distNxt, reduce.Min, c.GetF64(k.dist)+c.EdgeWeight())
}

type distAdoptKernel struct {
	core.NoReads
	dist, distNxt, active core.PropID
}

func (k *distAdoptKernel) Run(c *core.Ctx) {
	nxt := c.GetF64(k.distNxt)
	if nxt < c.GetF64(k.dist) {
		c.SetF64(k.dist, nxt)
		c.SetI64(k.active, 1)
	} else {
		c.SetI64(k.active, 0)
	}
}

// SSSP computes single-source shortest path distances with the iterative
// Bellman-Ford scheme the paper uses; unreachable nodes report +Inf. Edge
// weights come from the loaded graph ("we generated these values using a
// uniform random distribution").
func SSSP(c *core.Cluster, source graph.NodeID, maxIter int) ([]float64, Metrics, error) {
	r := &runner{c: c}
	dist := r.propF64("sssp")
	distNxt := r.propF64("sssp_nxt")
	active := r.propI64("sssp_active")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(distNxt, active)
	inf := math.Inf(1)
	c.FillF64(dist, inf)
	c.FillF64(distNxt, inf)
	c.FillI64(active, 0)
	c.SetNodeF64(source, dist, 0)
	c.SetNodeF64(source, distNxt, 0)
	c.SetNodeI64(source, active, 1)
	activeFilter := func(ctx *core.Ctx) bool { return ctx.GetI64(active) != 0 }

	start := nowFn()
	for it := 0; it < maxIter && r.err == nil; it++ {
		r.run(core.JobSpec{Name: "sssp-relax", Iter: core.IterOutEdges,
			Task:       &distRelaxKernel{dist: dist, distNxt: distNxt},
			Filter:     activeFilter,
			WriteProps: []core.WriteSpec{{Prop: distNxt, Op: reduce.Min}}})
		r.run(core.JobSpec{Name: "sssp-adopt", Iter: core.IterNodes,
			Task: &distAdoptKernel{dist: dist, distNxt: distNxt, active: active}})
		r.met.Iterations++
		remaining, err := c.ReduceI64(active, reduce.Sum)
		if err != nil {
			r.err = err
			break
		}
		if remaining == 0 {
			break
		}
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherF64(dist), r.met, nil
}

// --- hop distance (BFS) -------------------------------------------------------

// hopRelaxKernel pushes dist+1 to out-neighbors.
type hopRelaxKernel struct {
	core.NoReads
	dist, distNxt core.PropID
}

func (k *hopRelaxKernel) Run(c *core.Ctx) {
	c.NbrWriteI64(k.distNxt, reduce.Min, c.GetI64(k.dist)+1)
}

// HopDist computes breadth-first hop distances from root ("Breadth-first
// traversal from the root"); unreachable nodes report math.MaxInt64.
func HopDist(c *core.Cluster, root graph.NodeID, maxIter int) ([]int64, Metrics, error) {
	r := &runner{c: c}
	dist := r.propI64("hop")
	distNxt := r.propI64("hop_nxt")
	active := r.propI64("hop_active")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(distNxt, active)
	unreached := int64(math.MaxInt64) - 1 // headroom so dist+1 cannot wrap
	c.FillI64(dist, unreached)
	c.FillI64(distNxt, unreached)
	c.FillI64(active, 0)
	c.SetNodeI64(root, dist, 0)
	c.SetNodeI64(root, distNxt, 0)
	c.SetNodeI64(root, active, 1)
	activeFilter := func(ctx *core.Ctx) bool { return ctx.GetI64(active) != 0 }

	start := nowFn()
	for it := 0; it < maxIter && r.err == nil; it++ {
		r.run(core.JobSpec{Name: "hop-relax", Iter: core.IterOutEdges,
			Task:       &hopRelaxKernel{dist: dist, distNxt: distNxt},
			Filter:     activeFilter,
			WriteProps: []core.WriteSpec{{Prop: distNxt, Op: reduce.Min}}})
		r.run(core.JobSpec{Name: "hop-adopt", Iter: core.IterNodes,
			Task: &minAdoptKernel{label: dist, labelNxt: distNxt, active: active}})
		r.met.Iterations++
		remaining, err := c.ReduceI64(active, reduce.Sum)
		if err != nil {
			r.err = err
			break
		}
		if remaining == 0 {
			break
		}
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	out := c.GatherI64(dist)
	for i, v := range out {
		if v >= unreached {
			out[i] = math.MaxInt64
		}
	}
	return out, r.met, nil
}
