package algorithms

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/baseline/sa"
	"repro/internal/core"
	"repro/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(9, 8, graph.TwitterLike(), 4242)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func boot(t testing.TB, g *graph.Graph, p int) *core.Cluster {
	t.Helper()
	cfg := core.DefaultConfig(p)
	cfg.GhostThreshold = 64
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	if err := c.Load(g); err != nil {
		t.Fatal(err)
	}
	return c
}

func assertClose(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		gi, wi := got[i], want[i]
		if math.IsInf(wi, 1) {
			if !math.IsInf(gi, 1) {
				t.Fatalf("%s[%d] = %g, want +Inf", name, i, gi)
			}
			continue
		}
		if d := math.Abs(gi - wi); d > tol {
			t.Fatalf("%s[%d] = %g, want %g (|diff| %g > %g)", name, i, gi, wi, d, tol)
		}
	}
}

func assertEqualI64(t *testing.T, name string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

func TestPageRankPullMatchesSA(t *testing.T) {
	g := testGraph(t)
	want := sa.PageRank(g, 10, 0.85, 1)
	for _, p := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := boot(t, g, p)
			got, met, err := PageRankPull(c, 10, 0.85)
			if err != nil {
				t.Fatal(err)
			}
			// One seed job plus two jobs (pull + fused apply) per iteration.
			if met.Iterations != 10 || met.Jobs != 21 {
				t.Errorf("metrics: %d iters, %d jobs", met.Iterations, met.Jobs)
			}
			assertClose(t, "pr", got, want, 1e-10)
			if met.PerIteration() <= 0 {
				t.Error("PerIteration not positive")
			}
		})
	}
}

func TestPageRankPushMatchesPull(t *testing.T) {
	g := testGraph(t)
	want := sa.PageRank(g, 8, 0.85, 0)
	c := boot(t, g, 4)
	got, _, err := PageRankPush(c, 8, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// Push accumulates in arbitrary order: float addition is not
	// associative, so allow a tiny tolerance.
	assertClose(t, "pr-push", got, want, 1e-9)
}

func TestPageRankSumsToOne(t *testing.T) {
	g := testGraph(t)
	c := boot(t, g, 3)
	got, _, err := PageRankPull(c, 30, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// With dangling nodes PageRank mass leaks, so the sum is <= 1 but must
	// stay in (0, 1].
	var sum float64
	for _, v := range got {
		if v < 0 {
			t.Fatal("negative PageRank")
		}
		sum += v
	}
	if sum <= 0 || sum > 1+1e-9 {
		t.Errorf("PageRank sum = %g", sum)
	}
}

func TestPageRankApproxMatchesSA(t *testing.T) {
	g := testGraph(t)
	wantPR, wantIters := sa.PageRankApprox(g, 0.85, 1e-7, 100, 1)
	c := boot(t, g, 4)
	got, met, err := PageRankApprox(c, 0.85, 1e-7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if met.Iterations != wantIters {
		t.Errorf("iterations = %d, want %d", met.Iterations, wantIters)
	}
	assertClose(t, "apr", got, wantPR, 1e-9)
	// Approximate PR approaches exact PR.
	exact := sa.PageRank(g, 60, 0.85, 1)
	assertClose(t, "apr-vs-exact", got, exact, 1e-4)
}

func TestApproxTrafficShrinksAcrossIterations(t *testing.T) {
	// The defining behaviour: "decreasing amount of computation and
	// communication as the iteration continues". Compare traffic of the
	// first iteration against a late one by running two prefixes.
	g := testGraph(t)
	run := func(iters int) int64 {
		c := boot(t, g, 4)
		_, met, err := PageRankApprox(c, 0.85, 1e-7, iters)
		if err != nil {
			t.Fatal(err)
		}
		return met.Traffic.DataBytesSent
	}
	one := run(1)
	ten := run(10)
	if ten >= 10*one {
		t.Errorf("traffic not shrinking: 1 iter = %d B, 10 iters = %d B", one, ten)
	}
}

func TestWCCMatchesSA(t *testing.T) {
	g := testGraph(t)
	want, _ := sa.WCC(g, 1)
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := boot(t, g, p)
			got, met, err := WCC(c, 1000)
			if err != nil {
				t.Fatal(err)
			}
			assertEqualI64(t, "wcc", got, want)
			if met.Iterations == 0 {
				t.Error("no iterations recorded")
			}
		})
	}
}

func TestWCCOnDisconnectedGraph(t *testing.T) {
	// Two cliques plus isolated vertices.
	var edges []graph.Edge
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if u != v {
				edges = append(edges, graph.Edge{Src: graph.NodeID(u), Dst: graph.NodeID(v)})
				edges = append(edges, graph.Edge{Src: graph.NodeID(u + 10), Dst: graph.NodeID(v + 10)})
			}
		}
	}
	g, err := graph.FromEdges(20, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	c := boot(t, g, 3)
	got, _, err := WCC(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		if got[u] != 0 || got[u+10] != 10 {
			t.Fatalf("labels: %v", got)
		}
	}
	for u := 5; u < 10; u++ {
		if got[u] != int64(u) {
			t.Fatalf("isolated node %d has label %d", u, got[u])
		}
	}
}

func TestSSSPMatchesSA(t *testing.T) {
	g := testGraph(t).WithUniformWeights(1, 10, 7)
	src := graph.NodeID(0)
	want, _ := sa.SSSP(g, src, 1)
	for _, p := range []int{1, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := boot(t, g, p)
			got, _, err := SSSP(c, src, 10000)
			if err != nil {
				t.Fatal(err)
			}
			assertClose(t, "sssp", got, want, 1e-9)
		})
	}
}

func TestHopDistMatchesSA(t *testing.T) {
	g := testGraph(t)
	root := graph.NodeID(1)
	want, _ := sa.HopDist(g, root, 1)
	c := boot(t, g, 4)
	got, met, err := HopDist(c, root, 10000)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualI64(t, "hopdist", got, want)
	if met.Iterations == 0 {
		t.Error("no iterations")
	}
}

func TestEigenvectorMatchesSA(t *testing.T) {
	g := testGraph(t)
	want := sa.Eigenvector(g, 8, 1)
	c := boot(t, g, 4)
	got, met, err := Eigenvector(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if met.Iterations != 8 {
		t.Errorf("iterations = %d", met.Iterations)
	}
	assertClose(t, "ev", got, want, 1e-9)
	// Result must be L2-normalized.
	var norm float64
	for _, v := range got {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("||ev||² = %g, want 1", norm)
	}
}

func TestKCoreMatchesReference(t *testing.T) {
	g, err := graph.RMAT(8, 6, graph.TwitterLike(), 99)
	if err != nil {
		t.Fatal(err)
	}
	wantBest, wantCore := CoreNumberReference(g)
	saBest, saCore, _ := sa.KCore(g, 1)
	if saBest != wantBest {
		t.Fatalf("sa kcore max = %d, reference = %d", saBest, wantBest)
	}
	assertEqualI64(t, "sa-core", saCore, wantCore)
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := boot(t, g, p)
			gotBest, gotCore, met, err := KCore(c, 0)
			if err != nil {
				t.Fatal(err)
			}
			if gotBest != wantBest {
				t.Errorf("kcore max = %d, want %d", gotBest, wantBest)
			}
			assertEqualI64(t, "core", gotCore, wantCore)
			if met.Iterations < int(wantBest) {
				t.Errorf("suspiciously few iterations: %d", met.Iterations)
			}
		})
	}
}

func TestKCoreMaxKCap(t *testing.T) {
	g := testGraph(t)
	c := boot(t, g, 2)
	best, _, _, err := KCore(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best > 3 {
		t.Errorf("maxK cap ignored: best = %d", best)
	}
}

func TestPullFasterOrEqualTrafficThanPush(t *testing.T) {
	// Pull and push move the same payload per iteration (one value per
	// crossing edge), so data traffic should be comparable; this guards
	// against one variant accidentally duplicating messages.
	g := testGraph(t)
	cPull := boot(t, g, 4)
	_, metPull, err := PageRankPull(cPull, 3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	cPush := boot(t, g, 4)
	_, metPush, err := PageRankPush(cPush, 3, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// Pull sends request (8 B) + response (8 B) per remote edge read; push
	// sends 16 B per remote write. Read combining dedups repeated reads of
	// the same (prop, offset) within a message window, so on a skewed graph
	// pull can land well below push; only a collapse to near zero or a
	// blow-up past 2.5x would signal duplicated messages.
	ratio := float64(metPull.Traffic.DataBytesSent) / float64(metPush.Traffic.DataBytesSent)
	if ratio < 0.05 || ratio > 2.5 {
		t.Errorf("pull/push traffic ratio = %.2f (pull=%d push=%d)",
			ratio, metPull.Traffic.DataBytesSent, metPush.Traffic.DataBytesSent)
	}
}

func TestAlgorithmsOnGrid(t *testing.T) {
	// High-diameter graph: exercises many-iteration behaviour.
	g, err := graph.Grid(12, 12, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	wg := g.WithUniformWeights(1, 2, 5)
	c := boot(t, wg, 3)
	src := graph.NodeID(0)
	want, _ := sa.SSSP(wg, src, 1)
	got, met, err := SSSP(c, src, 10000)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "grid-sssp", got, want, 1e-9)
	if met.Iterations < 10 {
		t.Errorf("grid SSSP converged suspiciously fast: %d iterations", met.Iterations)
	}
}
