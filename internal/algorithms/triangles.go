package algorithms

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/reduce"
)

// Triangle counting exercises the engine's general task framework beyond
// neighborhood iteration (paper §6: "extend the compiler so that it can
// even translate algorithms that are not neighborhood iterating into PGX.D
// using our general task framework") combined with remote method invocation
// — the "moving computation instead of data" technique of §2: instead of
// pulling a remote vertex's whole adjacency list, the kernel ships its own
// list to the data and the copier-side handler runs the intersection there.
//
// Counted quantity: transitive triads — ordered triples (u, v, w) with
// edges u→v, u→w, and v→w, each triad attributed to its (u, v) edge. On a
// symmetric graph this is 6x the undirected triangle count.

// triPayload layout: dst local offset (4B) then count (4B) then count
// sorted global ids (4B each).
const triHeaderBytes = 8

// triangleKernel runs per out-edge (u→v): intersect sortedAdj(u) with
// sortedAdj(v). Local and ghosted v intersect in place; remote v ships
// adj(u) in buffer-sized chunks via RMI and accumulates returned counts.
type triangleKernel struct {
	adj      [][]graph.NodeID // sorted out-adjacency by global id (shared, read-only)
	count    core.PropID
	method   uint32
	chunkIDs int // max ids per RMI payload
}

func (k *triangleKernel) Run(c *core.Ctx) {
	u := c.NodeGlobal()
	ref := c.NbrRef()
	if !c.NbrIsRemote() {
		v := c.RefGlobal(ref)
		n := intersectSorted(k.adj[u], k.adj[v])
		if n > 0 {
			c.SetI64(k.count, c.GetI64(k.count)+int64(n))
		}
		return
	}
	mach, off := core.SplitRemoteRef(ref)
	list := k.adj[u]
	// Ship the adjacency in chunks; every chunk is an independent RMI whose
	// response adds a partial count. No per-edge state machine is needed —
	// the engine's outstanding-request tracking covers completion.
	for base := 0; base < len(list); base += k.chunkIDs {
		end := base + k.chunkIDs
		if end > len(list) {
			end = len(list)
		}
		payload := make([]byte, triHeaderBytes+4*(end-base))
		binary.LittleEndian.PutUint32(payload[0:4], off)
		binary.LittleEndian.PutUint32(payload[4:8], uint32(end-base))
		for i, w := range list[base:end] {
			binary.LittleEndian.PutUint32(payload[triHeaderBytes+4*i:], w)
		}
		c.CallRMI(mach, k.method, payload)
	}
}

func (k *triangleKernel) ReadDone(c *core.Ctx, val uint64) {
	panic("algorithms: triangle kernel issues no reads")
}

// RMIDone accumulates a chunk's intersection count into the current node.
func (k *triangleKernel) RMIDone(c *core.Ctx, payload []byte) {
	n := int64(binary.LittleEndian.Uint32(payload))
	if n > 0 {
		c.SetI64(k.count, c.GetI64(k.count)+n)
	}
}

// intersectSorted returns |a ∩ b| for ascending unique-element slices.
func intersectSorted(a, b []graph.NodeID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// TriangleCount counts transitive triads on the cluster. g must be the same
// graph instance loaded into c (the algorithm precomputes sorted adjacency
// sets from it; the engine stores only rewritten refs).
func TriangleCount(c *core.Cluster, g *graph.Graph) (int64, Metrics, error) {
	if g.NumNodes() != c.NumNodes() || g.NumEdges() != c.NumEdges() {
		return 0, Metrics{}, fmt.Errorf("algorithms: graph does not match the loaded instance")
	}
	r := &runner{c: c}
	count := r.propI64("tri_count")
	if r.err != nil {
		return 0, r.met, r.err
	}
	defer c.DropProps(count)
	c.FillI64(count, 0)

	adj := sortedUniqueAdjacency(g)
	layout := c.Layout()
	// RMI handler: intersect the shipped list with the target's adjacency.
	method := c.RegisterRMI(func(m *core.Machine) comm.RMIHandler {
		return func(src int, payload []byte) []byte {
			off := binary.LittleEndian.Uint32(payload[0:4])
			n := int(binary.LittleEndian.Uint32(payload[4:8]))
			v := layout.GlobalOf(machineID(m), off)
			mine := adj[v]
			cnt := 0
			i := 0
			for rec := 0; rec < n; rec++ {
				w := graph.NodeID(binary.LittleEndian.Uint32(payload[triHeaderBytes+4*rec:]))
				for i < len(mine) && mine[i] < w {
					i++
				}
				if i < len(mine) && mine[i] == w {
					cnt++
					i++
				}
			}
			out := make([]byte, 4)
			binary.LittleEndian.PutUint32(out, uint32(cnt))
			return out
		}
	})

	// Chunk so header+ids fit one message buffer.
	chunkIDs := (c.Config().BufferSize - comm.HeaderSize - triHeaderBytes) / 4
	if chunkIDs < 1 {
		return 0, r.met, fmt.Errorf("algorithms: buffer too small for triangle RMI")
	}
	start := nowFn()
	r.run(core.JobSpec{
		Name: "triangles",
		Iter: core.IterOutEdges,
		Task: &triangleKernel{adj: adj, count: count, method: method, chunkIDs: chunkIDs},
	})
	r.met.Iterations = 1
	if r.err != nil {
		return 0, r.met, r.err
	}
	total, err := c.ReduceI64(count, reduce.Sum)
	r.met.Total = nowFn().Sub(start)
	if err != nil {
		return 0, r.met, err
	}
	return total, r.met, nil
}

// sortedUniqueAdjacency builds each node's out-neighborhood as a sorted set
// (duplicate multi-edges collapse — a triad closes or it does not).
func sortedUniqueAdjacency(g *graph.Graph) [][]graph.NodeID {
	adj := make([][]graph.NodeID, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Out.Neighbors(graph.NodeID(u))
		if len(nbrs) == 0 {
			continue
		}
		set := make([]graph.NodeID, len(nbrs))
		copy(set, nbrs)
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		// Deduplicate in place.
		out := set[:1]
		for _, v := range set[1:] {
			if v != out[len(out)-1] {
				out = append(out, v)
			}
		}
		adj[u] = out
	}
	return adj
}

// TriangleCountReference counts transitive triads sequentially for tests
// and the SA baseline row. Like the distributed kernel it visits every
// stored edge (multi-edges each count) but intersects deduplicated
// neighbor sets.
func TriangleCountReference(g *graph.Graph) int64 {
	adj := sortedUniqueAdjacency(g)
	var total int64
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
			total += int64(intersectSorted(adj[u], adj[v]))
		}
	}
	return total
}

// machineID extracts a machine's id for RMI handlers; kept as a helper so
// the handler closure reads clearly.
func machineID(m *core.Machine) int { return m.ID() }
