package algorithms

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
)

// dirCluster boots a cluster for one direction variant over the requested
// transport. delayFaults additionally wraps the fabric in an injector that
// delays every 7th frame — a tolerated fault that perturbs message timing, so
// bit-identical results across variants also demonstrate the traversals are
// deterministic under reordering.
func dirCluster(t *testing.T, g *graph.Graph, p int, useTCP, delayFaults bool, variant string) *core.Cluster {
	t.Helper()
	cfg := core.DefaultConfig(p)
	cfg.GhostThreshold = 64
	cfg.BufferSize = 8 << 10
	cfg.ReqBuffers = 2*cfg.Workers*p + 4
	cfg.RespBuffers = 2*cfg.Copiers*p + 4
	cfg.RequestTimeout = 10 * time.Second
	cfg.CollectiveTimeout = 10 * time.Second
	switch variant {
	case "adaptive":
	case "fixed-push":
		cfg.DisableDirectionSwitching = true
		cfg.FixedDirection = core.DirPush
	case "fixed-pull":
		cfg.DisableDirectionSwitching = true
		cfg.FixedDirection = core.DirPull
	default:
		t.Fatalf("unknown variant %q", variant)
	}
	if useTCP {
		f, err := comm.NewTCPFabric(p, p*(cfg.ReqBuffers+cfg.Workers*p)+64, cfg.BufferSize)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Fabric = f
	}
	if delayFaults {
		if cfg.Fabric == nil {
			perMachine := cfg.ReqBuffers + cfg.RespBuffers + 4*p + 8 + p + 2
			cfg.Fabric = comm.NewInProcFabric(p, p*perMachine+16)
		}
		cfg.Fabric = comm.NewFaultInjector(cfg.Fabric, comm.FaultPlan{
			Seed: 7,
			Rules: []comm.FaultRule{{
				Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: comm.AnyType,
				Kind: comm.FaultDelay, Every: 7, Delay: 200 * time.Microsecond,
			}},
		})
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	if err := c.Load(g); err != nil {
		t.Fatal(err)
	}
	return c
}

// eachTransport runs body over in-proc, TCP, and TCP-with-delay-faults.
func eachTransport(t *testing.T, body func(t *testing.T, useTCP, faults bool)) {
	t.Run("inproc", func(t *testing.T) { body(t, false, false) })
	t.Run("tcp", func(t *testing.T) { body(t, true, false) })
	t.Run("tcp-faults", func(t *testing.T) { body(t, true, true) })
}

// assertBitsF64 requires exact bit equality — traversal equivalence across
// push/pull is bit-identical, not merely close.
func assertBitsF64(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %x, want %x", name, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestTraversalsAdaptiveMatchesFixed: BFS, SSSP, and WCC produce bit-identical
// results whether the direction is adaptive, pinned to push, or pinned to
// pull — on a small-world RMAT and a high-diameter grid, over both fabrics,
// and with injected frame delays perturbing delivery order.
func TestTraversalsAdaptiveMatchesFixed(t *testing.T) {
	rmat := testGraph(t).WithUniformWeights(1, 10, 7)
	grid, err := graph.Grid(20, 20, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	grid = grid.WithUniformWeights(1, 10, 7)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{{"rmat", rmat}, {"grid", grid}}

	eachTransport(t, func(t *testing.T, useTCP, faults bool) {
		for _, tg := range graphs {
			t.Run(tg.name, func(t *testing.T) {
				root := graph.NodeID(0)
				type result struct {
					hop []int64
					sp  []float64
					wcc []int64
				}
				results := map[string]result{}
				for _, variant := range []string{"fixed-push", "fixed-pull", "adaptive"} {
					c := dirCluster(t, tg.g, 3, useTCP, faults, variant)
					hop, _, err := HopDist(c, root, c.NumNodes())
					if err != nil {
						t.Fatalf("%s hopdist: %v", variant, err)
					}
					sp, _, err := SSSP(c, root, c.NumNodes())
					if err != nil {
						t.Fatalf("%s sssp: %v", variant, err)
					}
					wcc, _, err := WCC(c, c.NumNodes())
					if err != nil {
						t.Fatalf("%s wcc: %v", variant, err)
					}
					results[variant] = result{hop: hop, sp: sp, wcc: wcc}
				}
				ref := results["fixed-push"]
				for _, variant := range []string{"fixed-pull", "adaptive"} {
					got := results[variant]
					assertEqualI64(t, fmt.Sprintf("%s hopdist", variant), got.hop, ref.hop)
					assertBitsF64(t, fmt.Sprintf("%s sssp", variant), got.sp, ref.sp)
					assertEqualI64(t, fmt.Sprintf("%s wcc", variant), got.wcc, ref.wcc)
				}
			})
		}
	})
}
