package algorithms

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/reduce"
)

// Sampled harmonic closeness centrality: for K sampled sources s, run a BFS
// and accumulate 1/dist(s, v) at every reached vertex v; the estimate for v
// is the scaled sum n/K * Σ 1/dist. Harmonic closeness handles disconnected
// graphs gracefully (unreachable pairs contribute zero), which matters on
// RMAT instances with many small components. Each BFS reuses the engine's
// HopDist machinery; the accumulation is one extra node job per source.

// closenessAccumKernel folds one finished BFS into the harmonic sums.
type closenessAccumKernel struct {
	core.NoReads
	dist, acc core.PropID
	unreached int64
}

func (k *closenessAccumKernel) Run(c *core.Ctx) {
	d := c.GetI64(k.dist)
	if d <= 0 || d >= k.unreached {
		return // self or unreached
	}
	c.SetF64(k.acc, c.GetF64(k.acc)+1/float64(d))
}

// Closeness estimates harmonic closeness from samples deterministic
// pseudo-random sources (seeded). samples is clamped to the node count.
func Closeness(c *core.Cluster, samples int, seed int64, maxIter int) ([]float64, Metrics, error) {
	r := &runner{c: c}
	acc := r.propF64("close_acc")
	dist := r.propI64("close_dist")
	distNxt := r.propI64("close_dist_nxt")
	active := r.propI64("close_active")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(acc, dist, distNxt, active)
	n := c.NumNodes()
	if samples > n {
		samples = n
	}
	if samples < 1 {
		samples = 1
	}
	c.FillF64(acc, 0)
	unreached := int64(math.MaxInt64) - 1

	start := nowFn()
	state := uint64(seed)*2862933555777941757 + 3037000493
	activeFilter := func(ctx *core.Ctx) bool { return ctx.GetI64(active) != 0 }
	for s := 0; s < samples && r.err == nil; s++ {
		state = state*2862933555777941757 + 3037000493
		root := graph.NodeID(state % uint64(n))
		c.FillI64(dist, unreached)
		c.FillI64(distNxt, unreached)
		c.FillI64(active, 0)
		c.SetNodeI64(root, dist, 0)
		c.SetNodeI64(root, distNxt, 0)
		c.SetNodeI64(root, active, 1)
		for it := 0; it < maxIter && r.err == nil; it++ {
			r.run(core.JobSpec{Name: "close-relax", Iter: core.IterOutEdges,
				Task:       &hopRelaxKernel{dist: dist, distNxt: distNxt},
				Filter:     activeFilter,
				WriteProps: []core.WriteSpec{{Prop: distNxt, Op: reduce.Min}}})
			r.run(core.JobSpec{Name: "close-adopt", Iter: core.IterNodes,
				Task: &minAdoptKernel{label: dist, labelNxt: distNxt, active: active}})
			r.met.Iterations++
			remaining, err := c.ReduceI64(active, reduce.Sum)
			if err != nil {
				r.err = err
				break
			}
			if remaining == 0 {
				break
			}
		}
		r.run(core.JobSpec{Name: "close-accum", Iter: core.IterNodes,
			Task: &closenessAccumKernel{dist: dist, acc: acc, unreached: unreached}})
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	out := c.GatherF64(acc)
	scale := float64(n) / float64(samples)
	for i := range out {
		out[i] *= scale
	}
	return out, r.met, nil
}

// ClosenessReference computes the same sampled estimate sequentially (same
// source sequence) for tests.
func ClosenessReference(g *graph.Graph, samples int, seed int64) []float64 {
	n := g.NumNodes()
	if samples > n {
		samples = n
	}
	if samples < 1 {
		samples = 1
	}
	acc := make([]float64, n)
	state := uint64(seed)*2862933555777941757 + 3037000493
	for s := 0; s < samples; s++ {
		state = state*2862933555777941757 + 3037000493
		root := graph.NodeID(state % uint64(n))
		dist := bfsFrom(g, root)
		for v, d := range dist {
			if d > 0 {
				acc[v] += 1 / float64(d)
			}
		}
	}
	scale := float64(n) / float64(samples)
	for i := range acc {
		acc[i] *= scale
	}
	return acc
}

func bfsFrom(g *graph.Graph, root graph.NodeID) []int64 {
	dist := make([]int64, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	frontier := []graph.NodeID{root}
	for d := int64(1); len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, v := range g.Out.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}
