package algorithms

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/reduce"
)

// Maximal independent set via Luby's algorithm, exercising the engine's
// filter + push machinery with a three-state protocol: each round, every
// undecided vertex draws a deterministic pseudo-random priority and joins
// the set if it beats every undecided neighbor (over the undirected view);
// its neighbors are then excluded. Terminates in O(log n) expected rounds.

// Vertex states in the status property.
const (
	misUndecided int64 = 0
	misInSet     int64 = 1
	misExcluded  int64 = 2
)

// misPriority derives a per-(round, vertex) priority; the vertex id breaks
// ties so priorities are distinct.
func misPriority(seed int64, round int, v graph.NodeID) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(round)*0xbf58476d1ce4e5b9 + uint64(v)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	// Clear the sign bit, then break ties by id.
	return int64((x>>1)<<20) | int64(v&0xfffff)
}

// misDrawKernel assigns this round's priority and bottoms the neighbor max.
type misDrawKernel struct {
	core.NoReads
	pri, nbrPri core.PropID
	seed        int64
	round       int
}

func (k *misDrawKernel) Run(c *core.Ctx) {
	c.SetI64(k.pri, misPriority(k.seed, k.round, c.NodeGlobal()))
	c.SetI64(k.nbrPri, reduce.BottomI64(reduce.Max))
}

// misPushPriority pushes an undecided vertex's priority to its neighbors.
type misPushPriority struct {
	core.NoReads
	pri, nbrPri core.PropID
}

func (k *misPushPriority) Run(c *core.Ctx) {
	// Self-loops must not block the vertex from beating "its neighbors".
	if c.NbrRef() == int64(c.Node) {
		return
	}
	c.NbrWriteI64(k.nbrPri, reduce.Max, c.GetI64(k.pri))
}

// misJoinKernel moves local winners into the set.
type misJoinKernel struct {
	core.NoReads
	pri, nbrPri, status core.PropID
}

func (k *misJoinKernel) Run(c *core.Ctx) {
	if c.GetI64(k.status) != misUndecided {
		return
	}
	if c.GetI64(k.pri) > c.GetI64(k.nbrPri) {
		c.SetI64(k.status, misInSet)
	}
}

// misExcludeMark pushes exclusion to neighbors of fresh set members.
type misExcludeMark struct {
	core.NoReads
	excluded core.PropID
}

func (k *misExcludeMark) Run(c *core.Ctx) {
	c.NbrWriteI64(k.excluded, reduce.Or, 1)
}

// misApplyExclusion finalizes exclusions and counts undecided survivors.
type misApplyExclusion struct {
	core.NoReads
	excluded, status core.PropID
}

func (k *misApplyExclusion) Run(c *core.Ctx) {
	if c.GetI64(k.status) == misUndecided && c.GetI64(k.excluded) != 0 {
		c.SetI64(k.status, misExcluded)
	}
	c.SetI64(k.excluded, 0)
}

// MIS computes a maximal independent set over the undirected view of the
// loaded graph and returns membership flags (1 = in set). Deterministic in
// seed.
func MIS(c *core.Cluster, seed int64, maxRounds int) ([]bool, Metrics, error) {
	r := &runner{c: c}
	status := r.propI64("mis_status")
	pri := r.propI64("mis_pri")
	nbrPri := r.propI64("mis_nbr_pri")
	excluded := r.propI64("mis_excl")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(status, pri, nbrPri, excluded)
	c.FillI64(status, misUndecided)
	c.FillI64(excluded, 0)

	undecided := func(ctx *core.Ctx) bool { return ctx.GetI64(status) == misUndecided }
	inSet := func(ctx *core.Ctx) bool { return ctx.GetI64(status) == misInSet }

	start := nowFn()
	for round := 0; (maxRounds <= 0 || round < maxRounds) && r.err == nil; round++ {
		r.run(core.JobSpec{Name: "mis-draw", Iter: core.IterNodes,
			Task: &misDrawKernel{pri: pri, nbrPri: nbrPri, seed: seed, round: round}})
		push := &misPushPriority{pri: pri, nbrPri: nbrPri}
		writes := []core.WriteSpec{{Prop: nbrPri, Op: reduce.Max}}
		r.run(core.JobSpec{Name: "mis-push", Iter: core.IterBothEdges, Task: push, Filter: undecided, WriteProps: writes})
		r.run(core.JobSpec{Name: "mis-join", Iter: core.IterNodes,
			Task: &misJoinKernel{pri: pri, nbrPri: nbrPri, status: status}})
		excl := &misExcludeMark{excluded: excluded}
		exclWrites := []core.WriteSpec{{Prop: excluded, Op: reduce.Or}}
		r.run(core.JobSpec{Name: "mis-exclude", Iter: core.IterBothEdges, Task: excl, Filter: inSet, WriteProps: exclWrites})
		r.run(core.JobSpec{Name: "mis-apply", Iter: core.IterNodes,
			Task: &misApplyExclusion{excluded: excluded, status: status}})
		r.met.Iterations++
		if r.err != nil {
			break
		}
		remaining, err := c.ReduceI64(status, reduce.Min)
		if err != nil {
			r.err = err
			break
		}
		if remaining != misUndecided {
			break // every vertex decided
		}
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	states := c.GatherI64(status)
	out := make([]bool, len(states))
	for i, s := range states {
		out[i] = s == misInSet
	}
	return out, r.met, nil
}

// VerifyMIS checks independence (no two adjacent members over the
// undirected view, self-loops ignored) and maximality (every non-member has
// a member neighbor; vertices with no non-self edges must be members).
// Returns "" when valid, else a description.
func VerifyMIS(g *graph.Graph, inSet []bool) string {
	for u := 0; u < g.NumNodes(); u++ {
		hasMemberNbr := false
		hasRealNbr := false
		check := func(v graph.NodeID) string {
			if int(v) == u {
				return ""
			}
			hasRealNbr = true
			if inSet[v] {
				hasMemberNbr = true
				if inSet[u] {
					return fmt.Sprintf("vertices %d and %d are adjacent set members", u, v)
				}
			}
			return ""
		}
		for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
			if msg := check(v); msg != "" {
				return msg
			}
		}
		for _, v := range g.In.Neighbors(graph.NodeID(u)) {
			if msg := check(v); msg != "" {
				return msg
			}
		}
		if !inSet[u] {
			if !hasRealNbr {
				return fmt.Sprintf("vertex %d has no non-self neighbors and must be a member", u)
			}
			if !hasMemberNbr {
				return fmt.Sprintf("vertex %d is outside the set with no member neighbor", u)
			}
		}
	}
	return ""
}
