package algorithms

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestTriangleCountMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := TriangleCountReference(g)
	if want == 0 {
		t.Fatal("test graph has no triads; pick a denser graph")
	}
	for _, p := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := boot(t, g, p)
			got, met, err := TriangleCount(c, g)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("triads = %d, want %d", got, want)
			}
			if met.Jobs != 1 {
				t.Errorf("jobs = %d", met.Jobs)
			}
		})
	}
}

func TestTriangleCountChunkedRMI(t *testing.T) {
	// Tiny buffers force multi-chunk adjacency shipping.
	g := testGraph(t)
	want := TriangleCountReference(g)
	cfg := core.DefaultConfig(3)
	cfg.BufferSize = 256 // ~57 ids per chunk; max degree is far larger
	cfg.ReqBuffers = 16
	cfg.RespBuffers = 16
	cfg.GhostThreshold = core.GhostDisabled // maximize remote edges
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Load(g); err != nil {
		t.Fatal(err)
	}
	got, _, err := TriangleCount(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("triads = %d, want %d", got, want)
	}
}

func TestTriangleCountKnownGraph(t *testing.T) {
	// Complete directed triangle 0→1→2→0 plus the closing chords 0→2, 1→0,
	// 2→1: every ordered pair is an edge, so every (u,v) edge closes with
	// exactly one w. 6 edges x 1 = 6 transitive triads.
	var edges []graph.Edge
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if u != v {
				edges = append(edges, graph.Edge{Src: graph.NodeID(u), Dst: graph.NodeID(v)})
			}
		}
	}
	g, err := graph.FromEdges(3, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	if ref := TriangleCountReference(g); ref != 6 {
		t.Fatalf("reference = %d, want 6", ref)
	}
	c := boot(t, g, 2)
	got, _, err := TriangleCount(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("triads = %d, want 6", got)
	}
}

func TestTriangleCountRejectsMismatchedGraph(t *testing.T) {
	g := testGraph(t)
	other, err := graph.Uniform(10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := boot(t, g, 2)
	if _, _, err := TriangleCount(c, other); err == nil {
		t.Error("mismatched graph accepted")
	}
}

func TestPersonalizedPageRankMatchesReference(t *testing.T) {
	g := testGraph(t)
	sources := []graph.NodeID{0, 7, 100}
	want := PersonalizedPageRankReference(g, sources, 8, 0.85)
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := boot(t, g, p)
			got, met, err := PersonalizedPageRank(c, sources, 8, 0.85)
			if err != nil {
				t.Fatal(err)
			}
			if met.Iterations != 8 {
				t.Errorf("iterations = %d", met.Iterations)
			}
			assertClose(t, "ppr", got, want, 1e-12)
		})
	}
}

func TestPersonalizedPageRankConcentratesNearSources(t *testing.T) {
	// On a grid, mass must decay with hop distance from the source.
	g, err := graph.Grid(20, 20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := boot(t, g, 2)
	src := graph.NodeID(0)
	ppr, _, err := PersonalizedPageRank(c, []graph.NodeID{src}, 30, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	hops, _, err := HopDist(c, src, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Average rank at distance 1 must exceed average rank at distance 10.
	avgAt := func(d int64) float64 {
		var sum float64
		var n int
		for i, h := range hops {
			if h == d {
				sum += ppr[i]
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no nodes at distance %d", d)
		}
		return sum / float64(n)
	}
	if near, far := avgAt(1), avgAt(10); near <= far {
		t.Errorf("rank at distance 1 (%g) not above distance 10 (%g)", near, far)
	}
	if ppr[src] <= 0 {
		t.Error("source has no rank")
	}
	// Total mass stays bounded by 1.
	var total float64
	for _, v := range ppr {
		total += v
	}
	if total > 1+1e-9 || math.IsNaN(total) {
		t.Errorf("total mass = %g", total)
	}
}

func TestPersonalizedPageRankValidation(t *testing.T) {
	g := testGraph(t)
	c := boot(t, g, 2)
	if _, _, err := PersonalizedPageRank(c, nil, 5, 0.85); err == nil {
		t.Error("empty source set accepted")
	}
	if _, _, err := PersonalizedPageRank(c, []graph.NodeID{graph.NodeID(g.NumNodes() + 1)}, 5, 0.85); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestMISIsValidAndDeterministic(t *testing.T) {
	g := testGraph(t)
	var first []bool
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := boot(t, g, p)
			inSet, met, err := MIS(c, 42, 0)
			if err != nil {
				t.Fatal(err)
			}
			if msg := VerifyMIS(g, inSet); msg != "" {
				t.Fatalf("invalid MIS: %s", msg)
			}
			if met.Iterations == 0 {
				t.Error("no rounds recorded")
			}
			size := 0
			for _, in := range inSet {
				if in {
					size++
				}
			}
			if size == 0 {
				t.Error("empty MIS on a non-empty graph")
			}
			if first == nil {
				first = inSet
			} else {
				for i := range inSet {
					if inSet[i] != first[i] {
						t.Fatalf("MIS differs across machine counts at node %d", i)
					}
				}
			}
		})
	}
}

func TestMISOnPathGraph(t *testing.T) {
	// Path 0-1-2-3-4 (undirected view): an MIS must alternate; verify via
	// the checker and require at least 2 members.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		edges = append(edges, graph.Edge{Src: graph.NodeID(i), Dst: graph.NodeID(i + 1)})
	}
	g, err := graph.FromEdges(5, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	c := boot(t, g, 2)
	inSet, _, err := MIS(c, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if msg := VerifyMIS(g, inSet); msg != "" {
		t.Fatalf("invalid MIS: %s", msg)
	}
	size := 0
	for _, in := range inSet {
		if in {
			size++
		}
	}
	if size < 2 {
		t.Errorf("path MIS size = %d, want >= 2", size)
	}
}

func TestMISWithSelfLoops(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 2, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	c := boot(t, g, 2)
	inSet, _, err := MIS(c, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if msg := VerifyMIS(g, inSet); msg != "" {
		t.Fatalf("invalid MIS: %s", msg)
	}
	// Node 2 only has a self-loop: it must be in the set.
	if !inSet[2] {
		t.Error("self-loop-only vertex excluded")
	}
}

func TestClosenessMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := ClosenessReference(g, 4, 99)
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			c := boot(t, g, p)
			got, met, err := Closeness(c, 4, 99, 10000)
			if err != nil {
				t.Fatal(err)
			}
			assertClose(t, "closeness", got, want, 1e-9)
			if met.Iterations == 0 {
				t.Error("no iterations")
			}
		})
	}
}

func TestClosenessSampleClamp(t *testing.T) {
	g, err := graph.Grid(4, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := boot(t, g, 2)
	// More samples than nodes clamps; center nodes beat corners.
	got, _, err := Closeness(c, 100, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	corner, center := got[0], got[5] // (0,0) vs (1,1)
	if center <= corner {
		t.Errorf("center closeness %g not above corner %g", center, corner)
	}
}
