package algorithms

import (
	"math"

	"repro/internal/core"
	"repro/internal/reduce"
)

// Eigenvector centrality by power iteration (paper: "EV is similar to exact
// Pagerank computation — every vertex is computing a new value from its
// neighbors at every iteration step. PGX.D implements this algorithm with
// data pulling."):
//
//	nxt(n) = Σ_{t∈inNbrs(n)} ev(t);   ev = nxt / ‖nxt‖₂
//
// The L2 normalization is a sequential region between jobs, realized with a
// cluster-wide sum reduction.

// evPullKernel reads ev from each incoming neighbor and accumulates locally.
type evPullKernel struct {
	ev, nxt core.PropID
}

func (k *evPullKernel) Run(c *core.Ctx) { c.NbrRead(k.ev) }

func (k *evPullKernel) ReadDone(c *core.Ctx, val uint64) {
	c.SetF64(k.nxt, c.GetF64(k.nxt)+core.F64Word(val))
}

// evNormalizeKernel applies ev = nxt * invNorm and clears nxt.
type evNormalizeKernel struct {
	core.NoReads
	ev, nxt core.PropID
	invNorm float64
}

func (k *evNormalizeKernel) Run(c *core.Ctx) {
	c.SetF64(k.ev, c.GetF64(k.nxt)*k.invNorm)
	c.SetF64(k.nxt, 0)
}

// Eigenvector runs iters power iterations and returns the (L2-normalized)
// eigenvector centrality of every node.
func Eigenvector(c *core.Cluster, iters int) ([]float64, Metrics, error) {
	r := &runner{c: c}
	ev := r.propF64("ev")
	nxt := r.propF64("ev_nxt")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(nxt)
	n := float64(c.NumNodes())
	c.FillF64(ev, 1/math.Sqrt(n))
	c.FillF64(nxt, 0)

	start := nowFn()
	for it := 0; it < iters && r.err == nil; it++ {
		r.run(core.JobSpec{Name: "ev-pull", Iter: core.IterInEdges,
			Task:      &evPullKernel{ev: ev, nxt: nxt},
			ReadProps: []core.PropID{ev}})
		if r.err != nil {
			break
		}
		sumSq, err := c.ReduceMappedF64(nxt, reduce.Sum, func(v float64) float64 { return v * v })
		if err != nil {
			r.err = err
			break
		}
		invNorm := 0.0
		if sumSq > 0 {
			invNorm = 1 / math.Sqrt(sumSq)
		}
		r.run(core.JobSpec{Name: "ev-normalize", Iter: core.IterNodes,
			Task: &evNormalizeKernel{ev: ev, nxt: nxt, invNorm: invNorm}})
		r.met.Iterations++
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherF64(ev), r.met, nil
}
