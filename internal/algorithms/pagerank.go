package algorithms

import (
	"math"

	"repro/internal/core"
	"repro/internal/reduce"
)

// The three PageRank variants of the paper's §5.2. All compute the power
// iteration
//
//	PR'(n) = (1-d)/N + d * Σ_{t∈inNbrs(n)} PR(t)/outDeg(t)
//
// but move the data differently: pull reads PR(t)/outDeg(t) from incoming
// neighbors (one-sided remote reads, plain local accumulation — no atomics);
// push writes n's contribution to each outgoing neighbor (atomic SUM
// reductions, the only form conventional frameworks support); approx
// propagates only PR deltas and deactivates converged vertices.

// scaleKernel computes scaled = pr/outDeg per node (a temporary property, so
// the iteration job never reads and writes the same property — the paper's
// "temporary copies" discipline).
type scaleKernel struct {
	core.NoReads
	pr, scaled core.PropID
}

func (k *scaleKernel) Run(c *core.Ctx) {
	d := c.OutDegree()
	if d == 0 {
		c.SetF64(k.scaled, 0)
		return
	}
	c.SetF64(k.scaled, c.GetF64(k.pr)/float64(d))
}

// prPullKernel reads scaled from each incoming neighbor and accumulates into
// the node's nxt with a plain addition — no atomic needed because all edges
// of one node run on one worker.
type prPullKernel struct {
	scaled, nxt core.PropID
}

func (k *prPullKernel) Run(c *core.Ctx) { c.NbrRead(k.scaled) }

func (k *prPullKernel) ReadDone(c *core.Ctx, val uint64) {
	c.SetF64(k.nxt, c.GetF64(k.nxt)+core.F64Word(val))
}

// prPushKernel pushes the node's scaled value into each outgoing neighbor's
// nxt with an atomic SUM reduction.
type prPushKernel struct {
	core.NoReads
	scaled, nxt core.PropID
}

func (k *prPushKernel) Run(c *core.Ctx) {
	c.NbrWriteF64(k.nxt, reduce.Sum, c.GetF64(k.scaled))
}

// prApplyKernel finishes an iteration and prepares the next in one pass:
// pr = (1-d)/N + d*nxt, scaled = pr/outDeg, nxt = 0. Fusing the apply and
// scale phases halves the node-iterator jobs per power iteration.
type prApplyKernel struct {
	core.NoReads
	pr, nxt, scaled core.PropID
	base            float64
	damping         float64
}

func (k *prApplyKernel) Run(c *core.Ctx) {
	pr := k.base + k.damping*c.GetF64(k.nxt)
	c.SetF64(k.pr, pr)
	c.SetF64(k.nxt, 0)
	if d := c.OutDegree(); d > 0 {
		c.SetF64(k.scaled, pr/float64(d))
	} else {
		c.SetF64(k.scaled, 0)
	}
}

// PageRankPull runs iters power iterations with the pull pattern and returns
// the PageRank vector.
func PageRankPull(c *core.Cluster, iters int, damping float64) ([]float64, Metrics, error) {
	return pageRankExact(c, iters, damping, true)
}

// PageRankPush runs iters power iterations with the push pattern.
func PageRankPush(c *core.Cluster, iters int, damping float64) ([]float64, Metrics, error) {
	return pageRankExact(c, iters, damping, false)
}

func pageRankExact(c *core.Cluster, iters int, damping float64, pull bool) ([]float64, Metrics, error) {
	r := &runner{c: c}
	pr := r.propF64("pr")
	nxt := r.propF64("pr_nxt")
	scaled := r.propF64("pr_scaled")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(nxt, scaled)
	n := float64(c.NumNodes())
	c.FillF64(pr, 1/n)
	c.FillF64(nxt, 0)

	start := nowFn()
	// Seed scaled = pr/outDeg once; afterwards the fused apply kernel keeps
	// it current.
	r.run(core.JobSpec{
		Name: "pr-scale", Iter: core.IterNodes,
		Task: &scaleKernel{pr: pr, scaled: scaled},
	})
	for it := 0; it < iters && r.err == nil; it++ {
		if pull {
			r.run(core.JobSpec{
				Name: "pr-pull", Iter: core.IterInEdges,
				Task:      &prPullKernel{scaled: scaled, nxt: nxt},
				ReadProps: []core.PropID{scaled},
			})
		} else {
			r.run(core.JobSpec{
				Name: "pr-push", Iter: core.IterOutEdges,
				Task:       &prPushKernel{scaled: scaled, nxt: nxt},
				WriteProps: []core.WriteSpec{{Prop: nxt, Op: reduce.Sum}},
				// Stealable, but note stolen SUM contributions arrive in a
				// different order, so steal-on PageRank-push is numerically
				// equivalent rather than bit-identical.
				Steal: &core.StealSpec{Own: []core.PropID{scaled}},
			})
		}
		r.run(core.JobSpec{
			Name: "pr-apply", Iter: core.IterNodes,
			Task: &prApplyKernel{pr: pr, nxt: nxt, scaled: scaled, base: (1 - damping) / n, damping: damping},
		})
		r.met.Iterations++
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherF64(pr), r.met, nil
}

// --- approximate PageRank ----------------------------------------------------

// prDeltaPushKernel propagates damped deltas from active nodes.
type prDeltaPushKernel struct {
	core.NoReads
	scaledDelta, deltaNxt core.PropID
}

func (k *prDeltaPushKernel) Run(c *core.Ctx) {
	c.NbrWriteF64(k.deltaNxt, reduce.Sum, c.GetF64(k.scaledDelta))
}

// prDeltaApplyKernel folds the received delta into pr and decides activity.
type prDeltaApplyKernel struct {
	core.NoReads
	pr, delta, deltaNxt, scaledDelta, active core.PropID
	damping                                  float64
	threshold                                float64
}

func (k *prDeltaApplyKernel) Run(c *core.Ctx) {
	d := c.GetF64(k.deltaNxt)
	c.SetF64(k.deltaNxt, 0)
	c.SetF64(k.pr, c.GetF64(k.pr)+d)
	c.SetF64(k.delta, d)
	if math.Abs(d) >= k.threshold {
		c.SetI64(k.active, 1)
		if od := c.OutDegree(); od > 0 {
			c.SetF64(k.scaledDelta, k.damping*d/float64(od))
		} else {
			c.SetF64(k.scaledDelta, 0)
		}
	} else {
		c.SetI64(k.active, 0)
	}
}

// PageRankApprox runs the paper's delta-propagation PageRank: nodes whose
// delta falls below threshold deactivate, so computation and communication
// shrink every iteration ("this method performs a decreasing amount of
// computation and communication as the iteration continues"). Only the push
// form exists — "this approximation only works with the push-based
// implementation."
func PageRankApprox(c *core.Cluster, damping, threshold float64, maxIter int) ([]float64, Metrics, error) {
	r := &runner{c: c}
	pr := r.propF64("apr")
	delta := r.propF64("apr_delta")
	deltaNxt := r.propF64("apr_delta_nxt")
	scaledDelta := r.propF64("apr_scaled")
	active := r.propI64("apr_active")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(delta, deltaNxt, scaledDelta, active)
	n := float64(c.NumNodes())
	base := (1 - damping) / n
	c.FillF64(pr, base)
	c.FillF64(delta, base)
	c.FillF64(deltaNxt, 0)
	c.FillI64(active, 1)
	c.FillF64(scaledDelta, 0)
	// Initial scaled delta seeds the first propagation round.
	r.run(core.JobSpec{
		Name: "apr-seed", Iter: core.IterNodes,
		Task: &seedScaledDelta{delta: delta, scaledDelta: scaledDelta, damping: damping},
	})

	start := nowFn()
	activeFilter := func(ctx *core.Ctx) bool { return ctx.GetI64(active) != 0 }
	for it := 0; it < maxIter && r.err == nil; it++ {
		r.run(core.JobSpec{
			Name: "apr-push", Iter: core.IterOutEdges,
			Task:       &prDeltaPushKernel{scaledDelta: scaledDelta, deltaNxt: deltaNxt},
			Filter:     activeFilter,
			WriteProps: []core.WriteSpec{{Prop: deltaNxt, Op: reduce.Sum}},
		})
		r.run(core.JobSpec{
			Name: "apr-apply", Iter: core.IterNodes,
			Task: &prDeltaApplyKernel{
				pr: pr, delta: delta, deltaNxt: deltaNxt, scaledDelta: scaledDelta,
				active: active, damping: damping, threshold: threshold,
			},
		})
		r.met.Iterations++
		remaining, err := c.ReduceI64(active, reduce.Sum)
		if err != nil {
			r.err = err
			break
		}
		if remaining == 0 {
			break
		}
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherF64(pr), r.met, nil
}

type seedScaledDelta struct {
	core.NoReads
	delta, scaledDelta core.PropID
	damping            float64
}

func (k *seedScaledDelta) Run(c *core.Ctx) {
	if od := c.OutDegree(); od > 0 {
		c.SetF64(k.scaledDelta, k.damping*c.GetF64(k.delta)/float64(od))
	}
}
