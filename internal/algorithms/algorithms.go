// Package algorithms implements the paper's evaluation suite (Table 2) on
// the PGX.D engine: exact PageRank in both pull and push form, approximate
// PageRank with delta propagation, weakly connected components, single-source
// shortest paths (Bellman-Ford), hop distance (BFS), eigenvector centrality,
// and the maximum k-core number. Each algorithm is written as the paper
// writes them — a driver of sequential regions interleaved with parallel
// jobs — and each returns Metrics suitable for the benchmark harness.
package algorithms

import (
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// Metrics aggregates the execution of one algorithm run.
type Metrics struct {
	// Iterations is the number of algorithm-level iterations executed.
	Iterations int
	// Jobs is the number of parallel regions run.
	Jobs int
	// Total is the end-to-end wall time of the algorithm body (excluding
	// graph loading and result gathering).
	Total time.Duration
	// JobTime is the summed duration of all parallel regions.
	JobTime time.Duration
	// Breakdown aggregates the per-job Figure 6c decomposition.
	Breakdown core.Breakdown
	// Traffic aggregates the transport deltas of all jobs.
	Traffic comm.Snapshot
	// PushSteps / PullSteps count traversal supersteps by direction (only
	// the direction-optimizing traversals populate them; the dense ablation
	// path counts every superstep as push).
	PushSteps int
	PullSteps int
}

// PerIteration returns the average wall time per iteration, the number the
// paper's Table 3 reports for PageRank and eigenvector centrality.
func (m Metrics) PerIteration() time.Duration {
	if m.Iterations == 0 {
		return 0
	}
	return m.Total / time.Duration(m.Iterations)
}

// track folds one job's stats into the metrics.
func (m *Metrics) track(st core.JobStats) {
	m.Jobs++
	m.JobTime += st.Duration
	m.Breakdown.Add(st.Breakdown)
	m.Traffic = m.Traffic.Add(st.Traffic)
}

// nowFn indirects time.Now so tests can stub algorithm timing.
var nowFn = time.Now

// runner wraps a cluster with metrics tracking and deferred error handling
// so algorithm bodies read like the paper's pseudocode instead of error
// plumbing.
type runner struct {
	c   *core.Cluster
	met Metrics
	err error
}

func (r *runner) run(spec core.JobSpec) {
	r.runStats(spec)
}

// runStats runs one job and returns its stats (zero value after an error) —
// for callers that feed JobStats.Frontiers or Traffic back into a policy.
func (r *runner) runStats(spec core.JobSpec) core.JobStats {
	if r.err != nil {
		return core.JobStats{}
	}
	st, err := r.c.RunJob(spec)
	if err != nil {
		r.err = err
		return core.JobStats{}
	}
	r.met.track(st)
	return st
}

// dirStep counts one traversal superstep in the chosen direction.
func (r *runner) dirStep(d core.Direction) {
	if d == core.DirPull {
		r.met.PullSteps++
	} else {
		r.met.PushSteps++
	}
}

func (r *runner) propF64(name string) core.PropID {
	if r.err != nil {
		return 0
	}
	p, err := r.c.AddPropF64(name)
	if err != nil {
		r.err = err
	}
	return p
}

func (r *runner) propI64(name string) core.PropID {
	if r.err != nil {
		return 0
	}
	p, err := r.c.AddPropI64(name)
	if err != nil {
		r.err = err
	}
	return p
}
