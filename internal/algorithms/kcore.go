package algorithms

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/reduce"
)

// KCore finds the biggest k-core number of the graph (Table 2: "Find
// Biggest K-core number") by iterative peeling over the undirected view:
// for k = 1, 2, ... repeatedly remove every surviving node whose remaining
// degree is below k, decrementing its neighbors' degrees, until no node is
// removed; if any node survives, the graph has a k-core. The largest such k
// is the answer, and each node's core number is the last k at which it
// survived.
//
// The peeling runs an enormous number of tiny parallel steps, which is why
// the paper singles it out: "for algorithms which require a lot of iteration
// steps while each step does a very small amount of work (e.g. KCore), the
// performance is totally governed by these [framework] overheads."

// dyingMarkKernel marks alive nodes whose degree fell below k.
type dyingMarkKernel struct {
	core.NoReads
	deg, alive, dying core.PropID
	k                 int64
}

func (kk *dyingMarkKernel) Run(c *core.Ctx) {
	if c.GetI64(kk.alive) != 0 && c.GetI64(kk.deg) < kk.k {
		c.SetI64(kk.alive, 0)
		c.SetI64(kk.dying, 1)
	} else {
		c.SetI64(kk.dying, 0)
	}
}

// degDecKernel subtracts 1 from each neighbor's remaining degree; run from
// dying nodes over both orientations (undirected view).
type degDecKernel struct {
	core.NoReads
	deg core.PropID
}

func (kk *degDecKernel) Run(c *core.Ctx) {
	c.NbrWriteI64(kk.deg, reduce.Sum, -1)
}

// coreRecordKernel records k as the core number of nodes still alive.
type coreRecordKernel struct {
	core.NoReads
	alive, coreNum core.PropID
	k              int64
}

func (kk *coreRecordKernel) Run(c *core.Ctx) {
	if c.GetI64(kk.alive) != 0 {
		c.SetI64(kk.coreNum, kk.k)
	}
}

// KCore returns the maximum core number, each node's core number, and
// metrics. maxK caps the search (0 means unbounded).
func KCore(c *core.Cluster, maxK int64) (int64, []int64, Metrics, error) {
	r := &runner{c: c}
	deg := r.propI64("kcore_deg")
	alive := r.propI64("kcore_alive")
	dying := r.propI64("kcore_dying")
	coreNum := r.propI64("kcore_num")
	if r.err != nil {
		return 0, nil, r.met, r.err
	}
	defer c.DropProps(deg, alive, dying)
	c.FillI64(alive, 1)
	c.FillI64(dying, 0)
	c.FillI64(coreNum, 0)
	start := nowFn()
	// Initialize remaining degree = in+out (undirected multigraph view).
	r.run(core.JobSpec{Name: "kcore-deg", Iter: core.IterNodes, Task: &degInitKernel{deg: deg}})

	dyingFilter := func(ctx *core.Ctx) bool { return ctx.GetI64(dying) != 0 }
	best := int64(0)
	for k := int64(1); (maxK <= 0 || k <= maxK) && r.err == nil; k++ {
		// Inner loop: peel until stable at this k.
		for r.err == nil {
			r.run(core.JobSpec{Name: "kcore-mark", Iter: core.IterNodes,
				Task: &dyingMarkKernel{deg: deg, alive: alive, dying: dying, k: k}})
			removed, err := c.ReduceI64(dying, reduce.Sum)
			if err != nil {
				r.err = err
				break
			}
			r.met.Iterations++
			if removed == 0 {
				break
			}
			dec := &degDecKernel{deg: deg}
			writes := []core.WriteSpec{{Prop: deg, Op: reduce.Sum}}
			r.run(core.JobSpec{Name: "kcore-dec", Iter: core.IterBothEdges,
				Task: dec, Filter: dyingFilter, WriteProps: writes})
		}
		if r.err != nil {
			break
		}
		survivors, err := c.ReduceI64(alive, reduce.Sum)
		if err != nil {
			r.err = err
			break
		}
		if survivors == 0 {
			break
		}
		best = k
		r.run(core.JobSpec{Name: "kcore-record", Iter: core.IterNodes,
			Task: &coreRecordKernel{alive: alive, coreNum: coreNum, k: k}})
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return 0, nil, r.met, r.err
	}
	return best, c.GatherI64(coreNum), r.met, nil
}

type degInitKernel struct {
	core.NoReads
	deg core.PropID
}

func (kk *degInitKernel) Run(c *core.Ctx) {
	c.SetI64(kk.deg, c.InDegree()+c.OutDegree())
}

// CoreNumberReference computes core numbers sequentially with the standard
// peeling algorithm over the undirected multigraph view — used by tests to
// validate the distributed implementation.
func CoreNumberReference(g *graph.Graph) (int64, []int64) {
	n := g.NumNodes()
	deg := make([]int64, n)
	for u := 0; u < n; u++ {
		deg[u] = g.TotalDegree(graph.NodeID(u))
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	coreNum := make([]int64, n)
	best := int64(0)
	remaining := n
	for k := int64(1); remaining > 0; k++ {
		for {
			removed := 0
			for u := 0; u < n; u++ {
				if alive[u] && deg[u] < k {
					alive[u] = false
					removed++
					remaining--
					for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
						deg[v]--
					}
					for _, v := range g.In.Neighbors(graph.NodeID(u)) {
						deg[v]--
					}
				}
			}
			if removed == 0 {
				break
			}
		}
		if remaining == 0 {
			break
		}
		best = k
		for u := 0; u < n; u++ {
			if alive[u] {
				coreNum[u] = k
			}
		}
	}
	return best, coreNum
}
