package algorithms

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// PersonalizedPageRank is random-walk-with-restart PageRank: the teleport
// mass returns only to the given source set instead of spreading uniformly,
// ranking vertices by proximity to the sources. A one-field variation of
// the pull kernel, included as an engine-reuse demonstration (and because
// the production PGX product that grew out of the paper ships it).
//
//	PR'(n) = d * Σ_{t∈inNbrs(n)} PR(t)/outDeg(t) + (1-d) * [n ∈ S]/|S|
type pprApplyKernel struct {
	core.NoReads
	pr, nxt, scaled, isSource core.PropID
	sourceBase                float64
	damping                   float64
}

func (k *pprApplyKernel) Run(c *core.Ctx) {
	pr := k.damping * c.GetF64(k.nxt)
	if c.GetI64(k.isSource) != 0 {
		pr += k.sourceBase
	}
	c.SetF64(k.pr, pr)
	c.SetF64(k.nxt, 0)
	if d := c.OutDegree(); d > 0 {
		c.SetF64(k.scaled, pr/float64(d))
	} else {
		c.SetF64(k.scaled, 0)
	}
}

// PersonalizedPageRank runs iters pull-mode power iterations restarting at
// sources.
func PersonalizedPageRank(c *core.Cluster, sources []graph.NodeID, iters int, damping float64) ([]float64, Metrics, error) {
	if len(sources) == 0 {
		return nil, Metrics{}, fmt.Errorf("algorithms: personalized PageRank needs at least one source")
	}
	r := &runner{c: c}
	pr := r.propF64("ppr")
	nxt := r.propF64("ppr_nxt")
	scaled := r.propF64("ppr_scaled")
	isSource := r.propI64("ppr_src")
	if r.err != nil {
		return nil, r.met, r.err
	}
	defer c.DropProps(nxt, scaled, isSource)

	c.FillI64(isSource, 0)
	for _, s := range sources {
		if int(s) >= c.NumNodes() {
			return nil, r.met, fmt.Errorf("algorithms: source %d out of range", s)
		}
		c.SetNodeI64(s, isSource, 1)
	}
	sourceBase := (1 - damping) / float64(len(sources))
	// Start with all mass on the sources.
	c.FillF64(pr, 0)
	for _, s := range sources {
		c.SetNodeF64(s, pr, 1/float64(len(sources)))
	}
	c.FillF64(nxt, 0)

	start := nowFn()
	r.run(core.JobSpec{Name: "ppr-scale", Iter: core.IterNodes,
		Task: &scaleKernel{pr: pr, scaled: scaled}})
	for it := 0; it < iters && r.err == nil; it++ {
		r.run(core.JobSpec{Name: "ppr-pull", Iter: core.IterInEdges,
			Task:      &prPullKernel{scaled: scaled, nxt: nxt},
			ReadProps: []core.PropID{scaled}})
		r.run(core.JobSpec{Name: "ppr-apply", Iter: core.IterNodes,
			Task: &pprApplyKernel{pr: pr, nxt: nxt, scaled: scaled, isSource: isSource,
				sourceBase: sourceBase, damping: damping}})
		r.met.Iterations++
	}
	r.met.Total = nowFn().Sub(start)
	if r.err != nil {
		return nil, r.met, r.err
	}
	return c.GatherF64(pr), r.met, nil
}

// PersonalizedPageRankReference computes the same iteration sequentially.
func PersonalizedPageRankReference(g *graph.Graph, sources []graph.NodeID, iters int, damping float64) []float64 {
	n := g.NumNodes()
	isSource := make([]bool, n)
	for _, s := range sources {
		isSource[s] = true
	}
	pr := make([]float64, n)
	for _, s := range sources {
		pr[s] = 1 / float64(len(sources))
	}
	sourceBase := (1 - damping) / float64(len(sources))
	scaled := make([]float64, n)
	for it := 0; it < iters; it++ {
		for u := 0; u < n; u++ {
			if d := g.OutDegree(graph.NodeID(u)); d > 0 {
				scaled[u] = pr[u] / float64(d)
			} else {
				scaled[u] = 0
			}
		}
		for u := 0; u < n; u++ {
			var sum float64
			for _, t := range g.In.Neighbors(graph.NodeID(u)) {
				sum += scaled[t]
			}
			pr[u] = damping * sum
			if isSource[u] {
				pr[u] += sourceBase
			}
		}
	}
	return pr
}
