// Package reduce defines the reduction operators PGX.D applies to property
// writes (paper §3.3/§4.2: write-props are declared with a reduction
// operator; ghost copies start at the operator's bottom value and partial
// results are reduced back to the owner). It provides plain and atomic
// application for float64 and int64 payloads; the atomic float forms are the
// CAS loops the engine's copiers use ("the copier applies them directly with
// atomic instructions").
package reduce

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Op identifies a reduction operator.
type Op uint8

const (
	// Sum adds values; bottom is 0.
	Sum Op = iota
	// Min keeps the smaller value; bottom is +Inf / MaxInt64.
	Min
	// Max keeps the larger value; bottom is -Inf / MinInt64.
	Max
	// Or is logical/bitwise OR on integer payloads; bottom is 0.
	Or
	// And is logical/bitwise AND on integer payloads; bottom is all-ones.
	And
	// Overwrite replaces the value unconditionally (last write wins).
	// It has no meaningful bottom; ghost privatization is disabled for it.
	Overwrite
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Or:
		return "OR"
	case And:
		return "AND"
	case Overwrite:
		return "OVERWRITE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Valid reports whether op is a known operator.
func (op Op) Valid() bool { return op <= Overwrite }

// ApplyF64 returns op(a, b) for float64 values.
func ApplyF64(op Op, a, b float64) float64 {
	switch op {
	case Sum:
		return a + b
	case Min:
		if b < a {
			return b
		}
		return a
	case Max:
		if b > a {
			return b
		}
		return a
	case Or:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	case And:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case Overwrite:
		return b
	default:
		panic("reduce: unknown op " + op.String())
	}
}

// ApplyI64 returns op(a, b) for int64 values.
func ApplyI64(op Op, a, b int64) int64 {
	switch op {
	case Sum:
		return a + b
	case Min:
		if b < a {
			return b
		}
		return a
	case Max:
		if b > a {
			return b
		}
		return a
	case Or:
		return a | b
	case And:
		return a & b
	case Overwrite:
		return b
	default:
		panic("reduce: unknown op " + op.String())
	}
}

// BottomF64 returns op's identity element for float64: the value ghost
// copies are initialized to before a parallel region ("the bottom value is
// set to each ghost copy at the beginning — e.g. 0 for additive reduction").
func BottomF64(op Op) float64 {
	switch op {
	case Sum, Or:
		return 0
	case Min:
		return math.Inf(1)
	case Max:
		return math.Inf(-1)
	case And:
		return 1
	case Overwrite:
		return 0
	default:
		panic("reduce: unknown op " + op.String())
	}
}

// BottomI64 returns op's identity element for int64.
func BottomI64(op Op) int64 {
	switch op {
	case Sum, Or:
		return 0
	case Min:
		return math.MaxInt64
	case Max:
		return math.MinInt64
	case And:
		return -1
	case Overwrite:
		return 0
	default:
		panic("reduce: unknown op " + op.String())
	}
}

// AtomicApplyF64 applies op(val) to the float64 stored at bits, using a
// compare-and-swap loop. Min/Max exit early without a write when the stored
// value already dominates, which keeps cache lines shared under contention.
func AtomicApplyF64(bits *atomic.Uint64, op Op, val float64) {
	for {
		old := bits.Load()
		cur := math.Float64frombits(old)
		next := ApplyF64(op, cur, val)
		if next == cur && op != Overwrite {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// AtomicApplyI64 applies op(val) to the int64 at addr with a CAS loop.
func AtomicApplyI64(addr *atomic.Int64, op Op, val int64) {
	if op == Sum {
		addr.Add(val)
		return
	}
	for {
		cur := addr.Load()
		next := ApplyI64(op, cur, val)
		if next == cur && op != Overwrite {
			return
		}
		if addr.CompareAndSwap(cur, next) {
			return
		}
	}
}
