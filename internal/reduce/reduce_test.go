package reduce

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestApplyF64(t *testing.T) {
	cases := []struct {
		op   Op
		a, b float64
		want float64
	}{
		{Sum, 2, 3, 5},
		{Min, 2, 3, 2},
		{Min, 3, 2, 2},
		{Max, 2, 3, 3},
		{Or, 0, 0, 0},
		{Or, 0, 7, 1},
		{And, 1, 0, 0},
		{And, 2, 3, 1},
		{Overwrite, 9, 4, 4},
	}
	for _, c := range cases {
		if got := ApplyF64(c.op, c.a, c.b); got != c.want {
			t.Errorf("ApplyF64(%v, %g, %g) = %g, want %g", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestApplyI64(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, w int64
	}{
		{Sum, 2, 3, 5},
		{Min, -2, 3, -2},
		{Max, -2, 3, 3},
		{Or, 0b0101, 0b0011, 0b0111},
		{And, 0b0101, 0b0011, 0b0001},
		{Overwrite, 9, 4, 4},
	}
	for _, c := range cases {
		if got := ApplyI64(c.op, c.a, c.b); got != c.w {
			t.Errorf("ApplyI64(%v, %d, %d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
}

// Property: bottom is the identity element for every op and both types.
func TestBottomIsIdentity(t *testing.T) {
	ops := []Op{Sum, Min, Max, Or, And}
	f := func(vRaw int32) bool {
		for _, op := range ops {
			fv := float64(vRaw)
			if op == Or || op == And {
				// Logical ops normalize to 0/1; test with canonical inputs.
				fv = float64(vRaw & 1)
			}
			if ApplyF64(op, BottomF64(op), fv) != fv {
				return false
			}
			iv := int64(vRaw)
			if ApplyI64(op, BottomI64(op), iv) != iv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Min/Max/Or/And are idempotent and commutative.
func TestIdempotentCommutative(t *testing.T) {
	ops := []Op{Min, Max, Or, And}
	f := func(a, b int64) bool {
		for _, op := range ops {
			if ApplyI64(op, a, a) != a && op != Or && op != And {
				return false
			}
			if ApplyI64(op, a, b) != ApplyI64(op, b, a) {
				return false
			}
			fa, fb := float64(a&1), float64(b&1)
			if ApplyF64(op, fa, fb) != ApplyF64(op, fb, fa) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAtomicApplyF64ConcurrentSum(t *testing.T) {
	var bits atomic.Uint64
	bits.Store(math.Float64bits(0))
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				AtomicApplyF64(&bits, Sum, 1.5)
			}
		}()
	}
	wg.Wait()
	got := math.Float64frombits(bits.Load())
	want := 1.5 * goroutines * perG
	if got != want {
		t.Errorf("concurrent atomic sum = %g, want %g", got, want)
	}
}

func TestAtomicApplyF64Min(t *testing.T) {
	var bits atomic.Uint64
	bits.Store(math.Float64bits(math.Inf(1)))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				AtomicApplyF64(&bits, Min, float64(g*1000+i))
			}
		}(g)
	}
	wg.Wait()
	if got := math.Float64frombits(bits.Load()); got != 0 {
		t.Errorf("concurrent atomic min = %g, want 0", got)
	}
}

func TestAtomicApplyI64(t *testing.T) {
	var v atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				AtomicApplyI64(&v, Sum, 2)
			}
		}()
	}
	wg.Wait()
	if v.Load() != 8*5000*2 {
		t.Errorf("atomic int sum = %d", v.Load())
	}

	var mx atomic.Int64
	mx.Store(BottomI64(Max))
	for i := int64(0); i < 100; i++ {
		AtomicApplyI64(&mx, Max, i)
	}
	if mx.Load() != 99 {
		t.Errorf("atomic max = %d, want 99", mx.Load())
	}
}

func TestOverwriteAtomic(t *testing.T) {
	var v atomic.Int64
	AtomicApplyI64(&v, Overwrite, 42)
	if v.Load() != 42 {
		t.Errorf("overwrite = %d", v.Load())
	}
	// Overwrite with the same value must still CAS (no early exit).
	AtomicApplyI64(&v, Overwrite, 42)
	if v.Load() != 42 {
		t.Errorf("overwrite same = %d", v.Load())
	}
}

func TestOpString(t *testing.T) {
	for op := Sum; op <= Overwrite; op++ {
		if op.String() == "" || !op.Valid() {
			t.Errorf("op %d: bad String or Valid", op)
		}
	}
	if Op(200).Valid() {
		t.Error("Op(200) should be invalid")
	}
}
