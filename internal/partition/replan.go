package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Online repartitioning: after a job (or a batch of jobs) on one graph, the
// engine feeds what it measured — per-machine task-phase times, barrier-wait
// skew, and the traffic matrix — into Replan, which re-cuts vertex ownership
// for the next run of the same graph. The static degree-prefix walk assumes
// every edge costs the same everywhere; measured per-edge cost differs per
// machine (remote-write-heavy partitions, ghost density, hub placement), and
// Replan folds that back into the pivots.

// Telemetry is the measured evidence Replan acts on. All fields are
// per-machine (or per machine pair) cumulative values over one or more jobs
// on the same loaded graph; zero or missing entries are tolerated and fall
// back to neutral assumptions.
type Telemetry struct {
	// TaskNanos[m] is machine m's task-phase wall time: dispatch to local
	// workers joined. It excludes barrier waits, so it is a direct load
	// measurement.
	TaskNanos []int64
	// BarrierWaitNanos[m] is machine m's cumulative barrier wait — the idle
	// time load imbalance manifests as. Diagnostic: Replan reports the skew
	// but rebalances from TaskNanos.
	BarrierWaitNanos []int64
	// TrafficBytes[src][dst] is the wire traffic matrix. The off-diagonal
	// total steers the ghost budget: remote-heavy workloads want more hubs
	// replicated.
	TrafficBytes [][]int64
}

// Plan is Replan's output: a new ownership layout plus a ghost budget for
// Cluster.LoadPlan, and the diagnostics that justify them.
type Plan struct {
	Layout Layout
	// GhostCount is the number of top-degree vertices to ghost (0 disables
	// ghosting; the count feeds SelectTopGhosts).
	GhostCount int
	// CostRates[m] is the measured per-degree cost (ns per in+out degree)
	// the cut equalized against; machines without evidence carry the mean.
	CostRates []float64
	// PredictedImbalance is max/mean of predicted per-machine cost under the
	// new layout — the figure of merit the re-cut optimized (1.0 is ideal).
	PredictedImbalance float64
	// MeasuredWaitSkew is max/mean of Telemetry.BarrierWaitNanos (0 when no
	// barrier telemetry was supplied) — how unbalanced the measured run was.
	MeasuredWaitSkew float64
}

// Replan re-cuts ownership of g from measured telemetry. Each machine's
// per-degree cost rate is gamma_m = TaskNanos[m] / degreeSum_m under the
// current layout; the new pivots give machine m a degree share proportional
// to 1/gamma_m, so predicted cost gamma_m * share_m equalizes. With uniform
// rates (or no telemetry) this degenerates to the plain edge-balanced cut —
// which is already the right correction for a skewed layout on homogeneous
// machines; measured rates additionally shift work away from machines whose
// partitions are expensive per edge.
//
// Task times must reflect each machine running its own partition; the engine
// guarantees this even under work stealing by billing a thief's time on
// stolen chunks back to the victim's column of Telemetry.TaskNanos (extra
// lanes on the write-drain allreduce), so telemetry from a steal-flattened
// run still exposes the straggler's per-degree cost.
func Replan(g *graph.Graph, cur Layout, t Telemetry) (Plan, error) {
	p := cur.NumMachines
	if p < 1 {
		return Plan{}, fmt.Errorf("partition: replan needs a layout with machines, got %d", p)
	}
	n := g.NumNodes()
	if n == 0 {
		return Plan{}, graph.ErrEmptyGraph
	}
	if int(cur.Starts[p]) != n {
		return Plan{}, fmt.Errorf("partition: layout covers %d nodes, graph has %d", cur.Starts[p], n)
	}

	// Measured per-degree cost under the current cut; machines without
	// evidence (no telemetry, or an empty partition) get the mean rate.
	deg := make([]int64, p)
	for m := 0; m < p; m++ {
		lo, hi := cur.Range(m)
		for u := lo; u < hi; u++ {
			deg[m] += g.TotalDegree(u)
		}
	}
	rates := make([]float64, p)
	var rateSum float64
	var rateCnt int
	for m := 0; m < p; m++ {
		if m < len(t.TaskNanos) && t.TaskNanos[m] > 0 && deg[m] > 0 {
			rates[m] = float64(t.TaskNanos[m]) / float64(deg[m])
			rateSum += rates[m]
			rateCnt++
		}
	}
	meanRate := 1.0
	if rateCnt > 0 {
		meanRate = rateSum / float64(rateCnt)
	}
	weights := make([]float64, p)
	for m := 0; m < p; m++ {
		if rates[m] <= 0 {
			rates[m] = meanRate
		}
		weights[m] = 1 / rates[m]
	}

	layout, err := layoutFromWeights(g, weights)
	if err != nil {
		return Plan{}, err
	}

	// Predicted per-machine cost under the new cut, with the measured rates.
	var maxCost, totCost float64
	for m := 0; m < p; m++ {
		lo, hi := layout.Range(m)
		var d int64
		for u := lo; u < hi; u++ {
			d += g.TotalDegree(u)
		}
		cost := rates[m] * float64(d)
		totCost += cost
		if cost > maxCost {
			maxCost = cost
		}
	}
	plan := Plan{Layout: layout, CostRates: rates, PredictedImbalance: 1}
	if totCost > 0 {
		plan.PredictedImbalance = maxCost / (totCost / float64(p))
	}
	plan.MeasuredWaitSkew = maxOverMean(t.BarrierWaitNanos)

	// Ghost budget: start from the auto-threshold hub set (degree above four
	// times the average, floor 8 — the same rule Config.GhostAuto applies)
	// and double it when the measured wire traffic is heavy relative to the
	// graph (> 16 bytes per edge), since replicating more of the hub tail is
	// what converts remote reductions into local ones. Capped at n/32 so the
	// ghost segment stays a small fraction of every machine's columns.
	numEdges := g.NumEdges()
	avgDeg := int64(0)
	if n > 0 {
		avgDeg = 2 * int64(numEdges) / int64(n)
	}
	threshold := 4 * avgDeg
	if threshold < 8 {
		threshold = 8
	}
	hubs := 0
	for u := 0; u < n; u++ {
		if g.TotalDegree(graph.NodeID(u)) > threshold {
			hubs++
		}
	}
	var remoteBytes int64
	for s, row := range t.TrafficBytes {
		for d, b := range row {
			if s != d {
				remoteBytes += b
			}
		}
	}
	if numEdges > 0 && remoteBytes > 16*int64(numEdges) {
		hubs *= 2
	}
	if limit := n / 32; hubs > limit {
		hubs = limit
	}
	plan.GhostCount = hubs
	return plan, nil
}

// SkewedLayout deliberately mis-cuts the degree-prefix walk: machine 0 takes
// the skew fraction (in (0,1)) of the total in+out degree and the remaining
// machines split the rest evenly. This is the adversarial input for the
// work-stealing and repartitioning experiments — a partition the static
// edge-balanced cut would never produce.
func SkewedLayout(g *graph.Graph, p int, skew float64) (Layout, error) {
	if p < 1 {
		return Layout{}, fmt.Errorf("partition: machine count %d must be >= 1", p)
	}
	if skew <= 0 || skew >= 1 {
		return Layout{}, fmt.Errorf("partition: skew %v must be in (0, 1)", skew)
	}
	weights := make([]float64, p)
	weights[0] = skew
	for m := 1; m < p; m++ {
		weights[m] = (1 - skew) / float64(p-1)
	}
	return layoutFromWeights(g, weights)
}

// layoutFromWeights runs the degree-prefix walk with a non-uniform target:
// machine m's cut lands where the cumulative degree crosses its cumulative
// weight share. Uniform weights reproduce Compute(EdgeBalanced) exactly.
func layoutFromWeights(g *graph.Graph, weights []float64) (Layout, error) {
	p := len(weights)
	n := g.NumNodes()
	if n == 0 {
		return Layout{}, graph.ErrEmptyGraph
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			return Layout{}, fmt.Errorf("partition: negative weight %v", w)
		}
		wsum += w
	}
	starts := make([]uint32, p+1)
	starts[p] = uint32(n)
	var total int64
	for u := 0; u < n; u++ {
		total += g.TotalDegree(graph.NodeID(u))
	}
	if total == 0 || wsum == 0 {
		for m := 1; m < p; m++ {
			starts[m] = uint32(m * n / p)
		}
		return Layout{NumMachines: p, Starts: starts}, nil
	}
	// cum is the cumulative weight share of machines [0, next): machine
	// next-1's cut lands where the degree prefix crosses cum*total.
	cum := weights[0] / wsum
	var acc int64
	next := 1
	for u := 0; u < n && next < p; u++ {
		acc += g.TotalDegree(graph.NodeID(u))
		for next < p && float64(acc) >= cum*float64(total) {
			starts[next] = uint32(u + 1)
			cum += weights[next] / wsum
			next++
		}
	}
	for ; next < p; next++ {
		starts[next] = uint32(n)
	}
	for m := 1; m <= p; m++ {
		if starts[m] < starts[m-1] {
			starts[m] = starts[m-1]
		}
	}
	return Layout{NumMachines: p, Starts: starts}, nil
}

// maxOverMean returns max/mean of a non-negative vector (0 when empty or
// all-zero) — the skew figure used for barrier-wait telemetry.
func maxOverMean(v []int64) float64 {
	if len(v) == 0 {
		return 0
	}
	var max, tot int64
	for _, x := range v {
		tot += x
		if x > max {
			max = x
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(max) / (float64(tot) / float64(len(v)))
}
