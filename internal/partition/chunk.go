package partition

import "sort"

// Chunk is a half-open range [Begin, End) of local node indices handed to a
// worker as one unit of RTC task scheduling (paper §3.2/§3.3: "tasks are
// grouped into chunks, which in return are allocated to worker threads").
type Chunk struct {
	Begin, End uint32
}

// Len returns the number of nodes in the chunk.
func (c Chunk) Len() int { return int(c.End - c.Begin) }

// NodeChunks cuts [0, n) into chunks of at most chunkSize nodes each — the
// naive baseline ("node-based task chunking" in Figure 6c) in which a chunk
// covering a few huge-degree vertices carries far more work than its peers.
func NodeChunks(n int, chunkSize int) []Chunk {
	if n <= 0 {
		return nil
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	chunks := make([]Chunk, 0, (n+chunkSize-1)/chunkSize)
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		chunks = append(chunks, Chunk{Begin: uint32(lo), End: uint32(hi)})
	}
	return chunks
}

// EdgeChunks cuts [0, n) into chunks each covering approximately
// targetEdges edges, using the CSR row-offset array rows (length n+1) of the
// orientation the job iterates. This is the paper's edge chunking: "The Task
// Manager creates chunks by edge count, thereby ensuring that each chunk
// will contain a similar number of edges instead of similar number of
// nodes." A single vertex whose degree exceeds targetEdges becomes its own
// chunk; chunks are never empty.
func EdgeChunks(rows []int64, targetEdges int64) []Chunk {
	n := len(rows) - 1
	if n <= 0 {
		return nil
	}
	if targetEdges < 1 {
		targetEdges = 1
	}
	var chunks []Chunk
	lo := 0
	for lo < n {
		// The first node always joins, so over-degree vertices form singleton
		// chunks. Beyond it, rows is a nondecreasing prefix sum, so "the chunk
		// stays under target" is a monotone predicate and the boundary is a
		// binary search — O(c log n) instead of O(n) per pass, which matters on
		// skewed partitions where one pass emits thousands of tiny chunks next
		// to a handful of giant ones.
		hi := lo + 1 + sort.Search(n-lo-1, func(i int) bool {
			return rows[lo+2+i]-rows[lo] > targetEdges
		})
		chunks = append(chunks, Chunk{Begin: uint32(lo), End: uint32(hi)})
		lo = hi
	}
	return chunks
}

// ChunkEdgeWeight returns the number of edges a chunk covers under rows.
func ChunkEdgeWeight(rows []int64, c Chunk) int64 {
	return rows[c.End] - rows[c.Begin]
}

// MaxChunkEdgeWeight returns the largest edge weight across chunks — the
// quantity edge chunking minimizes relative to node chunking.
func MaxChunkEdgeWeight(rows []int64, chunks []Chunk) int64 {
	var max int64
	for _, c := range chunks {
		if w := ChunkEdgeWeight(rows, c); w > max {
			max = w
		}
	}
	return max
}
