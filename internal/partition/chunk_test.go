package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// edgeChunksLinear is the pre-binary-search reference implementation: extend
// each chunk one node at a time while it stays under target.
func edgeChunksLinear(rows []int64, targetEdges int64) []Chunk {
	n := len(rows) - 1
	if n <= 0 {
		return nil
	}
	if targetEdges < 1 {
		targetEdges = 1
	}
	var chunks []Chunk
	lo := 0
	for lo < n {
		hi := lo + 1
		for hi < n && rows[hi+1]-rows[lo] <= targetEdges {
			hi++
		}
		chunks = append(chunks, Chunk{Begin: uint32(lo), End: uint32(hi)})
		lo = hi
	}
	return chunks
}

func chunksEqual(a, b []Chunk) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The binary-search EdgeChunks must produce exactly the chunks the linear
// scan does, degree pattern and target regardless.
func TestEdgeChunksMatchesLinearReference(t *testing.T) {
	f := func(degrees []uint8, targetRaw uint16) bool {
		rows := make([]int64, len(degrees)+1)
		for i, d := range degrees {
			rows[i+1] = rows[i] + int64(d)
		}
		target := int64(targetRaw % 300)
		return chunksEqual(EdgeChunks(rows, target), edgeChunksLinear(rows, target))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}

	// Directed cases the fuzzer rarely hits: heavy hubs adjacent to long
	// zero-degree runs (the shape skewed RMAT partitions take).
	hub := make([]int64, 4097)
	for i := 1; i <= 4096; i++ {
		hub[i] = hub[i-1]
		switch {
		case i%1024 == 1:
			hub[i] += 100000
		case i%7 == 0:
			hub[i] += 3
		}
	}
	for _, target := range []int64{0, 1, 2, 100, 99999, 100000, 1 << 40} {
		if !chunksEqual(EdgeChunks(hub, target), edgeChunksLinear(hub, target)) {
			t.Errorf("hub rows diverge from linear reference at target %d", target)
		}
	}
}

// skewedRows builds a CSR row prefix sum with Zipf-like degrees: a few
// enormous hubs, a long tail of degree 0-2 nodes — the partition shape edge
// chunking exists for, and the worst case for the old linear boundary scan
// (each giant target makes it walk thousands of tail nodes per chunk).
func skewedRows(n int) []int64 {
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1.0, 1<<16)
	rows := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		rows[i] = rows[i-1] + int64(zipf.Uint64())
	}
	return rows
}

func benchmarkEdgeChunks(b *testing.B, f func([]int64, int64) []Chunk) {
	rows := skewedRows(1 << 18)
	target := rows[len(rows)-1] / 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f(rows, target) == nil {
			b.Fatal("no chunks")
		}
	}
}

func BenchmarkEdgeChunksSkewed(b *testing.B)       { benchmarkEdgeChunks(b, EdgeChunks) }
func BenchmarkEdgeChunksSkewedLinear(b *testing.B) { benchmarkEdgeChunks(b, edgeChunksLinear) }
