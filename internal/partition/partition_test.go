package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func skewedGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(11, 8, graph.TwitterLike(), 99)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestComputeVertexBalanced(t *testing.T) {
	g := skewedGraph(t)
	l, err := Compute(g, 4, VertexBalanced)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	for m := 0; m < 4; m++ {
		got := l.NumLocal(m)
		if got < n/4-1 || got > n/4+1 {
			t.Errorf("machine %d owns %d vertices, want ~%d", m, got, n/4)
		}
	}
}

func TestComputeEdgeBalancedBeatsVertexOnSkew(t *testing.T) {
	g := skewedGraph(t)
	for _, p := range []int{2, 4, 8} {
		lv, err := Compute(g, p, VertexBalanced)
		if err != nil {
			t.Fatal(err)
		}
		le, err := Compute(g, p, EdgeBalanced)
		if err != nil {
			t.Fatal(err)
		}
		iv, ie := lv.EdgeImbalance(g), le.EdgeImbalance(g)
		if ie > iv {
			t.Errorf("p=%d: edge partitioning imbalance %.3f worse than vertex %.3f", p, ie, iv)
		}
		if ie > 1.5 {
			t.Errorf("p=%d: edge partitioning imbalance %.3f, want <= 1.5", p, ie)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	g := skewedGraph(t)
	if _, err := Compute(g, 0, EdgeBalanced); err == nil {
		t.Error("accepted 0 machines")
	}
	if _, err := Compute(g, 2, Strategy(99)); err == nil {
		t.Error("accepted unknown strategy")
	}
}

func TestComputeEdgelessFallsBack(t *testing.T) {
	g, err := graph.FromEdges(100, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Compute(g, 4, EdgeBalanced)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		if l.NumLocal(m) != 25 {
			t.Errorf("machine %d owns %d, want 25", m, l.NumLocal(m))
		}
	}
}

// Property: every vertex is owned by exactly one machine, Owner/LocalOffset/
// GlobalOf are mutually consistent, and starts are monotone.
func TestLayoutOwnershipProperty(t *testing.T) {
	g := skewedGraph(t)
	f := func(pRaw uint8, strategyRaw bool) bool {
		p := int(pRaw%16) + 1
		strategy := VertexBalanced
		if strategyRaw {
			strategy = EdgeBalanced
		}
		l, err := Compute(g, p, strategy)
		if err != nil {
			return false
		}
		if l.Starts[0] != 0 || int(l.Starts[p]) != g.NumNodes() {
			return false
		}
		for m := 1; m <= p; m++ {
			if l.Starts[m] < l.Starts[m-1] {
				return false
			}
		}
		// Spot-check ownership across the range including boundaries.
		for _, v := range boundaryProbes(l, g.NumNodes()) {
			m := l.Owner(v)
			lo, hi := l.Range(m)
			if v < lo || v >= hi {
				return false
			}
			if l.GlobalOf(m, l.LocalOffset(v)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func boundaryProbes(l Layout, n int) []graph.NodeID {
	var probes []graph.NodeID
	for _, s := range l.Starts {
		for d := -1; d <= 1; d++ {
			v := int(s) + d
			if v >= 0 && v < n {
				probes = append(probes, graph.NodeID(v))
			}
		}
	}
	probes = append(probes, 0, graph.NodeID(n/2), graph.NodeID(n-1))
	return probes
}

func TestSelectGhostsByThreshold(t *testing.T) {
	g := skewedGraph(t)
	gs := SelectGhosts(g, 100)
	if gs.Len() == 0 {
		t.Fatal("no ghosts on a skewed graph at threshold 100")
	}
	for _, v := range gs.Nodes {
		if g.InDegree(v) <= 100 && g.OutDegree(v) <= 100 {
			t.Errorf("node %d ghosted but both degrees <= 100", v)
		}
	}
	// Every over-threshold node is present.
	want := graph.NodesAboveDegree(g, 100)
	if gs.Len() != want {
		t.Errorf("ghost count %d, want %d", gs.Len(), want)
	}
	// Slot mapping is consistent and sorted.
	prev := graph.NodeID(0)
	for i, v := range gs.Nodes {
		if i > 0 && v <= prev {
			t.Fatal("ghost nodes not strictly ascending")
		}
		prev = v
		s, ok := gs.Slot(v)
		if !ok || int(s) != i || gs.Node(s) != v {
			t.Fatalf("slot mapping broken at %d", v)
		}
	}
	if _, ok := gs.Slot(graph.NodeID(g.NumNodes() + 5)); ok {
		t.Error("nonexistent node reported as ghost")
	}
}

func TestSelectTopGhosts(t *testing.T) {
	g := skewedGraph(t)
	for _, k := range []int{0, 1, 5, 50, 500} {
		gs := SelectTopGhosts(g, k)
		if gs.Len() > k {
			t.Errorf("k=%d: got %d ghosts", k, gs.Len())
		}
		if k > 0 && k <= g.NumNodes() && gs.Len() != k {
			t.Errorf("k=%d: got %d ghosts, want %d on a graph with no isolated top nodes", k, gs.Len(), k)
		}
	}
	// The top-1 ghost must have the max degree in the graph.
	gs := SelectTopGhosts(g, 1)
	stats := graph.ComputeDegreeStats(g)
	v := gs.Nodes[0]
	d := g.InDegree(v)
	if od := g.OutDegree(v); od > d {
		d = od
	}
	if d != stats.MaxInDegree && d != stats.MaxOutDegree {
		t.Errorf("top ghost degree %d is neither maxIn %d nor maxOut %d", d, stats.MaxInDegree, stats.MaxOutDegree)
	}
}

func TestNodeChunks(t *testing.T) {
	chunks := NodeChunks(10, 3)
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks, want 4", len(chunks))
	}
	covered := 0
	for i, c := range chunks {
		if c.Len() == 0 {
			t.Errorf("chunk %d empty", i)
		}
		covered += c.Len()
	}
	if covered != 10 {
		t.Errorf("covered %d nodes, want 10", covered)
	}
	if NodeChunks(0, 3) != nil {
		t.Error("expected nil for n=0")
	}
	// chunkSize < 1 clamps to 1.
	if got := len(NodeChunks(5, 0)); got != 5 {
		t.Errorf("chunkSize 0: got %d chunks, want 5", got)
	}
}

// Property: edge chunks cover [0,n) exactly once, are never empty, and no
// chunk with more than one node exceeds the target.
func TestEdgeChunksProperty(t *testing.T) {
	f := func(degrees []uint8, targetRaw uint16) bool {
		n := len(degrees)
		if n == 0 {
			return EdgeChunks([]int64{0}, 10) == nil
		}
		rows := make([]int64, n+1)
		for i, d := range degrees {
			rows[i+1] = rows[i] + int64(d)
		}
		target := int64(targetRaw%500) + 1
		chunks := EdgeChunks(rows, target)
		var next uint32
		for _, c := range chunks {
			if c.Begin != next || c.End <= c.Begin {
				return false
			}
			if c.Len() > 1 && ChunkEdgeWeight(rows, c) > target {
				return false
			}
			next = c.End
		}
		return int(next) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEdgeChunksBalanceBeatsNodeChunksOnSkew(t *testing.T) {
	g := skewedGraph(t)
	rows := g.Out.Rows
	m := g.NumEdges()
	nChunks := 64
	target := m / int64(nChunks)
	ec := EdgeChunks(rows, target)
	nc := NodeChunks(g.NumNodes(), g.NumNodes()/nChunks)
	maxE := MaxChunkEdgeWeight(rows, ec)
	maxN := MaxChunkEdgeWeight(rows, nc)
	if maxE >= maxN {
		t.Errorf("edge chunk max weight %d not better than node chunk %d", maxE, maxN)
	}
}

func TestStrategyString(t *testing.T) {
	if VertexBalanced.String() != "vertex" || EdgeBalanced.String() != "edge" {
		t.Error("Strategy.String mismatch")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should still render")
	}
}
