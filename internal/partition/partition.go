// Package partition implements the data placement policies of PGX.D
// (paper §3.3): partitioning consecutive vertex ranges across machines by
// node count (vertex partitioning) or by in+out degree sums (edge
// partitioning), selecting high-degree vertices as ghosts, and cutting local
// node ranges into edge-balanced chunks for intra-machine scheduling.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Strategy selects how vertex ranges are assigned to machines.
type Strategy int

const (
	// VertexBalanced gives each machine a roughly equal number of vertices —
	// the "naive" baseline the paper compares against in Figure 6b.
	VertexBalanced Strategy = iota
	// EdgeBalanced gives each machine a roughly equal total of in+out
	// degrees, the paper's edge partitioning: "it first computes the total
	// sum of in-degrees and out-degrees for all vertices. It then chooses
	// the pivot vertices that result in a balanced sum".
	EdgeBalanced
)

// String implements fmt.Stringer for harness output.
func (s Strategy) String() string {
	switch s {
	case VertexBalanced:
		return "vertex"
	case EdgeBalanced:
		return "edge"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Layout records which consecutive vertex range each machine owns. As in the
// paper, a partitioning of N vertices over P machines is fully described by
// P-1 pivots; we store the equivalent P+1 range starts. Layout is immutable
// and shared (by value) across all machines.
type Layout struct {
	NumMachines int
	// Starts has length NumMachines+1: machine m owns global vertices
	// [Starts[m], Starts[m+1]). Starts[0] == 0, Starts[P] == N.
	Starts []uint32
}

// Compute builds a Layout for g over p machines under the given strategy.
func Compute(g *graph.Graph, p int, strategy Strategy) (Layout, error) {
	n := g.NumNodes()
	if p < 1 {
		return Layout{}, fmt.Errorf("partition: machine count %d must be >= 1", p)
	}
	if n == 0 {
		return Layout{}, graph.ErrEmptyGraph
	}
	starts := make([]uint32, p+1)
	starts[p] = uint32(n)
	switch strategy {
	case VertexBalanced:
		for m := 1; m < p; m++ {
			starts[m] = uint32(m * n / p)
		}
	case EdgeBalanced:
		// Walk the vertices accumulating in+out degree; cut when the running
		// sum crosses the next equal-share boundary.
		var total int64
		for u := 0; u < n; u++ {
			total += g.TotalDegree(graph.NodeID(u))
		}
		if total == 0 {
			// Degenerate: no edges — fall back to vertex balancing.
			for m := 1; m < p; m++ {
				starts[m] = uint32(m * n / p)
			}
			break
		}
		var acc int64
		next := 1
		for u := 0; u < n && next < p; u++ {
			acc += g.TotalDegree(graph.NodeID(u))
			for next < p && acc >= int64(next)*total/int64(p) {
				starts[next] = uint32(u + 1)
				next++
			}
		}
		for ; next < p; next++ {
			starts[next] = uint32(n)
		}
	default:
		return Layout{}, fmt.Errorf("partition: unknown strategy %d", strategy)
	}
	// Enforce monotonicity (degenerate heavy vertices can make cuts collide;
	// empty partitions are legal but starts must stay sorted).
	for m := 1; m <= p; m++ {
		if starts[m] < starts[m-1] {
			starts[m] = starts[m-1]
		}
	}
	return Layout{NumMachines: p, Starts: starts}, nil
}

// Owner returns the machine owning global vertex v. Binary search over at
// most NumMachines+1 entries; with P <= 64 this is a handful of compares and
// is the hot-path location lookup the paper does with shared pivots.
func (l Layout) Owner(v graph.NodeID) int {
	// sort.Search returns the first m with Starts[m] > v; owner is m-1.
	m := sort.Search(l.NumMachines, func(m int) bool { return l.Starts[m+1] > v })
	return m
}

// LocalOffset converts global vertex v to its offset within its owner's range.
func (l Layout) LocalOffset(v graph.NodeID) uint32 {
	return v - l.Starts[l.Owner(v)]
}

// GlobalOf converts (machine, local offset) back to the global vertex id.
func (l Layout) GlobalOf(machine int, offset uint32) graph.NodeID {
	return l.Starts[machine] + offset
}

// NumLocal returns how many vertices machine m owns.
func (l Layout) NumLocal(m int) int {
	return int(l.Starts[m+1] - l.Starts[m])
}

// Range returns the half-open global vertex range of machine m.
func (l Layout) Range(m int) (graph.NodeID, graph.NodeID) {
	return l.Starts[m], l.Starts[m+1]
}

// DegreeMass returns each machine's in+out degree sum under this layout —
// the static per-machine load estimate behind EdgeImbalance and the work
// stealer's structural-skew gate.
func (l Layout) DegreeMass(g *graph.Graph) []int64 {
	mass := make([]int64, l.NumMachines)
	for m := 0; m < l.NumMachines; m++ {
		lo, hi := l.Range(m)
		for u := lo; u < hi; u++ {
			mass[m] += g.TotalDegree(u)
		}
	}
	return mass
}

// EdgeImbalance returns max/mean of the per-machine in+out degree sums, the
// load-balance figure of merit behind Figure 6b. 1.0 is perfect balance.
func (l Layout) EdgeImbalance(g *graph.Graph) float64 {
	var maxW, totalW int64
	for _, w := range l.DegreeMass(g) {
		totalW += w
		if w > maxW {
			maxW = w
		}
	}
	if totalW == 0 {
		return 1
	}
	mean := float64(totalW) / float64(l.NumMachines)
	return float64(maxW) / mean
}
