package partition

import (
	"testing"

	"repro/internal/graph"
)

// degreeSums returns per-machine in+out degree totals under l.
func degreeSums(g *graph.Graph, l Layout) []int64 {
	out := make([]int64, l.NumMachines)
	for m := 0; m < l.NumMachines; m++ {
		lo, hi := l.Range(m)
		for u := lo; u < hi; u++ {
			out[m] += g.TotalDegree(u)
		}
	}
	return out
}

func TestSkewedLayoutShiftsDegreeMass(t *testing.T) {
	g := skewedGraph(t)
	l, err := SkewedLayout(g, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	deg := degreeSums(g, l)
	var total int64
	for _, d := range deg {
		total += d
	}
	share := float64(deg[0]) / float64(total)
	// Boundary granularity is one hub vertex, so allow slack around 0.7.
	if share < 0.6 || share > 0.85 {
		t.Errorf("machine 0 degree share %.3f, want ~0.7", share)
	}
	if l.EdgeImbalance(g) < 1.5 {
		t.Errorf("skewed layout imbalance %.3f, want clearly imbalanced (>= 1.5)", l.EdgeImbalance(g))
	}
}

func TestSkewedLayoutErrors(t *testing.T) {
	g := skewedGraph(t)
	if _, err := SkewedLayout(g, 0, 0.5); err == nil {
		t.Error("accepted 0 machines")
	}
	for _, s := range []float64{0, 1, -0.3, 1.5} {
		if _, err := SkewedLayout(g, 4, s); err == nil {
			t.Errorf("accepted skew %v", s)
		}
	}
}

func TestReplanWithoutTelemetryMatchesEdgeBalance(t *testing.T) {
	g := skewedGraph(t)
	skewed, err := SkewedLayout(g, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Replan(g, skewed, Telemetry{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Compute(g, 4, EdgeBalanced)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m <= 4; m++ {
		if plan.Layout.Starts[m] != want.Starts[m] {
			t.Fatalf("start[%d] = %d, want %d (no-telemetry replan should be the plain edge cut)",
				m, plan.Layout.Starts[m], want.Starts[m])
		}
	}
	if plan.GhostCount <= 0 {
		t.Errorf("ghost count %d, want > 0 for a skewed RMAT graph", plan.GhostCount)
	}
}

func TestReplanFixesMeasuredSkew(t *testing.T) {
	g := skewedGraph(t)
	skewed, err := SkewedLayout(g, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	before := skewed.EdgeImbalance(g)
	// Synthetic telemetry: task time proportional to degree mass (uniform
	// per-edge cost), which is what a homogeneous cluster measures.
	deg := degreeSums(g, skewed)
	task := make([]int64, 4)
	for m, d := range deg {
		task[m] = d * 100 // 100ns per unit of degree
	}
	wait := []int64{0, 900, 1000, 950} // machine 0 never waits, it is the straggler
	plan, err := Replan(g, skewed, Telemetry{TaskNanos: task, BarrierWaitNanos: wait})
	if err != nil {
		t.Fatal(err)
	}
	after := plan.Layout.EdgeImbalance(g)
	if after >= before {
		t.Errorf("replan imbalance %.3f did not improve on %.3f", after, before)
	}
	if after > 1.5 {
		t.Errorf("replan imbalance %.3f, want <= 1.5", after)
	}
	if plan.PredictedImbalance > 1.5 {
		t.Errorf("predicted imbalance %.3f, want near 1", plan.PredictedImbalance)
	}
	if plan.MeasuredWaitSkew <= 1 {
		t.Errorf("measured wait skew %.3f, want > 1", plan.MeasuredWaitSkew)
	}
}

func TestReplanShiftsWorkOffSlowMachine(t *testing.T) {
	g := skewedGraph(t)
	base, err := Compute(g, 4, EdgeBalanced)
	if err != nil {
		t.Fatal(err)
	}
	deg := degreeSums(g, base)
	// Machine 2 is 3x slower per edge (e.g. its partition is remote-write
	// heavy); everyone else is uniform.
	task := make([]int64, 4)
	for m, d := range deg {
		task[m] = d * 100
	}
	task[2] = deg[2] * 300
	plan, err := Replan(g, base, Telemetry{TaskNanos: task})
	if err != nil {
		t.Fatal(err)
	}
	newDeg := degreeSums(g, plan.Layout)
	if newDeg[2] >= deg[2] {
		t.Errorf("slow machine kept degree mass %d (had %d), want less", newDeg[2], deg[2])
	}
	// Its predicted cost rate stays 3x, so its share should be roughly a
	// third of a uniform machine's.
	if float64(newDeg[2]) > 0.6*float64(newDeg[1]) {
		t.Errorf("slow machine degree %d vs peer %d, want well under", newDeg[2], newDeg[1])
	}
}

func TestReplanTrafficWidensGhostBudget(t *testing.T) {
	// Constructed hub graph so the budget stays below the n/32 cap: 20 hubs
	// with out-degree 200 over 3200 nodes, everything else near-leaf.
	const n, hubs, fanout = 3200, 20, 200
	var edges []graph.Edge
	for h := 0; h < hubs; h++ {
		for i := 0; i < fanout; i++ {
			dst := graph.NodeID(hubs + (h*fanout+i)%(n-hubs))
			edges = append(edges, graph.Edge{Src: graph.NodeID(h), Dst: dst})
		}
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Compute(g, 2, EdgeBalanced)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := Replan(g, base, Telemetry{})
	if err != nil {
		t.Fatal(err)
	}
	heavy := int64(g.NumEdges()) * 64
	loud, err := Replan(g, base, Telemetry{TrafficBytes: [][]int64{{0, heavy}, {heavy, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if loud.GhostCount <= quiet.GhostCount {
		t.Errorf("heavy traffic ghost budget %d, want > quiet %d", loud.GhostCount, quiet.GhostCount)
	}
	if limit := g.NumNodes() / 32; loud.GhostCount > limit {
		t.Errorf("ghost budget %d exceeds cap %d", loud.GhostCount, limit)
	}
}

func TestReplanErrors(t *testing.T) {
	g := skewedGraph(t)
	if _, err := Replan(g, Layout{}, Telemetry{}); err == nil {
		t.Error("accepted empty layout")
	}
	wrong := Layout{NumMachines: 2, Starts: []uint32{0, 5, 10}}
	if _, err := Replan(g, wrong, Telemetry{}); err == nil {
		t.Error("accepted layout not covering the graph")
	}
}
