package partition

import (
	"sort"

	"repro/internal/graph"
)

// GhostSet is the cluster-wide set of vertices replicated on every machine
// (paper §3.3, "Selective Ghost Node"): vertices whose in-degree or
// out-degree exceeds a threshold. The set and its slot numbering are
// identical on all machines, so ghost slot i refers to the same global
// vertex everywhere.
type GhostSet struct {
	// Nodes lists the ghosted global vertex ids in ascending order; the
	// index in this slice is the vertex's ghost slot.
	Nodes []graph.NodeID
	// slotOf maps a global vertex id to its ghost slot, or absent.
	slotOf map[graph.NodeID]int32
}

// SelectGhosts returns the ghost set for g at the given degree threshold:
// every vertex with in-degree > threshold or out-degree > threshold.
// A negative threshold ghosts every vertex with any edge; an impossibly
// large one produces an empty set (ghosting disabled).
func SelectGhosts(g *graph.Graph, threshold int64) *GhostSet {
	gs := &GhostSet{slotOf: make(map[graph.NodeID]int32)}
	for u := 0; u < g.NumNodes(); u++ {
		v := graph.NodeID(u)
		if g.InDegree(v) > threshold || g.OutDegree(v) > threshold {
			gs.slotOf[v] = int32(len(gs.Nodes))
			gs.Nodes = append(gs.Nodes, v)
		}
	}
	return gs
}

// SelectTopGhosts returns a ghost set containing (at most) the k vertices of
// highest max(in,out) degree. Figure 6a sweeps ghost counts directly, so the
// harness uses this count-based selection.
func SelectTopGhosts(g *graph.Graph, k int) *GhostSet {
	if k <= 0 {
		return &GhostSet{slotOf: map[graph.NodeID]int32{}}
	}
	type nd struct {
		id  graph.NodeID
		deg int64
	}
	all := make([]nd, g.NumNodes())
	for u := range all {
		v := graph.NodeID(u)
		d := g.InDegree(v)
		if od := g.OutDegree(v); od > d {
			d = od
		}
		all[u] = nd{id: v, deg: d}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].deg != all[j].deg {
			return all[i].deg > all[j].deg
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	picked := all[:k]
	ids := make([]graph.NodeID, 0, k)
	for _, p := range picked {
		if p.deg == 0 {
			break // don't ghost isolated vertices
		}
		ids = append(ids, p.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	gs := &GhostSet{Nodes: ids, slotOf: make(map[graph.NodeID]int32, len(ids))}
	for i, id := range ids {
		gs.slotOf[id] = int32(i)
	}
	return gs
}

// EmptyGhostSet returns a ghost set with no members — the load path for
// representations that pre-resolve refs without ghost slots (out-of-core
// store files encode every neighbor as local or remote, never ghosted).
func EmptyGhostSet() *GhostSet {
	return &GhostSet{slotOf: map[graph.NodeID]int32{}}
}

// Len returns the number of ghosted vertices.
func (gs *GhostSet) Len() int { return len(gs.Nodes) }

// Slot returns the ghost slot of v and whether v is ghosted.
func (gs *GhostSet) Slot(v graph.NodeID) (int32, bool) {
	s, ok := gs.slotOf[v]
	return s, ok
}

// Node returns the global vertex id occupying ghost slot s.
func (gs *GhostSet) Node(s int32) graph.NodeID { return gs.Nodes[s] }
