package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 1 << 20, 1 << 35, 1 << 56, math.MaxUint64}
	for _, v := range cases {
		enc := AppendUvarint(nil, v)
		got, n := Uvarint(enc)
		if n != len(enc) || got != v {
			t.Fatalf("round trip %d: got %d, n=%d want len %d", v, got, n, len(enc))
		}
		// Agreement with the stdlib encoding keeps us canonical.
		std := binary.AppendUvarint(nil, v)
		if !bytes.Equal(enc, std) {
			t.Fatalf("encoding of %d diverges from stdlib: %x vs %x", v, enc, std)
		}
	}
}

func TestUvarintTornInput(t *testing.T) {
	enc := AppendUvarint(nil, math.MaxUint64)
	for cut := 0; cut < len(enc); cut++ {
		if _, n := Uvarint(enc[:cut]); n > 0 {
			t.Fatalf("torn input of %d bytes decoded with n=%d", cut, n)
		}
	}
	if _, n := Uvarint(nil); n != 0 {
		t.Fatalf("empty input: n=%d want 0", n)
	}
}

func TestUvarintOverlongRejected(t *testing.T) {
	// 11 continuation-free bytes never form a canonical uint64.
	over := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, n := Uvarint(over); n > 0 {
		t.Fatalf("11-byte varint accepted with n=%d", n)
	}
	// A 10th byte contributing more than bit 63 overflows.
	high := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}
	if _, n := Uvarint(high); n > 0 {
		t.Fatalf("overflowing 10-byte varint accepted with n=%d", n)
	}
}

func TestZigZag(t *testing.T) {
	cases := []int64{0, -1, 1, -2, 2, math.MinInt64, math.MaxInt64, -123456789, 987654321}
	want := []uint64{0, 1, 2, 3, 4}
	for i, v := range cases {
		u := ZigZag(v)
		if i < len(want) && u != want[i] {
			t.Fatalf("ZigZag(%d) = %d, want %d", v, u, want[i])
		}
		if got := UnZigZag(u); got != v {
			t.Fatalf("UnZigZag(ZigZag(%d)) = %d", v, got)
		}
	}
}

func TestDeltaColumnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(rng.Int63n(1 << 40))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		enc := AppendDeltaU64s(nil, vals)
		got, consumed, ok := DecodeDeltaU64s(enc, n, nil)
		if !ok || consumed != len(enc) {
			t.Fatalf("decode failed: ok=%v consumed=%d len=%d", ok, consumed, len(enc))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("trial %d: value %d: got %d want %d", trial, i, got[i], vals[i])
			}
		}
	}
}

func TestDeltaColumnTornRejected(t *testing.T) {
	vals := []uint64{10, 1000, 1 << 30, 1 << 50}
	enc := AppendDeltaU64s(nil, vals)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, ok := DecodeDeltaU64s(enc[:cut], len(vals), nil); ok {
			t.Fatalf("torn column of %d/%d bytes decoded", cut, len(enc))
		}
	}
}

func FuzzUvarintRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0x80))
	f.Add(uint64(math.MaxUint64))
	f.Fuzz(func(t *testing.T, v uint64) {
		enc := AppendUvarint(nil, v)
		got, n := Uvarint(enc)
		if n != len(enc) || got != v {
			t.Fatalf("round trip %d: got %d n=%d len=%d", v, got, n, len(enc))
		}
		sv := int64(v)
		zenc := AppendZigZag(nil, sv)
		u, n := Uvarint(zenc)
		if n != len(zenc) || UnZigZag(u) != sv {
			t.Fatalf("zigzag round trip %d failed", sv)
		}
	})
}

// FuzzUvarintDecode throws arbitrary bytes at the decoder: it must never
// panic, and anything it accepts must re-encode to the same canonical bytes.
func FuzzUvarintDecode(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, p []byte) {
		v, n := Uvarint(p)
		if n <= 0 {
			return
		}
		if n > len(p) || n > MaxVarintLen {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(p))
		}
		if !bytes.Equal(AppendUvarint(nil, v), p[:n]) {
			t.Fatalf("accepted non-canonical encoding %x for %d", p[:n], v)
		}
	})
}

// FuzzDeltaColumnTorn drives the column decoder with arbitrary payloads and
// counts: no panics, no reads past the input, torn input reported as !ok.
func FuzzDeltaColumnTorn(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint16(3))
	f.Add([]byte{}, uint16(1))
	f.Add(AppendDeltaU64s(nil, []uint64{5, 9, 1 << 33}), uint16(3))
	f.Fuzz(func(t *testing.T, p []byte, n16 uint16) {
		n := int(n16 % 512)
		vals, consumed, ok := DecodeDeltaU64s(p, n, nil)
		if consumed > len(p) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(p))
		}
		if ok {
			if len(vals) != n {
				t.Fatalf("ok decode returned %d of %d values", len(vals), n)
			}
			if !bytes.Equal(AppendDeltaU64s(nil, vals), p[:consumed]) {
				t.Fatalf("accepted column does not re-encode canonically")
			}
		}
	})
}

func TestZigZagDeltaRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(64)
		limit := int64(1 + rng.Intn(1<<20))
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(limit) // deliberately unsorted
		}
		enc := AppendZigZagDeltaRow(nil, vals)
		got, consumed, ok := DecodeZigZagDeltaRow(enc, n, limit, nil)
		if !ok || consumed != len(enc) {
			t.Fatalf("trial %d: ok=%v consumed=%d len=%d", trial, ok, consumed, len(enc))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("trial %d: value %d: got %d want %d", trial, i, got[i], vals[i])
			}
		}
	}
}

func TestZigZagDeltaRowRejectsBadInput(t *testing.T) {
	enc := AppendZigZagDeltaRow(nil, []int64{5, 3, 900})
	// Torn at every cut short of the full row.
	for cut := 0; cut < len(enc); cut++ {
		if _, _, ok := DecodeZigZagDeltaRow(enc[:cut], 3, 1000, nil); ok {
			t.Fatalf("torn row of %d bytes accepted", cut)
		}
	}
	// Out-of-range value: the last id (900) exceeds a tighter limit.
	if _, _, ok := DecodeZigZagDeltaRow(enc, 3, 900, nil); ok {
		t.Fatal("row with id >= limit accepted")
	}
	// Negative running value: a gap below zero.
	neg := AppendUvarint(nil, ZigZag(-1))
	if _, _, ok := DecodeZigZagDeltaRow(neg, 1, 1000, nil); ok {
		t.Fatal("row decoding to a negative id accepted")
	}
	// Overlong varint inside the row.
	over := append([]byte{0x80}, AppendUvarint(nil, 0)...)
	if _, _, ok := DecodeZigZagDeltaRow(over, 1, 1000, nil); ok {
		t.Fatal("overlong varint inside a row accepted")
	}
}

// FuzzZigZagDeltaRow drives the CSR v3 block row decoder with arbitrary
// payloads, counts, and limits: no panics, no reads past the input, and
// anything accepted must re-encode to exactly the bytes consumed (the same
// canonical-form property the store's open-time block validation relies on
// to reject torn, trailing, or overlong block bytes).
func FuzzZigZagDeltaRow(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint16(3), int64(100))
	f.Add([]byte{}, uint16(1), int64(1))
	f.Add(AppendZigZagDeltaRow(nil, []int64{5, 3, 1 << 18}), uint16(3), int64(1<<19))
	f.Add(AppendZigZagDeltaRow(nil, []int64{0, 0, 7, 2}), uint16(4), int64(8))
	f.Fuzz(func(t *testing.T, p []byte, n16 uint16, limit int64) {
		n := int(n16 % 512)
		vals, consumed, ok := DecodeZigZagDeltaRow(p, n, limit, nil)
		if consumed > len(p) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(p))
		}
		if ok {
			if len(vals) != n {
				t.Fatalf("ok decode returned %d of %d values", len(vals), n)
			}
			for _, v := range vals {
				if v < 0 || v >= limit {
					t.Fatalf("accepted out-of-range value %d (limit %d)", v, limit)
				}
			}
			if !bytes.Equal(AppendZigZagDeltaRow(nil, vals), p[:consumed]) {
				t.Fatalf("accepted row does not re-encode canonically")
			}
		}
	})
}

// Break-even measurement for the flush-path heuristic: encode+decode cost
// per record for the sorted delta column, the basis for the minimum batch
// size at which compression pays (see core.wireCompressMinRecords).
//
// On the development machine this measures ~4-6 ns/record to encode and
// ~5-7 ns/record to decode, i.e. ~10 ns CPU to save ~6 bytes of wire —
// profitable for any batch the TCP fabric would actually send; the minimum
// batch size guard only keeps tiny tail flushes (where the header dominates
// anyway) on the raw path.
func BenchmarkDeltaColumnEncode(b *testing.B) {
	vals := benchColumn(4096)
	dst := make([]byte, 0, 8*len(vals))
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = AppendDeltaU64s(dst[:0], vals)
	}
	_ = dst
}

func BenchmarkDeltaColumnDecode(b *testing.B) {
	vals := benchColumn(4096)
	enc := AppendDeltaU64s(nil, vals)
	out := make([]uint64, 0, len(vals))
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ok bool
		out, _, ok = DecodeDeltaU64s(enc, len(vals), out)
		if !ok {
			b.Fatal("decode failed")
		}
	}
	_ = out
}

func benchColumn(n int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Int63n(1 << 24)) // node offsets on one machine
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}
