// Package codec implements the zero-allocation integer codecs behind the
// engine's wire compression layer: LEB128-style unsigned varints, zigzag
// mapping for signed values, and sorted delta columns for node-ID batches.
//
// PGX.D's throughput model (paper §2, §4.1) is bandwidth-bound: remote reads
// and writes saturate min(network BW, DRAM BW), so every byte shaved off a
// message buffer is throughput gained. Flush buffers batch thousands of
// records whose ID words share high bits and — once sorted — differ by small
// gaps, which a delta-varint column encodes in 1-2 bytes instead of 8.
//
// All encoders are append-based (the caller owns and recycles the
// destination slice); all decoders walk the input in place and report torn
// or overlong input with a non-positive length instead of panicking, so a
// truncated frame surfaces as a validation error on the consume side.
package codec

// MaxVarintLen is the worst-case encoded size of one uint64 varint.
const MaxVarintLen = 10

// AppendUvarint appends v in LEB128 (7 bits per byte, little end first,
// high bit = continuation) and returns the extended slice.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uvarint decodes one varint from the start of p. It returns the value and
// the number of bytes consumed; n == 0 means p was torn mid-varint and
// n < 0 means the encoding is overlong — longer than 64 bits, or padded with
// a zero final byte that AppendUvarint would never emit. Accepting only the
// canonical form means every (value, length) pair is unique, so a validated
// column re-encodes to exactly the bytes received. Callers must treat n <= 0
// as a corrupt frame.
func Uvarint(p []byte) (v uint64, n int) {
	var shift uint
	for i, b := range p {
		if i == MaxVarintLen {
			return 0, -(i + 1) // longer than any canonical uint64
		}
		if b < 0x80 {
			if i == MaxVarintLen-1 && b > 1 {
				return 0, -(i + 1) // 10th byte may only contribute bit 63
			}
			if b == 0 && i > 0 {
				return 0, -(i + 1) // zero padding byte: non-canonical
			}
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0 // ran out of bytes mid-varint
}

// ZigZag maps a signed value to an unsigned one with small magnitudes small:
// 0, -1, 1, -2, 2 ... become 0, 1, 2, 3, 4 ...
func ZigZag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// AppendZigZag appends one zigzag-varint signed value.
func AppendZigZag(dst []byte, v int64) []byte {
	return AppendUvarint(dst, ZigZag(v))
}

// AppendZigZags appends every value of vals as a zigzag-varint column.
func AppendZigZags(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = AppendUvarint(dst, ZigZag(v))
	}
	return dst
}

// AppendDeltaU64s appends vals — which must be sorted ascending — as a
// delta-varint column: the first value verbatim, every later one as the gap
// to its predecessor. Sorted node-ID batches have small gaps, so most
// records take one or two bytes.
func AppendDeltaU64s(dst []byte, vals []uint64) []byte {
	prev := uint64(0)
	for _, v := range vals {
		dst = AppendUvarint(dst, v-prev)
		prev = v
	}
	return dst
}

// AppendZigZagDeltaRow appends vals as a zigzag-delta row: the first value
// relative to zero, every later one as the signed gap to its predecessor.
// Unlike AppendDeltaU64s the input need not be sorted — CSR neighbor lists
// preserve edge insertion order, so gaps can be negative — but consecutive
// neighbors still share high bits, which zigzag keeps to one or two bytes.
func AppendZigZagDeltaRow(dst []byte, vals []int64) []byte {
	prev := int64(0)
	for _, v := range vals {
		dst = AppendUvarint(dst, ZigZag(v-prev))
		prev = v
	}
	return dst
}

// DecodeZigZagDeltaRow decodes an n-value zigzag-delta row from the start of
// p into out (reusing its capacity) and returns the values plus the bytes
// consumed. Every decoded value must lie in [0, limit) — node ids in a graph
// of limit nodes — so a corrupt row surfaces here instead of indexing a
// column out of bounds later. Torn, overlong, or out-of-range input returns
// ok == false.
func DecodeZigZagDeltaRow(p []byte, n int, limit int64, out []int64) (vals []int64, consumed int, ok bool) {
	out = out[:0]
	prev := int64(0)
	off := 0
	for i := 0; i < n; i++ {
		d, k := Uvarint(p[off:])
		if k <= 0 {
			return out, off, false
		}
		off += k
		prev += UnZigZag(d)
		if prev < 0 || prev >= limit {
			return out, off, false
		}
		out = append(out, prev)
	}
	return out, off, true
}

// DecodeDeltaU64s decodes an n-value delta column from the start of p into
// out (reusing its capacity) and returns the values plus the bytes consumed.
// Torn or overlong input returns ok == false — the caller rejects the frame
// rather than misdecoding it.
func DecodeDeltaU64s(p []byte, n int, out []uint64) (vals []uint64, consumed int, ok bool) {
	out = out[:0]
	prev := uint64(0)
	off := 0
	for i := 0; i < n; i++ {
		d, k := Uvarint(p[off:])
		if k <= 0 {
			return out, off, false
		}
		off += k
		prev += d
		out = append(out, prev)
	}
	return out, off, true
}
