package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
)

// Defaults of the out-of-core experiment: the big graph's scale/edge factor,
// the engine-side resident budget the CSR must exceed, and the whole-process
// peak-RSS cap the run must stay under. The defaults put the file at roughly
// 2x the budget and the budget at a quarter of the cap, so the experiment
// only passes when the residency window and the spillable write buffers are
// actually doing their jobs.
const (
	OOCDefaultScale      = 20
	OOCEdgeFactor        = 8
	OOCDefaultBudgetMB   = 64
	OOCDefaultRSSCapMB   = 256
	oocIdentityScale     = 12
	oocStreamBucketBytes = 32 << 20
	oocSeed              = 42
)

// oocPRTolerance is the accepted max relative per-node error of the
// pagerank identity cells. PageRank-pull accumulates remote read responses
// in arrival order, so two runs of the SAME representation already differ at
// the last ulp on a wire fabric (the same reason balance.go treats pr-push
// rows as speedup-only); the storage layer cannot be held to a stronger
// standard than the engine it feeds. The Min-reduction kernels (bfs, wcc,
// sssp) are order-independent and stay strictly bit-checked.
const oocPRTolerance = 1e-12

// OOCIdentityRow is one cell of the identity matrix: one algorithm over one
// fabric, run on an in-memory load and on the mmap'd store file of the same
// graph, at a scale where both fit in RAM.
type OOCIdentityRow struct {
	Fabric string `json:"fabric"` // "inproc" or "tcp"
	Format string `json:"format"` // "csr2" (raw) or "csr3" (compressed)
	Algo   string `json:"algo"`   // "bfs", "pagerank", "wcc", "sssp"
	// InMemSeconds and StoreSeconds are the two runs' task wall times.
	InMemSeconds float64 `json:"inmem_seconds"`
	StoreSeconds float64 `json:"store_seconds"`
	// Identical reports per-node bit-identity of the two result vectors
	// (Float64bits for float results). ExpOOC fails outright when false,
	// except for pagerank cells within oocPRTolerance (see MaxRelError).
	Identical bool `json:"identical"`
	// MaxRelError is the worst per-node relative difference — nonzero only
	// on pagerank cells, where response-arrival float summation order makes
	// ulp-level wiggle inherent to the engine, not the storage layer.
	MaxRelError float64 `json:"max_rel_error,omitempty"`
}

// OOCRunRow is one algorithm of the RSS-capped out-of-core run: the CSR file
// exceeds the resident budget, so the row records how hard the out-of-core
// machinery worked alongside the timing.
type OOCRunRow struct {
	Format  string  `json:"format"` // "csr2" or "csr3"
	Algo    string  `json:"algo"`
	Seconds float64 `json:"seconds"`
	// Spill accounting from the run's counters (cumulative across the phase's
	// rows in run order: the registry counts for the whole cluster lifetime).
	SpilledWriteFrames int64 `json:"spilled_write_frames"`
	SpilledWriteBytes  int64 `json:"spilled_write_bytes"`
	SpillFileFrames    int64 `json:"spill_file_frames"`
	// Decode-cache accounting, csr3 rows only (cumulative like the spill
	// counters): chunk claims that found their blocks decoded vs. ones that
	// paid a varint decode, and the raw ref bytes those misses produced.
	DecodeHits   int64 `json:"decode_hits,omitempty"`
	DecodeMisses int64 `json:"decode_misses,omitempty"`
	DecodedBytes int64 `json:"decoded_bytes,omitempty"`
}

// OOCReport is the JSON artifact (BENCH_ooc.json) of the out-of-core
// storage experiment.
type OOCReport struct {
	Machines      int `json:"machines"`
	IdentityScale int `json:"identity_scale"`
	Scale         int `json:"scale"`
	EdgeFactor    int `json:"edge_factor"`

	// FileBytes is the big CSR v2 file's on-disk size; the run is only
	// meaningfully out-of-core when it exceeds ResidentBudgetBytes.
	// CompressedFileBytes is the same graph's CSR v3 file size and
	// CompressionRatio = FileBytes / CompressedFileBytes.
	FileBytes           int64   `json:"file_bytes"`
	CompressedFileBytes int64   `json:"compressed_file_bytes"`
	CompressionRatio    float64 `json:"compression_ratio"`
	ResidentBudgetBytes int64   `json:"resident_budget_bytes"`
	RSSCapBytes         int64   `json:"rss_cap_bytes"`

	// BaselineVmHWMBytes is the process peak RSS before the big phase;
	// PeakVmHWMBytes is the peak after it (VmHWM from /proc/self/status,
	// zero when the platform does not expose it). UnderCap reports
	// PeakVmHWMBytes <= RSSCapBytes; VmHWMAvailable false means the check
	// could not run and UnderCap is vacuously true.
	BaselineVmHWMBytes int64 `json:"baseline_vmhwm_bytes"`
	PeakVmHWMBytes     int64 `json:"peak_vmhwm_bytes"`
	VmHWMAvailable     bool  `json:"vmhwm_available"`
	UnderCap           bool  `json:"under_cap"`

	Identity []OOCIdentityRow `json:"identity"`
	Runs     []OOCRunRow      `json:"runs"`
}

// ExpOOC exercises the out-of-core storage subsystem end to end, in two
// phases:
//
//  1. Identity: at a scale where both representations fit in RAM, every
//     algorithm must produce bit-identical per-node results whether the
//     cluster loaded the graph on the heap (Cluster.Load) or adopted the
//     mmap'd CSR v2 file (Cluster.LoadStore) — over the in-process fabric
//     and over TCP, with a deliberately tiny resident budget and write
//     spilling forced on, so the whole out-of-core path (residency window,
//     chunk touch hints, spill-to-file, drain replay) is under test, not
//     just the file format. Any mismatch fails the experiment; the one
//     sanctioned exception is pagerank's ulp-level summation-order wiggle
//     (see oocPRTolerance).
//
//  2. RSS cap: stream-write a CSR file about twice the resident budget
//     (never materializing the graph), load it out-of-core, run BFS and
//     PageRank, and record the process peak RSS (VmHWM). The report says
//     whether the peak stayed under the cap; the caller decides whether
//     that is fatal (pgxd-bench -exp ooc treats over-cap as failure).
//
// budgetMB and capMB <= 0 select the defaults.
func ExpOOC(ds *Datasets, oocScale, machines, prIters int, budgetMB, capMB int64, prog Progress) (*Table, *OOCReport, error) {
	if oocScale <= 0 {
		oocScale = OOCDefaultScale
	}
	if budgetMB <= 0 {
		budgetMB = OOCDefaultBudgetMB
	}
	if capMB <= 0 {
		capMB = OOCDefaultRSSCapMB
	}
	rep := &OOCReport{
		Machines:            machines,
		IdentityScale:       oocIdentityScale,
		Scale:               oocScale,
		EdgeFactor:          OOCEdgeFactor,
		ResidentBudgetBytes: budgetMB << 20,
		RSSCapBytes:         capMB << 20,
	}
	dir, err := os.MkdirTemp("", "pgxd-ooc-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{Title: fmt.Sprintf("Out-of-core storage (%d machines, budget %d MiB, cap %d MiB)",
		machines, budgetMB, capMB)}
	t.Header = []string{"phase", "fabric", "format", "algo", "in-mem", "store", "identical", "spilled", "peak-rss"}

	// Phase 1 must run before the big phase: VmHWM is a process-lifetime
	// high-water mark, so the small identity runs cannot be allowed to
	// inherit (or inflate) the big phase's peak.
	if err := oocIdentity(ds, machines, prIters, rep, t, prog); err != nil {
		return nil, nil, err
	}
	if err := oocCapped(dir, machines, prIters, rep, t, prog); err != nil {
		return nil, nil, err
	}

	t.Notes = append(t.Notes,
		"identity rows: per-node results of Cluster.Load vs Cluster.LoadStore on the same weighted graph, bit-compared; the store cell runs with a deliberately tiny resident budget and write spilling forced on (csr3 rows add a tiny decode cache)",
		"pagerank identity is ulp-tolerant (~ marks the max relative error): pull sums remote read responses in arrival order, so even two in-memory runs differ at the last bit on a wire fabric",
		fmt.Sprintf("capped rows: CSR v2 file of %d MiB streamed to disk (csr3 twin %d MiB, %.2fx smaller), loaded with a %d MiB resident budget; peak RSS is VmHWM over the whole process",
			rep.FileBytes>>20, rep.CompressedFileBytes>>20, rep.CompressionRatio, budgetMB),
		fmt.Sprintf("under-cap: peak VmHWM %d MiB vs cap %d MiB -> %v", rep.PeakVmHWMBytes>>20, capMB, rep.UnderCap))
	return t, rep, nil
}

// oocIdentity runs the identity matrix (phase 1). The weighted TWT' variant
// backs it so the file's weight arrays are under test too (sssp reads them;
// the other algorithms ignore them).
func oocIdentity(ds *Datasets, machines, prIters int, rep *OOCReport, t *Table, prog Progress) error {
	g, err := ds.Weighted(DSTwitter, oocIdentityScale)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "pgxd-ooc-id-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "identity.csr2")
	if err := store.WriteGraph(path, g, machines); err != nil {
		return err
	}
	path3 := filepath.Join(dir, "identity.csr3")
	if err := store.CompressFile(path3, path); err != nil {
		return err
	}

	for _, fabric := range []string{"inproc", "tcp"} {
		prog.log("ooc: identity pass over %s fabric", fabric)
		// In-memory twin: ghosting off (set for every identity cell in
		// oocRunAll) so the ref encoding — and therefore the execution path —
		// matches the ghost-free store file exactly.
		memRes, err := oocRunAll(machines, fabric, prIters, nil,
			func(c *core.Cluster) (func(), error) { return nil, c.Load(g) })
		if err != nil {
			return fmt.Errorf("ooc: identity in-mem/%s: %w", fabric, err)
		}
		// Store twins: tiny budget + forced spilling, so the identity check
		// covers the residency window and the spill/replay path, not just the
		// mmap load. The csr3 twin adds a deliberately tiny decode cache so
		// eviction and re-decode are under test too.
		for _, format := range []struct {
			name string
			path string
		}{{"csr2", path}, {"csr3", path3}} {
			storeRes, err := oocRunAll(machines, fabric, prIters,
				func(cfg *core.Config) {
					cfg.ResidentBudgetBytes = 1 << 20
					cfg.SpillWrites = true
					cfg.SpillBudgetBytes = 4 << 10
					cfg.SpillDir = dir
					if format.name == "csr3" {
						cfg.DecodeCacheBytes = 64 << 10
					}
				},
				func(c *core.Cluster) (func(), error) {
					sf, err := store.Open(format.path)
					if err != nil {
						return nil, err
					}
					if err := c.LoadStore(sf); err != nil {
						sf.Close() //nolint:errcheck
						return nil, err
					}
					return func() { sf.Close() }, nil //nolint:errcheck
				})
			if err != nil {
				return fmt.Errorf("ooc: identity store/%s/%s: %w", format.name, fabric, err)
			}
			for i, mr := range memRes {
				sr := storeRes[i]
				row := OOCIdentityRow{
					Fabric:       fabric,
					Format:       format.name,
					Algo:         mr.algo,
					InMemSeconds: mr.secs,
					StoreSeconds: sr.secs,
					Identical:    equalBits(mr.bits, sr.bits),
				}
				idCol := fmt.Sprintf("%v", row.Identical)
				if mr.algo == "pagerank" && !row.Identical {
					row.MaxRelError = maxRelErr(mr.bits, sr.bits)
					idCol = fmt.Sprintf("~%.1e", row.MaxRelError)
				}
				rep.Identity = append(rep.Identity, row)
				t.AddRow("identity", fabric, format.name, row.Algo, fmtSecs(row.InMemSeconds),
					fmtSecs(row.StoreSeconds), idCol, "", "")
				if !row.Identical && (mr.algo != "pagerank" || row.MaxRelError > oocPRTolerance) {
					return fmt.Errorf("ooc: %s over %s (%s): store-backed results differ from in-memory (max rel err %g)",
						row.Algo, fabric, format.name, row.MaxRelError)
				}
			}
		}
	}
	return nil
}

// oocCell is one algorithm's result in an identity pass.
type oocCell struct {
	algo string
	secs float64
	bits []uint64
}

// oocRunAll boots one fresh cluster (tune adjusts the config first; nil for
// defaults), loads it via load — which returns an optional cleanup to run
// after shutdown, such as closing a store file — and runs the three identity
// algorithms, returning their result bits.
func oocRunAll(machines int, fabric string, prIters int, tune func(*core.Config), load func(*core.Cluster) (func(), error)) ([]oocCell, error) {
	cfg := core.DefaultConfig(machines)
	cfg.GhostThreshold = core.GhostDisabled
	if fabric == "tcp" {
		cfg.ReqBuffers = 2*cfg.Workers*cfg.NumMachines + 4
		cfg.RespBuffers = 2*cfg.Copiers*cfg.NumMachines + 4
		f, err := comm.NewTCPFabricOpts(machines,
			machines*(cfg.ReqBuffers+cfg.Workers*machines)+64, cfg.BufferSize, comm.TCPOptions{})
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cfg.Fabric = f
	}
	if tune != nil {
		tune(&cfg)
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	// Shutdown must precede the load cleanup: closing a store file unmaps
	// the region the machines alias until they are joined.
	var cleanup func()
	defer func() {
		c.Shutdown()
		if cleanup != nil {
			cleanup()
		}
	}()
	cleanup, err = load(c)
	if err != nil {
		return nil, err
	}
	var out []oocCell
	type algo struct {
		name string
		run  func() ([]uint64, algorithms.Metrics, error)
	}
	algos := []algo{
		{"bfs", func() ([]uint64, algorithms.Metrics, error) {
			v, met, err := algorithms.HopDist(c, 0, c.NumNodes())
			return i64Bits(v), met, err
		}},
		{"pagerank", func() ([]uint64, algorithms.Metrics, error) {
			v, met, err := algorithms.PageRankPull(c, prIters, 0.85)
			return f64Bits(v), met, err
		}},
		{"wcc", func() ([]uint64, algorithms.Metrics, error) {
			v, met, err := algorithms.WCC(c, 100000)
			return i64Bits(v), met, err
		}},
		{"sssp", func() ([]uint64, algorithms.Metrics, error) {
			v, met, err := algorithms.SSSP(c, 0, c.NumNodes())
			return f64Bits(v), met, err
		}},
	}
	for _, a := range algos {
		bits, met, err := a.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.name, err)
		}
		out = append(out, oocCell{algo: a.name, secs: met.Total.Seconds(), bits: bits})
	}
	return out, nil
}

// oocCapped runs the RSS-capped big phase (phase 2).
func oocCapped(dir string, machines, prIters int, rep *OOCReport, t *Table, prog Progress) error {
	// Force freed identity-phase heap back to the OS so the baseline VmHWM
	// reading reflects this phase, not retained garbage.
	debug.FreeOSMemory()
	rep.BaselineVmHWMBytes, rep.VmHWMAvailable = readVmHWM()

	es, err := graph.RMATStream(rep.Scale, rep.EdgeFactor, graph.TwitterLike(), oocSeed)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "big.csr2")
	prog.log("ooc: streaming scale-%d RMAT (%d edges) to %s", rep.Scale, es.NumEdges(), path)
	start := time.Now()
	if err := store.WriteStream(path, es, store.StreamOptions{
		Machines:    machines,
		BucketBytes: oocStreamBucketBytes,
	}); err != nil {
		return err
	}
	prog.log("ooc: stream write took %s", time.Since(start).Round(time.Millisecond))
	path3 := filepath.Join(dir, "big.csr3")
	start = time.Now()
	if err := store.CompressFile(path3, path); err != nil {
		return err
	}
	prog.log("ooc: compression took %s", time.Since(start).Round(time.Millisecond))
	debug.FreeOSMemory()

	if fi, err := os.Stat(path); err == nil {
		rep.FileBytes = fi.Size()
	}
	if fi, err := os.Stat(path3); err == nil {
		rep.CompressedFileBytes = fi.Size()
	}
	if rep.CompressedFileBytes > 0 {
		rep.CompressionRatio = float64(rep.FileBytes) / float64(rep.CompressedFileBytes)
	}
	prog.log("ooc: csr2 %d MiB, csr3 %d MiB (%.2fx smaller)",
		rep.FileBytes>>20, rep.CompressedFileBytes>>20, rep.CompressionRatio)
	if rep.FileBytes <= rep.ResidentBudgetBytes {
		prog.log("ooc: WARNING: file (%d MiB) fits the resident budget (%d MiB); run is not out-of-core",
			rep.FileBytes>>20, rep.ResidentBudgetBytes>>20)
	}

	// Run the capped phase once per format. Each format gets a fresh cluster
	// and registry so the cumulative counters are per-format; the csr3 run
	// bounds the decode cache well under the resident budget and (because a
	// budget is set) carries its property columns off-heap.
	peakCheck := func(r OOCRunRow) {
		t.AddRow("capped", "inproc", r.Format, r.Algo, "", fmtSecs(r.Seconds), "",
			fmt.Sprintf("%df/%dB", r.SpilledWriteFrames, r.SpilledWriteBytes),
			fmt.Sprintf("%dMiB<=%dMiB:%v", rep.PeakVmHWMBytes>>20, rep.RSSCapBytes>>20, rep.UnderCap))
	}
	for _, format := range []struct {
		name string
		path string
	}{{"csr2", path}, {"csr3", path3}} {
		if err := oocCappedFormat(dir, format.name, format.path, machines, prIters, rep, prog); err != nil {
			return err
		}
	}

	peak, ok := readVmHWM()
	rep.PeakVmHWMBytes = peak
	rep.VmHWMAvailable = rep.VmHWMAvailable && ok
	rep.UnderCap = !rep.VmHWMAvailable || peak <= rep.RSSCapBytes
	for _, r := range rep.Runs {
		peakCheck(r)
	}
	return nil
}

// oocCappedFormat runs the capped phase's algorithms on one store format and
// appends their rows to the report.
func oocCappedFormat(dir, format, path string, machines, prIters int, rep *OOCReport, prog Progress) error {
	sf, err := store.Open(path)
	if err != nil {
		return err
	}
	defer sf.Close()

	cfg := core.DefaultConfig(machines)
	cfg.GhostThreshold = core.GhostDisabled
	cfg.ResidentBudgetBytes = rep.ResidentBudgetBytes
	cfg.SpillWrites = true
	cfg.SpillDir = dir
	if format == "csr3" {
		// A quarter of the resident budget, so decoded blocks never blow the
		// RSS cap that the compression was supposed to protect.
		cfg.DecodeCacheBytes = rep.ResidentBudgetBytes / 4
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c, err := core.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer c.Shutdown()
	if err := c.LoadStore(sf); err != nil {
		return err
	}

	runs := []struct {
		name string
		run  func() (algorithms.Metrics, error)
	}{
		{"bfs", func() (algorithms.Metrics, error) {
			_, met, err := algorithms.HopDist(c, 0, c.NumNodes())
			return met, err
		}},
		{"pagerank", func() (algorithms.Metrics, error) {
			_, met, err := algorithms.PageRankPull(c, prIters, 0.85)
			return met, err
		}},
	}
	for _, r := range runs {
		prog.log("ooc: capped %s %s on %d MiB CSR (budget %d MiB)",
			format, r.name, sf.FileBytes()>>20, rep.ResidentBudgetBytes>>20)
		met, err := r.run()
		if err != nil {
			return fmt.Errorf("ooc: capped %s %s: %w", format, r.name, err)
		}
		ctrs := reg.LifetimeCounters()
		rep.Runs = append(rep.Runs, OOCRunRow{
			Format:             format,
			Algo:               r.name,
			Seconds:            met.Total.Seconds(),
			SpilledWriteFrames: ctrs["spilled_write_frames"],
			SpilledWriteBytes:  ctrs["spilled_write_bytes"],
			SpillFileFrames:    ctrs["spill_file_frames"],
			DecodeHits:         ctrs["decode_hits"],
			DecodeMisses:       ctrs["decode_misses"],
			DecodedBytes:       ctrs["decoded_bytes"],
		})
	}
	return nil
}

// maxRelErr returns the worst per-node relative difference between two
// float64 result vectors given as raw bits.
func maxRelErr(a, b []uint64) float64 {
	worst := 0.0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		x, y := math.Float64frombits(a[i]), math.Float64frombits(b[i])
		d := math.Abs(x - y)
		if x != 0 {
			d /= math.Abs(x)
		}
		if d > worst {
			worst = d
		}
	}
	if len(a) != len(b) {
		return math.Inf(1)
	}
	return worst
}

// readVmHWM returns the process peak resident set size in bytes from
// /proc/self/status (Linux). ok is false when the field is unavailable —
// callers then skip the cap assertion rather than fail.
func readVmHWM() (bytes int64, ok bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}

// WriteJSON writes the report to path (the BENCH_ooc.json artifact).
func (r *OOCReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
