package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// DirectionRow is one cell of the direction-switching ablation: one traversal
// algorithm on one graph under one direction policy.
type DirectionRow struct {
	Graph   string `json:"graph"`   // "TWT'" (RMAT) or "ROAD'" (grid)
	Algo    string `json:"algo"`    // "bfs", "sssp", "wcc", "pr-pull"
	Variant string `json:"variant"` // "fixed-push", "fixed-pull", "adaptive", "dense"

	Seconds    float64 `json:"seconds"` // best of two runs
	Supersteps int     `json:"supersteps"`
	PushSteps  int     `json:"push_steps"`
	PullSteps  int     `json:"pull_steps"`
	TotalBytes int64   `json:"total_bytes"`

	// Identical reports bit-identity of the per-node results versus the
	// fixed-push run of the same (graph, algo) — the heuristic must only
	// change how values move, never the values.
	Identical bool `json:"identical_vs_fixed_push"`

	// SpeedupVsBestFixed is bestFixedSeconds/Seconds, filled on adaptive
	// rows once both fixed variants of the cell have run.
	SpeedupVsBestFixed float64 `json:"speedup_vs_best_fixed,omitempty"`
}

// DirectionReport is the JSON artifact (BENCH_direction.json) of the sweep.
type DirectionReport struct {
	Scale    int            `json:"scale"`
	Machines int            `json:"machines"`
	Rows     []DirectionRow `json:"rows"`
}

// ExpDirection ablates the adaptive push/pull traversal machinery: BFS on a
// skewed RMAT graph and a high-diameter road-like grid under {fixed-push,
// fixed-pull, adaptive} policies plus the pre-frontier dense path
// (DisableSparseFrontier), and SSSP/WCC under {fixed-push, fixed-pull,
// adaptive} for the bit-identity and regression check. PageRank rows pin the
// frontier machinery's zero cost on non-frontier algorithms.
func ExpDirection(ds *Datasets, scale, machines, prIters int, prog Progress) (*Table, *DirectionReport, error) {
	rep := &DirectionReport{Scale: scale, Machines: machines}
	t := &Table{Title: fmt.Sprintf("Direction switching (%d machines, scale %d)", machines, scale)}
	t.Header = []string{"graph", "algo", "variant", "time", "steps", "push/pull", "bytes", "identical", "speedup"}

	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"fixed-push", func(c *core.Config) { c.DisableDirectionSwitching = true; c.FixedDirection = core.DirPush }},
		{"fixed-pull", func(c *core.Config) { c.DisableDirectionSwitching = true; c.FixedDirection = core.DirPull }},
		{"adaptive", func(c *core.Config) {}},
		{"dense", func(c *core.Config) { c.DisableSparseFrontier = true }},
	}

	type cell struct {
		graphName, algo string
		variants        []string
	}
	cells := []cell{
		{DSTwitter, "bfs", []string{"fixed-push", "fixed-pull", "adaptive", "dense"}},
		{DSRoad, "bfs", []string{"fixed-push", "fixed-pull", "adaptive", "dense"}},
		{DSTwitter, "sssp", []string{"fixed-push", "fixed-pull", "adaptive"}},
		{DSTwitter, "wcc", []string{"fixed-push", "fixed-pull", "adaptive"}},
		{DSTwitter, "pr-pull", []string{"fixed-push", "adaptive"}},
	}

	for _, cl := range cells {
		var g *graph.Graph
		var err error
		if cl.algo == "sssp" {
			g, err = ds.Weighted(cl.graphName, scale)
		} else {
			g, err = ds.Get(cl.graphName, scale)
		}
		if err != nil {
			return nil, nil, err
		}
		var baseBits []uint64
		var fixedBest float64
		adaptiveIdx := -1
		for _, vname := range cl.variants {
			var mut func(*core.Config)
			for _, v := range variants {
				if v.name == vname {
					mut = v.mut
				}
			}
			prog.log("direction: %s %s %s", cl.graphName, cl.algo, vname)
			// Best of two runs, each on a fresh cluster: algorithm props and
			// the policy's learned cost model must start cold every trial.
			var row DirectionRow
			var bits []uint64
			for trial := 0; trial < 2; trial++ {
				cfg := core.DefaultConfig(machines)
				mut(&cfg)
				vals, met, err := runDirectionCell(g, cfg, cl.algo, prIters)
				if err != nil {
					return nil, nil, fmt.Errorf("direction: %s %s %s: %w", cl.graphName, cl.algo, vname, err)
				}
				if trial == 0 || met.Total.Seconds() < row.Seconds {
					row = DirectionRow{
						Graph:      cl.graphName,
						Algo:       cl.algo,
						Variant:    vname,
						Seconds:    met.Total.Seconds(),
						Supersteps: met.Iterations,
						PushSteps:  met.PushSteps,
						PullSteps:  met.PullSteps,
						TotalBytes: met.Traffic.BytesSent,
					}
				}
				bits = vals
			}
			if baseBits == nil {
				baseBits = bits
				row.Identical = true
			} else {
				row.Identical = equalBits(baseBits, bits)
			}
			if vname == "fixed-push" || vname == "fixed-pull" {
				if fixedBest == 0 || row.Seconds < fixedBest {
					fixedBest = row.Seconds
				}
			}
			if vname == "adaptive" {
				adaptiveIdx = len(rep.Rows)
			}
			rep.Rows = append(rep.Rows, row)
		}
		if adaptiveIdx >= 0 && fixedBest > 0 {
			rep.Rows[adaptiveIdx].SpeedupVsBestFixed = fixedBest / rep.Rows[adaptiveIdx].Seconds
		}
		for i := len(rep.Rows) - len(cl.variants); i < len(rep.Rows); i++ {
			r := rep.Rows[i]
			speedup := ""
			if r.SpeedupVsBestFixed > 0 {
				speedup = fmt.Sprintf("%.2fx", r.SpeedupVsBestFixed)
			}
			t.AddRow(r.Graph, r.Algo, r.Variant, fmtSecs(r.Seconds),
				fmt.Sprintf("%d", r.Supersteps),
				fmt.Sprintf("%d/%d", r.PushSteps, r.PullSteps),
				fmtBytes(r.TotalBytes),
				fmt.Sprintf("%v", r.Identical), speedup)
		}
	}
	t.Notes = append(t.Notes,
		"identical = per-node results bit-identical to the fixed-push run of the same cell",
		"dense = the pre-frontier path: dense active properties, full filter scans, per-step allreduce (DisableSparseFrontier)",
		"speedup = best fixed-direction time / adaptive time",
		"pr-pull rows use no frontiers: they pin the frontier machinery's cost on non-traversal algorithms at zero")
	return t, rep, nil
}

// runDirectionCell boots a fresh cluster with cfg, runs one traversal, and
// returns the per-node results as raw bit patterns for exact comparison.
func runDirectionCell(g *graph.Graph, cfg core.Config, algo string, prIters int) ([]uint64, algorithms.Metrics, error) {
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, algorithms.Metrics{}, err
	}
	defer c.Shutdown()
	if err := c.Load(g); err != nil {
		return nil, algorithms.Metrics{}, err
	}
	switch algo {
	case "bfs":
		vals, met, err := algorithms.HopDist(c, 0, c.NumNodes())
		return i64Bits(vals), met, err
	case "sssp":
		vals, met, err := algorithms.SSSP(c, 0, c.NumNodes())
		if err != nil {
			return nil, met, err
		}
		out := make([]uint64, len(vals))
		for i, v := range vals {
			out[i] = math.Float64bits(v)
		}
		return out, met, nil
	case "wcc":
		vals, met, err := algorithms.WCC(c, 100000)
		return i64Bits(vals), met, err
	case "pr-pull":
		vals, met, err := algorithms.PageRankPull(c, prIters, 0.85)
		if err != nil {
			return nil, met, err
		}
		out := make([]uint64, len(vals))
		for i, v := range vals {
			out[i] = math.Float64bits(v)
		}
		return out, met, nil
	default:
		return nil, algorithms.Metrics{}, fmt.Errorf("bench: unknown direction algo %q", algo)
	}
}

func i64Bits(vals []int64) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = uint64(v)
	}
	return out
}

func equalBits(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteJSON writes the report to path (the BENCH_direction.json artifact).
func (r *DirectionReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
