package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

// smallScale keeps harness smoke tests fast.
const smallScale = 9

func TestDatasetsGenerateAndCache(t *testing.T) {
	ds := NewDatasets()
	for _, name := range []string{DSTwitter, DSWeb, DSLive, DSWiki, DSUniform} {
		g, err := ds.Get(name, smallScale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		again, err := ds.Get(name, smallScale)
		if err != nil || again != g {
			t.Fatalf("%s: cache miss on second Get", name)
		}
	}
	if _, err := ds.Get("NOPE", smallScale); err == nil {
		t.Error("unknown dataset accepted")
	}
	wg, err := ds.Weighted(DSTwitter, smallScale)
	if err != nil {
		t.Fatal(err)
	}
	if !wg.Weighted() {
		t.Error("Weighted returned unweighted graph")
	}
}

func TestRunCellAllCombinations(t *testing.T) {
	ds := NewDatasets()
	g, err := ds.Get(DSTwitter, smallScale)
	if err != nil {
		t.Fatal(err)
	}
	wgr, err := ds.Weighted(DSTwitter, smallScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{SysSA, SysGX, SysGL, SysPGX} {
		for _, algo := range AllAlgos {
			if !sys.Supports(algo) {
				if _, err := RunCell(sys, algo, g, DefaultCellConfig(2)); err == nil {
					t.Errorf("%s/%s: unsupported combination accepted", sys, algo)
				}
				continue
			}
			cfg := DefaultCellConfig(2)
			cfg.PRIters = 2
			cfg.MaxK = 3
			gr := g
			if algo == AlgoSSSP {
				gr = wgr
			}
			cfg.Source = PickSource(gr)
			res, err := RunCell(sys, algo, gr, cfg)
			if err != nil {
				t.Errorf("%s/%s: %v", sys, algo, err)
				continue
			}
			if res.Seconds <= 0 {
				t.Errorf("%s/%s: non-positive time", sys, algo)
			}
		}
	}
}

func TestPickSource(t *testing.T) {
	ds := NewDatasets()
	g, err := ds.Get(DSTwitter, smallScale)
	if err != nil {
		t.Fatal(err)
	}
	src := PickSource(g)
	for u := 0; u < g.NumNodes(); u++ {
		if g.OutDegree(uint32(u)) > g.OutDegree(src) {
			t.Fatalf("node %d has higher out-degree than picked source %d", u, src)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n1"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	out := tbl.String()
	for _, want := range []string{"=== T ===", "a", "bb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		5e-7:   "1µs",
		0.0025: "2.50ms",
		1.25:   "1.25s",
		250:    "250s",
	}
	for in, want := range cases {
		if in == 5e-7 {
			continue // rounding-dependent; covered below
		}
		if got := fmtSecs(in); got != want {
			t.Errorf("fmtSecs(%g) = %q, want %q", in, got, want)
		}
	}
	if got := fmtSecs(5e-7); !strings.HasSuffix(got, "µs") {
		t.Errorf("fmtSecs(5e-7) = %q", got)
	}
	if fmtRel(0) != "-" || fmtRel(2) != "2.00x" {
		t.Error("fmtRel wrong")
	}
	if fmtBytes(512) != "512B" || !strings.HasSuffix(fmtBytes(1<<21), "MiB") {
		t.Error("fmtBytes wrong")
	}
	if !strings.HasSuffix(fmtBandwidth(5e7), "MB/s") || !strings.HasSuffix(fmtBandwidth(5e9), "GB/s") {
		t.Error("fmtBandwidth wrong")
	}
}

func TestExpTable3AndFig3Small(t *testing.T) {
	ds := NewDatasets()
	opts := DefaultTable3Opts()
	opts.Scale = smallScale
	opts.MachineCounts = []int{1, 2}
	opts.PRIters = 2
	tbl, data, err := ExpTable3(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 1 SA row + 3 systems x 2 machine counts.
	if len(tbl.Rows) != 1+3*2 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	// PGX must have a pull number, GL must not.
	if data.Get(SysPGX, 2, AlgoPRPull, DSTwitter) <= 0 {
		t.Error("missing PGX pull cell")
	}
	if data.Get(SysGL, 2, AlgoPRPull, DSTwitter) != 0 {
		t.Error("GL pull cell should be absent")
	}
	fig3 := ExpFig3(data)
	if len(fig3.Rows) == 0 {
		t.Fatal("empty figure 3")
	}
	// The PGX@max column must beat the GL baseline on at least one row
	// (headline result).
	if !strings.Contains(fig3.String(), "x") {
		t.Error("no relative values rendered")
	}
}

func TestExpTable4Small(t *testing.T) {
	ds := NewDatasets()
	opts := DefaultTable4Opts()
	opts.Scale = smallScale
	tbl, err := ExpTable4(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
}

func TestExpFig4Small(t *testing.T) {
	ds := NewDatasets()
	opts := DefaultFig4Opts()
	opts.Scale = smallScale
	opts.MachineCounts = []int{1, 2}
	opts.PRIters = 2
	tbl, err := ExpFig4(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 2 graphs x 3 series
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
}

func TestExpFig5Small(t *testing.T) {
	ds := NewDatasets()
	if _, err := ExpFig5a(ds, smallScale, []int{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	tbl, err := ExpFig5b([]int{1, 2, 4}, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
}

func TestExpFig6Small(t *testing.T) {
	ds := NewDatasets()
	if _, err := ExpFig6a(ds, smallScale, 2, []int{0, 16, 64}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ExpFig6b(ds, smallScale, []int{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	tbl, err := ExpFig6c(ds, smallScale, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
}

func TestExpFig7Small(t *testing.T) {
	ds := NewDatasets()
	tbl, err := ExpFig7(ds, smallScale, 2, []int{1, 2}, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || len(tbl.Rows[0]) != 3 {
		t.Fatalf("grid shape wrong: %v", tbl.Rows)
	}
	// Best cell must be exactly 1.00 somewhere.
	if !strings.Contains(tbl.String(), "1.00") {
		t.Error("no 1.00 cell in grid")
	}
}

func TestExpFig8Small(t *testing.T) {
	if _, err := ExpFig8a([]int{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	tbl, err := ExpFig8b([]int{2, 4}, []int{1 << 10, 16 << 10}, 30*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
}

func TestBandwidthHelpers(t *testing.T) {
	bw := rawTransportBandwidth(8<<10, 8, 20*time.Millisecond)
	if bw <= 0 {
		t.Error("zero transport bandwidth")
	}
	lb := localRandomReadBandwidth(2, 1<<16)
	if lb <= 0 {
		t.Error("zero local bandwidth")
	}
	nb, err := nToNBandwidth(3, 4<<10, 20*time.Millisecond)
	if err != nil || nb <= 0 {
		t.Errorf("nToN: %v %v", nb, err)
	}
}

func TestExpAblationsSmall(t *testing.T) {
	ds := NewDatasets()
	tbl, err := ExpAblations(ds, smallScale, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
}

func TestExpCommFastPathSmall(t *testing.T) {
	ds := NewDatasets()
	tbl, rep, err := ExpCommFastPath(ds, smallScale, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 || len(rep.Rows) != 4 {
		t.Fatalf("got %d table rows, %d report rows", len(tbl.Rows), len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Combining && r.DedupHits == 0 {
			t.Errorf("%s+combining: no dedup hits", r.Sends)
		}
		if !r.Combining && r.DedupHits != 0 {
			t.Errorf("%s without combining recorded %d hits", r.Sends, r.DedupHits)
		}
		if r.MaxAbsDiff > 1e-9 {
			t.Errorf("%s combining=%v diverged from baseline by %g", r.Sends, r.Combining, r.MaxAbsDiff)
		}
	}
	on, off := rep.Rows[1], rep.Rows[0]
	if on.ReadReqBytes >= off.ReadReqBytes {
		t.Errorf("READ_REQ bytes not reduced: %d vs %d", on.ReadReqBytes, off.ReadReqBytes)
	}
	p := t.TempDir() + "/comm.json"
	if err := rep.WriteJSON(p); err != nil {
		t.Fatal(err)
	}
	var back CommFastPathReport
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 4 {
		t.Fatalf("round-trip lost rows: %d", len(back.Rows))
	}
}
