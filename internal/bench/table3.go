package bench

import (
	"fmt"

	"repro/internal/graph"
)

// Table3Opts parameterizes the headline comparison (paper Table 3): every
// algorithm on every system across machine counts.
type Table3Opts struct {
	Scale         int
	MachineCounts []int
	Workers       int
	Copiers       int
	PRIters       int
	Progress      Progress
}

// DefaultTable3Opts returns laptop-scale defaults.
func DefaultTable3Opts() Table3Opts {
	return Table3Opts{
		Scale:         DefaultScale,
		MachineCounts: []int{1, 2, 4},
		Workers:       4,
		Copiers:       2,
		PRIters:       5,
	}
}

// Table3Data holds the numeric cells keyed by (system, machines, algo,
// dataset) for downstream figures (Figure 3 normalizes it).
type Table3Data struct {
	Opts  Table3Opts
	Cells map[string]float64
}

func t3key(sys System, p int, algo Algo, ds string) string {
	return fmt.Sprintf("%s/%d/%s/%s", sys, p, algo, ds)
}

// Get returns one cell's seconds (0 when absent).
func (d *Table3Data) Get(sys System, p int, algo Algo, ds string) float64 {
	return d.Cells[t3key(sys, p, algo, ds)]
}

// algoDatasets returns the two datasets an algorithm column uses: k-core
// runs on the smaller LJ'/WIK' pair as in the paper ("we used two other
// public graph instances with smaller size instead").
func algoDatasets(algo Algo) (string, string) {
	if algo == AlgoKCore {
		return DSLive, DSWiki
	}
	return DSTwitter, DSWeb
}

// ExpTable3 runs the full Table 3 sweep and renders it in the paper's
// layout: one row per (system, machine count), one column per
// (algorithm, dataset).
func ExpTable3(ds *Datasets, opts Table3Opts) (*Table, *Table3Data, error) {
	data := &Table3Data{Opts: opts, Cells: make(map[string]float64)}
	t := &Table{Title: "Table 3: execution time per system (seconds; PR and EV per iteration)"}
	t.Header = []string{"sys", "p"}
	for _, algo := range AllAlgos {
		a, b := algoDatasets(algo)
		t.Header = append(t.Header, fmt.Sprintf("%s %s", algo, a), fmt.Sprintf("%s %s", algo, b))
	}

	cellFor := func(sys System, p int, algo Algo, dsName string) (string, error) {
		if !sys.Supports(algo) {
			return "-", nil
		}
		var g *graph.Graph
		var err error
		if algo == AlgoSSSP {
			g, err = ds.Weighted(dsName, opts.Scale)
		} else {
			g, err = ds.Get(dsName, opts.Scale)
		}
		if err != nil {
			return "", err
		}
		cfg := DefaultCellConfig(p)
		cfg.Workers = opts.Workers
		cfg.Copiers = opts.Copiers
		cfg.PRIters = opts.PRIters
		cfg.Source = PickSource(g)
		res, err := RunCell(sys, algo, g, cfg)
		if err != nil {
			return "", fmt.Errorf("%s/%s/%s/p=%d: %w", sys, algo, dsName, p, err)
		}
		data.Cells[t3key(sys, p, algo, dsName)] = res.Seconds
		return fmtSecs(res.Seconds), nil
	}

	addRows := func(sys System, machineCounts []int) error {
		for _, p := range machineCounts {
			opts.Progress.log("table3: %s p=%d", sys, p)
			row := []string{string(sys), fmt.Sprint(p)}
			for _, algo := range AllAlgos {
				a, b := algoDatasets(algo)
				ca, err := cellFor(sys, p, algo, a)
				if err != nil {
					return err
				}
				cb, err := cellFor(sys, p, algo, b)
				if err != nil {
					return err
				}
				row = append(row, ca, cb)
			}
			t.AddRow(row...)
		}
		return nil
	}

	if err := addRows(SysSA, []int{1}); err != nil {
		return nil, nil, err
	}
	for _, sys := range []System{SysGX, SysGL, SysPGX} {
		if err := addRows(sys, opts.MachineCounts); err != nil {
			return nil, nil, err
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("graphs at scale %d (2^%d nodes); datasets are generated stand-ins (DESIGN.md §5)", opts.Scale, opts.Scale),
		"'-' marks combinations the original systems do not support (pull on GL/GX, k-core on GX)",
		"KCore columns use the smaller LJ'/WIK' instances, as in the paper",
	)
	return t, data, nil
}

// ExpFig3 derives Figure 3 from Table 3 data: relative performance with the
// GL-like engine at the smallest machine count as 1.0, per (algorithm,
// dataset).
func ExpFig3(data *Table3Data) *Table {
	opts := data.Opts
	baseP := opts.MachineCounts[0]
	t := &Table{Title: fmt.Sprintf("Figure 3: relative performance (baseline: GL at %d machine(s) = 1.0)", baseP)}
	t.Header = []string{"algo", "dataset", fmt.Sprintf("SA@1")}
	for _, sys := range []System{SysGX, SysGL, SysPGX} {
		for _, p := range opts.MachineCounts {
			t.Header = append(t.Header, fmt.Sprintf("%s@%d", sys, p))
		}
	}
	for _, algo := range AllAlgos {
		a, b := algoDatasets(algo)
		for _, dsName := range []string{a, b} {
			base := data.Get(SysGL, baseP, algo, dsName)
			if base == 0 {
				continue
			}
			row := []string{string(algo), dsName}
			rel := func(sys System, p int) string {
				v := data.Get(sys, p, algo, dsName)
				if v == 0 {
					return "-"
				}
				return fmtRel(base / v)
			}
			row = append(row, rel(SysSA, 1))
			for _, sys := range []System{SysGX, SysGL, SysPGX} {
				for _, p := range opts.MachineCounts {
					row = append(row, rel(sys, p))
				}
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes, "values above 1.0 are faster than the GL baseline; the SA column is the paper's dotted line")
	return t
}
