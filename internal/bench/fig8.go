package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
)

// --- Figure 8a: remote random-read bandwidth -----------------------------------

// randReadKernel issues readsPerNode pseudo-random remote reads per node —
// the paper's microbenchmark "where a few threads continuously generated
// remote read requests ... 8 byte addresses to get 8 bytes worth of data
// from a random remote address".
type randReadKernel struct {
	prop         core.PropID
	readsPerNode int
	machines     int
	remoteSize   uint32
}

func (k *randReadKernel) Run(c *core.Ctx) {
	me := c.Machine()
	state := uint64(c.Node)*2862933555777941757 + 3037000493
	for i := 0; i < k.readsPerNode; i++ {
		state = state*2862933555777941757 + 3037000493
		dst := int(state % uint64(k.machines))
		if dst == me {
			dst = (dst + 1) % k.machines
		}
		off := uint32(state>>32) % k.remoteSize
		c.ReadRef(core.RemoteRef(dst, off), k.prop)
	}
}

func (k *randReadKernel) ReadDone(c *core.Ctx, val uint64) {}

// ExpFig8a measures attainable remote random-read bandwidth between two
// machines versus copier count, alongside the local DRAM random-read
// bandwidth versus thread count and the raw transport ("Network") bandwidth.
func ExpFig8a(copierCounts []int, prog Progress) (*Table, error) {
	t := &Table{Title: "Figure 8a: remote random-read bandwidth, 2 machines (1:1)"}
	t.Header = []string{"copiers/threads", "remote effective", "remote utilized", "local random read", "network (raw frames)"}

	// A uniform graph splits evenly over two machines; the kernel targets
	// the remote partition's property column.
	const scale = 15
	n := 1 << scale
	g, err := graph.Uniform(n, n, 7)
	if err != nil {
		return nil, err
	}
	const readsPerNode = 16

	netBW := rawTransportBandwidth(64<<10, 32, 200*time.Millisecond)

	for _, cp := range copierCounts {
		prog.log("fig8a: copiers=%d", cp)
		cfg := core.DefaultConfig(2)
		cfg.Copiers = cp
		cfg.Workers = 4
		cfg.GhostThreshold = -1
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.Load(g); err != nil {
			c.Shutdown()
			return nil, err
		}
		prop, err := c.AddPropF64("payload")
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		remoteSize := uint32(c.Layout().NumLocal(0))
		if s := uint32(c.Layout().NumLocal(1)); s < remoteSize {
			remoteSize = s
		}
		stats, err := c.RunJob(core.JobSpec{
			Name: "rand-read",
			Iter: core.IterNodes,
			Task: &randReadKernel{prop: prop, readsPerNode: readsPerNode, machines: 2, remoteSize: remoteSize},
		})
		c.Shutdown()
		if err != nil {
			return nil, err
		}
		reads := float64(n) * readsPerNode
		secs := stats.Duration.Seconds()
		effective := reads * 8 / secs
		// Utilized counts address + data bytes, exactly twice effective for
		// 8-byte addresses fetching 8-byte values (paper §5.3.4).
		utilized := 2 * effective
		localBW := localRandomReadBandwidth(cp, n)
		t.AddRow(fmt.Sprint(cp), fmtBandwidth(effective), fmtBandwidth(utilized),
			fmtBandwidth(localBW), fmtBandwidth(netBW))
	}
	t.Notes = append(t.Notes,
		"utilized = 2x effective by construction (8B address per 8B value)",
		"expected shape: remote bandwidth scales with copiers until it meets the local random-read or transport ceiling")
	return t, nil
}

// localRandomReadBandwidth measures 8-byte random reads from a local array
// with the given thread count — the paper's "Local" line.
func localRandomReadBandwidth(threads, size int) float64 {
	arr := make([]uint64, size)
	for i := range arr {
		arr[i] = uint64(i)
	}
	const readsPerThread = 1 << 20
	var wg sync.WaitGroup
	sinks := make([]uint64, threads) // per-thread, away from the read array
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			state := uint64(t)*0x9e3779b97f4a7c15 + 1
			var sink uint64
			for i := 0; i < readsPerThread; i++ {
				state = state*2862933555777941757 + 3037000493
				sink += arr[state%uint64(len(arr))]
			}
			sinks[t] = sink // defeat dead-code elimination
		}(t)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	var total uint64
	for _, v := range sinks {
		total += v
	}
	_ = total
	return float64(threads) * readsPerThread * 8 / secs
}

// rawTransportBandwidth blasts full dummy frames 0→1 for the given duration
// and returns the attained bytes/second — the paper's "Network" line.
func rawTransportBandwidth(bufSize int, inflight int, dur time.Duration) float64 {
	fabric := comm.NewInProcFabric(2, inflight*2+8)
	ep0, _ := fabric.Endpoint(0)
	ep1, _ := fabric.Endpoint(1)
	pool := comm.NewPool(inflight, bufSize)
	var recvBytes int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			buf, ok := ep1.Recv()
			if !ok {
				return
			}
			recvBytes += int64(len(buf.Data))
			buf.Release()
		}
	}()
	deadline := time.Now().Add(dur)
	start := time.Now()
	for time.Now().Before(deadline) {
		buf := pool.Acquire()
		buf.Reset(comm.Header{Type: comm.MsgWriteReq, Src: 0})
		buf.Data = buf.Data[:bufSize]
		if err := ep0.Send(1, buf); err != nil {
			break
		}
	}
	// Drain: wait until all buffers return, then close.
	for pool.Outstanding() > 0 {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()
	ep0.Close()
	ep1.Close()
	<-done
	return float64(recvBytes) / elapsed
}

// --- Figure 8b: message buffer size sweep --------------------------------------

// ExpFig8b measures attained N:N bandwidth versus message buffer size: every
// machine streams dummy frames to every other machine for a fixed duration —
// the experiment behind the paper's choice of 256 KiB buffers.
func ExpFig8b(machineCounts []int, bufSizes []int, dur time.Duration, prog Progress) (*Table, error) {
	t := &Table{Title: "Figure 8b: attained bandwidth vs message buffer size (N:N dummy traffic)"}
	t.Header = []string{"buffer size"}
	for _, p := range machineCounts {
		t.Header = append(t.Header, fmt.Sprintf("p=%d", p))
	}
	for _, bs := range bufSizes {
		row := []string{fmtBytes(int64(bs))}
		for _, p := range machineCounts {
			prog.log("fig8b: buf=%d p=%d", bs, p)
			bw, err := nToNBandwidth(p, bs, dur)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtBandwidth(bw))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"per-frame overhead amortizes with size: small buffers waste the fabric (paper picked 256 KiB)")
	return t, nil
}

// nToNBandwidth has every machine stream dummy frames round-robin to all
// others for dur and returns aggregate received bytes/second.
func nToNBandwidth(p int, bufSize int, dur time.Duration) (float64, error) {
	const poolPerMachine = 32
	fabric := comm.NewInProcFabric(p, p*poolPerMachine+8)
	eps := make([]comm.Endpoint, p)
	for m := 0; m < p; m++ {
		ep, err := fabric.Endpoint(m)
		if err != nil {
			return 0, err
		}
		eps[m] = ep
	}
	var total int64
	var mu sync.Mutex
	var recvWG sync.WaitGroup
	for m := 0; m < p; m++ {
		recvWG.Add(1)
		go func(m int) {
			defer recvWG.Done()
			var local int64
			for {
				buf, ok := eps[m].Recv()
				if !ok {
					break
				}
				local += int64(len(buf.Data))
				buf.Release()
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}(m)
	}
	var sendWG sync.WaitGroup
	pools := make([]*comm.Pool, p)
	start := time.Now()
	for m := 0; m < p; m++ {
		pools[m] = comm.NewPool(poolPerMachine, bufSize)
		sendWG.Add(1)
		go func(m int) {
			defer sendWG.Done()
			deadline := time.Now().Add(dur)
			dst := (m + 1) % p
			for time.Now().Before(deadline) {
				buf := pools[m].Acquire()
				buf.Reset(comm.Header{Type: comm.MsgWriteReq, Src: uint16(m)})
				buf.Data = buf.Data[:bufSize]
				if err := eps[m].Send(dst, buf); err != nil {
					return
				}
				dst = (dst + 1) % p
				if dst == m {
					dst = (dst + 1) % p
				}
			}
		}(m)
	}
	sendWG.Wait()
	for _, pool := range pools {
		for pool.Outstanding() > 0 {
			time.Sleep(time.Millisecond)
		}
	}
	elapsed := time.Since(start).Seconds()
	for _, ep := range eps {
		ep.Close()
	}
	recvWG.Wait()
	return float64(total) / elapsed, nil
}
