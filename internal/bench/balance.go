package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
)

// BalanceSkew is the deliberately unfair ownership share machine 0 gets in
// the skewed cells: 85% of the total degree mass, the same straggler shape
// the steal tests pin down.
const BalanceSkew = 0.85

// balanceGhosts is the fixed top-degree ghost budget of the skewed and
// balanced cells, so the only variable between variants is the load
// balancer. Replanned cells use the budget the plan itself picked.
const balanceGhosts = 64

// BalanceRow is one cell of the load-balancing ablation: one algorithm on
// one layout under one balancing strategy.
type BalanceRow struct {
	Algo string `json:"algo"` // "bfs", "sssp", "wcc", "pr-push"
	// Layout is "skewed" (machine 0 owns BalanceSkew of the degree mass),
	// "replanned" (the layout Cluster.Replan derived from the skewed run's
	// telemetry), or "balanced" (the default degree-balanced cut, the
	// no-regression check).
	Layout  string `json:"layout"`
	Variant string `json:"variant"` // "no-steal" or "steal"

	Seconds float64 `json:"seconds"` // best of two runs

	// WaitP99MS[m] is machine m's barrier-wait p99 in milliseconds; WaitSkew
	// is max/mean of the per-machine barrier-wait totals (1.0 = every
	// machine idles equally long, the balanced ideal).
	WaitP99MS []float64 `json:"wait_p99_ms"`
	WaitSkew  float64   `json:"wait_skew"`

	StealRequests int64 `json:"steal_requests,omitempty"`
	StolenNodes   int64 `json:"stolen_nodes,omitempty"`
	StolenEdges   int64 `json:"stolen_edges,omitempty"`

	// Identical reports bit-identity of the per-node results versus the
	// skewed no-steal run of the same algorithm. Stealing must never change
	// results on order-independent (Min-reduction) kernels; pr-push sums
	// floats in arrival order, so its rows are speedup-only.
	Identical bool `json:"identical_vs_no_steal"`

	// SpeedupVsNoSteal is skewedNoStealSeconds/Seconds, filled on steal and
	// replanned rows of the skewed cells.
	SpeedupVsNoSteal float64 `json:"speedup_vs_no_steal,omitempty"`
}

// BalanceReplanInfo records what Cluster.Replan derived from the skewed
// measurement run — the layer-2 diagnostics of the JSON artifact.
type BalanceReplanInfo struct {
	ImbalanceBefore    float64   `json:"edge_imbalance_before"`
	ImbalanceAfter     float64   `json:"edge_imbalance_after"`
	PredictedImbalance float64   `json:"predicted_imbalance"`
	MeasuredWaitSkew   float64   `json:"measured_wait_skew"`
	GhostCount         int       `json:"ghost_count"`
	CostRates          []float64 `json:"cost_rates_ns_per_degree"`
}

// BalanceReport is the JSON artifact (BENCH_balance.json) of the sweep.
type BalanceReport struct {
	Dataset  string            `json:"dataset"`
	Scale    int               `json:"scale"`
	Machines int               `json:"machines"`
	Skew     float64           `json:"skew"`
	Replan   BalanceReplanInfo `json:"replan"`
	Rows     []BalanceRow      `json:"rows"`
}

// ExpBalance ablates the traffic-matrix-driven load balancer on a
// deliberately skewed partition of TWT': machine 0 owns BalanceSkew of the
// degree mass and everyone else waits at the barrier. Three strategies per
// algorithm: live with it (no-steal), flatten it within each superstep
// (cross-machine chunk stealing), or fix ownership for the next run
// (Cluster.Replan from the measured telemetry, applied via LoadPlan). A
// balanced-layout pair per algorithm checks stealing costs nothing when
// there is nothing to steal.
func ExpBalance(ds *Datasets, scale, machines, prIters int, prog Progress) (*Table, *BalanceReport, error) {
	if machines < 2 {
		return nil, nil, fmt.Errorf("balance: need >= 2 machines to steal across (have %d)", machines)
	}
	// The experiment models a cluster in one process; give it at least one
	// scheduling context per machine. Under GOMAXPROCS=1 the victim's copier
	// only runs after its workers yield the sole P, so every steal request
	// is served post-drain and the balancer never gets to act.
	if runtime.GOMAXPROCS(0) < machines {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(machines))
	}
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, nil, err
	}
	wg, err := ds.Weighted(DSTwitter, scale)
	if err != nil {
		return nil, nil, err
	}
	skewed, err := partition.SkewedLayout(g, machines, BalanceSkew)
	if err != nil {
		return nil, nil, err
	}

	rep := &BalanceReport{Dataset: DSTwitter, Scale: scale, Machines: machines, Skew: BalanceSkew}
	t := &Table{Title: fmt.Sprintf("Load balancing on a %.0f%%-skewed cut (%d machines, scale %d)",
		100*BalanceSkew, machines, scale)}
	t.Header = []string{"algo", "layout", "variant", "time", "wait-skew", "wait-p99", "stolen", "identical", "speedup"}

	// Measurement pass for layer 2: one steal-off run on the skewed layout
	// feeds Replan. Stealing must be off here — stolen chunks are billed to
	// the thief's task phase, which hides exactly the skew the plan is meant
	// to fix (see partition.Replan).
	prog.log("balance: telemetry pass for Replan (steal off, skewed cut)")
	plan, err := measureReplan(g, machines, skewed, prIters)
	if err != nil {
		return nil, nil, err
	}
	rep.Replan = BalanceReplanInfo{
		ImbalanceBefore:    skewed.EdgeImbalance(g),
		ImbalanceAfter:     plan.Layout.EdgeImbalance(g),
		PredictedImbalance: plan.PredictedImbalance,
		MeasuredWaitSkew:   plan.MeasuredWaitSkew,
		GhostCount:         plan.GhostCount,
		CostRates:          plan.CostRates,
	}

	type variant struct {
		name   string
		layout partition.Layout
		lname  string
		ghosts int
		steal  bool
	}
	variants := []variant{
		{"no-steal", skewed, "skewed", balanceGhosts, false},
		{"steal", skewed, "skewed", balanceGhosts, true},
		{"no-steal", plan.Layout, "replanned", plan.GhostCount, false},
	}

	for _, algo := range []string{"bfs", "sssp", "wcc", "pr-push"} {
		ag := g
		if algo == "sssp" {
			ag = wg
		}
		var baseBits []uint64
		var baseSecs float64
		start := len(rep.Rows)
		for _, v := range variants {
			prog.log("balance: %s %s/%s", algo, v.lname, v.name)
			row, bits, err := bestOfTwo(ag, machines, v.layout, v.ghosts, v.steal, algo, prIters)
			if err != nil {
				return nil, nil, fmt.Errorf("balance: %s %s/%s: %w", algo, v.lname, v.name, err)
			}
			row.Layout = v.lname
			row.Variant = v.name
			if baseBits == nil {
				baseBits, baseSecs = bits, row.Seconds
				row.Identical = true
			} else {
				row.Identical = equalBits(baseBits, bits)
				row.SpeedupVsNoSteal = baseSecs / row.Seconds
			}
			rep.Rows = append(rep.Rows, row)
		}
		// The no-regression pair: the default degree-balanced cut, where the
		// steal machinery should find nothing to do and cost (close to)
		// nothing.
		balanced, err := partition.Compute(ag, machines, core.DefaultConfig(machines).Partitioning)
		if err != nil {
			return nil, nil, err
		}
		for _, steal := range []bool{false, true} {
			name := "no-steal"
			if steal {
				name = "steal"
			}
			prog.log("balance: %s balanced/%s", algo, name)
			row, bits, err := bestOfTwo(ag, machines, balanced, balanceGhosts, steal, algo, prIters)
			if err != nil {
				return nil, nil, fmt.Errorf("balance: %s balanced/%s: %w", algo, name, err)
			}
			row.Layout = "balanced"
			row.Variant = name
			row.Identical = equalBits(baseBits, bits)
			rep.Rows = append(rep.Rows, row)
		}
		for _, r := range rep.Rows[start:] {
			speedup := ""
			if r.SpeedupVsNoSteal > 0 {
				speedup = fmt.Sprintf("%.2fx", r.SpeedupVsNoSteal)
			}
			stolen := ""
			if r.StealRequests > 0 || r.StolenNodes > 0 {
				stolen = fmt.Sprintf("%dn/%de", r.StolenNodes, r.StolenEdges)
			}
			t.AddRow(r.Algo, r.Layout, r.Variant, fmtSecs(r.Seconds),
				fmt.Sprintf("%.2f", r.WaitSkew), fmtWaitP99(r.WaitP99MS),
				stolen, fmt.Sprintf("%v", r.Identical), speedup)
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("skewed cut: machine 0 owns %.0f%% of the degree mass (edge imbalance %.2f)",
			100*BalanceSkew, rep.Replan.ImbalanceBefore),
		fmt.Sprintf("replanned cut: from the steal-off run's telemetry (edge imbalance %.2f -> %.2f, %d ghosts)",
			rep.Replan.ImbalanceBefore, rep.Replan.ImbalanceAfter, rep.Replan.GhostCount),
		"wait-skew = max/mean of per-machine barrier-wait totals; 1.0 is perfectly balanced",
		"identical = per-node results bit-identical to the skewed no-steal run; pr-push sums floats in arrival order, so its steal rows are speedup-only",
		"wall-clock speedup from stealing needs real parallel hardware: on one core the straggler's work runs somewhere either way, but wait-skew and the stolen column still show the balancer working")
	return t, rep, nil
}

// measureReplan runs one steal-off PageRank-push pass on the skewed layout
// with full instrumentation and asks the cluster for a repartitioning plan.
func measureReplan(g *graph.Graph, machines int, skewed partition.Layout, prIters int) (partition.Plan, error) {
	cfg := core.DefaultConfig(machines)
	cfg.Obs = obs.NewRegistry()
	c, err := core.NewCluster(cfg)
	if err != nil {
		return partition.Plan{}, err
	}
	defer c.Shutdown()
	if err := c.LoadPlan(g, skewed, balanceGhosts); err != nil {
		return partition.Plan{}, err
	}
	if _, _, err := algorithms.PageRankPush(c, prIters, 0.85); err != nil {
		return partition.Plan{}, err
	}
	return c.Replan(g)
}

// bestOfTwo runs one (layout, steal, algo) cell twice on fresh clusters and
// keeps the faster run's row. The returned bits are the per-node results for
// the identity check (identical across trials by construction on the Min
// kernels; for pr-push the last trial's).
func bestOfTwo(g *graph.Graph, machines int, layout partition.Layout, ghosts int, steal bool, algo string, prIters int) (BalanceRow, []uint64, error) {
	var best BalanceRow
	var bits []uint64
	for trial := 0; trial < 2; trial++ {
		row, b, err := runBalanceCell(g, machines, layout, ghosts, steal, algo, prIters)
		if err != nil {
			return BalanceRow{}, nil, err
		}
		if trial == 0 || row.Seconds < best.Seconds {
			best = row
		}
		bits = b
	}
	return best, bits, nil
}

// runBalanceCell boots a fresh instrumented cluster on an explicit layout,
// runs one algorithm, and returns the row plus per-node result bits. Cells
// run over the TCP fabric: cross-machine balancing is about the wire, and
// the in-process fabric's free sends would understate the cost of moving a
// chunk relative to owning it.
func runBalanceCell(g *graph.Graph, machines int, layout partition.Layout, ghosts int, steal bool, algo string, prIters int) (BalanceRow, []uint64, error) {
	cfg := core.DefaultConfig(machines)
	cfg.EnableWorkStealing = true
	cfg.DisableWorkStealing = !steal
	// Fine-grained chunks: the straggler's cursor drains gradually, so
	// thieves find unclaimed work throughout the task phase instead of only
	// at its start.
	cfg.ChunkTargetEdges = 256
	reg := obs.NewRegistry()
	cfg.Obs = reg
	cfg.ReqBuffers = 2*cfg.Workers*cfg.NumMachines + 4
	cfg.RespBuffers = 2*cfg.Copiers*cfg.NumMachines + 4
	fabric, err := comm.NewTCPFabricOpts(machines,
		machines*(cfg.ReqBuffers+cfg.Workers*machines)+64, cfg.BufferSize, comm.TCPOptions{})
	if err != nil {
		return BalanceRow{}, nil, err
	}
	defer fabric.Close()
	cfg.Fabric = fabric
	c, err := core.NewCluster(cfg)
	if err != nil {
		return BalanceRow{}, nil, err
	}
	defer c.Shutdown()
	if err := c.LoadPlan(g, layout, ghosts); err != nil {
		return BalanceRow{}, nil, err
	}

	var bits []uint64
	var met algorithms.Metrics
	switch algo {
	case "bfs":
		var vals []int64
		vals, met, err = algorithms.HopDist(c, 0, c.NumNodes())
		bits = i64Bits(vals)
	case "sssp":
		var vals []float64
		vals, met, err = algorithms.SSSP(c, 0, c.NumNodes())
		bits = f64Bits(vals)
	case "wcc":
		var vals []int64
		vals, met, err = algorithms.WCC(c, 100000)
		bits = i64Bits(vals)
	case "pr-push":
		var vals []float64
		vals, met, err = algorithms.PageRankPush(c, prIters, 0.85)
		bits = f64Bits(vals)
	default:
		return BalanceRow{}, nil, fmt.Errorf("bench: unknown balance algo %q", algo)
	}
	if err != nil {
		return BalanceRow{}, nil, err
	}

	row := BalanceRow{Algo: algo, Seconds: met.Total.Seconds()}
	waits := make([]int64, machines)
	row.WaitP99MS = make([]float64, machines)
	for m := 0; m < machines; m++ {
		h := reg.MachineHistogram(m, obs.HistBarrier)
		waits[m] = h.SumNS
		row.WaitP99MS[m] = float64(h.Quantile(0.99)) / 1e6
	}
	row.WaitSkew = maxOverMeanI64(waits)
	ctrs := reg.LifetimeCounters()
	row.StealRequests = ctrs["steal_requests"]
	row.StolenNodes = ctrs["stolen_nodes"]
	row.StolenEdges = ctrs["stolen_edges"]
	return row, bits, nil
}

func f64Bits(vals []float64) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

// maxOverMeanI64 is the skew figure of merit: max/mean of a non-negative
// vector, 0 when empty or all-zero.
func maxOverMeanI64(v []int64) float64 {
	if len(v) == 0 {
		return 0
	}
	var max, tot int64
	for _, x := range v {
		tot += x
		if x > max {
			max = x
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(max) * float64(len(v)) / float64(tot)
}

func fmtWaitP99(ms []float64) string {
	lo, hi := math.Inf(1), 0.0
	for _, v := range ms {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return "-"
	}
	return fmt.Sprintf("%.1f..%.1fms", lo, hi)
}

// WriteJSON writes the report to path (the BENCH_balance.json artifact).
func (r *BalanceReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
