package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// ServeReport is the JSON artifact (BENCH_serve.json) of the serving-layer
// load test: end-to-end client latency percentiles and throughput under
// mixed multi-tenant load, the same-graph concurrency scaling the engine
// pool buys, a deadline-exceeded run aborting its engine job in place, and
// the busy-graph non-starvation check.
type ServeReport struct {
	Scale    int `json:"scale"`
	Machines int `json:"machines"`

	// Load section: Tenants clients x RunsPerTenant runs of short PageRank
	// against one server.
	Tenants        int     `json:"tenants"`
	RunsPerTenant  int     `json:"runs_per_tenant"`
	PoolSize       int     `json:"pool_size"`
	MaxConcurrent  int     `json:"max_concurrent"`
	JobsPerSec     float64 `json:"jobs_per_sec"`
	LatP50Millis   float64 `json:"lat_p50_millis"`
	LatP99Millis   float64 `json:"lat_p99_millis"`
	QueueP50Millis float64 `json:"queue_p50_millis"`
	QueueP99Millis float64 `json:"queue_p99_millis"`

	// Scaling section: a fixed batch of same-graph analyses with one engine
	// vs. a pool. PeakConcurrency is the highest ActiveAnalyses the server
	// reported mid-batch: pool=1 pins it at 1, pool=N reaching >=2 shows
	// read-only analyses on one graph genuinely in flight together (wall
	// times only improve with it on multi-core hosts; on one core the
	// analyses time-slice).
	Pool1Seconds         float64 `json:"pool1_seconds"`
	PoolNSeconds         float64 `json:"pooln_seconds"`
	ScalingFactor        float64 `json:"scaling_factor"`
	Pool1PeakConcurrency int     `json:"pool1_peak_concurrency"`
	PoolNPeakConcurrency int     `json:"pooln_peak_concurrency"`

	// Deadline section: a run with a tight deadline must fail with a
	// deadline error while the server keeps serving.
	DeadlineErr       string  `json:"deadline_err"`
	DeadlineAborted   bool    `json:"deadline_aborted"`
	DeadlineRunsAfter int64   `json:"deadline_runs_after"`
	PostDeadlineMs    float64 `json:"post_deadline_run_millis"`

	// Starvation section: latency of a run on an idle graph while another
	// graph's only engine is held by a long job. Bounded queueing here was
	// the admission bug this layer fixes.
	BusyOtherGraphMs float64 `json:"busy_other_graph_millis"`
}

// pctl returns the nearest-rank q-quantile of unsorted samples.
func pctl(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := int(q*float64(len(s))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// ExpServe load-tests the serving layer end to end over its TCP protocol:
// multi-tenant admission, the per-graph engine pool, deadlines firing the
// engine cancellation latch, and the no-starvation admission property.
func ExpServe(scale, machines, tenants, runsPerTenant int, prog Progress) (*Table, *ServeReport, error) {
	const poolSize = 2
	rep := &ServeReport{
		Scale: scale, Machines: machines,
		Tenants: tenants, RunsPerTenant: runsPerTenant,
		PoolSize: poolSize, MaxConcurrent: 2 * poolSize,
	}
	t := &Table{Title: fmt.Sprintf("Serving layer (scale %d, %d machines, pool %d)", scale, machines, poolSize)}
	t.Header = []string{"section", "config", "metric", "detail"}

	newServer := func(pool, maxConc int) (*server.Server, *server.Client, error) {
		cfg := server.DefaultServerConfig()
		cfg.AnalysisPoolSize = pool
		cfg.MaxConcurrentAnalyses = maxConc
		cfg.DefaultMachines = machines
		s, err := server.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		c, err := server.Dial(s.Addr())
		if err != nil {
			s.Close()
			return nil, nil, err
		}
		return s, c, nil
	}

	// --- 1: mixed multi-tenant load ----------------------------------------
	prog.log("serve: %d tenants x %d runs", tenants, runsPerTenant)
	s, admin, err := newServer(poolSize, 2*poolSize)
	if err != nil {
		return nil, nil, err
	}
	if _, err := admin.Generate(server.Request{Graph: "twt", Kind: "rmat", Scale: scale, EdgeFactor: 8, Seed: 7}); err != nil {
		s.Close()
		return nil, nil, err
	}
	var mu sync.Mutex
	var lats []float64
	var firstErr error
	start := time.Now()
	var wg sync.WaitGroup
	for ten := 0; ten < tenants; ten++ {
		wg.Add(1)
		go func(ten int) {
			defer wg.Done()
			cl, err := server.Dial(s.Addr())
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer cl.Close()
			tenant := fmt.Sprintf("tenant-%d", ten)
			for r := 0; r < runsPerTenant; r++ {
				req := server.Request{
					Graph: "twt", Algo: "pagerank", Iterations: 3,
					Tenant: tenant, Priority: ten % 3,
				}
				t0 := time.Now()
				_, err := cl.Run(req)
				lat := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("%s run %d: %w", tenant, r, err)
				}
				lats = append(lats, lat)
				mu.Unlock()
			}
		}(ten)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		s.Close()
		return nil, nil, firstErr
	}
	st, err := admin.Stats()
	if err != nil {
		s.Close()
		return nil, nil, err
	}
	total := tenants * runsPerTenant
	rep.JobsPerSec = float64(total) / elapsed.Seconds()
	rep.LatP50Millis = pctl(lats, 0.50)
	rep.LatP99Millis = pctl(lats, 0.99)
	rep.QueueP50Millis = st.QueueP50Millis
	rep.QueueP99Millis = st.QueueP99Millis
	if st.RunsServed != int64(total) {
		s.Close()
		return nil, nil, fmt.Errorf("serve: runs served %d, want %d", st.RunsServed, total)
	}
	t.AddRow("load", fmt.Sprintf("%dx%d runs", tenants, runsPerTenant),
		fmt.Sprintf("%.1f jobs/s", rep.JobsPerSec),
		fmt.Sprintf("lat p50=%.1fms p99=%.1fms queue p50<=%.2fms p99<=%.2fms",
			rep.LatP50Millis, rep.LatP99Millis, rep.QueueP50Millis, rep.QueueP99Millis))

	// --- 2: deadline fires the engine cancellation latch --------------------
	prog.log("serve: deadline abort")
	_, derr := admin.Run(server.Request{Graph: "twt", Algo: "pagerank", Iterations: 100000, TimeoutMillis: 200})
	if derr == nil {
		s.Close()
		return nil, nil, fmt.Errorf("serve: deadline run completed, want abort")
	}
	rep.DeadlineErr = derr.Error()
	rep.DeadlineAborted = strings.Contains(derr.Error(), "deadline exceeded")
	// The same engine pool serves the next run: the abort killed the job,
	// not the server.
	after, err := admin.Run(server.Request{Graph: "twt", Algo: "pagerank", Iterations: 3})
	if err != nil {
		s.Close()
		return nil, nil, fmt.Errorf("serve: run after deadline abort: %w", err)
	}
	rep.PostDeadlineMs = after.Millis
	if st, err = admin.Stats(); err == nil {
		rep.DeadlineRunsAfter = st.DeadlineExceededRuns
	}
	t.AddRow("deadline", "200ms budget", fmt.Sprintf("aborted=%v", rep.DeadlineAborted),
		fmt.Sprintf("next run %.1fms, deadline_exceeded=%d", rep.PostDeadlineMs, rep.DeadlineRunsAfter))

	// --- 3: busy graph does not starve others -------------------------------
	prog.log("serve: no starvation across graphs")
	if _, err := admin.Generate(server.Request{Graph: "other", Kind: "rmat", Scale: scale, EdgeFactor: 8, Seed: 8}); err != nil {
		s.Close()
		return nil, nil, err
	}
	longDone := make(chan error, 1)
	go func() {
		cl, err := server.Dial(s.Addr())
		if err != nil {
			longDone <- err
			return
		}
		defer cl.Close()
		// Occupies graph "twt" until the tag cancel below.
		_, _ = cl.Run(server.Request{Graph: "twt", Algo: "pagerank", Iterations: 100000, Tag: "hog"})
		longDone <- nil
	}()
	time.Sleep(100 * time.Millisecond) // let the hog admit
	t0 := time.Now()
	if _, err := admin.Run(server.Request{Graph: "other", Algo: "pagerank", Iterations: 3}); err != nil {
		s.Close()
		return nil, nil, fmt.Errorf("serve: run on idle graph while other busy: %w", err)
	}
	rep.BusyOtherGraphMs = float64(time.Since(t0).Microseconds()) / 1000
	if _, err := admin.Cancel("hog", ""); err != nil {
		s.Close()
		return nil, nil, err
	}
	<-longDone
	s.Close()
	t.AddRow("starvation", "hog on twt", fmt.Sprintf("other graph %.1fms", rep.BusyOtherGraphMs),
		"idle graph admitted while busy graph queued")

	// --- 4: same-graph concurrency via the engine pool ----------------------
	const batch = 8
	runBatch := func(pool int) (time.Duration, int, error) {
		s, admin, err := newServer(pool, 2*poolSize)
		if err != nil {
			return 0, 0, err
		}
		defer s.Close()
		defer admin.Close()
		if _, err := admin.Generate(server.Request{Graph: "g", Kind: "rmat", Scale: scale, EdgeFactor: 8, Seed: 7}); err != nil {
			return 0, 0, err
		}
		// Sample ActiveAnalyses while the batch is in flight: the peak is
		// how many same-graph analyses the server truly ran at once.
		peak := 0
		stopSampler := make(chan struct{})
		samplerDone := make(chan struct{})
		go func() {
			defer close(samplerDone)
			for {
				select {
				case <-stopSampler:
					return
				case <-time.After(time.Millisecond):
				}
				if st, err := admin.Stats(); err == nil && st.ActiveAnalyses > peak {
					peak = st.ActiveAnalyses
				}
			}
		}()
		var wg sync.WaitGroup
		errs := make(chan error, batch)
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl, err := server.Dial(s.Addr())
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				if _, err := cl.Run(server.Request{Graph: "g", Algo: "pagerank", Iterations: 20}); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(t0)
		close(stopSampler)
		<-samplerDone
		close(errs)
		for err := range errs {
			return 0, 0, err
		}
		return elapsed, peak, nil
	}
	prog.log("serve: same-graph concurrency, pool=1")
	t1, peak1, err := runBatch(1)
	if err != nil {
		return nil, nil, err
	}
	prog.log("serve: same-graph concurrency, pool=%d", poolSize)
	tn, peakN, err := runBatch(poolSize)
	if err != nil {
		return nil, nil, err
	}
	rep.Pool1Seconds = t1.Seconds()
	rep.PoolNSeconds = tn.Seconds()
	rep.ScalingFactor = t1.Seconds() / tn.Seconds()
	rep.Pool1PeakConcurrency = peak1
	rep.PoolNPeakConcurrency = peakN
	if peak1 > 1 {
		return nil, nil, fmt.Errorf("serve: pool=1 reached %d concurrent analyses on one graph", peak1)
	}
	if peakN < 2 {
		return nil, nil, fmt.Errorf("serve: pool=%d never exceeded 1 concurrent analysis on one graph", poolSize)
	}
	t.AddRow("scaling", fmt.Sprintf("%d runs, pool 1->%d", batch, poolSize),
		fmt.Sprintf("peak %d -> %d in flight", peak1, peakN),
		fmt.Sprintf("wall %s -> %s (%.2fx)", fmtSecs(rep.Pool1Seconds), fmtSecs(rep.PoolNSeconds), rep.ScalingFactor))

	t.Notes = append(t.Notes,
		"latencies are end-to-end over the TCP protocol, including admission queueing",
		"the deadline abort kills the engine job through the cancellation latch; the pool engine is reused",
		"peak in-flight >1 with a pool shows same-graph read-only analyses truly overlapping; wall-clock gains need multiple cores")
	return t, rep, nil
}

// WriteJSON writes the report to path (the BENCH_serve.json artifact).
func (r *ServeReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
