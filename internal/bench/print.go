package bench

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: a header, labeled rows, and
// footnotes. The harness prints these in the paper's table shapes so runs
// can be compared against the publication side by side.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtSecs renders seconds with sensible precision across µs..minutes.
func fmtSecs(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s < 100:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}

// fmtRel renders a relative-performance multiple.
func fmtRel(r float64) string {
	if r <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", r)
}

// fmtBytes renders a byte count.
func fmtBytes(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}

// fmtBandwidth renders bytes/second.
func fmtBandwidth(bps float64) string {
	switch {
	case bps < 1e6:
		return fmt.Sprintf("%.1fKB/s", bps/1e3)
	case bps < 1e9:
		return fmt.Sprintf("%.1fMB/s", bps/1e6)
	default:
		return fmt.Sprintf("%.2fGB/s", bps/1e9)
	}
}

// Progress receives human-readable updates during long experiments; nil
// disables reporting.
type Progress func(format string, args ...any)

func (p Progress) log(format string, args ...any) {
	if p != nil {
		p(format, args...)
	}
}
