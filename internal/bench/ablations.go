package bench

import (
	"fmt"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
)

// ExpAblations quantifies the engine design choices DESIGN.md calls out,
// beyond the paper's own figures: data pulling vs pushing (the atomic-
// reduction saving of §5.2), ghost privatization vs shared atomic ghosts
// (§3.3), and the bare per-step overhead (barrier vs empty job, the cost
// that governs k-core per §5.3.1).
func ExpAblations(ds *Datasets, scale, machines int, prog Progress) (*Table, error) {
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Ablations: engine design choices (PR on TWT')"}
	t.Header = []string{"ablation", "variant A", "variant B", "A/B"}

	runPR := func(cfg core.Config, pull bool) (time.Duration, error) {
		c, err := core.NewCluster(cfg)
		if err != nil {
			return 0, err
		}
		defer c.Shutdown()
		if err := c.Load(g); err != nil {
			return 0, err
		}
		var met algorithms.Metrics
		if pull {
			_, met, err = algorithms.PageRankPull(c, 3, 0.85)
		} else {
			_, met, err = algorithms.PageRankPush(c, 3, 0.85)
		}
		return met.Total, err
	}

	// 1. Pull vs push.
	prog.log("ablations: pull vs push")
	pullT, err := runPR(core.DefaultConfig(machines), true)
	if err != nil {
		return nil, err
	}
	pushT, err := runPR(core.DefaultConfig(machines), false)
	if err != nil {
		return nil, err
	}
	t.AddRow("data pulling vs pushing",
		fmt.Sprintf("pull %s", fmtSecs(pullT.Seconds())),
		fmt.Sprintf("push %s", fmtSecs(pushT.Seconds())),
		fmt.Sprintf("%.2f", pullT.Seconds()/pushT.Seconds()))

	// 2. Ghost privatization on vs off (push reduces into ghosts).
	prog.log("ablations: ghost privatization")
	cfgPriv := core.DefaultConfig(machines)
	cfgPriv.GhostCount = 256
	privT, err := runPR(cfgPriv, false)
	if err != nil {
		return nil, err
	}
	cfgShared := cfgPriv
	cfgShared.DisableGhostPrivatization = true
	sharedT, err := runPR(cfgShared, false)
	if err != nil {
		return nil, err
	}
	t.AddRow("ghost privatization vs shared atomics",
		fmt.Sprintf("private %s", fmtSecs(privT.Seconds())),
		fmt.Sprintf("shared %s", fmtSecs(sharedT.Seconds())),
		fmt.Sprintf("%.2f", privT.Seconds()/sharedT.Seconds()))

	// 3. Read combining on vs off (pull with ghosting disabled, so every
	// cross-partition read goes remote — the duplicate-heavy case).
	prog.log("ablations: read combining")
	cfgComb := core.DefaultConfig(machines)
	cfgComb.GhostThreshold = core.GhostDisabled
	combT, err := runPR(cfgComb, true)
	if err != nil {
		return nil, err
	}
	cfgNoComb := cfgComb
	cfgNoComb.DisableReadCombining = true
	noCombT, err := runPR(cfgNoComb, true)
	if err != nil {
		return nil, err
	}
	t.AddRow("read combining vs raw protocol",
		fmt.Sprintf("combined %s", fmtSecs(combT.Seconds())),
		fmt.Sprintf("raw %s", fmtSecs(noCombT.Seconds())),
		fmt.Sprintf("%.2f", combT.Seconds()/noCombT.Seconds()))

	// 4. Direction switching: adaptive BFS vs fixed push (both on the
	// frontier machinery; only the per-superstep heuristic differs).
	prog.log("ablations: direction switching")
	runBFS := func(cfg core.Config) (time.Duration, error) {
		c, err := core.NewCluster(cfg)
		if err != nil {
			return 0, err
		}
		defer c.Shutdown()
		if err := c.Load(g); err != nil {
			return 0, err
		}
		_, met, err := algorithms.HopDist(c, 0, c.NumNodes())
		return met.Total, err
	}
	adaptT, err := runBFS(core.DefaultConfig(machines))
	if err != nil {
		return nil, err
	}
	cfgFixed := core.DefaultConfig(machines)
	cfgFixed.DisableDirectionSwitching = true
	cfgFixed.FixedDirection = core.DirPush
	fixedT, err := runBFS(cfgFixed)
	if err != nil {
		return nil, err
	}
	t.AddRow("direction switching vs fixed push (BFS)",
		fmt.Sprintf("adaptive %s", fmtSecs(adaptT.Seconds())),
		fmt.Sprintf("push %s", fmtSecs(fixedT.Seconds())),
		fmt.Sprintf("%.2f", adaptT.Seconds()/fixedT.Seconds()))

	// 5. Sparse frontier: frontier-driven BFS (fixed push, so only the
	// iteration machinery differs) vs the dense active-property path with its
	// full filter scans and per-step allreduce.
	prog.log("ablations: sparse frontier")
	cfgDense := core.DefaultConfig(machines)
	cfgDense.DisableSparseFrontier = true
	denseT, err := runBFS(cfgDense)
	if err != nil {
		return nil, err
	}
	t.AddRow("sparse frontier vs dense filter scan (BFS)",
		fmt.Sprintf("frontier %s", fmtSecs(fixedT.Seconds())),
		fmt.Sprintf("dense %s", fmtSecs(denseT.Seconds())),
		fmt.Sprintf("%.2f", fixedT.Seconds()/denseT.Seconds()))

	// 6. Write combining: WCC's min-label pushes produce duplicate
	// (prop, op, offset) records whenever several frontier nodes share a
	// remote neighbor — the case the sender-side combiner folds in place.
	prog.log("ablations: write combining")
	runWCC := func(cfg core.Config) (time.Duration, error) {
		c, err := core.NewCluster(cfg)
		if err != nil {
			return 0, err
		}
		defer c.Shutdown()
		if err := c.Load(g); err != nil {
			return 0, err
		}
		_, met, err := algorithms.WCC(c, 100000)
		return met.Total, err
	}
	combWT, err := runWCC(core.DefaultConfig(machines))
	if err != nil {
		return nil, err
	}
	cfgNoW := core.DefaultConfig(machines)
	cfgNoW.DisableWriteCombining = true
	noCombWT, err := runWCC(cfgNoW)
	if err != nil {
		return nil, err
	}
	t.AddRow("write combining vs raw write records (WCC)",
		fmt.Sprintf("combined %s", fmtSecs(combWT.Seconds())),
		fmt.Sprintf("raw %s", fmtSecs(noCombWT.Seconds())),
		fmt.Sprintf("%.2f", combWT.Seconds()/noCombWT.Seconds()))

	// 7. Per-step overhead: barrier vs full (empty) job.
	prog.log("ablations: per-step overhead")
	c, err := core.NewCluster(core.DefaultConfig(machines))
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	if err := c.Load(g); err != nil {
		return nil, err
	}
	const rounds = 50
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := c.Barrier(); err != nil {
			return nil, err
		}
	}
	barrierT := time.Since(start) / rounds
	task := &edgeIterKernel{}
	start = time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := c.RunJob(core.JobSpec{Name: "empty", Iter: core.IterNodes, Task: task}); err != nil {
			return nil, err
		}
	}
	jobT := time.Since(start) / rounds
	t.AddRow("per-step overhead",
		fmt.Sprintf("barrier %s", fmtSecs(barrierT.Seconds())),
		fmt.Sprintf("empty job %s", fmtSecs(jobT.Seconds())),
		fmt.Sprintf("%.2f", barrierT.Seconds()/jobT.Seconds()))

	t.Notes = append(t.Notes,
		"pull avoids atomic reductions; its advantage grows with contention (real cores)",
		"the empty-job overhead is what accumulates over k-core's thousands of steps (paper §5.3.1)")
	return t, nil
}
