package bench

// Substrate micro-benchmarks: the building blocks under every table/figure.
// Not tied to a specific paper artifact, but useful for regression-spotting
// in the pieces whose costs the experiments aggregate.

import (
	"sync/atomic"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/reduce"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	ds := NewDatasets()
	g, err := ds.Get(DSTwitter, 12)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkSubstrate_CSRBuild(b *testing.B) {
	g := benchGraph(b)
	edges := g.EdgeList()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.FromEdges(g.NumNodes(), edges, false); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(g.NumEdges() * 8)
}

func BenchmarkSubstrate_RMATGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := graph.RMAT(12, 8, graph.TwitterLike(), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrate_PartitionCompute(b *testing.B) {
	g := benchGraph(b)
	for _, strat := range []partition.Strategy{partition.VertexBalanced, partition.EdgeBalanced} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Compute(g, 8, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSubstrate_GhostSelect(b *testing.B) {
	g := benchGraph(b)
	b.Run("threshold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.SelectGhosts(g, 128)
		}
	})
	b.Run("topk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.SelectTopGhosts(g, 256)
		}
	})
}

func BenchmarkSubstrate_EdgeChunks(b *testing.B) {
	g := benchGraph(b)
	target := g.NumEdges() / 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.EdgeChunks(g.Out.Rows, target)
	}
}

func BenchmarkSubstrate_AtomicReduceF64(b *testing.B) {
	for _, op := range []reduce.Op{reduce.Sum, reduce.Min} {
		b.Run(op.String(), func(b *testing.B) {
			var bits atomic.Uint64
			for i := 0; i < b.N; i++ {
				reduce.AtomicApplyF64(&bits, op, float64(i%7))
			}
		})
	}
}

func BenchmarkSubstrate_BufferAppend(b *testing.B) {
	pool := comm.NewPool(1, 256<<10)
	buf := pool.Acquire()
	defer buf.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset(comm.Header{Type: comm.MsgWriteReq})
		for buf.Room() >= 16 {
			buf.AppendU64(uint64(i))
			buf.AppendU64(uint64(i) * 3)
		}
	}
	b.SetBytes(int64(buf.Cap()))
}

func BenchmarkSubstrate_InProcRoundTrip(b *testing.B) {
	f := comm.NewInProcFabric(2, 64)
	ep0, _ := f.Endpoint(0)
	ep1, _ := f.Endpoint(1)
	defer ep0.Close()
	defer ep1.Close()
	pool := comm.NewPool(4, 4096)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			buf, ok := ep1.Recv()
			if !ok {
				return
			}
			// Bounce straight back.
			buf.SetAux(buf.Header().Aux + 1)
			if err := ep1.Send(0, buf); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := pool.Acquire()
		buf.Reset(comm.Header{Type: comm.MsgCtrl, Aux: uint64(i)})
		if err := ep0.Send(1, buf); err != nil {
			b.Fatal(err)
		}
		resp, ok := ep0.Recv()
		if !ok {
			b.Fatal("closed")
		}
		resp.Release()
	}
	b.StopTimer()
	ep0.Close()
	ep1.Close()
	<-done
}

func BenchmarkSubstrate_BinaryIO(b *testing.B) {
	g := benchGraph(b)
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink countWriter
			if err := graph.WriteBinary(&sink, g); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(sink.n)
		}
	})
}

type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
