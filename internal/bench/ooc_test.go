package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOOCIdentityAndCapSmall runs the full out-of-core experiment at a small
// capped-phase scale: the bit-identity matrix (Cluster.Load vs
// Cluster.LoadStore over both fabrics, spilling forced) plus the streamed
// capped phase. The RSS cap is set effectively unlimited here — the race
// detector inflates RSS unpredictably, so the real cap assertion lives in the
// non-instrumented `make ooc` smoke run.
func TestOOCIdentityAndCapSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("out-of-core experiment smoke is not short")
	}
	ds := NewDatasets()
	tbl, rep, err := ExpOOC(ds, 13, 2, 3, 4, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	if want := 2 * 2 * 4; len(rep.Identity) != want { // {inproc,tcp} x {csr2,csr3} x {bfs,pagerank,wcc,sssp}
		t.Fatalf("identity rows = %d, want %d", len(rep.Identity), want)
	}
	for _, row := range rep.Identity {
		if row.Identical {
			continue
		}
		if row.Algo != "pagerank" {
			t.Errorf("%s/%s/%s: store-backed result not bit-identical", row.Fabric, row.Format, row.Algo)
		} else if row.MaxRelError > oocPRTolerance {
			t.Errorf("%s/%s/pagerank: max relative error %g exceeds tolerance %g",
				row.Fabric, row.Format, row.MaxRelError, oocPRTolerance)
		}
	}
	if want := 2 * 2; len(rep.Runs) != want { // {csr2,csr3} x {bfs, pagerank}
		t.Fatalf("capped-phase rows = %d, want %d", len(rep.Runs), want)
	}
	for _, r := range rep.Runs {
		if r.Seconds <= 0 {
			t.Errorf("capped %s %s: non-positive wall time %v", r.Format, r.Algo, r.Seconds)
		}
		if r.Format == "csr3" && r.DecodeMisses == 0 {
			t.Errorf("capped csr3 %s: decode cache never decoded a block", r.Algo)
		}
	}
	if rep.FileBytes <= 0 {
		t.Error("capped phase recorded no file size")
	}
	if rep.CompressedFileBytes <= 0 || rep.CompressedFileBytes >= rep.FileBytes {
		t.Errorf("compressed file %d bytes vs raw %d: compression did not shrink the file",
			rep.CompressedFileBytes, rep.FileBytes)
	}
	if !rep.UnderCap {
		t.Errorf("under_cap false with an effectively unlimited cap (peak %d bytes)", rep.PeakVmHWMBytes)
	}

	out := filepath.Join(t.TempDir(), "BENCH_ooc.json")
	if err := rep.WriteJSON(out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("report artifact missing or empty: %v", err)
	}
}
