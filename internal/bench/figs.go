package bench

import (
	"fmt"
	"time"

	"repro/internal/algorithms"
	"repro/internal/baseline/gas"
	"repro/internal/baseline/sa"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

// --- Figure 4: uniform random vs skewed graph -------------------------------

// Fig4Opts parameterizes the communication-isolation experiment: exact
// PageRank on a uniform random graph (inherently balanced, maximally
// communicating) versus the skewed TWT' instance.
type Fig4Opts struct {
	Scale         int
	MachineCounts []int
	Workers       int
	Copiers       int
	PRIters       int
	Progress      Progress
}

// DefaultFig4Opts returns laptop-scale defaults.
func DefaultFig4Opts() Fig4Opts {
	return Fig4Opts{Scale: DefaultScale, MachineCounts: []int{1, 2, 4}, Workers: 4, Copiers: 2, PRIters: 5}
}

// ExpFig4 runs PageRank (exact) per system on UNI' and TWT' and reports
// relative performance normalized to GL on the smallest machine count, the
// paper's Figure 4 layout.
func ExpFig4(ds *Datasets, opts Fig4Opts) (*Table, error) {
	t := &Table{Title: "Figure 4: PageRank(exact) on uniform vs skewed graph (relative perf, GL@min = 1.0)"}
	t.Header = []string{"graph", "series"}
	for _, p := range opts.MachineCounts {
		t.Header = append(t.Header, fmt.Sprintf("p=%d", p))
	}
	for _, dsName := range []string{DSUniform, DSTwitter} {
		g, err := ds.Get(dsName, opts.Scale)
		if err != nil {
			return nil, err
		}
		cfgFor := func(p int) CellConfig {
			cfg := DefaultCellConfig(p)
			cfg.Workers, cfg.Copiers, cfg.PRIters = opts.Workers, opts.Copiers, opts.PRIters
			return cfg
		}
		var base float64
		series := []struct {
			label string
			run   func(p int) (CellResult, error)
		}{
			{"GL push", func(p int) (CellResult, error) { return runGL(AlgoPRPush, g, cfgFor(p)) }},
			{"PGX push", func(p int) (CellResult, error) { return runPGX(AlgoPRPush, g, cfgFor(p)) }},
			{"PGX pull", func(p int) (CellResult, error) { return runPGX(AlgoPRPull, g, cfgFor(p)) }},
		}
		for si, sr := range series {
			opts.Progress.log("fig4: %s %s", dsName, sr.label)
			row := []string{dsName, sr.label}
			for pi, p := range opts.MachineCounts {
				res, err := sr.run(p)
				if err != nil {
					return nil, err
				}
				if si == 0 && pi == 0 {
					base = res.Seconds
				}
				row = append(row, fmtRel(base/res.Seconds))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"UNI': (P-1)/P of edges cross partitions regardless of layout — communication-bound",
		"PGX advantage on UNI' isolates communication efficiency; the larger TWT' gap adds load balance")
	return t, nil
}

// --- Figure 5a: edge iteration rate vs threads -------------------------------

// edgeIterKernel touches every edge through the engine with no data
// movement — the framework-overhead microbenchmark.
type edgeIterKernel struct {
	core.NoReads
}

func (k *edgeIterKernel) Run(c *core.Ctx) {
	_ = c.NbrRef()
}

// ExpFig5a measures edge-iteration throughput (millions of edges per
// second, single machine) versus thread count for the SA loop, the PGX.D
// engine, and the GAS engine.
func ExpFig5a(ds *Datasets, scale int, threadCounts []int, prog Progress) (*Table, error) {
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 5a: edge iteration rate, single machine (million edges/second)"}
	t.Header = []string{"threads", "SA(OpenMP-style)", "PGX.D", "GL(GAS)"}
	edges := float64(g.NumEdges())
	for _, th := range threadCounts {
		prog.log("fig5a: threads=%d", th)
		// SA: raw CSR loop.
		start := time.Now()
		sa.EdgeIterationRate(g, sa.Threads(th))
		saRate := edges / time.Since(start).Seconds() / 1e6

		// PGX.D: one machine, th workers, empty per-edge kernel.
		cfg := core.DefaultConfig(1)
		cfg.Workers = th
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.Load(g); err != nil {
			c.Shutdown()
			return nil, err
		}
		stats, err := c.RunJob(core.JobSpec{Name: "edge-iter", Iter: core.IterOutEdges, Task: &edgeIterKernel{}})
		c.Shutdown()
		if err != nil {
			return nil, err
		}
		pgxRate := edges / stats.Duration.Seconds() / 1e6

		// GAS: one machine, th threads.
		_, gst, err := gas.EdgeIteration(g, th)
		if err != nil {
			return nil, err
		}
		gasRate := edges / gst.Duration.Seconds() / 1e6

		t.AddRow(fmt.Sprint(th), fmt.Sprintf("%.1f", saRate), fmt.Sprintf("%.1f", pgxRate), fmt.Sprintf("%.1f", gasRate))
	}
	t.Notes = append(t.Notes, "expected shape: SA fastest, PGX.D close behind, GAS well below (paper Fig 5a)")
	return t, nil
}

// --- Figure 5b: barrier latency ----------------------------------------------

// ExpFig5b measures the engine's distributed barrier latency versus machine
// count.
func ExpFig5b(machineCounts []int, rounds int, prog Progress) (*Table, error) {
	t := &Table{Title: "Figure 5b: barrier latency vs machines"}
	t.Header = []string{"machines", "barrier latency"}
	for _, p := range machineCounts {
		prog.log("fig5b: p=%d", p)
		c, err := core.NewCluster(core.DefaultConfig(p))
		if err != nil {
			return nil, err
		}
		// The barrier needs a loaded graph only for the engine's Load
		// invariants, not for the measurement; a tiny instance suffices.
		g, err := dummyGraph()
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		if err := c.Load(g); err != nil {
			c.Shutdown()
			return nil, err
		}
		// Warm up, then measure.
		for i := 0; i < 10; i++ {
			if err := c.Barrier(); err != nil {
				c.Shutdown()
				return nil, err
			}
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := c.Barrier(); err != nil {
				c.Shutdown()
				return nil, err
			}
		}
		per := time.Since(start) / time.Duration(rounds)
		c.Shutdown()
		t.AddRow(fmt.Sprint(p), per.String())
	}
	t.Notes = append(t.Notes, "latency grows with machine count but stays far below per-step compute times (paper Fig 5b)")
	return t, nil
}

func dummyGraph() (*graph.Graph, error) {
	return graph.Uniform(64, 256, 1)
}

// --- Figure 6a: ghost node sweep ----------------------------------------------

// ExpFig6a sweeps the ghost count and reports runtime and data traffic of
// PageRank-pull on TWT', both relative to the no-ghost run — the paper's
// Figure 6a.
func ExpFig6a(ds *Datasets, scale int, machines int, ghostCounts []int, prog Progress) (*Table, error) {
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 6a: ghost-node effect on runtime and traffic (PR-pull on TWT')"}
	t.Header = []string{"ghosts", "runtime", "traffic", "rel runtime", "rel traffic"}
	var baseTime, baseTraffic float64
	for i, gc := range ghostCounts {
		prog.log("fig6a: ghosts=%d", gc)
		cfg := core.DefaultConfig(machines)
		cfg.GhostCount = gc
		if gc == 0 {
			cfg.GhostThreshold = -1
		}
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.Load(g); err != nil {
			c.Shutdown()
			return nil, err
		}
		_, met, err := algorithms.PageRankPull(c, 3, 0.85)
		c.Shutdown()
		if err != nil {
			return nil, err
		}
		secs := met.Total.Seconds()
		traffic := float64(met.Traffic.DataBytesSent)
		if i == 0 {
			baseTime, baseTraffic = secs, traffic
		}
		t.AddRow(fmt.Sprint(gc), fmtSecs(secs), fmtBytes(int64(traffic)),
			fmt.Sprintf("%.2f", secs/baseTime), fmt.Sprintf("%.2f", traffic/baseTraffic))
	}
	t.Notes = append(t.Notes,
		"traffic falls steeply with the first few hundred ghosts (skewed degree distribution)",
		"runtime saturates once the network stops being the bottleneck (paper: ~75% at ~500 ghosts)")
	return t, nil
}

// --- Figure 6b: edge vs vertex partitioning -----------------------------------

// ExpFig6b compares edge partitioning against vertex partitioning for
// PageRank-pull on TWT' across machine counts (ghosting enabled for both,
// as in the paper).
func ExpFig6b(ds *Datasets, scale int, machineCounts []int, prog Progress) (*Table, error) {
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 6b: edge vs vertex partitioning (PR-pull on TWT')"}
	t.Header = []string{"machines", "vertex part.", "edge part.", "edge speedup", "imbal. vertex", "imbal. edge"}
	for _, p := range machineCounts {
		prog.log("fig6b: p=%d", p)
		times := make(map[partition.Strategy]float64)
		imbal := make(map[partition.Strategy]float64)
		for _, strat := range []partition.Strategy{partition.VertexBalanced, partition.EdgeBalanced} {
			cfg := core.DefaultConfig(p)
			cfg.Partitioning = strat
			c, err := core.NewCluster(cfg)
			if err != nil {
				return nil, err
			}
			if err := c.Load(g); err != nil {
				c.Shutdown()
				return nil, err
			}
			_, met, err := algorithms.PageRankPull(c, 3, 0.85)
			imbal[strat] = c.Layout().EdgeImbalance(g)
			c.Shutdown()
			if err != nil {
				return nil, err
			}
			times[strat] = met.Total.Seconds()
		}
		t.AddRow(fmt.Sprint(p), fmtSecs(times[partition.VertexBalanced]), fmtSecs(times[partition.EdgeBalanced]),
			fmtRel(times[partition.VertexBalanced]/times[partition.EdgeBalanced]),
			fmt.Sprintf("%.2f", imbal[partition.VertexBalanced]), fmt.Sprintf("%.2f", imbal[partition.EdgeBalanced]))
	}
	t.Notes = append(t.Notes,
		"the edge-partitioning benefit grows with machine count (paper Fig 6b)",
		"imbal. = max/mean per-machine edge weight (1.00 is perfect); structural, so it holds even when wall time is CPU-bound")
	return t, nil
}

// --- Figure 6c: load-balancing breakdown ---------------------------------------

// ExpFig6c decomposes PageRank-pull runtime into the paper's Figure 6c
// components under three configurations: ghosting only (vertex partitioning
// + node chunking), plus edge partitioning, plus edge chunking.
func ExpFig6c(ds *Datasets, scale int, machines int, prog Progress) (*Table, error) {
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 6c: execution-time breakdown of load-balancing techniques (PR-pull on TWT')"}
	t.Header = []string{"config", "total", "fully parallel", "intra-machine imbal.", "inter-machine imbal.", "sync"}
	configs := []struct {
		label string
		strat partition.Strategy
		nodes bool
	}{
		{"ghost only (vertex part., node chunks)", partition.VertexBalanced, true},
		{"+ edge partitioning", partition.EdgeBalanced, true},
		{"+ edge chunking", partition.EdgeBalanced, false},
	}
	for _, cc := range configs {
		prog.log("fig6c: %s", cc.label)
		cfg := core.DefaultConfig(machines)
		cfg.Partitioning = cc.strat
		cfg.NodeChunking = cc.nodes
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.Load(g); err != nil {
			c.Shutdown()
			return nil, err
		}
		_, met, err := algorithms.PageRankPull(c, 3, 0.85)
		c.Shutdown()
		if err != nil {
			return nil, err
		}
		total := met.Total.Seconds()
		pct := func(d time.Duration) string {
			return fmt.Sprintf("%.0f%%", 100*d.Seconds()/total)
		}
		b := met.Breakdown
		t.AddRow(cc.label, fmtSecs(total), pct(b.FullyParallel), pct(b.IntraMachine), pct(b.InterMachine), pct(b.Sync))
	}
	t.Notes = append(t.Notes,
		"edge partitioning alone moves imbalance from machines to cores; edge chunking removes it (paper Fig 6c)")
	return t, nil
}

// --- Figure 7: worker/copier grid ----------------------------------------------

// ExpFig7 sweeps worker and copier counts for PageRank-pull, reporting
// relative performance with the best cell as 1.00 — the paper's Figure 7
// heat map.
func ExpFig7(ds *Datasets, scale, machines int, workerCounts, copierCounts []int, prog Progress) (*Table, error) {
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, err
	}
	secs := make(map[[2]int]float64)
	best := 0.0
	for _, w := range workerCounts {
		for _, cp := range copierCounts {
			prog.log("fig7: workers=%d copiers=%d", w, cp)
			cfg := core.DefaultConfig(machines)
			cfg.Workers, cfg.Copiers = w, cp
			c, err := core.NewCluster(cfg)
			if err != nil {
				return nil, err
			}
			if err := c.Load(g); err != nil {
				c.Shutdown()
				return nil, err
			}
			_, met, err := algorithms.PageRankPull(c, 3, 0.85)
			c.Shutdown()
			if err != nil {
				return nil, err
			}
			s := met.Total.Seconds()
			secs[[2]int{w, cp}] = s
			if best == 0 || s < best {
				best = s
			}
		}
	}
	t := &Table{Title: "Figure 7: relative performance across worker/copier counts (best = 1.00)"}
	t.Header = []string{"workers \\ copiers"}
	for _, cp := range copierCounts {
		t.Header = append(t.Header, fmt.Sprint(cp))
	}
	for _, w := range workerCounts {
		row := []string{fmt.Sprint(w)}
		for _, cp := range copierCounts {
			row = append(row, fmt.Sprintf("%.2f", best/secs[[2]int{w, cp}]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "performance collapses when either thread kind is under-provisioned (paper Fig 7)")
	return t, nil
}
