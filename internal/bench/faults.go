package bench

import (
	"fmt"
	"time"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/pgxd"
)

// ExpFaults smoke-tests the failure model end to end: PageRank runs over a
// fault-injecting fabric that fails, drops, delays, or kills traffic, and
// each scenario asserts the fail-soft contract — injected faults surface as
// errors from the public API (never panics), every pooled buffer comes
// back, and after clearing the fault the same cluster runs the job clean.
func ExpFaults(ds *Datasets, scale, machines int, prog Progress) (*Table, error) {
	if machines < 2 {
		machines = 2
	}
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: fmt.Sprintf("Faults: fail-soft smoke (PR pull on TWT', %d machines)", machines)}
	t.Header = []string{"scenario", "outcome", "recovery", "injector"}

	scenario := func(name string, plan comm.FaultPlan, wantErr, recoverable bool) error {
		prog.log("faults: %s", name)
		cfg := core.DefaultConfig(machines)
		cfg.RequestTimeout = 1500 * time.Millisecond
		cfg.CollectiveTimeout = 1500 * time.Millisecond
		// Disable ghosting so every cross-partition read goes remote — the
		// scenarios need wire traffic to fault.
		cfg.GhostThreshold = core.GhostDisabled
		inj := pgxd.NewFaultFabric(cfg, nil, plan)
		cfg.Fabric = inj
		c, err := core.NewCluster(cfg)
		if err != nil {
			return err
		}
		defer func() {
			c.Shutdown()
			inj.Close()
		}()
		if err := c.Load(g); err != nil {
			return err
		}
		_, _, runErr := algorithms.PageRankPull(c, 2, 0.85)

		outcome := "ok"
		if runErr != nil {
			outcome = "error surfaced"
		}
		if wantErr && runErr == nil {
			return fmt.Errorf("%s: fault injected but job succeeded", name)
		}
		if !wantErr && runErr != nil {
			return fmt.Errorf("%s: job failed under a tolerable fault: %w", name, runErr)
		}
		quiescent := false
		for i := 0; i < 100; i++ {
			if c.PoolsQuiescent() {
				quiescent = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !quiescent {
			return fmt.Errorf("%s: pooled buffers leaked after fault", name)
		}

		recovery := "n/a"
		if wantErr && recoverable {
			inj.ClearRules()
			start := time.Now()
			if _, _, err := algorithms.PageRankPull(c, 2, 0.85); err != nil {
				return fmt.Errorf("%s: clean rerun after recovery failed: %w", name, err)
			}
			recovery = fmt.Sprintf("clean rerun %s", fmtSecs(time.Since(start).Seconds()))
		} else if wantErr {
			recovery = "machine dead"
		}
		st := inj.Stats()
		t.AddRow(name, outcome, recovery,
			fmt.Sprintf("drop=%d delay=%d trunc=%d fail=%d kill=%d",
				st.Dropped, st.Delayed, st.Truncated, st.Failed, st.Kills))
		return nil
	}

	steps := []struct {
		name        string
		plan        comm.FaultPlan
		wantErr     bool
		recoverable bool
	}{
		{"baseline (no faults)", comm.FaultPlan{Seed: 1}, false, false},
		{"hard-fail one read request", comm.FaultPlan{Seed: 2, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgReadReq), Kind: comm.FaultFail, After: 1, Limit: 1},
		}}, true, true},
		{"drop one read response", comm.FaultPlan{Seed: 3, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgReadResp), Kind: comm.FaultDrop, After: 1, Limit: 1},
		}}, true, true},
		{"delay every 16th response 1ms", comm.FaultPlan{Seed: 4, Rules: []comm.FaultRule{
			{Src: comm.AnyMachine, Dst: comm.AnyMachine, Type: int(comm.MsgReadResp), Kind: comm.FaultDelay, Every: 16, Delay: time.Millisecond},
		}}, false, false},
		{"kill machine 1 mid-job", comm.FaultPlan{Seed: 5, Rules: []comm.FaultRule{
			{Src: 1, Dst: comm.AnyMachine, Type: comm.AnyType, Kind: comm.FaultKill, After: 20},
		}}, true, false},
	}
	for _, s := range steps {
		if err := scenario(s.name, s.plan, s.wantErr, s.recoverable); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"errors return through Cluster.RunJob / the pgxd API; no scenario panics or leaks buffers",
		"drop and kill scenarios resolve via the request/collective timeouts (1.5s here)")
	return t, nil
}
