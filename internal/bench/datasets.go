// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5) at laptop scale. Each ExpXxx
// function runs one experiment and returns printable rows; cmd/pgxd-bench
// drives them and bench_test.go wraps representative cells as testing.B
// benchmarks.
//
// Datasets substitute generated graphs for the paper's downloads (DESIGN.md
// §5): TWT' and WEB' are RMAT with Twitter/Web-shaped skew, LJ' and WIK'
// smaller RMATs, UNI' an Erdős–Rényi instance sized like TWT' (Figure 4's
// "no matter how partitioned, (P-1)/P of the edges [cross]" property).
package bench

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Scale sets dataset sizes: graphs have 2^Scale nodes. The default keeps a
// full table-3 sweep under a minute on a laptop; raise it via
// pgxd-bench -scale for bigger runs.
const DefaultScale = 13

// EdgeFactor approximates the paper's |E|/|V| ≈ 35 for Twitter at a value
// that keeps laptop runs quick.
const EdgeFactor = 16

// Dataset names, mirroring the paper's Table 4.
const (
	DSTwitter = "TWT'"
	DSWeb     = "WEB'"
	DSLive    = "LJ'"
	DSWiki    = "WIK'"
	DSUniform = "UNI'"
	// DSRoad is a high-diameter road-network stand-in (near-square grid with
	// a few long-range shortcuts) — the graph class where direction switching
	// must know to stay top-down, since no BFS level ever gets dense.
	DSRoad = "ROAD'"
)

// Datasets caches generated graphs by (name, scale) so multi-experiment runs
// generate each instance once.
type Datasets struct {
	mu    sync.Mutex
	cache map[string]*graph.Graph
}

// NewDatasets returns an empty dataset cache.
func NewDatasets() *Datasets {
	return &Datasets{cache: make(map[string]*graph.Graph)}
}

// Get returns the named dataset at the given scale, generating on first use.
func (d *Datasets) Get(name string, scale int) (*graph.Graph, error) {
	key := fmt.Sprintf("%s@%d", name, scale)
	d.mu.Lock()
	defer d.mu.Unlock()
	if g, ok := d.cache[key]; ok {
		return g, nil
	}
	g, err := generate(name, scale)
	if err != nil {
		return nil, err
	}
	d.cache[key] = g
	return g, nil
}

func generate(name string, scale int) (*graph.Graph, error) {
	switch name {
	case DSTwitter:
		return graph.RMAT(scale, EdgeFactor, graph.TwitterLike(), 20151115)
	case DSWeb:
		// Web-UK has both more nodes and more edges than Twitter in the
		// paper; keep the node count and raise skew + edge factor slightly.
		return graph.RMAT(scale, EdgeFactor+8, graph.WebLike(), 20151116)
	case DSLive:
		return graph.RMAT(scale-2, EdgeFactor, graph.TwitterLike(), 20151117)
	case DSWiki:
		return graph.RMAT(scale-1, EdgeFactor/2, graph.TwitterLike(), 20151118)
	case DSUniform:
		n := 1 << scale
		return graph.Uniform(n, n*EdgeFactor, 20151119)
	case DSRoad:
		rows := 1 << (scale / 2)
		cols := (1 << scale) / rows
		return graph.Grid(rows, cols, (1<<scale)/64, 20151121)
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
}

// Weighted returns the dataset with uniform-random edge weights (the
// paper's SSSP setup).
func (d *Datasets) Weighted(name string, scale int) (*graph.Graph, error) {
	g, err := d.Get(name, scale)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s@%d/w", name, scale)
	d.mu.Lock()
	defer d.mu.Unlock()
	if wg, ok := d.cache[key]; ok {
		return wg, nil
	}
	wg := g.WithUniformWeights(1, 100, 20151120)
	d.cache[key] = wg
	return wg, nil
}
