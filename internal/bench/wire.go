package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
)

// WireRow is one cell of the wire-compression ablation: one algorithm on one
// fabric with compression on or off.
type WireRow struct {
	Fabric      string `json:"fabric"` // "inproc" or "tcp"
	Algo        string `json:"algo"`   // "pr-pull" or "wcc"
	Compression bool   `json:"compression"`

	Seconds      float64 `json:"seconds"`
	TotalBytes   int64   `json:"total_bytes"`
	DataBytes    int64   `json:"data_bytes"`
	ReadReqBytes int64   `json:"read_req_bytes"`

	// CompressRawBytes / CompressWireBytes are the compression layer's own
	// accounting: fixed-width size vs. actual size of eligible payloads.
	CompressRawBytes  int64   `json:"compress_raw_bytes"`
	CompressWireBytes int64   `json:"compress_wire_bytes"`
	CompressionRatio  float64 `json:"compression_ratio"`

	// WireReduction is 1 - TotalBytes/TotalBytes(uncompressed twin), i.e.
	// the fraction of all wire traffic (headers and responses included)
	// that compression removed. Zero for the uncompressed rows.
	WireReduction float64 `json:"wire_reduction"`

	// MaxAbsDiff is the worst per-node result difference versus the
	// uncompressed run of the same (fabric, algo) — compression must be
	// numerically invisible.
	MaxAbsDiff float64 `json:"max_abs_diff_vs_uncompressed"`
}

// WireReport is the JSON artifact (BENCH_wire.json) of the sweep.
type WireReport struct {
	Dataset  string    `json:"dataset"`
	Scale    int       `json:"scale"`
	Machines int       `json:"machines"`
	PRIters  int       `json:"pr_iters"`
	Rows     []WireRow `json:"rows"`
}

// ExpWire measures the wire compression layer: sorted delta-varint encoding
// of read requests, write batches, and ghost merges, against the
// DisableWireCompression ablation, on both fabrics.
//
// PageRank-pull with ghosting disabled is the read-request stress (the
// acceptance workload: every cross-partition neighbor read crosses the wire
// as an 8-byte key that compresses to 1-2 bytes); WCC with ghosting enabled
// exercises the int64 write batches and the ghost-merge allreduce. Results
// must match the uncompressed twin bit-for-bit on WCC (integer min
// reductions commute exactly) and within float tolerance on PageRank.
func ExpWire(ds *Datasets, scale, machines, prIters int, prog Progress) (*Table, *WireReport, error) {
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, nil, err
	}
	rep := &WireReport{Dataset: DSTwitter, Scale: scale, Machines: machines, PRIters: prIters}
	t := &Table{Title: fmt.Sprintf("Wire compression (TWT', %d machines)", machines)}
	t.Header = []string{"fabric", "algo", "compressed", "time", "total bytes", "ratio", "reduction", "max |Δ|"}

	type cellKey struct {
		fabric, algo string
	}
	baseBytes := map[cellKey]int64{}
	baseVals := map[cellKey][]float64{}
	for _, fabric := range []string{"inproc", "tcp"} {
		for _, algo := range []string{"pr-pull", "wcc"} {
			for _, compressed := range []bool{false, true} {
				prog.log("wire: %s %s compression=%v", fabric, algo, compressed)
				cfg := core.DefaultConfig(machines)
				cfg.DisableWireCompression = !compressed
				cfg.ReqBuffers = 2*cfg.Workers*cfg.NumMachines + 4
				cfg.RespBuffers = 2*cfg.Copiers*cfg.NumMachines + 4
				if algo == "pr-pull" {
					// Worst-case read traffic: no ghosts, every remote
					// neighbor value fetched over the wire.
					cfg.GhostThreshold = core.GhostDisabled
				}
				var fab *comm.TCPFabric
				if fabric == "tcp" {
					fab, err = comm.NewTCPFabricOpts(machines,
						machines*(cfg.ReqBuffers+cfg.Workers*machines)+64, cfg.BufferSize, comm.TCPOptions{})
					if err != nil {
						return nil, nil, err
					}
					cfg.Fabric = fab
				}
				vals, met, err := runWireCell(g, cfg, algo, prIters)
				if fab != nil {
					fab.Close()
				}
				if err != nil {
					return nil, nil, err
				}
				key := cellKey{fabric, algo}
				row := WireRow{
					Fabric:            fabric,
					Algo:              algo,
					Compression:       compressed,
					Seconds:           met.Total.Seconds(),
					TotalBytes:        met.Traffic.BytesSent,
					DataBytes:         met.Traffic.DataBytesSent,
					ReadReqBytes:      met.Traffic.ReadReqBytes,
					CompressRawBytes:  met.Traffic.CompressRawBytes,
					CompressWireBytes: met.Traffic.CompressWireBytes,
					CompressionRatio:  met.Traffic.CompressionRatio(),
				}
				if !compressed {
					baseBytes[key] = row.TotalBytes
					baseVals[key] = vals
				} else {
					if b := baseBytes[key]; b > 0 {
						row.WireReduction = 1 - float64(row.TotalBytes)/float64(b)
					}
					for i, v := range vals {
						if d := v - baseVals[key][i]; d > row.MaxAbsDiff {
							row.MaxAbsDiff = d
						} else if -d > row.MaxAbsDiff {
							row.MaxAbsDiff = -d
						}
					}
				}
				rep.Rows = append(rep.Rows, row)
				t.AddRow(fabric, algo, fmt.Sprintf("%v", compressed), fmtSecs(row.Seconds),
					fmtBytes(row.TotalBytes), fmt.Sprintf("%.2f", row.CompressionRatio),
					fmt.Sprintf("%.1f%%", 100*row.WireReduction),
					fmt.Sprintf("%.2e", row.MaxAbsDiff))
			}
		}
	}
	t.Notes = append(t.Notes,
		"pr-pull runs with ghosting disabled (read-request stress); wcc with auto ghosting (write batches + ghost merges)",
		"reduction = fraction of total wire bytes (headers included) removed vs. the DisableWireCompression twin",
		"in-proc frames pass by reference, so the engine gates compression off there (ratio 1.00): those rows check the gate keeps runtime unchanged")
	return t, rep, nil
}

func runWireCell(g *graph.Graph, cfg core.Config, algo string, prIters int) ([]float64, algorithms.Metrics, error) {
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, algorithms.Metrics{}, err
	}
	defer c.Shutdown()
	if err := c.Load(g); err != nil {
		return nil, algorithms.Metrics{}, err
	}
	if algo == "wcc" {
		comps, met, err := algorithms.WCC(c, 100000)
		if err != nil {
			return nil, met, err
		}
		vals := make([]float64, len(comps))
		for i, v := range comps {
			vals[i] = float64(v)
		}
		return vals, met, nil
	}
	return algorithms.PageRankPull(c, prIters, 0.85)
}

// WriteJSON writes the report to path (the BENCH_wire.json artifact).
func (r *WireReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
