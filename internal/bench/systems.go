package bench

import (
	"fmt"
	"time"

	"repro/internal/algorithms"
	"repro/internal/baseline/gas"
	"repro/internal/baseline/pregel"
	"repro/internal/baseline/sa"
	"repro/internal/core"
	"repro/internal/graph"
)

// System identifies one of the four compared systems, using the paper's
// Table 3 labels: SA (standalone single machine), GX (GraphX-like Pregel
// engine), GL (GraphLab-like GAS engine), PGX (this engine).
type System string

// Systems compared in Table 3 / Figure 3.
const (
	SysSA  System = "SA"
	SysGX  System = "GX"
	SysGL  System = "GL"
	SysPGX System = "PGX"
)

// Algo identifies one algorithm of the paper's Table 2 suite.
type Algo string

// Algorithms of Table 2.
const (
	AlgoPRPull   Algo = "PR(pull)"
	AlgoPRPush   Algo = "PR(push)"
	AlgoPRApprox Algo = "PR(approx)"
	AlgoWCC      Algo = "WCC"
	AlgoSSSP     Algo = "SSSP"
	AlgoHopDist  Algo = "HopDist"
	AlgoEV       Algo = "EV"
	AlgoKCore    Algo = "KCore"
)

// AllAlgos lists the Table 3 column order.
var AllAlgos = []Algo{AlgoPRPull, AlgoPRPush, AlgoPRApprox, AlgoWCC, AlgoSSSP, AlgoHopDist, AlgoEV, AlgoKCore}

// PerIteration reports whether Table 3 lists this algorithm per iteration
// ("for Pagerank (exact and approximate) and Eigenvector, we report
// (average) per-iteration execution time").
func (a Algo) PerIteration() bool {
	switch a {
	case AlgoPRPull, AlgoPRPush, AlgoPRApprox, AlgoEV:
		return true
	default:
		return false
	}
}

// Supports reports whether the paper's Table 3 has a number for (system,
// algorithm): data pulling exists only on SA and PGX.D, and the paper has
// no GraphX k-core (Table 2 marks it unavailable; Table 3 reports n/a).
func (s System) Supports(a Algo) bool {
	switch {
	case a == AlgoPRPull:
		return s == SysSA || s == SysPGX
	case a == AlgoKCore && s == SysGX:
		return false
	default:
		return true
	}
}

// CellConfig parameterizes one Table 3 cell run.
type CellConfig struct {
	// Machines is the simulated cluster size (ignored for SA).
	Machines int
	// Workers is worker goroutines per machine (PGX) or threads per
	// machine (GL/GX) or total threads (SA).
	Workers int
	// Copiers is copier goroutines per machine (PGX only).
	Copiers int
	// PRIters is the power-iteration count for exact PageRank and EV.
	PRIters int
	// ApproxThreshold deactivates vertices whose PageRank delta drops
	// below it.
	ApproxThreshold float64
	// MaxIter bounds convergence loops.
	MaxIter int
	// Source is the SSSP/HopDist start vertex.
	Source graph.NodeID
	// MaxK bounds the k-core search (0 = unbounded).
	MaxK int64
}

// DefaultCellConfig returns the harness defaults for p machines.
func DefaultCellConfig(p int) CellConfig {
	return CellConfig{
		Machines:        p,
		Workers:         4,
		Copiers:         2,
		PRIters:         5,
		ApproxThreshold: 1e-7,
		MaxIter:         100000,
		MaxK:            0,
	}
}

// CellResult is one measured Table 3 cell.
type CellResult struct {
	// Seconds is per-iteration or total per Algo.PerIteration.
	Seconds    float64
	Iterations int
}

// RunCell executes (system, algorithm) on g with cfg and returns the
// measured cell. The graph must be weighted for SSSP. Graph loading is not
// part of the measurement, matching the paper ("numbers in Table 3 only
// account for the actual computation time").
func RunCell(sys System, algo Algo, g *graph.Graph, cfg CellConfig) (CellResult, error) {
	if !sys.Supports(algo) {
		return CellResult{}, fmt.Errorf("bench: %s does not support %s", sys, algo)
	}
	switch sys {
	case SysSA:
		return runSA(algo, g, cfg)
	case SysGL:
		return runGL(algo, g, cfg)
	case SysGX:
		return runGX(algo, g, cfg)
	case SysPGX:
		return runPGX(algo, g, cfg)
	default:
		return CellResult{}, fmt.Errorf("bench: unknown system %q", sys)
	}
}

func cell(algo Algo, total time.Duration, iters int) CellResult {
	secs := total.Seconds()
	if algo.PerIteration() && iters > 0 {
		secs /= float64(iters)
	}
	return CellResult{Seconds: secs, Iterations: iters}
}

func runSA(algo Algo, g *graph.Graph, cfg CellConfig) (CellResult, error) {
	th := sa.Threads(cfg.Workers)
	start := time.Now()
	switch algo {
	case AlgoPRPull, AlgoPRPush: // SA always computes pull-form
		sa.PageRank(g, cfg.PRIters, 0.85, th)
		return cell(algo, time.Since(start), cfg.PRIters), nil
	case AlgoPRApprox:
		_, iters := sa.PageRankApprox(g, 0.85, cfg.ApproxThreshold, cfg.MaxIter, th)
		return cell(algo, time.Since(start), iters), nil
	case AlgoWCC:
		_, iters := sa.WCC(g, th)
		return cell(algo, time.Since(start), iters), nil
	case AlgoSSSP:
		_, iters := sa.SSSP(g, cfg.Source, th)
		return cell(algo, time.Since(start), iters), nil
	case AlgoHopDist:
		_, iters := sa.HopDist(g, cfg.Source, th)
		return cell(algo, time.Since(start), iters), nil
	case AlgoEV:
		sa.Eigenvector(g, cfg.PRIters, th)
		return cell(algo, time.Since(start), cfg.PRIters), nil
	case AlgoKCore:
		_, _, iters := sa.KCore(g, th)
		return cell(algo, time.Since(start), iters), nil
	}
	return CellResult{}, fmt.Errorf("bench: unknown algorithm %q", algo)
}

func runGL(algo Algo, g *graph.Graph, cfg CellConfig) (CellResult, error) {
	p, th := cfg.Machines, cfg.Workers
	switch algo {
	case AlgoPRPush:
		_, st, err := gas.PageRank(g, p, th, cfg.PRIters, 0.85, 0)
		return cell(algo, st.Duration, cfg.PRIters), err
	case AlgoPRApprox:
		_, st, err := gas.PageRank(g, p, th, cfg.MaxIter, 0.85, cfg.ApproxThreshold)
		return cell(algo, st.Duration, st.Supersteps), err
	case AlgoWCC:
		_, st, err := gas.WCC(g, p, th, cfg.MaxIter)
		return cell(algo, st.Duration, st.Supersteps), err
	case AlgoSSSP:
		_, st, err := gas.SSSP(g, cfg.Source, p, th, cfg.MaxIter)
		return cell(algo, st.Duration, st.Supersteps), err
	case AlgoHopDist:
		_, st, err := gas.HopDist(g, cfg.Source, p, th, cfg.MaxIter)
		return cell(algo, st.Duration, st.Supersteps), err
	case AlgoEV:
		// The paper implemented EV by hand on GraphLab; the GAS form gathers
		// neighbor sums each round with driver-side L2 normalization.
		_, st, err := gas.Eigenvector(g, p, th, cfg.PRIters)
		return cell(algo, st.Duration, cfg.PRIters), err
	case AlgoKCore:
		_, _, st, err := gas.KCore(g, p, th, cfg.MaxK)
		return cell(algo, st.Duration, st.Supersteps), err
	}
	return CellResult{}, fmt.Errorf("bench: unknown algorithm %q", algo)
}

func runGX(algo Algo, g *graph.Graph, cfg CellConfig) (CellResult, error) {
	p, th := cfg.Machines, cfg.Workers
	switch algo {
	case AlgoPRPush:
		_, st, err := pregel.PageRank(g, p, th, cfg.PRIters, 0.85, 0)
		return cell(algo, st.Duration, cfg.PRIters), err
	case AlgoPRApprox:
		_, st, err := pregel.PageRank(g, p, th, cfg.MaxIter, 0.85, cfg.ApproxThreshold)
		return cell(algo, st.Duration, st.Supersteps), err
	case AlgoWCC:
		_, st, err := pregel.WCC(g, p, th, cfg.MaxIter)
		return cell(algo, st.Duration, st.Supersteps), err
	case AlgoSSSP:
		_, st, err := pregel.SSSP(g, cfg.Source, p, th, cfg.MaxIter)
		return cell(algo, st.Duration, st.Supersteps), err
	case AlgoHopDist:
		_, st, err := pregel.HopDist(g, cfg.Source, p, th, cfg.MaxIter)
		return cell(algo, st.Duration, st.Supersteps), err
	case AlgoEV:
		_, st, err := pregel.Eigenvector(g, p, th, cfg.PRIters)
		return cell(algo, st.Duration, cfg.PRIters), err
	}
	return CellResult{}, fmt.Errorf("bench: unknown algorithm %q", algo)
}

func runPGX(algo Algo, g *graph.Graph, cfg CellConfig) (CellResult, error) {
	ccfg := core.DefaultConfig(cfg.Machines)
	ccfg.Workers = cfg.Workers
	ccfg.Copiers = cfg.Copiers
	c, err := core.NewCluster(ccfg)
	if err != nil {
		return CellResult{}, err
	}
	defer c.Shutdown()
	if err := c.Load(g); err != nil {
		return CellResult{}, err
	}
	var met algorithms.Metrics
	switch algo {
	case AlgoPRPull:
		_, met, err = algorithms.PageRankPull(c, cfg.PRIters, 0.85)
	case AlgoPRPush:
		_, met, err = algorithms.PageRankPush(c, cfg.PRIters, 0.85)
	case AlgoPRApprox:
		_, met, err = algorithms.PageRankApprox(c, 0.85, cfg.ApproxThreshold, cfg.MaxIter)
	case AlgoWCC:
		_, met, err = algorithms.WCC(c, cfg.MaxIter)
	case AlgoSSSP:
		_, met, err = algorithms.SSSP(c, cfg.Source, cfg.MaxIter)
	case AlgoHopDist:
		_, met, err = algorithms.HopDist(c, cfg.Source, cfg.MaxIter)
	case AlgoEV:
		_, met, err = algorithms.Eigenvector(c, cfg.PRIters)
	case AlgoKCore:
		_, _, met, err = algorithms.KCore(c, cfg.MaxK)
	default:
		return CellResult{}, fmt.Errorf("bench: unknown algorithm %q", algo)
	}
	if err != nil {
		return CellResult{}, err
	}
	return cell(algo, met.Total, met.Iterations), nil
}

// PickSource returns the vertex with the highest out-degree — a stable,
// well-connected SSSP/BFS source.
func PickSource(g *graph.Graph) graph.NodeID {
	best := graph.NodeID(0)
	var bestDeg int64 = -1
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.OutDegree(graph.NodeID(u)); d > bestDeg {
			bestDeg = d
			best = graph.NodeID(u)
		}
	}
	return best
}
