package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/obs"
)

// ObsReport is the JSON artifact (BENCH_obs.json) of the observability
// experiment: instrumentation overhead with the registry off vs. on, a full
// JobReport from a PageRank superstep over the TCP fabric, and the flight
// recorder's capture of a fault-injected abort.
type ObsReport struct {
	Dataset  string `json:"dataset"`
	Scale    int    `json:"scale"`
	Machines int    `json:"machines"`
	PRIters  int    `json:"pr_iters"`

	// Overhead section: PageRank-pull over the in-process fabric, best of
	// three, with Config.Obs nil vs. attached.
	OffSeconds  float64 `json:"off_seconds"`
	OnSeconds   float64 `json:"on_seconds"`
	OverheadPct float64 `json:"overhead_pct"`

	// TCP section: the final superstep's JobReport (spans, counters,
	// traffic matrix) and run-level aggregates.
	TCPSeconds        float64        `json:"tcp_seconds"`
	TCPSupersteps     int            `json:"tcp_supersteps"`
	TCPTotalSpans     int            `json:"tcp_total_spans"`
	TrafficTotalBytes int64          `json:"traffic_total_bytes"`
	ReadRTTp99NS      int64          `json:"read_rtt_p99_ns"`
	LastJob           *obs.JobReport `json:"last_job"`

	// Abort section: what the flight recorder captured when a read-request
	// frame was failed by injection.
	AbortCaptured bool   `json:"abort_captured"`
	AbortErr      string `json:"abort_err,omitempty"`
	AbortSpans    int    `json:"abort_spans"`
}

// ExpObs measures the observability subsystem itself: (1) the overhead of
// full instrumentation vs. the nil-registry fast path, (2) what a PageRank
// run over the TCP fabric yields — per-superstep spans, the per-(src,dst)
// traffic matrix, read round-trip tails — and (3) the flight recorder
// capturing a fault-injected abort.
func ExpObs(ds *Datasets, scale, machines, prIters int, prog Progress) (*Table, *ObsReport, error) {
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, nil, err
	}
	rep := &ObsReport{Dataset: DSTwitter, Scale: scale, Machines: machines, PRIters: prIters}
	t := &Table{Title: fmt.Sprintf("Observability (PR-pull on TWT', %d machines)", machines)}
	t.Header = []string{"section", "config", "time", "detail"}

	// --- 1: overhead, in-process fabric, best of three per mode ------------
	runInProc := func(attach bool) (time.Duration, error) {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			cfg := core.DefaultConfig(machines)
			if attach {
				cfg.Obs = obs.NewRegistry()
			}
			c, err := core.NewCluster(cfg)
			if err != nil {
				return 0, err
			}
			if err := c.Load(g); err != nil {
				c.Shutdown()
				return 0, err
			}
			_, met, err := algorithms.PageRankPull(c, prIters, 0.85)
			c.Shutdown()
			if err != nil {
				return 0, err
			}
			if best == 0 || met.Total < best {
				best = met.Total
			}
		}
		return best, nil
	}
	prog.log("obs: overhead baseline (registry off)")
	off, err := runInProc(false)
	if err != nil {
		return nil, nil, err
	}
	prog.log("obs: overhead with registry attached")
	on, err := runInProc(true)
	if err != nil {
		return nil, nil, err
	}
	rep.OffSeconds = off.Seconds()
	rep.OnSeconds = on.Seconds()
	rep.OverheadPct = 100 * (on.Seconds() - off.Seconds()) / off.Seconds()
	t.AddRow("overhead", "registry off", fmtSecs(rep.OffSeconds), "nil fast path")
	t.AddRow("overhead", "registry on", fmtSecs(rep.OnSeconds),
		fmt.Sprintf("%+.1f%%", rep.OverheadPct))

	// --- 2: TCP fabric with full instrumentation ---------------------------
	prog.log("obs: instrumented PageRank over TCP")
	cfg := core.DefaultConfig(machines)
	cfg.GhostThreshold = core.GhostDisabled // every cross-partition read hits the wire
	cfg.ReqBuffers = 2*cfg.Workers*cfg.NumMachines + 4
	cfg.RespBuffers = 2*cfg.Copiers*cfg.NumMachines + 4
	reg := obs.NewRegistry()
	cfg.Obs = reg
	fabric, err := comm.NewTCPFabricOpts(machines,
		machines*(cfg.ReqBuffers+cfg.Workers*machines)+64, cfg.BufferSize, comm.TCPOptions{})
	if err != nil {
		return nil, nil, err
	}
	cfg.Fabric = fabric
	c, err := core.NewCluster(cfg)
	if err != nil {
		fabric.Close()
		return nil, nil, err
	}
	if err := c.Load(g); err != nil {
		c.Shutdown()
		fabric.Close()
		return nil, nil, err
	}
	_, met, err := algorithms.PageRankPull(c, prIters, 0.85)
	if err != nil {
		c.Shutdown()
		fabric.Close()
		return nil, nil, err
	}
	reports := reg.RecentReports()
	rep.TCPSeconds = met.Total.Seconds()
	rep.TCPSupersteps = len(reports)
	for _, r := range reports {
		rep.TCPTotalSpans += len(r.Spans)
		rep.TrafficTotalBytes += r.TotalBytes()
	}
	rep.LastJob = reg.LastReport()
	rtt := reg.LifetimeHistogram(obs.HistReadRTT)
	rep.ReadRTTp99NS = int64(rtt.Quantile(0.99))
	c.Shutdown()
	fabric.Close()
	if rep.LastJob == nil {
		return nil, nil, fmt.Errorf("obs: TCP run produced no job report")
	}
	if rep.TrafficTotalBytes == 0 {
		return nil, nil, fmt.Errorf("obs: traffic matrix stayed zero over TCP")
	}
	t.AddRow("tcp", "instrumented", fmtSecs(rep.TCPSeconds),
		fmt.Sprintf("%d supersteps, %d spans, %s matrix, rtt-p99<=%v",
			rep.TCPSupersteps, rep.TCPTotalSpans, fmtBytes(rep.TrafficTotalBytes),
			time.Duration(rep.ReadRTTp99NS).Round(time.Microsecond)))

	// --- 3: flight recorder under fault injection --------------------------
	prog.log("obs: flight recorder under injected fault")
	fcfg := core.DefaultConfig(machines)
	fcfg.GhostThreshold = core.GhostDisabled
	fcfg.RequestTimeout = 1500 * time.Millisecond
	fcfg.CollectiveTimeout = 1500 * time.Millisecond
	freg := obs.NewRegistry()
	fcfg.Obs = freg
	fcfg.ReqBuffers = 2*fcfg.Workers*fcfg.NumMachines + 4
	fcfg.RespBuffers = 2*fcfg.Copiers*fcfg.NumMachines + 4
	perMachine := fcfg.ReqBuffers + fcfg.RespBuffers + 4*machines + 8 + machines + 2
	inj := comm.NewFaultInjector(
		comm.NewInProcFabric(machines, machines*perMachine+16),
		comm.FaultPlan{Seed: 7, Rules: []comm.FaultRule{{
			Src: comm.AnyMachine, Dst: comm.AnyMachine,
			Type: int(comm.MsgReadReq), Kind: comm.FaultFail, Limit: 1,
		}}})
	fcfg.Fabric = inj
	fc, err := core.NewCluster(fcfg)
	if err != nil {
		inj.Close()
		return nil, nil, err
	}
	if err := fc.Load(g); err != nil {
		fc.Shutdown()
		inj.Close()
		return nil, nil, err
	}
	_, _, runErr := algorithms.PageRankPull(fc, prIters, 0.85)
	dump := freg.LastAbort()
	fc.Shutdown()
	inj.Close()
	if runErr == nil || !errors.Is(runErr, core.ErrJobAborted) {
		return nil, nil, fmt.Errorf("obs: injected fault did not abort the job (err=%v)", runErr)
	}
	if dump == nil {
		return nil, nil, fmt.Errorf("obs: abort produced no flight-recorder dump")
	}
	rep.AbortCaptured = true
	rep.AbortErr = dump.Err
	rep.AbortSpans = len(dump.Spans)
	t.AddRow("abort", "FaultFail(read_req)", "-",
		fmt.Sprintf("flight recorder: %d spans, err=%q", rep.AbortSpans, truncate(dump.Err, 48)))

	t.Notes = append(t.Notes,
		"overhead is full instrumentation (spans+histograms+matrix) vs. the nil-registry fast path",
		"tcp section has ghosting disabled so the traffic matrix reflects the raw pull pattern",
		"the abort dump is what a post-mortem sees after ErrJobAborted")
	return t, rep, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// WriteJSON writes the report to path (the BENCH_obs.json artifact).
func (r *ObsReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
