package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/algorithms"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
)

// CommFastPathRow is one cell of the communication fast-path ablation:
// PageRank-pull over the TCP fabric with one combination of send mode and
// read combining.
type CommFastPathRow struct {
	Sends         string  `json:"sends"` // "async" or "sync"
	Combining     bool    `json:"combining"`
	Seconds       float64 `json:"seconds"`
	ReadReqBytes  int64   `json:"read_req_bytes"`
	ReadRespBytes int64   `json:"read_resp_bytes"`
	TotalBytes    int64   `json:"total_bytes"`
	DedupHits     int64   `json:"dedup_hits"`
	DedupMisses   int64   `json:"dedup_misses"`
	DedupHitRate  float64 `json:"dedup_hit_rate"`
	MaxAbsDiff    float64 `json:"max_abs_diff_vs_baseline"`
}

// CommFastPathReport is the JSON artifact (BENCH_comm.json) of the sweep.
type CommFastPathReport struct {
	Dataset  string            `json:"dataset"`
	Scale    int               `json:"scale"`
	Machines int               `json:"machines"`
	PRIters  int               `json:"pr_iters"`
	Rows     []CommFastPathRow `json:"rows"`
}

// ExpCommFastPath measures the communication fast path: duplicate remote-
// read elimination and async vectored TCP sends, each switchable, on a
// Zipf-skewed RMAT graph with ghosting disabled so every cross-partition
// neighbor read crosses the wire. The baseline cell (sync sends, no
// combining) is the pre-fast-path engine; results of every cell are checked
// against it numerically.
func ExpCommFastPath(ds *Datasets, scale, machines, prIters int, prog Progress) (*Table, *CommFastPathReport, error) {
	g, err := ds.Get(DSTwitter, scale)
	if err != nil {
		return nil, nil, err
	}
	rep := &CommFastPathReport{Dataset: DSTwitter, Scale: scale, Machines: machines, PRIters: prIters}
	t := &Table{Title: fmt.Sprintf("Communication fast path (PR-pull on TWT', %d machines, TCP)", machines)}
	t.Header = []string{"sends", "combining", "time", "READ_REQ", "READ_RESP", "hit rate", "max |Δ| vs base"}

	var baseline []float64
	for _, sends := range []string{"sync", "async"} {
		for _, combining := range []bool{false, true} {
			prog.log("comm: %s sends, combining %v", sends, combining)
			cfg := core.DefaultConfig(machines)
			cfg.GhostThreshold = core.GhostDisabled
			cfg.DisableReadCombining = !combining
			cfg.ReqBuffers = 2*cfg.Workers*cfg.NumMachines + 4
			cfg.RespBuffers = 2*cfg.Copiers*cfg.NumMachines + 4
			opts := comm.TCPOptions{}
			if sends == "sync" {
				opts.SendQueueDepth = -1
			}
			fabric, err := comm.NewTCPFabricOpts(machines,
				machines*(cfg.ReqBuffers+cfg.Workers*machines)+64, cfg.BufferSize, opts)
			if err != nil {
				return nil, nil, err
			}
			cfg.Fabric = fabric
			ranks, met, err := runCommCell(g, cfg, prIters)
			fabric.Close()
			if err != nil {
				return nil, nil, err
			}
			maxDiff := 0.0
			if baseline == nil {
				baseline = ranks
			} else {
				for i := range ranks {
					if d := ranks[i] - baseline[i]; d > maxDiff {
						maxDiff = d
					} else if -d > maxDiff {
						maxDiff = -d
					}
				}
			}
			row := CommFastPathRow{
				Sends:         sends,
				Combining:     combining,
				Seconds:       met.Total.Seconds(),
				ReadReqBytes:  met.Traffic.ReadReqBytes,
				ReadRespBytes: met.Traffic.ReadRespBytes,
				TotalBytes:    met.Traffic.BytesSent,
				DedupHits:     met.Traffic.DedupHits,
				DedupMisses:   met.Traffic.DedupMisses,
				DedupHitRate:  met.Traffic.DedupHitRate(),
				MaxAbsDiff:    maxDiff,
			}
			rep.Rows = append(rep.Rows, row)
			t.AddRow(sends, fmt.Sprintf("%v", combining), fmtSecs(row.Seconds),
				fmtBytes(row.ReadReqBytes), fmtBytes(row.ReadRespBytes),
				fmt.Sprintf("%.1f%%", 100*row.DedupHitRate),
				fmt.Sprintf("%.2e", maxDiff))
		}
	}
	t.Notes = append(t.Notes,
		"ghosting disabled: every cross-partition read goes over the wire (worst case for pull)",
		"sync+nocombine is the pre-fast-path engine; ranks of all cells must agree with it")
	return t, rep, nil
}

func runCommCell(g *graph.Graph, cfg core.Config, prIters int) ([]float64, algorithms.Metrics, error) {
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, algorithms.Metrics{}, err
	}
	defer c.Shutdown()
	if err := c.Load(g); err != nil {
		return nil, algorithms.Metrics{}, err
	}
	return algorithms.PageRankPull(c, prIters, 0.85)
}

// WriteJSON writes the report to path (the BENCH_comm.json artifact).
func (r *CommFastPathReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
