package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Table4Opts parameterizes the loading-time experiment (paper Table 4):
// reading a graph from its on-disk format and building the distributed data
// structures. The text path stands in for GraphX/GraphLab ("load from a
// text file"), the binary path for PGX.D ("loads from a binary file
// format"); both then pay cluster-wide partitioning and ghosting.
type Table4Opts struct {
	Scale    int
	Machines int
	Progress Progress
}

// DefaultTable4Opts returns laptop-scale defaults.
func DefaultTable4Opts() Table4Opts {
	return Table4Opts{Scale: DefaultScale, Machines: 4}
}

// ExpTable4 measures text-format and binary-format loading (parse +
// distributed build) for each dataset.
func ExpTable4(ds *Datasets, opts Table4Opts) (*Table, error) {
	t := &Table{Title: "Table 4: graph sizes and loading time per format"}
	t.Header = []string{"graph", "nodes", "edges", "text load (GX/GL-style)", "binary load (PGX-style)"}
	for _, name := range []string{DSLive, DSWiki, DSTwitter, DSWeb} {
		opts.Progress.log("table4: %s", name)
		g, err := ds.Get(name, opts.Scale)
		if err != nil {
			return nil, err
		}
		// Serialize both formats up front (excluded from timing, like the
		// paper's pre-existing files on disk).
		var text, bin bytes.Buffer
		if err := graph.WriteEdgeList(&text, g); err != nil {
			return nil, err
		}
		if err := graph.WriteBinary(&bin, g); err != nil {
			return nil, err
		}

		textSecs, err := timeLoad(text.Bytes(), graph.ReadEdgeList, opts.Machines)
		if err != nil {
			return nil, err
		}
		binSecs, err := timeLoad(bin.Bytes(), graph.ReadBinary, opts.Machines)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, fmt.Sprint(g.NumNodes()), fmt.Sprint(g.NumEdges()),
			fmtSecs(textSecs), fmtSecs(binSecs))
	}
	t.Notes = append(t.Notes,
		"loading = parse file bytes + partition + ghost-select + build per-machine CSR stores",
		"text parsing dominates, reproducing Table 4's format gap")
	return t, nil
}

func timeLoad(data []byte, parse func(r io.Reader) (*graph.Graph, error), machines int) (float64, error) {
	start := time.Now()
	g, err := parse(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	c, err := core.NewCluster(core.DefaultConfig(machines))
	if err != nil {
		return 0, err
	}
	defer c.Shutdown()
	if err := c.Load(g); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}
