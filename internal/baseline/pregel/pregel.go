// Package pregel implements the paper's "GX" comparator: a Pregel-style
// bulk-synchronous message-passing engine in the spirit of GraphX's Pregel
// operator (Gonzalez et al., OSDI'14). Vertices compute on received
// messages and emit messages along out-edges; everything is materialized —
// message records are built per edge, marshalled to bytes per destination
// machine, demarshalled, merged through a hash map, and regrouped per vertex
// every superstep. This allocation- and hashing-heavy dataflow is the
// overhead class that makes GraphX the slowest system in the paper's
// Table 3; no deliberate pessimization is added beyond the model itself.
package pregel

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Program is one Pregel vertex program over scalar float64 state and
// messages (integers are bit-encoded, as in the gas package).
type Program interface {
	// Compute runs on every vertex that is active or received a message.
	// msg is the combined incoming message (hasMsg reports presence).
	Compute(ctx *Ctx, msg float64, hasMsg bool)
	// Combine merges two messages addressed to the same vertex, the analogue
	// of GraphX's mergeMsg.
	Combine(a, b float64) float64
}

// Ctx is the per-vertex compute context.
type Ctx struct {
	m   *machine
	e   *Engine
	vid graph.NodeID
	off uint32
	// sends accumulates outgoing message records for this machine-thread.
	sink *msgSink
}

// Vertex returns the vertex id being computed.
func (c *Ctx) Vertex() graph.NodeID { return c.vid }

// Data returns the vertex's current value.
func (c *Ctx) Data() float64 { return math.Float64frombits(c.m.data[c.off]) }

// SetData updates the vertex's value.
func (c *Ctx) SetData(v float64) { c.m.data[c.off] = math.Float64bits(v) }

// OutDegree returns the vertex's out-degree.
func (c *Ctx) OutDegree() int64 { return c.e.g.OutDegree(c.vid) }

// Superstep returns the global superstep number, persistent across Run
// calls (driver-stepped algorithms rely on it to identify the seed round).
func (c *Ctx) Superstep() int { return c.e.step }

// SendToOutNbrs sends msg along every out-edge. fn, when non-nil, maps the
// edge weight to the message (for SSSP-style relaxation); otherwise msg is
// sent as-is.
func (c *Ctx) SendToOutNbrs(msg float64, fn func(w float64) float64) {
	nbrs := c.e.g.Out.Neighbors(c.vid)
	ws := c.e.g.Out.EdgeWeights(c.vid)
	for i, v := range nbrs {
		out := msg
		if fn != nil {
			w := 0.0
			if ws != nil {
				w = ws[i]
			}
			out = fn(w)
		}
		c.sink.add(c.e, v, out)
	}
}

// SendToInNbrs sends msg along every in-edge (for undirected algorithms).
func (c *Ctx) SendToInNbrs(msg float64) {
	for _, v := range c.e.g.In.Neighbors(c.vid) {
		c.sink.add(c.e, v, msg)
	}
}

// SendTo sends msg to an arbitrary vertex.
func (c *Ctx) SendTo(v graph.NodeID, msg float64) { c.sink.add(c.e, v, msg) }

// msgSink buffers outgoing messages per destination machine as raw records.
type msgSink struct {
	prog    Program
	perDest [][]byte
}

func (s *msgSink) add(e *Engine, v graph.NodeID, msg float64) {
	d := e.layout.Owner(v)
	var rec [12]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(v))
	binary.LittleEndian.PutUint64(rec[4:12], math.Float64bits(msg))
	s.perDest[d] = append(s.perDest[d], rec[:]...)
}

// Stats reports one Run.
type Stats struct {
	Supersteps int
	Duration   time.Duration
	BytesSent  int64
	Messages   int64
}

// Engine is a booted Pregel cluster over one graph.
type Engine struct {
	p       int
	threads int
	layout  partition.Layout
	g       *graph.Graph
	ms      []*machine
	// step is the global superstep counter, persistent across Run calls so
	// driver-stepped programs (exact PageRank) can tell the seed round from
	// compute rounds.
	step int
}

type machine struct {
	id     int
	lo, hi graph.NodeID
	n      int
	data   []uint64
	active []bool
	// inbox: combined message per local vertex for the next superstep,
	// built by merging records through a hash map (the GraphX shuffle).
	inboxVal []float64
	inboxHas []bool
	outbox   [][][]byte // per source thread, per destination machine
}

// New partitions g over p machines, threads compute goroutines each.
func New(g *graph.Graph, p, threads int) (*Engine, error) {
	if p < 1 || threads < 1 {
		return nil, fmt.Errorf("pregel: p=%d threads=%d must be >= 1", p, threads)
	}
	layout, err := partition.Compute(g, p, partition.VertexBalanced)
	if err != nil {
		return nil, err
	}
	e := &Engine{p: p, threads: threads, layout: layout, g: g, ms: make([]*machine, p)}
	for i := 0; i < p; i++ {
		lo, hi := layout.Range(i)
		n := int(hi - lo)
		e.ms[i] = &machine{
			id: i, lo: lo, hi: hi, n: n,
			data:     make([]uint64, n),
			active:   make([]bool, n),
			inboxVal: make([]float64, n),
			inboxHas: make([]bool, n),
		}
	}
	return e, nil
}

// SetData initializes vertex values from fn.
func (e *Engine) SetData(fn func(v graph.NodeID) float64) {
	for _, m := range e.ms {
		for off := 0; off < m.n; off++ {
			m.data[off] = math.Float64bits(fn(m.lo + graph.NodeID(off)))
		}
	}
}

// ActivateAll marks every vertex for the first superstep.
func (e *Engine) ActivateAll() {
	for _, m := range e.ms {
		for i := range m.active {
			m.active[i] = true
		}
	}
}

// Activate marks one vertex for the first superstep.
func (e *Engine) Activate(v graph.NodeID) {
	o := e.layout.Owner(v)
	e.ms[o].active[v-e.ms[o].lo] = true
}

// Data gathers the full vertex-value array.
func (e *Engine) Data() []float64 {
	out := make([]float64, e.g.NumNodes())
	for _, m := range e.ms {
		for off := 0; off < m.n; off++ {
			out[int(m.lo)+off] = math.Float64frombits(m.data[off])
		}
	}
	return out
}

func (e *Engine) parallel(fn func(m *machine)) {
	var wg sync.WaitGroup
	for _, m := range e.ms {
		wg.Add(1)
		go func(m *machine) {
			defer wg.Done()
			fn(m)
		}(m)
	}
	wg.Wait()
}

// Run executes supersteps until no vertex computes or maxSteps is reached.
func (e *Engine) Run(prog Program, maxSteps int) Stats {
	var st Stats
	var bytesSent, messages atomic.Int64
	start := time.Now()
	for step := 0; step < maxSteps; step++ {
		var computed atomic.Int64
		// Compute phase: vertices that are active (step 0 seeds) or have a
		// message run Compute, emitting marshalled message records.
		e.parallel(func(m *machine) {
			threads := e.threads
			if threads > m.n {
				threads = m.n
			}
			if threads < 1 {
				threads = 1
			}
			m.outbox = make([][][]byte, threads)
			var wg sync.WaitGroup
			for t := 0; t < threads; t++ {
				wg.Add(1)
				go func(t int) {
					defer wg.Done()
					sink := &msgSink{prog: prog, perDest: make([][]byte, e.p)}
					ctx := &Ctx{m: m, e: e, sink: sink}
					lo := t * m.n / threads
					hi := (t + 1) * m.n / threads
					local := int64(0)
					for off := lo; off < hi; off++ {
						if !m.active[off] && !m.inboxHas[off] {
							continue
						}
						ctx.off = uint32(off)
						ctx.vid = m.lo + graph.NodeID(off)
						prog.Compute(ctx, m.inboxVal[off], m.inboxHas[off])
						local++
					}
					m.outbox[t] = sink.perDest
					computed.Add(local)
				}(t)
			}
			wg.Wait()
			for i := range m.active {
				m.active[i] = false
				m.inboxHas[i] = false
				m.inboxVal[i] = 0
			}
		})
		if computed.Load() == 0 {
			break
		}
		st.Supersteps++
		e.step++
		// Shuffle phase: demarshal every record addressed to this machine,
		// merging through a per-machine hash map first (GraphX's reduce-by-
		// key), then scatter into the per-vertex inbox.
		e.parallel(func(m *machine) {
			merged := make(map[uint32]float64)
			for _, src := range e.ms {
				for _, perDest := range src.outbox {
					if perDest == nil {
						continue
					}
					buf := perDest[m.id]
					bytesSent.Add(int64(len(buf)))
					for i := 0; i+12 <= len(buf); i += 12 {
						vid := binary.LittleEndian.Uint32(buf[i : i+4])
						val := math.Float64frombits(binary.LittleEndian.Uint64(buf[i+4 : i+12]))
						messages.Add(1)
						if old, ok := merged[vid]; ok {
							merged[vid] = prog.Combine(old, val)
						} else {
							merged[vid] = val
						}
					}
				}
			}
			for vid, val := range merged {
				off := graph.NodeID(vid) - m.lo
				m.inboxVal[off] = val
				m.inboxHas[off] = true
			}
		})
	}
	st.Duration = time.Since(start)
	st.BytesSent = bytesSent.Load()
	st.Messages = messages.Load()
	return st
}
