package pregel

import (
	"math"
	"time"

	"repro/internal/graph"
)

// Vertex programs for the algorithms the paper ran on GraphX (Table 2's GX
// column) plus the ones it implemented by hand on top of the system.

// prExact is push-based exact PageRank, one superstep per power iteration:
// every vertex sends rank/outDeg along its out-edges each round (the driver
// re-activates all vertices, as GraphX's join-based PageRank touches every
// triplet each iteration); a vertex's next rank is base + d*(combined sum), with
// an absent message meaning zero in-flow.
type prExact struct {
	damping, base float64
}

func (p *prExact) Combine(a, b float64) float64 { return a + b }

func (p *prExact) Compute(ctx *Ctx, msg float64, hasMsg bool) {
	if ctx.Superstep() == 0 {
		// Seed round: broadcast the initial rank's contribution unchanged.
		if d := ctx.OutDegree(); d > 0 {
			ctx.SendToOutNbrs(ctx.Data()/float64(d), nil)
		}
		return
	}
	sum := 0.0
	if hasMsg {
		sum = msg
	}
	rank := p.base + p.damping*sum
	ctx.SetData(rank)
	if d := ctx.OutDegree(); d > 0 {
		ctx.SendToOutNbrs(rank/float64(d), nil)
	}
}

// prDelta is the delta-propagation approximate PageRank (the paper's
// approximate variant): messages carry damped rank deltas; vertices whose
// received delta falls below tolerance stop propagating.
type prDelta struct {
	damping, base, tolerance float64
}

func (p *prDelta) Combine(a, b float64) float64 { return a + b }

func (p *prDelta) Compute(ctx *Ctx, msg float64, hasMsg bool) {
	if !hasMsg {
		// Superstep 0 seed: rank starts at base; propagate its delta.
		if d := ctx.OutDegree(); d > 0 {
			ctx.SendToOutNbrs(p.damping*p.base/float64(d), nil)
		}
		return
	}
	ctx.SetData(ctx.Data() + msg)
	if math.Abs(msg) >= p.tolerance {
		if d := ctx.OutDegree(); d > 0 {
			ctx.SendToOutNbrs(p.damping*msg/float64(d), nil)
		}
	}
}

// PageRank runs push PageRank: tolerance 0 runs iters exact power
// iterations; tolerance > 0 runs delta propagation to quiescence (capped at
// iters supersteps).
func PageRank(g *graph.Graph, p, threads, iters int, damping, tolerance float64) ([]float64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	n := float64(g.NumNodes())
	base := (1 - damping) / n
	if tolerance <= 0 {
		e.SetData(func(v graph.NodeID) float64 { return 1 / n })
		var agg Stats
		start := time.Now()
		prog := &prExact{damping: damping, base: base}
		// Round 0 seeds the initial contributions; rounds 1..iters are the
		// power iterations.
		for it := 0; it <= iters; it++ {
			e.ActivateAll()
			st := e.Run(prog, 1)
			agg.Supersteps += st.Supersteps
			agg.BytesSent += st.BytesSent
			agg.Messages += st.Messages
		}
		agg.Supersteps-- // the seed round is not a power iteration
		agg.Duration = time.Since(start)
		return e.Data(), agg, nil
	}
	e.SetData(func(v graph.NodeID) float64 { return base })
	e.ActivateAll()
	st := e.Run(&prDelta{damping: damping, base: base, tolerance: tolerance}, iters)
	return e.Data(), st, nil
}

// wccProgram propagates min labels along both orientations.
type wccProgram struct{}

func (wccProgram) Combine(a, b float64) float64 { return math.Min(a, b) }

func (wccProgram) Compute(ctx *Ctx, msg float64, hasMsg bool) {
	cur := ctx.Data()
	if hasMsg {
		if msg >= cur {
			return
		}
		cur = msg
		ctx.SetData(cur)
	}
	ctx.SendToOutNbrs(cur, nil)
	ctx.SendToInNbrs(cur)
}

// WCC runs weakly connected components; labels are min global ids.
func WCC(g *graph.Graph, p, threads, maxSteps int) ([]int64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	e.SetData(func(v graph.NodeID) float64 { return float64(v) })
	e.ActivateAll()
	st := e.Run(wccProgram{}, maxSteps)
	data := e.Data()
	out := make([]int64, len(data))
	for i, v := range data {
		out[i] = int64(v)
	}
	return out, st, nil
}

// ssspProgram relaxes distances along out-edges.
type ssspProgram struct{}

func (ssspProgram) Combine(a, b float64) float64 { return math.Min(a, b) }

func (ssspProgram) Compute(ctx *Ctx, msg float64, hasMsg bool) {
	cur := ctx.Data()
	if hasMsg {
		if msg >= cur {
			return
		}
		cur = msg
		ctx.SetData(cur)
	}
	if math.IsInf(cur, 1) {
		return
	}
	d := cur
	ctx.SendToOutNbrs(0, func(w float64) float64 { return d + w })
}

// SSSP runs Bellman-Ford from source on the Pregel engine.
func SSSP(g *graph.Graph, source graph.NodeID, p, threads, maxSteps int) ([]float64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	e.SetData(func(v graph.NodeID) float64 {
		if v == source {
			return 0
		}
		return math.Inf(1)
	})
	e.Activate(source)
	st := e.Run(ssspProgram{}, maxSteps)
	return e.Data(), st, nil
}

// hopProgram is SSSP with unit weights.
type hopProgram struct{}

func (hopProgram) Combine(a, b float64) float64 { return math.Min(a, b) }

func (hopProgram) Compute(ctx *Ctx, msg float64, hasMsg bool) {
	cur := ctx.Data()
	if hasMsg {
		if msg >= cur {
			return
		}
		cur = msg
		ctx.SetData(cur)
	}
	if math.IsInf(cur, 1) {
		return
	}
	ctx.SendToOutNbrs(cur+1, nil)
}

// HopDist runs BFS hop distance from root on the Pregel engine.
func HopDist(g *graph.Graph, root graph.NodeID, p, threads, maxSteps int) ([]int64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	e.SetData(func(v graph.NodeID) float64 {
		if v == root {
			return 0
		}
		return math.Inf(1)
	})
	e.Activate(root)
	st := e.Run(hopProgram{}, maxSteps)
	data := e.Data()
	out := make([]int64, len(data))
	for i, v := range data {
		if math.IsInf(v, 1) {
			out[i] = math.MaxInt64
		} else {
			out[i] = int64(v)
		}
	}
	return out, st, nil
}

// evProgram is eigenvector centrality: each step sends the current value
// along out-edges; the combined incoming sum is the unnormalized next value.
// Normalization is driven by the caller between supersteps (GraphX-style
// drivers interleave map phases the same way).
type evProgram struct{}

func (evProgram) Combine(a, b float64) float64 { return a + b }

func (p evProgram) Compute(ctx *Ctx, msg float64, hasMsg bool) {
	ctx.SendToOutNbrs(ctx.Data(), nil)
}

// Eigenvector runs iters normalized power iterations on the Pregel engine.
func Eigenvector(g *graph.Graph, p, threads, iters int) ([]float64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	n := float64(g.NumNodes())
	e.SetData(func(v graph.NodeID) float64 { return 1 / math.Sqrt(n) })
	var agg Stats
	start := time.Now()
	// Each driver round: one superstep of send+combine, then normalize over
	// the gathered data (driver-side, as GraphX programs do with a map).
	for it := 0; it < iters; it++ {
		e.ActivateAll()
		st := e.Run(evProgram{}, 1)
		agg.Supersteps += st.Supersteps
		agg.BytesSent += st.BytesSent
		agg.Messages += st.Messages
		// Apply pending messages by running one more "receive" step with no
		// sends: emulate by reading inboxes directly via a receive program.
		e.applyPendingEV()
	}
	agg.Duration = time.Since(start)
	return e.Data(), agg, nil
}

// applyPendingEV folds pending inbox values into vertex data and L2-
// normalizes across the cluster — the driver-side tail of each EV round.
func (e *Engine) applyPendingEV() {
	var sumSq float64
	for _, m := range e.ms {
		for off := 0; off < m.n; off++ {
			if m.inboxHas[off] {
				v := m.inboxVal[off]
				m.data[off] = math.Float64bits(v)
				m.inboxHas[off] = false
				m.inboxVal[off] = 0
			} else {
				m.data[off] = math.Float64bits(0)
			}
			v := math.Float64frombits(m.data[off])
			sumSq += v * v
		}
	}
	if sumSq <= 0 {
		return
	}
	inv := 1 / math.Sqrt(sumSq)
	for _, m := range e.ms {
		for off := 0; off < m.n; off++ {
			m.data[off] = math.Float64bits(math.Float64frombits(m.data[off]) * inv)
		}
	}
}
