package pregel

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/baseline/sa"
	"repro/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(8, 8, graph.TwitterLike(), 61)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRejectsBadArgs(t *testing.T) {
	g := testGraph(t)
	if _, err := New(g, 0, 1); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := New(g, 1, 0); err == nil {
		t.Error("threads=0 accepted")
	}
}

func TestPageRankExactMatchesSA(t *testing.T) {
	g := testGraph(t)
	want := sa.PageRank(g, 8, 0.85, 1)
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			got, st, err := PageRank(g, p, 2, 8, 0.85, 0)
			if err != nil {
				t.Fatal(err)
			}
			if st.Supersteps != 8 {
				t.Errorf("supersteps = %d", st.Supersteps)
			}
			for u := range want {
				if d := math.Abs(got[u] - want[u]); d > 1e-10 {
					t.Fatalf("node %d: %g vs %g", u, got[u], want[u])
				}
			}
			if st.Messages == 0 {
				t.Error("no messages recorded")
			}
		})
	}
}

func TestPageRankApproxConverges(t *testing.T) {
	g := testGraph(t)
	exact := sa.PageRank(g, 60, 0.85, 1)
	got, st, err := PageRank(g, 3, 2, 1000, 0.85, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Supersteps == 0 || st.Supersteps >= 1000 {
		t.Errorf("supersteps = %d", st.Supersteps)
	}
	for u := range exact {
		if d := math.Abs(got[u] - exact[u]); d > 1e-4 {
			t.Fatalf("node %d: approx %g vs exact %g", u, got[u], exact[u])
		}
	}
}

func TestWCCMatchesSA(t *testing.T) {
	g := testGraph(t)
	want, _ := sa.WCC(g, 1)
	got, _, err := WCC(g, 3, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: %d vs %d", u, got[u], want[u])
		}
	}
}

func TestSSSPMatchesSA(t *testing.T) {
	g := testGraph(t).WithUniformWeights(1, 5, 4)
	want, _ := sa.SSSP(g, 0, 1)
	got, _, err := SSSP(g, 0, 3, 2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if math.IsInf(want[u], 1) != math.IsInf(got[u], 1) {
			t.Fatalf("node %d reachability mismatch", u)
		}
		if !math.IsInf(want[u], 1) && math.Abs(got[u]-want[u]) > 1e-9 {
			t.Fatalf("node %d: %g vs %g", u, got[u], want[u])
		}
	}
}

func TestHopDistMatchesSA(t *testing.T) {
	g := testGraph(t)
	want, _ := sa.HopDist(g, 5, 1)
	got, st, err := HopDist(g, 5, 2, 2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: %d vs %d", u, got[u], want[u])
		}
	}
	if st.Supersteps == 0 {
		t.Error("0 supersteps")
	}
}

func TestEigenvectorMatchesSA(t *testing.T) {
	g := testGraph(t)
	want := sa.Eigenvector(g, 6, 1)
	got, _, err := Eigenvector(g, 3, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if d := math.Abs(got[u] - want[u]); d > 1e-9 {
			t.Fatalf("node %d: %g vs %g", u, got[u], want[u])
		}
	}
}

func TestMessageCountsAccumulate(t *testing.T) {
	g := testGraph(t)
	_, st, err := PageRank(g, 2, 2, 3, 0.85, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Exact PR sends one message per out-edge of every non-dangling vertex
	// per superstep; cross-machine plus local all count.
	if st.Messages < g.NumEdges() {
		t.Errorf("messages = %d, want >= %d", st.Messages, g.NumEdges())
	}
}
