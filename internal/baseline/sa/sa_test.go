package sa

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(9, 8, graph.TwitterLike(), 777)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// seqPageRank is a deliberately simple sequential reference.
func seqPageRank(g *graph.Graph, iters int, damping float64) []float64 {
	n := g.NumNodes()
	pr := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		nxt := make([]float64, n)
		for u := 0; u < n; u++ {
			var sum float64
			for _, t := range g.In.Neighbors(graph.NodeID(u)) {
				if d := g.OutDegree(t); d > 0 {
					sum += pr[t] / float64(d)
				}
			}
			nxt[u] = base + damping*sum
		}
		pr = nxt
	}
	return pr
}

func TestPageRankMatchesSequentialAcrossThreads(t *testing.T) {
	g := testGraph(t)
	want := seqPageRank(g, 6, 0.85)
	for _, th := range []Threads{1, 2, 8, 0} {
		got := PageRank(g, 6, 0.85, th)
		for u := range want {
			if d := math.Abs(got[u] - want[u]); d > 1e-12 {
				t.Fatalf("threads=%d node %d: %g vs %g", th, u, got[u], want[u])
			}
		}
	}
}

func TestApproxConvergesToExact(t *testing.T) {
	g := testGraph(t)
	exact := seqPageRank(g, 60, 0.85)
	approx, iters := PageRankApprox(g, 0.85, 1e-8, 200, 4)
	if iters == 0 || iters == 200 {
		t.Errorf("approx iterations = %d", iters)
	}
	for u := range exact {
		if d := math.Abs(approx[u] - exact[u]); d > 1e-5 {
			t.Fatalf("node %d: approx %g vs exact %g", u, approx[u], exact[u])
		}
	}
}

// seqWCC via union-find.
func seqWCC(g *graph.Graph) []int64 {
	n := g.NumNodes()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
			ru, rv := find(u), find(int(v))
			if ru != rv {
				if ru < rv {
					parent[rv] = ru
				} else {
					parent[ru] = rv
				}
			}
		}
	}
	// Min-id labels need a second normalization pass: the union order above
	// keeps the smaller root, so find(u) is already the component min.
	out := make([]int64, n)
	for u := range out {
		out[u] = int64(find(u))
	}
	return out
}

func TestWCCMatchesUnionFind(t *testing.T) {
	g := testGraph(t)
	want := seqWCC(g)
	for _, th := range []Threads{1, 4} {
		got, iters := WCC(g, th)
		if iters == 0 {
			t.Fatal("0 iterations")
		}
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("threads=%d node %d: %d vs %d", th, u, got[u], want[u])
			}
		}
	}
}

// seqSSSP via Bellman-Ford.
func seqSSSP(g *graph.Graph, src graph.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			nbrs := g.Out.Neighbors(graph.NodeID(u))
			ws := g.Out.EdgeWeights(graph.NodeID(u))
			for i, v := range nbrs {
				if nd := dist[u] + ws[i]; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestSSSPMatchesSequential(t *testing.T) {
	g := testGraph(t).WithUniformWeights(0.5, 3, 3)
	want := seqSSSP(g, 0)
	got, iters := SSSP(g, 0, 4)
	if iters == 0 {
		t.Fatal("0 iterations")
	}
	for u := range want {
		if math.IsInf(want[u], 1) {
			if !math.IsInf(got[u], 1) {
				t.Fatalf("node %d reachable in parallel but not sequential", u)
			}
			continue
		}
		if d := math.Abs(got[u] - want[u]); d > 1e-9 {
			t.Fatalf("node %d: %g vs %g", u, got[u], want[u])
		}
	}
}

func TestHopDistProperties(t *testing.T) {
	g := testGraph(t)
	dist, _ := HopDist(g, 0, 4)
	if dist[0] != 0 {
		t.Fatal("root distance not 0")
	}
	// Triangle inequality along every edge: dist[v] <= dist[u]+1.
	for u := 0; u < g.NumNodes(); u++ {
		if dist[u] == math.MaxInt64 {
			continue
		}
		for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
			if dist[v] > dist[u]+1 {
				t.Fatalf("edge %d->%d: dist %d -> %d", u, v, dist[u], dist[v])
			}
		}
	}
	// Every finite-distance node except the root has an in-neighbor one
	// hop closer.
	for u := 1; u < g.NumNodes(); u++ {
		if dist[u] == math.MaxInt64 || dist[u] == 0 {
			continue
		}
		ok := false
		for _, v := range g.In.Neighbors(graph.NodeID(u)) {
			if dist[v] == dist[u]-1 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("node %d at distance %d has no predecessor", u, dist[u])
		}
	}
}

func TestEigenvectorNormalized(t *testing.T) {
	g := testGraph(t)
	ev := Eigenvector(g, 10, 4)
	var norm float64
	for _, v := range ev {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("||ev||² = %g", norm)
	}
	// Deterministic across thread counts.
	ev1 := Eigenvector(g, 10, 1)
	for u := range ev {
		if math.Abs(ev[u]-ev1[u]) > 1e-12 {
			t.Fatalf("node %d differs across thread counts", u)
		}
	}
}

func TestKCoreInvariant(t *testing.T) {
	g := testGraph(t)
	best, coreNum, iters := KCore(g, 4)
	if iters == 0 {
		t.Fatal("0 iterations")
	}
	if best <= 0 {
		t.Fatalf("best = %d", best)
	}
	// Invariant: within the subgraph of nodes with coreNum >= k, every such
	// node has >= k neighbors (undirected multigraph view). Check k = best.
	inCore := func(u int) bool { return coreNum[u] >= best }
	for u := 0; u < g.NumNodes(); u++ {
		if !inCore(u) {
			continue
		}
		cnt := int64(0)
		for _, v := range g.Out.Neighbors(graph.NodeID(u)) {
			if inCore(int(v)) {
				cnt++
			}
		}
		for _, v := range g.In.Neighbors(graph.NodeID(u)) {
			if inCore(int(v)) {
				cnt++
			}
		}
		if cnt < best {
			t.Fatalf("node %d in %d-core has only %d core neighbors", u, best, cnt)
		}
	}
	// Max core number must appear.
	found := false
	for _, cn := range coreNum {
		if cn == best {
			found = true
		}
		if cn > best {
			t.Fatalf("core number %d exceeds best %d", cn, best)
		}
	}
	if !found {
		t.Error("no node carries the max core number")
	}
}

func TestEdgeIterationRateChecksum(t *testing.T) {
	g := testGraph(t)
	want := EdgeIterationRate(g, 1)
	for _, th := range []Threads{2, 4, 0} {
		if got := EdgeIterationRate(g, th); got != want {
			t.Fatalf("threads=%d checksum %d, want %d", th, got, want)
		}
	}
	// Checksum equals the direct sum of all edge targets.
	var direct int64
	for _, v := range g.Out.Cols {
		direct += int64(v)
	}
	if want != direct {
		t.Fatalf("checksum %d, direct %d", want, direct)
	}
}

func TestParallelForCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, th := range []Threads{1, 3, 16} {
			seen := make([]bool, n)
			parallelFor(n, th, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					seen[i] = true
				}
			})
			for i, s := range seen {
				if !s {
					t.Fatalf("n=%d threads=%d: index %d not covered", n, th, i)
				}
			}
		}
	}
}
