// Package sa implements the paper's "SA" baseline: standalone single-machine
// algorithms "using direct CSR (Compressed Sparse Row) arrays and OpenMP
// parallel loops", with no framework overhead. Parallelism is plain
// goroutine fan-out over node ranges (the Go equivalent of an OpenMP
// parallel for); pull-form algorithms need no atomics, push-form ones use
// the same atomic reductions the engine's copiers use.
//
// Besides serving as the Table 3 "SA" row, these implementations are the
// correctness references for the distributed engine's algorithm tests.
package sa

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Threads controls the fan-out of parallel loops; 0 uses GOMAXPROCS.
// Figure 5a sweeps it.
type Threads int

func (t Threads) count() int {
	if t > 0 {
		return int(t)
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs body over [0, n) split into contiguous ranges, one per
// thread — the shape of "#pragma omp parallel for" over CSR rows.
func parallelFor(n int, threads Threads, body func(lo, hi int)) {
	p := threads.count()
	if p > n {
		p = n
	}
	if p <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// PageRank runs iters pull-form power iterations (the paper: "the above
// [pull] method is the preferred way of computing Pagerank for single
// machine environments").
func PageRank(g *graph.Graph, iters int, damping float64, threads Threads) []float64 {
	n := g.NumNodes()
	pr := make([]float64, n)
	nxt := make([]float64, n)
	scaled := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		parallelFor(n, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				if d := g.OutDegree(graph.NodeID(u)); d > 0 {
					scaled[u] = pr[u] / float64(d)
				} else {
					scaled[u] = 0
				}
			}
		})
		parallelFor(n, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				var sum float64
				for _, t := range g.In.Neighbors(graph.NodeID(u)) {
					sum += scaled[t]
				}
				nxt[u] = base + damping*sum
			}
		})
		pr, nxt = nxt, pr
	}
	return pr
}

// PageRankApprox runs delta-propagation PageRank with deactivation below
// threshold, matching the engine's approximate variant.
func PageRankApprox(g *graph.Graph, damping, threshold float64, maxIter int, threads Threads) ([]float64, int) {
	n := g.NumNodes()
	base := (1 - damping) / float64(n)
	pr := make([]float64, n)
	scaledDelta := make([]float64, n)
	deltaNxt := make([]uint64, n) // float bits, accumulated atomically
	active := make([]bool, n)
	for u := 0; u < n; u++ {
		pr[u] = base
		active[u] = true
		if d := g.OutDegree(graph.NodeID(u)); d > 0 {
			scaledDelta[u] = damping * base / float64(d)
		}
	}
	iters := 0
	for it := 0; it < maxIter; it++ {
		parallelFor(n, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				if !active[u] {
					continue
				}
				v := scaledDelta[u]
				for _, t := range g.Out.Neighbors(graph.NodeID(u)) {
					atomicAddF64(&deltaNxt[t], v)
				}
			}
		})
		var remaining atomic.Int64
		parallelFor(n, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				d := math.Float64frombits(deltaNxt[u])
				deltaNxt[u] = 0
				pr[u] += d
				if math.Abs(d) >= threshold {
					active[u] = true
					remaining.Add(1)
					if od := g.OutDegree(graph.NodeID(u)); od > 0 {
						scaledDelta[u] = damping * d / float64(od)
					} else {
						scaledDelta[u] = 0
					}
				} else {
					active[u] = false
				}
			}
		})
		iters++
		if remaining.Load() == 0 {
			break
		}
	}
	return pr, iters
}

func atomicAddF64(bits *uint64, v float64) {
	for {
		old := atomic.LoadUint64(bits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(bits, old, next) {
			return
		}
	}
}

// WCC computes weakly connected component labels (min global id per
// component) by label propagation over the undirected view.
func WCC(g *graph.Graph, threads Threads) ([]int64, int) {
	n := g.NumNodes()
	label := make([]int64, n)
	for u := range label {
		label[u] = int64(u)
	}
	iters := 0
	for {
		var changed atomic.Int64
		parallelFor(n, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				min := atomic.LoadInt64(&label[u])
				for _, t := range g.Out.Neighbors(graph.NodeID(u)) {
					if l := atomic.LoadInt64(&label[t]); l < min {
						min = l
					}
				}
				for _, t := range g.In.Neighbors(graph.NodeID(u)) {
					if l := atomic.LoadInt64(&label[t]); l < min {
						min = l
					}
				}
				if min < atomic.LoadInt64(&label[u]) {
					atomic.StoreInt64(&label[u], min)
					changed.Add(1)
				}
			}
		})
		iters++
		if changed.Load() == 0 {
			break
		}
	}
	return label, iters
}

// SSSP computes Bellman-Ford shortest paths from source; unreachable nodes
// report +Inf. The graph must be weighted.
func SSSP(g *graph.Graph, source graph.NodeID, threads Threads) ([]float64, int) {
	n := g.NumNodes()
	dist := make([]uint64, n) // float bits
	inf := math.Float64bits(math.Inf(1))
	for u := range dist {
		dist[u] = inf
	}
	dist[source] = math.Float64bits(0)
	iters := 0
	for {
		var changed atomic.Int64
		parallelFor(n, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				du := math.Float64frombits(atomic.LoadUint64(&dist[u]))
				if math.IsInf(du, 1) {
					continue
				}
				nbrs := g.Out.Neighbors(graph.NodeID(u))
				ws := g.Out.EdgeWeights(graph.NodeID(u))
				for i, t := range nbrs {
					nd := du + ws[i]
					for {
						old := atomic.LoadUint64(&dist[t])
						if math.Float64frombits(old) <= nd {
							break
						}
						if atomic.CompareAndSwapUint64(&dist[t], old, math.Float64bits(nd)) {
							changed.Add(1)
							break
						}
					}
				}
			}
		})
		iters++
		if changed.Load() == 0 {
			break
		}
	}
	out := make([]float64, n)
	for u := range out {
		out[u] = math.Float64frombits(dist[u])
	}
	return out, iters
}

// HopDist computes BFS hop distances from root; unreachable nodes report
// math.MaxInt64. Level-synchronous frontier sweep.
func HopDist(g *graph.Graph, root graph.NodeID, threads Threads) ([]int64, int) {
	n := g.NumNodes()
	dist := make([]int64, n)
	for u := range dist {
		dist[u] = math.MaxInt64
	}
	dist[root] = 0
	depth := int64(0)
	iters := 0
	for {
		var changed atomic.Int64
		parallelFor(n, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				if atomic.LoadInt64(&dist[u]) != depth {
					continue
				}
				for _, t := range g.Out.Neighbors(graph.NodeID(u)) {
					if atomic.LoadInt64(&dist[t]) > depth+1 {
						atomic.StoreInt64(&dist[t], depth+1)
						changed.Add(1)
					}
				}
			}
		})
		iters++
		if changed.Load() == 0 {
			break
		}
		depth++
	}
	return dist, iters
}

// Eigenvector runs iters power iterations of eigenvector centrality with L2
// normalization, matching the engine's pull implementation.
func Eigenvector(g *graph.Graph, iters int, threads Threads) []float64 {
	n := g.NumNodes()
	ev := make([]float64, n)
	nxt := make([]float64, n)
	for u := range ev {
		ev[u] = 1 / math.Sqrt(float64(n))
	}
	for it := 0; it < iters; it++ {
		partials := make([]float64, threads.count())
		var pi atomic.Int64
		parallelFor(n, threads, func(lo, hi int) {
			slot := int(pi.Add(1)) - 1
			var local float64
			for u := lo; u < hi; u++ {
				var sum float64
				for _, t := range g.In.Neighbors(graph.NodeID(u)) {
					sum += ev[t]
				}
				nxt[u] = sum
				local += sum * sum
			}
			if slot < len(partials) {
				partials[slot] = local
			}
		})
		var sumSq float64
		for _, p := range partials {
			sumSq += p
		}
		invNorm := 0.0
		if sumSq > 0 {
			invNorm = 1 / math.Sqrt(sumSq)
		}
		parallelFor(n, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				ev[u] = nxt[u] * invNorm
			}
		})
	}
	return ev
}

// KCore returns the maximum core number and per-node core numbers by
// synchronous parallel peeling over the undirected view.
func KCore(g *graph.Graph, threads Threads) (int64, []int64, int) {
	n := g.NumNodes()
	deg := make([]int64, n)
	for u := 0; u < n; u++ {
		deg[u] = g.TotalDegree(graph.NodeID(u))
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	coreNum := make([]int64, n)
	var remaining atomic.Int64
	remaining.Store(int64(n))
	best := int64(0)
	iters := 0
	for k := int64(1); remaining.Load() > 0; k++ {
		for {
			var removed atomic.Int64
			dying := make([]bool, n)
			parallelFor(n, threads, func(lo, hi int) {
				for u := lo; u < hi; u++ {
					if alive[u] && atomic.LoadInt64(&deg[u]) < k {
						alive[u] = false
						dying[u] = true
						removed.Add(1)
					}
				}
			})
			iters++
			if removed.Load() == 0 {
				break
			}
			remaining.Add(-removed.Load())
			parallelFor(n, threads, func(lo, hi int) {
				for u := lo; u < hi; u++ {
					if !dying[u] {
						continue
					}
					for _, t := range g.Out.Neighbors(graph.NodeID(u)) {
						atomic.AddInt64(&deg[t], -1)
					}
					for _, t := range g.In.Neighbors(graph.NodeID(u)) {
						atomic.AddInt64(&deg[t], -1)
					}
				}
			})
		}
		if remaining.Load() == 0 {
			break
		}
		best = k
		parallelFor(n, threads, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				if alive[u] {
					coreNum[u] = k
				}
			}
		})
	}
	return best, coreNum, iters
}

// EdgeIterationRate iterates every out-edge once doing trivial work and
// returns edges visited — the Figure 5a microbenchmark kernel ("a simple
// algorithm that iterates over all the edges in the graph without doing
// actual communication at all"). The checksum defeats dead-code elimination.
func EdgeIterationRate(g *graph.Graph, threads Threads) int64 {
	n := g.NumNodes()
	partials := make([]int64, threads.count()+1)
	var pi atomic.Int64
	parallelFor(n, threads, func(lo, hi int) {
		slot := int(pi.Add(1))
		var acc int64
		for u := lo; u < hi; u++ {
			for _, t := range g.Out.Neighbors(graph.NodeID(u)) {
				acc += int64(t)
			}
		}
		if slot < len(partials) {
			partials[slot] = acc
		}
	})
	var sum int64
	for _, p := range partials {
		sum += p
	}
	return sum
}
