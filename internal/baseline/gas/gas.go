// Package gas implements the paper's "GL" comparator: a synchronous
// Gather-Apply-Scatter engine in the style of distributed GraphLab (Low et
// al., VLDB'12), the system PGX.D is benchmarked against in §5.
//
// The engine is an honest simplified GraphLab: vertex-balanced partitioning,
// mirror tables synchronized at superstep boundaries (with dirty tracking),
// per-edge vid→lvid hash lookups during gather, per-vertex program dispatch
// through an interface, byte-level (de)marshalling of mirror updates and
// signals, and node-range (not edge-balanced) intra-machine parallelism.
// These are exactly the overhead classes the paper attributes to
// conventional frameworks — per-vertex scheduling, message (de)marshalling,
// and push-only/mirror-based data movement — without any deliberate
// pessimization.
package gas

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Direction selects which edges a phase touches.
type Direction uint8

const (
	// None touches no edges.
	None Direction = iota
	// In touches incoming edges.
	In
	// Out touches outgoing edges.
	Out
	// Both touches both orientations.
	Both
)

// Program is one vertex program. Vertex data is a single float64 (integer
// algorithms store bit-converted values), matching the scalar state of every
// algorithm the paper ran on GraphLab.
type Program interface {
	// GatherDir selects the edges gathered over.
	GatherDir() Direction
	// InitAcc returns the gather accumulator's identity.
	InitAcc() float64
	// Gather returns one edge's contribution given the neighbor's data and
	// the edge weight.
	Gather(nbrData, weight float64) float64
	// Combine merges two accumulator values.
	Combine(a, b float64) float64
	// Apply consumes the gathered accumulator and returns the new vertex
	// data plus whether to signal neighbors.
	Apply(old, acc float64) (newData float64, signal bool)
	// ScatterDir selects which neighbors are signaled when Apply says so.
	ScatterDir() Direction
}

// VertexApplier is an optional Program extension for programs whose apply
// needs the vertex identity (GraphLab's apply receives the vertex handle);
// when implemented, ApplyAt replaces Apply.
type VertexApplier interface {
	ApplyAt(v graph.NodeID, old, acc float64) (newData float64, signal bool)
}

// Stats reports one Run.
type Stats struct {
	Supersteps int
	Duration   time.Duration
	// BytesSent counts marshalled mirror-update and signal bytes.
	BytesSent int64
}

// Engine is a booted GAS cluster over one graph.
type Engine struct {
	p       int
	threads int
	layout  partition.Layout
	g       *graph.Graph
	ms      []*machine
}

// machine is one simulated GAS process.
type machine struct {
	id     int
	lo, hi graph.NodeID
	n      int
	data   []uint64 // vertex data bits, stable during a superstep (snapshot reads)
	outDeg []int32
	active []bool
	// nxtActive uses int32 cells set atomically: local signals land here
	// concurrently from many gather threads.
	nxtActive []int32
	dirty     []bool

	// mirror table: remote vid → mirror index, GraphLab's lvid lookup.
	mirrorIdx  map[graph.NodeID]int32
	mirrorData []uint64

	// subsOut[d] lists local offsets whose data machine d needs because a
	// local out-edge points into d; subsIn likewise for in-edges.
	subsOut [][]uint32
	subsIn  [][]uint32

	// outboxes for the current phase, indexed by destination machine.
	outbox [][]byte
}

// New partitions g over p machines with threads-per-machine parallel apply.
func New(g *graph.Graph, p, threads int) (*Engine, error) {
	if p < 1 || threads < 1 {
		return nil, fmt.Errorf("gas: p=%d threads=%d must be >= 1", p, threads)
	}
	layout, err := partition.Compute(g, p, partition.VertexBalanced)
	if err != nil {
		return nil, err
	}
	e := &Engine{p: p, threads: threads, layout: layout, g: g, ms: make([]*machine, p)}
	for i := 0; i < p; i++ {
		e.ms[i] = e.buildMachine(i)
	}
	return e, nil
}

func (e *Engine) buildMachine(id int) *machine {
	lo, hi := e.layout.Range(id)
	n := int(hi - lo)
	m := &machine{
		id: id, lo: lo, hi: hi, n: n,
		data:      make([]uint64, n),
		outDeg:    make([]int32, n),
		active:    make([]bool, n),
		nxtActive: make([]int32, n),
		dirty:     make([]bool, n),
		mirrorIdx: make(map[graph.NodeID]int32),
		subsOut:   make([][]uint32, e.p),
		subsIn:    make([][]uint32, e.p),
		outbox:    make([][]byte, e.p),
	}
	subOutSeen := make([]map[uint32]bool, e.p)
	subInSeen := make([]map[uint32]bool, e.p)
	for d := 0; d < e.p; d++ {
		subOutSeen[d] = make(map[uint32]bool)
		subInSeen[d] = make(map[uint32]bool)
	}
	addMirror := func(v graph.NodeID) {
		if v >= lo && v < hi {
			return
		}
		if _, ok := m.mirrorIdx[v]; !ok {
			m.mirrorIdx[v] = int32(len(m.mirrorData))
			m.mirrorData = append(m.mirrorData, 0)
		}
	}
	for u := lo; u < hi; u++ {
		off := uint32(u - lo)
		m.outDeg[off] = int32(e.g.OutDegree(u))
		for _, v := range e.g.Out.Neighbors(u) {
			addMirror(v)
			d := e.layout.Owner(v)
			if d != id && !subOutSeen[d][off] {
				subOutSeen[d][off] = true
				m.subsOut[d] = append(m.subsOut[d], off)
			}
		}
		for _, v := range e.g.In.Neighbors(u) {
			addMirror(v)
			d := e.layout.Owner(v)
			if d != id && !subInSeen[d][off] {
				subInSeen[d][off] = true
				m.subsIn[d] = append(m.subsIn[d], off)
			}
		}
	}
	return m
}

// NumMachines returns the cluster size.
func (e *Engine) NumMachines() int { return e.p }

// SetData initializes every vertex's data from fn(global id).
func (e *Engine) SetData(fn func(v graph.NodeID) float64) {
	for _, m := range e.ms {
		for off := 0; off < m.n; off++ {
			m.data[off] = math.Float64bits(fn(m.lo + graph.NodeID(off)))
			m.dirty[off] = true // force initial mirror sync
		}
	}
}

// ActivateAll marks every vertex active for the first superstep.
func (e *Engine) ActivateAll() {
	for _, m := range e.ms {
		for i := range m.active {
			m.active[i] = true
		}
	}
}

// Activate marks one vertex active.
func (e *Engine) Activate(v graph.NodeID) {
	o := e.layout.Owner(v)
	e.ms[o].active[v-e.ms[o].lo] = true
}

// Data gathers the full vertex-data array.
func (e *Engine) Data() []float64 {
	out := make([]float64, e.g.NumNodes())
	for _, m := range e.ms {
		for off := 0; off < m.n; off++ {
			out[int(m.lo)+off] = math.Float64frombits(m.data[off])
		}
	}
	return out
}

// parallel fans fn out over the machines (one goroutine each), the engine's
// simulation of separate processes.
func (e *Engine) parallel(fn func(m *machine)) {
	var wg sync.WaitGroup
	for _, m := range e.ms {
		wg.Add(1)
		go func(m *machine) {
			defer wg.Done()
			fn(m)
		}(m)
	}
	wg.Wait()
}

// Run executes supersteps of prog until no vertex is active or maxSteps is
// reached. Vertices must have been activated beforehand.
func (e *Engine) Run(prog Program, maxSteps int) Stats {
	var st Stats
	start := time.Now()
	var bytesSent atomic.Int64
	for step := 0; step < maxSteps; step++ {
		// Phase 1: mirror sync — marshal dirty subscribed vertex data as
		// (vid, bits) pairs per destination.
		e.parallel(func(m *machine) {
			gatherDir := prog.GatherDir()
			for d := 0; d < e.p; d++ {
				if d == m.id {
					continue
				}
				var buf []byte
				appendEntry := func(off uint32) {
					if !m.dirty[off] {
						return
					}
					var rec [12]byte
					binary.LittleEndian.PutUint32(rec[0:4], uint32(m.lo)+off)
					binary.LittleEndian.PutUint64(rec[4:12], m.data[off])
					buf = append(buf, rec[:]...)
				}
				// A vertex gathered over in-edges needs its in-neighbors'
				// data: ship along out-subscriptions, and vice versa.
				if gatherDir == In || gatherDir == Both {
					for _, off := range m.subsOut[d] {
						appendEntry(off)
					}
				}
				if gatherDir == Out || gatherDir == Both {
					for _, off := range m.subsIn[d] {
						appendEntry(off)
					}
				}
				m.outbox[d] = buf
				bytesSent.Add(int64(len(buf)))
			}
		})
		// Phase 2: deliver mirror updates (demarshal with vid→lvid lookups).
		e.parallel(func(m *machine) {
			for s := 0; s < e.p; s++ {
				if s == m.id {
					continue
				}
				buf := e.ms[s].outbox[m.id]
				for i := 0; i+12 <= len(buf); i += 12 {
					vid := graph.NodeID(binary.LittleEndian.Uint32(buf[i : i+4]))
					bits := binary.LittleEndian.Uint64(buf[i+4 : i+12])
					if idx, ok := m.mirrorIdx[vid]; ok {
						m.mirrorData[idx] = bits
					}
				}
			}
		})
		// Phase 3: gather + apply over active vertices, node-range threading.
		var anyActive atomic.Int64
		e.parallel(func(m *machine) {
			for i := range m.dirty {
				m.dirty[i] = false
			}
			m.gatherApply(e, prog, &bytesSent)
		})
		// Phase 4: deliver signals and roll activity forward.
		e.parallel(func(m *machine) {
			for s := 0; s < e.p; s++ {
				if s == m.id {
					continue
				}
				buf := e.ms[s].outbox[m.id]
				for i := 0; i+4 <= len(buf); i += 4 {
					vid := graph.NodeID(binary.LittleEndian.Uint32(buf[i : i+4]))
					m.nxtActive[vid-m.lo] = 1
				}
			}
		})
		e.parallel(func(m *machine) {
			found := false
			for i := range m.nxtActive {
				m.active[i] = m.nxtActive[i] != 0
				m.nxtActive[i] = 0
				found = found || m.active[i]
			}
			if found {
				anyActive.Add(1)
			}
		})
		st.Supersteps++
		if anyActive.Load() == 0 {
			break
		}
	}
	st.Duration = time.Since(start)
	st.BytesSent = bytesSent.Load()
	return st
}

// gatherApply runs the gather and apply phases for m's active vertices and
// marshals outgoing signals into m.outbox.
func (m *machine) gatherApply(e *Engine, prog Program, bytesSent *atomic.Int64) {
	gatherDir := prog.GatherDir()
	scatterDir := prog.ScatterDir()
	applier, hasApplier := prog.(VertexApplier)
	threads := e.threads
	if threads > m.n {
		threads = m.n
	}
	if threads < 1 {
		threads = 1
	}
	// Per-thread signal lists per destination plus data change-lists: the
	// sync engine's gather reads the superstep-start snapshot, so applies
	// are staged and committed after all threads join.
	type change struct {
		off  uint32
		bits uint64
	}
	type signals struct {
		perDest [][]uint32
		changes []change
	}
	perThread := make([]signals, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sig := &perThread[t]
			sig.perDest = make([][]uint32, e.p)
			lo := t * m.n / threads
			hi := (t + 1) * m.n / threads
			readNbr := func(v graph.NodeID) float64 {
				if v >= m.lo && v < m.hi {
					return math.Float64frombits(m.data[v-m.lo])
				}
				return math.Float64frombits(m.mirrorData[m.mirrorIdx[v]])
			}
			signalNbr := func(v graph.NodeID) {
				if v >= m.lo && v < m.hi {
					atomic.StoreInt32(&m.nxtActive[v-m.lo], 1)
					return
				}
				d := e.layout.Owner(v)
				sig.perDest[d] = append(sig.perDest[d], uint32(v))
			}
			for off := lo; off < hi; off++ {
				if !m.active[off] {
					continue
				}
				u := m.lo + graph.NodeID(off)
				acc := prog.InitAcc()
				if gatherDir == In || gatherDir == Both {
					nbrs := e.g.In.Neighbors(u)
					ws := e.g.In.EdgeWeights(u)
					for i, v := range nbrs {
						w := 0.0
						if ws != nil {
							w = ws[i]
						}
						acc = prog.Combine(acc, prog.Gather(readNbr(v), w))
					}
				}
				if gatherDir == Out || gatherDir == Both {
					nbrs := e.g.Out.Neighbors(u)
					ws := e.g.Out.EdgeWeights(u)
					for i, v := range nbrs {
						w := 0.0
						if ws != nil {
							w = ws[i]
						}
						acc = prog.Combine(acc, prog.Gather(readNbr(v), w))
					}
				}
				old := math.Float64frombits(m.data[off])
				var nd float64
				var signal bool
				if hasApplier {
					nd, signal = applier.ApplyAt(u, old, acc)
				} else {
					nd, signal = prog.Apply(old, acc)
				}
				if nd != old {
					sig.changes = append(sig.changes, change{off: uint32(off), bits: math.Float64bits(nd)})
				}
				if signal {
					if scatterDir == Out || scatterDir == Both {
						for _, v := range e.g.Out.Neighbors(u) {
							signalNbr(v)
						}
					}
					if scatterDir == In || scatterDir == Both {
						for _, v := range e.g.In.Neighbors(u) {
							signalNbr(v)
						}
					}
				}
			}
		}(t)
	}
	wg.Wait()
	// Commit staged applies.
	for t := range perThread {
		for _, ch := range perThread[t].changes {
			m.data[ch.off] = ch.bits
			m.dirty[ch.off] = true
		}
	}
	// Marshal merged signal lists per destination.
	for d := 0; d < e.p; d++ {
		if d == m.id {
			m.outbox[d] = nil
			continue
		}
		var buf []byte
		for t := range perThread {
			for _, vid := range perThread[t].perDest[d] {
				var rec [4]byte
				binary.LittleEndian.PutUint32(rec[:], vid)
				buf = append(buf, rec[:]...)
			}
		}
		m.outbox[d] = buf
		bytesSent.Add(int64(len(buf)))
	}
}

// OutDegreeOf exposes a vertex's out-degree to programs that need it (e.g.
// PageRank divides by it at gather time via pre-scaled data instead; KCore
// uses total degree at init).
func (e *Engine) OutDegreeOf(v graph.NodeID) int64 { return e.g.OutDegree(v) }
