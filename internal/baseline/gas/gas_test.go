package gas

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/baseline/sa"
	"repro/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(8, 8, graph.TwitterLike(), 31)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRejectsBadArgs(t *testing.T) {
	g := testGraph(t)
	if _, err := New(g, 0, 1); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := New(g, 1, 0); err == nil {
		t.Error("threads=0 accepted")
	}
}

func TestPageRankExactMatchesSA(t *testing.T) {
	g := testGraph(t)
	want := sa.PageRank(g, 8, 0.85, 1)
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			got, st, err := PageRank(g, p, 2, 8, 0.85, 0)
			if err != nil {
				t.Fatal(err)
			}
			if st.Supersteps != 8 {
				t.Errorf("supersteps = %d", st.Supersteps)
			}
			for u := range want {
				if d := math.Abs(got[u] - want[u]); d > 1e-10 {
					t.Fatalf("node %d: %g vs %g", u, got[u], want[u])
				}
			}
			if p > 1 && st.BytesSent == 0 {
				t.Error("no traffic recorded on multi-machine run")
			}
		})
	}
}

func TestPageRankApproxConverges(t *testing.T) {
	g := testGraph(t)
	exact := sa.PageRank(g, 60, 0.85, 1)
	got, st, err := PageRank(g, 3, 2, 500, 0.85, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Supersteps == 0 || st.Supersteps == 500 {
		t.Errorf("supersteps = %d", st.Supersteps)
	}
	for u := range exact {
		if d := math.Abs(got[u] - exact[u]); d > 1e-4 {
			t.Fatalf("node %d: approx %g vs exact %g", u, got[u], exact[u])
		}
	}
}

func TestWCCMatchesSA(t *testing.T) {
	g := testGraph(t)
	want, _ := sa.WCC(g, 1)
	got, st, err := WCC(g, 3, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Supersteps == 0 {
		t.Error("0 supersteps")
	}
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: %d vs %d", u, got[u], want[u])
		}
	}
}

func TestSSSPMatchesSA(t *testing.T) {
	g := testGraph(t).WithUniformWeights(1, 5, 8)
	want, _ := sa.SSSP(g, 0, 1)
	got, _, err := SSSP(g, 0, 3, 2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if math.IsInf(want[u], 1) != math.IsInf(got[u], 1) {
			t.Fatalf("node %d reachability mismatch", u)
		}
		if !math.IsInf(want[u], 1) && math.Abs(got[u]-want[u]) > 1e-9 {
			t.Fatalf("node %d: %g vs %g", u, got[u], want[u])
		}
	}
}

func TestHopDistMatchesSA(t *testing.T) {
	g := testGraph(t)
	want, _ := sa.HopDist(g, 2, 1)
	got, _, err := HopDist(g, 2, 2, 2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: %d vs %d", u, got[u], want[u])
		}
	}
}

func TestKCoreMatchesSA(t *testing.T) {
	g, err := graph.RMAT(7, 5, graph.TwitterLike(), 13)
	if err != nil {
		t.Fatal(err)
	}
	wantBest, wantCore, _ := sa.KCore(g, 1)
	gotBest, gotCore, st, err := KCore(g, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotBest != wantBest {
		t.Fatalf("best = %d, want %d", gotBest, wantBest)
	}
	for u := range wantCore {
		if gotCore[u] != wantCore[u] {
			t.Fatalf("node %d: core %d vs %d", u, gotCore[u], wantCore[u])
		}
	}
	if st.Supersteps < int(wantBest) {
		t.Errorf("suspiciously few supersteps: %d", st.Supersteps)
	}
}

func TestEdgeIterationRuns(t *testing.T) {
	g := testGraph(t)
	_, st, err := EdgeIteration(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Supersteps != 1 {
		t.Errorf("supersteps = %d", st.Supersteps)
	}
}

func TestDirtyMirrorSyncOnlyShipsChanges(t *testing.T) {
	// WCC converges region by region; late supersteps must ship much less
	// mirror data than early ones. Compare total bytes against a worst case
	// of full-resync every step.
	g := testGraph(t)
	e, err := New(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.SetData(func(v graph.NodeID) float64 { return float64(v) })
	e.ActivateAll()
	st := e.Run(WCCProgram{}, 1000)
	var fullPerStep int64
	for _, m := range e.ms {
		for d := 0; d < e.p; d++ {
			fullPerStep += int64(12 * (len(m.subsOut[d]) + len(m.subsIn[d])))
		}
	}
	worst := fullPerStep * int64(st.Supersteps)
	if st.BytesSent >= worst {
		t.Errorf("dirty tracking ineffective: sent %d, full-resync bound %d", st.BytesSent, worst)
	}
}
