package gas

import (
	"math"
	"time"

	"repro/internal/graph"
)

// Vertex programs for the algorithms the paper ran on GraphLab (Table 2's
// GL column): approximate PageRank, WCC, SSSP, hop distance, and k-core,
// plus exact PageRank implemented by us "on top of these systems" as the
// paper did for algorithms missing from the package.

// PageRank runs exact (tolerance 0, fixed iters) or approximate
// (tolerance > 0, run to quiescence) PageRank on the GAS engine and returns
// the rank vector and stats.
func PageRank(g *graph.Graph, p, threads, iters int, damping, tolerance float64) ([]float64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	n := float64(g.NumNodes())
	base := (1 - damping) / n
	e.SetData(func(v graph.NodeID) float64 {
		if d := g.OutDegree(v); d > 0 {
			return (1 / n) / float64(d)
		}
		return 1 / n
	})
	e.ActivateAll()
	prog := &prVertex{g: g, damping: damping, base: base, tolerance: tolerance}
	st := e.Run(prog, iters)
	ranks := e.Data()
	for u := range ranks {
		if d := g.OutDegree(graph.NodeID(u)); d > 0 {
			ranks[u] *= float64(d)
		}
	}
	return ranks, st, nil
}

// prVertex implements PageRank with the out-degree recovered through the
// graph handle; data stays in scaled form.
type prVertex struct {
	g         *graph.Graph
	damping   float64
	base      float64
	tolerance float64

	// applyVertex is set by the engine before Apply (see engine hook);
	// GraphLab's apply likewise knows which vertex it operates on.
	cur graph.NodeID
}

func (p *prVertex) GatherDir() Direction          { return In }
func (p *prVertex) ScatterDir() Direction         { return Out }
func (p *prVertex) InitAcc() float64              { return 0 }
func (p *prVertex) Gather(nbr, w float64) float64 { return nbr }
func (p *prVertex) Combine(a, b float64) float64  { return a + b }

func (p *prVertex) ApplyAt(v graph.NodeID, old, acc float64) (float64, bool) {
	rank := p.base + p.damping*acc
	d := p.g.OutDegree(v)
	oldRank := old
	if d > 0 {
		oldRank = old * float64(d)
	}
	signal := p.tolerance <= 0 || math.Abs(rank-oldRank) >= p.tolerance
	if d > 0 {
		return rank / float64(d), signal
	}
	return rank, signal
}

// Apply satisfies Program; the engine calls ApplyAt when available.
func (p *prVertex) Apply(old, acc float64) (float64, bool) {
	panic("gas: prVertex requires VertexApplier dispatch")
}

// WCCProgram propagates minimum labels over both orientations.
type WCCProgram struct{}

// GatherDir implements Program.
func (WCCProgram) GatherDir() Direction { return Both }

// ScatterDir implements Program.
func (WCCProgram) ScatterDir() Direction { return Both }

// InitAcc implements Program.
func (WCCProgram) InitAcc() float64 { return math.Inf(1) }

// Gather implements Program.
func (WCCProgram) Gather(nbr, w float64) float64 { return nbr }

// Combine implements Program.
func (WCCProgram) Combine(a, b float64) float64 { return math.Min(a, b) }

// Apply implements Program.
func (WCCProgram) Apply(old, acc float64) (float64, bool) {
	if acc < old {
		return acc, true
	}
	return old, false
}

// WCC runs weakly connected components on the GAS engine.
func WCC(g *graph.Graph, p, threads, maxSteps int) ([]int64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	e.SetData(func(v graph.NodeID) float64 { return float64(v) })
	e.ActivateAll()
	st := e.Run(WCCProgram{}, maxSteps)
	data := e.Data()
	out := make([]int64, len(data))
	for i, v := range data {
		out[i] = int64(v)
	}
	return out, st, nil
}

// SSSPProgram relaxes distances: gather min(nbrDist + weight) over in-edges.
type SSSPProgram struct{}

// GatherDir implements Program.
func (SSSPProgram) GatherDir() Direction { return In }

// ScatterDir implements Program.
func (SSSPProgram) ScatterDir() Direction { return Out }

// InitAcc implements Program.
func (SSSPProgram) InitAcc() float64 { return math.Inf(1) }

// Gather implements Program.
func (SSSPProgram) Gather(nbr, w float64) float64 { return nbr + w }

// Combine implements Program.
func (SSSPProgram) Combine(a, b float64) float64 { return math.Min(a, b) }

// Apply implements Program.
func (SSSPProgram) Apply(old, acc float64) (float64, bool) {
	if acc < old {
		return acc, true
	}
	return old, false
}

// SSSP runs Bellman-Ford on the GAS engine from source.
func SSSP(g *graph.Graph, source graph.NodeID, p, threads, maxSteps int) ([]float64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	e.SetData(func(v graph.NodeID) float64 {
		if v == source {
			return 0
		}
		return math.Inf(1)
	})
	e.ActivateAll() // first superstep lets every vertex gather; only the
	// source's neighbors see a finite value, mirroring GraphLab's sssp start
	st := e.Run(SSSPProgram{}, maxSteps)
	return e.Data(), st, nil
}

// hopProgram is SSSP with unit weights.
type hopProgram struct{ SSSPProgram }

func (hopProgram) Gather(nbr, w float64) float64 { return nbr + 1 }

// HopDist runs BFS hop distances on the GAS engine.
func HopDist(g *graph.Graph, root graph.NodeID, p, threads, maxSteps int) ([]int64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	e.SetData(func(v graph.NodeID) float64 {
		if v == root {
			return 0
		}
		return math.Inf(1)
	})
	e.ActivateAll()
	st := e.Run(hopProgram{}, maxSteps)
	data := e.Data()
	out := make([]int64, len(data))
	for i, v := range data {
		if math.IsInf(v, 1) {
			out[i] = math.MaxInt64
		} else {
			out[i] = int64(v)
		}
	}
	return out, st, nil
}

// kcoreProgram counts alive neighbors; vertices die when the count drops
// below k. Data: 1 = alive, 0 = dead.
type kcoreProgram struct{ k float64 }

func (kcoreProgram) GatherDir() Direction  { return Both }
func (kcoreProgram) ScatterDir() Direction { return Both }
func (kcoreProgram) InitAcc() float64      { return 0 }
func (kcoreProgram) Gather(nbr, w float64) float64 {
	return nbr // 1 per alive neighbor, 0 per dead
}
func (kcoreProgram) Combine(a, b float64) float64 { return a + b }
func (p kcoreProgram) Apply(old, acc float64) (float64, bool) {
	if old != 0 && acc < p.k {
		return 0, true // die and wake the neighbors
	}
	return old, false
}

// KCore finds the maximum k-core number on the GAS engine, returning the max
// core number, per-node core numbers, and aggregate stats.
func KCore(g *graph.Graph, p, threads int, maxK int64) (int64, []int64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return 0, nil, Stats{}, err
	}
	e.SetData(func(v graph.NodeID) float64 { return 1 })
	coreNum := make([]int64, g.NumNodes())
	var agg Stats
	start := time.Now()
	best := int64(0)
	for k := int64(1); maxK <= 0 || k <= maxK; k++ {
		e.ActivateAll()
		st := e.Run(kcoreProgram{k: float64(k)}, 1<<30)
		agg.Supersteps += st.Supersteps
		agg.BytesSent += st.BytesSent
		data := e.Data()
		alive := 0
		for u, v := range data {
			if v != 0 {
				alive++
				coreNum[u] = k
			}
		}
		if alive == 0 {
			break
		}
		best = k
	}
	agg.Duration = time.Since(start)
	return best, coreNum, agg, nil
}

// EdgeIteration visits every out-edge once through the GAS gather machinery
// (the Figure 5a comparison kernel) and returns a checksum.
func EdgeIteration(g *graph.Graph, threads int) (int64, Stats, error) {
	e, err := New(g, 1, threads)
	if err != nil {
		return 0, Stats{}, err
	}
	e.SetData(func(v graph.NodeID) float64 { return float64(v) })
	e.ActivateAll()
	st := e.Run(&edgeIterProgram{}, 1)
	var sum int64
	for _, v := range e.Data() {
		sum += int64(v)
	}
	return sum, st, nil
}

// edgeIterProgram sums neighbor ids — pure iteration through the framework.
type edgeIterProgram struct{}

func (*edgeIterProgram) GatherDir() Direction          { return Out }
func (*edgeIterProgram) ScatterDir() Direction         { return None }
func (*edgeIterProgram) InitAcc() float64              { return 0 }
func (*edgeIterProgram) Gather(nbr, w float64) float64 { return nbr }
func (*edgeIterProgram) Combine(a, b float64) float64  { return a + b }
func (*edgeIterProgram) Apply(old, acc float64) (float64, bool) {
	_ = acc // checksum accumulates into vertex data unchanged
	return old, false
}

// evGasProgram gathers the sum of in-neighbors' values; the driver
// normalizes between rounds.
type evGasProgram struct{}

func (evGasProgram) GatherDir() Direction          { return In }
func (evGasProgram) ScatterDir() Direction         { return None }
func (evGasProgram) InitAcc() float64              { return 0 }
func (evGasProgram) Gather(nbr, w float64) float64 { return nbr }
func (evGasProgram) Combine(a, b float64) float64  { return a + b }
func (evGasProgram) Apply(old, acc float64) (float64, bool) {
	return acc, false
}

// Eigenvector runs iters normalized power iterations on the GAS engine,
// with driver-side L2 normalization between supersteps (the paper
// implemented EV by hand on GraphLab the same way).
func Eigenvector(g *graph.Graph, p, threads, iters int) ([]float64, Stats, error) {
	e, err := New(g, p, threads)
	if err != nil {
		return nil, Stats{}, err
	}
	n := float64(g.NumNodes())
	e.SetData(func(v graph.NodeID) float64 { return 1 / math.Sqrt(n) })
	var agg Stats
	start := time.Now()
	for it := 0; it < iters; it++ {
		e.ActivateAll()
		st := e.Run(evGasProgram{}, 1)
		agg.Supersteps += st.Supersteps
		agg.BytesSent += st.BytesSent
		var sumSq float64
		for _, m := range e.ms {
			for off := 0; off < m.n; off++ {
				v := math.Float64frombits(m.data[off])
				sumSq += v * v
			}
		}
		if sumSq > 0 {
			inv := 1 / math.Sqrt(sumSq)
			for _, m := range e.ms {
				for off := 0; off < m.n; off++ {
					m.data[off] = math.Float64bits(math.Float64frombits(m.data[off]) * inv)
					m.dirty[off] = true // normalized values must re-sync to mirrors
				}
			}
		}
	}
	agg.Duration = time.Since(start)
	return e.Data(), agg, nil
}
