// Package match implements a distributed path-pattern matcher — the paper's
// §6 "Solving pattern matching queries" outlook: "identifying all sub-graph
// instances in a large data graph that match the given (small) query graph."
// The paper warns that "pattern matching algorithms tend to generate a
// potentially exponential number of partial solutions, or match contexts;
// careless implementation could result in either too much communication or
// too much memory consumption" — so this matcher makes both explicit: partial
// matches are batched per destination machine (bandwidth-efficient, like the
// engine's request messages), and a hard cap bounds resident match contexts,
// with a typed error when a query exceeds it.
//
// Supported patterns are vertex paths: a sequence of vertex predicates
// connected by directed edges, e.g. (high-degree) -[out]-> (any) -[out]->
// (high-degree), optionally with all pattern vertices distinct.
package match

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Predicate tests whether a data vertex can bind a pattern position.
// Implementations must be safe for concurrent calls.
type Predicate func(g *graph.Graph, v graph.NodeID) bool

// Any matches every vertex.
func Any() Predicate { return func(*graph.Graph, graph.NodeID) bool { return true } }

// MinOutDegree matches vertices with at least k out-edges.
func MinOutDegree(k int64) Predicate {
	return func(g *graph.Graph, v graph.NodeID) bool { return g.OutDegree(v) >= k }
}

// MinInDegree matches vertices with at least k in-edges.
func MinInDegree(k int64) Predicate {
	return func(g *graph.Graph, v graph.NodeID) bool { return g.InDegree(v) >= k }
}

// Pattern is a directed path query: Steps[0] binds the first vertex; each
// following step extends along one out-edge.
type Pattern struct {
	// Steps are the vertex predicates along the path, in order. At least
	// two steps (one edge) are required.
	Steps []Predicate
	// Distinct requires all bound vertices to differ (no revisits).
	Distinct bool
}

// Match is one bound path: Vertices[i] satisfied Steps[i].
type Match struct {
	Vertices []graph.NodeID
}

// ErrTooManyPartials reports that a query exceeded the resident partial-
// match budget — the failure mode the paper says must be handled, surfaced
// instead of exhausting memory.
var ErrTooManyPartials = errors.New("match: partial-match budget exceeded")

// Options bounds a query's resource usage.
type Options struct {
	// Machines is the simulated cluster size (vertex-partitioned).
	Machines int
	// MaxPartials caps the partial matches resident across the cluster at
	// any round boundary. Zero means 1<<20.
	MaxPartials int
	// MaxMatches caps the result size (0 = unlimited). Queries exceeding it
	// are truncated, with Truncated set in Stats.
	MaxMatches int
}

// Stats reports a query execution.
type Stats struct {
	Rounds       int
	PartialsSent int64 // partial matches shipped across machine boundaries
	PeakPartials int
	Truncated    bool
}

// Find runs the pattern against g with a simulated distributed execution:
// vertices are partitioned over opts.Machines; each round extends the
// frontier of partial matches by one pattern step, shipping matches whose
// next vertex is remote to its owner in per-destination batches.
func Find(g *graph.Graph, p Pattern, opts Options) ([]Match, Stats, error) {
	var st Stats
	if len(p.Steps) < 2 {
		return nil, st, fmt.Errorf("match: pattern needs at least two steps, got %d", len(p.Steps))
	}
	if opts.Machines < 1 {
		opts.Machines = 1
	}
	if opts.MaxPartials <= 0 {
		opts.MaxPartials = 1 << 20
	}
	layout, err := partition.Compute(g, opts.Machines, partition.VertexBalanced)
	if err != nil {
		return nil, st, err
	}

	// partials[m] holds partial matches whose last vertex machine m owns.
	partials := make([][][]graph.NodeID, opts.Machines)

	// Round 0: bind the first pattern vertex.
	total := 0
	for m := 0; m < opts.Machines; m++ {
		lo, hi := layout.Range(m)
		for v := lo; v < hi; v++ {
			if p.Steps[0](g, v) {
				partials[m] = append(partials[m], []graph.NodeID{v})
				total++
			}
		}
	}
	if total > opts.MaxPartials {
		return nil, st, fmt.Errorf("%w: %d seeds > budget %d", ErrTooManyPartials, total, opts.MaxPartials)
	}
	st.PeakPartials = total

	var results []Match
	var resultsMu sync.Mutex
	var truncated bool

	for step := 1; step < len(p.Steps); step++ {
		st.Rounds++
		last := step == len(p.Steps)-1
		// Each machine extends its partials in parallel, producing per-
		// destination outboxes (complete matches go straight to results).
		outboxes := make([][][][]graph.NodeID, opts.Machines) // [src][dst][]match
		var wg sync.WaitGroup
		var sentCount, keptCount int64
		var countMu sync.Mutex
		for m := 0; m < opts.Machines; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				out := make([][][]graph.NodeID, opts.Machines)
				var localSent, localKept int64
				var localResults []Match
				for _, pm := range partials[m] {
					lastV := pm[len(pm)-1]
					for _, next := range g.Out.Neighbors(lastV) {
						if !p.Steps[step](g, next) {
							continue
						}
						if p.Distinct && contains(pm, next) {
							continue
						}
						ext := make([]graph.NodeID, len(pm)+1)
						copy(ext, pm)
						ext[len(pm)] = next
						if last {
							localResults = append(localResults, Match{Vertices: ext})
							continue
						}
						d := layout.Owner(next)
						out[d] = append(out[d], ext)
						localKept++
						if d != m {
							localSent++
						}
					}
				}
				outboxes[m] = out
				countMu.Lock()
				sentCount += localSent
				keptCount += localKept
				countMu.Unlock()
				if len(localResults) > 0 {
					resultsMu.Lock()
					results = append(results, localResults...)
					resultsMu.Unlock()
				}
			}(m)
		}
		wg.Wait()
		st.PartialsSent += sentCount
		if int(keptCount) > opts.MaxPartials {
			return nil, st, fmt.Errorf("%w: %d partials at round %d > budget %d",
				ErrTooManyPartials, keptCount, st.Rounds, opts.MaxPartials)
		}
		if int(keptCount) > st.PeakPartials {
			st.PeakPartials = int(keptCount)
		}
		// Deliver: machine d's next frontier is everything addressed to it.
		next := make([][][]graph.NodeID, opts.Machines)
		for d := 0; d < opts.Machines; d++ {
			for s := 0; s < opts.Machines; s++ {
				next[d] = append(next[d], outboxes[s][d]...)
			}
		}
		partials = next
		if opts.MaxMatches > 0 && len(results) >= opts.MaxMatches {
			truncated = true
			break
		}
	}
	if opts.MaxMatches > 0 && len(results) > opts.MaxMatches {
		results = results[:opts.MaxMatches]
		truncated = true
	}
	st.Truncated = truncated
	return results, st, nil
}

func contains(pm []graph.NodeID, v graph.NodeID) bool {
	for _, u := range pm {
		if u == v {
			return true
		}
	}
	return false
}

// FindReference enumerates matches by sequential depth-first search — the
// correctness oracle for Find.
func FindReference(g *graph.Graph, p Pattern) []Match {
	if len(p.Steps) < 2 {
		return nil
	}
	var results []Match
	var dfs func(pm []graph.NodeID)
	dfs = func(pm []graph.NodeID) {
		step := len(pm)
		if step == len(p.Steps) {
			m := make([]graph.NodeID, len(pm))
			copy(m, pm)
			results = append(results, Match{Vertices: m})
			return
		}
		for _, next := range g.Out.Neighbors(pm[len(pm)-1]) {
			if !p.Steps[step](g, next) {
				continue
			}
			if p.Distinct && contains(pm, next) {
				continue
			}
			dfs(append(pm, next))
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if p.Steps[0](g, graph.NodeID(v)) {
			dfs([]graph.NodeID{graph.NodeID(v)})
		}
	}
	return results
}
