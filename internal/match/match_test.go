package match

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(8, 6, graph.TwitterLike(), 23)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func canon(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		parts := make([]string, len(m.Vertices))
		for j, v := range m.Vertices {
			parts[j] = fmt.Sprint(v)
		}
		out[i] = strings.Join(parts, ">")
	}
	sort.Strings(out)
	return out
}

func assertSameMatches(t *testing.T, got, want []Match) {
	t.Helper()
	a, b := canon(got), canon(want)
	if len(a) != len(b) {
		t.Fatalf("got %d matches, want %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestFindMatchesReference(t *testing.T) {
	g := testGraph(t)
	// Paths hub -> any -> hub: selective enough to stay small.
	p := Pattern{Steps: []Predicate{MinOutDegree(50), Any(), MinInDegree(50)}, Distinct: true}
	want := FindReference(g, p)
	if len(want) == 0 {
		t.Fatal("reference found no matches; loosen the pattern")
	}
	for _, machines := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p=%d", machines), func(t *testing.T) {
			got, st, err := Find(g, p, Options{Machines: machines, MaxPartials: 1 << 22})
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, got, want)
			if st.Rounds != 2 {
				t.Errorf("rounds = %d", st.Rounds)
			}
			if machines > 1 && st.PartialsSent == 0 {
				t.Error("no cross-machine partials on a multi-machine run")
			}
		})
	}
}

func TestFindTinyGraphExact(t *testing.T) {
	// 0->1->2, 0->2, 2->0: enumerate 2-edge paths with Any predicates.
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}, {Src: 2, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	p := Pattern{Steps: []Predicate{Any(), Any(), Any()}}
	got, _, err := Find(g, p, Options{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Paths: 0>1>2, 0>2>0, 1>2>0, 2>0>1, 2>0>2.
	want := []string{"0>1>2", "0>2>0", "1>2>0", "2>0>1", "2>0>2"}
	if gotC := canon(got); fmt.Sprint(gotC) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", gotC, want)
	}

	// Distinct removes the revisiting paths.
	p.Distinct = true
	got, _, err = Find(g, p, Options{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"0>1>2", "1>2>0", "2>0>1"}
	if gotC := canon(got); fmt.Sprint(gotC) != fmt.Sprint(want) {
		t.Errorf("distinct: got %v, want %v", gotC, want)
	}
}

func TestFindPartialBudget(t *testing.T) {
	g := testGraph(t)
	// An unselective 4-step pattern explodes; the budget must trip with the
	// typed error rather than exhaust memory.
	p := Pattern{Steps: []Predicate{Any(), Any(), Any(), Any()}}
	_, _, err := Find(g, p, Options{Machines: 2, MaxPartials: 1000})
	if !errors.Is(err, ErrTooManyPartials) {
		t.Fatalf("err = %v, want ErrTooManyPartials", err)
	}
}

func TestFindMaxMatchesTruncates(t *testing.T) {
	g := testGraph(t)
	p := Pattern{Steps: []Predicate{Any(), Any()}}
	got, st, err := Find(g, p, Options{Machines: 2, MaxMatches: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || !st.Truncated {
		t.Errorf("len=%d truncated=%v", len(got), st.Truncated)
	}
}

func TestFindValidation(t *testing.T) {
	g := testGraph(t)
	if _, _, err := Find(g, Pattern{Steps: []Predicate{Any()}}, Options{}); err == nil {
		t.Error("single-step pattern accepted")
	}
}

func TestPredicates(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !MinOutDegree(2)(g, 0) || MinOutDegree(2)(g, 1) {
		t.Error("MinOutDegree wrong")
	}
	if !MinInDegree(1)(g, 1) || MinInDegree(2)(g, 2) {
		t.Error("MinInDegree wrong")
	}
	if !Any()(g, 2) {
		t.Error("Any wrong")
	}
}

func TestFindStatsPeak(t *testing.T) {
	g := testGraph(t)
	p := Pattern{Steps: []Predicate{MinOutDegree(20), Any(), Any()}}
	_, st, err := Find(g, p, Options{Machines: 3, MaxPartials: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakPartials <= 0 {
		t.Error("no peak recorded")
	}
}
