// Package comm implements PGX.D's Communication Manager substrate
// (paper §3.4): fixed-size message buffers drawn from bounded pools
// (back-pressure), a pluggable point-to-point transport with an in-process
// and a TCP implementation, a poller that routes inbound frames to workers
// and copiers, control-plane collectives (barrier, allreduce, broadcast),
// and a remote-method-invocation registry.
//
// The package is payload-agnostic: engines define their own record formats
// inside frames. Only control frames (collectives) are interpreted here.
package comm

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// MsgType tags a frame's purpose. Routing is by type: requests go to copier
// queues, responses to the originating worker, control frames to the
// collective engine.
type MsgType uint8

const (
	// MsgReadReq carries buffered remote-read requests (paper: 8-byte
	// address records).
	MsgReadReq MsgType = iota
	// MsgReadResp carries the values answering a MsgReadReq, in request
	// order (the side structure on the requester matches them back up).
	MsgReadResp
	// MsgWriteReq carries buffered remote-write (reduction) records that
	// copiers apply with atomics.
	MsgWriteReq
	// MsgRMIReq invokes a registered remote method.
	MsgRMIReq
	// MsgRMIResp carries an RMI result back to the calling worker.
	MsgRMIResp
	// MsgCtrl carries collective/control traffic (barriers, reductions).
	MsgCtrl
	// MsgAbort announces that the sending machine aborted the current job
	// (Aux carries the job id, the payload the cause). Receivers abort the
	// same job locally so no machine hangs waiting on a peer that already
	// gave up — the fail-soft replacement for panic-on-wire-error.
	MsgAbort
	// MsgSteal asks a peer for unclaimed edge chunks of the current job
	// (Aux carries the thief's job id). Routed like a request: a copier on
	// the victim claims chunks from the job's shared cursor and answers
	// with a MsgStealGrant.
	MsgSteal
	// MsgStealGrant carries stolen chunks back to the thief: packed node
	// topology (pre-resolved refs rewritten into the thief's frame), edge
	// weights when the job needs them, and a snapshot of the victim's
	// own-node property values. An empty grant means the victim has no
	// work left to give.
	MsgStealGrant
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgReadReq:
		return "READ_REQ"
	case MsgReadResp:
		return "READ_RESP"
	case MsgWriteReq:
		return "WRITE_REQ"
	case MsgRMIReq:
		return "RMI_REQ"
	case MsgRMIResp:
		return "RMI_RESP"
	case MsgCtrl:
		return "CTRL"
	case MsgAbort:
		return "ABORT"
	case MsgSteal:
		return "STEAL"
	case MsgStealGrant:
		return "STEAL_GRANT"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// CtrlWorker is the pseudo worker id used by a machine's main goroutine
// (sequential regions, collectives). Responses addressed to it are routed to
// the control channel rather than a worker response queue.
const CtrlWorker = 255

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 16

// Frame flags (Header.Flags). The flags byte was carved out of the top byte
// of the old 32-bit count field: real counts are bounded by
// bufferSize/recordSize, far below 2^24, so the byte was always zero on the
// wire and old frames decode as flag-free.
const (
	// FlagCompressed marks a payload encoded with the wire compression
	// layer (sorted delta-varint ID column, type-aware values) instead of
	// fixed-width records. Senders set it per message only when the
	// compressed encoding is actually smaller; receivers must reject
	// frames whose compressed payload does not decode to exactly Count
	// records.
	FlagCompressed uint8 = 1 << 0
)

// MaxCount is the largest record count the 24-bit header field can carry.
const MaxCount = 1<<24 - 1

// Header is the decoded frame header. Layout (little endian):
//
//	[0]     type
//	[1]     worker  (requester's worker id; echoed back in responses)
//	[2:4]   src machine
//	[4:7]   record count (24 bit)
//	[7]     flags (FlagCompressed, ...)
//	[8:16]  aux (message-type specific: RMI method id, ctrl op/seq, ...)
type Header struct {
	Type   MsgType
	Worker uint8
	Src    uint16
	Count  uint32
	Flags  uint8
	Aux    uint64
}

// Buffer is one message buffer: a fixed-capacity byte slab beginning with a
// frame header. Buffers are acquired from a Pool, filled by appending
// records, sent (ownership transfers to the transport/receiver), and finally
// released back to their origin pool. The paper sizes these at 256 KiB
// (Figure 8b); the capacity is the pool's configured buffer size.
type Buffer struct {
	// Data holds header + payload; len(Data) is the bytes used so far.
	Data []byte
	pool *Pool
}

// Reset truncates the buffer to an empty payload with the given header.
func (b *Buffer) Reset(h Header) {
	b.Data = b.Data[:HeaderSize]
	b.Data[0] = byte(h.Type)
	b.Data[1] = h.Worker
	binary.LittleEndian.PutUint16(b.Data[2:4], h.Src)
	putCount(b.Data, h.Count)
	b.Data[7] = h.Flags
	binary.LittleEndian.PutUint64(b.Data[8:16], h.Aux)
}

// Header decodes the frame header.
func (b *Buffer) Header() Header {
	return Header{
		Type:   MsgType(b.Data[0]),
		Worker: b.Data[1],
		Src:    binary.LittleEndian.Uint16(b.Data[2:4]),
		Count:  binary.LittleEndian.Uint32(b.Data[4:8]) & MaxCount,
		Flags:  b.Data[7],
		Aux:    binary.LittleEndian.Uint64(b.Data[8:16]),
	}
}

// SetCount updates the record-count header field in place, preserving flags.
func (b *Buffer) SetCount(n uint32) {
	putCount(b.Data, n)
}

func putCount(data []byte, n uint32) {
	if n > MaxCount {
		panic(fmt.Sprintf("comm: record count %d exceeds 24-bit header field", n))
	}
	data[4] = byte(n)
	data[5] = byte(n >> 8)
	data[6] = byte(n >> 16)
}

// SetFlags replaces the header flags byte in place.
func (b *Buffer) SetFlags(f uint8) {
	b.Data[7] = f
}

// SetAux updates the aux header field in place.
func (b *Buffer) SetAux(v uint64) {
	binary.LittleEndian.PutUint64(b.Data[8:16], v)
}

// Payload returns the bytes after the header.
func (b *Buffer) Payload() []byte { return b.Data[HeaderSize:] }

// Room returns how many payload bytes still fit.
func (b *Buffer) Room() int { return cap(b.Data) - len(b.Data) }

// Cap returns the buffer's total capacity (header + payload).
func (b *Buffer) Cap() int { return cap(b.Data) }

// AppendU64 appends one little-endian uint64 record field.
func (b *Buffer) AppendU64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.Data = append(b.Data, tmp[:]...)
}

// AppendBytes appends raw bytes.
func (b *Buffer) AppendBytes(p []byte) {
	b.Data = append(b.Data, p...)
}

// Release returns the buffer to its origin pool. The caller must not touch
// the buffer afterwards. Release on an already-pooled buffer corrupts the
// pool; the engine's ownership discipline (exactly one owner at all times)
// is what prevents that, and the pool's leak check verifies it in tests.
func (b *Buffer) Release() {
	b.pool.put(b)
}

// Pool is a bounded pool of fixed-size buffers. Acquire blocks when the pool
// is empty — this is the back-pressure mechanism the paper relies on to
// bound memory and avoid flooding ("back-pressure mechanisms were induced to
// avoid deadlocks"): requesters stall until in-flight buffers drain, while
// responders draw from a separate pool so they can always make progress.
type Pool struct {
	ch       chan *Buffer
	bufSize  int
	total    int
	acquired atomic.Int64
}

// NewPool creates a pool of count buffers of bufSize bytes each (including
// the HeaderSize header).
func NewPool(count, bufSize int) *Pool {
	if count < 1 {
		panic("comm: pool needs at least one buffer")
	}
	if bufSize < HeaderSize+8 {
		panic(fmt.Sprintf("comm: buffer size %d too small", bufSize))
	}
	p := &Pool{ch: make(chan *Buffer, count), bufSize: bufSize, total: count}
	for i := 0; i < count; i++ {
		p.ch <- &Buffer{Data: make([]byte, HeaderSize, bufSize), pool: p}
	}
	return p
}

// BufSize returns the configured per-buffer capacity.
func (p *Pool) BufSize() int { return p.bufSize }

// Acquire takes a buffer, blocking until one is available.
func (p *Pool) Acquire() *Buffer {
	b := <-p.ch
	p.acquired.Add(1)
	return b
}

// TryAcquire takes a buffer without blocking; ok is false when the pool is
// drained.
func (p *Pool) TryAcquire() (*Buffer, bool) {
	select {
	case b := <-p.ch:
		p.acquired.Add(1)
		return b, true
	default:
		return nil, false
	}
}

func (p *Pool) put(b *Buffer) {
	b.Data = b.Data[:HeaderSize]
	p.acquired.Add(-1)
	select {
	case p.ch <- b:
	default:
		panic("comm: pool overflow — buffer released twice or to wrong pool")
	}
}

// Outstanding returns how many buffers are currently checked out. Tests use
// this to verify the engine leaks nothing after each job.
func (p *Pool) Outstanding() int { return int(p.acquired.Load()) }

// C exposes the pool's free-buffer channel so callers can select between
// acquiring a buffer and other events (a worker stalled on back-pressure
// keeps draining its response queue this way). A caller that receives a
// buffer from C must immediately call NoteAcquired to keep the outstanding
// count accurate.
func (p *Pool) C() <-chan *Buffer { return p.ch }

// NoteAcquired records an acquisition performed by receiving directly from
// C. See C.
func (p *Pool) NoteAcquired() { p.acquired.Add(1) }
