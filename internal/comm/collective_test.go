package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/reduce"
)

// clusterHarness boots P routers + collectives over an in-proc fabric and
// runs fn as each machine's main goroutine.
func clusterHarness(t *testing.T, p int, fn func(m int, col *Collectives, r *Router)) {
	t.Helper()
	f := NewInProcFabric(p, 1024)
	var wg sync.WaitGroup
	routers := make([]*Router, p)
	for m := 0; m < p; m++ {
		ep, err := f.Endpoint(m)
		if err != nil {
			t.Fatal(err)
		}
		routers[m] = NewRouter(ep, RouterConfig{NumWorkers: 2, RespDepth: 64, ReqDepth: 64, CtrlDepth: 64})
		pool := NewPool(16, 8192)
		col := NewCollectives(ep, routers[m].Ctrl(), pool)
		wg.Add(1)
		go func(m int, col *Collectives, r *Router) {
			defer wg.Done()
			fn(m, col, r)
		}(m, col, routers[m])
	}
	wg.Wait()
	for _, r := range routers {
		r.Shutdown()
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 5
	const rounds = 20
	var phase atomic.Int64
	counts := make([]atomic.Int64, rounds)
	clusterHarness(t, p, func(m int, col *Collectives, r *Router) {
		for i := 0; i < rounds; i++ {
			counts[i].Add(1)
			if err := col.Barrier(); err != nil {
				t.Errorf("machine %d barrier %d: %v", m, i, err)
				return
			}
			// After the barrier, every machine must have entered round i.
			if got := counts[i].Load(); got != p {
				t.Errorf("machine %d after barrier %d: only %d arrivals", m, i, got)
				return
			}
			phase.Add(1)
		}
	})
	if phase.Load() != p*rounds {
		t.Errorf("phases completed = %d, want %d", phase.Load(), p*rounds)
	}
}

func TestBarrierSingleMachine(t *testing.T) {
	clusterHarness(t, 1, func(m int, col *Collectives, r *Router) {
		for i := 0; i < 3; i++ {
			if err := col.Barrier(); err != nil {
				t.Errorf("barrier: %v", err)
			}
		}
	})
}

func TestAllReduceF64(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			clusterHarness(t, p, func(m int, col *Collectives, r *Router) {
				vals := []float64{float64(m + 1), float64(m * m), 1}
				if err := col.AllReduceF64(vals, reduce.Sum); err != nil {
					t.Errorf("allreduce: %v", err)
					return
				}
				wantSum0 := float64(p*(p+1)) / 2
				var wantSum1 float64
				for i := 0; i < p; i++ {
					wantSum1 += float64(i * i)
				}
				if vals[0] != wantSum0 || vals[1] != wantSum1 || vals[2] != float64(p) {
					t.Errorf("machine %d got %v, want [%g %g %d]", m, vals, wantSum0, wantSum1, p)
				}
			})
		})
	}
}

func TestAllReduceI64MinMax(t *testing.T) {
	const p = 4
	clusterHarness(t, p, func(m int, col *Collectives, r *Router) {
		mins := []int64{int64(10 + m)}
		if err := col.AllReduceI64(mins, reduce.Min); err != nil {
			t.Errorf("%v", err)
			return
		}
		if mins[0] != 10 {
			t.Errorf("machine %d: min = %d, want 10", m, mins[0])
		}
		maxs := []int64{int64(10 + m)}
		if err := col.AllReduceI64(maxs, reduce.Max); err != nil {
			t.Errorf("%v", err)
			return
		}
		if maxs[0] != 10+p-1 {
			t.Errorf("machine %d: max = %d, want %d", m, maxs[0], 10+p-1)
		}
	})
}

func TestAllReduceConvenience(t *testing.T) {
	const p = 3
	clusterHarness(t, p, func(m int, col *Collectives, r *Router) {
		si, err := col.AllReduceSumI64(int64(m + 1))
		if err != nil || si != 6 {
			t.Errorf("machine %d: sum i64 = %d (%v), want 6", m, si, err)
		}
		sf, err := col.AllReduceSumF64(0.5)
		if err != nil || sf != 1.5 {
			t.Errorf("machine %d: sum f64 = %g (%v), want 1.5", m, sf, err)
		}
	})
}

func TestBroadcast(t *testing.T) {
	const p = 4
	payload := []byte("pivot table: 0,100,200,300")
	clusterHarness(t, p, func(m int, col *Collectives, r *Router) {
		var in []byte
		if m == 0 {
			in = payload
		}
		out, err := col.Broadcast(in)
		if err != nil {
			t.Errorf("machine %d: %v", m, err)
			return
		}
		if string(out) != string(payload) {
			t.Errorf("machine %d got %q", m, out)
		}
	})
}

// Mixed sequences of collectives must not cross-match frames even when some
// machines race ahead.
func TestCollectiveSequences(t *testing.T) {
	const p = 4
	clusterHarness(t, p, func(m int, col *Collectives, r *Router) {
		for i := 0; i < 10; i++ {
			v, err := col.AllReduceSumI64(1)
			if err != nil || v != p {
				t.Errorf("machine %d iter %d: %d (%v)", m, i, v, err)
				return
			}
			if err := col.Barrier(); err != nil {
				t.Errorf("machine %d iter %d barrier: %v", m, i, err)
				return
			}
			out, err := col.Broadcast([]byte{byte(i)})
			if err != nil || len(out) != 1 || out[0] != byte(i) {
				t.Errorf("machine %d iter %d bcast: %v %v", m, i, out, err)
				return
			}
		}
	})
}

func TestAllReduceTooLarge(t *testing.T) {
	f := NewInProcFabric(2, 16)
	ep0, _ := f.Endpoint(0)
	ep1, _ := f.Endpoint(1)
	r0 := NewRouter(ep0, RouterConfig{NumWorkers: 1})
	r1 := NewRouter(ep1, RouterConfig{NumWorkers: 1})
	pool0 := NewPool(4, 64)
	pool1 := NewPool(4, 64)
	col0 := NewCollectives(ep0, r0.Ctrl(), pool0)
	col1 := NewCollectives(ep1, r1.Ctrl(), pool1)
	errs := make(chan error, 2)
	go func() { errs <- col0.AllReduceF64(make([]float64, 100), reduce.Sum) }()
	go func() { errs <- col1.AllReduceF64(make([]float64, 100), reduce.Sum) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err == nil {
			t.Error("oversized allreduce accepted")
		}
	}
	r0.Shutdown()
	r1.Shutdown()
}

func TestRouterRoutesByType(t *testing.T) {
	f := NewInProcFabric(2, 64)
	ep0, _ := f.Endpoint(0)
	ep1, _ := f.Endpoint(1)
	router := NewRouter(ep1, RouterConfig{NumWorkers: 4, RespDepth: 8, ReqDepth: 8, CtrlDepth: 8})
	pool := NewPool(8, 1024)

	send := func(typ MsgType, worker uint8) {
		buf := pool.Acquire()
		buf.Reset(Header{Type: typ, Worker: worker, Src: 0})
		if err := ep0.Send(1, buf); err != nil {
			t.Fatal(err)
		}
	}
	send(MsgReadReq, 0)
	send(MsgWriteReq, 1)
	send(MsgRMIReq, 2)
	send(MsgReadResp, 2)
	send(MsgRMIResp, 3)
	send(MsgReadResp, CtrlWorker)
	send(MsgCtrl, 0)

	for i := 0; i < 3; i++ {
		buf := <-router.ReqQueue()
		typ := buf.Header().Type
		if typ != MsgReadReq && typ != MsgWriteReq && typ != MsgRMIReq {
			t.Errorf("req queue got %v", typ)
		}
		buf.Release()
	}
	if buf := <-router.WorkerResp(2); buf.Header().Type != MsgReadResp {
		t.Error("worker 2 queue got wrong frame")
	} else {
		buf.Release()
	}
	if buf := <-router.WorkerResp(3); buf.Header().Type != MsgRMIResp {
		t.Error("worker 3 queue got wrong frame")
	} else {
		buf.Release()
	}
	for i := 0; i < 2; i++ {
		buf := <-router.Ctrl()
		h := buf.Header()
		if h.Type != MsgCtrl && !(h.Type == MsgReadResp && h.Worker == CtrlWorker) {
			t.Errorf("ctrl queue got %+v", h)
		}
		buf.Release()
	}
	router.Shutdown()
	ep0.Close()
	if pool.Outstanding() != 0 {
		t.Errorf("outstanding buffers: %d", pool.Outstanding())
	}
}

func TestRouterShutdownDrains(t *testing.T) {
	f := NewInProcFabric(2, 64)
	ep0, _ := f.Endpoint(0)
	ep1, _ := f.Endpoint(1)
	router := NewRouter(ep1, RouterConfig{NumWorkers: 1, RespDepth: 32, ReqDepth: 32, CtrlDepth: 32})
	pool := NewPool(16, 1024)
	for i := 0; i < 10; i++ {
		buf := pool.Acquire()
		buf.Reset(Header{Type: MsgWriteReq, Src: 0})
		if err := ep0.Send(1, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Give the poller a chance to route some frames; Shutdown must release
	// everything regardless.
	router.Shutdown()
	ep0.Close()
	if pool.Outstanding() != 0 {
		t.Errorf("outstanding buffers after shutdown: %d", pool.Outstanding())
	}
}

func TestRMIRegistry(t *testing.T) {
	var reg RMIRegistry
	double := reg.Register(func(src int, payload []byte) []byte {
		out := make([]byte, len(payload))
		for i, b := range payload {
			out[i] = b * 2
		}
		return out
	})
	oneWay := reg.Register(func(src int, payload []byte) []byte { return nil })
	if reg.NumMethods() != 2 {
		t.Fatalf("NumMethods = %d", reg.NumMethods())
	}
	out, err := reg.Dispatch(double, 1, []byte{1, 2, 3})
	if err != nil || len(out) != 3 || out[2] != 6 {
		t.Errorf("dispatch double: %v %v", out, err)
	}
	out, err = reg.Dispatch(oneWay, 0, nil)
	if err != nil || out != nil {
		t.Errorf("dispatch one-way: %v %v", out, err)
	}
	if _, err := reg.Dispatch(99, 0, nil); err == nil {
		t.Error("unknown method accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("nil handler accepted")
		}
	}()
	reg.Register(nil)
}
