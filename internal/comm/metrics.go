package comm

import (
	"fmt"
	"sync/atomic"
)

type direction int

const (
	dirSent direction = iota
	dirRecv
)

// Metrics accumulates per-endpoint traffic counters, split by message type.
// Figure 6a (traffic reduction from ghosting) and the Figure 8 bandwidth
// studies read these. All counters are atomic: many goroutines send
// concurrently.
type Metrics struct {
	framesSent atomic.Int64
	bytesSent  atomic.Int64
	framesRecv atomic.Int64
	bytesRecv  atomic.Int64

	// Per-type byte counts (indexed by MsgType) for sent frames.
	sentByType [7]atomic.Int64

	// Read-combining counters (engine-fed): a hit is a read record the
	// requester elided because the same (prop, offset) was already buffered
	// in the open message window; bytes saved count both the elided request
	// record and the elided response word.
	dedupHits       atomic.Int64
	dedupMisses     atomic.Int64
	dedupBytesSaved atomic.Int64

	// Wire-compression counters (engine-fed): raw is the fixed-width payload
	// size a batch would have shipped, wire is what actually went out after
	// the sorted delta-varint encoding (equal when a batch fell back to raw).
	compressRawBytes  atomic.Int64
	compressWireBytes atomic.Int64

	// Write-combining counters (engine-fed): a sender-side hit is a remote
	// write merged into an already-buffered record for the same
	// (prop, op, offset); receiver-side combines are duplicate records in one
	// sorted compressed batch merged before the column apply.
	writeCombineHits       atomic.Int64
	writeCombineSavedBytes atomic.Int64
	recvWritesCombined     atomic.Int64

	// Transport error counters: failed socket writes and corrupt/truncated
	// inbound frames (a poisoned stream is diagnosable, not a silent hang).
	sendErrors atomic.Int64
	recvErrors atomic.Int64
}

func (m *Metrics) record(b *Buffer, d direction) {
	m.recordRaw(len(b.Data), MsgType(b.Data[0]), d)
}

func (m *Metrics) recordRaw(n int, t MsgType, d direction) {
	switch d {
	case dirSent:
		m.framesSent.Add(1)
		m.bytesSent.Add(int64(n))
		if int(t) < len(m.sentByType) {
			m.sentByType[t].Add(int64(n))
		}
	case dirRecv:
		m.framesRecv.Add(1)
		m.bytesRecv.Add(int64(n))
	}
}

// FramesSent returns the number of frames sent.
func (m *Metrics) FramesSent() int64 { return m.framesSent.Load() }

// BytesSent returns the number of bytes sent (headers included).
func (m *Metrics) BytesSent() int64 { return m.bytesSent.Load() }

// FramesRecv returns the number of frames received.
func (m *Metrics) FramesRecv() int64 { return m.framesRecv.Load() }

// BytesRecv returns the number of bytes received.
func (m *Metrics) BytesRecv() int64 { return m.bytesRecv.Load() }

// BytesSentByType returns the bytes sent with the given message type.
func (m *Metrics) BytesSentByType(t MsgType) int64 {
	if int(t) >= len(m.sentByType) {
		return 0
	}
	return m.sentByType[t].Load()
}

// DataBytesSent returns bytes sent excluding control traffic — the traffic
// measure Figure 6a plots (ghosting reduces data traffic; barrier chatter is
// constant).
func (m *Metrics) DataBytesSent() int64 {
	return m.BytesSent() - m.BytesSentByType(MsgCtrl) - m.BytesSentByType(MsgAbort)
}

// RecordReadDedup folds one job's read-combining counters in: hits are
// duplicate reads served from the in-flight message window, misses are
// records that actually went on the wire, saved is the byte traffic elided.
func (m *Metrics) RecordReadDedup(hits, misses, saved int64) {
	m.dedupHits.Add(hits)
	m.dedupMisses.Add(misses)
	m.dedupBytesSaved.Add(saved)
}

// ReadDedupHits returns how many read records were combined away.
func (m *Metrics) ReadDedupHits() int64 { return m.dedupHits.Load() }

// ReadDedupMisses returns how many read records were actually buffered.
func (m *Metrics) ReadDedupMisses() int64 { return m.dedupMisses.Load() }

// ReadDedupBytesSaved returns request+response bytes elided by combining.
func (m *Metrics) ReadDedupBytesSaved() int64 { return m.dedupBytesSaved.Load() }

// ReadDedupHitRate returns hits/(hits+misses), or 0 with no reads.
func (m *Metrics) ReadDedupHitRate() float64 {
	h, s := m.dedupHits.Load(), m.dedupMisses.Load()
	if h+s == 0 {
		return 0
	}
	return float64(h) / float64(h+s)
}

// RecordCompression folds one batch's wire-compression effect in: raw is
// the fixed-width payload size, wire the bytes actually sent.
func (m *Metrics) RecordCompression(raw, wire int64) {
	m.compressRawBytes.Add(raw)
	m.compressWireBytes.Add(wire)
}

// CompressRawBytes returns the fixed-width size of all compression-eligible
// payloads.
func (m *Metrics) CompressRawBytes() int64 { return m.compressRawBytes.Load() }

// CompressWireBytes returns the bytes those payloads actually occupied.
func (m *Metrics) CompressWireBytes() int64 { return m.compressWireBytes.Load() }

// RecordWriteCombine folds one job's sender-side write combining in: hits
// are remote writes merged into an already-buffered record, saved the
// request bytes those records would have occupied.
func (m *Metrics) RecordWriteCombine(hits, saved int64) {
	m.writeCombineHits.Add(hits)
	m.writeCombineSavedBytes.Add(saved)
}

// WriteCombineHits returns how many remote writes were merged sender-side.
func (m *Metrics) WriteCombineHits() int64 { return m.writeCombineHits.Load() }

// WriteCombineSavedBytes returns request bytes elided by sender-side write
// combining.
func (m *Metrics) WriteCombineSavedBytes() int64 { return m.writeCombineSavedBytes.Load() }

// RecordRecvCombine counts n duplicate write records merged receiver-side
// within one sorted compressed batch.
func (m *Metrics) RecordRecvCombine(n int64) { m.recvWritesCombined.Add(n) }

// RecvWritesCombined returns how many write records were merged receiver-side.
func (m *Metrics) RecvWritesCombined() int64 { return m.recvWritesCombined.Load() }

// RecordSendError counts one failed socket write.
func (m *Metrics) RecordSendError() { m.sendErrors.Add(1) }

// SendErrors returns how many sends failed at the transport.
func (m *Metrics) SendErrors() int64 { return m.sendErrors.Load() }

// RecordRecvError counts one corrupt or truncated inbound frame.
func (m *Metrics) RecordRecvError() { m.recvErrors.Add(1) }

// RecvErrors returns how many inbound frames were rejected.
func (m *Metrics) RecvErrors() int64 { return m.recvErrors.Load() }

// Snapshot is a point-in-time copy of the counters, safe to subtract.
type Snapshot struct {
	FramesSent, BytesSent int64
	FramesRecv, BytesRecv int64
	DataBytesSent         int64

	// Read-path traffic split and combining effect.
	ReadReqBytes, ReadRespBytes int64
	DedupHits, DedupMisses      int64
	DedupBytesSaved             int64

	// Wire compression: fixed-width size vs. bytes actually sent.
	CompressRawBytes, CompressWireBytes int64

	// Write combining: sender-side merges (and bytes they saved) plus
	// receiver-side merges within sorted compressed batches.
	WriteCombineHits, WriteCombineSavedBytes int64
	RecvWritesCombined                       int64

	// Transport errors.
	SendErrors, RecvErrors int64
}

// Snapshot captures current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		FramesSent:             m.FramesSent(),
		BytesSent:              m.BytesSent(),
		FramesRecv:             m.FramesRecv(),
		BytesRecv:              m.BytesRecv(),
		DataBytesSent:          m.DataBytesSent(),
		ReadReqBytes:           m.BytesSentByType(MsgReadReq),
		ReadRespBytes:          m.BytesSentByType(MsgReadResp),
		DedupHits:              m.ReadDedupHits(),
		DedupMisses:            m.ReadDedupMisses(),
		DedupBytesSaved:        m.ReadDedupBytesSaved(),
		CompressRawBytes:       m.CompressRawBytes(),
		CompressWireBytes:      m.CompressWireBytes(),
		WriteCombineHits:       m.WriteCombineHits(),
		WriteCombineSavedBytes: m.WriteCombineSavedBytes(),
		RecvWritesCombined:     m.RecvWritesCombined(),
		SendErrors:             m.SendErrors(),
		RecvErrors:             m.RecvErrors(),
	}
}

// CompressionRatio returns wire/raw over compression-eligible payloads — 1.0
// means compression never engaged (or never paid), lower is better.
func (s Snapshot) CompressionRatio() float64 {
	if s.CompressRawBytes == 0 {
		return 1
	}
	return float64(s.CompressWireBytes) / float64(s.CompressRawBytes)
}

// CompressSavedBytes returns the wire bytes elided by compression.
func (s Snapshot) CompressSavedBytes() int64 {
	return s.CompressRawBytes - s.CompressWireBytes
}

// DedupHitRate returns the snapshot's combining hit rate in [0,1].
func (s Snapshot) DedupHitRate() float64 {
	if s.DedupHits+s.DedupMisses == 0 {
		return 0
	}
	return float64(s.DedupHits) / float64(s.DedupHits+s.DedupMisses)
}

// Sub returns s - o component-wise.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		FramesSent:             s.FramesSent - o.FramesSent,
		BytesSent:              s.BytesSent - o.BytesSent,
		FramesRecv:             s.FramesRecv - o.FramesRecv,
		BytesRecv:              s.BytesRecv - o.BytesRecv,
		DataBytesSent:          s.DataBytesSent - o.DataBytesSent,
		ReadReqBytes:           s.ReadReqBytes - o.ReadReqBytes,
		ReadRespBytes:          s.ReadRespBytes - o.ReadRespBytes,
		DedupHits:              s.DedupHits - o.DedupHits,
		DedupMisses:            s.DedupMisses - o.DedupMisses,
		DedupBytesSaved:        s.DedupBytesSaved - o.DedupBytesSaved,
		CompressRawBytes:       s.CompressRawBytes - o.CompressRawBytes,
		CompressWireBytes:      s.CompressWireBytes - o.CompressWireBytes,
		WriteCombineHits:       s.WriteCombineHits - o.WriteCombineHits,
		WriteCombineSavedBytes: s.WriteCombineSavedBytes - o.WriteCombineSavedBytes,
		RecvWritesCombined:     s.RecvWritesCombined - o.RecvWritesCombined,
		SendErrors:             s.SendErrors - o.SendErrors,
		RecvErrors:             s.RecvErrors - o.RecvErrors,
	}
}

// Add returns s + o component-wise.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		FramesSent:             s.FramesSent + o.FramesSent,
		BytesSent:              s.BytesSent + o.BytesSent,
		FramesRecv:             s.FramesRecv + o.FramesRecv,
		BytesRecv:              s.BytesRecv + o.BytesRecv,
		DataBytesSent:          s.DataBytesSent + o.DataBytesSent,
		ReadReqBytes:           s.ReadReqBytes + o.ReadReqBytes,
		ReadRespBytes:          s.ReadRespBytes + o.ReadRespBytes,
		DedupHits:              s.DedupHits + o.DedupHits,
		DedupMisses:            s.DedupMisses + o.DedupMisses,
		DedupBytesSaved:        s.DedupBytesSaved + o.DedupBytesSaved,
		CompressRawBytes:       s.CompressRawBytes + o.CompressRawBytes,
		CompressWireBytes:      s.CompressWireBytes + o.CompressWireBytes,
		WriteCombineHits:       s.WriteCombineHits + o.WriteCombineHits,
		WriteCombineSavedBytes: s.WriteCombineSavedBytes + o.WriteCombineSavedBytes,
		RecvWritesCombined:     s.RecvWritesCombined + o.RecvWritesCombined,
		SendErrors:             s.SendErrors + o.SendErrors,
		RecvErrors:             s.RecvErrors + o.RecvErrors,
	}
}

// String renders the snapshot for harness output.
func (s Snapshot) String() string {
	out := fmt.Sprintf("sent=%d frames/%d B recv=%d frames/%d B data=%d B",
		s.FramesSent, s.BytesSent, s.FramesRecv, s.BytesRecv, s.DataBytesSent)
	if s.DedupHits+s.DedupMisses > 0 {
		out += fmt.Sprintf(" dedup=%.1f%% (%d B saved)", 100*s.DedupHitRate(), s.DedupBytesSaved)
	}
	if s.CompressRawBytes > 0 {
		out += fmt.Sprintf(" compress=%.2f (%d B saved)", s.CompressionRatio(), s.CompressSavedBytes())
	}
	if s.WriteCombineHits+s.RecvWritesCombined > 0 {
		out += fmt.Sprintf(" wcombine=%d send (%d B saved)/%d recv",
			s.WriteCombineHits, s.WriteCombineSavedBytes, s.RecvWritesCombined)
	}
	if s.SendErrors+s.RecvErrors > 0 {
		out += fmt.Sprintf(" errors=%d send/%d recv", s.SendErrors, s.RecvErrors)
	}
	return out
}
