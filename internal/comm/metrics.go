package comm

import (
	"fmt"
	"sync/atomic"
)

type direction int

const (
	dirSent direction = iota
	dirRecv
)

// Metrics accumulates per-endpoint traffic counters, split by message type.
// Figure 6a (traffic reduction from ghosting) and the Figure 8 bandwidth
// studies read these. All counters are atomic: many goroutines send
// concurrently.
type Metrics struct {
	framesSent atomic.Int64
	bytesSent  atomic.Int64
	framesRecv atomic.Int64
	bytesRecv  atomic.Int64

	// Per-type byte counts (indexed by MsgType) for sent frames.
	sentByType [6]atomic.Int64
}

func (m *Metrics) record(b *Buffer, d direction) {
	m.recordRaw(len(b.Data), MsgType(b.Data[0]), d)
}

func (m *Metrics) recordRaw(n int, t MsgType, d direction) {
	switch d {
	case dirSent:
		m.framesSent.Add(1)
		m.bytesSent.Add(int64(n))
		if int(t) < len(m.sentByType) {
			m.sentByType[t].Add(int64(n))
		}
	case dirRecv:
		m.framesRecv.Add(1)
		m.bytesRecv.Add(int64(n))
	}
}

// FramesSent returns the number of frames sent.
func (m *Metrics) FramesSent() int64 { return m.framesSent.Load() }

// BytesSent returns the number of bytes sent (headers included).
func (m *Metrics) BytesSent() int64 { return m.bytesSent.Load() }

// FramesRecv returns the number of frames received.
func (m *Metrics) FramesRecv() int64 { return m.framesRecv.Load() }

// BytesRecv returns the number of bytes received.
func (m *Metrics) BytesRecv() int64 { return m.bytesRecv.Load() }

// BytesSentByType returns the bytes sent with the given message type.
func (m *Metrics) BytesSentByType(t MsgType) int64 {
	if int(t) >= len(m.sentByType) {
		return 0
	}
	return m.sentByType[t].Load()
}

// DataBytesSent returns bytes sent excluding control traffic — the traffic
// measure Figure 6a plots (ghosting reduces data traffic; barrier chatter is
// constant).
func (m *Metrics) DataBytesSent() int64 {
	return m.BytesSent() - m.BytesSentByType(MsgCtrl)
}

// Snapshot is a point-in-time copy of the counters, safe to subtract.
type Snapshot struct {
	FramesSent, BytesSent int64
	FramesRecv, BytesRecv int64
	DataBytesSent         int64
}

// Snapshot captures current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		FramesSent:    m.FramesSent(),
		BytesSent:     m.BytesSent(),
		FramesRecv:    m.FramesRecv(),
		BytesRecv:     m.BytesRecv(),
		DataBytesSent: m.DataBytesSent(),
	}
}

// Sub returns s - o component-wise.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		FramesSent:    s.FramesSent - o.FramesSent,
		BytesSent:     s.BytesSent - o.BytesSent,
		FramesRecv:    s.FramesRecv - o.FramesRecv,
		BytesRecv:     s.BytesRecv - o.BytesRecv,
		DataBytesSent: s.DataBytesSent - o.DataBytesSent,
	}
}

// Add returns s + o component-wise.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		FramesSent:    s.FramesSent + o.FramesSent,
		BytesSent:     s.BytesSent + o.BytesSent,
		FramesRecv:    s.FramesRecv + o.FramesRecv,
		BytesRecv:     s.BytesRecv + o.BytesRecv,
		DataBytesSent: s.DataBytesSent + o.DataBytesSent,
	}
}

// String renders the snapshot for harness output.
func (s Snapshot) String() string {
	return fmt.Sprintf("sent=%d frames/%d B recv=%d frames/%d B data=%d B",
		s.FramesSent, s.BytesSent, s.FramesRecv, s.BytesRecv, s.DataBytesSent)
}
