package comm

import (
	"fmt"
	"sync"
)

// Endpoint is one machine's attachment to the interconnection fabric.
// Send transfers buffer ownership to the fabric unconditionally: on success
// the eventual consumer releases the buffer, on failure the transport does —
// callers never touch a buffer after Send. Recv blocks for the next inbound
// frame. Implementations are safe for concurrent Send from many goroutines;
// Recv is called only by the machine's poller goroutine.
//
// The paper's engine "does not exploit any special features (e.g. RDMA)" of
// its InfiniBand fabric, which is precisely what makes transports swappable
// here: the engine code paths are identical over channels and TCP.
type Endpoint interface {
	// Machine returns this endpoint's machine id in [0, NumMachines).
	Machine() int
	// NumMachines returns the cluster size.
	NumMachines() int
	// Send delivers buf to machine dst. Ownership of buf transfers; the
	// receiver (or the transport, for wire transports) releases it.
	// Sending to the local machine is allowed and loops back.
	Send(dst int, buf *Buffer) error
	// Recv returns the next inbound frame, blocking until one arrives.
	// ok is false after Close, once the inbox is drained.
	Recv() (*Buffer, bool)
	// Close detaches the endpoint. In-flight frames may still be received.
	Close() error
	// Metrics returns cumulative traffic counters for this endpoint.
	Metrics() *Metrics
}

// Fabric creates the endpoints of a simulated cluster. All endpoints must be
// obtained before any traffic flows.
type Fabric interface {
	// Endpoint returns machine m's endpoint. Each machine's endpoint must be
	// requested exactly once.
	Endpoint(m int) (Endpoint, error)
	// Close tears down the fabric after all endpoints are closed.
	Close() error
}

// ---------------------------------------------------------------------------
// In-process fabric: channels as wires.

// InProcFabric connects P in-process machines with buffered channels. A sent
// buffer is handed to the destination inbox without copying; the receiver
// releases it back to the sender's pool. This is the default transport for
// tests and benchmarks: it preserves the engine's batching/back-pressure
// behaviour while making runs deterministic and allocation-free on the wire.
type InProcFabric struct {
	inboxes []chan *Buffer
	taken   []bool
	mu      sync.Mutex
	closed  bool
}

// NewInProcFabric creates a fabric for p machines whose per-machine inboxes
// hold up to inboxDepth frames. A deeper inbox decouples sender and receiver
// more (more frames in flight) at the cost of memory; back-pressure comes
// from the bounded buffer pools, not the inbox, so the depth only needs to
// exceed the total pooled buffer count to never block senders artificially.
func NewInProcFabric(p int, inboxDepth int) *InProcFabric {
	if p < 1 {
		panic("comm: fabric needs at least one machine")
	}
	if inboxDepth < 1 {
		inboxDepth = 1
	}
	f := &InProcFabric{
		inboxes: make([]chan *Buffer, p),
		taken:   make([]bool, p),
	}
	for i := range f.inboxes {
		f.inboxes[i] = make(chan *Buffer, inboxDepth)
	}
	return f
}

// Endpoint implements Fabric.
func (f *InProcFabric) Endpoint(m int) (Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m < 0 || m >= len(f.inboxes) {
		return nil, fmt.Errorf("comm: machine %d out of range [0,%d)", m, len(f.inboxes))
	}
	if f.taken[m] {
		return nil, fmt.Errorf("comm: endpoint %d already taken", m)
	}
	f.taken[m] = true
	return &inProcEndpoint{fabric: f, machine: m}, nil
}

// Close implements Fabric. In-proc teardown is per-endpoint; Close is a
// no-op provided for interface symmetry with wire transports.
func (f *InProcFabric) Close() error { return nil }

// InMemory marks this fabric as delivering frames by reference: a sent
// buffer is handed to the destination inbox without serialization, so frame
// size costs nothing here.
func (f *InProcFabric) InMemory() bool { return true }

// InMemoryFabric reports whether f hands frames to receivers by reference
// within one process. The engine gates wire compression on this: shrinking
// a buffer nobody serializes is pure CPU loss, while on a wire transport the
// bytes saved are bandwidth gained. Wrappers (fault injectors) forward the
// answer of the fabric they wrap; unknown fabrics count as real wires.
func InMemoryFabric(f Fabric) bool {
	im, ok := f.(interface{ InMemory() bool })
	return ok && im.InMemory()
}

type inProcEndpoint struct {
	fabric  *InProcFabric
	machine int
	metrics Metrics
	mu      sync.Mutex
	closed  bool
}

func (e *inProcEndpoint) Machine() int     { return e.machine }
func (e *inProcEndpoint) NumMachines() int { return len(e.fabric.inboxes) }
func (e *inProcEndpoint) Metrics() *Metrics {
	return &e.metrics
}

func (e *inProcEndpoint) Send(dst int, buf *Buffer) (err error) {
	if dst < 0 || dst >= len(e.fabric.inboxes) {
		buf.Release()
		return fmt.Errorf("comm: send to machine %d out of range", dst)
	}
	defer func() {
		// A send on a closed inbox channel panics; the frame was not
		// delivered, so reclaim it and report an error — shutdown races
		// surface cleanly instead of crashing the process or leaking.
		if recover() != nil {
			buf.Release()
			err = fmt.Errorf("comm: machine %d inbox closed", dst)
		}
	}()
	// Capture size and type before the send: ownership transfers on channel
	// delivery and the receiver may mutate the buffer concurrently.
	n, t := len(buf.Data), MsgType(buf.Data[0])
	e.fabric.inboxes[dst] <- buf
	e.metrics.recordRaw(n, t, dirSent)
	return nil
}

func (e *inProcEndpoint) Recv() (*Buffer, bool) {
	buf, ok := <-e.fabric.inboxes[e.machine]
	if !ok {
		return nil, false
	}
	e.metrics.record(buf, dirRecv)
	return buf, true
}

func (e *inProcEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.fabric.inboxes[e.machine])
	return nil
}
