package comm

import (
	"strings"
	"testing"
	"time"

	"repro/internal/reduce"
)

// bootFaultPair wires a 2-machine in-process fabric through a FaultInjector
// and returns the injector plus both (wrapped) endpoints.
func bootFaultPair(t *testing.T, plan FaultPlan) (*FaultInjector, []Endpoint) {
	t.Helper()
	inj := NewFaultInjector(NewInProcFabric(2, 64), plan)
	eps := make([]Endpoint, 2)
	for m := range eps {
		ep, err := inj.Endpoint(m)
		if err != nil {
			t.Fatal(err)
		}
		eps[m] = ep
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
		inj.Close()
	})
	return inj, eps
}

// TestFaultRuleCounters pins the After/Every/Limit trigger semantics: rules
// count matching frames per (src,dst) stream and fire on exact ordinals.
func TestFaultRuleCounters(t *testing.T) {
	cases := []struct {
		name string
		rule FaultRule
		want []int // ordinals (0-based) the rule must fire on, within 10 frames
	}{
		{"after-only fires once", FaultRule{After: 3}, []int{3}},
		{"every without after", FaultRule{Every: 4}, []int{0, 4, 8}},
		{"after plus every", FaultRule{After: 2, Every: 3}, []int{2, 5, 8}},
		{"limit caps applications", FaultRule{Every: 2, Limit: 2}, []int{0, 2}},
		{"every=1 fires on all", FaultRule{After: 7, Every: 1}, []int{7, 8, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.rule
			r.Src, r.Dst, r.Type = AnyMachine, AnyMachine, AnyType
			r.Kind = FaultDrop
			inj := NewFaultInjector(NewInProcFabric(2, 4), FaultPlan{Seed: 1, Rules: []FaultRule{r}})
			defer inj.Close()
			var fired []int
			for ord := 0; ord < 10; ord++ {
				if inj.decide(0, 1, MsgReadReq) != nil {
					fired = append(fired, ord)
				}
			}
			if len(fired) != len(tc.want) {
				t.Fatalf("fired on %v, want %v", fired, tc.want)
			}
			for i := range fired {
				if fired[i] != tc.want[i] {
					t.Fatalf("fired on %v, want %v", fired, tc.want)
				}
			}
			// A distinct (src,dst) stream has independent counters.
			if tc.rule.After > 0 && inj.decide(1, 0, MsgReadReq) != nil {
				t.Error("fresh (src,dst) stream inherited another stream's ordinal")
			}
		})
	}
}

// TestFaultRuleMatching: Src/Dst/Type restrict a rule; wildcards do not.
func TestFaultRuleMatching(t *testing.T) {
	r := FaultRule{Src: 0, Dst: 2, Type: int(MsgReadResp)}
	if !r.matches(0, 2, MsgReadResp) {
		t.Error("exact triple did not match")
	}
	for _, bad := range [][3]int{{1, 2, int(MsgReadResp)}, {0, 1, int(MsgReadResp)}, {0, 2, int(MsgWriteReq)}} {
		if r.matches(bad[0], bad[1], MsgType(bad[2])) {
			t.Errorf("mismatched triple %v matched", bad)
		}
	}
	wild := FaultRule{Src: AnyMachine, Dst: AnyMachine, Type: AnyType}
	if !wild.matches(3, 7, MsgRMIReq) {
		t.Error("wildcard rule did not match")
	}
}

// TestFaultProbDeterminism: probabilistic rules draw from a per-(rule,src,dst)
// RNG seeded by the plan, so identical plans fault identical frame ordinals.
func TestFaultProbDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, Rules: []FaultRule{
		{Src: AnyMachine, Dst: AnyMachine, Type: AnyType, Kind: FaultDrop, Prob: 0.5},
	}}
	pattern := func(seed int64) []bool {
		p := plan
		p.Seed = seed
		inj := NewFaultInjector(NewInProcFabric(2, 4), p)
		defer inj.Close()
		out := make([]bool, 200)
		for i := range out {
			out[i] = inj.decide(0, 1, MsgReadReq) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at ordinal %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times; RNG not engaged", hits, len(a))
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault patterns")
	}
}

// sendFrame builds and sends one frame of the given type; the aux value tags
// it so receivers can identify which frames survived.
func sendFrame(t *testing.T, ep Endpoint, pool *Pool, dst int, typ MsgType, aux uint64) error {
	t.Helper()
	buf := pool.Acquire()
	buf.Reset(Header{Type: typ, Src: uint16(ep.Machine()), Aux: aux})
	buf.AppendU64(aux)
	return ep.Send(dst, buf)
}

// TestFaultDropOwnership: a dropped frame reports success, never arrives, and
// its buffer returns to the pool — the lossy-wire illusion with balanced
// accounting.
func TestFaultDropOwnership(t *testing.T) {
	inj, eps := bootFaultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Src: AnyMachine, Dst: AnyMachine, Type: int(MsgReadReq), Kind: FaultDrop, Limit: 1},
	}})
	pool := NewPool(4, 1024)
	if err := sendFrame(t, eps[0], pool, 1, MsgReadReq, 100); err != nil {
		t.Fatalf("dropped send reported failure: %v", err)
	}
	// The probe is a different type (unmatched) and must arrive first — proof
	// the previous frame was consumed by the injector, not delayed.
	if err := sendFrame(t, eps[0], pool, 1, MsgWriteReq, 101); err != nil {
		t.Fatal(err)
	}
	got, ok := eps[1].Recv()
	if !ok || got.Header().Aux != 101 {
		t.Fatalf("probe frame not first: ok=%v aux=%d", ok, got.Header().Aux)
	}
	got.Release()
	if st := inj.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
	if pool.Outstanding() != 0 {
		t.Errorf("dropped frame leaked: Outstanding = %d", pool.Outstanding())
	}
}

// TestFaultFailOwnership: a hard-failed send returns an error and releases
// the frame before Send returns (the transport ownership contract).
func TestFaultFailOwnership(t *testing.T) {
	inj, eps := bootFaultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Src: 0, Dst: 1, Type: AnyType, Kind: FaultFail, Limit: 1},
	}})
	pool := NewPool(2, 1024)
	err := sendFrame(t, eps[0], pool, 1, MsgReadReq, 7)
	if err == nil {
		t.Fatal("FaultFail send succeeded")
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Errorf("error %q does not identify the injection", err)
	}
	if pool.Outstanding() != 0 {
		t.Errorf("failed frame leaked: Outstanding = %d", pool.Outstanding())
	}
	if st := inj.Stats(); st.Failed != 1 {
		t.Errorf("Failed = %d, want 1", st.Failed)
	}
	// Limit reached: the next send passes through.
	if err := sendFrame(t, eps[0], pool, 1, MsgReadReq, 8); err != nil {
		t.Fatalf("send after Limit still failing: %v", err)
	}
	got, _ := eps[1].Recv()
	got.Release()
}

// TestFaultTruncateClamps: truncation keeps at least the header (so the
// fault lands in payload validation, not framing) and leaves frames already
// shorter than the target untouched.
func TestFaultTruncateClamps(t *testing.T) {
	inj, eps := bootFaultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Src: AnyMachine, Dst: AnyMachine, Type: int(MsgReadResp), Kind: FaultTruncate, Every: 1, TruncateTo: 0},
	}})
	pool := NewPool(4, 1024)
	if err := sendFrame(t, eps[0], pool, 1, MsgReadResp, 5); err != nil {
		t.Fatal(err)
	}
	got, ok := eps[1].Recv()
	if !ok {
		t.Fatal("truncated frame not delivered")
	}
	if len(got.Data) != HeaderSize {
		t.Errorf("truncated to %d bytes, want clamp at HeaderSize=%d", len(got.Data), HeaderSize)
	}
	if got.Header().Aux != 5 {
		t.Errorf("header damaged by truncation: %+v", got.Header())
	}
	if len(got.Payload()) != 0 {
		t.Errorf("payload survived truncation: %d bytes", len(got.Payload()))
	}
	got.Release()
	if st := inj.Stats(); st.Truncated != 1 {
		t.Errorf("Truncated = %d, want 1", st.Truncated)
	}
	// A header-only frame cannot shrink further: forwarded intact, not counted.
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgReadResp, Src: 0, Aux: 6})
	if err := eps[0].Send(1, buf); err != nil {
		t.Fatal(err)
	}
	got, _ = eps[1].Recv()
	got.Release()
	if st := inj.Stats(); st.Truncated != 1 {
		t.Errorf("header-only frame counted as truncated: %d", st.Truncated)
	}
}

// TestFaultDelayDelivers: delayed frames arrive late but intact.
func TestFaultDelayDelivers(t *testing.T) {
	inj, eps := bootFaultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Src: AnyMachine, Dst: AnyMachine, Type: AnyType, Kind: FaultDelay, Every: 1, Delay: 5 * time.Millisecond},
	}})
	pool := NewPool(2, 1024)
	start := time.Now()
	if err := sendFrame(t, eps[0], pool, 1, MsgCtrl, 9); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("send returned after %v, delay not applied", d)
	}
	got, ok := eps[1].Recv()
	if !ok || got.Header().Aux != 9 {
		t.Fatalf("delayed frame lost: ok=%v", ok)
	}
	got.Release()
	if st := inj.Stats(); st.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", st.Delayed)
	}
}

// TestFaultKillSemantics: a killed machine's sends fail hard; frames toward
// it are blackholed (success + release) so peers only notice via timeouts.
func TestFaultKillSemantics(t *testing.T) {
	inj, eps := bootFaultPair(t, FaultPlan{Seed: 1})
	pool := NewPool(4, 1024)
	if !inj.Alive(1) {
		t.Fatal("machine 1 dead before Kill")
	}
	inj.Kill(1)
	inj.Kill(1) // idempotent
	if inj.Alive(1) || !inj.Alive(0) {
		t.Fatalf("liveness wrong after Kill: alive(0)=%v alive(1)=%v", inj.Alive(0), inj.Alive(1))
	}
	if st := inj.Stats(); st.Kills != 1 {
		t.Errorf("Kills = %d, want 1 (idempotent)", st.Kills)
	}
	if err := sendFrame(t, eps[1], pool, 0, MsgCtrl, 1); err == nil {
		t.Error("send from killed machine succeeded")
	}
	if err := sendFrame(t, eps[0], pool, 1, MsgCtrl, 2); err != nil {
		t.Errorf("send toward killed machine errored (must blackhole): %v", err)
	}
	if pool.Outstanding() != 0 {
		t.Errorf("kill paths leaked buffers: Outstanding = %d", pool.Outstanding())
	}
	st := inj.Stats()
	if st.Failed != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v, want Failed=1 Dropped=1", st)
	}
}

// TestFaultKillRuleFires: a FaultKill rule marks the source dead at its
// trigger ordinal; the send that trips it fails, and all later sends fail.
func TestFaultKillRuleFires(t *testing.T) {
	inj, eps := bootFaultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Src: 1, Dst: AnyMachine, Type: AnyType, Kind: FaultKill, After: 2},
	}})
	pool := NewPool(4, 1024)
	for i := 0; i < 2; i++ {
		if err := sendFrame(t, eps[1], pool, 0, MsgCtrl, uint64(i)); err != nil {
			t.Fatalf("send %d before kill ordinal failed: %v", i, err)
		}
		got, _ := eps[0].Recv()
		got.Release()
	}
	if err := sendFrame(t, eps[1], pool, 0, MsgCtrl, 2); err == nil {
		t.Fatal("send at kill ordinal succeeded")
	}
	if inj.Alive(1) {
		t.Error("machine 1 alive after kill rule fired")
	}
	if err := sendFrame(t, eps[1], pool, 0, MsgCtrl, 3); err == nil {
		t.Error("send after kill succeeded")
	}
	if pool.Outstanding() != 0 {
		t.Errorf("buffers leaked: %d", pool.Outstanding())
	}
}

// TestFaultClearRules: ClearRules stops rule-driven faults (recovery testing)
// while kills remain permanent.
func TestFaultClearRules(t *testing.T) {
	inj, eps := bootFaultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Src: AnyMachine, Dst: AnyMachine, Type: AnyType, Kind: FaultFail, Every: 1},
	}})
	pool := NewPool(2, 1024)
	if err := sendFrame(t, eps[0], pool, 1, MsgCtrl, 1); err == nil {
		t.Fatal("rule did not fire")
	}
	inj.ClearRules()
	if err := sendFrame(t, eps[0], pool, 1, MsgCtrl, 2); err != nil {
		t.Fatalf("send still failing after ClearRules: %v", err)
	}
	got, _ := eps[1].Recv()
	got.Release()
}

// TestFaultKindString covers the Stringer, including the unknown branch.
func TestFaultKindString(t *testing.T) {
	want := map[FaultKind]string{
		FaultDrop: "drop", FaultDelay: "delay", FaultTruncate: "truncate",
		FaultFail: "fail", FaultKill: "kill",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("FaultKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if FaultKind(200).String() == "" {
		t.Error("unknown FaultKind renders empty")
	}
}

// TestFaultAbortFrameRouted: MsgAbort frames land on the router's dedicated
// abort queue, not the worker or control channels.
func TestFaultAbortFrameRouted(t *testing.T) {
	_, eps := bootFaultPair(t, FaultPlan{Seed: 1})
	router := NewRouter(eps[1], RouterConfig{NumWorkers: 1})
	defer router.Shutdown()
	pool := NewPool(2, 1024)
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgAbort, Src: 0, Worker: CtrlWorker, Aux: 77})
	buf.AppendBytes([]byte("boom"))
	if err := eps[0].Send(1, buf); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-router.AbortQueue():
		if got.Header().Aux != 77 || string(got.Payload()) != "boom" {
			t.Errorf("abort frame mangled: %+v %q", got.Header(), got.Payload())
		}
		got.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("MsgAbort never reached the abort queue")
	}
}

// TestFaultTCPWriteRetryReconnects: with WriteRetries enabled, a sender whose
// connection dies under it redials and delivers the frame anyway — no send
// error, no lost frame, no leaked buffer.
func TestFaultTCPWriteRetryReconnects(t *testing.T) {
	f, err := NewTCPFabricOpts(2, 8, 32<<10, TCPOptions{
		WriteRetries: 2,
		RetryBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	defer ep1.Close()

	// Kill the 0 -> 1 connection out from under the sender goroutine; the
	// next write fails locally and must reconnect through the listener.
	ep0.(*tcpEndpoint).senders[1].conn().Close()

	pool := NewPool(2, 32<<10)
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgCtrl, Src: 0, Aux: 31})
	if err := ep0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	got, ok := ep1.Recv()
	if !ok || got.Header().Aux != 31 {
		t.Fatalf("frame lost across reconnect: ok=%v", ok)
	}
	got.Release()
	if n := ep0.Metrics().SendErrors(); n != 0 {
		t.Errorf("SendErrors = %d after successful retry, want 0", n)
	}
	if pool.Outstanding() != 0 {
		t.Errorf("buffers leaked: %d", pool.Outstanding())
	}
}

// TestFaultTruncatedAllReduceRejected: a truncated control frame surfaces as
// an allreduce error on the root instead of an out-of-range panic.
func TestFaultTruncatedAllReduceRejected(t *testing.T) {
	_, eps := bootFaultPair(t, FaultPlan{Seed: 1, Rules: []FaultRule{
		{Src: 1, Dst: 0, Type: int(MsgCtrl), Kind: FaultTruncate, Every: 1, TruncateTo: HeaderSize + 8},
	}})
	errs := make(chan error, 2)
	for m := 0; m < 2; m++ {
		go func(m int) {
			router := NewRouter(eps[m], RouterConfig{NumWorkers: 1})
			defer router.Shutdown()
			col := NewCollectives(eps[m], router.Ctrl(), NewPool(4, 4096))
			col.SetTimeout(300 * time.Millisecond)
			vals := []int64{1, 2, 3, 4}
			errs <- col.AllReduceI64(vals, reduce.Sum)
		}(m)
	}
	rootErr := <-errs
	// Machine 1's wait for the result either times out (root bailed) or sees
	// its router shut down; order of the two errors is unspecified.
	otherErr := <-errs
	if rootErr == nil && otherErr == nil {
		t.Fatal("truncated allreduce contribution reported no error")
	}
	for _, err := range []error{rootErr, otherErr} {
		if err != nil && strings.Contains(err.Error(), "index out of range") {
			t.Fatalf("truncation panicked through: %v", err)
		}
	}
}
