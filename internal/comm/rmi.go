package comm

import (
	"fmt"
	"sync"
)

// RMIHandler serves one remote method. It receives the calling machine's id
// and the request payload, and returns the response payload (nil for
// one-way methods). Handlers run on copier goroutines and must be safe for
// concurrent invocation.
type RMIHandler func(src int, payload []byte) []byte

// RMIRegistry maps method ids to handlers, mirroring the paper §3.4: "At
// setup time, the PGX.D application registers its RMI methods and gets
// unique identifiers. At runtime, RMI request messages are encoded with this
// identifier, out of which the copier executes the appropriate method and
// generates response messages."
//
// Registration happens at setup (before traffic); Dispatch is concurrent.
type RMIRegistry struct {
	mu       sync.RWMutex
	handlers []RMIHandler
}

// Register adds a handler and returns its method id. All machines must
// register the same methods in the same order so ids agree cluster-wide.
func (r *RMIRegistry) Register(h RMIHandler) uint32 {
	if h == nil {
		panic("comm: nil RMI handler")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers = append(r.handlers, h)
	return uint32(len(r.handlers) - 1)
}

// Dispatch invokes method id with the given source machine and payload.
func (r *RMIRegistry) Dispatch(id uint32, src int, payload []byte) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) >= len(r.handlers) {
		return nil, fmt.Errorf("comm: unknown RMI method %d", id)
	}
	return r.handlers[id](src, payload), nil
}

// NumMethods returns how many methods are registered.
func (r *RMIRegistry) NumMethods() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.handlers)
}
