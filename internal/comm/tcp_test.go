package comm

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/reduce"
)

func bootTCP(t *testing.T, p int) ([]Endpoint, *TCPFabric) {
	t.Helper()
	f, err := NewTCPFabric(p, 64, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]Endpoint, p)
	for m := 0; m < p; m++ {
		ep, err := f.Endpoint(m)
		if err != nil {
			t.Fatal(err)
		}
		eps[m] = ep
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
		f.Close()
	})
	return eps, f
}

func TestTCPCollectives(t *testing.T) {
	const p = 3
	eps, _ := bootTCP(t, p)
	var wg sync.WaitGroup
	for m := 0; m < p; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			router := NewRouter(eps[m], RouterConfig{NumWorkers: 1})
			defer router.Shutdown()
			pool := NewPool(8, 8192)
			col := NewCollectives(eps[m], router.Ctrl(), pool)
			for i := 0; i < 5; i++ {
				if err := col.Barrier(); err != nil {
					t.Errorf("machine %d barrier: %v", m, err)
					return
				}
				sum, err := col.AllReduceSumI64(int64(m + 1))
				if err != nil || sum != 6 {
					t.Errorf("machine %d allreduce: %d (%v)", m, sum, err)
					return
				}
				out, err := col.Broadcast([]byte{byte(i)})
				if err != nil || len(out) != 1 || out[0] != byte(i) {
					t.Errorf("machine %d bcast: %v (%v)", m, out, err)
					return
				}
			}
		}(m)
	}
	wg.Wait()
}

// TestTCPGarbageConnectionDropped: a rogue client that sends garbage to a
// machine's listen port must not crash or wedge the endpoint.
func TestTCPGarbageConnectionDropped(t *testing.T) {
	f, err := NewTCPFabric(2, 16, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	defer ep1.Close()

	// Rogue connection: valid hello, then an oversized frame length.
	rogue, err := net.Dial("tcp", f.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	var hello [2]byte
	binary.LittleEndian.PutUint16(hello[:], 0)
	rogue.Write(hello[:])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], 1<<30) // exceeds buffer size
	rogue.Write(lenBuf[:])
	rogue.Close()

	// Rogue connection two: truncated hello.
	rogue2, err := net.Dial("tcp", f.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	rogue2.Write([]byte{0x01})
	rogue2.Close()

	// Legitimate traffic still flows.
	pool := NewPool(4, 32<<10)
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgWriteReq, Src: 0, Count: 1})
	buf.AppendU64(42)
	if err := ep0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	got, ok := ep1.Recv()
	if !ok {
		t.Fatal("legitimate frame lost after rogue connections")
	}
	if got.Header().Count != 1 {
		t.Errorf("header corrupted: %+v", got.Header())
	}
	got.Release()
}

// TestTCPUndersizedFrameRejected: frames below the header size drop the
// connection without delivering.
func TestTCPUndersizedFrameRejected(t *testing.T) {
	f, err := NewTCPFabric(2, 16, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, _ := f.Endpoint(0)
	ep1, _ := f.Endpoint(1)
	defer ep0.Close()
	defer ep1.Close()

	rogue, err := net.Dial("tcp", f.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	var hello [2]byte
	rogue.Write(hello[:])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], 4) // < HeaderSize
	rogue.Write(lenBuf[:])
	rogue.Write([]byte{1, 2, 3, 4})
	time.Sleep(20 * time.Millisecond)
	rogue.Close()

	// The endpoint must not have delivered anything: Recv would block, so
	// probe with a legitimate frame instead.
	pool := NewPool(2, 32<<10)
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgCtrl, Src: 0, Aux: 7})
	if err := ep0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	got, ok := ep1.Recv()
	if !ok || got.Header().Aux != 7 {
		t.Fatalf("expected the legitimate frame, got ok=%v", ok)
	}
	got.Release()
}

func TestTCPEndpointErrors(t *testing.T) {
	f, err := NewTCPFabric(2, 8, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, _ := f.Endpoint(0)
	defer ep0.Close()
	if _, err := f.Endpoint(0); err == nil {
		t.Error("duplicate endpoint accepted")
	}
	if _, err := f.Endpoint(7); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	pool := NewPool(2, 16<<10)
	buf := pool.Acquire()
	if err := ep0.Send(9, buf); err == nil {
		t.Error("out-of-range send accepted")
	}
	if pool.Outstanding() != 0 {
		t.Errorf("buffer leaked on failed send: %d", pool.Outstanding())
	}
}

func TestTCPSelfSendAfterClose(t *testing.T) {
	f, err := NewTCPFabric(1, 4, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep, _ := f.Endpoint(0)
	ep.Close()
	pool := NewPool(1, 16<<10)
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgCtrl})
	if err := ep.Send(0, buf); err == nil {
		t.Error("self-send after close succeeded")
	}
	if pool.Outstanding() != 0 {
		t.Errorf("buffer leaked: %d", pool.Outstanding())
	}
}

func TestReduceImportKeepsCollectiveTyped(t *testing.T) {
	// Guards the wire encoding of typed allreduce: a Min over negative
	// int64s must not be treated as unsigned.
	eps, _ := bootTCP(t, 2)
	var wg sync.WaitGroup
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			router := NewRouter(eps[m], RouterConfig{NumWorkers: 1})
			defer router.Shutdown()
			col := NewCollectives(eps[m], router.Ctrl(), NewPool(4, 4096))
			vals := []int64{int64(-10 * (m + 1))}
			if err := col.AllReduceI64(vals, reduce.Min); err != nil {
				t.Errorf("machine %d: %v", m, err)
				return
			}
			if vals[0] != -20 {
				t.Errorf("machine %d: min = %d, want -20", m, vals[0])
			}
		}(m)
	}
	wg.Wait()
}

// TestTCPRecvErrorCounted: corrupt and truncated frames must show up in the
// endpoint's receive-error counter, not just vanish with the connection.
func TestTCPRecvErrorCounted(t *testing.T) {
	f, err := NewTCPFabric(2, 8, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep1, err := f.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()

	// Valid hello, then a frame length beyond the buffer size.
	rogue, err := net.Dial("tcp", f.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	var hello [2]byte
	rogue.Write(hello[:])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], 1<<30)
	rogue.Write(lenBuf[:])
	rogue.Close()

	// Valid hello and length, then the peer dies mid-body.
	rogue2, err := net.Dial("tcp", f.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	rogue2.Write(hello[:])
	binary.LittleEndian.PutUint32(lenBuf[:], HeaderSize+8)
	rogue2.Write(lenBuf[:])
	rogue2.Write([]byte{1, 2, 3}) // 3 of HeaderSize+8 bytes
	rogue2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for ep1.Metrics().RecvErrors() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("RecvErrors = %d, want >= 2", ep1.Metrics().RecvErrors())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPSendErrorCountedAndSticky: once a destination's connection dies,
// the failure is counted, surfaces as an error from Send, and sticks so
// later sends fail fast instead of silently dropping frames.
func TestTCPSendErrorCountedAndSticky(t *testing.T) {
	eps, _ := bootTCP(t, 2)
	ep0 := eps[0].(*tcpEndpoint)
	pool := NewPool(4, 64<<10)

	// Drain the handshake state, then kill the 0 -> 1 connection from under
	// the sender goroutine.
	ep0.senders[1].c.Close()

	var sendErr error
	deadline := time.Now().Add(5 * time.Second)
	for sendErr == nil {
		if time.Now().After(deadline) {
			t.Fatal("Send never reported the dead connection")
		}
		buf := pool.Acquire()
		buf.Reset(Header{Type: MsgCtrl, Src: 0})
		sendErr = ep0.Send(1, buf)
		time.Sleep(time.Millisecond)
	}
	if ep0.Metrics().SendErrors() == 0 {
		t.Error("send failure not counted in Metrics.SendErrors")
	}
	// Sticky: the next send fails immediately without enqueueing.
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgCtrl, Src: 0})
	if err := ep0.Send(1, buf); err == nil {
		t.Error("send after failure succeeded")
	}
	ep0.Quiesce()
	if pool.Outstanding() != 0 {
		t.Errorf("buffers leaked through failed sends: %d", pool.Outstanding())
	}
}

// TestTCPSyncModeRoundTrip: the synchronous ablation path (negative queue
// depth) still moves frames, with the socket options applied.
func TestTCPSyncModeRoundTrip(t *testing.T) {
	f, err := NewTCPFabricOpts(2, 8, 32<<10, TCPOptions{
		SendQueueDepth: -1,
		SocketBufBytes: 64 << 10,
		DisableNoDelay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	defer ep1.Close()
	if ep0.(*tcpEndpoint).senders[1] != nil {
		t.Fatal("sync mode still built async senders")
	}

	pool := NewPool(4, 32<<10)
	for i := 0; i < 10; i++ {
		buf := pool.Acquire()
		buf.Reset(Header{Type: MsgWriteReq, Src: 0, Count: 1, Aux: uint64(i)})
		buf.AppendU64(uint64(1000 + i))
		if err := ep0.Send(1, buf); err != nil {
			t.Fatal(err)
		}
		got, ok := ep1.Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		if got.Header().Aux != uint64(i) || leU64t(got.Payload()) != uint64(1000+i) {
			t.Fatalf("frame %d corrupted: %+v", i, got.Header())
		}
		got.Release()
	}
	if got := ep0.Metrics().BytesSentByType(MsgWriteReq); got == 0 {
		t.Error("sync sends not counted")
	}
}

// TestTCPAsyncFrameIntegrity: frames of varied sizes survive the async
// vectored-write path byte for byte and in order.
func TestTCPAsyncFrameIntegrity(t *testing.T) {
	eps, _ := bootTCP(t, 2)
	pool := NewPool(8, 64<<10)
	const frames = 200
	go func() {
		for i := 0; i < frames; i++ {
			buf := pool.Acquire()
			buf.Reset(Header{Type: MsgWriteReq, Src: 0, Count: 1, Aux: uint64(i)})
			words := i % 97
			for w := 0; w < words; w++ {
				buf.AppendU64(uint64(i)<<32 | uint64(w))
			}
			if err := eps[0].Send(1, buf); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < frames; i++ {
		got, ok := eps[1].Recv()
		if !ok {
			t.Fatalf("stream ended at frame %d", i)
		}
		h := got.Header()
		if h.Aux != uint64(i) {
			t.Fatalf("frame %d out of order: aux = %d", i, h.Aux)
		}
		words := i % 97
		if len(got.Payload()) != 8*words {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got.Payload()), 8*words)
		}
		for w := 0; w < words; w++ {
			if leU64t(got.Payload()[8*w:]) != uint64(i)<<32|uint64(w) {
				t.Fatalf("frame %d word %d corrupted", i, w)
			}
		}
		got.Release()
	}
}

func leU64t(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
