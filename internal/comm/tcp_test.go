package comm

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/reduce"
)

func bootTCP(t *testing.T, p int) ([]Endpoint, *TCPFabric) {
	t.Helper()
	f, err := NewTCPFabric(p, 64, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]Endpoint, p)
	for m := 0; m < p; m++ {
		ep, err := f.Endpoint(m)
		if err != nil {
			t.Fatal(err)
		}
		eps[m] = ep
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
		f.Close()
	})
	return eps, f
}

func TestTCPCollectives(t *testing.T) {
	const p = 3
	eps, _ := bootTCP(t, p)
	var wg sync.WaitGroup
	for m := 0; m < p; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			router := NewRouter(eps[m], RouterConfig{NumWorkers: 1})
			defer router.Shutdown()
			pool := NewPool(8, 8192)
			col := NewCollectives(eps[m], router.Ctrl(), pool)
			for i := 0; i < 5; i++ {
				if err := col.Barrier(); err != nil {
					t.Errorf("machine %d barrier: %v", m, err)
					return
				}
				sum, err := col.AllReduceSumI64(int64(m + 1))
				if err != nil || sum != 6 {
					t.Errorf("machine %d allreduce: %d (%v)", m, sum, err)
					return
				}
				out, err := col.Broadcast([]byte{byte(i)})
				if err != nil || len(out) != 1 || out[0] != byte(i) {
					t.Errorf("machine %d bcast: %v (%v)", m, out, err)
					return
				}
			}
		}(m)
	}
	wg.Wait()
}

// TestTCPGarbageConnectionDropped: a rogue client that sends garbage to a
// machine's listen port must not crash or wedge the endpoint.
func TestTCPGarbageConnectionDropped(t *testing.T) {
	f, err := NewTCPFabric(2, 16, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	defer ep1.Close()

	// Rogue connection: valid hello, then an oversized frame length.
	rogue, err := net.Dial("tcp", f.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	var hello [2]byte
	binary.LittleEndian.PutUint16(hello[:], 0)
	rogue.Write(hello[:])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], 1<<30) // exceeds buffer size
	rogue.Write(lenBuf[:])
	rogue.Close()

	// Rogue connection two: truncated hello.
	rogue2, err := net.Dial("tcp", f.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	rogue2.Write([]byte{0x01})
	rogue2.Close()

	// Legitimate traffic still flows.
	pool := NewPool(4, 32<<10)
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgWriteReq, Src: 0, Count: 1})
	buf.AppendU64(42)
	if err := ep0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	got, ok := ep1.Recv()
	if !ok {
		t.Fatal("legitimate frame lost after rogue connections")
	}
	if got.Header().Count != 1 {
		t.Errorf("header corrupted: %+v", got.Header())
	}
	got.Release()
}

// TestTCPUndersizedFrameRejected: frames below the header size drop the
// connection without delivering.
func TestTCPUndersizedFrameRejected(t *testing.T) {
	f, err := NewTCPFabric(2, 16, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, _ := f.Endpoint(0)
	ep1, _ := f.Endpoint(1)
	defer ep0.Close()
	defer ep1.Close()

	rogue, err := net.Dial("tcp", f.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	var hello [2]byte
	rogue.Write(hello[:])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], 4) // < HeaderSize
	rogue.Write(lenBuf[:])
	rogue.Write([]byte{1, 2, 3, 4})
	time.Sleep(20 * time.Millisecond)
	rogue.Close()

	// The endpoint must not have delivered anything: Recv would block, so
	// probe with a legitimate frame instead.
	pool := NewPool(2, 32<<10)
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgCtrl, Src: 0, Aux: 7})
	if err := ep0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	got, ok := ep1.Recv()
	if !ok || got.Header().Aux != 7 {
		t.Fatalf("expected the legitimate frame, got ok=%v", ok)
	}
	got.Release()
}

func TestTCPEndpointErrors(t *testing.T) {
	f, err := NewTCPFabric(2, 8, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, _ := f.Endpoint(0)
	defer ep0.Close()
	if _, err := f.Endpoint(0); err == nil {
		t.Error("duplicate endpoint accepted")
	}
	if _, err := f.Endpoint(7); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	pool := NewPool(2, 16<<10)
	buf := pool.Acquire()
	if err := ep0.Send(9, buf); err == nil {
		t.Error("out-of-range send accepted")
	}
	if pool.Outstanding() != 0 {
		t.Errorf("buffer leaked on failed send: %d", pool.Outstanding())
	}
}

func TestTCPSelfSendAfterClose(t *testing.T) {
	f, err := NewTCPFabric(1, 4, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep, _ := f.Endpoint(0)
	ep.Close()
	pool := NewPool(1, 16<<10)
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgCtrl})
	if err := ep.Send(0, buf); err == nil {
		t.Error("self-send after close succeeded")
	}
	if pool.Outstanding() != 0 {
		t.Errorf("buffer leaked: %d", pool.Outstanding())
	}
}

func TestReduceImportKeepsCollectiveTyped(t *testing.T) {
	// Guards the wire encoding of typed allreduce: a Min over negative
	// int64s must not be treated as unsigned.
	eps, _ := bootTCP(t, 2)
	var wg sync.WaitGroup
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			router := NewRouter(eps[m], RouterConfig{NumWorkers: 1})
			defer router.Shutdown()
			col := NewCollectives(eps[m], router.Ctrl(), NewPool(4, 4096))
			vals := []int64{int64(-10 * (m + 1))}
			if err := col.AllReduceI64(vals, reduce.Min); err != nil {
				t.Errorf("machine %d: %v", m, err)
				return
			}
			if vals[0] != -20 {
				t.Errorf("machine %d: min = %d, want -20", m, vals[0])
			}
		}(m)
	}
	wg.Wait()
}
