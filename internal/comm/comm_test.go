package comm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	pool := NewPool(1, 1024)
	buf := pool.Acquire()
	defer buf.Release()
	f := func(typ uint8, worker uint8, src uint16, count uint32, flags uint8, aux uint64) bool {
		h := Header{Type: MsgType(typ % 6), Worker: worker, Src: src,
			Count: count & MaxCount, Flags: flags, Aux: aux}
		buf.Reset(h)
		return buf.Header() == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Count and flags share the old 32-bit count word; updating one must not
	// clobber the other, and the count field must refuse to overflow into
	// the flags byte.
	buf.Reset(Header{Type: MsgReadReq, Flags: FlagCompressed, Count: 7})
	buf.SetCount(MaxCount)
	if h := buf.Header(); h.Flags != FlagCompressed || h.Count != MaxCount {
		t.Fatalf("SetCount clobbered flags: %+v", h)
	}
	buf.SetFlags(0)
	if h := buf.Header(); h.Flags != 0 || h.Count != MaxCount {
		t.Fatalf("SetFlags clobbered count: %+v", h)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetCount accepted a count wider than 24 bits")
			}
		}()
		buf.SetCount(MaxCount + 1)
	}()
}

func TestBufferAppendAndRoom(t *testing.T) {
	pool := NewPool(1, HeaderSize+32)
	buf := pool.Acquire()
	defer buf.Release()
	buf.Reset(Header{Type: MsgWriteReq})
	if buf.Room() != 32 {
		t.Fatalf("Room = %d, want 32", buf.Room())
	}
	buf.AppendU64(0xdeadbeefcafef00d)
	if buf.Room() != 24 {
		t.Fatalf("Room after append = %d, want 24", buf.Room())
	}
	buf.AppendBytes([]byte{1, 2, 3})
	p := buf.Payload()
	if len(p) != 11 || p[8] != 1 || p[10] != 3 {
		t.Fatalf("payload = %v", p)
	}
	buf.SetCount(7)
	buf.SetAux(9)
	h := buf.Header()
	if h.Count != 7 || h.Aux != 9 {
		t.Fatalf("header after Set = %+v", h)
	}
}

func TestPoolBlocksAndAccounts(t *testing.T) {
	pool := NewPool(2, 1024)
	a := pool.Acquire()
	b := pool.Acquire()
	if pool.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d, want 2", pool.Outstanding())
	}
	if _, ok := pool.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on drained pool")
	}
	done := make(chan *Buffer)
	go func() { done <- pool.Acquire() }()
	a.Release()
	c := <-done
	if c != a {
		t.Fatal("blocked Acquire got a different buffer than the released one")
	}
	b.Release()
	c.Release()
	if pool.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after all releases", pool.Outstanding())
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	pool := NewPool(1, 1024)
	b := pool.Acquire()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	b.Release()
}

func TestMsgTypeString(t *testing.T) {
	for typ := MsgReadReq; typ <= MsgCtrl; typ++ {
		if typ.String() == "" {
			t.Errorf("MsgType %d renders empty", typ)
		}
	}
	if MsgType(99).String() == "" {
		t.Error("unknown MsgType renders empty")
	}
}

// fabricCase runs a test body against each transport implementation.
func fabricCase(t *testing.T, p int, body func(t *testing.T, eps []Endpoint)) {
	t.Helper()
	t.Run("inproc", func(t *testing.T) {
		f := NewInProcFabric(p, 1024)
		eps := make([]Endpoint, p)
		for m := 0; m < p; m++ {
			ep, err := f.Endpoint(m)
			if err != nil {
				t.Fatal(err)
			}
			eps[m] = ep
		}
		defer func() {
			for _, ep := range eps {
				ep.Close()
			}
			f.Close()
		}()
		body(t, eps)
	})
	t.Run("tcp", func(t *testing.T) {
		f, err := NewTCPFabric(p, 64, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		eps := make([]Endpoint, p)
		for m := 0; m < p; m++ {
			ep, err := f.Endpoint(m)
			if err != nil {
				t.Fatal(err)
			}
			eps[m] = ep
		}
		defer func() {
			for _, ep := range eps {
				ep.Close()
			}
			f.Close()
		}()
		body(t, eps)
	})
}

func TestFabricPointToPoint(t *testing.T) {
	fabricCase(t, 2, func(t *testing.T, eps []Endpoint) {
		pool := NewPool(4, 4096)
		buf := pool.Acquire()
		buf.Reset(Header{Type: MsgWriteReq, Worker: 3, Src: 0, Count: 2, Aux: 77})
		buf.AppendU64(111)
		buf.AppendU64(222)
		wantLen := len(buf.Data)
		if err := eps[0].Send(1, buf); err != nil {
			t.Fatal(err)
		}
		got, ok := eps[1].Recv()
		if !ok {
			t.Fatal("Recv returned closed")
		}
		h := got.Header()
		if h.Type != MsgWriteReq || h.Worker != 3 || h.Src != 0 || h.Count != 2 || h.Aux != 77 {
			t.Fatalf("header = %+v", h)
		}
		if len(got.Data) != wantLen {
			t.Fatalf("frame length %d, want %d", len(got.Data), wantLen)
		}
		got.Release()
	})
}

func TestFabricSelfSend(t *testing.T) {
	fabricCase(t, 1, func(t *testing.T, eps []Endpoint) {
		pool := NewPool(2, 1024)
		buf := pool.Acquire()
		buf.Reset(Header{Type: MsgCtrl, Src: 0})
		if err := eps[0].Send(0, buf); err != nil {
			t.Fatal(err)
		}
		got, ok := eps[0].Recv()
		if !ok {
			t.Fatal("self-send lost")
		}
		got.Release()
	})
}

func TestFabricManyFramesAllToAll(t *testing.T) {
	const p = 4
	const framesPerPair = 200
	fabricCase(t, p, func(t *testing.T, eps []Endpoint) {
		var wg sync.WaitGroup
		// Receivers: each expects framesPerPair from each other machine.
		recvCounts := make([]int, p)
		for m := 0; m < p; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				want := framesPerPair * (p - 1)
				for i := 0; i < want; i++ {
					buf, ok := eps[m].Recv()
					if !ok {
						t.Errorf("machine %d: closed after %d frames", m, i)
						return
					}
					recvCounts[m]++
					buf.Release()
				}
			}(m)
		}
		// Senders.
		for m := 0; m < p; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				pool := NewPool(8, 2048)
				for i := 0; i < framesPerPair; i++ {
					for d := 0; d < p; d++ {
						if d == m {
							continue
						}
						buf := pool.Acquire()
						buf.Reset(Header{Type: MsgWriteReq, Src: uint16(m)})
						buf.AppendU64(uint64(i))
						if err := eps[m].Send(d, buf); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}
			}(m)
		}
		wg.Wait()
		for m := 0; m < p; m++ {
			if recvCounts[m] != framesPerPair*(p-1) {
				t.Errorf("machine %d received %d frames", m, recvCounts[m])
			}
			metr := eps[m].Metrics()
			if metr.FramesSent() != framesPerPair*(p-1) {
				t.Errorf("machine %d metrics report %d frames sent", m, metr.FramesSent())
			}
			if metr.FramesRecv() != framesPerPair*(p-1) {
				t.Errorf("machine %d metrics report %d frames recv", m, metr.FramesRecv())
			}
		}
	})
}

func TestEndpointErrors(t *testing.T) {
	f := NewInProcFabric(2, 8)
	ep0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Endpoint(0); err == nil {
		t.Error("duplicate endpoint accepted")
	}
	if _, err := f.Endpoint(5); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	pool := NewPool(1, 1024)
	buf := pool.Acquire()
	if err := ep0.Send(9, buf); err == nil {
		t.Error("out-of-range send accepted")
	}
	// Send owns the buffer even on failure.
	if pool.Outstanding() != 0 {
		t.Errorf("buffer leaked on failed send: %d", pool.Outstanding())
	}
	ep0.Close()
	ep0.Close() // idempotent
	if _, ok := ep0.Recv(); ok {
		t.Error("Recv after close reported a frame")
	}
}

func TestInProcSendToClosedInboxReclaimsBuffer(t *testing.T) {
	f := NewInProcFabric(2, 8)
	ep0, _ := f.Endpoint(0)
	ep1, _ := f.Endpoint(1)
	ep1.Close()
	pool := NewPool(1, 1024)
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgCtrl})
	if err := ep0.Send(1, buf); err == nil {
		t.Error("send to closed inbox succeeded")
	}
	if pool.Outstanding() != 0 {
		t.Errorf("buffer leaked: outstanding = %d", pool.Outstanding())
	}
	ep0.Close()
}

func TestMetricsSnapshotArithmetic(t *testing.T) {
	a := Snapshot{FramesSent: 10, BytesSent: 100, FramesRecv: 5, BytesRecv: 50, DataBytesSent: 80}
	b := Snapshot{FramesSent: 4, BytesSent: 40, FramesRecv: 2, BytesRecv: 20, DataBytesSent: 30}
	d := a.Sub(b)
	if d.FramesSent != 6 || d.BytesSent != 60 || d.DataBytesSent != 50 {
		t.Errorf("Sub = %+v", d)
	}
	s := a.Add(b)
	if s.FramesSent != 14 || s.BytesRecv != 70 {
		t.Errorf("Add = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestMetricsAccessors(t *testing.T) {
	f := NewInProcFabric(2, 16)
	ep0, _ := f.Endpoint(0)
	ep1, _ := f.Endpoint(1)
	defer ep0.Close()
	defer ep1.Close()
	pool := NewPool(4, 1024)
	for _, typ := range []MsgType{MsgWriteReq, MsgCtrl} {
		buf := pool.Acquire()
		buf.Reset(Header{Type: typ, Src: 0})
		buf.AppendU64(1)
		if err := ep0.Send(1, buf); err != nil {
			t.Fatal(err)
		}
		got, _ := ep1.Recv()
		got.Release()
	}
	m := ep0.Metrics()
	if m.BytesSent() != 2*(HeaderSize+8) {
		t.Errorf("BytesSent = %d", m.BytesSent())
	}
	if m.BytesSentByType(MsgCtrl) != HeaderSize+8 {
		t.Errorf("ctrl bytes = %d", m.BytesSentByType(MsgCtrl))
	}
	if m.BytesSentByType(MsgType(99)) != 0 {
		t.Error("unknown type has bytes")
	}
	if m.DataBytesSent() != HeaderSize+8 {
		t.Errorf("data bytes = %d", m.DataBytesSent())
	}
	r := ep1.Metrics()
	if r.BytesRecv() != 2*(HeaderSize+8) {
		t.Errorf("BytesRecv = %d", r.BytesRecv())
	}
	snap := m.Snapshot()
	if snap.FramesSent != 2 || snap.DataBytesSent != HeaderSize+8 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestPoolCAndNoteAcquired(t *testing.T) {
	pool := NewPool(2, 1024)
	buf := <-pool.C()
	pool.NoteAcquired()
	if pool.Outstanding() != 1 {
		t.Errorf("Outstanding = %d", pool.Outstanding())
	}
	if buf.Cap() != 1024 {
		t.Errorf("Cap = %d", buf.Cap())
	}
	buf.Release()
	if pool.Outstanding() != 0 {
		t.Errorf("Outstanding after release = %d", pool.Outstanding())
	}
}

func TestRouterRMIRespChannel(t *testing.T) {
	f := NewInProcFabric(2, 16)
	ep0, _ := f.Endpoint(0)
	ep1, _ := f.Endpoint(1)
	router := NewRouter(ep1, RouterConfig{NumWorkers: 2})
	pool := NewPool(4, 1024)
	// RMI response for the main goroutine goes to the dedicated channel.
	buf := pool.Acquire()
	buf.Reset(Header{Type: MsgRMIResp, Worker: CtrlWorker, Src: 0, Aux: 5})
	if err := ep0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	got := <-router.RMIResp()
	if got.Header().Aux != 5 {
		t.Errorf("aux = %d", got.Header().Aux)
	}
	got.Release()
	// Read response for the main goroutine still goes to ctrl.
	buf = pool.Acquire()
	buf.Reset(Header{Type: MsgReadResp, Worker: CtrlWorker, Src: 0, Aux: 6})
	if err := ep0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	got = <-router.Ctrl()
	if got.Header().Aux != 6 {
		t.Errorf("ctrl aux = %d", got.Header().Aux)
	}
	got.Release()
	// Misaddressed worker id is dropped (released), not wedged.
	buf = pool.Acquire()
	buf.Reset(Header{Type: MsgReadResp, Worker: 200, Src: 0})
	if err := ep0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	router.Shutdown()
	ep0.Close()
	if pool.Outstanding() != 0 {
		t.Errorf("outstanding = %d", pool.Outstanding())
	}
}

func TestNewTCPFabricRejectsBadCount(t *testing.T) {
	if _, err := NewTCPFabric(0, 4, 4096); err == nil {
		t.Error("0 machines accepted")
	}
}

func TestPoolConstructorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero count", func() { NewPool(0, 1024) })
	mustPanic("tiny buffer", func() { NewPool(1, 4) })
	mustPanic("zero machines inproc", func() { NewInProcFabric(0, 4) })
}
