package comm

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultKind selects what a matching FaultRule does to a frame.
type FaultKind uint8

const (
	// FaultDrop silently discards the frame (released back to its pool).
	// The sender observes success — exactly what a lossy wire looks like —
	// so drops surface only through the engine's deadlines.
	FaultDrop FaultKind = iota
	// FaultDelay sleeps on the sender's goroutine before forwarding,
	// modelling a congested or slow link.
	FaultDelay
	// FaultTruncate chops the frame to TruncateTo bytes before forwarding,
	// modelling partial writes and corrupt framing. The header is always
	// kept intact so the fault lands in payload validation, not in the
	// transport's own length checks.
	FaultTruncate
	// FaultFail releases the frame and returns an error from Send — a hard
	// transport failure the caller sees immediately.
	FaultFail
	// FaultKill marks the sending machine dead when the rule fires: every
	// later send from it fails and every frame toward it is blackholed.
	FaultKill
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultTruncate:
		return "truncate"
	case FaultFail:
		return "fail"
	case FaultKill:
		return "kill"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// AnyMachine and AnyType are the wildcard values for FaultRule matchers.
const (
	AnyMachine = -1
	AnyType    = -1
)

// FaultRule describes one injected failure mode. A rule matches a frame by
// (src, dst, type) and then triggers either counter-based (After/Every,
// deterministic per (src,dst) stream) or probabilistically (Prob, from a
// per-(rule,src,dst) RNG seeded by FaultPlan.Seed — rerunning the same
// workload with the same seed faults the same frame ordinals).
type FaultRule struct {
	// Src and Dst restrict the rule to frames from/to one machine;
	// AnyMachine matches all.
	Src, Dst int
	// Type restricts the rule to one MsgType; AnyType matches all.
	Type int
	// Kind is what happens to a matching, triggered frame.
	Kind FaultKind
	// After skips the first After matching frames of each (src,dst) stream.
	After int
	// Every then triggers on every Every-th matching frame (1 = all,
	// 0 = only the single frame at position After).
	Every int
	// Limit caps how many times this rule fires per (src,dst) stream;
	// 0 means unlimited.
	Limit int
	// Prob, when > 0, replaces the After/Every counters: each matching
	// frame triggers with this probability.
	Prob float64
	// Delay is the injected latency for FaultDelay.
	Delay time.Duration
	// TruncateTo is the frame length FaultTruncate cuts to (clamped to
	// [HeaderSize, len(frame))).
	TruncateTo int
}

func (r *FaultRule) matches(src, dst int, t MsgType) bool {
	if r.Src != AnyMachine && r.Src != src {
		return false
	}
	if r.Dst != AnyMachine && r.Dst != dst {
		return false
	}
	if r.Type != AnyType && MsgType(r.Type) != t {
		return false
	}
	return true
}

// FaultPlan seeds a FaultInjector: the rule set plus the RNG seed that makes
// probabilistic rules reproducible.
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule
}

// FaultStats counts what the injector did, for assertions and reports.
type FaultStats struct {
	Dropped, Delayed, Truncated, Failed int64
	Kills                               int64
}

// ruleState is the per-(rule, src, dst) trigger state.
type ruleState struct {
	matched int
	applied int
	rng     *rand.Rand
}

// FaultInjector wraps a Fabric and deterministically injects transport
// faults — drops, delays, truncation, hard send failures, and machine
// kills — per (src,dst) pair. It preserves the Send ownership contract:
// a faulted frame is either forwarded, or released by the injector before
// Send returns, so buffer-pool accounting survives every failure mode.
//
// The injector is safe for concurrent Sends and may be reconfigured at
// runtime (Kill, ClearRules) to stage failures mid-job.
type FaultInjector struct {
	inner Fabric
	plan  FaultPlan

	mu    sync.Mutex
	state map[[3]int]*ruleState // key: rule index, src, dst
	rules []FaultRule           // active rules (ClearRules empties)

	killInit sync.Once
	killed   []atomic.Bool

	dropped   atomic.Int64
	delayed   atomic.Int64
	truncated atomic.Int64
	failed    atomic.Int64
	kills     atomic.Int64
}

// NewFaultInjector wraps inner with the given plan. The returned fabric is a
// drop-in replacement: hand it to the engine via Config.Fabric.
// InMemory forwards the wrapped fabric's answer so injecting faults does not
// change the engine's wire-compression decision.
func (inj *FaultInjector) InMemory() bool { return InMemoryFabric(inj.inner) }

func NewFaultInjector(inner Fabric, plan FaultPlan) *FaultInjector {
	rules := make([]FaultRule, len(plan.Rules))
	copy(rules, plan.Rules)
	return &FaultInjector{
		inner: inner,
		plan:  plan,
		state: make(map[[3]int]*ruleState),
		rules: rules,
	}
}

// Endpoint implements Fabric.
func (f *FaultInjector) Endpoint(m int) (Endpoint, error) {
	ep, err := f.inner.Endpoint(m)
	if err != nil {
		return nil, err
	}
	f.killInit.Do(func() { f.killed = make([]atomic.Bool, ep.NumMachines()) })
	return &faultEndpoint{inj: f, inner: ep}, nil
}

// Close implements Fabric.
func (f *FaultInjector) Close() error { return f.inner.Close() }

// Kill marks machine m dead: subsequent sends from it fail hard and frames
// toward it are blackholed (released, never delivered). Idempotent; callable
// mid-job from test goroutines.
func (f *FaultInjector) Kill(m int) {
	f.killInit.Do(func() { f.killed = make([]atomic.Bool, m+1) })
	if m >= 0 && m < len(f.killed) && !f.killed[m].Swap(true) {
		f.kills.Add(1)
	}
}

// Alive reports whether machine m has not been killed.
func (f *FaultInjector) Alive(m int) bool {
	if f.killed == nil || m < 0 || m >= len(f.killed) {
		return true
	}
	return !f.killed[m].Load()
}

// ClearRules deactivates all rules (kills stay in effect); used by recovery
// tests to verify the engine works again once the fault clears.
func (f *FaultInjector) ClearRules() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

// Stats returns a snapshot of the injector's action counters.
func (f *FaultInjector) Stats() FaultStats {
	return FaultStats{
		Dropped:   f.dropped.Load(),
		Delayed:   f.delayed.Load(),
		Truncated: f.truncated.Load(),
		Failed:    f.failed.Load(),
		Kills:     f.kills.Load(),
	}
}

// decide finds the first rule that matches and triggers on this frame.
// Returns the rule (nil for no fault) — counter state advances for every
// matching rule whether or not it triggers, keeping streams deterministic.
func (f *FaultInjector) decide(src, dst int, t MsgType) *FaultRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	var hit *FaultRule
	for i := range f.rules {
		r := &f.rules[i]
		if !r.matches(src, dst, t) {
			continue
		}
		key := [3]int{i, src, dst}
		st := f.state[key]
		if st == nil {
			st = &ruleState{rng: rand.New(rand.NewSource(f.plan.Seed ^ int64(i)<<32 ^ int64(src)<<16 ^ int64(dst)))}
			f.state[key] = st
		}
		ord := st.matched
		st.matched++
		if r.Limit > 0 && st.applied >= r.Limit {
			continue
		}
		trigger := false
		if r.Prob > 0 {
			trigger = st.rng.Float64() < r.Prob
		} else if ord >= r.After {
			if r.Every <= 0 {
				trigger = ord == r.After
			} else {
				trigger = (ord-r.After)%r.Every == 0
			}
		}
		if trigger && hit == nil {
			st.applied++
			hit = r
		}
	}
	return hit
}

// faultEndpoint wraps one machine's endpoint, applying the injector's rules
// on the send side. Recv and the rest of the interface pass through.
type faultEndpoint struct {
	inj   *FaultInjector
	inner Endpoint
}

func (e *faultEndpoint) Machine() int      { return e.inner.Machine() }
func (e *faultEndpoint) NumMachines() int  { return e.inner.NumMachines() }
func (e *faultEndpoint) Metrics() *Metrics { return e.inner.Metrics() }
func (e *faultEndpoint) Recv() (*Buffer, bool) {
	return e.inner.Recv()
}
func (e *faultEndpoint) Close() error { return e.inner.Close() }

// Quiesce forwards to the inner endpoint when it supports quiescing (the
// async TCP path); leak checks rely on this passing through the wrapper.
func (e *faultEndpoint) Quiesce() {
	if q, ok := e.inner.(interface{ Quiesce() }); ok {
		q.Quiesce()
	}
}

func (e *faultEndpoint) Send(dst int, buf *Buffer) error {
	src := e.inner.Machine()
	inj := e.inj
	if !inj.Alive(src) {
		buf.Release()
		inj.failed.Add(1)
		return fmt.Errorf("comm: machine %d is killed", src)
	}
	if !inj.Alive(dst) {
		// A dead destination is a blackhole, not an error: real senders
		// only find out through timeouts (or TCP resets, eventually).
		buf.Release()
		inj.dropped.Add(1)
		return nil
	}
	rule := inj.decide(src, dst, MsgType(buf.Data[0]))
	if rule == nil {
		return e.inner.Send(dst, buf)
	}
	switch rule.Kind {
	case FaultDrop:
		buf.Release()
		inj.dropped.Add(1)
		return nil
	case FaultDelay:
		inj.delayed.Add(1)
		time.Sleep(rule.Delay)
		return e.inner.Send(dst, buf)
	case FaultTruncate:
		keep := rule.TruncateTo
		if keep < HeaderSize {
			keep = HeaderSize
		}
		if keep < len(buf.Data) {
			buf.Data = buf.Data[:keep]
			inj.truncated.Add(1)
		}
		return e.inner.Send(dst, buf)
	case FaultFail:
		buf.Release()
		inj.failed.Add(1)
		return fmt.Errorf("comm: injected send failure %d -> %d", src, dst)
	case FaultKill:
		inj.Kill(src)
		buf.Release()
		inj.failed.Add(1)
		return fmt.Errorf("comm: machine %d killed by fault injection", src)
	default:
		return e.inner.Send(dst, buf)
	}
}
