package comm

import (
	"sync"
)

// Router is the paper's poller thread (§3.4): a dedicated goroutine per
// machine that "polls across various queues between each workers and
// copiers and puts/gets message buffers to/from the networking device
// driver". Inbound frames are routed by type: requests to the copier queue,
// responses to the response queue of the worker that issued them, control
// frames to the control channel. Outbound frames go directly through
// Endpoint.Send, which is thread-safe; the Go scheduler plays the role of
// the paper's outbound polling.
type Router struct {
	ep         Endpoint
	workerResp []chan *Buffer
	reqQueue   chan *Buffer
	ctrl       chan *Buffer
	rmiResp    chan *Buffer
	abort      chan *Buffer
	done       sync.WaitGroup
}

// RouterConfig sizes the router's queues. Queue capacities must exceed the
// number of frames that can be in flight toward them or the poller stalls;
// the engine sizes them from its buffer-pool counts so routing never blocks
// (that bound is what makes the back-pressure scheme deadlock-free).
type RouterConfig struct {
	// NumWorkers is how many worker response queues to maintain.
	NumWorkers int
	// RespDepth is each worker response queue's capacity.
	RespDepth int
	// ReqDepth is the shared copier request queue's capacity.
	ReqDepth int
	// CtrlDepth is the control channel's capacity.
	CtrlDepth int
}

// NewRouter creates a router over ep and starts its poller goroutine.
func NewRouter(ep Endpoint, cfg RouterConfig) *Router {
	if cfg.NumWorkers < 1 {
		cfg.NumWorkers = 1
	}
	if cfg.RespDepth < 1 {
		cfg.RespDepth = 64
	}
	if cfg.ReqDepth < 1 {
		cfg.ReqDepth = 256
	}
	if cfg.CtrlDepth < 1 {
		cfg.CtrlDepth = 64
	}
	r := &Router{
		ep:         ep,
		workerResp: make([]chan *Buffer, cfg.NumWorkers),
		reqQueue:   make(chan *Buffer, cfg.ReqDepth),
		ctrl:       make(chan *Buffer, cfg.CtrlDepth),
		rmiResp:    make(chan *Buffer, cfg.CtrlDepth),
		abort:      make(chan *Buffer, cfg.CtrlDepth),
	}
	for i := range r.workerResp {
		r.workerResp[i] = make(chan *Buffer, cfg.RespDepth)
	}
	r.done.Add(1)
	go r.poll()
	return r
}

func (r *Router) poll() {
	defer r.done.Done()
	for {
		buf, ok := r.ep.Recv()
		if !ok {
			// Endpoint closed: propagate closure downstream so workers,
			// copiers, and collectives observe shutdown.
			for _, ch := range r.workerResp {
				close(ch)
			}
			close(r.reqQueue)
			close(r.ctrl)
			close(r.rmiResp)
			close(r.abort)
			return
		}
		switch MsgType(buf.Data[0]) {
		case MsgReadResp, MsgRMIResp, MsgStealGrant:
			w := buf.Data[1]
			if w == CtrlWorker {
				// Responses addressed to the machine's main goroutine: RMI
				// results go to the dedicated RMI channel so they cannot be
				// confused with collective traffic.
				if MsgType(buf.Data[0]) == MsgRMIResp {
					r.rmiResp <- buf
				} else {
					r.ctrl <- buf
				}
			} else if int(w) < len(r.workerResp) {
				r.workerResp[w] <- buf
			} else {
				buf.Release() // misaddressed; drop rather than wedge
			}
		case MsgReadReq, MsgWriteReq, MsgRMIReq, MsgSteal:
			r.reqQueue <- buf
		case MsgCtrl:
			r.ctrl <- buf
		case MsgAbort:
			// Abort announcements must not wedge the poller even if the
			// machine's abort watcher is slow: drop on a full queue (the
			// abort it carries has already been announced by someone).
			select {
			case r.abort <- buf:
			default:
				buf.Release()
			}
		default:
			buf.Release()
		}
	}
}

// WorkerResp returns worker w's response queue.
func (r *Router) WorkerResp(w int) <-chan *Buffer { return r.workerResp[w] }

// ReqQueue returns the shared copier request queue.
func (r *Router) ReqQueue() <-chan *Buffer { return r.reqQueue }

// Ctrl returns the control channel consumed by collectives.
func (r *Router) Ctrl() <-chan *Buffer { return r.ctrl }

// RMIResp returns the channel carrying RMI responses addressed to the
// machine's main goroutine (Worker == CtrlWorker).
func (r *Router) RMIResp() <-chan *Buffer { return r.rmiResp }

// AbortQueue returns the channel carrying inbound MsgAbort frames. The
// engine's abort watcher consumes it for the life of the machine.
func (r *Router) AbortQueue() <-chan *Buffer { return r.abort }

// PendingRequests reports how many inbound request frames are queued and not
// yet claimed by a copier — the recovery drain polls this to know when the
// cluster has gone quiet after an aborted job.
func (r *Router) PendingRequests() int { return len(r.reqQueue) }

// Shutdown closes the endpoint and waits for the poller to drain and close
// all downstream channels. Remaining queued frames are released.
func (r *Router) Shutdown() {
	r.ep.Close()
	r.done.Wait()
	for _, ch := range r.workerResp {
		for buf := range ch {
			buf.Release()
		}
	}
	for buf := range r.reqQueue {
		buf.Release()
	}
	for buf := range r.ctrl {
		buf.Release()
	}
	for buf := range r.rmiResp {
		buf.Release()
	}
	for buf := range r.abort {
		buf.Release()
	}
}
