package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/codec"
	"repro/internal/reduce"
)

// ErrAborted is returned by collective operations interrupted by a job
// abort; the engine translates it into the job's root-cause error.
var ErrAborted = errors.New("comm: collective aborted")

// ErrTimeout is returned by collective operations that exceeded their
// configured deadline — the signal that a peer died without announcing it.
var ErrTimeout = errors.New("comm: collective timed out")

// Collectives implements the control-plane operations the engine runs
// between parallel regions: the step barrier (Figure 5b measures its
// latency), allreduce for sequential-region reductions (eigenvector
// normalization, convergence tests, termination detection), and broadcast.
//
// The implementation is a star rooted at machine 0 over MsgCtrl frames. All
// machines must invoke the same collective sequence (SPMD); frames are
// matched by (op, seq) so a fast machine running ahead into the next
// collective cannot confuse a slow one.
//
// Collectives is used only by a machine's main goroutine and is not safe for
// concurrent use within one machine.
type Collectives struct {
	ep      Endpoint
	ctrl    <-chan *Buffer
	pool    *Pool
	seq     uint32
	pending []*Buffer

	// abort, when non-nil, interrupts waits as soon as the channel closes
	// (a job-scoped abort). The engine points it at the running job's abort
	// channel for the duration of each parallel region.
	abort <-chan struct{}
	// timeout bounds each control-frame wait; zero waits forever. It is the
	// last-resort detector for peers that died without sending MsgAbort.
	timeout time.Duration

	// compress enables zigzag-varint encoding of int64 allreduce payloads —
	// the carrier of ghost-merge deltas, whose values cluster near zero.
	// Float64 payloads always pass through raw (type-aware treatment).
	compress bool
	// enc is the reusable encode scratch; sized on first use.
	enc []byte
}

// SetAbort installs (or clears, with nil) the abort channel observed by
// collective waits. Called only from the owning machine's main goroutine.
func (c *Collectives) SetAbort(ch <-chan struct{}) { c.abort = ch }

// SetTimeout bounds every subsequent control-frame wait; zero disables.
func (c *Collectives) SetTimeout(d time.Duration) { c.timeout = d }

// SetCompression toggles wire compression of int64 allreduce payloads. All
// machines must agree (SPMD), matching the engine's config.
func (c *Collectives) SetCompression(on bool) { c.compress = on }

// Seq returns the collective sequence counter, used by recovery to
// resynchronize machines whose counters diverged during an aborted job.
func (c *Collectives) Seq() uint32 { return c.seq }

// Recover releases any buffered stale control frames and forces the
// sequence counter to seq. After an aborted job, machines may have
// advanced different distances into the job's collective schedule; the
// driver levels them with Recover so the next job's frames match up.
func (c *Collectives) Recover(seq uint32) {
	for _, buf := range c.pending {
		buf.Release()
	}
	c.pending = c.pending[:0]
	c.seq = seq
}

// Control-frame operation codes, stored in the high half of Header.Aux with
// the sequence number in the low half.
const (
	ctrlBarrierArrive uint32 = iota + 1
	ctrlBarrierRelease
	ctrlReduceContrib
	ctrlReduceResult
	ctrlBcast
)

// NewCollectives creates the collective engine for ep, consuming control
// frames from ctrl (the Router's control channel) and allocating outbound
// frames from pool.
func NewCollectives(ep Endpoint, ctrl <-chan *Buffer, pool *Pool) *Collectives {
	return &Collectives{ep: ep, ctrl: ctrl, pool: pool}
}

func ctrlAux(op, seq uint32) uint64 { return uint64(op)<<32 | uint64(seq) }

func (c *Collectives) newFrame(op, seq uint32) *Buffer {
	buf := c.pool.Acquire()
	buf.Reset(Header{
		Type:   MsgCtrl,
		Worker: CtrlWorker,
		Src:    uint16(c.ep.Machine()),
		Aux:    ctrlAux(op, seq),
	})
	return buf
}

// waitCtrl blocks for the next control frame matching (op, seq), buffering
// mismatches for later collectives. The caller owns (and must release) the
// returned buffer.
func (c *Collectives) waitCtrl(op, seq uint32) (*Buffer, error) {
	want := ctrlAux(op, seq)
	for i, buf := range c.pending {
		if buf.Header().Aux == want {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return buf, nil
		}
	}
	var timeoutCh <-chan time.Time
	if c.timeout > 0 {
		t := time.NewTimer(c.timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	for {
		select {
		case buf, ok := <-c.ctrl:
			if !ok {
				return nil, fmt.Errorf("comm: control channel closed during collective (op=%d seq=%d)", op, seq)
			}
			if buf.Header().Aux == want {
				return buf, nil
			}
			c.pending = append(c.pending, buf)
		case <-c.abort:
			return nil, fmt.Errorf("%w (op=%d seq=%d)", ErrAborted, op, seq)
		case <-timeoutCh:
			return nil, fmt.Errorf("%w after %v (op=%d seq=%d)", ErrTimeout, c.timeout, op, seq)
		}
	}
}

// Barrier blocks until every machine has entered it. With one machine it is
// a no-op. Figure 5b reports this operation's latency versus machine count.
func (c *Collectives) Barrier() error {
	c.seq++
	seq := c.seq
	p := c.ep.NumMachines()
	if p == 1 {
		return nil
	}
	me := c.ep.Machine()
	if me == 0 {
		for i := 0; i < p-1; i++ {
			buf, err := c.waitCtrl(ctrlBarrierArrive, seq)
			if err != nil {
				return err
			}
			buf.Release()
		}
		for d := 1; d < p; d++ {
			if err := c.ep.Send(d, c.newFrame(ctrlBarrierRelease, seq)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.ep.Send(0, c.newFrame(ctrlBarrierArrive, seq)); err != nil {
		return err
	}
	buf, err := c.waitCtrl(ctrlBarrierRelease, seq)
	if err != nil {
		return err
	}
	buf.Release()
	return nil
}

// AllReduceF64 reduces vals element-wise across all machines with op and
// stores the global result back into vals on every machine. Float payloads
// ship raw: varint coding only pays for integers clustered near zero.
func (c *Collectives) AllReduceF64(vals []float64, op reduce.Op) error {
	return c.allReduce(len(vals),
		func(buf *Buffer) {
			for _, v := range vals {
				buf.AppendU64(math.Float64bits(v))
			}
		},
		func(h Header, payload []byte, merge bool) error {
			if len(payload) < 8*len(vals) {
				return fmt.Errorf("comm: truncated allreduce contribution: %d bytes for %d values", len(payload), len(vals))
			}
			for i := range vals {
				v := math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
				if merge {
					vals[i] = reduce.ApplyF64(op, vals[i], v)
				} else {
					vals[i] = v
				}
			}
			return nil
		})
}

// AllReduceI64 reduces vals element-wise across all machines with op and
// stores the global result back into vals on every machine. With compression
// enabled, contributions and results ship as a zigzag-varint column whenever
// that is smaller than fixed width — ghost-merge deltas (the dominant int64
// reduction) are mostly zeros and small counts, so they compress hard.
func (c *Collectives) AllReduceI64(vals []int64, op reduce.Op) error {
	return c.allReduce(len(vals),
		func(buf *Buffer) {
			if c.compress {
				c.enc = codec.AppendZigZags(c.enc[:0], vals)
				if len(c.enc) < 8*len(vals) {
					buf.SetFlags(FlagCompressed)
					buf.AppendBytes(c.enc)
					c.ep.Metrics().RecordCompression(int64(8*len(vals)), int64(len(c.enc)))
					return
				}
				c.ep.Metrics().RecordCompression(int64(8*len(vals)), int64(8*len(vals)))
			}
			for _, v := range vals {
				buf.AppendU64(uint64(v))
			}
		},
		func(h Header, payload []byte, merge bool) error {
			if h.Flags&FlagCompressed != 0 {
				off := 0
				for i := range vals {
					u, k := codec.Uvarint(payload[off:])
					if k <= 0 {
						return fmt.Errorf("comm: torn compressed allreduce payload: value %d of %d at byte %d", i, len(vals), off)
					}
					off += k
					v := codec.UnZigZag(u)
					if merge {
						vals[i] = reduce.ApplyI64(op, vals[i], v)
					} else {
						vals[i] = v
					}
				}
				return nil
			}
			if len(payload) < 8*len(vals) {
				return fmt.Errorf("comm: truncated allreduce contribution: %d bytes for %d values", len(payload), len(vals))
			}
			for i := range vals {
				v := int64(binary.LittleEndian.Uint64(payload[8*i:]))
				if merge {
					vals[i] = reduce.ApplyI64(op, vals[i], v)
				} else {
					vals[i] = v
				}
			}
			return nil
		})
}

// allReduce implements the star-shaped gather-reduce-broadcast shared by the
// typed variants. write serializes the local contribution (setting
// FlagCompressed if it chose a compact encoding); apply decodes a remote
// payload — validating it against the header it arrived under — and merges
// it into the local values (merge=true) or overwrites them with the root's
// result (merge=false).
func (c *Collectives) allReduce(n int, write func(*Buffer), apply func(h Header, payload []byte, merge bool) error) error {
	c.seq++
	seq := c.seq
	p := c.ep.NumMachines()
	if p == 1 {
		return nil
	}
	if 8*n > c.pool.BufSize()-HeaderSize {
		return fmt.Errorf("comm: allreduce of %d values exceeds buffer size %d", n, c.pool.BufSize())
	}
	me := c.ep.Machine()
	if me == 0 {
		for i := 0; i < p-1; i++ {
			buf, err := c.waitCtrl(ctrlReduceContrib, seq)
			if err != nil {
				return err
			}
			err = apply(buf.Header(), buf.Payload(), true)
			buf.Release()
			if err != nil {
				return fmt.Errorf("%v (seq=%d)", err, seq)
			}
		}
		for d := 1; d < p; d++ {
			out := c.newFrame(ctrlReduceResult, seq)
			write(out)
			if err := c.ep.Send(d, out); err != nil {
				return err
			}
		}
		return nil
	}
	out := c.newFrame(ctrlReduceContrib, seq)
	write(out)
	if err := c.ep.Send(0, out); err != nil {
		return err
	}
	buf, err := c.waitCtrl(ctrlReduceResult, seq)
	if err != nil {
		return err
	}
	err = apply(buf.Header(), buf.Payload(), false)
	buf.Release()
	if err != nil {
		return fmt.Errorf("%v (seq=%d)", err, seq)
	}
	return nil
}

// Broadcast distributes machine 0's data to every machine. Machine 0 passes
// the payload (which is returned unchanged); other machines pass nil and
// receive a fresh copy of the root's payload.
func (c *Collectives) Broadcast(data []byte) ([]byte, error) {
	c.seq++
	seq := c.seq
	p := c.ep.NumMachines()
	me := c.ep.Machine()
	if me == 0 {
		if len(data) > c.pool.BufSize()-HeaderSize {
			return nil, fmt.Errorf("comm: broadcast of %d bytes exceeds buffer size %d", len(data), c.pool.BufSize())
		}
		for d := 1; d < p; d++ {
			out := c.newFrame(ctrlBcast, seq)
			out.AppendBytes(data)
			if err := c.ep.Send(d, out); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	buf, err := c.waitCtrl(ctrlBcast, seq)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(buf.Payload()))
	copy(out, buf.Payload())
	buf.Release()
	return out, nil
}

// AllReduceSumI64 is a convenience wrapper: sum a single int64 across all
// machines.
func (c *Collectives) AllReduceSumI64(v int64) (int64, error) {
	vals := []int64{v}
	if err := c.AllReduceI64(vals, reduce.Sum); err != nil {
		return 0, err
	}
	return vals[0], nil
}

// AllReduceSumF64 is a convenience wrapper: sum a single float64 across all
// machines.
func (c *Collectives) AllReduceSumF64(v float64) (float64, error) {
	vals := []float64{v}
	if err := c.AllReduceF64(vals, reduce.Sum); err != nil {
		return 0, err
	}
	return vals[0], nil
}
