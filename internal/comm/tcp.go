package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPFabric connects the simulated machines over loopback TCP sockets with
// length-prefixed frames. It exists to exercise the engine over a real wire:
// serialization, framing, kernel socket buffering, and flow control all
// apply, unlike the in-process fabric. One ordered connection carries each
// (src → dst) direction.
//
// Wire format per frame: uint32 little-endian length, then that many bytes
// of frame (header + payload).
//
// Sends are asynchronous by default: each destination has a dedicated sender
// goroutine draining a bounded queue, so a worker's Send costs one channel
// operation instead of two locked socket writes on its critical path. The
// length prefix and frame body go out in a single vectored write
// (net.Buffers → writev), halving syscalls per frame. Back-pressure is
// preserved: a full queue blocks the sender exactly like a drained buffer
// pool does.
type TCPFabric struct {
	p         int
	bufSize   int
	poolCount int
	opts      TCPOptions
	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex
	taken []bool

	// wireClock makes the kernel's delivery ordering visible to the race
	// detector: every sender increments it immediately before a frame's
	// write syscall, every reader loads it right after a frame arrives.
	// The kernel guarantees the real-time ordering (a frame cannot be read
	// before it was written); the atomic pair turns that into a
	// happens-before edge, so memory published before a Send is ordered
	// before the receiver processing the frame. Without it, cross-machine
	// ordering rests on incidental buffer-pool recycling.
	wireClock atomic.Int64
}

// TCPOptions tunes the TCP fabric's socket and sender behaviour. The zero
// value gives the fast defaults: async senders with a 16-frame queue per
// destination, TCP_NODELAY on, kernel-default socket buffers.
type TCPOptions struct {
	// SendQueueDepth is the per-destination async sender queue capacity in
	// frames. Zero selects the default (16). A negative value disables the
	// async path entirely: Send writes synchronously under a per-connection
	// mutex (the pre-fast-path behaviour, kept for ablation benchmarks).
	SendQueueDepth int
	// SocketBufBytes sets SO_SNDBUF/SO_RCVBUF on every connection when
	// positive; zero leaves the kernel defaults.
	SocketBufBytes int
	// DisableNoDelay leaves Nagle's algorithm enabled instead of setting
	// TCP_NODELAY. Batching already happens in the engine's message buffers,
	// so coalescing in the kernel only adds latency — this exists for
	// measurement, not production use.
	DisableNoDelay bool
	// DialRetries is how many times endpoint setup re-attempts a failed
	// dial before giving up. Zero selects the default (3); negative
	// disables retries. Transient dial failures (a peer's listener racing
	// its first Accept, ephemeral port exhaustion) otherwise abort the
	// whole cluster boot.
	DialRetries int
	// RetryBackoff is the initial backoff between dial or write retries,
	// doubling per attempt. Zero selects the default (25ms).
	RetryBackoff time.Duration
	// WriteDeadline bounds each frame's socket write. Zero leaves writes
	// unbounded (kernel flow control only); the 2s shutdown-flush bound
	// still applies. A stalled peer then surfaces as a send error the
	// engine can abort on, instead of a silent hang.
	WriteDeadline time.Duration
	// WriteRetries is how many times a failed frame write is retried over
	// a fresh connection (redial + handshake + rewrite) with backoff
	// before the sender declares the destination dead. Zero disables
	// reconnection — the pre-failure-model behaviour.
	WriteRetries int
}

const (
	defaultSendQueueDepth = 16
	defaultDialRetries    = 3
	defaultRetryBackoff   = 25 * time.Millisecond
)

// NewTCPFabric creates listeners for p machines on ephemeral loopback ports
// with default options. Each endpoint maintains a receive pool of poolCount
// buffers of bufSize bytes; a drained receive pool blocks that machine's
// socket readers, which propagates back-pressure to senders through TCP flow
// control.
func NewTCPFabric(p, poolCount, bufSize int) (*TCPFabric, error) {
	return NewTCPFabricOpts(p, poolCount, bufSize, TCPOptions{})
}

// NewTCPFabricOpts is NewTCPFabric with explicit tuning options.
func NewTCPFabricOpts(p, poolCount, bufSize int, opts TCPOptions) (*TCPFabric, error) {
	if p < 1 {
		return nil, fmt.Errorf("comm: fabric needs at least one machine")
	}
	if opts.SendQueueDepth == 0 {
		opts.SendQueueDepth = defaultSendQueueDepth
	}
	if opts.DialRetries == 0 {
		opts.DialRetries = defaultDialRetries
	} else if opts.DialRetries < 0 {
		opts.DialRetries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = defaultRetryBackoff
	}
	f := &TCPFabric{
		p:         p,
		bufSize:   bufSize,
		poolCount: poolCount,
		opts:      opts,
		listeners: make([]net.Listener, p),
		addrs:     make([]string, p),
		taken:     make([]bool, p),
	}
	for m := 0; m < p; m++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("comm: listen for machine %d: %w", m, err)
		}
		f.listeners[m] = l
		f.addrs[m] = l.Addr().String()
	}
	return f, nil
}

// tune applies the fabric's socket options to one connection.
func (f *TCPFabric) tune(c net.Conn) {
	tc, ok := c.(*net.TCPConn)
	if !ok {
		return
	}
	tc.SetNoDelay(!f.opts.DisableNoDelay)
	if f.opts.SocketBufBytes > 0 {
		tc.SetWriteBuffer(f.opts.SocketBufBytes)
		tc.SetReadBuffer(f.opts.SocketBufBytes)
	}
}

// Endpoint implements Fabric: it dials every peer, starts the accept loop
// and sender goroutines, and returns once the send side is fully connected.
func (f *TCPFabric) Endpoint(m int) (Endpoint, error) {
	f.mu.Lock()
	if m < 0 || m >= f.p {
		f.mu.Unlock()
		return nil, fmt.Errorf("comm: machine %d out of range [0,%d)", m, f.p)
	}
	if f.taken[m] {
		f.mu.Unlock()
		return nil, fmt.Errorf("comm: endpoint %d already taken", m)
	}
	f.taken[m] = true
	f.mu.Unlock()

	e := &tcpEndpoint{
		fabric:  f,
		machine: m,
		conns:   make([]*lockedConn, f.p),
		senders: make([]*tcpSender, f.p),
		inbox:   make(chan *Buffer, 4*f.p),
		recvGas: NewPool(f.poolCount, f.bufSize),
		done:    make(chan struct{}),
	}
	async := f.opts.SendQueueDepth > 0
	for d := 0; d < f.p; d++ {
		if d == m {
			continue
		}
		c, err := f.dialPeer(m, d)
		if err != nil {
			e.Close()
			return nil, err
		}
		if async {
			s := &tcpSender{
				e:     e,
				dst:   d,
				c:     c,
				queue: make(chan *Buffer, f.opts.SendQueueDepth),
			}
			e.senders[d] = s
			e.senderWG.Add(1)
			go s.loop()
		} else {
			e.conns[d] = &lockedConn{c: c}
		}
	}
	go e.acceptLoop(f.listeners[m])
	return e, nil
}

// dialPeer connects machine m's send side to peer d — dial, tune, hello —
// retrying transient failures with exponential backoff per TCPOptions.
// Used both at endpoint setup and by sender reconnection after a failed
// write.
func (f *TCPFabric) dialPeer(m, d int) (net.Conn, error) {
	backoff := f.opts.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		c, err := net.Dial("tcp", f.addrs[d])
		if err == nil {
			f.tune(c)
			var hello [2]byte
			binary.LittleEndian.PutUint16(hello[:], uint16(m))
			if _, err = c.Write(hello[:]); err == nil {
				return c, nil
			}
			c.Close()
		}
		lastErr = err
		if attempt >= f.opts.DialRetries {
			return nil, fmt.Errorf("comm: machine %d dialing %d (attempt %d): %w", m, d, attempt+1, lastErr)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// Close shuts the listeners down.
func (f *TCPFabric) Close() error {
	var first error
	for _, l := range f.listeners {
		if l != nil {
			if err := l.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// lockedConn is the synchronous send path (SendQueueDepth < 0): one mutex
// serializing vectored writes per connection.
type lockedConn struct {
	mu sync.Mutex
	c  net.Conn
}

// tcpSender is the asynchronous per-destination send path: Send enqueues and
// returns; this goroutine performs the vectored write off the caller's
// critical path. The bounded queue preserves back-pressure, and single-
// goroutine draining preserves per-destination frame order (the same FIFO
// the per-connection mutex used to provide).
type tcpSender struct {
	e   *tcpEndpoint
	dst int
	// mu guards c: the sender goroutine swaps in a fresh connection on
	// reconnect while Close (another goroutine) arms write deadlines on it.
	mu sync.Mutex
	c  net.Conn

	queue chan *Buffer
	// pending counts frames accepted by Send but not yet written+released;
	// Quiesce polls it so tests can await full drainage.
	pending atomic.Int64
	// err holds the first write error; once set, subsequent Sends fail fast
	// so a dead connection surfaces at the caller instead of silently
	// swallowing frames.
	err atomic.Pointer[error]
}

func (s *tcpSender) failed() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *tcpSender) conn() net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

func (s *tcpSender) setConn(c net.Conn) {
	s.mu.Lock()
	s.c = c
	s.mu.Unlock()
}

// loop drains the queue until Close closes it, then closes the connection.
// Frames already queued when Close runs are still flushed — the synchronous
// path got that for free from the kernel's graceful close, and collectives
// rely on it: a machine may finish (and shut down) while its final frames
// are what unblocks a peer.
func (s *tcpSender) loop() {
	defer s.e.senderWG.Done()
	var lenBuf [4]byte
	for buf := range s.queue {
		s.writeFrame(buf, &lenBuf)
		s.pending.Add(-1)
	}
	s.conn().Close()
}

// writeFrame writes one frame, retrying over a fresh connection per
// TCPOptions.WriteRetries. Retries always reconnect: a partial write on the
// old connection poisons its framing, so resending there would corrupt the
// stream — the receiver drops the old connection at its first truncated
// frame, and the engine's (seq-matched, commutative) protocols tolerate the
// reordering a second connection introduces.
func (s *tcpSender) writeFrame(buf *Buffer, lenBuf *[4]byte) {
	if s.failed() != nil {
		buf.Release()
		return
	}
	n, t := len(buf.Data), MsgType(buf.Data[0])
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(n))
	err := s.writeOnce(buf.Data, lenBuf)
	for attempt := 0; err != nil && attempt < s.e.fabric.opts.WriteRetries; attempt++ {
		if !s.reconnect(attempt) {
			break
		}
		err = s.writeOnce(buf.Data, lenBuf)
	}
	buf.Release()
	if err != nil {
		werr := fmt.Errorf("comm: async send %d -> %d: %w", s.e.machine, s.dst, err)
		s.err.CompareAndSwap(nil, &werr)
		s.e.metrics.RecordSendError()
		return
	}
	// Only successful writes count as sent traffic.
	s.e.metrics.recordRaw(n, t, dirSent)
}

// writeOnce performs a single vectored frame write on the current
// connection, bounded by the configured write deadline (and, after Close,
// by the 2s shutdown-flush bound so a stalled peer cannot pin the flush).
func (s *tcpSender) writeOnce(data []byte, lenBuf *[4]byte) error {
	c := s.conn()
	deadline := s.e.fabric.opts.WriteDeadline
	select {
	case <-s.e.done:
		if deadline <= 0 || deadline > 2*time.Second {
			deadline = 2 * time.Second
		}
	default:
	}
	if deadline > 0 {
		c.SetWriteDeadline(time.Now().Add(deadline))
	}
	vec := net.Buffers{lenBuf[:], data}
	s.e.fabric.wireClock.Add(1) // publish: pairs with the readLoop load
	_, err := vec.WriteTo(c)
	return err
}

// reconnect replaces the sender's connection with a freshly dialed one,
// backing off exponentially per attempt. Returns false when redial fails or
// the endpoint is shutting down (no point chasing a peer during teardown).
func (s *tcpSender) reconnect(attempt int) bool {
	select {
	case <-s.e.done:
		return false
	default:
	}
	time.Sleep(s.e.fabric.opts.RetryBackoff << attempt)
	c, err := s.e.fabric.dialPeer(s.e.machine, s.dst)
	if err != nil {
		return false
	}
	s.conn().Close()
	s.setConn(c)
	return true
}

type tcpEndpoint struct {
	fabric  *TCPFabric
	machine int
	conns   []*lockedConn // sync mode only
	senders []*tcpSender  // async mode only
	inbox   chan *Buffer
	recvGas *Pool // receive-side buffer pool
	metrics Metrics

	closeOnce sync.Once
	done      chan struct{}
	readers   sync.WaitGroup
	senderWG  sync.WaitGroup
}

func (e *tcpEndpoint) Machine() int      { return e.machine }
func (e *tcpEndpoint) NumMachines() int  { return e.fabric.p }
func (e *tcpEndpoint) Metrics() *Metrics { return &e.metrics }

func (e *tcpEndpoint) acceptLoop(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		e.fabric.tune(c)
		e.readers.Add(1)
		go e.readLoop(c)
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer e.readers.Done()
	defer c.Close()
	var hello [2]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			if err != io.EOF {
				// Truncated length prefix: the peer died mid-frame.
				e.metrics.RecordRecvError()
			}
			return // peer closed or shutdown
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n < HeaderSize || int(n) > e.recvGas.BufSize() {
			// Corrupt frame length: the stream is unrecoverable (framing is
			// lost), so the connection drops — but loudly, through the error
			// counter and the log, instead of a silent return that leaves a
			// poisoned stream looking like a hang.
			e.metrics.RecordRecvError()
			log.Printf("comm: machine %d: dropping connection %s: corrupt frame length %d (valid %d..%d)",
				e.machine, c.RemoteAddr(), n, HeaderSize, e.recvGas.BufSize())
			return
		}
		buf := e.recvGas.Acquire()
		buf.Data = buf.Data[:n]
		// Acquire the fabric wireClock: the frame's sender incremented it
		// before the write syscall, so this load orders everything the
		// sender published before Send ahead of this frame's processing.
		e.fabric.wireClock.Load()
		if _, err := io.ReadFull(c, buf.Data); err != nil {
			buf.Release()
			e.metrics.RecordRecvError()
			log.Printf("comm: machine %d: dropping connection %s: truncated %d-byte frame: %v",
				e.machine, c.RemoteAddr(), n, err)
			return
		}
		select {
		case e.inbox <- buf:
		case <-e.done:
			buf.Release()
			return
		}
	}
}

func (e *tcpEndpoint) Send(dst int, buf *Buffer) error {
	if dst < 0 || dst >= e.fabric.p {
		buf.Release()
		return fmt.Errorf("comm: send to machine %d out of range", dst)
	}
	if dst == e.machine {
		select {
		case <-e.done:
			buf.Release()
			return fmt.Errorf("comm: endpoint %d closed", e.machine)
		default:
		}
		n, t := len(buf.Data), MsgType(buf.Data[0])
		select {
		case e.inbox <- buf:
			e.metrics.recordRaw(n, t, dirSent)
			return nil
		case <-e.done:
			buf.Release()
			return fmt.Errorf("comm: endpoint %d closed", e.machine)
		}
	}
	if s := e.senders[dst]; s != nil {
		return e.sendAsync(s, dst, buf)
	}
	return e.sendSync(dst, buf)
}

// sendAsync hands the frame to dst's sender goroutine, blocking only when
// the bounded queue is full (back-pressure, like the buffer pools).
func (e *tcpEndpoint) sendAsync(s *tcpSender, dst int, buf *Buffer) (err error) {
	if werr := s.failed(); werr != nil {
		buf.Release()
		return fmt.Errorf("comm: send %d -> %d: %w", e.machine, dst, werr)
	}
	s.pending.Add(1)
	defer func() {
		// Close() closes the queue channel; a racing or blocked enqueue
		// panics, which we convert to a clean shutdown error (the same
		// pattern the in-process fabric uses for closed inboxes).
		if recover() != nil {
			s.pending.Add(-1)
			buf.Release()
			err = fmt.Errorf("comm: endpoint %d closed", e.machine)
		}
	}()
	s.queue <- buf
	return nil
}

// sendSync is the synchronous path (SendQueueDepth < 0): a single vectored
// write under the per-connection mutex.
func (e *tcpEndpoint) sendSync(dst int, buf *Buffer) error {
	lc := e.conns[dst]
	if lc == nil {
		buf.Release()
		return fmt.Errorf("comm: no connection %d -> %d", e.machine, dst)
	}
	n, t := len(buf.Data), MsgType(buf.Data[0])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(n))
	vec := net.Buffers{lenBuf[:], buf.Data}
	lc.mu.Lock()
	e.fabric.wireClock.Add(1) // publish: pairs with the readLoop load
	_, err := vec.WriteTo(lc.c)
	lc.mu.Unlock()
	buf.Release()
	if err != nil {
		e.metrics.RecordSendError()
		return fmt.Errorf("comm: send %d -> %d: %w", e.machine, dst, err)
	}
	e.metrics.recordRaw(n, t, dirSent)
	return nil
}

func (e *tcpEndpoint) Recv() (*Buffer, bool) {
	select {
	case buf := <-e.inbox:
		e.metrics.record(buf, dirRecv)
		return buf, true
	case <-e.done:
		// Drain anything already queued before reporting closure.
		select {
		case buf := <-e.inbox:
			e.metrics.record(buf, dirRecv)
			return buf, true
		default:
			return nil, false
		}
	}
}

// Quiesce blocks until every async sender has written (and released) all
// frames accepted so far. The engine's job protocol guarantees remote
// delivery before a job completes, but the final release in a sender
// goroutine races the response's arrival by a few instructions; leak
// checks call Quiesce to close that window deterministically.
func (e *tcpEndpoint) Quiesce() {
	for _, s := range e.senders {
		if s == nil {
			continue
		}
		for s.pending.Load() > 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		for _, s := range e.senders {
			if s != nil {
				// Unblocks racing Sends (they recover the panic); the sender
				// loop flushes the frames it already accepted — peers may be
				// blocked on them mid-collective — and closes its connection
				// on exit. The post-done write deadline in writeFrame bounds
				// how long a stalled peer can pin the flush.
				close(s.queue)
				// Bound a write already in flight against a stalled peer;
				// writeFrame re-arms the deadline per remaining frame.
				s.conn().SetWriteDeadline(time.Now().Add(2 * time.Second))
			}
		}
		// Wait for the flush so Close keeps the synchronous path's guarantee:
		// once it returns, every accepted frame is on the wire (or failed)
		// and released back to its pool.
		e.senderWG.Wait()
		for _, lc := range e.conns {
			if lc != nil {
				lc.c.Close()
			}
		}
	})
	return nil
}
