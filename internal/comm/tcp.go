package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPFabric connects the simulated machines over loopback TCP sockets with
// length-prefixed frames. It exists to exercise the engine over a real wire:
// serialization, framing, kernel socket buffering, and flow control all
// apply, unlike the in-process fabric. One ordered connection carries each
// (src → dst) direction.
//
// Wire format per frame: uint32 little-endian length, then that many bytes
// of frame (header + payload).
type TCPFabric struct {
	p         int
	bufSize   int
	poolCount int
	listeners []net.Listener
	addrs     []string

	mu    sync.Mutex
	taken []bool
}

// NewTCPFabric creates listeners for p machines on ephemeral loopback ports.
// Each endpoint maintains a receive pool of poolCount buffers of bufSize
// bytes; a drained receive pool blocks that machine's socket readers, which
// propagates back-pressure to senders through TCP flow control.
func NewTCPFabric(p, poolCount, bufSize int) (*TCPFabric, error) {
	if p < 1 {
		return nil, fmt.Errorf("comm: fabric needs at least one machine")
	}
	f := &TCPFabric{
		p:         p,
		bufSize:   bufSize,
		poolCount: poolCount,
		listeners: make([]net.Listener, p),
		addrs:     make([]string, p),
		taken:     make([]bool, p),
	}
	for m := 0; m < p; m++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("comm: listen for machine %d: %w", m, err)
		}
		f.listeners[m] = l
		f.addrs[m] = l.Addr().String()
	}
	return f, nil
}

// Endpoint implements Fabric: it dials every peer, starts the accept loop,
// and returns once the send side is fully connected.
func (f *TCPFabric) Endpoint(m int) (Endpoint, error) {
	f.mu.Lock()
	if m < 0 || m >= f.p {
		f.mu.Unlock()
		return nil, fmt.Errorf("comm: machine %d out of range [0,%d)", m, f.p)
	}
	if f.taken[m] {
		f.mu.Unlock()
		return nil, fmt.Errorf("comm: endpoint %d already taken", m)
	}
	f.taken[m] = true
	f.mu.Unlock()

	e := &tcpEndpoint{
		fabric:  f,
		machine: m,
		conns:   make([]*lockedConn, f.p),
		inbox:   make(chan *Buffer, 4*f.p),
		recvGas: NewPool(f.poolCount, f.bufSize),
		done:    make(chan struct{}),
	}
	for d := 0; d < f.p; d++ {
		if d == m {
			continue
		}
		c, err := net.Dial("tcp", f.addrs[d])
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("comm: machine %d dialing %d: %w", m, d, err)
		}
		var hello [2]byte
		binary.LittleEndian.PutUint16(hello[:], uint16(m))
		if _, err := c.Write(hello[:]); err != nil {
			e.Close()
			return nil, fmt.Errorf("comm: machine %d hello to %d: %w", m, d, err)
		}
		e.conns[d] = &lockedConn{c: c}
	}
	go e.acceptLoop(f.listeners[m])
	return e, nil
}

// Close shuts the listeners down.
func (f *TCPFabric) Close() error {
	var first error
	for _, l := range f.listeners {
		if l != nil {
			if err := l.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

type lockedConn struct {
	mu sync.Mutex
	c  net.Conn
}

type tcpEndpoint struct {
	fabric  *TCPFabric
	machine int
	conns   []*lockedConn
	inbox   chan *Buffer
	recvGas *Pool // receive-side buffer pool
	metrics Metrics

	closeOnce sync.Once
	done      chan struct{}
	readers   sync.WaitGroup
}

func (e *tcpEndpoint) Machine() int      { return e.machine }
func (e *tcpEndpoint) NumMachines() int  { return e.fabric.p }
func (e *tcpEndpoint) Metrics() *Metrics { return &e.metrics }

func (e *tcpEndpoint) acceptLoop(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		e.readers.Add(1)
		go e.readLoop(c)
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer e.readers.Done()
	defer c.Close()
	var hello [2]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return // peer closed or shutdown
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n < HeaderSize || int(n) > e.recvGas.BufSize() {
			return // corrupt frame; drop the connection
		}
		buf := e.recvGas.Acquire()
		buf.Data = buf.Data[:n]
		if _, err := io.ReadFull(c, buf.Data); err != nil {
			buf.Release()
			return
		}
		select {
		case e.inbox <- buf:
		case <-e.done:
			buf.Release()
			return
		}
	}
}

func (e *tcpEndpoint) Send(dst int, buf *Buffer) error {
	if dst < 0 || dst >= e.fabric.p {
		buf.Release()
		return fmt.Errorf("comm: send to machine %d out of range", dst)
	}
	if dst == e.machine {
		select {
		case <-e.done:
			buf.Release()
			return fmt.Errorf("comm: endpoint %d closed", e.machine)
		default:
		}
		n, t := len(buf.Data), MsgType(buf.Data[0])
		select {
		case e.inbox <- buf:
			e.metrics.recordRaw(n, t, dirSent)
			return nil
		case <-e.done:
			buf.Release()
			return fmt.Errorf("comm: endpoint %d closed", e.machine)
		}
	}
	lc := e.conns[dst]
	if lc == nil {
		buf.Release()
		return fmt.Errorf("comm: no connection %d -> %d", e.machine, dst)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(buf.Data)))
	lc.mu.Lock()
	_, err := lc.c.Write(lenBuf[:])
	if err == nil {
		_, err = lc.c.Write(buf.Data)
	}
	lc.mu.Unlock()
	e.metrics.record(buf, dirSent)
	buf.Release()
	if err != nil {
		return fmt.Errorf("comm: send %d -> %d: %w", e.machine, dst, err)
	}
	return nil
}

func (e *tcpEndpoint) Recv() (*Buffer, bool) {
	select {
	case buf := <-e.inbox:
		e.metrics.record(buf, dirRecv)
		return buf, true
	case <-e.done:
		// Drain anything already queued before reporting closure.
		select {
		case buf := <-e.inbox:
			e.metrics.record(buf, dirRecv)
			return buf, true
		default:
			return nil, false
		}
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		for _, lc := range e.conns {
			if lc != nil {
				lc.c.Close()
			}
		}
	})
	return nil
}
