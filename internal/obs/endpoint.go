package obs

import "repro/internal/comm"

// WrapEndpoint layers traffic accounting over a comm endpoint: every Send
// feeds the registry's per-(src,dst) matrix and byte/frame counters, every
// Recv the inbound counters. With a nil or unattached registry the endpoint
// is returned unwrapped, so the disabled engine keeps the raw transport on
// its hot path.
func WrapEndpoint(ep comm.Endpoint, r *Registry) comm.Endpoint {
	if r == nil || ep == nil {
		return ep
	}
	return &obsEndpoint{inner: ep, reg: r, src: ep.Machine()}
}

type obsEndpoint struct {
	inner comm.Endpoint
	reg   *Registry
	src   int
}

func (e *obsEndpoint) Machine() int           { return e.inner.Machine() }
func (e *obsEndpoint) NumMachines() int       { return e.inner.NumMachines() }
func (e *obsEndpoint) Metrics() *comm.Metrics { return e.inner.Metrics() }
func (e *obsEndpoint) Close() error           { return e.inner.Close() }

// Send records the frame before forwarding: Send transfers buffer ownership,
// so the length must be captured before the inner call (the buffer may be
// recycled by the time it returns).
func (e *obsEndpoint) Send(dst int, buf *comm.Buffer) error {
	n := len(buf.Data)
	err := e.inner.Send(dst, buf)
	if err != nil {
		e.reg.Add(e.src, CtrSendErrors, 1)
		return err
	}
	e.reg.Traffic(e.src, dst, n)
	return nil
}

func (e *obsEndpoint) Recv() (*comm.Buffer, bool) {
	buf, ok := e.inner.Recv()
	if ok && buf != nil {
		e.reg.Add(e.src, CtrBytesRecv, int64(len(buf.Data)))
		e.reg.Add(e.src, CtrFramesRecv, 1)
	}
	return buf, ok
}

// Quiesce forwards to the inner endpoint when it supports quiescing (the
// async TCP path); the engine's leak checks find this method by type
// assertion, so the wrapper must pass it through.
func (e *obsEndpoint) Quiesce() {
	if q, ok := e.inner.(interface{ Quiesce() }); ok {
		q.Quiesce()
	}
}
