package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers the hot paths from many goroutines (run
// under -race) and checks the drained per-job report accounts for every
// recorded event exactly once.
func TestRegistryConcurrency(t *testing.T) {
	const machines, goroutines, rounds = 4, 8, 500
	r := NewRegistry()
	r.Attach(machines)
	r.BeginJob(1, "hammer")

	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			m := gi % machines
			for i := 0; i < rounds; i++ {
				r.Add(m, CtrFlushes, 10)
				r.Traffic(m, (m+1)%machines, 100)
				r.Observe(m, HistReadRTT, time.Microsecond)
				start := r.Clock()
				r.Span(m, gi, SpanFlush, 1, start, 0)
			}
		}(gi)
	}
	wg.Wait()

	rep := r.EndJob(1, time.Millisecond)
	if rep == nil {
		t.Fatal("EndJob returned nil report")
	}
	wantEvents := int64(goroutines * rounds)
	if got := rep.Counters["flushes"]; got != 10*wantEvents {
		t.Errorf("flushes = %d, want %d", got, 10*wantEvents)
	}
	if got := rep.TotalBytes(); got != 100*wantEvents {
		t.Errorf("traffic matrix total = %d, want %d", got, 100*wantEvents)
	}
	// Traffic feeds the sender-side byte counter as well as the matrix.
	if got := rep.Counters["bytes_sent"]; got != 100*wantEvents {
		t.Errorf("bytes_sent = %d, want %d", got, 100*wantEvents)
	}
	if got := rep.Histograms[HistReadRTT.String()].Count; got != wantEvents {
		t.Errorf("rtt histogram count = %d, want %d", got, wantEvents)
	}
	// Lifetime view must survive the per-job reset.
	if got := r.LifetimeCounters()["flushes"]; got != 10*wantEvents {
		t.Errorf("lifetime flushes = %d, want %d", got, 10*wantEvents)
	}
	// A second job starts from zero.
	r.BeginJob(2, "empty")
	rep2 := r.EndJob(2, time.Millisecond)
	if got := rep2.Counters["flushes"]; got != 0 {
		t.Errorf("second job inherited %d flushes, want 0", got)
	}
}

// TestSpanOrdering checks the trace ring's invariants: Seq strictly
// increases per machine, and sorted output is ordered by start time.
func TestSpanOrdering(t *testing.T) {
	r := NewRegistry()
	r.Attach(2)
	r.BeginJob(7, "spans")
	for i := 0; i < 50; i++ {
		start := r.Clock()
		r.Span(i%2, WorkerMain, SpanTaskPhase, 7, start, uint64(i))
	}
	rep := r.EndJob(7, time.Millisecond)
	if len(rep.Spans) != 50 {
		t.Fatalf("report has %d spans, want 50", len(rep.Spans))
	}
	lastSeq := map[int16]uint64{}
	for _, s := range rep.Spans {
		if prev, ok := lastSeq[s.Machine]; ok && s.Seq <= prev {
			t.Fatalf("machine %d seq not increasing: %d after %d", s.Machine, s.Seq, prev)
		}
		lastSeq[s.Machine] = s.Seq
		if s.Job != 7 {
			t.Fatalf("span for job %d leaked into job 7's report", s.Job)
		}
		if s.DurNS < 0 || s.StartNS < 0 {
			t.Fatalf("negative span timing: %+v", s)
		}
	}
	for i := 1; i < len(rep.Spans); i++ {
		if rep.Spans[i].StartNS < rep.Spans[i-1].StartNS {
			t.Fatalf("spans not sorted by start: %d before %d",
				rep.Spans[i-1].StartNS, rep.Spans[i].StartNS)
		}
	}
}

// TestTraceRingWraps ensures an overfull ring keeps the most recent spans.
func TestTraceRingWraps(t *testing.T) {
	r := NewRegistry()
	r.SetTraceDepth(16)
	r.Attach(1)
	r.BeginJob(1, "wrap")
	for i := 0; i < 100; i++ {
		r.Span(0, WorkerMain, SpanFlush, 1, r.Clock(), uint64(i))
	}
	spans := r.RecentSpans(1000)
	if len(spans) != 16 {
		t.Fatalf("ring kept %d spans, want 16", len(spans))
	}
	if got := spans[len(spans)-1].Arg; got != 99 {
		t.Errorf("newest span arg = %d, want 99", got)
	}
}

// TestNilRegistryZeroAlloc proves the disabled path allocates nothing — the
// guarantee that lets instrumentation stay compiled into the hot loops.
func TestNilRegistryZeroAlloc(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(100, func() {
		r.Add(0, CtrBytesSent, 1)
		r.Traffic(0, 1, 64)
		r.Observe(0, HistReadRTT, time.Microsecond)
		start := r.Clock()
		r.Span(0, WorkerMain, SpanFlush, 1, start, 0)
		r.BeginJob(1, "x")
		r.EndJob(1, time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("nil registry allocated %.1f times per run, want 0", allocs)
	}
}

// TestAttachedRegistryHotPathZeroAlloc: even attached, the per-event paths
// (Add/Traffic/Observe/Span) must not allocate.
func TestAttachedRegistryHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	r.Attach(2)
	r.BeginJob(1, "hot")
	allocs := testing.AllocsPerRun(100, func() {
		r.Add(0, CtrBytesSent, 1)
		r.Traffic(0, 1, 64)
		r.Observe(0, HistReadRTT, time.Microsecond)
		r.Span(0, 3, SpanFlush, 1, r.Clock(), 0)
	})
	if allocs != 0 {
		t.Errorf("attached hot path allocated %.1f times per run, want 0", allocs)
	}
}

// TestHistogramQuantiles checks bucketed quantiles land within one
// power-of-two bucket of the true values.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 1; i <= 1000; i++ {
		h.observe(int64(i) * 1000) // 1µs .. 1ms
	}
	s := h.snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if mean := s.Mean(); mean < 400*time.Microsecond || mean > 700*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", mean)
	}
	p50 := s.Quantile(0.50)
	if p50 < 250*time.Microsecond || p50 > 1100*time.Microsecond {
		t.Errorf("p50 = %v, want within a bucket of 500µs", p50)
	}
	if p99 := s.Quantile(0.99); p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	if q0 := s.Quantile(0); q0 > s.Quantile(1) {
		t.Errorf("q0 %v > q1 %v", q0, s.Quantile(1))
	}
}

// TestRecordAbort exercises the flight recorder: an abort captures counters
// and span tails, and the next job starts from drained state.
func TestRecordAbort(t *testing.T) {
	r := NewRegistry()
	r.Attach(2)
	r.BeginJob(3, "doomed")
	r.Add(0, CtrFlushes, 777)
	r.Traffic(0, 1, 512)
	r.Span(0, WorkerMain, SpanBarrier, 3, r.Clock(), 0)
	dump := r.RecordAbort(3, "doomed", fmt.Errorf("injected fault"))
	if dump == nil {
		t.Fatal("RecordAbort returned nil")
	}
	if dump.Err != "injected fault" || dump.Job != 3 {
		t.Fatalf("dump mismatch: %+v", dump)
	}
	if dump.Counters["flushes"] != 777 {
		t.Errorf("dump flushes = %d, want 777", dump.Counters["flushes"])
	}
	if len(dump.Spans) == 0 {
		t.Error("dump retained no spans")
	}
	if got := r.LastAbort(); got == nil || got.Job != 3 {
		t.Errorf("LastAbort = %+v", got)
	}
	if r.AbortsObserved() != 1 {
		t.Errorf("AbortsObserved = %d, want 1", r.AbortsObserved())
	}
	if s := dump.Summary(); s == "" {
		t.Error("Summary is empty")
	}
	// Recovery job must not see the aborted job's counters.
	r.BeginJob(4, "recovery")
	rep := r.EndJob(4, time.Millisecond)
	if got := rep.Counters["flushes"]; got != 0 {
		t.Errorf("recovery job inherited %d flushes", got)
	}
	// But lifetime totals keep them.
	if got := r.LifetimeCounters()["flushes"]; got != 777 {
		t.Errorf("lifetime lost aborted job's counters: %d", got)
	}
}

// TestReportFormatting smoke-tests the human-readable surfaces.
func TestReportFormatting(t *testing.T) {
	r := NewRegistry()
	r.Attach(2)
	r.BeginJob(1, "fmt")
	r.Traffic(0, 1, 4096)
	r.Traffic(1, 0, 1024)
	r.Add(0, CtrBytesSent, 4096)
	start := r.Clock()
	r.Span(0, WorkerMain, SpanTaskPhase, 1, start, 0)
	rep := r.EndJob(1, 5*time.Millisecond)
	if line := rep.Line(); line == "" {
		t.Error("Line is empty")
	}
	m := rep.TrafficMatrixString()
	if m == "" {
		t.Error("TrafficMatrixString is empty")
	}
	if rep.TotalBytes() != 5120 {
		t.Errorf("TotalBytes = %d, want 5120", rep.TotalBytes())
	}
	if got := rep.SpanCount(SpanTaskPhase); got != 1 {
		t.Errorf("SpanCount(task) = %d, want 1", got)
	}
	if tot := rep.PhaseTotals(); tot[SpanTaskPhase.String()] <= 0 {
		t.Errorf("PhaseTotals missing task phase: %v", tot)
	}
}

// TestHTTPHandler smoke-tests the debug endpoints.
func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	h := r.Handler()

	// Not attached yet: metrics must refuse cleanly.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rec.Code != 503 {
		t.Fatalf("unattached /debug/metrics = %d, want 503", rec.Code)
	}

	r.Attach(2)
	r.BeginJob(1, "http")
	r.Add(0, CtrBytesSent, 42)
	r.Span(0, WorkerMain, SpanTaskPhase, 1, r.Clock(), 0)
	r.EndJob(1, time.Millisecond)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/metrics = %d, want 200", rec.Code)
	}
	var payload struct {
		Machines int              `json:"machines"`
		Lifetime map[string]int64 `json:"lifetime"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("metrics payload is not JSON: %v", err)
	}
	if payload.Machines != 2 || payload.Lifetime["bytes_sent"] != 42 {
		t.Errorf("payload = %+v", payload)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?max=10", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace = %d, want 200", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/abort", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/abort with no abort = %d, want 404", rec.Code)
	}
	r.RecordAbort(2, "x", fmt.Errorf("boom"))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/abort", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/abort after abort = %d, want 200", rec.Code)
	}
}
