// Package obs is the engine's observability subsystem: a unified metrics
// registry (atomic counters, latency histograms, and a per-(src,dst) traffic
// matrix with snapshot-and-reset-per-job semantics), per-machine trace spans
// recorded by workers, copiers, and the job driver, and a flight recorder
// that retains the most recent spans and counter deltas per machine and dumps
// them when a job aborts.
//
// The paper's evaluation (Tables 3-4, Figure 8) hinges on knowing exactly
// where time and bytes go — per-superstep compute vs. communication,
// per-(src,dst) traffic, ghost-merge cost. This package makes that data a
// first-class engine output instead of ad-hoc counters.
//
// Everything is nil-safe: a nil *Registry turns every record operation into
// an immediate return, so instrumentation sites can call unconditionally and
// the disabled engine pays one predictable-branch nil check and zero
// allocations per site (verified by TestNilRegistryZeroAlloc).
package obs

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// CounterID names one registry counter. Counters are per-machine and
// per-job: BeginJob/EndJob fold the running values into process-lifetime
// totals and reset the per-job cells, so a job's snapshot never conflates
// earlier runs (the bug the scattered comm counters had).
type CounterID uint8

// Registry counters.
const (
	// CtrBytesSent / CtrFramesSent count outbound wire traffic (via the
	// endpoint wrapper; headers included).
	CtrBytesSent CounterID = iota
	CtrFramesSent
	// CtrBytesRecv / CtrFramesRecv count inbound wire traffic.
	CtrBytesRecv
	CtrFramesRecv
	// CtrDedupHits / CtrDedupMisses / CtrDedupBytesSaved mirror the read-
	// combining counters with per-job reset semantics (comm.Metrics keeps
	// the process-lifetime totals for server stats).
	CtrDedupHits
	CtrDedupMisses
	CtrDedupBytesSaved
	// CtrSendErrors / CtrRecvErrors count transport failures observed while
	// the registry was attached.
	CtrSendErrors
	CtrRecvErrors
	// CtrReadsServed counts remote-read records this machine answered.
	CtrReadsServed
	// CtrWritesApplied counts remote-write records this machine applied.
	CtrWritesApplied
	// CtrStaleWriteFrames counts write frames dropped because their epoch
	// stamp named a job that is no longer current — stragglers from an
	// aborted job that outlived post-abort recovery (TCP can hold frames in
	// the kernel past pool quiescence).
	CtrStaleWriteFrames
	// CtrRMIServed counts remote method invocations dispatched.
	CtrRMIServed
	// CtrFlushes counts request messages flushed by workers.
	CtrFlushes
	// CtrWireRawBytes / CtrWireBytes measure the wire compression layer:
	// raw is the fixed-width payload size compression-eligible batches
	// would have shipped, wire what they actually occupied after the
	// sorted delta-varint encoding (equal for batches that fell back to
	// raw). wire/raw is the compression ratio.
	CtrWireRawBytes
	CtrWireBytes
	// CtrWriteCombineHits / CtrWriteCombineBytesSaved count sender-side
	// write combining: remote writes merged into an already-buffered record
	// for the same (prop, op, offset) and the request bytes that saved.
	CtrWriteCombineHits
	CtrWriteCombineBytesSaved
	// CtrRecvWritesCombined counts receiver-side write combining: duplicate
	// records in one sorted compressed write batch merged before the column
	// apply.
	CtrRecvWritesCombined
	// CtrFrontierNodes / CtrFrontierEdges accumulate the global frontier size
	// (nodes, out-edges) observed at each direction decision — the data the
	// push/pull heuristic acted on.
	CtrFrontierNodes
	CtrFrontierEdges
	// Work stealing: requests sent (thief side), non-empty grants packed
	// (victim side), stolen nodes/edges executed (thief side), and chunks
	// pushed back on the victim's residual queue because they did not fit
	// the grant frame.
	CtrStealRequests
	CtrStealGrants
	CtrStolenNodes
	CtrStolenEdges
	CtrStealResidual
	// Spillable write buffers (Config.SpillWrites): inbound write frames a
	// copier deferred to the spill buffer instead of applying, their payload
	// bytes, and how many of those frames overflowed the in-memory budget to
	// the temp file.
	CtrSpilledWriteFrames
	CtrSpilledWriteBytes
	CtrSpillFileFrames
	// Compressed-store decode cache (CSR v3): chunk claims that found their
	// blocks already decoded vs. ones that paid a varint decode, the raw ref
	// bytes produced by those decodes, and arena bytes evicted to stay under
	// the cache budget.
	CtrDecodeHits
	CtrDecodeMisses
	CtrDecodedBytes
	CtrDecodeEvictedBytes
	// Out-of-core residency window: file bytes advised into the window by
	// chunk claims and bytes advised back out (DONTNEED) to hold the resident
	// budget.
	CtrResidencyTouchedBytes
	CtrResidencyEvictedBytes

	numCounters
)

var counterNames = [numCounters]string{
	CtrBytesSent:              "bytes_sent",
	CtrFramesSent:             "frames_sent",
	CtrBytesRecv:              "bytes_recv",
	CtrFramesRecv:             "frames_recv",
	CtrDedupHits:              "dedup_hits",
	CtrDedupMisses:            "dedup_misses",
	CtrDedupBytesSaved:        "dedup_bytes_saved",
	CtrSendErrors:             "send_errors",
	CtrRecvErrors:             "recv_errors",
	CtrReadsServed:            "reads_served",
	CtrWritesApplied:          "writes_applied",
	CtrStaleWriteFrames:       "stale_write_frames",
	CtrRMIServed:              "rmi_served",
	CtrFlushes:                "flushes",
	CtrWireRawBytes:           "wire_raw_bytes",
	CtrWireBytes:              "wire_bytes",
	CtrWriteCombineHits:       "write_combine_hits",
	CtrWriteCombineBytesSaved: "write_combine_bytes_saved",
	CtrRecvWritesCombined:     "recv_writes_combined",
	CtrFrontierNodes:          "frontier_nodes",
	CtrFrontierEdges:          "frontier_edges",
	CtrStealRequests:          "steal_requests",
	CtrStealGrants:            "steal_grants",
	CtrStolenNodes:            "stolen_nodes",
	CtrStolenEdges:            "stolen_edges",
	CtrStealResidual:          "steal_residual_chunks",
	CtrSpilledWriteFrames:     "spilled_write_frames",
	CtrSpilledWriteBytes:      "spilled_write_bytes",
	CtrSpillFileFrames:        "spill_file_frames",
	CtrDecodeHits:             "decode_hits",
	CtrDecodeMisses:           "decode_misses",
	CtrDecodedBytes:           "decoded_bytes",
	CtrDecodeEvictedBytes:     "decode_evicted_bytes",
	CtrResidencyTouchedBytes:  "residency_touched_bytes",
	CtrResidencyEvictedBytes:  "residency_evicted_bytes",
}

// String implements fmt.Stringer.
func (c CounterID) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("CounterID(%d)", uint8(c))
}

// HistID names one latency histogram. Histograms are per-machine with
// power-of-two nanosecond buckets; like counters they snapshot-and-reset at
// job boundaries.
type HistID uint8

// Registry histograms.
const (
	// HistReadRTT is the remote-read round trip: request flush to response
	// processing on the requesting worker.
	HistReadRTT HistID = iota
	// HistBarrier is the time a machine's main goroutine waits in a barrier.
	HistBarrier
	// HistFlush is the worker-side cost of shipping one request message.
	HistFlush
	// HistServe is the copier-side cost of serving one inbound request.
	HistServe
	// HistQueueWait is the serving layer's admission latency: a run request
	// enters the scheduler queue to the moment it is granted an engine.
	// Recorded by internal/server (machine slot 0 of a 1-slot registry).
	HistQueueWait
	// HistRunLatency is the serving layer's end-to-end analysis latency
	// (queue wait + engine execution), recorded per completed run.
	HistRunLatency

	numHists
)

var histNames = [numHists]string{
	HistReadRTT:    "read_rtt_ns",
	HistBarrier:    "barrier_wait_ns",
	HistFlush:      "flush_send_ns",
	HistServe:      "copier_serve_ns",
	HistQueueWait:  "admit_queue_wait_ns",
	HistRunLatency: "run_latency_ns",
}

// String implements fmt.Stringer.
func (h HistID) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return fmt.Sprintf("HistID(%d)", uint8(h))
}

// histBuckets is the number of power-of-two buckets; bucket i holds samples
// with bits.Len64(ns) == i, so the top bucket covers everything >= ~4.3 s.
const histBuckets = 33

// histogram is a fixed-bucket atomic histogram.
type histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func (h *histogram) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// drain atomically folds this histogram into lifetime and returns a snapshot
// of the drained per-job values.
func (h *histogram) drain(lifetime *histogram) HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		v := h.buckets[i].Swap(0)
		s.Buckets[i] = v
		if lifetime != nil {
			lifetime.buckets[i].Add(v)
		}
	}
	s.Count = h.count.Swap(0)
	s.SumNS = h.sum.Swap(0)
	if lifetime != nil {
		lifetime.count.Add(s.Count)
		lifetime.sum.Add(s.SumNS)
	}
	return s
}

func (h *histogram) snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of one histogram.
type HistSnapshot struct {
	Count   int64              `json:"count"`
	SumNS   int64              `json:"sum_ns"`
	Buckets [histBuckets]int64 `json:"-"`
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from the
// power-of-two buckets, or 0 with no samples.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, b := range s.Buckets {
		seen += b
		if seen > rank {
			// Bucket i holds values with bits.Len64 == i: [2^(i-1), 2^i).
			return time.Duration(int64(1) << uint(i))
		}
	}
	return time.Duration(s.SumNS)
}

// Mean returns the average sample, or 0 with no samples.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// machineObs is one machine's slice of the registry: counters, histograms,
// a traffic row toward every destination, and the trace ring (which doubles
// as the flight recorder).
type machineObs struct {
	counters [numCounters]atomic.Int64
	lifetime [numCounters]atomic.Int64
	hists    [numHists]histogram
	lifeHist [numHists]histogram

	// trafficBytes[d] / trafficFrames[d] accumulate wire traffic from this
	// machine toward machine d since the last job boundary.
	trafficBytes  []atomic.Int64
	trafficFrames []atomic.Int64

	// wireRawBytes[d] / wireBytes[d] accumulate the compression layer's
	// raw-vs-wire payload sizes toward machine d — the per-(src,dst)
	// compression ratio of the traffic matrix.
	wireRawBytes []atomic.Int64
	wireBytes    []atomic.Int64

	// lifeTrafficBytes[d] is the lifetime twin of trafficBytes: job drains
	// fold into it so the cumulative matrix survives job boundaries (the
	// repartitioner consumes traffic measured over many jobs).
	lifeTrafficBytes []atomic.Int64

	trace traceRing
}

// regState is the attached-cluster state, swapped atomically so record paths
// never take a lock to find their machine slot.
type regState struct {
	machines []*machineObs
}

// Registry is the unified observability hub for one cluster. Create with
// NewRegistry, assign to core.Config.Obs before NewCluster (which calls
// Attach), and read per-job results with LastReport / LastAbort.
//
// All record methods are safe for concurrent use and valid on a nil
// receiver (no-ops). The job lifecycle methods (BeginJob, EndJob,
// RecordAbort) are driver-side and serialized by the engine.
type Registry struct {
	state atomic.Pointer[regState]
	epoch time.Time

	// traceDepth is the per-machine span ring capacity installed by the next
	// Attach; defaults to defaultTraceDepth.
	traceDepth int

	mu       sync.Mutex // guards job lifecycle fields below
	jobID    uint64
	jobName  string
	jobStart time.Time

	jobs      atomic.Int64
	aborts    atomic.Int64
	last      atomic.Pointer[JobReport]
	lastAbort atomic.Pointer[AbortDump]

	// recent keeps the most recent job reports (up to reportHistory) so a
	// multi-superstep algorithm run can be read back superstep by superstep.
	recentMu sync.Mutex
	recent   []*JobReport
}

// reportHistory caps Registry.RecentReports.
const reportHistory = 64

const defaultTraceDepth = 4096

// NewRegistry creates an empty registry. It becomes usable once a cluster
// attaches to it (core.NewCluster calls Attach with its machine count).
func NewRegistry() *Registry {
	return &Registry{epoch: time.Now(), traceDepth: defaultTraceDepth}
}

// SetTraceDepth sets the per-machine span ring capacity (the flight
// recorder's retention window) used by the next Attach. Rounded up to a
// power of two; values < 16 are clamped.
func (r *Registry) SetTraceDepth(n int) {
	if r == nil {
		return
	}
	if n < 16 {
		n = 16
	}
	r.traceDepth = n
}

// Attach sizes the registry for a cluster of p machines, resetting all
// per-job and lifetime state. One registry serves one cluster at a time;
// attaching again (e.g. when a benchmark reuses the registry across
// clusters) starts fresh.
func (r *Registry) Attach(p int) {
	if r == nil || p < 1 {
		return
	}
	st := &regState{machines: make([]*machineObs, p)}
	for m := range st.machines {
		mo := &machineObs{
			trafficBytes:     make([]atomic.Int64, p),
			trafficFrames:    make([]atomic.Int64, p),
			wireRawBytes:     make([]atomic.Int64, p),
			wireBytes:        make([]atomic.Int64, p),
			lifeTrafficBytes: make([]atomic.Int64, p),
		}
		mo.trace.init(r.traceDepth)
		st.machines[m] = mo
	}
	r.state.Store(st)
}

// Attached reports whether a cluster has attached (sized) this registry.
func (r *Registry) Attached() bool {
	return r != nil && r.state.Load() != nil
}

// Machines returns the attached cluster size, or 0.
func (r *Registry) Machines() int {
	if r == nil {
		return 0
	}
	if st := r.state.Load(); st != nil {
		return len(st.machines)
	}
	return 0
}

func (r *Registry) machine(m int) *machineObs {
	st := r.state.Load()
	if st == nil || m < 0 || m >= len(st.machines) {
		return nil
	}
	return st.machines[m]
}

// Add bumps counter c on machine m by v. Nil-safe, allocation-free.
func (r *Registry) Add(m int, c CounterID, v int64) {
	if r == nil {
		return
	}
	if mo := r.machine(m); mo != nil && c < numCounters {
		mo.counters[c].Add(v)
	}
}

// Traffic records one outbound frame of n bytes from machine src to machine
// dst: the per-(src,dst) matrix cell plus the sender's byte/frame counters.
func (r *Registry) Traffic(src, dst, n int) {
	if r == nil {
		return
	}
	mo := r.machine(src)
	if mo == nil || dst < 0 || dst >= len(mo.trafficBytes) {
		return
	}
	mo.trafficBytes[dst].Add(int64(n))
	mo.trafficFrames[dst].Add(1)
	mo.counters[CtrBytesSent].Add(int64(n))
	mo.counters[CtrFramesSent].Add(1)
}

// Compressed records one compression-eligible batch from src toward dst:
// raw is its fixed-width payload size, wire the bytes it actually shipped.
func (r *Registry) Compressed(src, dst int, raw, wire int64) {
	if r == nil {
		return
	}
	mo := r.machine(src)
	if mo == nil || dst < 0 || dst >= len(mo.wireRawBytes) {
		return
	}
	mo.wireRawBytes[dst].Add(raw)
	mo.wireBytes[dst].Add(wire)
	mo.counters[CtrWireRawBytes].Add(raw)
	mo.counters[CtrWireBytes].Add(wire)
}

// Observe records one latency sample into histogram h on machine m.
func (r *Registry) Observe(m int, h HistID, d time.Duration) {
	if r == nil {
		return
	}
	if mo := r.machine(m); mo != nil && h < numHists {
		mo.hists[h].observe(int64(d))
	}
}

// BeginJob marks the start of job id: per-job counters, histograms, and the
// traffic matrix fold into lifetime totals and reset, so everything recorded
// from here on belongs to this job. Driver-side (one caller at a time).
func (r *Registry) BeginJob(id uint64, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.jobID = id
	r.jobName = name
	r.jobStart = time.Now()
	r.mu.Unlock()
	r.drainToLifetime(nil)
}

// drainToLifetime folds every per-job cell into its lifetime twin and zeroes
// it. When rep is non-nil the drained values are also captured into it.
func (r *Registry) drainToLifetime(rep *JobReport) {
	st := r.state.Load()
	if st == nil {
		return
	}
	p := len(st.machines)
	if rep != nil {
		rep.Machines = p
		rep.Counters = make(map[string]int64, int(numCounters))
		rep.PerMachine = make([]map[string]int64, p)
		rep.TrafficBytes = make([][]int64, p)
		rep.TrafficFrames = make([][]int64, p)
		rep.WireRawBytes = make([][]int64, p)
		rep.WireBytes = make([][]int64, p)
		rep.Histograms = make(map[string]HistSnapshot, int(numHists))
	}
	var hists [numHists]HistSnapshot
	for m, mo := range st.machines {
		var perM map[string]int64
		if rep != nil {
			perM = make(map[string]int64, int(numCounters))
		}
		for c := CounterID(0); c < numCounters; c++ {
			v := mo.counters[c].Swap(0)
			mo.lifetime[c].Add(v)
			if rep != nil {
				rep.Counters[c.String()] += v
				if v != 0 {
					perM[c.String()] = v
				}
			}
		}
		for h := HistID(0); h < numHists; h++ {
			s := mo.hists[h].drain(&mo.lifeHist[h])
			merge(&hists[h], s)
		}
		rowB := make([]int64, len(mo.trafficBytes))
		rowF := make([]int64, len(mo.trafficFrames))
		rowWR := make([]int64, len(mo.wireRawBytes))
		rowW := make([]int64, len(mo.wireBytes))
		for d := range mo.trafficBytes {
			rowB[d] = mo.trafficBytes[d].Swap(0)
			rowF[d] = mo.trafficFrames[d].Swap(0)
			rowWR[d] = mo.wireRawBytes[d].Swap(0)
			rowW[d] = mo.wireBytes[d].Swap(0)
			mo.lifeTrafficBytes[d].Add(rowB[d])
		}
		if rep != nil {
			rep.PerMachine[m] = perM
			rep.TrafficBytes[m] = rowB
			rep.TrafficFrames[m] = rowF
			rep.WireRawBytes[m] = rowWR
			rep.WireBytes[m] = rowW
		}
	}
	if rep != nil {
		for h := HistID(0); h < numHists; h++ {
			if hists[h].Count > 0 {
				rep.Histograms[h.String()] = hists[h]
			}
		}
	}
}

func merge(dst *HistSnapshot, src HistSnapshot) {
	for i := range dst.Buckets {
		dst.Buckets[i] += src.Buckets[i]
	}
	dst.Count += src.Count
	dst.SumNS += src.SumNS
}

// EndJob closes job id: snapshots and resets every per-job cell, collects the
// job's spans from the trace rings, and publishes the assembled JobReport as
// LastReport. d is the driver-measured job duration.
func (r *Registry) EndJob(id uint64, d time.Duration) *JobReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	name := r.jobName
	r.jobID = 0
	r.mu.Unlock()
	rep := &JobReport{
		Job:      id,
		Name:     name,
		Duration: d,
	}
	r.drainToLifetime(rep)
	rep.Spans = r.spansForJob(id)
	r.jobs.Add(1)
	r.last.Store(rep)
	r.recentMu.Lock()
	r.recent = append(r.recent, rep)
	if len(r.recent) > reportHistory {
		r.recent = r.recent[len(r.recent)-reportHistory:]
	}
	r.recentMu.Unlock()
	return rep
}

// RecentReports returns the most recent completed-job reports, oldest
// first (up to an internal cap).
func (r *Registry) RecentReports() []*JobReport {
	if r == nil {
		return nil
	}
	r.recentMu.Lock()
	defer r.recentMu.Unlock()
	out := make([]*JobReport, len(r.recent))
	copy(out, r.recent)
	return out
}

// JobsObserved returns how many jobs completed under this registry.
func (r *Registry) JobsObserved() int64 {
	if r == nil {
		return 0
	}
	return r.jobs.Load()
}

// AbortsObserved returns how many job aborts the flight recorder captured.
func (r *Registry) AbortsObserved() int64 {
	if r == nil {
		return 0
	}
	return r.aborts.Load()
}

// LastReport returns the report of the most recently completed job, or nil.
func (r *Registry) LastReport() *JobReport {
	if r == nil {
		return nil
	}
	return r.last.Load()
}

// LifetimeCounters sums the process-lifetime counter totals across machines,
// including the still-running per-job values (so the totals never go
// backwards between job boundaries).
func (r *Registry) LifetimeCounters() map[string]int64 {
	if r == nil {
		return nil
	}
	st := r.state.Load()
	if st == nil {
		return nil
	}
	out := make(map[string]int64, int(numCounters))
	for _, mo := range st.machines {
		for c := CounterID(0); c < numCounters; c++ {
			out[c.String()] += mo.lifetime[c].Load() + mo.counters[c].Load()
		}
	}
	return out
}

// LifetimeTraffic returns the per-(src,dst) wire-byte matrix accumulated
// over the registry's lifetime, including the still-running job — the
// cumulative form of JobReport.TrafficBytes, and the repartitioner's input.
func (r *Registry) LifetimeTraffic() [][]int64 {
	if r == nil {
		return nil
	}
	st := r.state.Load()
	if st == nil {
		return nil
	}
	out := make([][]int64, len(st.machines))
	for m, mo := range st.machines {
		row := make([]int64, len(mo.lifeTrafficBytes))
		for d := range row {
			row[d] = mo.lifeTrafficBytes[d].Load() + mo.trafficBytes[d].Load()
		}
		out[m] = row
	}
	return out
}

// MachineHistogram returns machine m's lifetime snapshot of histogram h
// (including the running job's samples). The cross-machine spread of e.g.
// HistBarrier is the load-imbalance telemetry the repartitioner reads.
func (r *Registry) MachineHistogram(m int, h HistID) HistSnapshot {
	var out HistSnapshot
	if r == nil || h >= numHists {
		return out
	}
	mo := r.machine(m)
	if mo == nil {
		return out
	}
	merge(&out, mo.lifeHist[h].snapshot())
	merge(&out, mo.hists[h].snapshot())
	return out
}

// LifetimeHistogram returns the lifetime snapshot of histogram h merged
// across machines (including the running job's samples).
func (r *Registry) LifetimeHistogram(h HistID) HistSnapshot {
	var out HistSnapshot
	if r == nil || h >= numHists {
		return out
	}
	st := r.state.Load()
	if st == nil {
		return out
	}
	for _, mo := range st.machines {
		merge(&out, mo.lifeHist[h].snapshot())
		merge(&out, mo.hists[h].snapshot())
	}
	return out
}
