package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// SpanKind names what a trace span measures.
type SpanKind uint8

// Span kinds recorded by the engine.
const (
	// SpanJob covers one whole parallel region on one machine, from job
	// publish to the post-drain ghost merge.
	SpanJob SpanKind = iota
	// SpanGhostReadSync is the pre-job broadcast of ghost-read property data.
	SpanGhostReadSync
	// SpanBarrier is one collective barrier wait on the machine's main
	// goroutine (Arg: 0 = pre-task barrier, 1 = post-task barrier).
	SpanBarrier
	// SpanTaskPhase is the run-to-complete worker phase: first chunk handed
	// out to last worker response drained.
	SpanTaskPhase
	// SpanWriteDrain is the all-reduce loop waiting for remote writes to
	// settle cluster-wide.
	SpanWriteDrain
	// SpanGhostMerge is the post-drain merge of ghost write accumulators.
	SpanGhostMerge
	// SpanFlush is one worker request-buffer flush (Arg packs dst<<48|bytes).
	SpanFlush
	// SpanReadRTT is one remote-read round trip measured at the requesting
	// worker: request flush to response processed (Arg: responding machine).
	SpanReadRTT
	// SpanCopierServe is one inbound request served by a copier (Arg packs
	// src<<48|msgType).
	SpanCopierServe
	// SpanDirection is one push/pull direction decision by an adaptive
	// traversal (Arg packs direction<<62 | step<<48 | frontierSize, with the
	// frontier size saturating at 2^48-1).
	SpanDirection
	// SpanSteal is one executed steal grant measured at the thief worker:
	// request sent to last stolen node done (Arg packs victim<<48|nodes).
	SpanSteal

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	SpanJob:           "job",
	SpanGhostReadSync: "ghost_read_sync",
	SpanBarrier:       "barrier",
	SpanTaskPhase:     "task_phase",
	SpanWriteDrain:    "write_drain",
	SpanGhostMerge:    "ghost_merge",
	SpanFlush:         "flush",
	SpanReadRTT:       "read_rtt",
	SpanCopierServe:   "copier_serve",
	SpanDirection:     "direction_decision",
	SpanSteal:         "steal",
}

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("SpanKind(%d)", uint8(k))
}

// Worker-slot sentinels for Span.Worker.
const (
	// WorkerMain marks spans recorded by the machine's main job goroutine.
	WorkerMain = -1
	// WorkerCopier marks spans recorded by copier goroutines.
	WorkerCopier = -2
)

// Span is one recorded trace event. Spans carry no heap references so
// recording is allocation-free; timestamps are nanoseconds relative to the
// registry epoch, keeping per-machine timelines directly comparable.
type Span struct {
	Kind    SpanKind `json:"kind_id"`
	Machine int16    `json:"machine"`
	// Worker is the recording worker slot, or WorkerMain / WorkerCopier.
	Worker int16 `json:"worker"`
	// Job is the job sequence number the span belongs to.
	Job uint64 `json:"job"`
	// Seq is a per-machine monotone sequence assigned at record time; within
	// one machine it orders spans by completion.
	Seq uint64 `json:"seq"`
	// StartNS is the span start, nanoseconds since the registry epoch.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Arg is kind-specific payload (see the SpanKind docs).
	Arg uint64 `json:"arg,omitempty"`
}

// KindName returns the human-readable span kind.
func (s Span) KindName() string { return s.Kind.String() }

// End returns the span end, nanoseconds since the registry epoch.
func (s Span) End() int64 { return s.StartNS + s.DurNS }

// String formats one span for logs and the /debug/trace text view.
func (s Span) String() string {
	who := fmt.Sprintf("w%d", s.Worker)
	switch s.Worker {
	case WorkerMain:
		who = "main"
	case WorkerCopier:
		who = "copier"
	}
	return fmt.Sprintf("m%d/%s job=%d %s start=%.3fms dur=%.3fms arg=%#x",
		s.Machine, who, s.Job, s.Kind,
		float64(s.StartNS)/1e6, float64(s.DurNS)/1e6, s.Arg)
}

// traceRing is one machine's span buffer: a mutex-guarded power-of-two ring
// holding the most recent spans. It is both the per-job trace store (EndJob
// collects the job's spans) and the flight recorder (RecordAbort snapshots
// the tail after a failure).
type traceRing struct {
	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans ever recorded; buf index = seq & mask
	mask uint64
}

func (t *traceRing) init(capacity int) {
	n := 16
	for n < capacity {
		n <<= 1
	}
	t.buf = make([]Span, n)
	t.mask = uint64(n - 1)
}

func (t *traceRing) record(s Span) {
	t.mu.Lock()
	s.Seq = t.next
	t.buf[t.next&t.mask] = s
	t.next++
	t.mu.Unlock()
}

// tail returns up to max of the most recent spans, oldest first.
func (t *traceRing) tail(max int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if n > uint64(len(t.buf)) {
		n = uint64(len(t.buf))
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]Span, 0, n)
	for i := t.next - n; i < t.next; i++ {
		out = append(out, t.buf[i&t.mask])
	}
	return out
}

// forJob returns the retained spans belonging to job id, oldest first.
func (t *traceRing) forJob(id uint64) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if n > uint64(len(t.buf)) {
		n = uint64(len(t.buf))
	}
	var out []Span
	for i := t.next - n; i < t.next; i++ {
		if s := t.buf[i&t.mask]; s.Job == id {
			out = append(out, s)
		}
	}
	return out
}

// now returns nanoseconds since the registry epoch.
func (r *Registry) now() int64 { return int64(time.Since(r.epoch)) }

// Clock returns the current time on the registry's span timeline
// (nanoseconds since its epoch). Record sites capture a start clock, do the
// work, and hand both to Span.
func (r *Registry) Clock() int64 {
	if r == nil {
		return 0
	}
	return r.now()
}

// Span records one completed span on machine m. startNS is a Clock() value
// captured when the operation began; the duration is measured against the
// registry's clock at record time. Nil-safe and allocation-free (the ring
// stores spans by value).
func (r *Registry) Span(m, worker int, k SpanKind, job uint64, startNS int64, arg uint64) {
	if r == nil {
		return
	}
	mo := r.machine(m)
	if mo == nil || k >= numSpanKinds {
		return
	}
	mo.trace.record(Span{
		Kind:    k,
		Machine: int16(m),
		Worker:  int16(worker),
		Job:     job,
		StartNS: startNS,
		DurNS:   r.now() - startNS,
		Arg:     arg,
	})
}

// spansForJob gathers job id's retained spans across machines, ordered by
// start time (ties by machine then seq).
func (r *Registry) spansForJob(id uint64) []Span {
	st := r.state.Load()
	if st == nil {
		return nil
	}
	var out []Span
	for _, mo := range st.machines {
		out = append(out, mo.trace.forJob(id)...)
	}
	sortSpans(out)
	return out
}

// RecentSpans returns up to max of the most recent spans per machine,
// merged and ordered by start time. max <= 0 returns everything retained.
func (r *Registry) RecentSpans(max int) []Span {
	if r == nil {
		return nil
	}
	st := r.state.Load()
	if st == nil {
		return nil
	}
	var out []Span
	for _, mo := range st.machines {
		out = append(out, mo.trace.tail(max)...)
	}
	sortSpans(out)
	return out
}

func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.Seq < b.Seq
	})
}
