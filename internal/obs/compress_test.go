package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestCompressionAccounting: Registry.Compressed feeds the per-destination
// matrices, both lifetime counters, the job report's savings summary, and the
// /debug/metrics compression block.
func TestCompressionAccounting(t *testing.T) {
	r := NewRegistry()
	r.Attach(2)
	r.BeginJob(1, "compress")
	r.Compressed(0, 1, 8000, 2000)
	r.Compressed(1, 0, 1000, 1000) // a batch that fell back to raw
	rep := r.EndJob(1, time.Millisecond)

	if rep.WireRawBytes[0][1] != 8000 || rep.WireBytes[0][1] != 2000 {
		t.Errorf("matrix cell (0,1) = %d/%d, want 8000/2000",
			rep.WireRawBytes[0][1], rep.WireBytes[0][1])
	}
	raw, wire, ratio := rep.WireSavings()
	if raw != 9000 || wire != 3000 {
		t.Errorf("WireSavings = %d/%d, want 9000/3000", raw, wire)
	}
	if ratio < 0.33 || ratio > 0.34 {
		t.Errorf("ratio = %v, want 3000/9000", ratio)
	}
	if line := rep.Line(); !strings.Contains(line, "compress=") {
		t.Errorf("Line lacks compression summary: %q", line)
	}
	ms := rep.CompressionMatrixString()
	if !strings.Contains(ms, "0.25") || !strings.Contains(ms, "total ratio") {
		t.Errorf("CompressionMatrixString missing cells:\n%s", ms)
	}
	lt := r.LifetimeCounters()
	if lt[CtrWireRawBytes.String()] != 9000 || lt[CtrWireBytes.String()] != 3000 {
		t.Errorf("lifetime counters = %d/%d, want 9000/3000",
			lt[CtrWireRawBytes.String()], lt[CtrWireBytes.String()])
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	var payload struct {
		Compression *struct {
			RawBytes   int64   `json:"raw_bytes"`
			WireBytes  int64   `json:"wire_bytes"`
			SavedBytes int64   `json:"saved_bytes"`
			Ratio      float64 `json:"ratio"`
		} `json:"compression"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("metrics payload is not JSON: %v", err)
	}
	if payload.Compression == nil {
		t.Fatal("/debug/metrics has no compression block")
	}
	if payload.Compression.RawBytes != 9000 || payload.Compression.SavedBytes != 6000 {
		t.Errorf("compression block = %+v", payload.Compression)
	}

	// A job with no compression activity reports ratio 1 and stays silent.
	r.BeginJob(2, "quiet")
	rep = r.EndJob(2, time.Millisecond)
	if raw, _, ratio := rep.WireSavings(); raw != 0 || ratio != 1 {
		t.Errorf("idle job WireSavings = %d ratio %v", raw, ratio)
	}
	if strings.Contains(rep.Line(), "compress=") {
		t.Error("idle job Line still mentions compression")
	}

	// Nil registry: Compressed must be a no-op, not a panic.
	var nilReg *Registry
	nilReg.Compressed(0, 1, 10, 5)
}
